// Tests for prime-field arithmetic, primality, polynomials and
// interpolation — the algebra underneath the GVSS coin.
#include <gtest/gtest.h>

#include "field/fp.h"
#include "field/fp_simd.h"
#include "field/poly.h"
#include "field/primes.h"
#include "support/check.h"

namespace ssbft {
namespace {

TEST(Primes, KnownSmallValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(5));
  EXPECT_FALSE(is_prime_u64(1001));  // 7 * 11 * 13
  EXPECT_TRUE(is_prime_u64(1009));
}

TEST(Primes, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests; Miller-Rabin must not be fooled.
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 294409ULL}) {
    EXPECT_FALSE(is_prime_u64(c)) << c;
  }
}

TEST(Primes, LargeKnownValues) {
  EXPECT_TRUE(is_prime_u64(2305843009213693951ULL));   // 2^61 - 1 (Mersenne)
  EXPECT_FALSE(is_prime_u64(2305843009213693953ULL));  // 2^61 + 1 = 3*715827883*...
  EXPECT_TRUE(is_prime_u64(18446744073709551557ULL));  // largest 64-bit prime
}

TEST(Primes, SmallestPrimeAbove) {
  EXPECT_EQ(smallest_prime_above(0), 2u);
  EXPECT_EQ(smallest_prime_above(2), 3u);
  EXPECT_EQ(smallest_prime_above(3), 5u);
  EXPECT_EQ(smallest_prime_above(10), 11u);
  EXPECT_EQ(smallest_prime_above(13), 17u);
  EXPECT_EQ(smallest_prime_above(100), 101u);
}

TEST(Primes, SmallestPrimeAboveIsCanonicalForNodeCounts) {
  // Remark 2.3: every node must derive the same field from n alone.
  for (std::uint64_t n = 4; n < 200; ++n) {
    const std::uint64_t p = smallest_prime_above(n);
    EXPECT_GT(p, n);
    EXPECT_TRUE(is_prime_u64(p));
    for (std::uint64_t q = n + 1; q < p; ++q) EXPECT_FALSE(is_prime_u64(q));
  }
}

TEST(PrimeField, RejectsComposite) {
  EXPECT_THROW(PrimeField(10), contract_error);
  EXPECT_THROW(PrimeField(1), contract_error);
}

class FieldLawsTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Moduli, FieldLawsTest,
                         ::testing::Values(5ULL, 101ULL, 65537ULL,
                                           2305843009213693951ULL));

TEST_P(FieldLawsTest, RingAxiomsOnRandomElements) {
  PrimeField F(GetParam());
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = F.uniform(rng), b = F.uniform(rng), c = F.uniform(rng);
    EXPECT_EQ(F.add(a, b), F.add(b, a));
    EXPECT_EQ(F.mul(a, b), F.mul(b, a));
    EXPECT_EQ(F.add(F.add(a, b), c), F.add(a, F.add(b, c)));
    EXPECT_EQ(F.mul(F.mul(a, b), c), F.mul(a, F.mul(b, c)));
    EXPECT_EQ(F.mul(a, F.add(b, c)), F.add(F.mul(a, b), F.mul(a, c)));
    EXPECT_EQ(F.add(a, F.neg(a)), 0u);
    EXPECT_EQ(F.sub(a, b), F.add(a, F.neg(b)));
  }
}

TEST_P(FieldLawsTest, InverseIsTotalOnNonzero) {
  PrimeField F(GetParam());
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 100; ++i) {
    const auto a = F.uniform_nonzero(rng);
    EXPECT_EQ(F.mul(a, F.inv(a)), 1u);
  }
  EXPECT_THROW(F.inv(0), contract_error);
}

TEST_P(FieldLawsTest, PowMatchesRepeatedMultiplication) {
  PrimeField F(GetParam());
  Rng rng(GetParam() + 2);
  const auto a = F.uniform(rng);
  std::uint64_t acc = 1 % F.modulus();
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(F.pow(a, e), acc);
    acc = F.mul(acc, a);
  }
}

TEST_P(FieldLawsTest, FermatLittleTheorem) {
  PrimeField F(GetParam());
  Rng rng(GetParam() + 3);
  for (int i = 0; i < 20; ++i) {
    const auto a = F.uniform_nonzero(rng);
    EXPECT_EQ(F.pow(a, F.modulus() - 1), 1u);
  }
}

// --- Mersenne-61 fast path vs the generic reference -------------------------
//
// PrimeField dispatches to shift/add folding exactly when p = 2^61 - 1; the
// reference below is the generic backend's formula, computed inline so the
// two cannot share a code path.

constexpr std::uint64_t kM61 = PrimeField::kDefaultPrime;

std::uint64_t ref_mul_m61(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b %
                                    kM61);
}

TEST(Mersenne61, MulMatchesGenericReference) {
  PrimeField F;
  Rng rng(42);
  // Edge elements: products of the largest pair reach (p-1)^2 > 2^121.
  const std::vector<std::uint64_t> edge{
      0, 1, 2, 3, (1ULL << 60) - 1, 1ULL << 60, kM61 / 2, kM61 - 2, kM61 - 1};
  for (std::uint64_t a : edge) {
    for (std::uint64_t b : edge) {
      EXPECT_EQ(F.mul(a, b), ref_mul_m61(a, b)) << a << " * " << b;
    }
  }
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = F.uniform(rng), b = F.uniform(rng);
    ASSERT_EQ(F.mul(a, b), ref_mul_m61(a, b)) << a << " * " << b;
  }
}

TEST(Mersenne61, ReduceMatchesGenericReference) {
  PrimeField F;
  Rng rng(43);
  const std::vector<std::uint64_t> edge{0,        1,         kM61 - 1, kM61,
                                        kM61 + 1, 2 * kM61,  2 * kM61 + 1,
                                        ~0ULL,    ~0ULL - 1, 1ULL << 61};
  for (std::uint64_t v : edge) EXPECT_EQ(F.reduce(v), v % kM61) << v;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_u64();
    ASSERT_EQ(F.reduce(v), v % kM61) << v;
  }
}

TEST(Mersenne61, ExtendedEuclidInvMatchesFermat) {
  PrimeField F;
  Rng rng(44);
  const std::vector<std::uint64_t> edge{1, 2, kM61 - 1, kM61 - 2, kM61 / 2};
  for (std::uint64_t a : edge) {
    EXPECT_EQ(F.inv(a), F.pow(a, kM61 - 2)) << a;
    EXPECT_EQ(F.mul(a, F.inv(a)), 1u) << a;
  }
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = F.uniform_nonzero(rng);
    ASSERT_EQ(F.inv(a), F.pow(a, kM61 - 2)) << a;
  }
}

TEST(PrimeField, InvHandlesModuliAboveTwoTo63) {
  // Bezout coefficients overflow int64 for p near 2^64; the extended
  // Euclid must track them wide. Largest 64-bit prime:
  PrimeField F(18446744073709551557ULL);
  Rng rng(45);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = F.uniform_nonzero(rng);
    ASSERT_EQ(F.mul(a, F.inv(a)), 1u) << a;
  }
}

class BatchKernelsTest : public ::testing::TestWithParam<std::uint64_t> {};

// Both backends: the Mersenne prime exercises the folded loops, the others
// the generic ones.
INSTANTIATE_TEST_SUITE_P(Moduli, BatchKernelsTest,
                         ::testing::Values(65537ULL, kM61,
                                           18446744073709551557ULL));

TEST_P(BatchKernelsTest, MulScaleSubmulMatchScalarOps) {
  PrimeField F(GetParam());
  Rng rng(GetParam() % 1000 + 7);
  const std::size_t len = 257;
  std::vector<std::uint64_t> a(len), b(len), out(len);
  for (std::size_t i = 0; i < len; ++i) {
    a[i] = F.uniform(rng);
    b[i] = F.uniform(rng);
  }
  const std::uint64_t c = F.uniform(rng);
  F.mul_vec(a.data(), b.data(), out.data(), len);
  for (std::size_t i = 0; i < len; ++i) ASSERT_EQ(out[i], F.mul(a[i], b[i]));
  F.scale_vec(a.data(), c, out.data(), len);
  for (std::size_t i = 0; i < len; ++i) ASSERT_EQ(out[i], F.mul(a[i], c));
  std::vector<std::uint64_t> dst = a;
  F.submul_vec(dst.data(), b.data(), c, len);
  for (std::size_t i = 0; i < len; ++i) {
    ASSERT_EQ(dst[i], F.sub(a[i], F.mul(b[i], c)));
  }
}

TEST_P(BatchKernelsTest, BatchInvMatchesScalarInv) {
  PrimeField F(GetParam());
  Rng rng(GetParam() % 1000 + 8);
  for (std::size_t len : {std::size_t{1}, std::size_t{2}, std::size_t{65}}) {
    std::vector<std::uint64_t> vals(len), scratch(len);
    for (auto& v : vals) v = F.uniform_nonzero(rng);
    // Include the edge element p-1 (its own inverse).
    vals[0] = F.modulus() - 1;
    const std::vector<std::uint64_t> orig = vals;
    F.batch_inv(vals.data(), len, scratch.data());
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_EQ(vals[i], F.inv(orig[i])) << "len=" << len << " i=" << i;
    }
  }
}

TEST_P(BatchKernelsTest, EvalManyMatchesHorner) {
  PrimeField F(GetParam());
  Rng rng(GetParam() % 1000 + 9);
  Poly p = Poly::random(F, 7, rng);
  const std::size_t m = 33;
  std::vector<std::uint64_t> xs(m), out(m);
  for (auto& x : xs) x = F.uniform(rng);
  F.eval_many(p.coeffs().data(), p.coeffs().size(), xs.data(), m, out.data());
  for (std::size_t k = 0; k < m; ++k) {
    ASSERT_EQ(out[k], p.eval(F, xs[k]));
    ASSERT_EQ(out[k], Poly::eval_raw(F, p.coeffs().data(), p.coeffs().size(),
                                     xs[k]));
  }
}

// --- SIMD vs scalar bit-exactness -----------------------------------------
//
// PrimeField(kM61) routes batch kernels to the runtime-selected vector
// backend (when one exists on this machine); SimdMode::kOff pins the scalar
// reference. The two must agree bit for bit on every input, including the
// adversarial edges: 0, 1, p-1 (products up to (p-1)^2 >= 2^122), lengths
// that are not multiples of any lane width, and empty/short inputs. On
// machines without a vector unit both fields run scalar and the tests are
// vacuous but green.

TEST(Mersenne61Simd, DispatchModeIsHonored) {
  EXPECT_FALSE(PrimeField(kM61, SimdMode::kOff).simd_active());
  // Non-Mersenne moduli never have a vector backend.
  EXPECT_FALSE(PrimeField(65537ULL).simd_active());
#if defined(__x86_64__) && !defined(SSBFT_SIMD_DISABLED)
  EXPECT_EQ(PrimeField(kM61).simd_active(), m61simd::available());
#else
  EXPECT_FALSE(PrimeField(kM61).simd_active());
#endif
}

TEST(Mersenne61Simd, MulScaleSubmulMatchScalarPathOnEdges) {
  PrimeField F(kM61);
  PrimeField R(kM61, SimdMode::kOff);
  Rng rng(2024);
  const std::uint64_t edges[] = {0, 1, 2, kM61 - 2, kM61 - 1};
  for (std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{31}, std::size_t{257}}) {
    std::vector<std::uint64_t> a(len), b(len);
    for (std::size_t i = 0; i < len; ++i) {
      // Saturate with edge values so every lane position sees 0, 1 and
      // p-1 (the (p-1)*(p-1) product is the 2^122-magnitude fold case).
      a[i] = (i % 3 == 0) ? edges[i % 5] : F.uniform(rng);
      b[i] = (i % 3 == 1) ? edges[(i + 2) % 5] : F.uniform(rng);
    }
    std::vector<std::uint64_t> got(len), want(len);
    F.mul_vec(a.data(), b.data(), got.data(), len);
    R.mul_vec(a.data(), b.data(), want.data(), len);
    ASSERT_EQ(got, want) << "mul_vec len=" << len;
    for (const std::uint64_t c : edges) {
      F.scale_vec(a.data(), c, got.data(), len);
      R.scale_vec(a.data(), c, want.data(), len);
      ASSERT_EQ(got, want) << "scale_vec len=" << len << " c=" << c;
      std::vector<std::uint64_t> dg = a, dw = a;
      F.submul_vec(dg.data(), b.data(), c, len);
      R.submul_vec(dw.data(), b.data(), c, len);
      ASSERT_EQ(dg, dw) << "submul_vec len=" << len << " c=" << c;
    }
  }
}

TEST(Mersenne61Simd, AddmulAndDotMatchScalarPathOnEdges) {
  PrimeField F(kM61);
  PrimeField R(kM61, SimdMode::kOff);
  Rng rng(2027);
  const std::uint64_t edges[] = {0, 1, 2, kM61 - 2, kM61 - 1};
  for (std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{31}, std::size_t{257}}) {
    std::vector<std::uint64_t> a(len), b(len);
    for (std::size_t i = 0; i < len; ++i) {
      a[i] = (i % 3 == 0) ? edges[i % 5] : F.uniform(rng);
      b[i] = (i % 3 == 1) ? edges[(i + 2) % 5] : F.uniform(rng);
    }
    // dot reassociates the accumulation across lanes, which is exact under
    // modular addition — the scalar left-to-right sum is the oracle.
    ASSERT_EQ(F.dot(a.data(), b.data(), len), R.dot(a.data(), b.data(), len))
        << "dot len=" << len;
    for (const std::uint64_t c : edges) {
      std::vector<std::uint64_t> dg = a, dw = a;
      F.addmul_vec(dg.data(), b.data(), c, len);
      R.addmul_vec(dw.data(), b.data(), c, len);
      ASSERT_EQ(dg, dw) << "addmul_vec len=" << len << " c=" << c;
    }
  }
}

TEST(Mersenne61Simd, EvalManyMatchesScalarPathOnEdges) {
  PrimeField F(kM61);
  PrimeField R(kM61, SimdMode::kOff);
  Rng rng(2025);
  for (std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{43}}) {
    for (std::size_t m :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
          std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{129}}) {
      std::vector<std::uint64_t> coeffs(count), xs(m);
      for (auto& c : coeffs) c = F.uniform(rng);
      if (count > 0) coeffs[0] = kM61 - 1;
      for (std::size_t k = 0; k < m; ++k) {
        xs[k] = (k % 4 == 0) ? kM61 - 1 : F.uniform(rng);
      }
      std::vector<std::uint64_t> got(m), want(m);
      F.eval_many(coeffs.data(), count, xs.data(), m, got.data());
      R.eval_many(coeffs.data(), count, xs.data(), m, want.data());
      ASSERT_EQ(got, want) << "count=" << count << " m=" << m;
      for (std::size_t k = 0; k < m; ++k) {
        ASSERT_EQ(got[k], R.horner(coeffs.data(), count, xs[k]));
      }
    }
  }
}

TEST(Mersenne61Simd, BatchInvMatchesScalarPathAcrossLaneBoundaries) {
  PrimeField F(kM61);
  PrimeField R(kM61, SimdMode::kOff);
  Rng rng(2026);
  // 32 is the lane-path threshold; straddle it and every len % 4 residue.
  for (std::size_t len :
       {std::size_t{31}, std::size_t{32}, std::size_t{33}, std::size_t{34},
        std::size_t{35}, std::size_t{64}, std::size_t{127}, std::size_t{257}}) {
    std::vector<std::uint64_t> vals(len), scratch(len);
    for (auto& v : vals) v = F.uniform_nonzero(rng);
    vals[0] = kM61 - 1;  // self-inverse edge
    vals[len / 2] = 1;
    std::vector<std::uint64_t> ref = vals;
    std::vector<std::uint64_t> ref_scratch(len);
    F.batch_inv(vals.data(), len, scratch.data());
    R.batch_inv(ref.data(), len, ref_scratch.data());
    ASSERT_EQ(vals, ref) << "len=" << len;
  }
}

TEST(Mersenne61Simd, RawKernelsAgreeWithField) {
  // The m61simd seam itself (what fp.cpp calls) against the field's
  // checked scalar ops, over a non-multiple-of-lane-width length.
  PrimeField R(kM61, SimdMode::kOff);
  Rng rng(2027);
  const std::size_t len = 21;
  std::vector<std::uint64_t> a(len), b(len), out(len);
  for (std::size_t i = 0; i < len; ++i) {
    a[i] = R.uniform(rng);
    b[i] = R.uniform(rng);
  }
  m61simd::mul_vec(a.data(), b.data(), out.data(), len);
  for (std::size_t i = 0; i < len; ++i) {
    ASSERT_EQ(out[i], R.mul(a[i], b[i]));
  }
}

TEST(PrimeField, UniformStaysInRange) {
  PrimeField F(101);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(F.uniform(rng), 101u);
    EXPECT_NE(F.uniform_nonzero(rng), 0u);
  }
}

TEST(Poly, DegreeAndNormalization) {
  EXPECT_EQ(Poly().degree(), -1);
  EXPECT_EQ(Poly({0, 0, 0}).degree(), -1);  // trailing zeros drop
  EXPECT_EQ(Poly({5}).degree(), 0);
  EXPECT_EQ(Poly({1, 2, 0, 0}).degree(), 1);
}

TEST(Poly, HornerEvaluation) {
  PrimeField F(101);
  Poly p({3, 2, 1});  // 3 + 2x + x^2
  EXPECT_EQ(p.eval(F, 0), 3u);
  EXPECT_EQ(p.eval(F, 1), 6u);
  EXPECT_EQ(p.eval(F, 10), (3 + 20 + 100) % 101);
}

TEST(Poly, ArithmeticConsistentWithEvaluation) {
  PrimeField F(65537);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Poly a = Poly::random(F, 4, rng);
    Poly b = Poly::random(F, 3, rng);
    const auto x = F.uniform(rng);
    EXPECT_EQ(a.add(F, b).eval(F, x), F.add(a.eval(F, x), b.eval(F, x)));
    EXPECT_EQ(a.sub(F, b).eval(F, x), F.sub(a.eval(F, x), b.eval(F, x)));
    EXPECT_EQ(a.mul(F, b).eval(F, x), F.mul(a.eval(F, x), b.eval(F, x)));
    EXPECT_EQ(a.scale(F, 7).eval(F, x), F.mul(a.eval(F, x), 7));
  }
}

TEST(Poly, DivmodRoundTrip) {
  PrimeField F(65537);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    Poly a = Poly::random(F, 6, rng);
    Poly d = Poly::random(F, 2, rng);
    if (d.is_zero()) continue;
    auto [q, r] = a.divmod(F, d);
    EXPECT_LT(r.degree(), d.degree());
    EXPECT_EQ(q.mul(F, d).add(F, r), a);
  }
}

TEST(Poly, DivisionByZeroRejected) {
  PrimeField F(101);
  EXPECT_THROW(Poly({1, 2}).divmod(F, Poly()), contract_error);
}

TEST(Poly, DivmodZeroDividend) {
  PrimeField F(101);
  auto [q, r] = Poly().divmod(F, Poly({3, 1}));
  EXPECT_TRUE(q.is_zero());
  EXPECT_TRUE(r.is_zero());
}

TEST(Poly, DivmodLowerDegreeDividendIsIdentityRemainder) {
  PrimeField F(101);
  Poly a({7, 5});           // degree 1
  Poly d({1, 2, 3, 4});     // degree 3
  auto [q, r] = a.divmod(F, d);
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, a);
}

TEST(Poly, DivmodEqualDegrees) {
  PrimeField F(65537);
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    Poly a = Poly::random(F, 4, rng);
    Poly d = Poly::random(F, 4, rng);
    if (a.degree() != 4 || d.degree() != 4) continue;
    auto [q, r] = a.divmod(F, d);
    EXPECT_EQ(q.degree(), 0);
    EXPECT_LT(r.degree(), d.degree());
    EXPECT_EQ(q.mul(F, d).add(F, r), a);
  }
}

TEST(Poly, ScratchVariantsMatchValueApi) {
  PrimeField F(65537);
  Rng rng(10);
  std::vector<std::uint64_t> scratch;  // reused across iterations
  for (int i = 0; i < 30; ++i) {
    Poly a = Poly::random(F, 5, rng);
    Poly b = Poly::random(F, 3, rng);
    a.add_into(F, b, scratch);
    EXPECT_EQ(Poly(scratch), a.add(F, b));
    a.mul_into(F, b, scratch);
    EXPECT_EQ(Poly(scratch), a.mul(F, b));
  }
}

TEST(Poly, RandomWithConstantPinsSecret) {
  PrimeField F(101);
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Poly p = Poly::random_with_constant(F, 3, 42, rng);
    EXPECT_EQ(p.eval(F, 0), 42u);
    EXPECT_LE(p.degree(), 3);
  }
}

TEST(Interpolation, RecoversOriginalPolynomial) {
  PrimeField F(2305843009213693951ULL);
  Rng rng(8);
  for (int deg = 0; deg <= 6; ++deg) {
    Poly p = Poly::random(F, deg, rng);
    std::vector<std::uint64_t> xs, ys;
    for (std::uint64_t x = 1; x <= static_cast<std::uint64_t>(deg) + 1; ++x) {
      xs.push_back(x);
      ys.push_back(p.eval(F, x));
    }
    EXPECT_EQ(lagrange_interpolate(F, xs, ys), p) << "deg=" << deg;
  }
}

TEST(Interpolation, ExactDegreeBound) {
  PrimeField F(101);
  // 3 points -> degree <= 2 polynomial through them.
  Poly p = lagrange_interpolate(F, {1, 2, 3}, {10, 20, 40});
  EXPECT_LE(p.degree(), 2);
  EXPECT_EQ(p.eval(F, 1), 10u);
  EXPECT_EQ(p.eval(F, 2), 20u);
  EXPECT_EQ(p.eval(F, 3), 40u);
}

TEST(Interpolation, DuplicateNodesRejected) {
  PrimeField F(101);
  EXPECT_THROW(lagrange_interpolate(F, {1, 1}, {2, 3}), contract_error);
}

}  // namespace
}  // namespace ssbft
