// Quickstart: run ss-Byz-Clock-Sync (the paper's k-Clock algorithm) on a
// 4-node system with one Byzantine node, starting from arbitrary memory,
// and watch the correct nodes' clocks converge and then tick in lockstep.
//
//   $ ./quickstart [n] [f] [k] [seed]
//
// Defaults: n=4, f=1, k=10, seed=1. Uses the full message-level FM coin.
#include <iostream>
#include <string>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "core/clock_sync.h"
#include "harness/convergence.h"

using namespace ssbft;

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 4;
  const std::uint32_t f = argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 1;
  const ClockValue k = argc > 3 ? std::stoull(argv[3]) : 10;
  const std::uint64_t seed = argc > 4 ? std::stoull(argv[4]) : 1;
  if (n <= 3 * f && f > 0) {
    std::cerr << "need n > 3f (got n=" << n << ", f=" << f << ")\n";
    return 1;
  }

  std::cout << "ss-Byz-Clock-Sync: n=" << n << " f=" << f << " k=" << k
            << " seed=" << seed << "\n"
            << "every node starts from randomized memory; node";
  for (NodeId id = n - f; id < n; ++id) std::cout << " " << id;
  std::cout << (f ? " is Byzantine (clock-skew equivocation)\n" : "\n");

  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  CoinSpec coin = fm_coin_spec();
  auto factory = [coin, k](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, k, coin, rng);
  };
  Engine engine(cfg, factory,
                f > 0 ? make_clock_skew_adversary(k, 0) : nullptr);

  // Show the first beats raw, then find the convergence point.
  std::cout << "\nbeat | clocks of correct nodes\n";
  for (int beat = 0; beat < 12; ++beat) {
    engine.run_beat();
    std::cout << (beat < 10 ? "   " : "  ") << beat << " |";
    for (ClockValue c : engine.correct_clocks()) std::cout << " " << c;
    std::cout << (clocks_agree(engine) ? "   <- agreed" : "") << "\n";
  }

  ConvergenceConfig cc;
  cc.max_beats = 5000;
  const auto res = measure_convergence(engine, cc);
  if (!res.converged) {
    std::cout << "\ndid not converge within " << cc.max_beats
              << " beats (try another seed)\n";
    return 1;
  }
  std::cout << "\nconverged: synced from beat " << res.synced_at
            << " onward (expected-constant time, Theorem 4)\n"
            << "\nsteady state — all correct nodes tick +1 mod " << k
            << " every beat:\nbeat | clocks\n";
  for (int i = 0; i < 8; ++i) {
    engine.run_beat();
    std::cout << "  +" << i << " |";
    for (ClockValue c : engine.correct_clocks()) std::cout << " " << c;
    std::cout << "\n";
  }
  std::cout << "\ntotal correct-node messages: "
            << engine.metrics().total().correct_messages << " ("
            << engine.metrics().total().correct_bytes / 1024 << " KiB)\n";
  return 0;
}
