#include "coin/coin_pipeline.h"

#include "support/check.h"

namespace ssbft {

SsByzCoinFlip::SsByzCoinFlip(CoinInstanceFactory factory, int rounds,
                             ChannelId base, Rng rng)
    : factory_(std::move(factory)), rounds_(rounds), base_(base), rng_(rng) {
  SSBFT_REQUIRE(rounds_ >= 1);
  slots_.reserve(static_cast<std::size_t>(rounds_));
  for (int j = 0; j < rounds_; ++j) slots_.push_back(fresh_instance());
}

std::unique_ptr<CoinInstance> SsByzCoinFlip::fresh_instance() {
  auto inst = factory_(rng_.split("instance", rng_.next_u64()));
  SSBFT_CHECK(inst != nullptr);
  SSBFT_CHECK_MSG(inst->rounds() == rounds_,
                  "instance rounds " << inst->rounds() << " != pipeline depth "
                                     << rounds_);
  return inst;
}

void SsByzCoinFlip::send_phase(Outbox& out) {
  for (int j = 0; j < rounds_; ++j) {
    slots_[static_cast<std::size_t>(j)]->send_round(
        j + 1, out, static_cast<ChannelId>(base_ + j));
  }
}

bool SsByzCoinFlip::do_receive_phase(const Inbox& in) {
  for (int j = 0; j < rounds_; ++j) {
    slots_[static_cast<std::size_t>(j)]->receive_round(
        j + 1, in, static_cast<ChannelId>(base_ + j));
  }
  const bool bit = slots_.back()->output();
  // Figure 1 lines 3-4: shift the pipeline and admit a fresh instance. The
  // retired instance is recycled in place (same rng derivation as a
  // factory-made one), so the steady-state beat allocates nothing.
  std::unique_ptr<CoinInstance> retired = std::move(slots_.back());
  for (std::size_t j = slots_.size() - 1; j > 0; --j) {
    slots_[j] = std::move(slots_[j - 1]);
  }
  retired->reinit(rng_.split("instance", rng_.next_u64()));
  slots_[0] = std::move(retired);
  return bit;
}

void SsByzCoinFlip::randomize_state(Rng& rng) {
  // A transient fault may leave any garbage in any slot; convergence must
  // not depend on what it is.
  for (auto& slot : slots_) slot->randomize_state(rng);
}

CoinSpec pipelined_coin_spec(CoinInstanceFactory factory, int rounds) {
  CoinSpec spec;
  spec.channels = static_cast<std::uint32_t>(rounds);
  spec.make = [factory = std::move(factory), rounds](
                  const ProtocolEnv&, ChannelId base, Rng rng) {
    return std::make_unique<SsByzCoinFlip>(factory, rounds, base, rng);
  };
  return spec;
}

}  // namespace ssbft
