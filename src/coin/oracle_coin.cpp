#include "coin/oracle_coin.h"

#include "support/check.h"

namespace ssbft {

OracleBeacon::OracleBeacon(std::uint32_t n, OracleCoinParams params, Rng rng)
    : n_(n), params_(params), rng_(rng), bits_(n, false) {
  SSBFT_REQUIRE(params.p0 >= 0 && params.p1 >= 0 &&
                params.p0 + params.p1 <= 1.0);
}

void OracleBeacon::on_beat(Beat /*beat*/) {
  const double roll = rng_.next_double();
  if (roll < params_.p0) {
    common_ = true;
    common_value_ = false;
    bits_.assign(n_, false);
  } else if (roll < params_.p0 + params_.p1) {
    common_ = true;
    common_value_ = true;
    bits_.assign(n_, true);
  } else {
    common_ = false;
    for (std::uint32_t i = 0; i < n_; ++i) bits_[i] = rng_.next_bool();
  }
}

namespace {

class OracleCoinComponent final : public CoinComponent {
 public:
  OracleCoinComponent(std::shared_ptr<OracleBeacon> beacon, NodeId self)
      : beacon_(std::move(beacon)), self_(self) {}

  void send_phase(Outbox&) override {}
  bool do_receive_phase(const Inbox&) override { return beacon_->bit_for(self_); }
  // Stateless: a transient fault leaves nothing to corrupt, so the oracle
  // pipeline's convergence time is zero.
  void randomize_state(Rng&) override {}

 private:
  std::shared_ptr<OracleBeacon> beacon_;
  NodeId self_;
};

}  // namespace

CoinSpec oracle_coin_spec(std::shared_ptr<OracleBeacon> beacon) {
  SSBFT_REQUIRE(beacon != nullptr);
  CoinSpec spec;
  spec.channels = 0;
  spec.make = [beacon](const ProtocolEnv& env, ChannelId, Rng) {
    return std::make_unique<OracleCoinComponent>(beacon, env.self);
  };
  return spec;
}

}  // namespace ssbft
