#include "agreement/turpin_coan.h"

#include <algorithm>
#include <map>

#include "support/check.h"

namespace ssbft {

namespace {
constexpr std::uint8_t kBottom = 0;
constexpr std::uint8_t kValue = 1;
}  // namespace

TurpinCoanInstance::TurpinCoanInstance(const ProtocolEnv& env,
                                       std::uint64_t input,
                                       const BaSpec& binary, Rng rng)
    : env_(env), input_(input), binary_(binary), rng_(rng) {}

int TurpinCoanInstance::rounds() const {
  return 2 + binary_.rounds_for(env_.f);
}

void TurpinCoanInstance::ensure_inner(bool input) {
  if (inner_ == nullptr) {
    inner_ = binary_.make(env_, input ? 1 : 0, rng_.split("inner"));
    SSBFT_CHECK(inner_ != nullptr);
  }
}

void TurpinCoanInstance::send_round(int round, Outbox& out, ChannelId base) {
  if (round == 1) {
    ByteWriter& w = out.writer();
    w.u64(input_);
    out.broadcast(base, w.data());
  } else if (round == 2) {
    ByteWriter& w = out.writer();
    w.u8(have_z_ ? kValue : kBottom);
    w.u64(z_);
    out.broadcast(static_cast<ChannelId>(base + 1), w.data());
  } else {
    // A transient fault (or pipeline-genesis garbage) can reach round >= 3
    // without an inner instance; materialize a default one — this instance
    // predates coherence and its output is allowed to be arbitrary.
    ensure_inner(false);
    inner_->send_round(round - 2, out, static_cast<ChannelId>(base + 2));
  }
}

void TurpinCoanInstance::receive_round(int round, const Inbox& in,
                                       ChannelId base) {
  if (round == 1) {
    std::map<std::uint64_t, std::uint32_t> counts;
    for (const Bytes* p : in.first_per_sender(base)) {
      if (p == nullptr) continue;
      ByteReader r(*p);
      const std::uint64_t v = r.u64();
      if (!r.at_end()) continue;
      ++counts[v];
    }
    have_z_ = false;
    z_ = 0;
    for (const auto& [v, c] : counts) {
      if (c >= env_.n - env_.f) {
        have_z_ = true;
        z_ = v;
        break;  // unique by quorum intersection
      }
    }
  } else if (round == 2) {
    std::map<std::uint64_t, std::uint32_t> counts;
    for (const Bytes* p : in.first_per_sender(static_cast<ChannelId>(base + 1))) {
      if (p == nullptr) continue;
      ByteReader r(*p);
      const std::uint8_t tag = r.u8();
      const std::uint64_t v = r.u64();
      if (!r.at_end() || tag > kValue) continue;
      if (tag == kBottom) continue;
      ++counts[v];
    }
    x_ = 0;
    std::uint32_t best = 0;
    for (const auto& [v, c] : counts) {
      if (c > best) {  // ties resolve to the smallest value (map order)
        best = c;
        x_ = v;
      }
    }
    ensure_inner(best >= env_.n - env_.f);
  } else {
    ensure_inner(false);
    inner_->receive_round(round - 2, in, static_cast<ChannelId>(base + 2));
  }
}

std::uint64_t TurpinCoanInstance::output() const {
  if (inner_ == nullptr) return 0;
  return inner_->output() == 1 ? x_ : 0;
}

void TurpinCoanInstance::randomize_state(Rng& rng) {
  input_ = rng.next_u64();
  have_z_ = rng.next_bool();
  z_ = rng.next_u64();
  x_ = rng.next_u64();
  if (inner_) {
    inner_->randomize_state(rng);
  } else if (rng.next_bool()) {
    ensure_inner(rng.next_bool());
    inner_->randomize_state(rng);
  }
}

BaSpec turpin_coan_spec(BaSpec binary) {
  BaSpec spec;
  spec.resilience_denominator = std::max(3, binary.resilience_denominator);
  spec.rounds_for = [inner = binary.rounds_for](std::uint32_t f) {
    return 2 + inner(f);
  };
  spec.make = [binary](const ProtocolEnv& env, std::uint64_t input, Rng rng) {
    return std::make_unique<TurpinCoanInstance>(env, input, binary, rng);
  };
  return spec;
}

}  // namespace ssbft
