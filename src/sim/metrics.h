// Per-beat traffic accounting, used by the message-complexity benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.h"

namespace ssbft {

struct BeatTraffic {
  std::uint64_t correct_messages = 0;
  std::uint64_t correct_bytes = 0;
  std::uint64_t adversary_messages = 0;
  std::uint64_t adversary_bytes = 0;
  std::uint64_t phantom_messages = 0;
};

class Metrics {
 public:
  void begin_beat();
  void count_correct(std::size_t payload_bytes);
  void count_adversary(std::size_t payload_bytes);
  void count_phantom();

  // Totals across all beats so far.
  const BeatTraffic& total() const { return total_; }
  // Per-beat history (entry b = beat b).
  const std::vector<BeatTraffic>& history() const { return history_; }

  // Mean correct messages / bytes per beat over the recorded history.
  double mean_correct_messages_per_beat() const;
  double mean_correct_bytes_per_beat() const;

 private:
  BeatTraffic total_;
  std::vector<BeatTraffic> history_;
};

}  // namespace ssbft
