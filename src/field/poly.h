// Univariate polynomials over Z_p.
//
// Coefficient vectors are little-endian (coeffs[i] multiplies x^i). The zero
// polynomial is the empty vector; degree() of zero is -1 by convention.
//
// The value-returning arithmetic is the convenient API; hot paths use the
// `_into` scratch variants, which write into caller-provided storage so a
// long-lived buffer's capacity is reused call after call.
#pragma once

#include <cstdint>
#include <vector>

#include "field/fp.h"
#include "support/rng.h"

namespace ssbft {

class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<std::uint64_t> coeffs);

  // A uniformly random polynomial of degree <= deg with the given constant
  // term (the standard Shamir dealing shape).
  static Poly random_with_constant(const PrimeField& F, int deg,
                                   std::uint64_t constant, Rng& rng);
  // A uniformly random polynomial of degree <= deg.
  static Poly random(const PrimeField& F, int deg, Rng& rng);

  // -1 for the zero polynomial.
  int degree() const;
  const std::vector<std::uint64_t>& coeffs() const { return coeffs_; }
  std::uint64_t coeff(std::size_t i) const {
    return i < coeffs_.size() ? coeffs_[i] : 0;
  }
  bool is_zero() const;

  std::uint64_t eval(const PrimeField& F, std::uint64_t x) const;

  // Scratch counterpart of eval for coefficients held in flat storage
  // (count little-endian coefficients starting at coeffs). Coefficients
  // must be canonical — this is the unchecked fast path for
  // already-validated buffers.
  static std::uint64_t eval_raw(const PrimeField& F,
                                const std::uint64_t* coeffs, std::size_t count,
                                std::uint64_t x) {
    return F.horner(coeffs, count, x);
  }

  Poly add(const PrimeField& F, const Poly& o) const;
  Poly sub(const PrimeField& F, const Poly& o) const;
  Poly mul(const PrimeField& F, const Poly& o) const;
  Poly scale(const PrimeField& F, std::uint64_t c) const;

  // Scratch variants: write the raw (unnormalized) coefficients of
  // *this (+|*) o into `out`, resizing it as needed — capacity is reused
  // across calls. `out` must not alias either operand's storage.
  void add_into(const PrimeField& F, const Poly& o,
                std::vector<std::uint64_t>& out) const;
  void mul_into(const PrimeField& F, const Poly& o,
                std::vector<std::uint64_t>& out) const;

  // Polynomial division: *this = q * divisor + r. divisor must be nonzero.
  // Returns {q, r}.
  std::pair<Poly, Poly> divmod(const PrimeField& F, const Poly& divisor) const;

  // Drops trailing zero coefficients (canonical form).
  void normalize();

  bool operator==(const Poly& o) const { return coeffs_ == o.coeffs_; }

 private:
  std::vector<std::uint64_t> coeffs_;
};

// Unique polynomial of degree < points.size() through the given points.
// The xs must be distinct canonical field elements. Internally builds the
// master polynomial prod(x - xs[j]) once, peels off each node's basis by
// synthetic division, and inverts all denominators with a single batch
// inversion — O(m^2) multiplications and exactly one field inversion.
Poly lagrange_interpolate(const PrimeField& F,
                          const std::vector<std::uint64_t>& xs,
                          const std::vector<std::uint64_t>& ys);

}  // namespace ssbft
