// Coin-leverage experiment (Section 6.1): how much of the paper's result
// is "the coin"?
//
// The discussion section argues the self-stabilizing shared coin is a
// general tool: retrofitting it into the Dolev-Welch-style gamble turns
// the exponential all-local-coins-align event into a constant-probability
// common event. We measure four rungs of the ladder under the same
// adversaries and (n, f) grid:
//
//   DW + local coins      (the [9,10] baseline: expected exponential)
//   DW + shared coin      (Section 6.1 retrofit: expected O(1/p0))
//   DW + shared FM coin   (same, on the real GVSS message-level coin)
//   ss-Byz-Clock-Sync     (the paper's full algorithm)
//
// A second table runs the adaptive quorum splitter — the strongest
// clock-channel attack the model admits — against the retrofit and the
// full algorithm.
#include <iostream>

#include "bench_common.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

enum class DwMode { kLocal, kSharedOracle, kSharedFm };

EngineBuilder build_dw_variant(World w, DwMode mode, bool adaptive) {
  return [w, mode, adaptive](std::uint64_t seed) {
    EngineBundle b;
    std::shared_ptr<OracleBeacon> beacon;
    CoinSpec spec;
    if (mode == DwMode::kSharedOracle) {
      beacon = std::make_shared<OracleBeacon>(w.n, OracleCoinParams{0.45, 0.45},
                                              Rng(seed).split("beacon"));
      spec = oracle_coin_spec(beacon);
    } else if (mode == DwMode::kSharedFm) {
      spec = fm_coin_spec();
    }
    auto factory = [mode, spec, k = w.k](const ProtocolEnv& env, Rng rng)
        -> std::unique_ptr<Protocol> {
      if (mode == DwMode::kLocal) {
        return std::make_unique<DolevWelchClock>(env, k, rng);
      }
      return std::make_unique<DolevWelchSharedCoin>(env, k, spec, rng);
    };
    std::unique_ptr<Adversary> adv;
    if (w.actual > 0) {
      adv = adaptive ? make_adaptive_quorum_splitter(w.k, 0)
                     : make_attack(w.attack, w.k, 0);
    }
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    if (beacon) {
      b.engine->add_listener(beacon.get());
      b.keepalive = beacon;
    }
    return b;
  };
}

EngineBuilder build_sync_adaptive(World w) {
  return [w](std::uint64_t seed) {
    EngineBundle b;
    auto beacon = std::make_shared<OracleBeacon>(
        w.n, OracleCoinParams{0.45, 0.45}, Rng(seed).split("beacon"));
    CoinSpec spec = oracle_coin_spec(beacon);
    auto factory = [spec, k = w.k](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByzClockSync>(env, k, spec, rng);
    };
    b.engine = std::make_unique<Engine>(
        world_config(w, seed), factory,
        make_adaptive_quorum_splitter(w.k, 0));
    b.engine->add_listener(beacon.get());
    b.keepalive = beacon;
    return b;
  };
}

std::string cell(const TrialStats& s, std::uint64_t cap) {
  if (s.converged == 0) return ">" + std::to_string(cap);
  std::string out = fmt_double(s.mean, 1);
  if (s.converged < s.trials) {
    out += " (" + std::to_string(s.trials - s.converged) + " censored)";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  std::cout << "=== Coin leverage (Section 6.1): the same gamble, three "
               "coins (k = 8, split adversary) ===\n\n";
  AsciiTable t({"n", "f", "DW local coins", "DW + shared coin",
                "DW + shared FM coin", "ss-Byz-Clock-Sync"});
  struct NF {
    std::uint32_t n, f;
  };
  for (const auto [n, f] : {NF{4, 1}, NF{7, 2}, NF{10, 3}}) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 8;
    w.attack = Attack::kSplit;

    auto measure = [&](const EngineBuilder& b, std::uint64_t cap,
                       std::uint64_t trials) {
      return run_trials(b, runner_config(trials, 90 + n, cap));
    };
    const std::uint64_t cap = 60000;
    auto local = measure(build_dw_variant(w, DwMode::kLocal, false), cap, 10);
    auto shared =
        measure(build_dw_variant(w, DwMode::kSharedOracle, false), 4000, 20);
    auto shared_fm =
        measure(build_dw_variant(w, DwMode::kSharedFm, false), 4000, 10);
    World ws = w;
    ws.attack = Attack::kSkew;
    auto full = measure(build_clock_sync(ws), 8000, 20);
    t.add_row({std::to_string(n), std::to_string(f), cell(local, cap),
               cell(shared, 4000), cell(shared_fm, 4000), cell(full, 8000)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: column 1 explodes with n-f; columns 2-4 "
               "stay constant — the coin is where the exponential/constant "
               "divide lives.\n";

  std::cout << "\n=== Adaptive quorum splitter (strongest clock-channel "
               "attack) ===\n\n";
  AsciiTable t2({"n", "f", "DW + shared coin", "ss-Byz-Clock-Sync"});
  for (const auto [n, f] : {NF{4, 1}, NF{7, 2}}) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 8;
    RunnerConfig rc = runner_config(20, 95 + n, 20000);
    auto dw = run_trials(build_dw_variant(w, DwMode::kSharedOracle, true), rc);
    auto sync = run_trials(build_sync_adaptive(w), rc);
    t2.add_row({std::to_string(n), std::to_string(f),
                cell(dw, 20000) + " [" + converged_cell(dw) + "]",
                cell(sync, 20000) + " [" + converged_cell(sync) + "]"});
  }
  t2.print(std::cout);
  std::cout << "\nthe splitter sustains a partition whenever a value's "
               "correct support lands in [n-2f, n-f); the paper's algorithm "
               "re-merges the groups through the phase-3 common gamble.\n";
  std::cout << "\nCSV follows:\n";
  t.print_csv(std::cout);
  return 0;
}
