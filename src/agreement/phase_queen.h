// Binary Phase-Queen Byzantine agreement: f < n/4, f+1 phases of 2 rounds.
//
// The lighter sibling of phase king, matching the resiliency class of the
// paper's [15] baseline (deterministic, linear, but only f < n/4). Phase p
// (queen = node p):
//   R1  broadcast v; if some value has >= n-f support adopt it and mark
//       strong, else v := majority (not strong);
//   R2  queen broadcasts v; non-strong nodes adopt the queen's value.
//
// With n > 4f, a strong node's value d has >= n-2f correct senders, so
// every correct node's majority is d (the other values total < n-2f) — in
// particular a correct queen's, which unifies everyone; strength persists
// unanimity. With f >= n/4 the majority argument collapses, which is
// exactly what bench_resiliency demonstrates.
#pragma once

#include "agreement/ba_interface.h"

namespace ssbft {

class PhaseQueenInstance final : public BaInstance {
 public:
  PhaseQueenInstance(const ProtocolEnv& env, bool input);

  int rounds() const override { return 2 * (static_cast<int>(env_.f) + 1); }
  void send_round(int round, Outbox& out, ChannelId base) override;
  void receive_round(int round, const Inbox& in, ChannelId base) override;
  std::uint64_t output() const override { return v_ ? 1 : 0; }
  void randomize_state(Rng& rng) override;

 private:
  ProtocolEnv env_;
  bool v_;
  bool strong_ = false;
};

BaSpec phase_queen_spec();

}  // namespace ssbft
