// Shared experiment plumbing for the bench binaries: engine builders for
// every algorithm family in Table 1, with a uniform adversary selection.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "adversary/adversaries.h"
#include "agreement/phase_king.h"
#include "agreement/phase_queen.h"
#include "agreement/turpin_coan.h"
#include "baselines/dolev_welch.h"
#include "baselines/pipelined_ba_clock.h"
#include "coin/fm_coin.h"
#include "coin/oracle_coin.h"
#include "core/cascade.h"
#include "core/clock4.h"
#include "core/clock_sync.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace ssbft::bench {

// Which coin the paper's algorithms run on.
enum class CoinKind {
  kOracle,  // idealized beacon with p0 = p1 = 0.45 (layer isolation)
  kFm,      // full message-level GVSS coin
};

// Adversary selection, uniform across families.
enum class Attack {
  kSilent,
  kNoise,
  kSplit,     // equivocates 0/1 on channel 0
  kSkew,      // conflicting clock stories on channels 0..2
  kCoinAttack // FM-coin attacker on the given channel base (FM runs only)
};

inline std::unique_ptr<Adversary> make_attack(Attack a, ClockValue k,
                                              ChannelId coin_base) {
  switch (a) {
    case Attack::kSilent:
      return make_silent_adversary();
    case Attack::kNoise:
      return make_random_noise_adversary(8, 48);
    case Attack::kSplit: {
      ByteWriter x, y;
      x.u8(0);
      y.u8(1);
      return make_split_value_adversary(0, std::move(x).take(),
                                        std::move(y).take());
    }
    case Attack::kSkew:
      return make_clock_skew_adversary(k, 0);
    case Attack::kCoinAttack:
      return make_fm_coin_attacker(PrimeField::kDefaultPrime, coin_base);
  }
  return make_silent_adversary();
}

struct World {
  std::uint32_t n = 4;
  std::uint32_t f = 1;      // protocol's assumed bound
  std::uint32_t actual = 1; // actually-faulty node count (for boundary runs)
  ClockValue k = 64;
  Attack attack = Attack::kSkew;
  CoinKind coin = CoinKind::kOracle;
  // Per-channel byte accounting (bench_message_complexity's breakdown).
  bool track_channel_bytes = false;
};

inline EngineConfig world_config(const World& w, std::uint64_t seed) {
  EngineConfig cfg;
  cfg.n = w.n;
  cfg.f = w.f;
  cfg.faulty = EngineConfig::last_ids_faulty(w.n, w.actual);
  cfg.seed = seed;
  cfg.track_channel_bytes = w.track_channel_bytes;
  return cfg;
}

// ss-Byz-Clock-Sync (the paper).
inline EngineBuilder build_clock_sync(World w) {
  return [w](std::uint64_t seed) {
    EngineBundle b;
    CoinSpec spec;
    std::shared_ptr<OracleBeacon> beacon;
    if (w.coin == CoinKind::kOracle) {
      beacon = std::make_shared<OracleBeacon>(w.n, OracleCoinParams{0.45, 0.45},
                                              Rng(seed).split("beacon"));
      spec = oracle_coin_spec(beacon);
    } else {
      spec = fm_coin_spec();
    }
    const auto coin_base = static_cast<ChannelId>(
        3 + SsByz4Clock::channels_needed(spec, CoinPipelineMode::kPerSubClock));
    auto adv =
        w.actual == 0 ? nullptr : make_attack(w.attack, w.k, coin_base);
    auto factory = [spec, k = w.k](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByzClockSync>(env, k, spec, rng);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    if (beacon) {
      b.engine->add_listener(beacon.get());
      b.keepalive = beacon;
    }
    return b;
  };
}

// Dolev-Welch randomized baseline ([10] sync row).
inline EngineBuilder build_dolev_welch(World w) {
  return [w](std::uint64_t seed) {
    EngineBundle b;
    auto adv = w.actual == 0 ? nullptr : make_attack(w.attack, w.k, 0);
    auto factory = [k = w.k](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<DolevWelchClock>(env, k, rng);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    return b;
  };
}

// Pipelined-BA deterministic baselines ([15] = queen, [7] = king).
inline EngineBuilder build_pipelined(World w, bool king) {
  return [w, king](std::uint64_t seed) {
    EngineBundle b;
    const BaSpec spec =
        turpin_coan_spec(king ? phase_king_spec() : phase_queen_spec());
    auto adv = w.actual == 0 ? nullptr : make_attack(w.attack, w.k, 0);
    auto factory = [spec, k = w.k](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<PipelinedBaClock>(env, k, spec, rng);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    return b;
  };
}

// Section 5 cascade (2^levels-clock).
inline EngineBuilder build_cascade(World w, std::uint32_t levels) {
  return [w, levels](std::uint64_t seed) {
    EngineBundle b;
    auto beacon = std::make_shared<OracleBeacon>(
        w.n, OracleCoinParams{0.45, 0.45}, Rng(seed).split("beacon"));
    CoinSpec spec = oracle_coin_spec(beacon);
    auto adv = w.actual == 0 ? nullptr : make_attack(w.attack, w.k, 0);
    auto factory = [spec, levels](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<CascadeClock>(env, levels, spec, rng);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    b.engine->add_listener(beacon.get());
    b.keepalive = beacon;
    return b;
  };
}

inline std::string stat_cell(const TrialStats& s) {
  if (s.converged == 0) return "none converged";
  return fmt_double(s.mean, 1) + " (p90 " + fmt_double(s.p90, 0) + ")";
}

// "converged/trials" cell, reflecting any --trials override.
inline std::string converged_cell(const TrialStats& s) {
  return std::to_string(s.converged) + "/" + std::to_string(s.trials);
}

// ---------------------------------------------------------------------------
// Shared CLI for the bench mains. Every binary accepts the same three
// knobs; a value of 0 means "keep the experiment's per-table default"
// (for --jobs, 0 means one worker per hardware thread, the default).
struct BenchOptions {
  std::uint64_t trials = 0;  // override every experiment's trial count
  std::uint64_t seed = 0;    // offset added to every experiment's base seed
  std::uint64_t jobs = 0;    // run_trials worker threads
};

inline BenchOptions& options() {
  static BenchOptions opts;
  return opts;
}

inline void parse_cli(int argc, char** argv) {
  BenchOptions& o = options();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--trials N] [--jobs J] [--seed S]\n"
                   "  --trials N  override every experiment's trial count "
                   "(0 = keep per-experiment defaults)\n"
                   "  --jobs J    worker threads for the trial runner "
                   "(default/0: one per hardware thread; 1 = serial; "
                   "clamped to 4x hardware threads)\n"
                   "  --seed S    offset added to every experiment's base "
                   "seed (fresh independent replication; 0 = defaults)\n"
                   "results are bit-identical across --jobs values.\n";
      std::exit(0);
    }
    const auto take_value = [&](std::uint64_t& slot) {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        std::exit(2);
      }
      const char* text = argv[++i];
      // Strict digits-only: strtoull alone would skip leading whitespace
      // and wrap negatives like " -3" to ~2^64.
      bool digits_only = *text != '\0';
      for (const char* p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') {
          digits_only = false;
          break;
        }
      }
      errno = 0;
      const unsigned long long v = std::strtoull(text, nullptr, 10);
      if (!digits_only || errno == ERANGE) {
        std::cerr << argv[0] << ": " << arg
                  << " needs a non-negative integer, got '" << text << "'\n";
        std::exit(2);
      }
      slot = v;
    };
    if (arg == "--trials") {
      take_value(o.trials);
    } else if (arg == "--jobs") {
      take_value(o.jobs);
    } else if (arg == "--seed") {
      take_value(o.seed);
    } else {
      std::cerr << argv[0] << ": unknown option '" << arg
                << "' (try --help)\n";
      std::exit(2);
    }
  }
}

inline std::uint64_t trials_or(std::uint64_t def) {
  return options().trials == 0 ? def : options().trials;
}

// --seed shifts, rather than replaces, each experiment's base seed: the
// per-table offsets (e.g. 2000 + n) keep rows statistically independent
// while a nonzero S yields a fresh independent replication of the whole
// binary.
inline std::uint64_t shifted_seed(std::uint64_t def) {
  return def + options().seed;
}

// RunnerConfig with the CLI overrides applied on top of the experiment's
// defaults. jobs comes straight from --jobs (0 = hardware concurrency).
inline RunnerConfig runner_config(std::uint64_t default_trials,
                                  std::uint64_t default_seed,
                                  std::uint64_t max_beats) {
  RunnerConfig rc;
  rc.trials = trials_or(default_trials);
  rc.base_seed = shifted_seed(default_seed);
  rc.jobs = options().jobs;
  rc.convergence.max_beats = max_beats;
  return rc;
}

}  // namespace ssbft::bench
