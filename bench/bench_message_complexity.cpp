// Message-complexity experiment: correct-node traffic per beat vs n for
// every algorithm family (Table 1's families plus the cascade), measured
// after convergence so the steady state is compared.
//
// Expected shape: Dolev-Welch O(n^2) messages of O(1) words; pipelined BA
// clocks O(f * n^2) (R concurrent instances, R ~ f); ss-Byz-Clock-Sync
// with the FM coin O(n^2) messages but O(n) words each from the GVSS
// rounds (O(n^3) words per beat); with the oracle coin, O(n^2) total.
#include <iostream>
#include <sstream>

#include "bench_common.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

struct Traffic {
  double msgs = 0, bytes = 0;
};

// Mean traffic over the second half of the run (the first half is warmup).
Traffic second_half_mean(const Engine& eng) {
  const auto& hist = eng.metrics().history();
  Traffic t;
  std::uint64_t counted = 0;
  for (std::size_t i = hist.size() / 2; i < hist.size(); ++i) {
    t.msgs += static_cast<double>(hist[i].correct_messages);
    t.bytes += static_cast<double>(hist[i].correct_bytes);
    ++counted;
  }
  t.msgs /= static_cast<double>(counted);
  t.bytes /= static_cast<double>(counted);
  return t;
}

Traffic steady_state(const EngineBuilder& builder, std::uint64_t beats) {
  auto bundle = builder(shifted_seed(123));
  bundle.engine->run_beats(beats);
  return second_half_mean(*bundle.engine);
}

// Channel labels for the full FM stack rooted at 0, derived from the same
// layout arithmetic the stack itself uses (SsByzClockSync: three own
// channels, then SsByz4Clock in per-sub-clock mode — each 2-clock owns one
// clock channel + a coin pipeline — then the phase-3 coin), so the table
// tracks any change to the composition.
std::string fm_channel_label(ChannelId ch) {
  static const char* kRound[] = {"deal", "cross", "votes", "shares"};
  const std::uint32_t coin_chs = FmCoinInstance::kRounds;
  const auto coin_round = [&](const char* host, std::uint32_t r) {
    std::string label = std::string("coin[") + host + "] ";
    if (r < 4) {
      label += kRound[r];
    } else {
      label += "r" + std::to_string(r + 1);
    }
    return label;
  };
  if (ch < 3) {
    return std::string("clock-sync ") +
           (ch == 0 ? "full" : ch == 1 ? "prop" : "bit");
  }
  std::uint32_t off = ch - 3;  // into SsByz4Clock's per-sub-clock block
  const std::uint32_t sub = 1 + coin_chs;  // one SsByz2Clock's channels
  if (off < sub) {
    return off == 0 ? "2clk[a1] tri" : coin_round("a1", off - 1);
  }
  off -= sub;
  if (off < sub) {
    return off == 0 ? "2clk[a2] tri" : coin_round("a2", off - 1);
  }
  off -= sub;
  if (off < coin_chs) return coin_round("p3", off);
  return "ch " + std::to_string(ch);
}

// Steady-state per-round (= per-channel) byte breakdown from an engine
// whose second-half window was measured with channel tracking on.
void print_fm_round_breakdown(const Engine& eng, std::uint32_t n,
                              std::uint32_t f, std::ostream& os) {
  const auto& per_ch = eng.channel_bytes();
  const double window = static_cast<double>(eng.channel_bytes_beats());
  double total = 0;
  for (std::uint64_t b : per_ch) total += static_cast<double>(b);
  os << "per-round bytes/beat, ss-Byz-Clock-Sync (FM coin), n = " << n
     << ", f = " << f << ":\n";
  AsciiTable rt({"round (channel)", "bytes/beat", "share"});
  for (std::size_t ch = 0; ch < per_ch.size(); ++ch) {
    const double per_beat = static_cast<double>(per_ch[ch]) / window;
    rt.add_row({fm_channel_label(static_cast<ChannelId>(ch)) + " (" +
                    std::to_string(ch) + ")",
                fmt_double(per_beat, 1),
                fmt_double(100.0 * static_cast<double>(per_ch[ch]) / total, 1) +
                    "%"});
  }
  rt.print(os);
  os << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  if (options().trials != 0 || options().jobs != 0) {
    std::cerr << "note: this bench measures one steady-state engine per row; "
                 "--trials/--jobs have no effect here (--seed applies)\n";
  }
  std::cout << "=== Steady-state traffic per beat (all correct nodes, "
               "k = 16, silent adversary) ===\n\n";
  AsciiTable t({"algorithm", "n", "f", "msgs/beat", "KiB/beat",
                "msgs/beat/node"});
  std::ostringstream breakdown;
  struct NF {
    std::uint32_t n, f;
  };
  for (const auto [n, f] : {NF{4, 1}, NF{7, 2}, NF{10, 3}, NF{13, 4}}) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 16;
    w.attack = Attack::kSilent;

    auto add_traffic = [&](const std::string& name, const Traffic& tr) {
      t.add_row({name, std::to_string(n), std::to_string(f),
                 fmt_double(tr.msgs, 0), fmt_double(tr.bytes / 1024.0, 1),
                 fmt_double(tr.msgs / (n - f), 1)});
    };
    auto add = [&](const std::string& name, const EngineBuilder& b,
                   std::uint64_t beats) {
      add_traffic(name, steady_state(b, beats));
    };

    add("Dolev-Welch [10]", build_dolev_welch(w), 400);
    {
      World wq = w;
      wq.f = (n - 1) / 4;
      wq.actual = wq.f;
      add("pipelined queen [15]", build_pipelined(wq, false), 200);
    }
    add("pipelined king [7]", build_pipelined(w, true), 200);
    add("ss-Byz-Clock-Sync (oracle)", build_clock_sync(w), 300);
    {
      // One tracked run feeds both the table row and the per-round
      // breakdown (channel tracking changes nothing but wall-clock).
      World wf = w;
      wf.coin = CoinKind::kFm;
      wf.track_channel_bytes = true;
      const std::uint64_t beats = n >= 10 ? 60 : 150;
      auto bundle = build_clock_sync(wf)(shifted_seed(123));
      bundle.engine->run_beats(beats / 2);
      bundle.engine->reset_channel_bytes();
      bundle.engine->run_beats(beats - beats / 2);
      add_traffic("ss-Byz-Clock-Sync (FM coin)",
                  second_half_mean(*bundle.engine));
      print_fm_round_breakdown(*bundle.engine, n, f, breakdown);
    }
  }
  t.print(std::cout);
  std::cout << "\n=== FM-coin stack, steady-state per-round byte breakdown "
               "===\n\n";
  std::cout << breakdown.str();
  std::cout << "CSV follows:\n";
  t.print_csv(std::cout);
  return 0;
}
