// One-shot synchronous Byzantine agreement instances.
//
// The deterministic baselines of Table 1 ([15]- and [7]-class) are built by
// pipelining one-shot BA on the clock value (the "pipelining concept" of
// Section 6.2). An instance runs a fixed number of rounds; round r's
// messages travel on channel base + r - 1, so a pipeline of staggered
// instances (one per round position) needs no session numbers — the same
// recycling trick as ss-Byz-Coin-Flip.
//
// Contract (for n > resilience bound):
//   agreement: all correct nodes output the same value, whatever the
//              inputs and the Byzantine behavior;
//   validity:  if all correct inputs equal v, the output is v.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/message.h"
#include "sim/protocol.h"
#include "support/rng.h"

namespace ssbft {

class BaInstance {
 public:
  virtual ~BaInstance() = default;
  virtual int rounds() const = 0;
  // Round r in [1, rounds()]; messages go on channel base + r - 1.
  virtual void send_round(int round, Outbox& out, ChannelId base) = 0;
  virtual void receive_round(int round, const Inbox& in, ChannelId base) = 0;
  // Valid after receive_round(rounds()).
  virtual std::uint64_t output() const = 0;
  virtual void randomize_state(Rng& rng) = 0;
};

struct BaSpec {
  std::function<std::unique_ptr<BaInstance>(const ProtocolEnv&,
                                            std::uint64_t input, Rng)>
      make;
  // Round count as a function of f (e.g. 3(f+1) for phase king). A
  // constant of the code: every node computes the same value from n, f.
  std::function<int(std::uint32_t f)> rounds_for;
  // Smallest n for which `f` faults are tolerated, as a multiplier:
  // n > resilience_denominator * f (3 for phase king, 4 for phase queen).
  int resilience_denominator = 3;
};

}  // namespace ssbft
