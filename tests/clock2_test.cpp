// Tests for ss-Byz-2-Clock (Figure 2): Theorem 2's convergence and the
// lemmas' closure/safety properties, under the adversary gallery.
#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "coin/local_coin.h"
#include "coin/oracle_coin.h"
#include "core/clock2.h"
#include "harness/convergence.h"
#include "harness/runner.h"

namespace ssbft {
namespace {

enum class Attack { kSilent, kNoise, kSplit, kAntiCoin };

struct Clock2Param {
  std::uint32_t n;
  std::uint32_t f;
  Attack attack;
};

EngineBundle build_clock2(const Clock2Param& p, std::uint64_t seed,
                          OracleCoinParams coin_params = {0.45, 0.45}) {
  auto beacon = std::make_shared<OracleBeacon>(p.n, coin_params,
                                               Rng(seed).split("beacon"));
  CoinSpec spec = oracle_coin_spec(beacon);
  EngineConfig cfg;
  cfg.n = p.n;
  cfg.f = p.f;
  cfg.faulty = EngineConfig::last_ids_faulty(p.n, p.f);
  cfg.seed = seed;
  std::unique_ptr<Adversary> adv;
  switch (p.attack) {
    case Attack::kSilent:
      adv = make_silent_adversary();
      break;
    case Attack::kNoise:
      adv = make_random_noise_adversary(8, 32);
      break;
    case Attack::kSplit: {
      ByteWriter a, b;
      a.u8(0);
      b.u8(1);
      adv = make_split_value_adversary(0, std::move(a).take(),
                                       std::move(b).take());
      break;
    }
    case Attack::kAntiCoin:
      adv = make_anti_coin_adversary(beacon, 0);
      break;
  }
  if (p.f == 0) adv = nullptr;
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByz2Clock>(env, spec, 0, rng);
  };
  EngineBundle bundle;
  bundle.engine = std::make_unique<Engine>(cfg, factory, std::move(adv));
  bundle.engine->add_listener(beacon.get());
  bundle.keepalive = beacon;
  return bundle;
}

class Clock2ConvergenceTest : public ::testing::TestWithParam<Clock2Param> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, Clock2ConvergenceTest,
    ::testing::Values(
        Clock2Param{4, 1, Attack::kSilent}, Clock2Param{4, 1, Attack::kNoise},
        Clock2Param{4, 1, Attack::kSplit}, Clock2Param{4, 1, Attack::kAntiCoin},
        Clock2Param{7, 2, Attack::kSilent}, Clock2Param{7, 2, Attack::kSplit},
        Clock2Param{7, 2, Attack::kAntiCoin}, Clock2Param{10, 3, Attack::kSplit},
        Clock2Param{10, 3, Attack::kAntiCoin}, Clock2Param{13, 4, Attack::kSplit},
        Clock2Param{6, 1, Attack::kAntiCoin}, Clock2Param{4, 0, Attack::kSilent}));

TEST_P(Clock2ConvergenceTest, ConvergesFromArbitraryStateAndStaysSynced) {
  // 5 seeds per configuration; every run must converge well within the
  // budget (expected-constant time, and the tail decays geometrically).
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto bundle = build_clock2(GetParam(), seed * 101);
    ConvergenceConfig cc;
    cc.max_beats = 3000;
    cc.confirm_window = 16;
    const auto res = measure_convergence(*bundle.engine, cc);
    ASSERT_TRUE(res.converged) << "seed " << seed;
    // Closure: keep running; the 2-clock must alternate deterministically.
    auto prev = bundle.engine->correct_clocks().front();
    for (int i = 0; i < 40; ++i) {
      bundle.engine->run_beat();
      ASSERT_TRUE(clocks_agree(*bundle.engine));
      const auto cur = bundle.engine->correct_clocks().front();
      EXPECT_EQ(cur, (prev + 1) % 2);
      prev = cur;
    }
  }
}

TEST(Clock2, Lemma2UnanimousFlipIsDeterministic) {
  // From a synced state the flip never depends on the coin or adversary
  // messages (Lemma 2): run two worlds with different coin params and
  // different adversaries from the same synced state; both flip alike.
  auto bundle = build_clock2({4, 1, Attack::kSplit}, 5);
  ConvergenceConfig cc;
  cc.max_beats = 2000;
  ASSERT_TRUE(measure_convergence(*bundle.engine, cc).converged);
  auto v = bundle.engine->correct_clocks().front();
  for (int i = 0; i < 20; ++i) {
    bundle.engine->run_beat();
    v = (v + 1) % 2;
    for (auto c : bundle.engine->correct_clocks()) EXPECT_EQ(c, v);
  }
}

TEST(Clock2, ReconvergesAfterTransientCorruption) {
  auto bundle = build_clock2({7, 2, Attack::kSplit}, 9);
  ConvergenceConfig cc;
  cc.max_beats = 2000;
  ASSERT_TRUE(measure_convergence(*bundle.engine, cc).converged);
  // Corrupt two correct nodes' entire state mid-run.
  bundle.engine->corrupt_node(0);
  bundle.engine->corrupt_node(1);
  const auto res2 = measure_convergence(*bundle.engine, cc);
  EXPECT_TRUE(res2.converged);
}

TEST(Clock2, SurvivesPhantomMessagePrefix) {
  auto beacon = std::make_shared<OracleBeacon>(4, OracleCoinParams{0.45, 0.45},
                                               Rng(3).split("beacon"));
  CoinSpec spec = oracle_coin_spec(beacon);
  EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.faulty = {3};
  cfg.seed = 3;
  cfg.faults.network_faulty_until = 10;
  cfg.faults.phantoms_per_beat = 6;
  cfg.faults.faulty_drop_prob = 0.3;
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByz2Clock>(env, spec, 0, rng);
  };
  Engine eng(cfg, factory, make_silent_adversary());
  eng.add_listener(beacon.get());
  ConvergenceConfig cc;
  cc.max_beats = 2000;
  EXPECT_TRUE(measure_convergence(eng, cc).converged);
}

TEST(Clock2, ExpectedConvergenceIsConstantAcrossN) {
  // Theorem 2: expected convergence depends on p0, p1 — not on n. Compare
  // mean convergence beats for n = 4 and n = 13 under the same coin.
  auto run_mean = [](std::uint32_t n, std::uint32_t f) {
    RunnerConfig rc;
    rc.trials = 40;
    rc.base_seed = 500;
    rc.convergence.max_beats = 4000;
    auto stats = run_trials(
        [&](std::uint64_t seed) {
          return build_clock2({n, f, Attack::kSplit}, seed);
        },
        rc);
    EXPECT_EQ(stats.converged, stats.trials);
    return stats.mean;
  };
  const double mean_small = run_mean(4, 1);
  const double mean_large = run_mean(13, 4);
  // Constant-time: the large system may not be more than a small factor
  // slower (generous bound; the paper predicts parity).
  EXPECT_LT(mean_large, std::max(4.0 * mean_small, 40.0));
}

TEST(Clock2, LowCommonCoinSlowsConvergence) {
  // Sensitivity: halving p0+p1 must not speed convergence up; with
  // p0+p1 ~ 0.9 vs 0.1, the gap should be pronounced (Theorem 2's c1^2*c2).
  auto mean_for = [&](OracleCoinParams cp) {
    RunnerConfig rc;
    rc.trials = 30;
    rc.base_seed = 900;
    rc.convergence.max_beats = 20000;
    auto stats = run_trials(
        [&](std::uint64_t seed) {
          return build_clock2({7, 2, Attack::kSplit}, seed, cp);
        },
        rc);
    EXPECT_EQ(stats.converged, stats.trials);
    return stats.mean;
  };
  const double fast = mean_for({0.45, 0.45});
  const double slow = mean_for({0.05, 0.05});
  EXPECT_GT(slow, fast);
}

TEST(Clock2, LocalCoinDoesNotBreakClosure) {
  // With a local (non-common) coin the algorithm may converge slowly, but
  // once synced, closure is still deterministic (Lemma 2 needs no coin).
  CoinSpec spec = local_coin_spec();
  EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 0;
  cfg.seed = 21;
  cfg.faults.randomize_genesis = false;  // start synced on purpose
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByz2Clock>(env, spec, 0, rng);
  };
  Engine eng(cfg, factory, nullptr);
  auto prev = eng.correct_clocks().front();
  for (int i = 0; i < 30; ++i) {
    eng.run_beat();
    ASSERT_TRUE(clocks_agree(eng));
    const auto cur = eng.correct_clocks().front();
    EXPECT_EQ(cur, (prev + 1) % 2);
    prev = cur;
  }
}

TEST(Clock2, FullStackWithFmCoinConverges) {
  // The end-to-end Theorem 1 + Theorem 2 composition: message-level GVSS
  // coin under a Byzantine split attack.
  CoinSpec spec = fm_coin_spec();
  EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.faulty = {3};
  cfg.seed = 55;
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByz2Clock>(env, spec, 0, rng);
  };
  ByteWriter a, b;
  a.u8(0);
  b.u8(1);
  Engine eng(cfg, factory,
             make_split_value_adversary(0, std::move(a).take(),
                                        std::move(b).take()));
  ConvergenceConfig cc;
  cc.max_beats = 1500;
  EXPECT_TRUE(measure_convergence(eng, cc).converged);
}

TEST(Clock2, ChannelAccounting) {
  CoinSpec spec = local_coin_spec();
  EXPECT_EQ(SsByz2Clock::channels_needed(spec), 1u);
  CoinSpec fm = fm_coin_spec();
  EXPECT_EQ(SsByz2Clock::channels_needed(fm), 5u);
  EXPECT_EQ(SsByz2Clock::channels_needed_external_coin(), 1u);
}

}  // namespace
}  // namespace ssbft
