// ss-Byz-Coin-Flip (Figure 1): the pipelining transform.
//
// Runs Delta_A staggered instances of a probabilistic coin-flipping
// algorithm A, one per round-position. Each beat, slot j executes round
// j+1 of its instance; the oldest slot finishes and yields the beat's bit;
// slots shift and a fresh instance enters at slot 0. Messages are tagged by
// round position (channel base + j), which doubles as the paper's
// "session number": at any beat exactly one live instance is executing
// round j+1, so the fixed channel space is unambiguous and recyclable —
// no unbounded counters, as self-stabilization demands.
//
// Lemma 1: once every slot has been refreshed under a coherent network
// (Delta_A beats), the wrapper is a pipelined probabilistic coin-flipping
// algorithm; convergence time equals Delta_A.
#pragma once

#include <memory>
#include <vector>

#include "coin/coin_interface.h"

namespace ssbft {

using CoinInstanceFactory = std::function<std::unique_ptr<CoinInstance>(Rng)>;

class SsByzCoinFlip final : public CoinComponent {
 public:
  // `rounds` must equal the instances' rounds() (the spec carries it so the
  // channel budget is a static constant).
  SsByzCoinFlip(CoinInstanceFactory factory, int rounds, ChannelId base,
                Rng rng);

  void send_phase(Outbox& out) override;
  bool do_receive_phase(const Inbox& in) override;
  void randomize_state(Rng& rng) override;

  int rounds() const { return rounds_; }

 private:
  std::unique_ptr<CoinInstance> fresh_instance();

  CoinInstanceFactory factory_;
  int rounds_;
  ChannelId base_;
  Rng rng_;
  // slots_[j] executes round j+1 at the current beat.
  std::vector<std::unique_ptr<CoinInstance>> slots_;
};

// Builds a CoinSpec wrapping instances from `factory` into a pipeline.
CoinSpec pipelined_coin_spec(CoinInstanceFactory factory, int rounds);

}  // namespace ssbft
