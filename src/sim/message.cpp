#include "sim/message.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace ssbft {

BytesPool::~BytesPool() {
  for (detail::PayloadSlot* s : free_) delete s;
}

SharedBytes BytesPool::acquire() {
  detail::PayloadSlot* s;
  if (free_.empty()) {
    s = new detail::PayloadSlot;
    s->pool = this;
  } else {
    s = free_.back();
    free_.pop_back();
  }
  s->refs = 1;
  return SharedBytes{s};
}

void BytesPool::recycle(detail::PayloadSlot* slot) {
  slot->buf.clear();
  free_.push_back(slot);
}

void Outbox::send(NodeId to, ChannelId channel, const Bytes& payload) {
  SSBFT_REQUIRE_MSG(to < n_, "send target out of range");
  SharedBytes b = pool().acquire();
  b.mutable_bytes().assign(payload.begin(), payload.end());
  ++sent_messages_;
  sent_bytes_ += payload.size();
  sink_->push_back(Message{self_, to, channel, std::move(b)});
}

void Outbox::broadcast(ChannelId channel, const Bytes& payload) {
  sent_messages_ += n_;
  sent_bytes_ += std::uint64_t{payload.size()} * n_;
  // Copy once; every recipient's Message aliases the same slot.
  SharedBytes b = pool().acquire();
  b.mutable_bytes().assign(payload.begin(), payload.end());
  for (NodeId to = 0; to < n_; ++to) {
    sink_->push_back(Message{self_, to, channel, b});
  }
}

void Outbox::clear() {
  sink_->clear();
  sent_messages_ = 0;
  sent_bytes_ = 0;
}

Inbox::Inbox(std::uint32_t n, std::uint32_t max_channels)
    : n_(n),
      max_channels_(max_channels),
      count_(max_channels, 0),
      offset_(max_channels, 0),
      cursor_(max_channels, 0),
      first_(std::size_t{max_channels} * n, nullptr),
      null_row_(n, nullptr) {}

void Inbox::deliver(Message m) {
  if (m.channel >= max_channels_) {
    // Unknown stream: dropped, but the handle is parked until clear() so
    // payload slots release at the beat boundary like every other dropped
    // message (deterministic pool demand — see Engine::run_beat).
    dropped_.push_back(std::move(m));
    return;
  }
  sealed_ = false;  // a later read re-buckets
  staged_.push_back(std::move(m));
}

void Inbox::clear() {
  staged_.clear();
  dropped_.clear();
  sealed_ = false;
}

// Bucket the staged messages' indices into the flat order array and
// canonicalize each bucket. Messages stay put; only 4-byte indices move.
// Cost is proportional to this beat's traffic plus the channels touched
// last beat (their per-channel state is reset here).
void Inbox::seal() const {
  if (sealed_) return;
  sealed_ = true;

  // Reset the previous beat's per-channel state.
  for (ChannelId ch : touched_) {
    count_[ch] = 0;
    std::fill_n(first_.begin() + std::size_t{ch} * n_, n_, nullptr);
  }
  touched_.clear();

  // Count per channel; remember which channels carry traffic.
  for (const Message& m : staged_) {
    if (count_[m.channel]++ == 0) touched_.push_back(m.channel);
  }

  // Prefix offsets over the touched channels (bucket order in order_ is
  // the order channels first appeared; reads only ever use offset+count).
  std::uint32_t acc = 0;
  for (ChannelId ch : touched_) {
    offset_[ch] = acc;
    cursor_[ch] = acc;
    acc += count_[ch];
  }

  // Stable counting placement of indices into the flat array.
  order_.resize(staged_.size());
  for (std::uint32_t i = 0; i < staged_.size(); ++i) {
    order_[cursor_[staged_[i].channel]++] = i;
  }

  // Canonical order within each bucket: sender id, stable (duplicates keep
  // arrival order — equal keys never shift). Insertion sort is in-place
  // and allocation-free; buckets are near-sorted already (correct senders
  // arrive in id order, Byzantine/phantom stragglers follow).
  const Message* const msgs = staged_.data();
  for (ChannelId ch : touched_) {
    std::uint32_t* const b = order_.data() + offset_[ch];
    const std::uint32_t len = count_[ch];
    for (std::uint32_t i = 1; i < len; ++i) {
      const std::uint32_t idx = b[i];
      const NodeId key = msgs[idx].from;
      std::uint32_t j = i;
      for (; j > 0 && msgs[b[j - 1]].from > key; --j) b[j] = b[j - 1];
      b[j] = idx;
    }
    // First-per-sender table: one pass in canonical order. The pointers
    // land on the shared slots' byte storage, which never moves.
    const Bytes** row = first_.data() + std::size_t{ch} * n_;
    for (std::uint32_t i = 0; i < len; ++i) {
      const Message& m = msgs[b[i]];
      if (m.from < n_ && row[m.from] == nullptr) row[m.from] = &m.payload.bytes();
    }
  }
}

MessageView Inbox::on(ChannelId channel) const {
  if (channel >= max_channels_) return MessageView{};
  seal();
  if (count_[channel] == 0) return MessageView{};
  return MessageView{staged_.data(), order_.data() + offset_[channel],
                     count_[channel]};
}

PayloadView Inbox::first_per_sender(ChannelId channel) const {
  if (channel >= max_channels_) return PayloadView{null_row_.data(), n_};
  seal();
  return PayloadView{first_.data() + std::size_t{channel} * n_, n_};
}

}  // namespace ssbft
