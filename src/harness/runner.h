// Multi-trial experiment runner: builds a fresh seeded engine per trial,
// measures convergence, and aggregates distribution statistics.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/convergence.h"
#include "sim/engine.h"

namespace ssbft {

// A trial's world: the engine plus anything that must stay alive with it
// (e.g. an OracleBeacon registered as a listener).
struct EngineBundle {
  std::unique_ptr<Engine> engine;
  std::shared_ptr<void> keepalive;
};

// Builds the world for one trial from its seed. Must register any
// listeners on the engine before returning.
using EngineBuilder = std::function<EngineBundle(std::uint64_t seed)>;

struct TrialStats {
  std::uint64_t trials = 0;
  std::uint64_t converged = 0;
  // Statistics over the *converged* trials' convergence beats. Censored
  // (non-converged) trials are reported separately and must be disclosed.
  double mean = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  std::uint64_t max = 0;
  // Mean correct-node messages per beat across trials (traffic cost).
  double mean_msgs_per_beat = 0.0;
  // All converged samples (for tail plots), reserved to the trial count
  // up front so the merge loop never reallocates.
  std::vector<std::uint64_t> samples;

  double convergence_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(converged) /
                             static_cast<double>(trials);
  }
};

struct RunnerConfig {
  std::uint64_t trials = 50;
  std::uint64_t base_seed = 1;
  // Worker threads running trials. 1 = serial; 0 = one per hardware
  // thread; clamped to 4x the hardware thread count. Trial t is always
  // seeded base_seed + t and results are merged in trial order, so
  // TrialStats is bit-identical for every jobs value.
  std::uint64_t jobs = 1;
  ConvergenceConfig convergence;
};

// Runs one cell's trials (implemented in sweep.cpp as a single-cell sweep,
// so the serial, parallel and cross-cell paths share one merge).
TrialStats run_trials(const EngineBuilder& builder, const RunnerConfig& cfg);

}  // namespace ssbft
