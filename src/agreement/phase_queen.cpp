#include "agreement/phase_queen.h"

#include "support/check.h"

namespace ssbft {

PhaseQueenInstance::PhaseQueenInstance(const ProtocolEnv& env, bool input)
    : env_(env), v_(input) {}

void PhaseQueenInstance::send_round(int round, Outbox& out, ChannelId base) {
  const int phase = (round - 1) / 2;
  const int sub = (round - 1) % 2;
  const auto ch = static_cast<ChannelId>(base + round - 1);
  ByteWriter& w = out.writer();
  if (sub == 0) {
    w.u8(v_ ? 1 : 0);
    out.broadcast(ch, w.data());
  } else if (env_.self == static_cast<NodeId>(phase) % env_.n) {
    w.u8(v_ ? 1 : 0);
    out.broadcast(ch, w.data());
  }
}

void PhaseQueenInstance::receive_round(int round, const Inbox& in,
                                       ChannelId base) {
  const int phase = (round - 1) / 2;
  const int sub = (round - 1) % 2;
  const auto ch = static_cast<ChannelId>(base + round - 1);
  const auto payloads = in.first_per_sender(ch);
  std::uint32_t cnt[2] = {0, 0};
  std::vector<std::uint8_t> vals(env_.n, 0xff);
  for (NodeId j = 0; j < env_.n; ++j) {
    if (payloads[j] == nullptr) continue;
    ByteReader r(*payloads[j]);
    const std::uint8_t v = r.u8();
    if (!r.at_end() || v > 1) continue;
    vals[j] = v;
    ++cnt[v];
  }
  if (sub == 0) {
    strong_ = false;
    for (int w = 0; w < 2; ++w) {
      if (cnt[w] >= env_.n - env_.f) {
        v_ = w != 0;
        strong_ = true;
      }
    }
    if (!strong_) v_ = cnt[1] > cnt[0];
  } else {
    const NodeId queen = static_cast<NodeId>(phase) % env_.n;
    if (!strong_) v_ = vals[queen] == 1;  // absent queen defaults to 0
  }
}

void PhaseQueenInstance::randomize_state(Rng& rng) {
  v_ = rng.next_bool();
  strong_ = rng.next_bool();
}

BaSpec phase_queen_spec() {
  BaSpec spec;
  spec.resilience_denominator = 4;
  spec.rounds_for = [](std::uint32_t f) { return 2 * (static_cast<int>(f) + 1); };
  spec.make = [](const ProtocolEnv& env, std::uint64_t input, Rng) {
    return std::make_unique<PhaseQueenInstance>(env, (input & 1) != 0);
  };
  return spec;
}

}  // namespace ssbft
