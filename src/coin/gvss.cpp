#include "coin/gvss.h"

#include "support/check.h"

namespace ssbft {

bool validate_row_raw(const PrimeField& F, std::uint32_t f,
                      const std::uint64_t* coeffs, std::size_t count) {
  if (count != std::size_t{f} + 1) return false;
  for (std::size_t i = 0; i < count; ++i) {
    if (!F.valid(coeffs[i])) return false;
  }
  return true;
}

std::optional<Poly> validate_row(const PrimeField& F, std::uint32_t f,
                                 const std::vector<std::uint64_t>& coeffs) {
  if (!validate_row_raw(F, f, coeffs.data(), coeffs.size())) {
    return std::nullopt;
  }
  return Poly(coeffs);
}

bool gvss_happy(std::uint32_t n, std::uint32_t f, bool row_valid,
                std::uint32_t cross_matches) {
  return row_valid && cross_matches >= n - f;
}

GvssGrade gvss_grade(std::uint32_t n, std::uint32_t f, std::uint32_t votes) {
  if (votes >= n - f) return GvssGrade::kHigh;
  if (votes >= n - 2 * f) return GvssGrade::kLow;
  return GvssGrade::kNone;
}

void GvssRecoverTable::init(const PrimeField& F, std::uint32_t n,
                            std::uint32_t f) {
  SSBFT_REQUIRE_MSG(n > f, "recover table needs n > f");
  n_ = n;
  f_ = f;
  modulus_ = F.modulus();
  const std::size_t m = std::size_t{f} + 1;  // prefix subset {1..f+1}
  // Denominators d_i = prod_{j != i} (x_i - x_j), x = 1..f+1, inverted in
  // one batch pass.
  SSBFT_REQUIRE_MSG(F.modulus() > n, "recover table needs modulus > n");
  std::vector<std::uint64_t> denom(m, 1), scratch(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      denom[i] = F.mul(denom[i], F.sub(i + 1, j + 1));
    }
  }
  F.batch_inv(denom.data(), m, scratch.data());
  // L_i(x) = d_i^-1 * prod_{j != i} (x - x_j), tabulated at x = 0 and at
  // every non-prefix node point f+2..n.
  auto fill_row = [&](std::uint64_t x, std::uint64_t* out) {
    for (std::size_t i = 0; i < m; ++i) {
      std::uint64_t num = 1;
      for (std::size_t j = 0; j < m; ++j) {
        if (j == i) continue;
        num = F.mul(num, F.sub(x, j + 1));
      }
      out[i] = F.mul(num, denom[i]);
    }
  };
  zero_row_.assign(m, 0);
  fill_row(0, zero_row_.data());
  const std::size_t targets = n - f - 1;
  target_rows_.assign(targets * m, 0);
  for (std::size_t t = 0; t < targets; ++t) {
    fill_row(f + 2 + t, target_rows_.data() + t * m);
  }
  ys_scratch_.assign(m, 0);
}

namespace {

// True iff the first f+1 shares are exactly the canonical prefix 1..f+1 and
// every later share's x is a tabulated node point — the steady-state shape.
bool table_applies(const GvssRecoverTable* table, const PrimeField& F,
                   std::uint32_t f, const std::vector<RsPoint>& shares) {
  if (table == nullptr || !table->ready()) return false;
  if (table->f() != f || table->modulus() != F.modulus()) return false;
  for (std::size_t i = 0; i <= f; ++i) {
    if (shares[i].x != i + 1) return false;
  }
  for (std::size_t k = std::size_t{f} + 1; k < shares.size(); ++k) {
    if (shares[k].x < std::uint64_t{f} + 2 || shares[k].x > table->n()) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<std::uint64_t> gvss_recover(const PrimeField& F, std::uint32_t f,
                                          const std::vector<RsPoint>& shares,
                                          const GvssRecoverTable* table) {
  const int deg = static_cast<int>(f);
  if (shares.size() < std::size_t{f} + 1) return std::nullopt;
  // Fast path: the first f+1 shares define a candidate; if *every* share
  // agrees it is the unique degree-f codeword (zero errors).
  if (table_applies(table, F, f, shares)) {
    // Allocation-free: candidate values at the remaining share points come
    // straight from the precomputed Lagrange rows as table-row / share dot
    // products, with the prefix values staged flat once for the kernel.
    const std::size_t m = std::size_t{f} + 1;
    std::uint64_t* ys = table->ys_scratch();
    for (std::size_t i = 0; i < m; ++i) ys[i] = shares[i].y;
    bool clean = true;
    for (std::size_t k = m; k < shares.size(); ++k) {
      if (F.dot(table->target_row(shares[k].x), ys, m) != shares[k].y) {
        clean = false;
        break;
      }
    }
    if (clean) return F.dot(table->zero_row(), ys, m);
  } else {
    std::vector<std::uint64_t> xs, ys;
    xs.reserve(f + 1);
    ys.reserve(f + 1);
    for (std::size_t i = 0; i <= f; ++i) {
      xs.push_back(shares[i].x);
      ys.push_back(shares[i].y);
    }
    const Poly cand = lagrange_interpolate(F, xs, ys);
    if (cand.degree() <= deg && count_disagreements(F, cand, shares) == 0) {
      return cand.eval(F, 0);
    }
  }
  auto decoded = berlekamp_welch(F, shares, deg, static_cast<int>(f));
  if (!decoded) return std::nullopt;
  return decoded->eval(F, 0);
}

GvssDealing GvssDealing::sample(const PrimeField& F, std::uint32_t f,
                                Rng& rng) {
  GvssDealing d{SymmetricBivariate{}};
  d.resample(F, f, rng);
  return d;
}

void GvssDealing::resample(const PrimeField& F, std::uint32_t f, Rng& rng) {
  const std::uint64_t secret = F.uniform(rng);
  poly_.resample(F, static_cast<int>(f), secret, rng);
}

std::vector<std::uint64_t> GvssDealing::row_for(const PrimeField& F,
                                                NodeId to) const {
  std::vector<std::uint64_t> coeffs(static_cast<std::size_t>(poly_.degree()) + 1,
                                    0);
  row_into(F, to, coeffs.data());
  return coeffs;
}

void GvssDealing::row_into(const PrimeField& F, NodeId to,
                           std::uint64_t* out) const {
  poly_.row_into(F, node_point(to), out);
}

}  // namespace ssbft
