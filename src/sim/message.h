// Message model and per-beat inbox/outbox plumbing.
//
// Messages are (from, to, channel, payload-bytes). Channels identify logical
// sub-protocol streams inside a composed stack (e.g. "A1's coin, round 3");
// a parent protocol assigns its children disjoint channel ranges, which is
// the paper's "session number" device made static: only a fixed window of
// sub-protocol instances co-execute, so a fixed channel space suffices and
// is trivially recyclable (self-stabilization needs no unbounded counters).
#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.h"
#include "support/types.h"

namespace ssbft {

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  ChannelId channel = 0;
  Bytes payload;
};

// Collects a node's sends during its send phase. The engine enforces the
// sender identity (Definition 2.2: sender ids cannot be forged).
class Outbox {
 public:
  Outbox(NodeId self, std::uint32_t n) : self_(self), n_(n) {}

  // Point-to-point send.
  void send(NodeId to, ChannelId channel, Bytes payload);
  // "Broadcast" in the paper's sense: send the same payload to all n nodes,
  // including self (no broadcast channels are assumed).
  void broadcast(ChannelId channel, const Bytes& payload);

  const std::vector<Message>& messages() const { return msgs_; }
  std::vector<Message> take() { return std::move(msgs_); }
  void clear() { msgs_.clear(); }

 private:
  NodeId self_;
  std::uint32_t n_;
  std::vector<Message> msgs_;
};

// A node's view of the messages delivered to it during one beat.
class Inbox {
 public:
  Inbox(std::uint32_t n, std::uint32_t max_channels);

  void deliver(Message m);
  void clear();

  // All messages on a channel, ordered by sender id (then arrival order for
  // duplicates). Channels out of range return an empty vector.
  const std::vector<Message>& on(ChannelId channel) const;

  // At most one payload per sender on a channel: the first message each
  // sender delivered. Index s is null if sender s sent nothing valid.
  // Byzantine duplicate floods therefore count once, deterministically.
  std::vector<const Bytes*> first_per_sender(ChannelId channel) const;

  std::uint32_t node_count() const { return n_; }

 private:
  std::uint32_t n_;
  std::vector<std::vector<Message>> by_channel_;
  std::vector<Message> overflow_discard_;  // canonical empty vector storage
};

}  // namespace ssbft
