#include "field/poly.h"

#include <algorithm>

#include "support/check.h"

namespace ssbft {

Poly::Poly(std::vector<std::uint64_t> coeffs) : coeffs_(std::move(coeffs)) {
  normalize();
}

Poly Poly::random_with_constant(const PrimeField& F, int deg,
                                std::uint64_t constant, Rng& rng) {
  SSBFT_REQUIRE(deg >= 0 && F.valid(constant));
  std::vector<std::uint64_t> c(static_cast<std::size_t>(deg) + 1);
  c[0] = constant;
  for (int i = 1; i <= deg; ++i) c[static_cast<std::size_t>(i)] = F.uniform(rng);
  return Poly(std::move(c));
}

Poly Poly::random(const PrimeField& F, int deg, Rng& rng) {
  SSBFT_REQUIRE(deg >= 0);
  std::vector<std::uint64_t> c(static_cast<std::size_t>(deg) + 1);
  for (auto& x : c) x = F.uniform(rng);
  return Poly(std::move(c));
}

int Poly::degree() const { return static_cast<int>(coeffs_.size()) - 1; }

bool Poly::is_zero() const { return coeffs_.empty(); }

void Poly::normalize() {
  while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
}

std::uint64_t Poly::eval(const PrimeField& F, std::uint64_t x) const {
  // Checked Horner: a Poly built from unvalidated coefficients must fail
  // the field contract loudly, not fold garbage. Hot paths evaluate
  // already-validated flat storage via eval_raw / F.eval_many instead.
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = F.add(F.mul(acc, x), coeffs_[i]);
  }
  return acc;
}

void Poly::add_into(const PrimeField& F, const Poly& o,
                    std::vector<std::uint64_t>& out) const {
  out.resize(std::max(coeffs_.size(), o.coeffs_.size()));
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = F.add(coeff(i), o.coeff(i));
}

void Poly::mul_into(const PrimeField& F, const Poly& o,
                    std::vector<std::uint64_t>& out) const {
  if (is_zero() || o.is_zero()) {
    out.clear();
    return;
  }
  out.assign(coeffs_.size() + o.coeffs_.size() - 1, 0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0) continue;
    for (std::size_t j = 0; j < o.coeffs_.size(); ++j) {
      out[i + j] = F.add(out[i + j], F.mul(coeffs_[i], o.coeffs_[j]));
    }
  }
}

Poly Poly::add(const PrimeField& F, const Poly& o) const {
  std::vector<std::uint64_t> c;
  add_into(F, o, c);
  return Poly(std::move(c));
}

Poly Poly::sub(const PrimeField& F, const Poly& o) const {
  std::vector<std::uint64_t> c(std::max(coeffs_.size(), o.coeffs_.size()), 0);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = F.sub(coeff(i), o.coeff(i));
  return Poly(std::move(c));
}

Poly Poly::mul(const PrimeField& F, const Poly& o) const {
  std::vector<std::uint64_t> c;
  mul_into(F, o, c);
  return Poly(std::move(c));
}

Poly Poly::scale(const PrimeField& F, std::uint64_t c) const {
  std::vector<std::uint64_t> out(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) out[i] = F.mul(coeffs_[i], c);
  return Poly(std::move(out));
}

std::pair<Poly, Poly> Poly::divmod(const PrimeField& F, const Poly& divisor) const {
  SSBFT_REQUIRE_MSG(!divisor.is_zero(), "polynomial division by zero");
  const int dd = divisor.degree();
  if (degree() < dd) {
    // Quotient is zero and the remainder is the dividend itself; skip the
    // leading-coefficient inversion and the elimination loop entirely.
    return {Poly(), *this};
  }
  std::vector<std::uint64_t> rem = coeffs_;
  const std::uint64_t lead_inv = F.inv(divisor.coeffs_.back());
  std::vector<std::uint64_t> quot(static_cast<std::size_t>(degree() - dd) + 1, 0);
  for (int i = degree(); i >= dd; --i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (rem[ui] == 0) continue;
    const std::uint64_t q = F.mul(rem[ui], lead_inv);
    quot[static_cast<std::size_t>(i - dd)] = q;
    F.submul_vec(rem.data() + (i - dd), divisor.coeffs_.data(), q,
                 static_cast<std::size_t>(dd) + 1);
  }
  return {Poly(std::move(quot)), Poly(std::move(rem))};
}

Poly lagrange_interpolate(const PrimeField& F,
                          const std::vector<std::uint64_t>& xs,
                          const std::vector<std::uint64_t>& ys) {
  SSBFT_REQUIRE(xs.size() == ys.size() && !xs.empty());
  const std::size_t m = xs.size();
  // Master polynomial M(x) = prod_j (x - xs[j]), built in place.
  std::vector<std::uint64_t> master(m + 1, 0);
  master[0] = 1;
  for (std::size_t j = 0; j < m; ++j) {
    master[j + 1] = master[j];
    for (std::size_t k = j; k >= 1; --k) {
      master[k] = F.sub(master[k - 1], F.mul(xs[j], master[k]));
    }
    master[0] = F.mul(F.neg(xs[j]), master[0]);
  }
  // Denominators prod_{j != i} (xs[i] - xs[j]), inverted all at once.
  std::vector<std::uint64_t> denom(m, 1), scratch(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      const std::uint64_t d = F.sub(xs[i], xs[j]);
      SSBFT_REQUIRE_MSG(d != 0, "interpolation nodes must be distinct");
      denom[i] = F.mul(denom[i], d);
    }
  }
  F.batch_inv(denom.data(), m, scratch.data());
  // result = sum_i ys[i]/denom[i] * M(x)/(x - xs[i]); each basis falls out
  // of M by synthetic division.
  std::vector<std::uint64_t> out(m, 0), basis(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t c = F.mul(ys[i], denom[i]);
    basis[m - 1] = master[m];
    for (std::size_t k = m - 1; k >= 1; --k) {
      basis[k - 1] = F.add(master[k], F.mul(xs[i], basis[k]));
    }
    for (std::size_t k = 0; k < m; ++k) {
      out[k] = F.add(out[k], F.mul(c, basis[k]));
    }
  }
  return Poly(std::move(out));
}

}  // namespace ssbft
