// Tests for the pluggable delivery engine (sim/delivery.h): replay
// exactness of the default synchronous policy against pre-extraction
// goldens, the semantics of the eclipse / partition / targeted-delay /
// reorder adversaries, and FaultPlan validation of delivery specs and
// corruption schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "adversary/adversaries.h"
#include "coin/oracle_coin.h"
#include "core/clock_sync.h"
#include "sim/delivery.h"
#include "sim/engine.h"
#include "support/check.h"

namespace ssbft {
namespace {

// Broadcasts (self, beat, seq) x sends_per_beat each beat and records every
// arrival in inbox-canonical order (sender id asc, arrival order within a
// sender) — enough to observe delay, partition cuts and reordering.
struct Arrival {
  Beat recv_beat;
  NodeId from;
  std::uint64_t sent_beat;
  std::uint32_t seq;
};

class ProbeProtocol final : public ClockProtocol {
 public:
  ProbeProtocol(const ProtocolEnv& env, std::uint32_t sends_per_beat)
      : env_(env), sends_per_beat_(sends_per_beat) {}

  void send_phase(Outbox& out) override {
    for (std::uint32_t seq = 0; seq < sends_per_beat_; ++seq) {
      ByteWriter w;
      w.u64(beat_);
      w.u32(seq);
      out.broadcast(0, w.data());
    }
  }

  void receive_phase(const Inbox& in) override {
    for (const Message& m : in.on(0)) {
      ByteReader r(m.payload);
      const std::uint64_t sent_beat = r.u64();
      const std::uint32_t seq = r.u32();
      arrivals_.push_back(Arrival{beat_, m.from, sent_beat, seq});
    }
    ++beat_;
  }

  void randomize_state(Rng&) override {}
  ClockValue clock() const override { return beat_ % 4; }
  ClockValue modulus() const override { return 4; }
  std::uint32_t channel_count() const override { return 1; }

  // Arrivals of one beat, in inbox-canonical order.
  std::vector<Arrival> beat_arrivals(Beat b) const {
    std::vector<Arrival> out;
    for (const Arrival& a : arrivals_) {
      if (a.recv_beat == b) out.push_back(a);
    }
    return out;
  }

  ProtocolEnv env_;
  std::uint32_t sends_per_beat_;
  Beat beat_ = 0;
  std::vector<Arrival> arrivals_;
};

ProtocolFactory probe_factory(std::uint32_t sends_per_beat = 1) {
  return [sends_per_beat](const ProtocolEnv& env, Rng) {
    return std::make_unique<ProbeProtocol>(env, sends_per_beat);
  };
}

EngineConfig probe_config(std::uint32_t n) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = 0;
  cfg.faults.randomize_genesis = false;
  return cfg;
}

const ProbeProtocol& probe(const Engine& eng, NodeId id) {
  return dynamic_cast<const ProbeProtocol&>(eng.node(id));
}

std::set<NodeId> senders_at(const ProbeProtocol& p, Beat b) {
  std::set<NodeId> out;
  for (const Arrival& a : p.beat_arrivals(b)) out.insert(a.from);
  return out;
}

// ---------------------------------------------------------------------
// Replay exactness: the default SynchronousDelivery must reproduce the
// pre-extraction engine bit for bit. The constants below were captured by
// running exactly this world — mixed drops + phantoms + scheduled
// corruption + random-noise adversary over the full clock-sync protocol —
// against the engine as of PR 5, before the delivery phase moved behind
// DeliveryPolicy. Every net_rng draw (drop lotteries, phantom from /
// channel / len / payload words) must land in the same sequence for these
// to hold.

TEST(SynchronousDelivery, ReplayExactWithPreExtractionEngine) {
  EngineConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  cfg.faulty = EngineConfig::last_ids_faulty(7, 2);
  cfg.seed = 20260808;
  cfg.faults.network_faulty_until = 30;
  cfg.faults.faulty_drop_prob = 0.25;
  cfg.faults.phantoms_per_beat = 3;
  cfg.faults.phantom_max_len = 48;
  cfg.faults.corruptions[12] = {0, 2};

  auto beacon = std::make_shared<OracleBeacon>(
      7, OracleCoinParams{0.45, 0.45}, Rng(cfg.seed).split("beacon"));
  CoinSpec spec = oracle_coin_spec(beacon);
  auto factory = [&spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 8, spec, rng);
  };
  Engine eng(cfg, factory, make_random_noise_adversary(6, 40));
  eng.add_listener(beacon.get());
  eng.run_beats(60);

  const BeatTraffic& t = eng.metrics().total();
  EXPECT_EQ(t.correct_messages, 4564u);
  EXPECT_EQ(t.correct_bytes, 14532u);
  EXPECT_EQ(t.adversary_messages, 720u);
  EXPECT_EQ(t.adversary_bytes, 13942u);
  EXPECT_EQ(t.phantom_messages, 450u);
  EXPECT_EQ(t.dropped_messages, 450u);
  // The new counters stay untouched on the synchronous path.
  EXPECT_EQ(t.eclipsed_messages, 0u);
  EXPECT_EQ(t.delayed_messages, 0u);
  EXPECT_EQ(t.reordered_messages, 0u);
  EXPECT_EQ(eng.correct_clocks(),
            (std::vector<ClockValue>{7, 7, 7, 7, 7}));
  const std::vector<std::uint64_t> want_drops{14, 16, 18, 19, 8,
                                              15, 13, 14, 14, 21};
  for (std::size_t i = 0; i < want_drops.size(); ++i) {
    EXPECT_EQ(eng.metrics().history()[i].dropped_messages, want_drops[i])
        << "beat " << i;
  }
}

// ---------------------------------------------------------------------
// TargetedDelayDelivery

TEST(TargetedDelayDelivery, DeliversExactlyDelayBeatsLate) {
  EngineConfig cfg = probe_config(4);
  cfg.faults.delivery.kind = DeliveryKind::kTargetedDelay;
  cfg.faults.delivery.victims = {0};
  cfg.faults.delivery.delay_beats = 2;
  auto eng = Engine(cfg, probe_factory(/*sends_per_beat=*/3), nullptr);
  eng.run_beats(6);

  // Non-victims see everything in the send beat.
  for (NodeId id : {NodeId{1}, NodeId{2}, NodeId{3}}) {
    for (Beat b = 0; b < 6; ++b) {
      const auto arr = probe(eng, id).beat_arrivals(b);
      ASSERT_EQ(arr.size(), 4u * 3u) << "node " << id << " beat " << b;
      for (const Arrival& a : arr) EXPECT_EQ(a.sent_beat, b);
    }
  }
  // The victim sees nothing until the first flush, then every beat's
  // traffic exactly delay_beats late, per-sender send order intact.
  const ProbeProtocol& victim = probe(eng, 0);
  EXPECT_TRUE(victim.beat_arrivals(0).empty());
  EXPECT_TRUE(victim.beat_arrivals(1).empty());
  for (Beat b = 2; b < 6; ++b) {
    const auto arr = victim.beat_arrivals(b);
    ASSERT_EQ(arr.size(), 4u * 3u) << "beat " << b;
    std::map<NodeId, std::vector<std::uint32_t>> seqs;
    for (const Arrival& a : arr) {
      EXPECT_EQ(a.sent_beat, b - 2);
      seqs[a.from].push_back(a.seq);
    }
    ASSERT_EQ(seqs.size(), 4u);
    for (const auto& [from, s] : seqs) {
      EXPECT_EQ(s, (std::vector<std::uint32_t>{0, 1, 2}))
          << "per-sender order broken for sender " << from;
    }
  }
  // 4 senders x 3 sends x 6 beats addressed to the victim, all held.
  EXPECT_EQ(eng.metrics().total().delayed_messages, 4u * 3u * 6u);
}

TEST(TargetedDelayDelivery, HealStopsHoldingNewTraffic) {
  EngineConfig cfg = probe_config(4);
  cfg.faults.delivery.kind = DeliveryKind::kTargetedDelay;
  cfg.faults.delivery.victims = {0};
  cfg.faults.delivery.delay_beats = 2;
  cfg.faults.delivery.heal_at = 4;
  auto eng = Engine(cfg, probe_factory(), nullptr);
  eng.run_beats(7);

  // Per-beat arrival counts at the victim: beats 0-3 hold, so beat b >= 2
  // flushes beat b-2; from heal_at on, fresh traffic also flows
  // synchronously, overlapping with the last two flushes.
  const ProbeProtocol& victim = probe(eng, 0);
  const std::vector<std::size_t> want_counts{0, 0, 4, 4, 8, 8, 4};
  for (Beat b = 0; b < 7; ++b) {
    const auto arr = victim.beat_arrivals(b);
    EXPECT_EQ(arr.size(), want_counts[b]) << "beat " << b;
    for (const Arrival& a : arr) {
      EXPECT_TRUE(a.sent_beat == b || a.sent_beat + 2 == b)
          << "beat " << b << " got sent_beat " << a.sent_beat;
    }
  }
  EXPECT_EQ(eng.metrics().total().delayed_messages, 4u * 4u);  // beats 0-3
}

// ---------------------------------------------------------------------
// PartitionDelivery

TEST(PartitionDelivery, HealsAtScheduledBeat) {
  EngineConfig cfg = probe_config(5);
  cfg.faults.delivery.kind = DeliveryKind::kPartition;
  cfg.faults.delivery.partition_split = 2;  // {0,1} | {2,3,4}
  cfg.faults.delivery.heal_at = 3;
  auto eng = Engine(cfg, probe_factory(), nullptr);
  eng.run_beats(5);

  for (Beat b = 0; b < 3; ++b) {
    EXPECT_EQ(senders_at(probe(eng, 1), b), (std::set<NodeId>{0, 1}));
    EXPECT_EQ(senders_at(probe(eng, 3), b), (std::set<NodeId>{2, 3, 4}));
  }
  for (Beat b = 3; b < 5; ++b) {
    EXPECT_EQ(senders_at(probe(eng, 1), b),
              (std::set<NodeId>{0, 1, 2, 3, 4}));
    EXPECT_EQ(senders_at(probe(eng, 3), b),
              (std::set<NodeId>{0, 1, 2, 3, 4}));
  }
  // Cross-cut traffic per active beat: 2 senders x 3 targets both ways.
  EXPECT_EQ(eng.metrics().total().eclipsed_messages, 3u * 12u);
}

// ---------------------------------------------------------------------
// EclipseDelivery

TEST(EclipseDelivery, VictimHearsOnlyAllowlistUntilHeal) {
  EngineConfig cfg = probe_config(4);
  cfg.faults.delivery.kind = DeliveryKind::kEclipse;
  cfg.faults.delivery.victims = {0};
  cfg.faults.delivery.allowed_senders = {2};
  cfg.faults.delivery.heal_at = 2;
  auto eng = Engine(cfg, probe_factory(), nullptr);
  eng.run_beats(4);

  // While eclipsed: the allowlisted sender plus loopback. Non-victims are
  // untouched.
  for (Beat b = 0; b < 2; ++b) {
    EXPECT_EQ(senders_at(probe(eng, 0), b), (std::set<NodeId>{0, 2}));
    EXPECT_EQ(senders_at(probe(eng, 1), b), (std::set<NodeId>{0, 1, 2, 3}));
  }
  for (Beat b = 2; b < 4; ++b) {
    EXPECT_EQ(senders_at(probe(eng, 0), b), (std::set<NodeId>{0, 1, 2, 3}));
  }
  // Suppressed: senders {1, 3} x 2 active beats.
  EXPECT_EQ(eng.metrics().total().eclipsed_messages, 4u);
}

// ---------------------------------------------------------------------
// ReorderDelivery

TEST(ReorderDelivery, PermutesArrivalOrderButKeepsTheSet) {
  // Same-sender duplicates are the observable: the inbox canonicalizes
  // across senders but preserves arrival order within one, so a shuffled
  // beat shows as a permuted seq sequence for some sender.
  EngineConfig cfg = probe_config(3);
  cfg.seed = 11;
  cfg.faults.delivery.kind = DeliveryKind::kReorder;
  auto eng = Engine(cfg, probe_factory(/*sends_per_beat=*/6), nullptr);
  eng.run_beats(5);

  bool saw_permutation = false;
  for (NodeId id : eng.correct_ids()) {
    for (Beat b = 0; b < 5; ++b) {
      std::map<NodeId, std::vector<std::uint32_t>> seqs;
      for (const Arrival& a : probe(eng, id).beat_arrivals(b)) {
        EXPECT_EQ(a.sent_beat, b);  // reorder never delays across beats
        seqs[a.from].push_back(a.seq);
      }
      ASSERT_EQ(seqs.size(), 3u);  // no message lost
      for (auto& [from, s] : seqs) {
        ASSERT_EQ(s.size(), 6u);
        if (!std::is_sorted(s.begin(), s.end())) saw_permutation = true;
        std::sort(s.begin(), s.end());
        EXPECT_EQ(s, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
      }
    }
  }
  EXPECT_TRUE(saw_permutation);
  EXPECT_GT(eng.metrics().total().reordered_messages, 0u);
}

TEST(ReorderDelivery, SynchronousBaselineKeepsSendOrder) {
  // The control for the test above: without the reorder policy, every
  // sender's duplicates arrive in send order.
  EngineConfig cfg = probe_config(3);
  cfg.seed = 11;
  auto eng = Engine(cfg, probe_factory(/*sends_per_beat=*/6), nullptr);
  eng.run_beats(5);
  for (NodeId id : eng.correct_ids()) {
    for (Beat b = 0; b < 5; ++b) {
      std::map<NodeId, std::vector<std::uint32_t>> seqs;
      for (const Arrival& a : probe(eng, id).beat_arrivals(b)) {
        seqs[a.from].push_back(a.seq);
      }
      for (const auto& [from, s] : seqs) {
        EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
      }
    }
  }
  EXPECT_EQ(eng.metrics().total().reordered_messages, 0u);
}

// ---------------------------------------------------------------------
// Delivery policies compose with the loss/phantom axes.

TEST(EclipseDelivery, ComposesWithDropsAndPhantoms) {
  EngineConfig cfg = probe_config(4);
  cfg.seed = 7;
  cfg.faults.network_faulty_until = 3;
  cfg.faults.faulty_drop_prob = 1.0;  // drop everything the eclipse spares
  cfg.faults.phantoms_per_beat = 2;
  cfg.faults.delivery.kind = DeliveryKind::kEclipse;
  cfg.faults.delivery.victims = {0};
  cfg.faults.delivery.heal_at = DeliverySpec::kNever;
  auto eng = Engine(cfg, probe_factory(), nullptr);
  eng.run_beats(3);
  const BeatTraffic& t = eng.metrics().total();
  // Per beat: 4 messages to the victim from others... none (empty
  // allowlist, loopback only) — 3 eclipsed; the remaining 13 real
  // messages all hit the p=1 lottery.
  EXPECT_EQ(t.eclipsed_messages, 3u * 3u);
  EXPECT_EQ(t.dropped_messages, 3u * 13u);
  EXPECT_EQ(t.phantom_messages, 3u * 4u * 2u);  // phantoms bypass eclipse
}

// ---------------------------------------------------------------------
// Validation: specs and the corruption schedule are checked against the
// world size at engine construction.

TEST(FaultPlanValidation, CorruptionIdOutOfRangeIsRejected) {
  // Regression: the corruption schedule used to index the engine's fault
  // mask unchecked, so an id >= n read out of bounds at the scheduled
  // beat instead of failing fast at construction.
  EngineConfig cfg = probe_config(4);
  cfg.faults.corruptions[5] = {1, 4};  // 4 is out of range for n = 4
  EXPECT_THROW(Engine(cfg, probe_factory(), nullptr), contract_error);
}

TEST(DeliverySpecValidation, RejectsMalformedSpecs) {
  const std::uint32_t n = 4;
  {
    DeliverySpec s;
    s.kind = DeliveryKind::kEclipse;  // no victims
    EXPECT_THROW(s.validate(n), contract_error);
  }
  {
    DeliverySpec s;
    s.kind = DeliveryKind::kEclipse;
    s.victims = {4};  // out of range
    EXPECT_THROW(s.validate(n), contract_error);
  }
  {
    DeliverySpec s;
    s.kind = DeliveryKind::kEclipse;
    s.victims = {0};
    s.allowed_senders = {9};  // out of range
    EXPECT_THROW(s.validate(n), contract_error);
  }
  {
    DeliverySpec s;
    s.kind = DeliveryKind::kPartition;
    s.partition_split = 0;  // group 0 empty
    EXPECT_THROW(s.validate(n), contract_error);
    s.partition_split = n;  // group 1 empty
    EXPECT_THROW(s.validate(n), contract_error);
    s.partition_split = 1;
    s.validate(n);  // ok
  }
  {
    DeliverySpec s;
    s.kind = DeliveryKind::kTargetedDelay;
    s.victims = {1};
    s.delay_beats = 0;
    EXPECT_THROW(s.validate(n), contract_error);
    s.delay_beats = DeliverySpec::kMaxDelayBeats + 1;
    EXPECT_THROW(s.validate(n), contract_error);
    s.delay_beats = 1;
    s.validate(n);  // ok
  }
}

TEST(DeliverySpecValidation, RejectsDuplicateNodeIds) {
  const std::uint32_t n = 4;
  {
    DeliverySpec s;
    s.kind = DeliveryKind::kEclipse;
    s.victims = {1, 1};
    EXPECT_THROW(s.validate(n), contract_error);
  }
  {
    DeliverySpec s;
    s.kind = DeliveryKind::kEclipse;
    s.victims = {2, 0, 2};  // unsorted duplicate must still be caught
    EXPECT_THROW(s.validate(n), contract_error);
  }
  {
    DeliverySpec s;
    s.kind = DeliveryKind::kEclipse;
    s.victims = {0};
    s.allowed_senders = {3, 1, 3};
    EXPECT_THROW(s.validate(n), contract_error);
  }
  {
    DeliverySpec s;
    s.kind = DeliveryKind::kTargetedDelay;
    s.victims = {2, 0};  // distinct ids in any order stay legal
    s.delay_beats = 2;
    s.validate(n);
  }
}

// The declared network-quiescence horizon the trace checkers measure
// from: the last beat any network/delivery fault may still act, kNever
// for an unhealed suppressing adversary, and unaffected by scheduled
// corruptions (those are visible in the trace itself).
TEST(FaultPlanQuiescence, DerivesLastDeclaredNetworkFaultBeat) {
  FaultPlan p;
  EXPECT_EQ(p.network_quiescence(), 0u);
  p.network_faulty_until = 40;
  EXPECT_EQ(p.network_quiescence(), 40u);

  p.delivery.kind = DeliveryKind::kReorder;  // model-preserving: ignored
  p.delivery.heal_at = DeliverySpec::kNever;
  EXPECT_EQ(p.network_quiescence(), 40u);

  p.delivery = DeliverySpec{};
  p.delivery.kind = DeliveryKind::kPartition;
  p.delivery.partition_split = 2;
  p.delivery.heal_at = 100;
  EXPECT_EQ(p.network_quiescence(), 100u);
  p.delivery.heal_at = DeliverySpec::kNever;
  EXPECT_EQ(p.network_quiescence(), DeliverySpec::kNever);

  p.delivery = DeliverySpec{};
  p.delivery.kind = DeliveryKind::kTargetedDelay;
  p.delivery.victims = {0};
  p.delivery.delay_beats = 3;
  p.delivery.heal_at = 50;
  EXPECT_EQ(p.network_quiescence(), 53u);  // parked traffic drains post-heal

  p.corruptions[500] = {0};
  EXPECT_EQ(p.network_quiescence(), 53u);
}

TEST(DeliverySpecValidation, EngineRejectsBadSpecAtConstruction) {
  EngineConfig cfg = probe_config(4);
  cfg.faults.delivery.kind = DeliveryKind::kTargetedDelay;
  cfg.faults.delivery.victims = {7};  // out of range for n = 4
  EXPECT_THROW(Engine(cfg, probe_factory(), nullptr), contract_error);
}

TEST(DeliveryKindName, CoversEveryKind) {
  EXPECT_STREQ(delivery_kind_name(DeliveryKind::kSynchronous), "synchronous");
  EXPECT_STREQ(delivery_kind_name(DeliveryKind::kEclipse), "eclipse");
  EXPECT_STREQ(delivery_kind_name(DeliveryKind::kPartition), "partition");
  EXPECT_STREQ(delivery_kind_name(DeliveryKind::kTargetedDelay),
               "targeted-delay");
  EXPECT_STREQ(delivery_kind_name(DeliveryKind::kReorder), "reorder");
}

}  // namespace
}  // namespace ssbft
