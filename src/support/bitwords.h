// Flat 64-bit word arrays used as dense bit sets.
//
// std::vector<bool> is a poor fit for per-round protocol state: every
// construction allocates, and the proxy-reference API pessimizes hot loops.
// These helpers operate on plain uint64_t word arrays (typically a slice of
// a long-lived scratch vector), so bit masks can live in flat
// instance-persistent storage and travel the wire verbatim as u64 vectors.
//
// Bit i lives in word i/64 at bit position i%64 — the same layout the
// FM coin's vote masks have always used on the wire, so packing is free.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ssbft {

// Words needed to hold `bits` bits.
inline constexpr std::size_t bitword_count(std::size_t bits) {
  return (bits + 63) / 64;
}

inline bool bitword_get(const std::uint64_t* words, std::size_t i) {
  return (words[i / 64] >> (i % 64)) & 1;
}

inline void bitword_set(std::uint64_t* words, std::size_t i, bool v) {
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (v) {
    words[i / 64] |= mask;
  } else {
    words[i / 64] &= ~mask;
  }
}

// Zeroes the first bitword_count(bits) words.
inline void bitword_clear(std::uint64_t* words, std::size_t bits) {
  for (std::size_t w = 0; w < bitword_count(bits); ++w) words[w] = 0;
}

}  // namespace ssbft
