// Scenario library: the experiment layer's vocabulary. A scenario is a
// named, fully-specified simulation cell — algorithm family, (n, f, k)
// world, adversary, coin, and the FaultPlan network/transient axes — plus
// the trial-run defaults (trials, seed, beat budget) that make it a cell
// of a sweep. Every bench table row is registered here by name, so tests,
// the `ssbft_bench` driver and the thin bench wrappers all build the same
// engines from the same specs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/runner.h"
#include "sim/adversary.h"
#include "sim/fault_plan.h"

namespace ssbft {

// Which coin the paper's algorithms run on.
enum class CoinKind {
  kOracle,  // idealized beacon with p0 = p1 = 0.45 (layer isolation)
  kFm,      // full message-level GVSS coin
};

// Adversary selection, uniform across families.
enum class Attack {
  kSilent,
  kNoise,
  kSplit,      // equivocates 0/1 on channel 0
  kSkew,       // conflicting clock stories on channels 0..2
  kCoinAttack, // FM-coin attacker on the given channel base (FM runs only)
  kAntiCoin,   // oracle-rushing anti-coin adversary (beacon families only)
  kAdaptive,   // adaptive quorum splitter on the clock channel
};

// Algorithm family — which protocol stack the scenario instantiates.
enum class Family {
  kClockSync,        // ss-Byz-Clock-Sync (the paper)
  kClock4,           // ss-Byz-4-Clock building block
  kClock2,           // ss-Byz-2-Clock on the oracle coin
  kCascade,          // Section 5 cascade (2^levels-clock)
  kDolevWelch,       // Dolev-Welch randomized baseline ([10] sync row)
  kDolevWelchShared, // Section 6.1 retrofit: DW gamble on a shared coin
  kPipelinedQueen,   // pipelined BA clock over phase-queen ([15])
  kPipelinedKing,    // pipelined BA clock over TC + phase-king ([7])
};

const char* family_name(Family f);
const char* attack_name(Attack a);

struct World {
  std::uint32_t n = 4;
  std::uint32_t f = 1;      // protocol's assumed bound
  std::uint32_t actual = 1; // actually-faulty node count (for boundary runs)
  ClockValue k = 64;
  Attack attack = Attack::kSkew;
  // kNoise only: messages sprayed per faulty node per beat (the gallery's
  // noise world uses 10; the bench default is 8).
  std::uint32_t noise_msgs_per_beat = 8;
  CoinKind coin = CoinKind::kOracle;
  // kCascade only: number of 2-clock levels (solves k = 2^levels).
  std::uint32_t levels = 2;
  // Coin-pipeline sharing for the clock-sync / 4-clock stacks (Remark 4.1
  // ablation). Numeric to avoid dragging coin_pipeline.h into every
  // bench: 0 = per-sub-clock (the default), 1 = shared.
  std::uint32_t shared_pipeline = 0;
  // Per-channel byte accounting (bench_message_complexity's breakdown).
  bool track_channel_bytes = false;
  // Network/transient fault axes (drop probability, phantom injection,
  // mid-run corruption schedule), passed through to the engine.
  FaultPlan faults;
  // Which node ids are actually faulty. Empty = the registry default
  // (the `actual` highest ids); chaos campaigns (harness/chaos.h)
  // randomize the placement through this override. Size must equal
  // `actual` when set.
  std::vector<NodeId> faulty_override;
};

// Beacon-free attacks (everything but kAntiCoin, which needs the world's
// oracle beacon and is built inside the family builders). noise_msgs
// tunes kNoise only (World::noise_msgs_per_beat flows through here).
std::unique_ptr<Adversary> make_attack(Attack a, ClockValue k,
                                       ChannelId coin_base,
                                       std::uint32_t noise_msgs = 8);

EngineConfig world_config(const World& w, std::uint64_t seed);

// Family builders. Each returns an EngineBuilder that constructs one
// seeded engine (plus keepalive beacon where the coin needs one).
EngineBuilder build_clock_sync(World w);
EngineBuilder build_clock4(World w);
EngineBuilder build_clock2(World w);
EngineBuilder build_cascade(World w, std::uint32_t levels);
EngineBuilder build_dolev_welch(World w);
EngineBuilder build_dolev_welch_shared(World w);
EngineBuilder build_pipelined(World w, bool king);

// Dispatch on the family enum (the registry path).
EngineBuilder build_world(Family family, const World& w);

// ---------------------------------------------------------------------------
// Registry: string-keyed scenario specs.

struct ScenarioSpec {
  std::string name;     // registry key, e.g. "table1/sync/n7"
  std::string summary;  // one-liner for `ssbft_bench list`
  Family family = Family::kClockSync;
  World world;
  // Trial-run defaults for this cell (CLI overrides layer on top).
  std::uint64_t trials = 20;
  std::uint64_t base_seed = 1;
  std::uint64_t max_beats = 8000;
  std::uint64_t confirm_window = 0;  // 0 = ConvergenceConfig default
};

// EngineBuilder for one cell of the spec.
EngineBuilder build_scenario(const ScenarioSpec& spec);

// RunnerConfig carrying the spec's defaults (jobs left at 1; sweeps
// schedule globally).
RunnerConfig scenario_runner_config(const ScenarioSpec& spec);

// One-line audit detail for `ssbft_bench list`: the cell's DeliverySpec
// (kind, victim/allowed-sender id lists, split/delay/heal), the network
// fault axes (drop probability, phantoms) with their horizon, the
// corruption schedule, and the trial-run defaults — everything needed to
// audit a grid before running it.
std::string scenario_detail(const ScenarioSpec& spec);

// All registered scenarios, sorted by name. Built once, immutable.
const std::vector<ScenarioSpec>& scenario_registry();

// Lookup by exact name; nullptr when unknown.
const ScenarioSpec* find_scenario(const std::string& name);

// Glob matching with `*` (any run, including `/`) and `?` (any one char).
bool glob_match(const std::string& pattern, const std::string& text);

// Registry entries matching the glob, in registry (sorted) order.
std::vector<const ScenarioSpec*> match_scenarios(const std::string& pattern);

}  // namespace ssbft
