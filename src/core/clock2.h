// ss-Byz-2-Clock (Figure 2): the expected-constant-time self-stabilizing
// Byzantine 2-Clock, resilient to f < n/3.
//
// Each beat every node broadcasts clock in {0, 1, ?}; a self-stabilizing
// coin-flipping component C runs alongside and yields this beat's common
// random bit `rand`; received "?" values are counted as `rand` (crucially,
// `rand` is revealed only after all beat-r messages — including the
// Byzantine ones — are committed, Remark 3.1); if some value reaches n-f
// support the node sets clock := 1 - maj, else clock := ?.
//
// Theorem 2: from any state, under a coherent network, all correct nodes
// agree within an expected-constant number of beats (two consecutive safe
// beats suffice, each beat is safe w.p. p0+p1) and then alternate 0,1,0,...
// forever (Lemma 2 — closure is deterministic).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "coin/coin_interface.h"
#include "sim/protocol.h"

namespace ssbft {

// The paper's three-valued clock domain {0, 1, ?}.
enum class Tri : std::uint8_t { kZero = 0, kOne = 1, kBottom = 2 };

class SsByz2Clock final : public ClockProtocol {
 public:
  // Owns an embedded coin built from `coin` rooted at channel base+1
  // (channel base+0 carries the clock broadcast).
  SsByz2Clock(const ProtocolEnv& env, const CoinSpec& coin, ChannelId base,
              Rng rng);

  // For hosts that drive the coin themselves (the Remark 4.1 shared-
  // pipeline ablation): no embedded coin; the host supplies `rand` to
  // sub_receive_with_rand every beat.
  SsByz2Clock(const ProtocolEnv& env, ChannelId base, Rng rng);

  // --- embeddable sub-protocol interface (used by ss-Byz-4-Clock) ---
  void sub_send(Outbox& out);
  // With an embedded coin.
  void sub_receive(const Inbox& in);
  // With a host-supplied coin bit.
  void sub_receive_with_rand(const Inbox& in, bool rand);

  Tri tri_state() const { return clock_; }

  // --- ClockProtocol (top-level use) ---
  void send_phase(Outbox& out) override { sub_send(out); }
  void receive_phase(const Inbox& in) override { sub_receive(in); }
  void randomize_state(Rng& rng) override;
  // The 2-clock value; "?" maps to 0 (the convergence detector requires
  // closure over a window, which an all-? state cannot fake).
  ClockValue clock() const override;
  ClockValue modulus() const override { return 2; }
  std::uint32_t channel_count() const override { return channels_end_; }
  void trace_state(TraceEmitter& em) const override;

  // Channels consumed when rooted at some base: 1 + the coin's.
  static std::uint32_t channels_needed(const CoinSpec& coin) {
    return 1 + coin.channels;
  }
  static std::uint32_t channels_needed_external_coin() { return 1; }

 private:
  void apply_majority_rule(const Inbox& in, bool rand);

  ProtocolEnv env_;
  ChannelId clock_channel_;
  std::uint32_t channels_end_;
  std::unique_ptr<CoinComponent> coin_;  // null in external-coin mode
  Tri clock_ = Tri::kZero;
};

}  // namespace ssbft
