// Unit tests for the support layer: deterministic RNG and the
// failure-tolerant byte codec (the first line of defense against
// Byzantine payloads).
#include <gtest/gtest.h>

#include <cstring>
#include <iomanip>
#include <set>
#include <sstream>

#include "harness/table.h"
#include "support/bitpack61.h"
#include "support/bitwords.h"
#include "support/bytes.h"
#include "support/check.h"
#include "support/rng.h"

namespace ssbft {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStability) {
  // Splits derive from the origin seed, not generator position: drawing
  // before splitting must not change the split stream.
  Rng a(7), b(7);
  (void)a.next_u64();
  (void)a.next_u64();
  Rng sa = a.split("stream");
  Rng sb = b.split("stream");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, SplitIndependenceAcrossLabels) {
  Rng root(7);
  Rng a = root.split("alpha");
  Rng b = root.split("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSplitsDiffer) {
  Rng root(9);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 50; ++i) {
    firsts.insert(root.split("node", i).next_u64());
  }
  EXPECT_EQ(firsts.size(), 50u);
}

TEST(Rng, IndexedSplitStreamsAreIndependent) {
  // Not just distinct first draws: the full streams of split(label, i) and
  // split(label, j) must not collide or shadow each other.
  Rng root(11);
  Rng a = root.split("trial", 3);
  Rng b = root.split("trial", 4);
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSplitDisjointFromLabelSplit) {
  // split("x") and split("x", i) are different streams for every i,
  // including the tempting i = 0 collision.
  Rng root(13);
  Rng plain = root.split("x");
  Rng indexed = root.split("x", 0);
  int same = 0;
  for (int i = 0; i < 128; ++i) {
    if (plain.next_u64() == indexed.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSplitStability) {
  // Indexed splits derive from the origin seed: consuming draws or making
  // other splits first must not perturb the (label, index) stream.
  Rng a(21), b(21);
  (void)a.next_u64();
  (void)a.split("other");
  (void)a.split("node", 5);
  Rng sa = a.split("node", 3);
  Rng sb = b.split("node", 3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, NextBelowIsInRangeAndCoversValues) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowOneIsZero) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroIsContractError) {
  Rng r(3);
  EXPECT_THROW(r.next_below(0), contract_error);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = r.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(r.next_bernoulli(0.0));
    EXPECT_TRUE(r.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (r.next_bernoulli(0.3)) ++hits;
  }
  const double p = static_cast<double>(hits) / trials;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Rng, BoolRoughlyFair) {
  Rng r(13);
  int ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (r.next_bool()) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.02);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.u64_vec({1, 2, 3});
  w.bytes({0x01, 0x02});
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.u64_vec(8), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.bytes(8), (Bytes{0x01, 0x02}));
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, TruncatedReadLatchesFailure) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u64(), 0u);  // past end
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.at_end());
  // Subsequent reads stay failed, never throw.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, HostileLengthPrefixRejected) {
  // A length prefix claiming 2^31 elements must not allocate.
  ByteWriter w;
  w.u32(0x80000000u);
  ByteReader r(w.data());
  const auto v = r.u64_vec(1024);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, LengthBeyondCapRejected) {
  ByteWriter w;
  w.u64_vec({1, 2, 3, 4});
  ByteReader r(w.data());
  const auto v = r.u64_vec(3);  // cap below actual length
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, LengthLongerThanBufferRejected) {
  ByteWriter w;
  w.u32(5);  // claims 5 u64s but provides none
  ByteReader r(w.data());
  const auto v = r.u64_vec(16);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, EmptyVectorRoundTrip) {
  ByteWriter w;
  w.u64_vec({});
  ByteReader r(w.data());
  EXPECT_TRUE(r.u64_vec(4).empty());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, AtEndRequiresFullConsumption) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.at_end());  // one byte left over: trailing garbage
}

TEST(Bytes, U64VecIntoMatchesAllocatingDecode) {
  ByteWriter w;
  w.u64_vec({5, 6, 7});
  std::uint64_t scratch[8] = {0};
  ByteReader r(w.data());
  EXPECT_EQ(r.u64_vec_into(scratch, 8), 3u);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(scratch[0], 5u);
  EXPECT_EQ(scratch[1], 6u);
  EXPECT_EQ(scratch[2], 7u);
}

TEST(Bytes, U64VecIntoRejectsSameInputsAsAllocatingDecode) {
  std::uint64_t scratch[4] = {0};
  {
    ByteWriter w;
    w.u32(0x80000000u);  // hostile length prefix
    ByteReader r(w.data());
    EXPECT_EQ(r.u64_vec_into(scratch, 4), 0u);
    EXPECT_FALSE(r.ok());
  }
  {
    ByteWriter w;
    w.u64_vec({1, 2, 3, 4});  // above cap
    ByteReader r(w.data());
    EXPECT_EQ(r.u64_vec_into(scratch, 3), 0u);
    EXPECT_FALSE(r.ok());
  }
  {
    ByteWriter w;
    w.u32(5);  // claims 5 u64s, provides none
    ByteReader r(w.data());
    EXPECT_EQ(r.u64_vec_into(scratch, 16), 0u);
    EXPECT_FALSE(r.ok());
  }
}

TEST(Bytes, U64VecFlatOverloadMatchesVectorOverload) {
  const std::vector<std::uint64_t> v{9, 8, 7, 6};
  ByteWriter a, b;
  a.u64_vec(v);
  b.u64_vec(v.data(), v.size());
  EXPECT_EQ(a.data(), b.data());
}

// --- Masked field-vector codec (ByteWriter::masked_u64_vec) ---------------

// Reference encode/decode through the plain u64_vec wire format, for the
// round-trip property tests: the masked codec must carry exactly the same
// logical vector (sentinels included), only in fewer bytes.
std::vector<std::uint64_t> masked_round_trip(
    const std::vector<std::uint64_t>& v, std::uint64_t absent,
    unsigned value_bits) {
  ByteWriter w;
  w.masked_u64_vec(v.data(), v.size(), absent, value_bits);
  ByteReader r(w.data());
  std::vector<std::uint64_t> out(v.size(), ~std::uint64_t{0});
  EXPECT_TRUE(r.masked_u64_vec_into(out.data(), out.size(), absent,
                                    value_bits));
  EXPECT_TRUE(r.at_end());
  return out;
}

TEST(MaskedCodec, RoundTripPropertyVsPlainReference) {
  Rng rng(71);
  const std::uint64_t absent = (std::uint64_t{1} << 61) - 1;  // 2^61 - 1
  for (unsigned value_bits : {61u, 64u, 13u, 1u}) {
    const std::uint64_t value_bound =
        value_bits >= 61 ? absent : (std::uint64_t{1} << value_bits);
    for (int iter = 0; iter < 50; ++iter) {
      const std::size_t len = rng.next_below(40);
      std::vector<std::uint64_t> v(len);
      for (auto& x : v) {
        x = rng.next_bernoulli(0.3) ? absent : rng.next_below(value_bound);
      }
      // The plain encoding round-trips by construction; the masked one
      // must yield the identical vector.
      ByteWriter plain;
      plain.u64_vec(v);
      ByteReader pr(plain.data());
      std::vector<std::uint64_t> ref(64);
      const std::size_t ref_n = pr.u64_vec_into(ref.data(), 64);
      ref.resize(ref_n);
      EXPECT_EQ(masked_round_trip(v, absent, value_bits), ref);
      // And in fewer bytes whenever values pack below 64 bits: absent
      // entries cost 1 bit instead of value_bits, and sub-64-bit values
      // pack tighter than the plain format even when all are present. (At
      // value_bits = 64 an all-present vector longer than 32 can spend
      // more on mask bytes than the dropped length prefix, so no strict
      // inequality holds there.)
      ByteWriter masked;
      masked.masked_u64_vec(v.data(), v.size(), absent, value_bits);
      if (len > 0 && value_bits < 64) {
        EXPECT_LT(masked.size(), plain.size());
      }
    }
  }
}

TEST(MaskedCodec, EmptyVectorIsZeroBytes) {
  ByteWriter w;
  w.masked_u64_vec(nullptr, 0, 7, 61);
  EXPECT_EQ(w.size(), 0u);
  ByteReader r(w.data());
  EXPECT_TRUE(r.masked_u64_vec_into(nullptr, 0, 7, 61));
  EXPECT_TRUE(r.at_end());
}

TEST(MaskedCodec, TruncatedMaskRejected) {
  ByteWriter w;
  w.u8(0xff);  // 13-entry vector needs 2 mask bytes; provide 1
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(13, 42);
  EXPECT_FALSE(r.masked_u64_vec_into(dst.data(), 13, 0, 61));
  EXPECT_FALSE(r.ok());
  for (auto x : dst) EXPECT_EQ(x, 42u);  // dst untouched on failure
}

TEST(MaskedCodec, TruncatedPackedTailRejected) {
  ByteWriter w;
  w.u8(0x07);  // 3 of 8 entries present -> needs ceil(3*61/8) = 23 bytes
  w.u64(1);    // only 8 provided
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(8, 42);
  EXPECT_FALSE(r.masked_u64_vec_into(dst.data(), 8, 0, 61));
  EXPECT_FALSE(r.ok());
  for (auto x : dst) EXPECT_EQ(x, 42u);
}

TEST(MaskedCodec, OverlongTailFailsAtEnd) {
  // Trailing bytes after the packed values are not consumed: the decode
  // itself succeeds but the caller's at_end() contract rejects the
  // payload, exactly like trailing garbage after a u64_vec.
  std::vector<std::uint64_t> v{5, 6};
  ByteWriter w;
  w.masked_u64_vec(v.data(), v.size(), 7, 61);
  w.u8(0xcc);
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(2);
  EXPECT_TRUE(r.masked_u64_vec_into(dst.data(), 2, 7, 61));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.at_end());
}

TEST(MaskedCodec, MaskBitsBeyondLengthRejected) {
  ByteWriter w;
  w.u8(0xff);  // 5-entry vector: bits 5..7 must be zero
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(5, 42);
  EXPECT_FALSE(r.masked_u64_vec_into(dst.data(), 5, 0, 61));
  EXPECT_FALSE(r.ok());
  for (auto x : dst) EXPECT_EQ(x, 42u);
}

TEST(MaskedCodec, NonzeroPaddingBitsRejected) {
  // One present 61-bit value packs into 8 bytes with 3 padding bits; set
  // one of them.
  ByteWriter w;
  w.u8(0x01);
  w.u64((std::uint64_t{1} << 61) | 123);  // bit 61 is padding
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(1, 42);
  EXPECT_FALSE(r.masked_u64_vec_into(dst.data(), 1, 0, 61));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(dst[0], 42u);
}

TEST(MaskedCodec, SentinelSmugglingDecodesToTheSentinel) {
  // A Byzantine encoder can mark an entry present and pack the sentinel
  // value itself (it fits in 61 bits for the Mersenne prime). The decode
  // must yield exactly the sentinel — indistinguishable from a masked-out
  // entry to the caller's validity check — never some aliased value.
  const std::uint64_t sentinel = (std::uint64_t{1} << 61) - 1;
  ByteWriter w;
  w.u8(0x01);
  w.u64(sentinel);  // 61 value bits + 3 zero padding bits = 8 bytes
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(1, 0);
  EXPECT_TRUE(r.masked_u64_vec_into(dst.data(), 1, sentinel, 61));
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(dst[0], sentinel);
}

TEST(MaskedCodec, WriterRejectsValuesWiderThanValueBits) {
  const std::uint64_t v = std::uint64_t{1} << 13;
  ByteWriter w;
  EXPECT_THROW(w.masked_u64_vec(&v, 1, 0, 13), contract_error);
  EXPECT_THROW(w.masked_u64_vec(&v, 1, 0, 0), contract_error);
  EXPECT_THROW(w.masked_u64_vec(&v, 1, 0, 65), contract_error);
}

TEST(MaskedCodec, SixtyFourBitValuesSupported) {
  std::vector<std::uint64_t> v{~std::uint64_t{0} - 1, 3,
                               ~std::uint64_t{0} - 1};
  EXPECT_EQ(masked_round_trip(v, 3, 64),
            (std::vector<std::uint64_t>{~std::uint64_t{0} - 1, 3,
                                        ~std::uint64_t{0} - 1}));
}

// --- 61-bit block kernels behind the masked codec -------------------------
//
// At value_bits = 61 full runs of 8 present values travel through the bulk
// block packer in support/bitpack61.h. The wire layout is defined by the
// scalar bit-window, so these tests pin (a) the block kernels against a
// bit-by-bit reference, vector backend against the portable one, and (b)
// the full codec against itself across every mask shape that straddles the
// block boundary — wire bytes must be identical no matter which path ran.

TEST(Bitpack61, BlockMatchesBitByBitReference) {
  Rng rng(611);
  const std::uint64_t mask61 = (std::uint64_t{1} << 61) - 1;
  for (int iter = 0; iter < 200; ++iter) {
    std::uint64_t v[8];
    for (auto& x : v) x = rng.next_u64() & mask61;
    if (iter == 0) for (auto& x : v) x = mask61;  // all-ones edge
    if (iter == 1) for (auto& x : v) x = 0;
    std::uint8_t got[bitpack61::kBlockBytes];
    bitpack61::pack_block(v, got);
    // Reference: place bit b of value k at packed bit 61k + b.
    std::uint8_t want[bitpack61::kBlockBytes] = {0};
    for (int k = 0; k < 8; ++k) {
      for (int b = 0; b < 61; ++b) {
        const std::size_t bit = 61 * k + b;
        if ((v[k] >> b) & 1) want[bit / 8] |= std::uint8_t(1u << (bit % 8));
      }
    }
    ASSERT_EQ(std::memcmp(got, want, sizeof want), 0) << "iter " << iter;
    std::uint64_t back[8];
    bitpack61::unpack_block(got, back);
    for (int k = 0; k < 8; ++k) ASSERT_EQ(back[k], v[k]);
  }
}

TEST(Bitpack61, DispatchedKernelsMatchPortable) {
  Rng rng(612);
  const std::uint64_t mask61 = (std::uint64_t{1} << 61) - 1;
  for (int iter = 0; iter < 100; ++iter) {
    std::uint64_t v[8];
    for (auto& x : v) x = rng.next_u64() & mask61;
    std::uint8_t a[bitpack61::kBlockBytes], b[bitpack61::kBlockBytes];
    bitpack61::pack_block(v, a);
    bitpack61::pack_block_portable(v, b);
    ASSERT_EQ(std::memcmp(a, b, sizeof a), 0);
    std::uint64_t va[8], vb[8];
    bitpack61::unpack_block(a, va);
    bitpack61::unpack_block_portable(a, vb);
    for (int k = 0; k < 8; ++k) {
      ASSERT_EQ(va[k], v[k]);
      ASSERT_EQ(vb[k], v[k]);
    }
  }
}

TEST(MaskedCodec, BlockPathMaskShapesRoundTrip) {
  // Lengths and masks chosen to hit: all-present multi-block runs, a
  // sub-block tail (present % 8 != 0), alternating masks (block path never
  // engages), all-absent, and single-value slack around the 8-value
  // threshold.
  Rng rng(613);
  const std::uint64_t absent = (std::uint64_t{1} << 61) - 1;
  for (std::size_t len : {std::size_t{7}, std::size_t{8}, std::size_t{9},
                          std::size_t{15}, std::size_t{16}, std::size_t{17},
                          std::size_t{64}, std::size_t{129}}) {
    for (int shape = 0; shape < 4; ++shape) {
      std::vector<std::uint64_t> v(len);
      for (std::size_t i = 0; i < len; ++i) {
        const bool present = shape == 0   ? true
                             : shape == 1 ? false
                             : shape == 2 ? (i % 2 == 0)
                                          : !rng.next_bernoulli(0.25);
        v[i] = present ? rng.next_u64() % absent : absent;
      }
      EXPECT_EQ(masked_round_trip(v, absent, 61), v)
          << "len=" << len << " shape=" << shape;
    }
  }
}

TEST(MaskedCodec, BlockAndWindowEncodersAgreeByteForByte) {
  // Force the scalar window by using value_bits = 60 (no block path) on
  // 61-bit-shaped data... that changes the wire format, so instead compare
  // the 61-bit encoding of an all-present vector against an independent
  // bit-by-bit packer: every byte must match the layout contract.
  Rng rng(614);
  const std::uint64_t mask61 = (std::uint64_t{1} << 61) - 1;
  const std::size_t len = 19;  // 2 full blocks + 3-value tail
  std::vector<std::uint64_t> v(len);
  for (auto& x : v) x = rng.next_u64() & (mask61 - 1);  // never the sentinel
  ByteWriter w;
  w.masked_u64_vec(v.data(), len, mask61, 61);
  const std::size_t mask_bytes = (len + 7) / 8;
  const std::size_t packed_bytes = (len * 61 + 7) / 8;
  ASSERT_EQ(w.size(), mask_bytes + packed_bytes);
  std::vector<std::uint8_t> want(packed_bytes, 0);
  for (std::size_t k = 0; k < len; ++k) {
    for (int b = 0; b < 61; ++b) {
      const std::size_t bit = 61 * k + b;
      if ((v[k] >> b) & 1) want[bit / 8] |= std::uint8_t(1u << (bit % 8));
    }
  }
  ASSERT_EQ(std::memcmp(w.data().data() + mask_bytes, want.data(),
                        packed_bytes),
            0);
}

TEST(MaskedCodec, BlockPathSentinelSmuggling) {
  // Same Byzantine trick as SentinelSmugglingDecodesToTheSentinel but with
  // enough present values (>= 8) that the bulk decode path runs: a packed
  // sentinel must still come out as exactly the sentinel.
  const std::uint64_t sentinel = (std::uint64_t{1} << 61) - 1;
  std::uint64_t block[8] = {1, 2, sentinel, 4, 5, sentinel, 7, 8};
  ByteWriter w;
  w.u8(0xff);  // all 8 present
  std::uint8_t packed[bitpack61::kBlockBytes];
  bitpack61::pack_block_portable(block, packed);
  for (auto byte : packed) w.u8(byte);
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(8, 0);
  EXPECT_TRUE(r.masked_u64_vec_into(dst.data(), 8, sentinel, 61));
  EXPECT_TRUE(r.at_end());
  for (int k = 0; k < 8; ++k) EXPECT_EQ(dst[k], block[k]);
}

TEST(MaskedCodec, BlockPathStrictnessPreserved) {
  // The bulk path shares the window path's failure checks; a truncated
  // packed region under an all-present 16-entry mask must still latch.
  ByteWriter w;
  w.u8(0xff);
  w.u8(0xff);  // 16 present -> needs 122 bytes; provide 61
  for (int i = 0; i < 61; ++i) w.u8(0xaa);
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(16, 42);
  EXPECT_FALSE(r.masked_u64_vec_into(dst.data(), 16, 0, 61));
  EXPECT_FALSE(r.ok());
  for (auto x : dst) EXPECT_EQ(x, 42u);
}

// --- Raw bitmask codec (ByteWriter::bits) ---------------------------------

TEST(BitsCodec, RoundTripAcrossWordBoundary) {
  for (std::size_t nbits : {std::size_t{1}, std::size_t{8}, std::size_t{13},
                            std::size_t{64}, std::size_t{70}}) {
    std::vector<std::uint64_t> words(bitword_count(nbits), 0);
    Rng rng(5 + nbits);
    for (std::size_t i = 0; i < nbits; ++i) {
      bitword_set(words.data(), i, rng.next_bool());
    }
    ByteWriter w;
    w.bits(words.data(), nbits);
    EXPECT_EQ(w.size(), (nbits + 7) / 8);
    std::vector<std::uint64_t> out(words.size(), ~std::uint64_t{0});
    ByteReader r(w.data());
    EXPECT_TRUE(r.bits_into(out.data(), nbits));
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(out, words);
  }
}

TEST(BitsCodec, PaddingBitsRejected) {
  ByteWriter w;
  w.u8(0xff);
  w.u8(0xff);  // 13-bit mask: bits 13..15 must be zero
  ByteReader r(w.data());
  std::uint64_t out = 42;
  EXPECT_FALSE(r.bits_into(&out, 13));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(out, 42u);  // untouched on failure
}

TEST(BitsCodec, TruncatedRejected) {
  ByteWriter w;
  w.u8(0x11);
  ByteReader r(w.data());
  std::uint64_t out = 42;
  EXPECT_FALSE(r.bits_into(&out, 13));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(out, 42u);
}

TEST(Bitwords, GetSetRoundTripAcrossWordBoundaries) {
  std::uint64_t words[3] = {0, 0, 0};
  ASSERT_EQ(bitword_count(130), 3u);
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                        std::size_t{64}, std::size_t{65}, std::size_t{127},
                        std::size_t{128}, std::size_t{129}}) {
    EXPECT_FALSE(bitword_get(words, i));
    bitword_set(words, i, true);
    EXPECT_TRUE(bitword_get(words, i)) << i;
  }
  bitword_set(words, 64, false);
  EXPECT_FALSE(bitword_get(words, 64));
  EXPECT_TRUE(bitword_get(words, 63));
  EXPECT_TRUE(bitword_get(words, 65));
  bitword_clear(words, 130);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bitword_get(words, i));
}

TEST(Bitwords, LayoutMatchesWireFormat) {
  // Bit i in word i/64 at position i%64 — the vote-mask wire layout.
  std::uint64_t words[2] = {0, 0};
  bitword_set(words, 0, true);
  bitword_set(words, 5, true);
  bitword_set(words, 64, true);
  EXPECT_EQ(words[0], (std::uint64_t{1} << 0) | (std::uint64_t{1} << 5));
  EXPECT_EQ(words[1], std::uint64_t{1});
}

TEST(Bytes, HexFormatting) {
  EXPECT_EQ(to_hex({0x00, 0xff, 0x1a}), "00ff1a");
  EXPECT_EQ(to_hex({}), "");
}

TEST(Check, MacrosThrowContractErrors) {
  EXPECT_THROW(SSBFT_CHECK(false), contract_error);
  EXPECT_THROW(SSBFT_REQUIRE(1 == 2), contract_error);
  EXPECT_NO_THROW(SSBFT_CHECK(true));
  try {
    SSBFT_REQUIRE_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("3.5 (p90 8)"), "3.5 (p90 8)");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rcell"), "\"cr\rcell\"");
}

TEST(AsciiTable, WideRowsAlignAndWidthsFitContent) {
  // The large-n scaling grid produces cells far wider than their headers
  // (n=128 scenario labels, 6+ digit ns/beat values). Every rendered line —
  // rules, header, rows — must have identical length, with columns sized to
  // the widest cell.
  AsciiTable t({"n", "ns/beat"});
  t.add_row({"128", "12345678.9"});
  t.add_row({"scaling-large/fm/n128/gallery", "7"});
  std::ostringstream os;
  t.print(os);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t expect = 0;
  int count = 0;
  while (std::getline(lines, line)) {
    if (expect == 0) expect = line.size();
    EXPECT_EQ(line.size(), expect) << "line: " << line;
    ++count;
  }
  EXPECT_EQ(count, 6);  // rule, header, rule, 2 rows, rule
  EXPECT_NE(os.str().find("| scaling-large/fm/n128/gallery | 7          |"),
            std::string::npos)
      << os.str();
}

TEST(AsciiTable, PrintIgnoresAmbientStreamFormattingState) {
  // Reports interleave tables with code that sets fill/adjustfield on the
  // shared stream; the table must pad with spaces regardless, and must not
  // leak formatting flags back to the caller.
  AsciiTable t({"name", "value"});
  t.add_row({"x", "123456"});
  std::ostringstream os;
  os.fill('0');
  os.setf(std::ios::right, std::ios::adjustfield);
  os << std::setw(0);
  t.print(os);
  EXPECT_EQ(os.str().find('0'), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("| x    | 123456 |"), std::string::npos) << os.str();
  EXPECT_EQ(os.fill(), '0');
  EXPECT_EQ(os.flags() & std::ios::adjustfield, std::ios::right);
}

TEST(AsciiTable, CsvEscapesCommaQuoteAndNewline) {
  AsciiTable t({"configuration", "note, quoted"});
  t.add_row({"4-clock, two pipelines", "plain"});
  t.add_row({"he said \"go\"", "multi\nline"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(),
            "configuration,\"note, quoted\"\n"
            "\"4-clock, two pipelines\",plain\n"
            "\"he said \"\"go\"\"\",\"multi\nline\"\n");
}

}  // namespace
}  // namespace ssbft
