#include "sim/delivery.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace ssbft {

namespace {

// ---------------------------------------------------------------------------
// Sub-steps shared by the policies. These reproduce the pre-extraction
// engine behavior bit for bit (draw order included) — SynchronousDelivery
// is nothing but these three in sequence.

// Under a lossy network the delivered count per inbox is random, so
// pre-reserve to the deterministic pre-drop addressed count — otherwise
// inbox capacity chases record peaks and the steady state would keep
// allocating.
void reserve_pre_drop(DeliveryBeat& b) {
  std::vector<std::uint32_t>& addressed = *b.addressed_scratch;
  addressed.assign(b.n, 0);
  for (const Message& m : *b.correct_msgs) ++addressed[m.to];
  for (const Message& m : *b.adv_msgs) ++addressed[m.to];
  for (NodeId id : *b.correct_ids) {
    (*b.inboxes)[id].reserve(addressed[id] + b.faults->phantoms_per_beat);
  }
}

// The per-message loss lottery. Draws from net_rng only on sampling beats,
// so the draw sequence stays a deterministic function of the traffic.
inline bool drop_sampled(DeliveryBeat& b) {
  return b.sample_drops && b.net_rng->next_bernoulli(b.drop_prob);
}

// Phantom messages: leftovers in network buffers from before the system
// became coherent. They carry arbitrary (but unforged-looking) sender
// ids, channels and payloads.
void inject_phantoms(DeliveryBeat& b) {
  Rng& net_rng = *b.net_rng;
  for (NodeId id : *b.correct_ids) {
    for (std::uint32_t i = 0; i < b.faults->phantoms_per_beat; ++i) {
      Message m;
      m.from = static_cast<NodeId>(net_rng.next_below(b.n));
      m.to = id;
      m.channel = static_cast<ChannelId>(
          net_rng.next_below(std::max<std::uint32_t>(b.channel_count, 1)));
      // Widened before the +1: a phantom_max_len at the type's maximum must
      // not wrap the bound to zero.
      const std::uint64_t len = net_rng.next_below(
          static_cast<std::uint64_t>(b.faults->phantom_max_len) + 1);
      m.payload = b.phantom_pool->acquire();
      Bytes& buf = m.payload.mutable_bytes();
      // Reserve the maximum once per slot: phantom lengths are random, and
      // growing to a fresh record length must not allocate in the steady
      // state.
      buf.reserve(b.faults->phantom_max_len);
      buf.resize(static_cast<std::size_t>(len));
      // Bulk fill: one next_u64 draw per 8 payload bytes (little-endian,
      // a partial final draw spends its low bytes first). The draw
      // sequence is part of the replay contract: ceil(len/8) next_u64
      // draws per phantom, after the from/channel/len draws above.
      for (std::size_t off = 0; off < buf.size(); off += 8) {
        std::uint64_t word = net_rng.next_u64();
        const std::size_t chunk = std::min<std::size_t>(8, buf.size() - off);
        for (std::size_t byte = 0; byte < chunk; ++byte) {
          buf[off + byte] = static_cast<std::uint8_t>(word >> (8 * byte));
        }
      }
      b.metrics->count_phantom();
      (*b.inboxes)[id].deliver(std::move(m));
    }
  }
}

// ---------------------------------------------------------------------------
// SynchronousDelivery: the paper's network, replay-exact with the
// pre-extraction engine.

class SynchronousDelivery final : public DeliveryPolicy {
 public:
  void deliver_beat(DeliveryBeat& b) override {
    if (b.sample_drops) reserve_pre_drop(b);
    deliver_all(b, *b.correct_msgs);
    deliver_all(b, *b.adv_msgs);
    if (b.network_faulty) inject_phantoms(b);
  }

 private:
  static void deliver_all(DeliveryBeat& b, std::vector<Message>& msgs) {
    for (Message& m : msgs) {
      if ((*b.is_faulty)[m.to]) continue;  // faulty inboxes: the adversary
      if (drop_sampled(b)) {
        b.metrics->count_dropped();
        continue;
      }
      (*b.inboxes)[m.to].deliver(std::move(m));
    }
  }
};

// ---------------------------------------------------------------------------
// EclipseDelivery: while active, each victim hears only the allowlisted
// senders (plus itself — loopback is local, not network traffic).
// Suppression happens before the loss lottery, so eclipsed messages spend
// no rng draws; phantoms are network garbage and still reach victims.

class EclipseDelivery final : public DeliveryPolicy {
 public:
  explicit EclipseDelivery(DeliverySpec spec) : spec_(std::move(spec)) {}

  void bind(std::uint32_t n, std::uint32_t) override {
    victim_.assign(n, false);
    for (NodeId v : spec_.victims) victim_[v] = true;
    allowed_.assign(n, false);
    for (NodeId s : spec_.allowed_senders) allowed_[s] = true;
  }

  void deliver_beat(DeliveryBeat& b) override {
    const bool active = b.beat < spec_.heal_at;
    if (b.sample_drops) reserve_pre_drop(b);
    deliver_filtered(b, *b.correct_msgs, active);
    deliver_filtered(b, *b.adv_msgs, active);
    if (b.network_faulty) inject_phantoms(b);
  }

 private:
  void deliver_filtered(DeliveryBeat& b, std::vector<Message>& msgs,
                        bool active) {
    for (Message& m : msgs) {
      if ((*b.is_faulty)[m.to]) continue;
      if (active && victim_[m.to] && !allowed_[m.from] && m.from != m.to) {
        b.metrics->count_eclipsed();
        continue;
      }
      if (drop_sampled(b)) {
        b.metrics->count_dropped();
        continue;
      }
      (*b.inboxes)[m.to].deliver(std::move(m));
    }
  }

  DeliverySpec spec_;
  std::vector<bool> victim_;
  std::vector<bool> allowed_;
};

// ---------------------------------------------------------------------------
// PartitionDelivery: while active, messages crossing the
// id < partition_split cut are suppressed in both directions (a partition
// is mutual eclipse, so the cuts land on the eclipsed counter).

class PartitionDelivery final : public DeliveryPolicy {
 public:
  explicit PartitionDelivery(DeliverySpec spec) : spec_(std::move(spec)) {}

  void deliver_beat(DeliveryBeat& b) override {
    const bool active = b.beat < spec_.heal_at;
    if (b.sample_drops) reserve_pre_drop(b);
    deliver_filtered(b, *b.correct_msgs, active);
    deliver_filtered(b, *b.adv_msgs, active);
    if (b.network_faulty) inject_phantoms(b);
  }

 private:
  void deliver_filtered(DeliveryBeat& b, std::vector<Message>& msgs,
                        bool active) {
    const std::uint32_t split = spec_.partition_split;
    for (Message& m : msgs) {
      if ((*b.is_faulty)[m.to]) continue;
      if (active && (m.from < split) != (m.to < split)) {
        b.metrics->count_eclipsed();
        continue;
      }
      if (drop_sampled(b)) {
        b.metrics->count_dropped();
        continue;
      }
      (*b.inboxes)[m.to].deliver(std::move(m));
    }
  }

  DeliverySpec spec_;
};

// ---------------------------------------------------------------------------
// TargetedDelayDelivery: messages to victims that survive the loss lottery
// are parked — pooled payload handles and all — in a delay_beats-slot ring
// and delivered exactly delay_beats beats later, first in their arrival
// beat (they are the oldest traffic). Per-sender order is preserved: every
// victim-addressed message takes the same constant detour, and within one
// ring slot the park order is the send order. After heal_at new messages
// flow synchronously; already-parked ones still arrive late. The ring
// bounds pool demand at delay_beats x one beat's victim traffic, so the
// steady state stays allocation-free once the slot capacities settle.

class TargetedDelayDelivery final : public DeliveryPolicy {
 public:
  explicit TargetedDelayDelivery(DeliverySpec spec) : spec_(std::move(spec)) {
    ring_.resize(spec_.delay_beats);
  }

  void bind(std::uint32_t n, std::uint32_t) override {
    victim_.assign(n, false);
    for (NodeId v : spec_.victims) victim_[v] = true;
  }

  void deliver_beat(DeliveryBeat& b) override {
    // Due messages (parked delay_beats ago) arrive ahead of this beat's
    // traffic. The freed slot is exactly the one this beat parks into:
    // beat % d == (beat - d) % d.
    std::vector<Message>& slot = ring_[b.beat % spec_.delay_beats];
    const bool active = b.beat < spec_.heal_at;
    // Under a lossy network every capacity must track a deterministic
    // pre-drop bound, never the random survivor counts: victim inboxes
    // take the flushed backlog on top of the beat's addressed traffic,
    // and the freed ring slot refills with this beat's victim traffic.
    if (b.sample_drops) {
      reserve_with_backlog(b, slot.size());
    }
    for (Message& m : slot) {
      (*b.inboxes)[m.to].deliver(std::move(m));
    }
    slot.clear();  // capacity persists; handles were moved out
    if (active && b.sample_drops) {
      const std::vector<std::uint32_t>& addressed = *b.addressed_scratch;
      std::size_t victim_msgs = 0;
      for (NodeId id : *b.correct_ids) {
        if (victim_[id]) victim_msgs += addressed[id];
      }
      slot.reserve(victim_msgs);
    }
    route(b, *b.correct_msgs, slot, active);
    route(b, *b.adv_msgs, slot, active);
    if (b.network_faulty) inject_phantoms(b);
  }

 private:
  // reserve_pre_drop, plus the parked backlog a victim's inbox is about
  // to receive on top of its addressed count.
  void reserve_with_backlog(DeliveryBeat& b, std::size_t backlog) {
    std::vector<std::uint32_t>& addressed = *b.addressed_scratch;
    addressed.assign(b.n, 0);
    for (const Message& m : *b.correct_msgs) ++addressed[m.to];
    for (const Message& m : *b.adv_msgs) ++addressed[m.to];
    for (NodeId id : *b.correct_ids) {
      const std::size_t extra = victim_[id] ? backlog : 0;
      (*b.inboxes)[id].reserve(addressed[id] + extra +
                               b.faults->phantoms_per_beat);
    }
  }

  void route(DeliveryBeat& b, std::vector<Message>& msgs,
             std::vector<Message>& park, bool active) {
    for (Message& m : msgs) {
      if ((*b.is_faulty)[m.to]) continue;
      if (drop_sampled(b)) {
        b.metrics->count_dropped();
        continue;
      }
      if (active && victim_[m.to]) {
        b.metrics->count_delayed();
        park.push_back(std::move(m));  // handle rides across beats
        continue;
      }
      (*b.inboxes)[m.to].deliver(std::move(m));
    }
  }

  DeliverySpec spec_;
  std::vector<bool> victim_;
  std::vector<std::vector<Message>> ring_;  // slot beat % d: due at beat
};

// ---------------------------------------------------------------------------
// ReorderDelivery: every message that survives the loss lottery lands in a
// scratch buffer; a Fisher-Yates permutation drawn from net_rng decides
// the beat's arrival order. This exercises the Inbox canonical-ordering
// contract (per-channel views sort by sender id, duplicates keep arrival
// order) — protocols reading first_per_sender see a different duplicate
// win when a Byzantine sender equivocates. Phantoms are injected after
// the shuffle, in node order, as always.

class ReorderDelivery final : public DeliveryPolicy {
 public:
  explicit ReorderDelivery(DeliverySpec spec) : spec_(std::move(spec)) {}

  void deliver_beat(DeliveryBeat& b) override {
    if (b.sample_drops) {
      reserve_pre_drop(b);
      // The shuffle scratch also sizes to the pre-drop bound, so its
      // capacity never chases random survivor peaks.
      std::size_t total = 0;
      for (NodeId id : *b.correct_ids) {
        total += (*b.addressed_scratch)[id];
      }
      scratch_.reserve(total);
      order_.reserve(total);
    }
    collect(b, *b.correct_msgs);
    collect(b, *b.adv_msgs);
    if (b.beat < spec_.heal_at && scratch_.size() > 1) {
      order_.resize(scratch_.size());
      for (std::size_t i = 0; i < order_.size(); ++i) {
        order_[i] = static_cast<std::uint32_t>(i);
      }
      for (std::size_t i = scratch_.size() - 1; i > 0; --i) {
        const std::size_t j =
            static_cast<std::size_t>(b.net_rng->next_below(i + 1));
        std::swap(scratch_[i], scratch_[j]);
        std::swap(order_[i], order_[j]);
      }
      for (std::size_t i = 0; i < order_.size(); ++i) {
        if (order_[i] != i) b.metrics->count_reordered();
      }
    }
    for (Message& m : scratch_) {
      (*b.inboxes)[m.to].deliver(std::move(m));
    }
    scratch_.clear();
    if (b.network_faulty) inject_phantoms(b);
  }

 private:
  void collect(DeliveryBeat& b, std::vector<Message>& msgs) {
    for (Message& m : msgs) {
      if ((*b.is_faulty)[m.to]) continue;
      if (drop_sampled(b)) {
        b.metrics->count_dropped();
        continue;
      }
      scratch_.push_back(std::move(m));
    }
  }

  DeliverySpec spec_;
  std::vector<Message> scratch_;        // survivors, pre-permutation order
  std::vector<std::uint32_t> order_;    // original index, for the counter
};

}  // namespace

std::unique_ptr<DeliveryPolicy> make_delivery_policy(
    const DeliverySpec& spec) {
  switch (spec.kind) {
    case DeliveryKind::kSynchronous:
      return std::make_unique<SynchronousDelivery>();
    case DeliveryKind::kEclipse:
      return std::make_unique<EclipseDelivery>(spec);
    case DeliveryKind::kPartition:
      return std::make_unique<PartitionDelivery>(spec);
    case DeliveryKind::kTargetedDelay:
      return std::make_unique<TargetedDelayDelivery>(spec);
    case DeliveryKind::kReorder:
      return std::make_unique<ReorderDelivery>(spec);
  }
  SSBFT_CHECK(false);
  return std::make_unique<SynchronousDelivery>();
}

const char* delivery_kind_name(DeliveryKind k) {
  switch (k) {
    case DeliveryKind::kSynchronous: return "synchronous";
    case DeliveryKind::kEclipse: return "eclipse";
    case DeliveryKind::kPartition: return "partition";
    case DeliveryKind::kTargetedDelay: return "targeted-delay";
    case DeliveryKind::kReorder: return "reorder";
  }
  return "?";
}

}  // namespace ssbft
