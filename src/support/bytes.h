// Bounded, failure-tolerant byte serialization.
//
// All protocol messages travel as flat byte vectors. Byzantine senders may
// put arbitrary bytes on the wire, so the reader never throws on malformed
// input: it latches a failure flag and yields zeros, and decoders check
// `ok() && at_end()` once at the end. A message that fails to decode is
// treated by every protocol as absent (the paper's nodes simply ignore
// gibberish — Definition 2.2 only guarantees integrity of what was sent).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ssbft {

using Bytes = std::vector<std::uint8_t>;

// Little-endian append-only encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  // Length-prefixed (u32) vector of u64 values.
  void u64_vec(const std::vector<std::uint64_t>& v);
  // Same wire format from flat storage (scratch buffers, array slices).
  void u64_vec(const std::uint64_t* data, std::size_t len);
  // Length-prefixed (u32) raw bytes.
  void bytes(const Bytes& v);

  // Compact fixed-length vector codec for sparse field vectors. `len` is
  // known to both sides, so no length prefix travels. Wire layout:
  //
  //   ceil(len/8) mask bytes   bit i (byte i/8, bit i%8) = entry i present;
  //                            bits >= len MUST be zero.
  //   packed values            the present entries in index order, each
  //                            `value_bits` bits, bit-packed LSB-first into
  //                            ceil(popcount * value_bits / 8) bytes;
  //                            padding bits in the last byte MUST be zero.
  //
  // Entries equal to `absent` are masked out and cost 1 bit instead of
  // `value_bits` bits. Every present entry must fit in `value_bits` bits
  // (contract error otherwise); callers encoding canonical field elements
  // pass value_bits = bit width of (modulus - 1).
  //
  // At value_bits = 61 (the default field) full runs of 8 present values
  // are byte-aligned 61-byte blocks and go through the bulk kernels in
  // support/bitpack61.h; the bit layout — and therefore every wire byte —
  // is identical to the scalar window, which -DSSBFT_SIMD=off restores as
  // the single reference path.
  void masked_u64_vec(const std::uint64_t* data, std::size_t len,
                      std::uint64_t absent, unsigned value_bits = 64);

  // Raw fixed-width bitmask: `nbits` bits from bitword storage (bit i =
  // word i/64, bit i%64), as ceil(nbits/8) bytes; padding bits in the last
  // byte MUST be zero (they are taken from the words verbatim, so callers
  // keep bits >= nbits clear — bitword_clear does).
  void bits(const std::uint64_t* words, std::size_t nbits);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }
  // Drops the content but keeps the buffer's capacity, so a long-lived
  // writer can build payloads beat after beat without reallocating.
  void clear() { buf_.clear(); }

 private:
  Bytes buf_;
};

// Bounds-checked decoder over a borrowed buffer. The buffer must outlive
// the reader.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(&buf) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  // Reads a length-prefixed u64 vector; the length is capped by
  // `max_elems` so a hostile length prefix cannot force a huge allocation.
  std::vector<std::uint64_t> u64_vec(std::size_t max_elems);
  // Non-allocating variant: decodes into caller scratch (which must hold
  // max_elems slots) and returns the element count. On malformed input the
  // failure flag latches, 0 is returned and dst is untouched — decoders
  // keep checking `ok() && at_end()` exactly as with u64_vec.
  std::size_t u64_vec_into(std::uint64_t* dst, std::size_t max_elems);
  Bytes bytes(std::size_t max_len);

  // Decodes ByteWriter::masked_u64_vec of a known `len` into dst[0..len):
  // masked-out entries are set to `absent`. Returns true on success. On any
  // malformed input — truncated mask, truncated packed tail, nonzero mask
  // bits >= len, nonzero padding bits — the failure flag latches, dst is
  // untouched and false is returned; decoders keep checking
  // `ok() && at_end()` exactly as with u64_vec. An "overlong tail" (extra
  // bytes after the packed values) is not consumed here and therefore
  // fails the caller's at_end() check.
  bool masked_u64_vec_into(std::uint64_t* dst, std::size_t len,
                           std::uint64_t absent, unsigned value_bits = 64);

  // Decodes ByteWriter::bits into bitword storage (the caller provides
  // bitword_count(nbits) words). Rejects nonzero padding bits in the last
  // byte; on failure the words are untouched.
  bool bits_into(std::uint64_t* words, std::size_t nbits);

  // True iff no read has run past the end so far.
  bool ok() const { return ok_; }
  // True iff the whole buffer was consumed (and no read failed).
  bool at_end() const { return ok_ && pos_ == buf_->size(); }
  std::size_t remaining() const { return ok_ ? buf_->size() - pos_ : 0; }

 private:
  bool take(std::size_t len, const std::uint8_t** out);

  const Bytes* buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Hex dump (for traces and test diagnostics).
std::string to_hex(const Bytes& b);

}  // namespace ssbft
