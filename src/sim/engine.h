// The lock-step simulation engine: global beat system, rushing Byzantine
// adversary, transient/network fault injection, deterministic replay.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/adversary.h"
#include "sim/fault_plan.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/protocol.h"
#include "sim/trace.h"
#include "support/rng.h"

namespace ssbft {

class DeliveryPolicy;  // sim/delivery.h

// Hook invoked at the start of every beat, before any send phase. Used by
// environment-level components such as the oracle coin beacon.
class BeatListener {
 public:
  virtual ~BeatListener() = default;
  virtual void on_beat(Beat beat) = 0;
};

struct EngineConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  // Identities of the Byzantine nodes (size <= f typically; the engine
  // permits any subset so resiliency-boundary experiments can overload f).
  std::vector<NodeId> faulty;
  std::uint64_t seed = 1;
  FaultPlan faults;
  // 0 = record every beat's traffic; k > 0 = keep only the most recent k
  // beats (bounded memory, allocation-free steady state).
  std::size_t metrics_history_limit = 0;
  // Accumulate correct-node sent bytes per channel (one extra pass over
  // the beat's messages; off by default). Read via channel_bytes(); reset
  // via reset_channel_bytes() after warmup. Used by the per-round traffic
  // breakdown in bench_message_complexity.
  bool track_channel_bytes = false;

  // The highest-id nodes are faulty by default.
  static std::vector<NodeId> last_ids_faulty(std::uint32_t n, std::uint32_t count);
};

using ProtocolFactory =
    std::function<std::unique_ptr<Protocol>(const ProtocolEnv&, Rng)>;

class Engine {
 public:
  // Builds protocols for every non-faulty node. Per FaultPlan, genesis
  // state is randomized by default (the self-stabilization start).
  Engine(EngineConfig cfg, const ProtocolFactory& factory,
         std::unique_ptr<Adversary> adversary);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Executes one full beat (listener hooks, scheduled corruption, send
  // phases, adversary, delivery with network faults, receive phases).
  void run_beat();
  void run_beats(std::uint64_t count);

  Beat beat() const { return beat_; }
  std::uint32_t n() const { return cfg_.n; }
  std::uint32_t f() const { return cfg_.f; }

  bool is_faulty(NodeId id) const { return is_faulty_[id]; }
  const std::vector<NodeId>& correct_ids() const { return correct_ids_; }

  // The declared fault schedule this engine runs under (trace checkers
  // derive the network-quiescence horizon from it).
  const FaultPlan& fault_plan() const { return cfg_.faults; }

  // The protocol instance of a correct node.
  Protocol& node(NodeId id);
  const Protocol& node(NodeId id) const;

  // Clock values of all correct nodes, in correct_ids() order. Requires the
  // protocols to be ClockProtocols.
  std::vector<ClockValue> correct_clocks() const;

  // Immediately randomizes the state of a correct node (manual transient
  // fault, in addition to any FaultPlan schedule).
  void corrupt_node(NodeId id);

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  // Cumulative correct-node sent bytes per channel id (empty unless
  // EngineConfig::track_channel_bytes). Entry ch covers every message a
  // correct node emitted on channel ch, broadcasts counted once per
  // recipient — the same wire-byte semantics as Metrics. Scope: correct-
  // sender traffic only (no adversary or phantom bytes), accumulated at
  // send time — before the delivery policy runs — so drops, eclipses and
  // delays never change what a protocol is charged for.
  const std::vector<std::uint64_t>& channel_bytes() const {
    return channel_bytes_;
  }
  std::uint64_t channel_bytes_beats() const { return channel_bytes_beats_; }
  void reset_channel_bytes();

  // Listener is not owned; must outlive the engine's run.
  void add_listener(BeatListener* l) { listeners_.push_back(l); }

  // Attaches (or with nullptr detaches) a trace sink (sim/trace.h). The
  // sink is not owned and must outlive the run. Attaching caches each
  // correct node's ClockProtocol view once, so traced beats never
  // dynamic_cast; with no sink the beat loop pays one pointer test.
  void set_trace(TraceSink* sink);

 private:
  // End-of-beat trace pass: per-node clock + protocol records, then the
  // engine-level traffic summary. Only called when trace_ is attached.
  void emit_beat_trace();

  EngineConfig cfg_;
  Beat beat_ = 0;
  std::vector<bool> is_faulty_;
  std::vector<NodeId> correct_ids_;
  std::vector<std::unique_ptr<Protocol>> protocols_;  // null for faulty ids
  BytesPool pool_;  // owns recycled payload storage; declared before users
  // Phantom payloads draw from their own pool: its slots reserve
  // phantom_max_len on first use and are reused beat after beat, so the
  // random phantom sizes neither allocate in the steady state nor inflate
  // the protocol-payload slots of pool_.
  BytesPool phantom_pool_;
  // The delivery phase of run_beat (sim/delivery.h), chosen by
  // FaultPlan::delivery. Declared after the pools: a deferring policy
  // parks pooled payload handles across beats, so it must be destroyed
  // before the pools it borrows slots from.
  std::unique_ptr<DeliveryPolicy> delivery_;
  std::vector<Inbox> inboxes_;                        // per node id
  std::unique_ptr<Adversary> adversary_;
  std::uint32_t channel_count_ = 0;
  Rng adv_rng_;
  Rng corrupt_rng_;
  Rng net_rng_;
  Metrics metrics_;
  std::vector<BeatListener*> listeners_;
  TraceSink* trace_ = nullptr;
  TraceBuffer trace_buf_;
  // Cached per-id clock views for trace emission (null for faulty ids and
  // non-clock protocols); rebuilt by set_trace.
  std::vector<const ClockProtocol*> clock_views_;
  std::vector<std::uint64_t> channel_bytes_;  // per channel, when tracked
  std::uint64_t channel_bytes_beats_ = 0;
  // Persistent per-beat scratch: cleared every beat, capacity retained.
  Outbox outbox_{0, 0, &pool_};
  std::vector<Message> correct_msgs_;
  std::vector<Message> adv_msgs_;
  std::vector<Message> observed_;  // borrowed handles; the rushing view
  std::vector<std::uint32_t> addressed_;  // per-target count, lossy beats
};

}  // namespace ssbft
