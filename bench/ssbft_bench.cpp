// The experiment driver: one binary in front of the whole experiment
// subsystem. `list` names every registered experiment and scenario cell;
// `run` executes an experiment by name or any set of scenario cells by
// glob, scheduling all (cell, trial) units through one global sweep
// queue — optionally one shard of it (--shard i/k) with crash-safe
// checkpoints (--checkpoint/--resume); `merge` folds shard reports back
// into the unsharded table, bit for bit; `soak` drives seed-driven chaos
// campaigns (harness/chaos.h) over the matched scenarios with streaming
// invariant checking and optional repro minimization. The historical
// bench_* binaries are thin wrappers over the same registry
// (`bench_table1` == `ssbft_bench run table1`).
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "experiments.h"
#include "support/check.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: ssbft_bench <command> [...]\n"
        "  list [glob]                list experiments and registered "
        "scenarios\n"
        "  run <name|glob> [options]  run an experiment, or every scenario "
        "cell matching a glob\n"
        "  merge <report...>          fold ssbft-shard-v1 reports (from "
        "`run --shard`) into one table\n"
        "  soak <glob> [options]      chaos campaign: fuzz the matched "
        "scenarios' fault space with streaming invariant checking\n"
        "run options: [--trials N] [--jobs J] [--seed S]\n"
        "             [--format ascii|csv|jsonl] [--out FILE] [--trace DIR]\n"
        "             [--progress] [--shard I/K]\n"
        "             [--checkpoint FILE [--checkpoint-every N] [--resume]]\n"
        "  --trials N   override every cell's trial count (0 = per-cell "
        "defaults)\n"
        "  --jobs J     sweep worker threads (default/0: one per hardware "
        "thread; 1 = serial; results bit-identical either way)\n"
        "  --seed S     offset added to every cell's base seed\n"
        "  --format F   ascii (default), csv (RFC-4180) or jsonl\n"
        "  --out FILE   write the report to FILE instead of stdout\n"
        "  --trace DIR  write one JSONL execution trace per (cell, trial)\n"
        "               into DIR; verify them with `ssbft_check DIR`\n"
        "  --progress   stderr progress line (units done / total)\n"
        "  --shard I/K  run only the slice u % K == I of the sweep's unit\n"
        "               sequence and emit an ssbft-shard-v1 JSONL report\n"
        "               (scenario globs only; seeds stay per-cell, so the\n"
        "               merged result is bit-identical to an unsharded "
        "run)\n"
        "  --checkpoint FILE  atomically record completed units (every\n"
        "               --checkpoint-every N, default 16); --resume "
        "continues\n"
        "               a killed sweep bit-identically (scenario globs "
        "only)\n"
        "merge options: [--format ascii|csv|jsonl] [--out FILE] "
        "[--commitment-only]\n"
        "  --commitment-only  print just the aggregate SHA-256 trace\n"
        "               commitment (shards must have run with --trace);\n"
        "               matches `ssbft_check --commitment-only`\n"
        "soak options: [--campaign-seed S] [--units N] [--bound B] "
        "[--minimize]\n"
        "              plus --jobs/--progress/--out/--trace and the "
        "--shard/--checkpoint/--resume crash-safety knobs\n"
        "  --campaign-seed S  campaign identity (default 1): unit i's fault\n"
        "               plan is a pure function of (S, i) — any reported\n"
        "               violation line re-runs bit-identically\n"
        "  --units N    chaos units to sample across the matched cells "
        "(default 64)\n"
        "  --bound B    also enforce the re-convergence bound: every unit\n"
        "               must (re)converge within B beats of its last "
        "corruption\n"
        "  --minimize   delta-debug each violating plan to a minimal\n"
        "               registrable repro (axes dropped, schedules and\n"
        "               victim sets shrunk, horizons halved)\n"
        "examples:\n"
        "  ssbft_bench list 'net/*'\n"
        "  ssbft_bench run table1 --trials 2 --jobs 2\n"
        "  ssbft_bench run 'gallery/*' --format jsonl\n"
        "  ssbft_bench run net/baseline --trace traces && ssbft_check "
        "traces\n"
        "  ssbft_bench run table1-large --trials 1   # n up to 128 "
        "(scaling-large/* cells)\n"
        "  ssbft_bench run 'gallery/*' --shard 0/2 --out a.jsonl   # box A\n"
        "  ssbft_bench run 'gallery/*' --shard 1/2 --out b.jsonl   # box B\n"
        "  ssbft_bench merge a.jsonl b.jsonl\n"
        "  ssbft_bench run 'net/*' --checkpoint net.ckpt --progress\n"
        "  ssbft_bench run 'net/*' --checkpoint net.ckpt --resume\n"
        "  ssbft_bench soak 'gallery/*' --campaign-seed 7 --units 200 "
        "--jobs 4\n"
        "  ssbft_bench soak 'gallery/*' --campaign-seed 7 --units 200 "
        "--minimize\n"
        "notes:\n"
        "  field/codec kernels auto-dispatch to SIMD (AVX2) when the CPU\n"
        "  supports it; a -DSSBFT_SIMD=off build pins the scalar reference.\n"
        "  Results are bit-identical on every path — only timings differ.\n";
  return code;
}

int list_command(const std::string& pattern) {
  std::size_t width = 0;
  for (const Experiment& e : experiments()) {
    if (glob_match(pattern, e.name)) width = std::max(width, std::string(e.name).size());
  }
  const auto matched = match_scenarios(pattern);
  for (const ScenarioSpec* s : matched) {
    width = std::max(width, s->name.size());
  }

  bool any = false;
  bool header = false;
  for (const Experiment& e : experiments()) {
    if (!glob_match(pattern, e.name)) continue;
    if (!header) {
      std::cout << "experiments (run with `ssbft_bench run <name>`):\n";
      header = true;
    }
    std::cout << "  " << e.name
              << std::string(width - std::string(e.name).size() + 2, ' ')
              << e.summary << "\n";
    any = true;
  }
  if (!matched.empty()) {
    if (header) std::cout << "\n";
    std::cout << "scenarios (" << matched.size()
              << ", run with `ssbft_bench run <name|glob>`):\n";
    for (const ScenarioSpec* s : matched) {
      std::cout << "  " << s->name
                << std::string(width - s->name.size() + 2, ' ') << s->summary
                << "\n"
                // Audit line: DeliverySpec, network fault axes, corruption
                // schedule and trial defaults, so a grid can be reviewed
                // before spending any compute on it.
                << "      " << scenario_detail(*s) << "\n";
    }
    any = true;
  }
  if (!any) {
    std::cerr << "ssbft_bench: nothing matches '" << pattern << "'\n";
    return 2;
  }
  if (!matched.empty()) {
    std::cout << "\nchaos campaigns: `ssbft_bench soak '<glob>' "
                 "--campaign-seed S --units N` fuzzes the matched "
                 "scenarios' fault space under streaming invariant "
                 "checking (--minimize shrinks a failing plan).\n";
  }
  return 0;
}

int run_command(const std::string& name, const BenchOptions& o) {
  // Resolve the run target before touching --out: a typo'd name must not
  // truncate an existing results file.
  const Experiment* e = find_experiment(name);
  const std::vector<const ScenarioSpec*> matched =
      e == nullptr ? match_scenarios(name)
                   : std::vector<const ScenarioSpec*>{};
  if (e == nullptr && matched.empty()) {
    std::cerr << "ssbft_bench: unknown experiment or scenario '" << name
              << "' (try `ssbft_bench list`)\n";
    return 2;
  }
  if (e != nullptr &&
      (o.shard.active() || !o.checkpoint.empty() || o.resume)) {
    std::cerr << "ssbft_bench: --shard/--checkpoint/--resume apply to "
                 "scenario sweeps (globs), not the experiment tables; "
                 "'" << name << "' is an experiment\n";
    return 2;
  }
  if (o.shard.active() && o.format_set && o.format != ReportFormat::kJsonl) {
    std::cerr << "ssbft_bench: a --shard run always writes an "
                 "ssbft-shard-v1 JSONL report; --format "
              << report_format_name(o.format)
              << " applies to `ssbft_bench merge` instead\n";
    return 2;
  }
  AtomicOutFile file;
  std::ostream* os = open_report_out(o, file, "ssbft_bench");
  if (os == nullptr) return 2;

  if (e != nullptr) {
    Report report(RunMeta{name, o.trials, o.seed, o.jobs}, o.format, *os);
    e->run(o, report);
  } else if (o.shard.active()) {
    run_shard_cells(name, matched, o, *os);
  } else {
    Report report(RunMeta{name, o.trials, o.seed, o.jobs}, o.format, *os);
    run_scenario_cells(name, matched, o, report);
  }
  return commit_report_out(file, "ssbft_bench") ? 0 : 2;
}

int merge_command(int argc, char** argv) {
  BenchOptions o;
  bool commitment_only = false;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take_raw = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ssbft_bench merge: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--format") {
      const std::string fmt_name = take_raw();
      const auto fmt = parse_report_format(fmt_name);
      if (!fmt) {
        std::cerr << "ssbft_bench merge: unknown --format '" << fmt_name
                  << "' (ascii, csv or jsonl)\n";
        return 2;
      }
      o.format = *fmt;
    } else if (arg == "--out") {
      o.out = take_raw();
    } else if (arg == "--commitment-only") {
      commitment_only = true;
    } else if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      std::cerr << "ssbft_bench merge: unknown option '" << arg
                << "' (try --help)\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "ssbft_bench: merge needs at least one ssbft-shard-v1 "
                 "report (from `ssbft_bench run --shard`)\n";
    return 2;
  }
  return merge_shard_reports(paths, o, commitment_only);
}

int soak_command(int argc, char** argv) {
  if (argc < 3 || std::string(argv[2]).compare(0, 2, "--") == 0) {
    std::cerr << "ssbft_bench: soak needs a scenario glob first "
                 "(try `ssbft_bench list`)\n";
    return 2;
  }
  const std::string pattern = argv[2];
  SoakOptions soak;
  // Pull out the soak-specific flags, then hand everything else (--jobs,
  // --out, --trace, --shard, --checkpoint, ...) to the shared parser.
  std::vector<char*> rest;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take_u64 = [&]() -> std::uint64_t {
      if (i + 1 >= argc) {
        std::cerr << "ssbft_bench soak: " << arg << " needs a value\n";
        std::exit(2);
      }
      const std::string v = argv[++i];
      errno = 0;
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos ||
          errno != 0 || end != v.c_str() + v.size()) {
        std::cerr << "ssbft_bench soak: " << arg
                  << " needs a non-negative integer, got '" << v << "'\n";
        std::exit(2);
      }
      return parsed;
    };
    if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (arg == "--campaign-seed") {
      soak.campaign_seed = take_u64();
    } else if (arg == "--units") {
      soak.units = take_u64();
    } else if (arg == "--bound") {
      soak.bound = take_u64();
    } else if (arg == "--minimize") {
      soak.minimize = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const BenchOptions o =
      parse_cli("ssbft_bench soak", static_cast<int>(rest.size()),
                rest.data(), /*first=*/0, /*wrapper_note=*/false);
  if (o.trials != 0 || o.seed != 0) {
    std::cerr << "ssbft_bench soak: --trials/--seed don't apply here — every "
                 "unit is one trial whose seed derives from "
                 "(--campaign-seed, unit index)\n";
    return 2;
  }
  if (o.format_set) {
    std::cerr << "ssbft_bench soak: the campaign report is plain text; "
                 "--format applies to `run` and `merge`\n";
    return 2;
  }
  if (soak.units == 0) {
    std::cerr << "ssbft_bench soak: --units must be >= 1\n";
    return 2;
  }
  // Resolve the glob before run_soak_campaign touches --out.
  const std::vector<const ScenarioSpec*> matched = match_scenarios(pattern);
  if (matched.empty()) {
    if (find_experiment(pattern) != nullptr) {
      std::cerr << "ssbft_bench: soak fuzzes scenario cells; '" << pattern
                << "' is an experiment table (try a glob from "
                   "`ssbft_bench list`)\n";
    } else {
      std::cerr << "ssbft_bench: no scenario matches '" << pattern
                << "' (try `ssbft_bench list`)\n";
    }
    return 2;
  }
  return run_soak_campaign(pattern, matched, o, soak);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  try {
    if (command == "--help" || command == "-h" || command == "help") {
      return usage(std::cout, 0);
    }
    if (command == "list") {
      if (argc > 3) return usage(std::cerr, 2);
      return list_command(argc == 3 ? argv[2] : "*");
    }
    if (command == "run") {
      if (argc < 3) {
        std::cerr << "ssbft_bench: run needs an experiment name or scenario "
                     "glob (try `ssbft_bench list`)\n";
        return 2;
      }
      const BenchOptions o = parse_cli("ssbft_bench run", argc, argv, 3,
                                       /*wrapper_note=*/false);
      return run_command(argv[2], o);
    }
    if (command == "merge") {
      return merge_command(argc, argv);
    }
    if (command == "soak") {
      return soak_command(argc, argv);
    }
  } catch (const contract_error& e) {
    // Unresumable checkpoints, unwritable checkpoints, unreadable trace
    // files: one structured line, nonzero exit, no stack dump.
    std::cerr << "ssbft_bench: error: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "ssbft_bench: unknown command '" << command << "'\n";
  return usage(std::cerr, 2);
}
