// Pluggable delivery engine: the phase of a beat that moves the sent
// messages into inboxes is a DeliveryPolicy, selected per run through
// FaultPlan::delivery.
//
// The default SynchronousDelivery is the paper's network — every message
// that survives the loss lottery arrives in the beat it was sent — and is
// replay-exact with the pre-extraction engine (same net_rng draw
// sequence). The adversarial policies model the *scheduling* power Lewko
// (arXiv:1106.5170, arXiv:1301.3223) identifies as the axis separating BA
// protocols: eclipsing a victim behind a sender allowlist, cutting the
// node set into groups until a heal beat, holding a victim's traffic for
// d beats, and permuting arrival order within a beat.
//
// Contract notes shared by every policy:
//   * Drop sampling (FaultPlan::faulty_drop_prob) and phantom injection
//     apply under every policy — the loss/phantom axes compose with the
//     topology axis. The drop decision is made once per beat
//     (DeliveryBeat::sample_drops), not re-evaluated per message.
//   * Payload handles are only moved or parked, never copied: a policy
//     that defers delivery (TargetedDelayDelivery) carries the pooled
//     handles across beats in its own buffers, so the pool's slot demand
//     stays a deterministic function of the traffic shape and the
//     steady-state beat remains allocation-free (tests/alloc_test.cpp).
//   * Messages addressed to faulty nodes never reach an inbox (their
//     inboxes live inside the adversary); suppressed messages keep their
//     handle in the beat scratch until the engine's end-of-beat reset.
//   * Policies own all cross-beat state. The engine hands each beat's
//     inputs over as one DeliveryBeat view and promises nothing about
//     engine internals beyond it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/fault_plan.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "support/rng.h"

namespace ssbft {

// One beat's delivery inputs, assembled by the engine (all pointers borrow
// engine-owned state for the duration of the call).
struct DeliveryBeat {
  Beat beat = 0;
  // beat < FaultPlan::network_faulty_until: loss and phantoms may occur.
  bool network_faulty = false;
  // Hoisted per-beat drop decision: network_faulty AND drop_prob > 0.
  // Policies consult this flag, never the plan, inside message loops.
  bool sample_drops = false;
  double drop_prob = 0.0;
  std::uint32_t n = 0;
  std::uint32_t channel_count = 0;
  const FaultPlan* faults = nullptr;
  const std::vector<bool>* is_faulty = nullptr;    // size n
  const std::vector<NodeId>* correct_ids = nullptr;
  std::vector<Message>* correct_msgs = nullptr;    // send-phase traffic
  std::vector<Message>* adv_msgs = nullptr;        // adversary traffic
  std::vector<Inbox>* inboxes = nullptr;           // per node id
  Rng* net_rng = nullptr;
  Metrics* metrics = nullptr;
  BytesPool* phantom_pool = nullptr;
  // Engine-owned per-target count scratch (capacity persists across
  // beats), used by the lossy-network reserve pass.
  std::vector<std::uint32_t>* addressed_scratch = nullptr;
};

class DeliveryPolicy {
 public:
  virtual ~DeliveryPolicy() = default;

  // Called once, after the engine knows the world shape; policies size
  // their cross-beat state (victim masks, pending rings) here.
  virtual void bind(std::uint32_t n, std::uint32_t channel_count) {
    (void)n;
    (void)channel_count;
  }

  // Runs the delivery phase of one beat: moves (or parks) every message
  // handle out of the beat scratch, fills inboxes, injects phantoms.
  virtual void deliver_beat(DeliveryBeat& b) = 0;
};

// Policy for a validated spec. Never returns null.
std::unique_ptr<DeliveryPolicy> make_delivery_policy(const DeliverySpec& spec);

// Short registry/blurb name for a kind ("synchronous", "eclipse", ...).
const char* delivery_kind_name(DeliveryKind k);

}  // namespace ssbft
