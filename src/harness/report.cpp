#include "harness/report.h"

#include <cstdio>
#include <filesystem>

namespace ssbft {

AtomicOutFile::~AtomicOutFile() {
  if (tmp_path_.empty()) return;
  // Opened but never committed: drop the temporary, keep whatever the
  // target held before.
  out_.close();
  std::error_code ec;
  std::filesystem::remove(tmp_path_, ec);
}

bool AtomicOutFile::open(const std::string& path) {
  final_path_ = path;
  std::error_code ec;
  const auto st = std::filesystem::status(path, ec);
  const bool regular_or_absent =
      !std::filesystem::exists(st) || std::filesystem::is_regular_file(st);
  if (regular_or_absent) {
    tmp_path_ = path + ".tmp";
    out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
    if (!out_.is_open()) tmp_path_.clear();
  } else {
    // /dev/null, pipes, ttys: rename is impossible and atomicity
    // meaningless — write straight through.
    out_.open(path, std::ios::binary | std::ios::trunc);
  }
  return out_.is_open();
}

bool AtomicOutFile::commit(std::string* error) {
  if (final_path_.empty()) return true;  // open() was never called
  out_.flush();
  const bool wrote_ok = static_cast<bool>(out_);
  out_.close();
  if (tmp_path_.empty()) {
    if (!wrote_ok && error) *error = "write to '" + final_path_ + "' failed";
    return wrote_ok;
  }
  const std::string tmp = tmp_path_;
  tmp_path_.clear();  // the destructor must not remove a published file
  if (!wrote_ok) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    if (error) *error = "write to '" + tmp + "' failed";
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, final_path_, ec);
  if (ec) {
    if (error) {
      *error = "rename '" + tmp + "' -> '" + final_path_ + "': " + ec.message();
    }
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<ReportFormat> parse_report_format(const std::string& s) {
  if (s == "ascii") return ReportFormat::kAscii;
  if (s == "csv") return ReportFormat::kCsv;
  if (s == "jsonl") return ReportFormat::kJsonl;
  return std::nullopt;
}

const char* report_format_name(ReportFormat f) {
  switch (f) {
    case ReportFormat::kAscii: return "ascii";
    case ReportFormat::kCsv: return "csv";
    case ReportFormat::kJsonl: return "jsonl";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

Report::Report(RunMeta meta, ReportFormat format, std::ostream& out)
    : meta_(std::move(meta)), format_(format), out_(out) {}

void Report::text(const std::string& s) {
  if (format_ == ReportFormat::kAscii) out_ << s;
}

void Report::table(const std::string& id, const AsciiTable& t) {
  switch (format_) {
    case ReportFormat::kAscii:
      t.print(out_);
      return;
    case ReportFormat::kCsv: {
      out_ << "experiment,table,seed,trials,jobs";
      for (const auto& h : t.headers()) out_ << ',' << csv_escape(h);
      out_ << '\n';
      const std::string prefix = csv_escape(meta_.experiment) + ',' +
                                 csv_escape(id) + ',' +
                                 std::to_string(meta_.seed) + ',' +
                                 std::to_string(meta_.trials) + ',' +
                                 std::to_string(meta_.jobs);
      for (const auto& row : t.row_data()) {
        out_ << prefix;
        for (const auto& cell : row) out_ << ',' << csv_escape(cell);
        out_ << '\n';
      }
      return;
    }
    case ReportFormat::kJsonl: {
      const std::string prefix =
          "{\"experiment\":\"" + json_escape(meta_.experiment) +
          "\",\"table\":\"" + json_escape(id) +
          "\",\"seed\":" + std::to_string(meta_.seed) +
          ",\"trials\":" + std::to_string(meta_.trials) +
          ",\"jobs\":" + std::to_string(meta_.jobs) + ",\"columns\":{";
      const auto& headers = t.headers();
      for (const auto& row : t.row_data()) {
        out_ << prefix;
        for (std::size_t c = 0; c < row.size(); ++c) {
          if (c != 0) out_ << ',';
          out_ << '"' << json_escape(headers[c]) << "\":\""
               << json_escape(row[c]) << '"';
        }
        out_ << "}}\n";
      }
      return;
    }
  }
}

void Report::csv_trailer(const AsciiTable& t) {
  if (format_ != ReportFormat::kAscii) return;
  out_ << "\nCSV follows:\n";
  t.print_csv(out_);
}

}  // namespace ssbft
