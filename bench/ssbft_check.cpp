// ssbft_check: offline trace verifier and commitment tool.
//
// Consumes JSONL execution traces produced by `--trace DIR` runs (one file
// per (cell, trial)), merges them into canonical per-run streams, verifies
// the paper's invariants (harness/checker.h) and prints one line per run
// plus an aggregate SHA-256 commitment over all of them.
//
// Exit codes: 0 = all runs pass (censored never-converged runs pass unless
// --require-convergence), 1 = at least one invariant violation, 2 = decode
// error (malformed or forged trace input).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/checker.h"

namespace {

void usage() {
  std::printf(
      "usage: ssbft_check [options] <trace.jsonl | dir>...\n"
      "\n"
      "Verifies JSONL execution traces (written by benches run with\n"
      "--trace DIR) and prints a SHA-256 commitment per merged run plus an\n"
      "aggregate over all of them. Directories contribute their *.jsonl\n"
      "files (non-recursive).\n"
      "\n"
      "options:\n"
      "  --bound N             require the final convergence to start within\n"
      "                        N beats of the last recorded corruption\n"
      "                        (of beat 0 when none)\n"
      "  --require-convergence treat a never-converged (censored) trace as a\n"
      "                        failure instead of a pass\n"
      "  --coin-agreement P    minimum post-convergence all-equal rate for\n"
      "                        coin groups (default 0.5)\n"
      "  --window W            override the header's confirmation window\n"
      "  --commitment-only     print only the aggregate commitment hex\n"
      "\n"
      "exit codes: 0 ok, 1 invariant violation, 2 decode error\n");
}

}  // namespace

int main(int argc, char** argv) {
  ssbft::CheckOptions opts;
  bool commitment_only = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto take = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ssbft_check: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--bound") {
      opts.bound = std::strtoull(take("--bound"), nullptr, 10);
    } else if (arg == "--require-convergence") {
      opts.require_convergence = true;
    } else if (arg == "--coin-agreement") {
      opts.coin_agreement = std::strtod(take("--coin-agreement"), nullptr);
    } else if (arg == "--window") {
      opts.confirm_window = std::strtoull(take("--window"), nullptr, 10);
    } else if (arg == "--commitment-only") {
      commitment_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ssbft_check: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    usage();
    return 2;
  }

  // Expand directories, then sort: file-system enumeration order must not
  // influence anything downstream.
  std::error_code ec;
  std::vector<std::string> paths;
  for (const std::string& in : inputs) {
    if (std::filesystem::is_directory(in, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(in, ec)) {
        if (!entry.is_regular_file()) continue;
        if (entry.path().extension() == ".jsonl") {
          paths.push_back(entry.path().string());
        }
      }
    } else {
      paths.push_back(in);
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "ssbft_check: no .jsonl inputs found\n");
    return 2;
  }

  std::vector<ssbft::ParsedTrace> parsed;
  for (const std::string& path : paths) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "ssbft_check: cannot open %s\n", path.c_str());
      return 2;
    }
    ssbft::ParseResult r = ssbft::parse_trace(f);
    if (!r.ok) {
      std::fprintf(stderr, "ssbft_check: %s:%zu: %s\n", path.c_str(),
                   r.error_line, r.error.c_str());
      return 2;
    }
    parsed.push_back(std::move(r.trace));
  }

  ssbft::MergeResult merged = ssbft::merge_traces(std::move(parsed));
  if (!merged.ok) {
    std::fprintf(stderr, "ssbft_check: %s\n", merged.error.c_str());
    return 2;
  }

  bool all_ok = true;
  std::vector<std::string> commitments;
  for (const ssbft::ParsedTrace& trace : merged.traces) {
    const std::string commit = ssbft::trace_commitment(trace);
    commitments.push_back(commit);
    if (commitment_only) continue;
    const ssbft::CheckResult res = ssbft::check_trace(trace, opts);
    all_ok = all_ok && res.ok;
    const char* status = res.ok ? (res.censored ? "censored" : "ok") : "FAIL";
    std::printf(
        "%-8s %-28s trial=%llu seed=%llu beats=%llu synced_at=%lld "
        "coin=%.3f/%llu commit=%.12s\n",
        status,
        trace.header.scenario.empty() ? "(ad-hoc)"
                                      : trace.header.scenario.c_str(),
        static_cast<unsigned long long>(trace.header.trial),
        static_cast<unsigned long long>(trace.header.seed),
        static_cast<unsigned long long>(res.beats),
        res.converged ? static_cast<long long>(res.synced_at) : -1ll,
        res.coin_agreement_rate,
        static_cast<unsigned long long>(res.coin_groups), commit.c_str());
    for (const std::string& v : res.violations) {
      std::printf("         violation: %s\n", v.c_str());
    }
  }

  const std::string aggregate = ssbft::aggregate_commitment(commitments);
  if (commitment_only) {
    std::printf("%s\n", aggregate.c_str());
  } else {
    std::printf("aggregate %s\n", aggregate.c_str());
  }
  return all_ok ? 0 : 1;
}
