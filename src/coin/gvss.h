// Graded verifiable secret sharing building blocks (Observation 2.1).
//
// The Feldman-Micali common coin rests on a GVSS with three logical phases:
// share, decide (grade), recover. This header provides the per-dealing
// machinery, decoupled from message transport so it is directly unit- and
// property-testable:
//
//   * dealing: symmetric bivariate sampling + row extraction;
//   * row validation of untrusted dealer payloads;
//   * cross-check counting and the happy predicate;
//   * grades from vote counts (>= n-f -> 2, >= n-2f -> 1, else 0);
//   * error-correcting recovery of the dealt secret (fast path: clean
//     interpolation; slow path: Berlekamp-Welch).
//
// Key facts used by the coin (proved in the VSS literature, exercised by
// tests/gvss_test.cpp):
//   - a correct dealer's dealing gets grade 2 at every correct node, and
//     its secret is recovered by everyone (n >= 3f+1 gives the RS decoder
//     budget, see reed_solomon.h);
//   - if any correct node grades a dealing 2, every correct node grades it
//     >= 1 (n-f votes minus f Byzantine still clears n-2f);
//   - f rows reveal nothing about the secret before the recover phase
//     (degree-f secrecy) — the unpredictability property.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "field/bivariate.h"
#include "field/fp.h"
#include "field/poly.h"
#include "field/reed_solomon.h"
#include "support/rng.h"
#include "support/types.h"

namespace ssbft {

// Field point assigned to node id (must be nonzero and distinct).
inline std::uint64_t node_point(NodeId id) { return std::uint64_t{id} + 1; }

// Grades per Definition/use in Observation 2.1.
enum class GvssGrade : std::uint8_t { kNone = 0, kLow = 1, kHigh = 2 };

// Row-validity rule for untrusted dealer payloads, over raw storage: true
// iff exactly f+1 coefficients, all canonical. The single source of truth
// — validate_row and the coin's non-allocating decode path both call it.
bool validate_row_raw(const PrimeField& F, std::uint32_t f,
                      const std::uint64_t* coeffs, std::size_t count);

// Validates an untrusted row polynomial payload: every coefficient
// canonical and degree <= f. Returns nullopt on any violation.
std::optional<Poly> validate_row(const PrimeField& F, std::uint32_t f,
                                 const std::vector<std::uint64_t>& coeffs);

// Happy predicate: the node holds a valid row and at least n-f nodes'
// cross values matched it (matches includes the node itself).
bool gvss_happy(std::uint32_t n, std::uint32_t f, bool row_valid,
                std::uint32_t cross_matches);

// Grade from the number of distinct nodes that voted happy.
GvssGrade gvss_grade(std::uint32_t n, std::uint32_t f, std::uint32_t votes);

// Precomputed Lagrange tables for the recovery fast path over the fixed
// node points 1..n, cached per (field, n, f) — typically one per coin
// pipeline, shared by its staggered instances and reused beat after beat.
//
// The tables carry, for the canonical prefix subset {node_point(0..f)} =
// {1..f+1}, the basis coefficients L_i(x) of the degree-f interpolant at
// every other node point and at 0. When the first f+1 shares handed to
// gvss_recover are exactly that prefix (the steady state: correct low-id
// senders are present every beat), candidate evaluation is a table/share
// dot product — no inversion, no allocation. Other subsets fall back to a
// generic batch-inverted path.
class GvssRecoverTable {
 public:
  GvssRecoverTable() = default;
  GvssRecoverTable(const PrimeField& F, std::uint32_t n, std::uint32_t f) {
    init(F, n, f);
  }

  // Builds (or rebuilds) the tables. One batch inversion, O(n * f) space.
  void init(const PrimeField& F, std::uint32_t n, std::uint32_t f);

  bool ready() const { return n_ != 0; }
  std::uint32_t n() const { return n_; }
  std::uint32_t f() const { return f_; }
  std::uint64_t modulus() const { return modulus_; }

  // L_i(0) for i <= f (f+1 entries).
  const std::uint64_t* zero_row() const { return zero_row_.data(); }
  // L_i(point) for point in [f+2, n]: row (point - f - 2), f+1 entries.
  const std::uint64_t* target_row(std::uint64_t point) const {
    return target_rows_.data() +
           static_cast<std::size_t>(point - f_ - 2) * (f_ + 1);
  }
  // Staging buffer (f+1 entries) for the fast path: shares arrive as AoS
  // RsPoints, the dot kernel wants flat values. gvss_recover fills it per
  // call; sized at init so the steady state allocates nothing.
  std::uint64_t* ys_scratch() const { return ys_scratch_.data(); }

 private:
  std::uint32_t n_ = 0;
  std::uint32_t f_ = 0;
  std::uint64_t modulus_ = 0;
  std::vector<std::uint64_t> zero_row_;
  std::vector<std::uint64_t> target_rows_;  // (n - f - 1) rows x (f+1)
  mutable std::vector<std::uint64_t> ys_scratch_;  // f+1
};

// Recovers the dealt secret g(0) from shares g(node_point(j)) where
// g(x) = F(x, 0) has degree <= f and at most `f` of the points lie. Fast
// path: if the first f+1 points interpolate a polynomial consistent with
// every point, that is the unique codeword. Otherwise full Berlekamp-Welch.
// Returns nullopt when decoding is impossible (an inevitably faulty
// dealing); callers map that to the canonical secret 0 so all correct nodes
// that fail, fail identically.
//
// When `table` is provided (ready, same field/f) and the shares' first f+1
// x's are the canonical prefix 1..f+1, the fast path runs entirely out of
// the precomputed tables and allocates nothing. All paths compute the same
// field elements, so results are bit-identical with or without a table.
std::optional<std::uint64_t> gvss_recover(const PrimeField& F, std::uint32_t f,
                                          const std::vector<RsPoint>& shares,
                                          const GvssRecoverTable* table = nullptr);

// One dealer's side of the share phase.
class GvssDealing {
 public:
  // Samples a dealing of a uniform secret (degree f in each variable).
  static GvssDealing sample(const PrimeField& F, std::uint32_t f, Rng& rng);

  // Re-deals in place with the same draw sequence as sample(), reusing the
  // coefficient storage (no allocation once warm).
  void resample(const PrimeField& F, std::uint32_t f, Rng& rng);

  // Row polynomial for node `to` (degree <= f, f+1 coefficients).
  std::vector<std::uint64_t> row_for(const PrimeField& F, NodeId to) const;

  // Scratch variant: writes the f+1 row coefficients into caller storage.
  void row_into(const PrimeField& F, NodeId to, std::uint64_t* out) const;

  std::uint64_t secret() const { return poly_.secret(); }
  const SymmetricBivariate& bivariate() const { return poly_; }

 private:
  explicit GvssDealing(SymmetricBivariate p) : poly_(std::move(p)) {}
  SymmetricBivariate poly_;
};

}  // namespace ssbft
