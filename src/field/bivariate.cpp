#include "field/bivariate.h"

#include "support/check.h"

namespace ssbft {

SymmetricBivariate SymmetricBivariate::sample(const PrimeField& F, int deg,
                                              std::uint64_t secret, Rng& rng) {
  SymmetricBivariate p;
  p.resample(F, deg, secret, rng);
  return p;
}

void SymmetricBivariate::resample(const PrimeField& F, int deg,
                                  std::uint64_t secret, Rng& rng) {
  SSBFT_REQUIRE(deg >= 0 && F.valid(secret));
  const std::size_t w = static_cast<std::size_t>(deg) + 1;
  deg_ = deg;
  c_.assign(w * w, 0);
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = i; j < w; ++j) {
      const std::uint64_t v = (i == 0 && j == 0) ? secret : F.uniform(rng);
      c_[i * w + j] = v;
      c_[j * w + i] = v;
    }
  }
}

std::uint64_t SymmetricBivariate::eval(const PrimeField& F, std::uint64_t x,
                                       std::uint64_t y) const {
  return row(F, x).eval(F, y);
}

Poly SymmetricBivariate::row(const PrimeField& F, std::uint64_t x0) const {
  const std::size_t w = static_cast<std::size_t>(deg_) + 1;
  std::vector<std::uint64_t> out(w, 0);
  row_into(F, x0, out.data());
  return Poly(std::move(out));
}

void SymmetricBivariate::row_into(const PrimeField& F, std::uint64_t x0,
                                  std::uint64_t* out) const {
  SSBFT_REQUIRE_MSG(deg_ >= 0, "row of an empty bivariate");
  const std::size_t w = static_cast<std::size_t>(deg_) + 1;
  // f_{x0}(y) = sum_j (sum_i c_ij x0^i) y^j — accumulate per column j, one
  // coefficient row at a time (the batch kernel runs the column sweep).
  for (std::size_t j = 0; j < w; ++j) out[j] = 0;
  std::uint64_t xp = 1;
  for (std::size_t i = 0; i < w; ++i) {
    F.addmul_vec(out, c_.data() + i * w, xp, w);
    xp = F.mul(xp, x0);
  }
}

}  // namespace ssbft
