// Adversary gallery: the same 2-Clock system under every attack strategy
// this library implements, showing convergence holding at f < n/3
// regardless of the adversary's sophistication — including one that reads
// the coin (rushing) before choosing its votes.
//
// The four worlds are registered scenario cells (`gallery/*` in the
// harness registry — `ssbft_bench run 'gallery/*'` runs the same grid),
// and all trials of all four adversaries go through one sweep queue.
//
//   $ ./byzantine_gallery [trials]
#include <iostream>
#include <string>

#include "harness/scenario.h"
#include "harness/sweep.h"
#include "harness/table.h"

using namespace ssbft;

int main(int argc, char** argv) {
  const std::uint64_t trials = argc > 1 ? std::stoull(argv[1]) : 40;
  const struct {
    const char* scenario;
    const char* label;
  } rows[] = {
      {"gallery/silent", "silent (crash)"},
      {"gallery/noise", "random noise"},
      {"gallery/split", "split-world equivocation"},
      {"gallery/anti-coin", "anti-coin rusher (reads the coin first)"},
  };

  std::vector<SweepCell> cells;
  for (const auto& row : rows) {
    const ScenarioSpec* spec = find_scenario(row.scenario);
    SSBFT_CHECK(spec != nullptr);
    RunnerConfig rc = scenario_runner_config(*spec);
    rc.trials = trials;
    cells.push_back(SweepCell{spec->name, build_scenario(*spec), rc});
  }

  std::cout << "ss-Byz-2-Clock, n=7, f=2, " << trials
            << " trials per adversary, randomized genesis\n\n";
  const std::vector<TrialStats> stats = run_sweep(cells, SweepOptions{});
  AsciiTable t({"adversary", "converged", "mean beats", "median", "p90"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const TrialStats& s = stats[i];
    t.add_row({rows[i].label,
               std::to_string(s.converged) + "/" + std::to_string(trials),
               fmt_double(s.mean, 1), fmt_double(s.median, 1),
               fmt_double(s.p90, 1)});
  }
  t.print(std::cout);
  std::cout
      << "\nnote the anti-coin rusher: it sees each beat's coin before\n"
         "sending (the model allows rushing), yet cannot slow convergence\n"
         "much — the gamble's value was fixed one beat earlier (Remark 3.1/"
         "Lemma 4).\n";
  return 0;
}
