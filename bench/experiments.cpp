#include "experiments.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "coin/coin_interface.h"
#include "coin/fm_coin.h"
#include "coin/oracle_coin.h"
#include "harness/chaos.h"
#include "harness/checker.h"
#include "harness/live_check.h"
#include "sim/delivery.h"
#include "support/check.h"

namespace ssbft::bench {

// ---------------------------------------------------------------------------
// CLI plumbing.

namespace {

void print_usage(const char* prog, std::ostream& os, bool wrapper_note) {
  os << "usage: " << prog
     << " [--trials N] [--jobs J] [--seed S]\n"
        "       [--format ascii|csv|jsonl] [--out FILE] [--progress] "
        "[--trace DIR]\n"
        "       [--shard I/K] [--checkpoint FILE [--checkpoint-every N] "
        "[--resume]]\n"
        "  --trials N    override every cell's trial count "
        "(0 = keep per-cell defaults)\n"
        "  --jobs J      worker threads for the sweep scheduler "
        "(default/0: one per hardware thread; 1 = serial; "
        "clamped to 4x hardware threads)\n"
        "  --seed S      offset added to every cell's base seed "
        "(fresh independent replication; 0 = defaults)\n"
        "  --format F    ascii (default, the classic tables), csv "
        "(RFC-4180 rows), or jsonl (one object per row)\n"
        "  --out FILE    write the report to FILE instead of stdout\n"
        "  --progress    stderr progress line (units done / total)\n"
        "  --trace DIR   write one JSONL execution trace per (cell, trial) "
        "into DIR (the `ssbft_check` tool verifies them and prints their "
        "SHA-256 commitment)\n"
        "  --shard I/K   run only units u with u % K == I of a scenario "
        "sweep and emit an ssbft-shard-v1 JSONL report; merge the K "
        "reports with `ssbft_bench merge` (scenario globs only)\n"
        "  --checkpoint FILE      atomically record completed units every "
        "--checkpoint-every N units (default 16); a killed sweep "
        "continues with --resume, bit-identical to an uninterrupted run "
        "(scenario globs only)\n"
        "results are bit-identical across --jobs values, traced or not, "
        "sharded or resumed or neither.\n";
  if (wrapper_note) {
    os << "this binary is a thin wrapper over the `ssbft_bench` driver: "
          "`ssbft_bench list` names every experiment and scenario, "
          "`ssbft_bench run <name|glob>` runs any of them.\n";
  }
}

}  // namespace

BenchOptions parse_cli(const char* prog, int argc, char** argv, int first,
                       bool wrapper_note) {
  BenchOptions o;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(prog, std::cout, wrapper_note);
      std::exit(0);
    }
    const auto take_raw = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << prog << ": " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto take_value = [&](std::uint64_t& slot) {
      const char* text = take_raw();
      // Strict digits-only: strtoull alone would skip leading whitespace
      // and wrap negatives like " -3" to ~2^64.
      bool digits_only = *text != '\0';
      for (const char* p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') {
          digits_only = false;
          break;
        }
      }
      errno = 0;
      const unsigned long long v = std::strtoull(text, nullptr, 10);
      if (!digits_only || errno == ERANGE) {
        std::cerr << prog << ": " << arg
                  << " needs a non-negative integer, got '" << text << "'\n";
        std::exit(2);
      }
      slot = v;
    };
    if (arg == "--trials") {
      take_value(o.trials);
    } else if (arg == "--jobs") {
      take_value(o.jobs);
    } else if (arg == "--seed") {
      take_value(o.seed);
    } else if (arg == "--format") {
      const std::string name = take_raw();
      const auto fmt = parse_report_format(name);
      if (!fmt) {
        std::cerr << prog << ": unknown --format '" << name
                  << "' (ascii, csv or jsonl)\n";
        std::exit(2);
      }
      o.format = *fmt;
      o.format_set = true;
    } else if (arg == "--out") {
      o.out = take_raw();
    } else if (arg == "--progress") {
      o.progress = true;
    } else if (arg == "--trace") {
      o.trace = take_raw();
    } else if (arg == "--shard") {
      const std::string spec = take_raw();
      const auto parsed = parse_shard_spec(spec);
      if (!parsed) {
        std::cerr << prog << ": --shard needs I/K with I < K, got '" << spec
                  << "'\n";
        std::exit(2);
      }
      o.shard = *parsed;
    } else if (arg == "--checkpoint") {
      o.checkpoint = take_raw();
    } else if (arg == "--checkpoint-every") {
      take_value(o.checkpoint_every);
      if (o.checkpoint_every == 0) {
        std::cerr << prog << ": --checkpoint-every needs N >= 1\n";
        std::exit(2);
      }
    } else if (arg == "--resume") {
      o.resume = true;
    } else {
      std::cerr << prog << ": unknown option '" << arg
                << "' (try --help)\n";
      std::exit(2);
    }
  }
  if (o.resume && o.checkpoint.empty()) {
    std::cerr << prog << ": --resume needs --checkpoint FILE\n";
    std::exit(2);
  }
  return o;
}

std::uint64_t trials_or(const BenchOptions& o, std::uint64_t def) {
  return o.trials == 0 ? def : o.trials;
}

std::uint64_t shifted_seed(const BenchOptions& o, std::uint64_t def) {
  return def + o.seed;
}

RunnerConfig cell_config(const BenchOptions& o, const ScenarioSpec& spec) {
  RunnerConfig rc = scenario_runner_config(spec);
  rc.trials = trials_or(o, spec.trials);
  rc.base_seed = shifted_seed(o, spec.base_seed);
  rc.jobs = o.jobs;
  return rc;
}

SweepCell registry_cell(const BenchOptions& o, const std::string& name) {
  const ScenarioSpec* spec = find_scenario(name);
  SSBFT_CHECK_MSG(spec != nullptr,
                  "experiment references unregistered scenario " << name);
  return SweepCell{name, build_scenario(*spec), cell_config(o, *spec)};
}

std::string stat_cell(const TrialStats& s) {
  if (s.converged == 0) return "none converged";
  return fmt_double(s.mean, 1) + " (p90 " + fmt_double(s.p90, 0) + ")";
}

// "converged/trials" cell, reflecting any --trials override.
std::string converged_cell(const TrialStats& s) {
  return std::to_string(s.converged) + "/" + std::to_string(s.trials);
}

namespace {

SweepOptions sweep_options(const BenchOptions& o) {
  SweepOptions so;
  so.jobs = o.jobs;
  so.progress = o.progress;
  so.trace_dir = o.trace;
  return so;
}

// Registered spec backing a sweep cell. Experiments only build cells from
// registry names, so absence is a programming error, not user input.
const ScenarioSpec& spec_of(const SweepCell& cell) {
  const ScenarioSpec* spec = find_scenario(cell.name);
  SSBFT_CHECK_MSG(spec != nullptr, "cell " << cell.name << " not registered");
  return *spec;
}

// ---------------------------------------------------------------------------
// Table 1 reproduction — the paper's evaluation artifact.
//
// Paper's claim (synchronous-model rows):
//   [10]  probabilistic  O(2^(2(n-f)))  f < n/3
//   [15]  deterministic  O(f)           f < n/4
//   [7]   deterministic  O(f)           f < n/3
//   this  probabilistic  O(1)           f < n/3
//
// We measure expected convergence beats empirically across an (n, f) sweep
// for all four families (k = 64, skew/split adversaries, genesis-random
// state) and print the measured growth next to the theoretical class. The
// semi-synchronous rows of Table 1 are a different model and out of scope
// (DESIGN.md substitution 2).

void run_table1(const BenchOptions& o, Report& r) {
  r.text("=== Table 1 (PODC'08): measured convergence, synchronous "
         "model, k = 64 ===\n\n");

  const std::uint32_t ns[] = {4, 7, 10, 13};
  const std::uint32_t fm_ns[] = {4, 7};
  std::vector<SweepCell> cells;
  for (std::uint32_t n : ns) {
    for (const char* fam : {"dw", "queen", "king", "sync"}) {
      cells.push_back(
          registry_cell(o, "table1/" + std::string(fam) + "/n" +
                               std::to_string(n)));
    }
  }
  for (std::uint32_t n : fm_ns) {
    cells.push_back(registry_cell(o, "table1/sync-fm/n" + std::to_string(n)));
  }
  const std::vector<TrialStats> stats = run_sweep(cells, sweep_options(o));

  // "det. bound" = the deterministic worst-case convergence guarantee
  // (pipeline depth + 2 for the BA clocks — grows linearly in f, the O(f)
  // column of Table 1; "-" for the randomized algorithms). Measured means
  // sit far below it because random garbage tends to collapse onto the
  // protocols' default values; the bound is what an adversarial initial
  // state can force.
  AsciiTable table({"algorithm", "paper bound", "resiliency", "n", "f",
                    "mean beats", "p90", "det. bound", "converged"});
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint32_t n = ns[i];
    const ScenarioSpec& dw_spec = spec_of(cells[i * 4]);
    const ScenarioSpec& queen_spec = spec_of(cells[i * 4 + 1]);
    const ScenarioSpec& king_spec = spec_of(cells[i * 4 + 2]);
    {
      // [10] Dolev-Welch-style randomized: exponential. Budget-capped; the
      // larger sizes are expected to blow through the cap — that *is* the
      // result. (Split attack on its single clock channel.)
      const TrialStats& s = stats[i * 4];
      const std::uint64_t cap = dw_spec.max_beats;
      table.add_row({"Dolev-Welch [10]", "O(2^(2(n-f)))", "f < n/3",
                     std::to_string(n), std::to_string(dw_spec.world.f),
                     s.converged ? fmt_double(s.mean, 0)
                                 : ">" + std::to_string(cap),
                     s.converged ? fmt_double(s.p90, 0) : "-", "-",
                     converged_cell(s)});
    }
    {
      // [15] pipelined phase-queen: deterministic O(f), needs f < n/4 —
      // run at its own legal configuration (same n, f' = floor((n-1)/4)).
      const TrialStats& s = stats[i * 4 + 1];
      const std::uint32_t fq = queen_spec.world.f;
      const int bound = 2 + 2 * (static_cast<int>(fq) + 1) + 2 + 2;
      table.add_row({"pipelined queen [15]", "O(f)", "f < n/4",
                     std::to_string(n), std::to_string(fq), stat_cell(s),
                     fmt_double(s.p90, 0), std::to_string(bound),
                     converged_cell(s)});
    }
    {
      // [7] pipelined TC+phase-king: deterministic O(f), f < n/3.
      const TrialStats& s = stats[i * 4 + 2];
      const std::uint32_t fk = king_spec.world.f;
      const int bound = 2 + 3 * (static_cast<int>(fk) + 1) + 2 + 2;
      table.add_row({"pipelined king [7]", "O(f)", "f < n/3",
                     std::to_string(n), std::to_string(fk), stat_cell(s),
                     fmt_double(s.p90, 0), std::to_string(bound),
                     converged_cell(s)});
    }
    {
      // This paper: ss-Byz-Clock-Sync, expected O(1).
      const TrialStats& s = stats[i * 4 + 3];
      table.add_row({"ss-Byz-Clock-Sync", "O(1) expected", "f < n/3",
                     std::to_string(n), std::to_string(dw_spec.world.f),
                     stat_cell(s), fmt_double(s.p90, 0), "-",
                     converged_cell(s)});
    }
  }

  r.table("main", table);
  r.text("\nsemi-synchronous rows of Table 1 ([10] row 2, [5,6]): "
         "not applicable (bounded-delay model; see DESIGN.md)\n");

  // Full-stack spot check: the paper's algorithm on the message-level FM
  // coin (n = 4 and 7), to show the O(1) shape is not an oracle artifact.
  r.text("\n--- ss-Byz-Clock-Sync on the full GVSS coin ---\n");
  AsciiTable fm_table(
      {"n", "f", "adversary", "mean beats", "p90", "converged"});
  for (std::size_t j = 0; j < 2; ++j) {
    const ScenarioSpec& spec = spec_of(cells[16 + j]);
    const TrialStats& s = stats[16 + j];
    fm_table.add_row({std::to_string(spec.world.n),
                      std::to_string(spec.world.f), "skew",
                      fmt_double(s.mean, 1), fmt_double(s.p90, 0),
                      converged_cell(s)});
  }
  r.table("fm", fm_table);
  r.csv_trailer(table);
}

// ---------------------------------------------------------------------------
// Resiliency-boundary experiment (Table 1's resiliency column): the
// f < n/4 vs f < n/3 divide. For each family we hold n = 13 and sweep the
// *actual* number of Byzantine nodes across the theoretical boundaries,
// keeping each protocol's assumed bound at its legal maximum.

void run_resiliency(const BenchOptions& o, Report& r) {
  const std::uint32_t n = 13;
  {
    std::ostringstream os;
    os << "=== Resiliency boundaries at n = " << n << " (skew adversary, "
       << trials_or(o, 10) << " trials/cell) ===\n"
       << "floor((n-1)/4) = 3, floor((n-1)/3) = 4, n/3 ceil = 5\n\n";
    r.text(os.str());
  }

  const std::uint32_t actuals[] = {0, 2, 3, 4, 5};
  std::vector<SweepCell> cells;
  for (std::uint32_t a : actuals) {
    for (const char* fam : {"queen", "king", "sync"}) {
      cells.push_back(registry_cell(o, "resiliency/" + std::string(fam) +
                                           "/a" + std::to_string(a)));
    }
  }
  const std::vector<TrialStats> stats = run_sweep(cells, sweep_options(o));

  AsciiTable t({"actual faulty", "queen [15] (f<n/4)", "king [7] (f<n/3)",
                "ss-Byz-Clock-Sync (f<n/3)"});
  for (std::size_t i = 0; i < std::size(actuals); ++i) {
    t.add_row({std::to_string(actuals[i]),
               fmt_double(stats[i * 3].convergence_rate(), 2),
               fmt_double(stats[i * 3 + 1].convergence_rate(), 2),
               fmt_double(stats[i * 3 + 2].convergence_rate(), 2)});
  }

  r.table("main", t);
  r.text("\nexpected shape: all columns 1.00 up to their bound; the "
         "queen column may degrade beyond f = 3; every column "
         "collapses at f = 5 > n/3 (no protocol can survive — the "
         "f < n/3 bound is optimal, which is the paper's resiliency "
         "claim).\n");
  r.csv_trailer(t);
}

// ---------------------------------------------------------------------------
// k-scaling experiment (Section 5): ss-Byz-Clock-Sync's constant overhead
// vs the cascade construction's growth with k.

void run_kclock_scaling(const BenchOptions& o, Report& r) {
  r.text("=== k-Clock scaling: Figure-4 algorithm vs Section-5 "
         "cascade (n = 4, f = 1, noise adversary) ===\n\n");

  std::vector<SweepCell> cells;
  std::vector<ClockValue> ks;
  for (std::uint32_t levels = 2; levels <= 8; levels += 2) {
    const ClockValue k = ClockValue{1} << levels;
    ks.push_back(k);
    cells.push_back(registry_cell(o, "kclock/sync/k" + std::to_string(k)));
    cells.push_back(registry_cell(o, "kclock/cascade/k" + std::to_string(k)));
  }
  const std::vector<TrialStats> stats = run_sweep(cells, sweep_options(o));

  AsciiTable t({"k", "algorithm", "mean beats", "p90", "converged",
                "msgs/beat"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const TrialStats& sync_stats = stats[i * 2];
    const TrialStats& casc_stats = stats[i * 2 + 1];
    t.add_row({std::to_string(ks[i]), "ss-Byz-Clock-Sync",
               fmt_double(sync_stats.mean, 1), fmt_double(sync_stats.p90, 0),
               converged_cell(sync_stats),
               fmt_double(sync_stats.mean_msgs_per_beat, 1)});
    t.add_row({std::to_string(ks[i]), "cascade (Sec. 5)",
               casc_stats.converged ? fmt_double(casc_stats.mean, 1)
                                    : "none converged",
               fmt_double(casc_stats.p90, 0), converged_cell(casc_stats),
               fmt_double(casc_stats.mean_msgs_per_beat, 1)});
  }
  r.table("main", t);
  r.text("\nexpected shape: ss-Byz-Clock-Sync roughly flat in k; "
         "cascade convergence grows with k (level i steps once per "
         "2^i beats) and its traffic grows ~ log k.\n");
  r.csv_trailer(t);
}

// ---------------------------------------------------------------------------
// Coin-leverage experiment (Section 6.1): how much of the paper's result
// is "the coin"? Four rungs of the ladder under the same adversaries and
// (n, f) grid, plus the adaptive quorum splitter against the retrofit and
// the full algorithm.

std::string leverage_cell(const TrialStats& s, std::uint64_t cap) {
  if (s.converged == 0) return ">" + std::to_string(cap);
  std::string out = fmt_double(s.mean, 1);
  if (s.converged < s.trials) {
    out += " (" + std::to_string(s.trials - s.converged) + " censored)";
  }
  return out;
}

void run_coin_leverage(const BenchOptions& o, Report& r) {
  r.text("=== Coin leverage (Section 6.1): the same gamble, three "
         "coins (k = 8, split adversary) ===\n\n");

  const std::uint32_t ns[] = {4, 7, 10};
  const std::uint32_t adaptive_ns[] = {4, 7};
  std::vector<SweepCell> cells;
  for (std::uint32_t n : ns) {
    for (const char* fam : {"dw-local", "dw-shared", "dw-shared-fm", "sync"}) {
      cells.push_back(registry_cell(o, "leverage/" + std::string(fam) +
                                           "/n" + std::to_string(n)));
    }
  }
  for (std::uint32_t n : adaptive_ns) {
    cells.push_back(
        registry_cell(o, "leverage/adaptive/dw-shared/n" + std::to_string(n)));
    cells.push_back(
        registry_cell(o, "leverage/adaptive/sync/n" + std::to_string(n)));
  }
  const std::vector<TrialStats> stats = run_sweep(cells, sweep_options(o));

  AsciiTable t({"n", "f", "DW local coins", "DW + shared coin",
                "DW + shared FM coin", "ss-Byz-Clock-Sync"});
  // The ">cap" censoring label must track each cell's actual beat budget.
  const auto capped = [&](std::size_t idx) {
    return leverage_cell(stats[idx], spec_of(cells[idx]).max_beats);
  };
  for (std::size_t i = 0; i < std::size(ns); ++i) {
    const ScenarioSpec& spec = spec_of(cells[i * 4]);
    t.add_row({std::to_string(ns[i]), std::to_string(spec.world.f),
               capped(i * 4), capped(i * 4 + 1), capped(i * 4 + 2),
               capped(i * 4 + 3)});
  }
  r.table("coins", t);
  r.text("\nexpected shape: column 1 explodes with n-f; columns 2-4 "
         "stay constant — the coin is where the exponential/constant "
         "divide lives.\n");

  r.text("\n=== Adaptive quorum splitter (strongest clock-channel "
         "attack) ===\n\n");
  AsciiTable t2({"n", "f", "DW + shared coin", "ss-Byz-Clock-Sync"});
  for (std::size_t j = 0; j < std::size(adaptive_ns); ++j) {
    const std::size_t base = std::size(ns) * 4 + j * 2;
    const ScenarioSpec& spec = spec_of(cells[base]);
    const TrialStats& dw = stats[base];
    const TrialStats& sync = stats[base + 1];
    t2.add_row({std::to_string(adaptive_ns[j]), std::to_string(spec.world.f),
                capped(base) + " [" + converged_cell(dw) + "]",
                capped(base + 1) + " [" + converged_cell(sync) + "]"});
  }
  r.table("adaptive", t2);
  r.text("\nthe splitter sustains a partition whenever a value's "
         "correct support lands in [n-2f, n-f); the paper's algorithm "
         "re-merges the groups through the phase-3 common gamble.\n");
  r.csv_trailer(t);
}

// ---------------------------------------------------------------------------
// Remark 4.1 ablation: ss-Byz-4-Clock (and the full k-clock stack) with
// one coin-flipping pipeline per 2-clock vs a single shared pipeline.

void run_ablation_pipeline(const BenchOptions& o, Report& r) {
  r.text("=== Remark 4.1 ablation: per-sub-clock vs shared coin "
         "pipeline (full FM coin, n = 4, f = 1, noise) ===\n\n");

  const struct {
    const char* scenario;
    const char* label;
  } rows[] = {
      {"ablation/clock4/per-subclock", "4-clock, two pipelines (Fig. 3)"},
      {"ablation/clock4/shared", "4-clock, shared pipeline (Rem. 4.1)"},
      {"ablation/kclock/per-subclock", "k-clock k=32, two pipelines"},
      {"ablation/kclock/shared", "k-clock k=32, shared pipeline"},
  };
  std::vector<SweepCell> cells;
  for (const auto& row : rows) cells.push_back(registry_cell(o, row.scenario));
  const std::vector<TrialStats> stats = run_sweep(cells, sweep_options(o));

  AsciiTable t({"configuration", "mean beats", "p90", "converged",
                "msgs/beat"});
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const TrialStats& s = stats[i];
    t.add_row({rows[i].label, fmt_double(s.mean, 1), fmt_double(s.p90, 0),
               converged_cell(s), fmt_double(s.mean_msgs_per_beat, 1)});
  }
  r.table("main", t);
  r.text("\nexpected shape: shared pipeline cuts messages/beat by a "
         "constant factor with comparable expected convergence.\n");
  r.csv_trailer(t);
}

// ---------------------------------------------------------------------------
// Convergence-tail experiment (Theorem 2's closing remark): the
// probability of NOT having converged by beat b decays geometrically.

void tail_series(Report& r, const std::string& id, const std::string& name,
                 TrialStats stats) {
  {
    std::ostringstream os;
    os << "--- " << name << ": " << converged_cell(stats) << " converged, mean "
       << fmt_double(stats.mean, 2) << ", p90 " << fmt_double(stats.p90, 1)
       << ", max " << stats.max << " ---\n";
    r.text(os.str());
  }
  std::sort(stats.samples.begin(), stats.samples.end());
  AsciiTable t({"beat b", "P[not converged by b]"});
  for (std::uint64_t b = 0; b <= stats.max + 2;
       b += std::max<std::uint64_t>(1, (stats.max + 2) / 12)) {
    const auto below = static_cast<std::uint64_t>(
        std::upper_bound(stats.samples.begin(), stats.samples.end(), b) -
        stats.samples.begin());
    const double surv =
        1.0 - static_cast<double>(below) / static_cast<double>(stats.trials);
    t.add_row({std::to_string(b), fmt_double(surv, 3)});
  }
  r.table(id, t);
  // Geometric-decay readout: fit P[T > b] ~ exp(-b/tau) via the mean.
  if (stats.converged == stats.trials && stats.mean > 0) {
    r.text("implied per-beat success rate ~ " +
           fmt_double(1.0 / (stats.mean + 1), 3) + "\n");
  }
  r.text("\n");
}

void run_convergence_tail(const BenchOptions& o, Report& r) {
  r.text("=== Convergence-tail experiment (Theorem 2 remark: "
         "geometric decay) ===\n\n");

  const struct {
    const char* scenario;
    const char* id;
    const char* label;
  } series[] = {
      {"tail/clock2/n4", "clock2-n4", "ss-Byz-2-Clock n=4 f=1 (split attack)"},
      {"tail/clock2/n13", "clock2-n13",
       "ss-Byz-2-Clock n=13 f=4 (split attack)"},
      {"tail/sync/n7", "sync-n7",
       "ss-Byz-Clock-Sync n=7 f=2 k=64 (skew attack)"},
  };
  std::vector<SweepCell> cells;
  for (const auto& s : series) cells.push_back(registry_cell(o, s.scenario));
  std::vector<TrialStats> stats = run_sweep(cells, sweep_options(o));
  for (std::size_t i = 0; i < std::size(series); ++i) {
    tail_series(r, series[i].id, series[i].label, std::move(stats[i]));
  }
}

// ---------------------------------------------------------------------------
// Coin-quality experiment (Figure 1 / Definitions 2.6-2.8 / Theorem 1):
// commonality, the p0/p1 split, and cold-start stabilization of the
// ss-Byz-Coin-Flip pipeline over the FM-style GVSS coin, per adversary.
// Fixed single-engine bit streams — not a trial sweep.

// Host protocol recording the per-beat bit stream (bench-local copy of the
// test helper, kept here so the experiment layer is self-contained).
class CoinHost final : public Protocol {
 public:
  CoinHost(const ProtocolEnv& env, const CoinSpec& spec, Rng rng)
      : channels_(spec.channels == 0 ? 1 : spec.channels),
        coin_(spec.make(env, 0, rng)) {}
  void send_phase(Outbox& out) override { coin_->send_phase(out); }
  void receive_phase(const Inbox& in) override {
    bits_.push_back(coin_->receive_phase(in));
  }
  void randomize_state(Rng& rng) override { coin_->randomize_state(rng); }
  std::uint32_t channel_count() const override { return channels_; }
  const std::vector<bool>& bits() const { return bits_; }

 private:
  std::uint32_t channels_;
  std::unique_ptr<CoinComponent> coin_;
  std::vector<bool> bits_;
};

struct CoinStats {
  double common = 0, p0 = 0, p1 = 0;
  std::uint64_t first_common = 0;
};

CoinStats measure_coin(std::uint32_t n, std::uint32_t f, bool oracle,
                       Attack attack, std::uint64_t beats,
                       std::uint64_t seed) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  std::shared_ptr<OracleBeacon> beacon;
  CoinSpec spec;
  if (oracle) {
    beacon = std::make_shared<OracleBeacon>(n, OracleCoinParams{0.45, 0.45},
                                            Rng(seed).split("beacon"));
    spec = oracle_coin_spec(beacon);
  } else {
    spec = fm_coin_spec();
  }
  auto factory = [&spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<CoinHost>(env, spec, rng);
  };
  Engine eng(cfg, factory, f == 0 ? nullptr : make_attack(attack, 2, 0));
  if (beacon) eng.add_listener(beacon.get());
  eng.run_beats(beats);

  std::vector<const CoinHost*> hosts;
  for (NodeId id : eng.correct_ids()) {
    hosts.push_back(dynamic_cast<const CoinHost*>(&eng.node(id)));
  }
  CoinStats out;
  bool found_first = false;
  std::uint64_t common = 0, zeros = 0, ones = 0, counted = 0;
  const std::size_t warmup = FmCoinInstance::kRounds;
  for (std::size_t i = 0; i < beats; ++i) {
    bool all_same = true;
    for (const auto* h : hosts) {
      if (h->bits()[i] != hosts[0]->bits()[i]) all_same = false;
    }
    if (all_same && !found_first) {
      found_first = true;
      out.first_common = i;
    }
    if (i < warmup) continue;
    ++counted;
    if (all_same) {
      ++common;
      (hosts[0]->bits()[i] ? ones : zeros)++;
    }
  }
  out.common = static_cast<double>(common) / static_cast<double>(counted);
  out.p0 = static_cast<double>(zeros) / static_cast<double>(counted);
  out.p1 = static_cast<double>(ones) / static_cast<double>(counted);
  return out;
}

void run_coin_quality(const BenchOptions& o, Report& r) {
  if (o.trials != 0 || o.jobs != 0 || !o.trace.empty()) {
    std::cerr << "note: this bench measures fixed single-engine bit streams; "
                 "--trials/--jobs/--trace have no effect here "
                 "(--seed applies)\n";
  }
  r.text("=== Coin quality: ss-Byz-Coin-Flip over the FM-style GVSS "
         "coin (Theorem 1) ===\n"
         "columns: commonality = measured p0+p1 (+accidental), split "
         "p0/p1, first common bit (Lemma 1: <= Delta_A = 4 after "
         "corrupted genesis)\n\n");

  AsciiTable t({"coin", "n", "f", "adversary", "common", "p0", "p1",
                "first common beat"});
  struct Row {
    bool oracle;
    std::uint32_t n, f;
    Attack attack;
    const char* name;
  };
  const Row rows[] = {
      {false, 4, 0, Attack::kSilent, "(none)"},
      {false, 4, 1, Attack::kSilent, "silent"},
      {false, 4, 1, Attack::kNoise, "noise"},
      {false, 4, 1, Attack::kCoinAttack, "gvss-attacker"},
      {false, 7, 2, Attack::kSilent, "silent"},
      {false, 7, 2, Attack::kNoise, "noise"},
      {false, 7, 2, Attack::kCoinAttack, "gvss-attacker"},
      {false, 10, 3, Attack::kCoinAttack, "gvss-attacker"},
      {true, 7, 2, Attack::kSilent, "silent (oracle ref)"},
  };
  for (const auto& row : rows) {
    const std::uint64_t beats = row.n >= 10 ? 300 : 800;
    auto s = measure_coin(row.n, row.f, row.oracle, row.attack, beats,
                          shifted_seed(o, 42) + row.n);
    t.add_row({row.oracle ? "oracle(0.45/0.45)" : "fm-gvss",
               std::to_string(row.n), std::to_string(row.f), row.name,
               fmt_double(s.common, 3), fmt_double(s.p0, 3),
               fmt_double(s.p1, 3), std::to_string(s.first_common)});
  }
  r.table("main", t);
  r.csv_trailer(t);
}

// ---------------------------------------------------------------------------
// Message-complexity experiment: correct-node traffic per beat vs n for
// every algorithm family, measured after convergence so the steady state
// is compared. Single-engine probes — not a trial sweep.

struct Traffic {
  double msgs = 0, bytes = 0;
};

// Mean traffic over the second half of the run (the first half is warmup).
Traffic second_half_mean(const Engine& eng) {
  const auto& hist = eng.metrics().history();
  Traffic t;
  std::uint64_t counted = 0;
  for (std::size_t i = hist.size() / 2; i < hist.size(); ++i) {
    t.msgs += static_cast<double>(hist[i].correct_messages);
    t.bytes += static_cast<double>(hist[i].correct_bytes);
    ++counted;
  }
  t.msgs /= static_cast<double>(counted);
  t.bytes /= static_cast<double>(counted);
  return t;
}

// Channel labels for the full FM stack rooted at 0, derived from the same
// layout arithmetic the stack itself uses (SsByzClockSync: three own
// channels, then SsByz4Clock in per-sub-clock mode — each 2-clock owns one
// clock channel + a coin pipeline — then the phase-3 coin), so the table
// tracks any change to the composition.
std::string fm_channel_label(ChannelId ch) {
  static const char* kRound[] = {"deal", "cross", "votes", "shares"};
  const std::uint32_t coin_chs = FmCoinInstance::kRounds;
  const auto coin_round = [&](const char* host, std::uint32_t rd) {
    std::string label = std::string("coin[") + host + "] ";
    if (rd < 4) {
      label += kRound[rd];
    } else {
      label += "r" + std::to_string(rd + 1);
    }
    return label;
  };
  if (ch < 3) {
    return std::string("clock-sync ") +
           (ch == 0 ? "full" : ch == 1 ? "prop" : "bit");
  }
  std::uint32_t off = ch - 3;  // into SsByz4Clock's per-sub-clock block
  const std::uint32_t sub = 1 + coin_chs;  // one SsByz2Clock's channels
  if (off < sub) {
    return off == 0 ? "2clk[a1] tri" : coin_round("a1", off - 1);
  }
  off -= sub;
  if (off < sub) {
    return off == 0 ? "2clk[a2] tri" : coin_round("a2", off - 1);
  }
  off -= sub;
  if (off < coin_chs) return coin_round("p3", off);
  return "ch " + std::to_string(ch);
}

// Steady-state per-round (= per-channel) byte breakdown from an engine
// whose second-half window was measured with channel tracking on.
AsciiTable fm_round_breakdown(const Engine& eng) {
  const auto& per_ch = eng.channel_bytes();
  const double window = static_cast<double>(eng.channel_bytes_beats());
  double total = 0;
  for (std::uint64_t b : per_ch) total += static_cast<double>(b);
  AsciiTable rt({"round (channel)", "bytes/beat", "share"});
  for (std::size_t ch = 0; ch < per_ch.size(); ++ch) {
    const double per_beat = static_cast<double>(per_ch[ch]) / window;
    rt.add_row({fm_channel_label(static_cast<ChannelId>(ch)) + " (" +
                    std::to_string(ch) + ")",
                fmt_double(per_beat, 1),
                fmt_double(100.0 * static_cast<double>(per_ch[ch]) / total,
                           1) +
                    "%"});
  }
  return rt;
}

void run_message_complexity(const BenchOptions& o, Report& r) {
  if (o.trials != 0 || o.jobs != 0 || !o.trace.empty()) {
    std::cerr << "note: this bench measures one steady-state engine per row; "
                 "--trials/--jobs/--trace have no effect here "
                 "(--seed applies)\n";
  }
  r.text("=== Steady-state traffic per beat (all correct nodes, "
         "k = 16, silent adversary) ===\n\n");
  AsciiTable t({"algorithm", "n", "f", "msgs/beat", "KiB/beat",
                "msgs/beat/node"});
  struct Breakdown {
    std::uint32_t n, f;
    AsciiTable table;
  };
  std::vector<Breakdown> breakdowns;
  const auto steady_state = [&](const EngineBuilder& builder,
                                std::uint64_t beats) {
    auto bundle = builder(shifted_seed(o, 123));
    bundle.engine->run_beats(beats);
    return second_half_mean(*bundle.engine);
  };
  struct NF {
    std::uint32_t n, f;
  };
  for (const auto [n, f] : {NF{4, 1}, NF{7, 2}, NF{10, 3}, NF{13, 4}}) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 16;
    w.attack = Attack::kSilent;

    auto add_traffic = [&](const std::string& name, const Traffic& tr) {
      t.add_row({name, std::to_string(n), std::to_string(f),
                 fmt_double(tr.msgs, 0), fmt_double(tr.bytes / 1024.0, 1),
                 fmt_double(tr.msgs / (n - f), 1)});
    };
    auto add = [&](const std::string& name, const EngineBuilder& b,
                   std::uint64_t beats) {
      add_traffic(name, steady_state(b, beats));
    };

    add("Dolev-Welch [10]", build_dolev_welch(w), 400);
    {
      World wq = w;
      wq.f = (n - 1) / 4;
      wq.actual = wq.f;
      add("pipelined queen [15]", build_pipelined(wq, false), 200);
    }
    add("pipelined king [7]", build_pipelined(w, true), 200);
    add("ss-Byz-Clock-Sync (oracle)", build_clock_sync(w), 300);
    {
      // One tracked run feeds both the table row and the per-round
      // breakdown (channel tracking changes nothing but wall-clock).
      World wf = w;
      wf.coin = CoinKind::kFm;
      wf.track_channel_bytes = true;
      const std::uint64_t beats = n >= 10 ? 60 : 150;
      auto bundle = build_clock_sync(wf)(shifted_seed(o, 123));
      bundle.engine->run_beats(beats / 2);
      bundle.engine->reset_channel_bytes();
      bundle.engine->run_beats(beats - beats / 2);
      add_traffic("ss-Byz-Clock-Sync (FM coin)",
                  second_half_mean(*bundle.engine));
      breakdowns.push_back({n, f, fm_round_breakdown(*bundle.engine)});
    }
  }
  r.table("main", t);
  r.text("\n=== FM-coin stack, steady-state per-round byte breakdown "
         "===\n\n");
  for (const auto& b : breakdowns) {
    r.text("per-round bytes/beat, ss-Byz-Clock-Sync (FM coin), n = " +
           std::to_string(b.n) + ", f = " + std::to_string(b.f) + ":\n");
    r.table("fm-breakdown-n" + std::to_string(b.n), b.table);
    r.text("\n");
  }
  // Historical trailer shape: no blank line before "CSV follows:" here.
  if (r.format() == ReportFormat::kAscii) {
    r.text("CSV follows:\n");
    t.print_csv(r.out());
  }
}

// ---------------------------------------------------------------------------
// Large-n scaling grid: Table 1's convergence story continued past n = 13,
// plus the first KiB/beat and ns/beat curves out to n = 128. The
// convergence rows come from the scaling-large/* registry cells; the cost
// curves are steady-state single-engine probes (same methodology as
// message_complexity) timed with a monotonic clock. These are the
// workloads the SIMD field/codec kernels exist for — rerun with a
// -DSSBFT_SIMD=off build to measure the scalar reference on identical
// bytes.

void run_table1_large(const BenchOptions& o, Report& r) {
  r.text("=== Large-n scaling grid (k = 64): convergence at n up to 128 "
         "===\n\n");
  const std::uint32_t ns[] = {32, 64, 128};
  std::vector<SweepCell> cells;
  for (std::uint32_t n : ns) {
    cells.push_back(
        registry_cell(o, "scaling-large/sync/n" + std::to_string(n)));
    cells.push_back(
        registry_cell(o, "scaling-large/sync-fm/n" + std::to_string(n)));
    cells.push_back(registry_cell(
        o, "scaling-large/sync-fm/n" + std::to_string(n) + "-adaptive"));
  }
  const std::vector<TrialStats> stats = run_sweep(cells, sweep_options(o));
  AsciiTable conv({"coin", "adversary", "n", "f", "mean beats", "p90",
                   "msgs/beat", "converged"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ScenarioSpec& spec = spec_of(cells[i]);
    const TrialStats& s = stats[i];
    conv.add_row({spec.world.coin == CoinKind::kFm ? "fm-gvss" : "oracle",
                  attack_name(spec.world.attack), std::to_string(spec.world.n),
                  std::to_string(spec.world.f), stat_cell(s),
                  fmt_double(s.p90, 0), fmt_double(s.mean_msgs_per_beat, 0),
                  converged_cell(s)});
  }
  r.table("main", conv);

  // Steady-state cost curves: one engine per (coin, n), silent adversary so
  // the measured traffic is the protocol's own. ns/beat is wall-clock over
  // the whole probe (the only wall-clock number in the repo's tables; it
  // varies run to run — the KiB/beat column and every other table stay
  // bit-identical).
  r.text("\n=== Steady-state cost per beat (silent adversary) ===\n\n");
  AsciiTable cost({"coin", "n", "f", "msgs/beat", "KiB/beat", "ns/beat"});
  for (std::uint32_t n : ns) {
    World w;
    w.n = n;
    w.f = (n - 1) / 3;
    w.actual = w.f;
    w.k = 64;
    w.attack = Attack::kSilent;
    struct Probe {
      const char* coin;
      CoinKind kind;
      std::uint64_t beats;
    };
    // FM beats shrink with n (an n=128 FM beat carries ~n^2 vectors);
    // the second-half window still spans several coin rounds.
    const Probe probes[] = {
        {"oracle", CoinKind::kOracle, 300},
        {"fm-gvss", CoinKind::kFm, n >= 128 ? 12u : n >= 64 ? 24u : 48u},
    };
    for (const Probe& p : probes) {
      World wp = w;
      wp.coin = p.kind;
      auto bundle = build_clock_sync(wp)(shifted_seed(o, 123));
      const auto t0 = std::chrono::steady_clock::now();
      bundle.engine->run_beats(p.beats);
      const auto t1 = std::chrono::steady_clock::now();
      const double ns_per_beat =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          static_cast<double>(p.beats);
      const Traffic tr = second_half_mean(*bundle.engine);
      cost.add_row({p.coin, std::to_string(n), std::to_string(w.f),
                    fmt_double(tr.msgs, 0), fmt_double(tr.bytes / 1024.0, 1),
                    fmt_double(ns_per_beat, 0)});
    }
  }
  r.table("cost", cost);
  r.csv_trailer(cost);
}

// ---------------------------------------------------------------------------
// Delivery-adversary experiment: convergence and message cost of the
// paper's full stack under adversarial *scheduling* — eclipse, partition,
// targeted delay, reorder (sim/delivery.h) — against the synchronous
// baseline, composed with the Byzantine attacks of the gallery.

void run_delivery(const BenchOptions& o, Report& r) {
  r.text("=== Delivery adversaries: ss-Byz-Clock-Sync n = 7, f = 2, "
         "k = 8 under adversarial scheduling ===\n\n");

  const char* names[] = {
      "net/baseline",           "net/eclipse",
      "net/eclipse+noise",      "net/partition-heal",
      "net/partition-heal+split", "net/targeted-delay",
      "net/targeted-delay+skew", "net/reorder",
      "net/reorder+lossy",
  };
  std::vector<SweepCell> cells;
  for (const char* name : names) cells.push_back(registry_cell(o, name));
  const std::vector<TrialStats> stats = run_sweep(cells, sweep_options(o));

  AsciiTable t({"scenario", "delivery", "heal", "adversary", "converged",
                "mean beats", "p90", "msgs/beat"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ScenarioSpec& spec = spec_of(cells[i]);
    const DeliverySpec& d = spec.world.faults.delivery;
    const TrialStats& s = stats[i];
    const std::string heal =
        d.kind == DeliveryKind::kSynchronous ? "-"
        : d.heal_at == DeliverySpec::kNever ? "never"
                                            : std::to_string(d.heal_at);
    t.add_row({spec.name, delivery_kind_name(d.kind), heal,
               spec.world.actual == 0 ? "-" : attack_name(spec.world.attack),
               converged_cell(s), s.converged ? fmt_double(s.mean, 1) : "-",
               s.converged ? fmt_double(s.p90, 0) : "-",
               fmt_double(s.mean_msgs_per_beat, 1)});
  }
  r.table("main", t);
  r.text("\nexpected shape: topology attacks push convergence past their "
         "heal beat (stabilization restarts from the healed network's "
         "state); reorder alone is absorbed by the inbox's canonical "
         "ordering and matches the baseline.\n");

  // Message-cost probe: one engine per cell over a fixed window past
  // every heal beat, reading the policy counters off Metrics totals.
  const std::uint64_t probe_beats = 120;
  r.text("\n--- delivery-policy traffic probe (one engine per cell, " +
         std::to_string(probe_beats) + " beats) ---\n\n");
  AsciiTable p({"scenario", "correct msgs", "dropped", "eclipsed", "delayed",
                "reordered", "phantoms"});
  for (const char* name : names) {
    const ScenarioSpec* spec = find_scenario(name);
    SSBFT_CHECK(spec != nullptr);
    auto bundle = build_scenario(*spec)(shifted_seed(o, spec->base_seed));
    bundle.engine->run_beats(probe_beats);
    const BeatTraffic& tot = bundle.engine->metrics().total();
    p.add_row({name, std::to_string(tot.correct_messages),
               std::to_string(tot.dropped_messages),
               std::to_string(tot.eclipsed_messages),
               std::to_string(tot.delayed_messages),
               std::to_string(tot.reordered_messages),
               std::to_string(tot.phantom_messages)});
  }
  r.table("probe", p);
  r.csv_trailer(t);
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry + entry points.

const std::vector<Experiment>& experiments() {
  static const std::vector<Experiment> kExperiments = {
      {"table1", "Table 1 (PODC'08): measured convergence for all four "
                 "algorithm families across (n, f)",
       run_table1},
      {"table1-large", "large-n scaling grid (n = 32/64/128): convergence "
                       "plus KiB/beat and ns/beat curves on the SIMD "
                       "kernels (scaling-large/* cells)",
       run_table1_large},
      {"resiliency", "resiliency boundaries at n = 13: f < n/4 vs f < n/3 "
                     "vs the impossible f > n/3",
       run_resiliency},
      {"kclock_scaling", "ss-Byz-Clock-Sync's constant overhead vs the "
                         "Section-5 cascade as k grows",
       run_kclock_scaling},
      {"coin_leverage", "Section 6.1: the DW gamble on local vs shared vs "
                        "FM coins, plus the adaptive splitter",
       run_coin_leverage},
      {"ablation_pipeline", "Remark 4.1: per-sub-clock vs shared coin "
                            "pipeline (traffic and convergence)",
       run_ablation_pipeline},
      {"convergence_tail", "Theorem 2 remark: geometric decay of "
                           "P[not converged by beat b]",
       run_convergence_tail},
      {"coin_quality", "Theorem 1: commonality / p0 / p1 / stabilization "
                       "of the GVSS coin bit streams",
       run_coin_quality},
      {"message_complexity", "steady-state traffic per beat vs n, with the "
                             "FM stack's per-round byte breakdown",
       run_message_complexity},
      {"delivery", "delivery adversaries: eclipse / partition / "
                   "targeted-delay / reorder vs convergence and message "
                   "cost",
       run_delivery},
  };
  return kExperiments;
}

const Experiment* find_experiment(const std::string& name) {
  for (const Experiment& e : experiments()) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

std::ostream* open_report_out(const BenchOptions& o, AtomicOutFile& file,
                              const char* prog) {
  if (o.out.empty()) return &std::cout;
  if (!file.open(o.out)) {
    std::cerr << prog << ": cannot open --out file '" << o.out << "'\n";
    return nullptr;
  }
  return &file.stream();
}

bool commit_report_out(AtomicOutFile& file, const char* prog) {
  std::string err;
  if (!file.commit(&err)) {
    std::cerr << prog << ": " << err << "\n";
    return false;
  }
  return true;
}

int bench_main(const std::string& experiment, int argc, char** argv) {
  const Experiment* e = find_experiment(experiment);
  SSBFT_CHECK_MSG(e != nullptr, "unregistered experiment " << experiment);
  const BenchOptions o = parse_cli(argv[0], argc, argv);
  if (o.shard.active() || !o.checkpoint.empty() || o.resume) {
    std::cerr << argv[0]
              << ": --shard/--checkpoint/--resume apply to scenario sweeps "
                 "(`ssbft_bench run <glob>`), not experiment tables\n";
    return 2;
  }
  AtomicOutFile file;
  std::ostream* os = open_report_out(o, file, argv[0]);
  if (os == nullptr) return 2;
  Report report(RunMeta{experiment, o.trials, o.seed, o.jobs}, o.format, *os);
  e->run(o, report);
  return commit_report_out(file, argv[0]) ? 0 : 2;
}

// SweepOptions for a scenario sweep, including the crash-safety knobs
// (the experiment tables keep the plain sweep_options above: several
// grids share one invocation there, so one checkpoint file can't
// describe them).
namespace {

SweepOptions scenario_sweep_options(const BenchOptions& o) {
  SweepOptions so = sweep_options(o);
  so.shard = o.shard;
  so.checkpoint_path = o.checkpoint;
  so.checkpoint_every = o.checkpoint_every;
  so.resume = o.resume;
  return so;
}

std::vector<SweepCell> scenario_cells(
    const BenchOptions& o, const std::vector<const ScenarioSpec*>& matched) {
  SSBFT_REQUIRE(!matched.empty());
  std::vector<SweepCell> cells;
  cells.reserve(matched.size());
  for (const ScenarioSpec* spec : matched) {
    cells.push_back(SweepCell{spec->name, build_scenario(*spec),
                              cell_config(o, *spec)});
  }
  return cells;
}

}  // namespace

void render_scenario_table(const std::string& pattern,
                           const std::vector<const ScenarioSpec*>& specs,
                           const std::vector<TrialStats>& stats,
                           Report& report) {
  {
    std::ostringstream os;
    os << "=== sweep: " << pattern << " (" << specs.size()
       << (specs.size() == 1 ? " cell" : " cells") << ") ===\n\n";
    report.text(os.str());
  }
  AsciiTable t({"scenario", "family", "n", "f", "adversary", "converged",
                "mean beats", "median", "p90", "max", "msgs/beat"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const ScenarioSpec& spec = *specs[i];
    const TrialStats& s = stats[i];
    t.add_row({spec.name, family_name(spec.family),
               std::to_string(spec.world.n), std::to_string(spec.world.f),
               spec.world.actual == 0 ? "-" : attack_name(spec.world.attack),
               converged_cell(s),
               s.converged ? fmt_double(s.mean, 1) : "-",
               s.converged ? fmt_double(s.median, 1) : "-",
               s.converged ? fmt_double(s.p90, 0) : "-",
               s.converged ? std::to_string(s.max) : "-",
               fmt_double(s.mean_msgs_per_beat, 1)});
  }
  report.table("cells", t);
}

void run_scenario_cells(const std::string& pattern,
                        const std::vector<const ScenarioSpec*>& matched,
                        const BenchOptions& o, Report& report) {
  const std::vector<SweepCell> cells = scenario_cells(o, matched);
  const SweepResult res = run_sweep_ex(cells, scenario_sweep_options(o));
  render_scenario_table(pattern, matched, res.stats, report);
}

void run_shard_cells(const std::string& pattern,
                     const std::vector<const ScenarioSpec*>& matched,
                     const BenchOptions& o, std::ostream& out) {
  const std::vector<SweepCell> cells = scenario_cells(o, matched);
  SweepOptions so = scenario_sweep_options(o);
  // Commitments make the merged report (and CI) able to attest replay
  // exactness; they exist only when traces do.
  so.collect_commitments = !o.trace.empty();
  const SweepResult res = run_sweep_ex(cells, so);

  ShardHeader header = shard_header_for(cells, o.shard, pattern);
  header.cli_seed = o.seed;
  header.cli_trials = o.trials;
  out << encode_shard_header(header);
  for (const SweepUnitResult& u : res.units) {
    ShardUnitRow row;
    row.unit = u.unit;
    row.cell = u.cell;
    row.trial = u.trial;
    row.outcome = u.outcome;
    out << encode_shard_unit(row);
  }
}

int merge_shard_reports(const std::vector<std::string>& paths,
                        const BenchOptions& o, bool commitment_only) {
  std::vector<ShardFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "ssbft_bench: cannot open '" << path << "'\n";
      return 2;
    }
    ShardParse parsed = parse_shard_file(in);
    if (!parsed.ok) {
      std::cerr << "ssbft_bench: " << path << ":" << parsed.error_line << ": "
                << parsed.error << "\n";
      return 2;
    }
    files.push_back(std::move(parsed.file));
  }
  ShardMerge m = merge_shard_files(std::move(files));
  if (!m.ok) {
    std::cerr << "ssbft_bench: " << m.error << "\n";
    return 2;
  }
  if (commitment_only && !m.have_commitments) {
    std::cerr << "ssbft_bench: shard reports carry no trace commitments "
                 "(rerun the shards with --trace)\n";
    return 2;
  }
  // Resolve the cells against this binary's registry before opening
  // --out, so registry drift never truncates an existing results file.
  std::vector<const ScenarioSpec*> specs;
  specs.reserve(m.header.cells.size());
  for (const ShardCellInfo& c : m.header.cells) {
    const ScenarioSpec* spec = find_scenario(c.name);
    if (spec == nullptr) {
      std::cerr << "ssbft_bench: shard reports reference scenario '" << c.name
                << "', which this binary's registry does not contain "
                   "(version drift between shard run and merge?)\n";
      return 2;
    }
    specs.push_back(spec);
  }

  AtomicOutFile file;
  std::ostream* os = open_report_out(o, file, "ssbft_bench");
  if (os == nullptr) return 2;
  if (commitment_only) {
    *os << aggregate_commitment(m.commitments) << "\n";
  } else {
    std::vector<TrialStats> stats;
    stats.reserve(m.per_cell.size());
    for (const auto& cell_outcomes : m.per_cell) {
      stats.push_back(merge_outcomes(cell_outcomes));
    }
    Report report(
        RunMeta{m.header.pattern, m.header.cli_trials, m.header.cli_seed, 0},
        o.format, *os);
    render_scenario_table(m.header.pattern, specs, stats, report);
    if (m.have_commitments) {
      report.text("\naggregate trace commitment: " +
                  aggregate_commitment(m.commitments) + "\n");
    }
  }
  return commit_report_out(file, "ssbft_bench") ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Chaos campaigns (`ssbft_bench soak`).

namespace {

// The sweep cell for one chaos unit: the matched scenario's world with the
// sampled FaultPlan and faulty placement swapped in, one trial, seeded by
// the unit's engine seed. The cell name encodes the unit's full identity
// (campaign seed, unit index, scenario), so sweep fingerprints — and
// therefore checkpoints and shard slices — can never cross campaigns.
SweepCell chaos_cell(const ScenarioSpec& spec, const ChaosUnit& unit) {
  World w = spec.world;
  w.faults = unit.plan;
  w.faulty_override = unit.faulty;
  RunnerConfig rc = scenario_runner_config(spec);
  rc.trials = 1;
  rc.base_seed = unit.engine_seed;
  return SweepCell{"chaos/s" + std::to_string(unit.campaign_seed) + "/u" +
                       std::to_string(unit.index) + "/" + unit.scenario,
                   build_world(spec.family, w), rc};
}

// Re-runs one unit under the streaming checker — the --minimize probe.
// Builds the engine exactly as the sweep's live-checked run does (same
// seed, same full beat budget, same confirmation window), so the verdict
// is bit-identical to the campaign's.
CheckResult chaos_probe(const ScenarioSpec& spec, const ChaosUnit& unit,
                        const CheckOptions& copts) {
  World w = spec.world;
  w.faults = unit.plan;
  w.faulty_override = unit.faulty;
  const RunnerConfig rc = scenario_runner_config(spec);
  EngineBundle bundle = build_world(spec.family, w)(unit.engine_seed);
  CheckOptions probe_opts = copts;
  probe_opts.fault_horizon = w.faults.network_quiescence();
  StreamingChecker checker(probe_opts);
  TraceMeta meta;
  meta.scenario = unit.scenario;
  meta.seed = unit.engine_seed;
  meta.n = spec.world.n;
  meta.f = spec.world.f;
  meta.faulty = unit.faulty;
  meta.max_beats = rc.convergence.max_beats;
  meta.confirm_window = rc.convergence.confirm_window;
  checker.begin_trace(meta);
  bundle.engine->set_trace(&checker);
  bundle.engine->run_beats(rc.convergence.max_beats);
  return checker.finish();
}

// Greedy delta-debugging to a fixed point: keep the first strictly-weaker
// reduction that still violates; stop when none does. Every candidate is
// weaker than its parent, so the loop terminates.
ChaosUnit minimize_chaos_unit(const ScenarioSpec& spec, ChaosUnit unit,
                              const CheckOptions& copts,
                              std::uint64_t* steps) {
  *steps = 0;
  for (;;) {
    bool reduced = false;
    std::vector<FaultPlan> candidates = chaos_reductions(unit.plan);
    for (FaultPlan& cand : candidates) {
      ChaosUnit trial = unit;
      trial.plan = std::move(cand);
      if (!chaos_probe(spec, trial, copts).ok) {
        unit = std::move(trial);
        ++*steps;
        reduced = true;
        break;
      }
    }
    if (!reduced) return unit;
  }
}

void write_indented(std::ostream& os, const std::string& text) {
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    os << "  " << text.substr(start, end - start) << "\n";
    start = end + 1;
  }
}

}  // namespace

int run_soak_campaign(const std::string& pattern,
                      const std::vector<const ScenarioSpec*>& matched,
                      const BenchOptions& o, const SoakOptions& soak) {
  SSBFT_REQUIRE_MSG(!matched.empty(), "soak needs a matched scenario set");
  SSBFT_REQUIRE_MSG(soak.units >= 1, "soak needs --units >= 1");

  const FaultPlanGenerator gen(soak.campaign_seed);
  std::vector<ChaosUnit> units;
  std::vector<SweepCell> cells;
  units.reserve(soak.units);
  cells.reserve(soak.units);
  for (std::uint64_t u = 0; u < soak.units; ++u) {
    const ScenarioSpec& spec = *matched[u % matched.size()];
    ChaosUnit unit = gen.make_unit(u, spec.name, spec.world.n,
                                   spec.world.actual, spec.max_beats);
    cells.push_back(chaos_cell(spec, unit));
    units.push_back(std::move(unit));
  }

  SweepOptions so = scenario_sweep_options(o);
  so.collect_commitments = !o.trace.empty();
  so.live_check = true;
  so.live_check_opts.bound = soak.bound;
  const SweepResult res = run_sweep_ex(cells, so);

  AtomicOutFile file;
  std::ostream* os = open_report_out(o, file, "ssbft_bench");
  if (os == nullptr) return 2;

  *os << "soak: campaign seed " << soak.campaign_seed << ", " << soak.units
      << (soak.units == 1 ? " unit" : " units") << " over " << matched.size()
      << (matched.size() == 1 ? " scenario" : " scenarios") << " matching '"
      << pattern << "'";
  if (o.shard.active()) {
    *os << " (shard " << o.shard.index << "/" << o.shard.count << ": "
        << res.units.size() << " units in slice)";
  }
  *os << "\n";

  // res.units is in global unit order for every --jobs value (and under
  // --shard/--resume covers exactly the slice), so this report — and the
  // exit code — is deterministic however the campaign was scheduled.
  std::uint64_t violating = 0;
  for (const SweepUnitResult& u : res.units) {
    if (u.outcome.check_violations == 0) continue;
    ++violating;
    const ChaosUnit& unit = units[u.cell];
    *os << "violation: campaign-seed=" << soak.campaign_seed
        << " unit=" << unit.index << " scenario=" << unit.scenario
        << " engine-seed=" << unit.engine_seed
        << " violations=" << u.outcome.check_violations
        << " plan=" << chaos_unit_digest(unit) << "\n";
  }

  if (soak.minimize && violating > 0) {
    CheckOptions copts;
    copts.bound = soak.bound;
    for (const SweepUnitResult& u : res.units) {
      if (u.outcome.check_violations == 0) continue;
      const ScenarioSpec& spec = *matched[u.cell % matched.size()];
      std::uint64_t steps = 0;
      const ChaosUnit min =
          minimize_chaos_unit(spec, units[u.cell], copts, &steps);
      const CheckResult verdict = chaos_probe(spec, min, copts);
      *os << "\nminimal repro for unit " << min.index << " (" << steps
          << (steps == 1 ? " reduction" : " reductions") << " applied, plan "
          << chaos_unit_digest(min) << "):\n"
          << "  scenario " << spec.name << " (family "
          << family_name(spec.family) << ", n=" << spec.world.n
          << " f=" << spec.world.f << " actual=" << spec.world.actual
          << "), trials 1, base_seed " << min.engine_seed << ", max_beats "
          << spec.max_beats << "\n";
      write_indented(*os, encode_chaos_unit(min));
      std::size_t shown = 0;
      for (const std::string& msg : verdict.violations) {
        if (shown == 4) break;
        ++shown;
        *os << "  ! " << msg << "\n";
      }
      if (verdict.violation_count > shown) {
        *os << "  ! ... " << (verdict.violation_count - shown)
            << " more violation(s)\n";
      }
    }
  }

  if (violating == 0) {
    *os << "soak: clean — no invariant violations across "
        << res.units.size() << " unit(s)\n";
  } else {
    *os << "soak: " << violating << " violating unit(s); the same command "
        << "reproduces them bit-identically for any --jobs/--shard\n";
  }
  if (!commit_report_out(file, "ssbft_bench")) return 2;
  return violating == 0 ? 0 : 1;
}

}  // namespace ssbft::bench
