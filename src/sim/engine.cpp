#include "sim/engine.h"

#include <algorithm>

#include "sim/delivery.h"
#include "support/check.h"

namespace ssbft {

void AdversaryContext::require_faulty_sender(NodeId from) const {
  SSBFT_REQUIRE_MSG(from < n_ && (*is_faulty_)[from],
                    "adversary may only send from faulty nodes (sender "
                    "identity is unforgeable, Definition 2.2.2)");
}

void AdversaryContext::send(NodeId from, NodeId to, ChannelId channel,
                            const Bytes& payload) {
  SSBFT_REQUIRE_MSG(to < n_, "adversary send target out of range");
  require_faulty_sender(from);
  SharedBytes b = pool().acquire();
  b.mutable_bytes().assign(payload.begin(), payload.end());
  sink_->push_back(Message{from, to, channel, std::move(b)});
}

void AdversaryContext::broadcast(NodeId from, ChannelId channel,
                                 const Bytes& payload) {
  require_faulty_sender(from);
  // Copy once; all n messages alias the slot (message.h ownership rules).
  SharedBytes b = pool().acquire();
  b.mutable_bytes().assign(payload.begin(), payload.end());
  for (NodeId to = 0; to < n_; ++to) {
    sink_->push_back(Message{from, to, channel, b});
  }
}

std::vector<NodeId> EngineConfig::last_ids_faulty(std::uint32_t n,
                                                  std::uint32_t count) {
  SSBFT_REQUIRE(count <= n);
  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::uint32_t i = n - count; i < n; ++i) ids.push_back(i);
  return ids;
}

Engine::Engine(EngineConfig cfg, const ProtocolFactory& factory,
               std::unique_ptr<Adversary> adversary)
    : cfg_(std::move(cfg)),
      adversary_(std::move(adversary)),
      adv_rng_(Rng(cfg_.seed).split("adversary")),
      corrupt_rng_(Rng(cfg_.seed).split("corrupt")),
      net_rng_(Rng(cfg_.seed).split("network")),
      metrics_(cfg_.metrics_history_limit),
      outbox_(0, cfg_.n, &pool_) {
  SSBFT_REQUIRE(cfg_.n >= 1);
  SSBFT_REQUIRE_MSG(adversary_ != nullptr || cfg_.faulty.empty(),
                    "faulty nodes present but no adversary supplied");
  cfg_.faults.validate(cfg_.n);
  delivery_ = make_delivery_policy(cfg_.faults.delivery);
  is_faulty_.assign(cfg_.n, false);
  for (NodeId id : cfg_.faulty) {
    SSBFT_REQUIRE(id < cfg_.n);
    is_faulty_[id] = true;
  }
  protocols_.resize(cfg_.n);
  const Rng seed_root(cfg_.seed);
  for (NodeId id = 0; id < cfg_.n; ++id) {
    if (is_faulty_[id]) continue;
    correct_ids_.push_back(id);
    ProtocolEnv env{id, cfg_.n, cfg_.f};
    protocols_[id] = factory(env, seed_root.split("node", id));
    SSBFT_CHECK(protocols_[id] != nullptr);
    channel_count_ =
        std::max(channel_count_, protocols_[id]->channel_count());
    if (cfg_.faults.randomize_genesis) {
      protocols_[id]->randomize_state(corrupt_rng_);
    }
  }
  inboxes_.reserve(cfg_.n);
  for (NodeId id = 0; id < cfg_.n; ++id) {
    inboxes_.emplace_back(cfg_.n, channel_count_);
  }
  if (cfg_.track_channel_bytes) {
    channel_bytes_.assign(channel_count_, 0);
  }
  delivery_->bind(cfg_.n, channel_count_);
  // Send phases write straight into the beat scratch; no drain pass.
  outbox_.bind_sink(&correct_msgs_);
}

Engine::~Engine() = default;

Protocol& Engine::node(NodeId id) {
  SSBFT_REQUIRE_MSG(id < cfg_.n && !is_faulty_[id],
                    "node(" << id << ") is faulty or out of range");
  return *protocols_[id];
}

const Protocol& Engine::node(NodeId id) const {
  SSBFT_REQUIRE_MSG(id < cfg_.n && !is_faulty_[id],
                    "node(" << id << ") is faulty or out of range");
  return *protocols_[id];
}

std::vector<ClockValue> Engine::correct_clocks() const {
  std::vector<ClockValue> out;
  out.reserve(correct_ids_.size());
  for (NodeId id : correct_ids_) {
    const auto* cp = dynamic_cast<const ClockProtocol*>(protocols_[id].get());
    SSBFT_REQUIRE_MSG(cp != nullptr, "protocol is not a ClockProtocol");
    out.push_back(cp->clock());
  }
  return out;
}

void Engine::corrupt_node(NodeId id) {
  SSBFT_REQUIRE(id < cfg_.n && !is_faulty_[id]);
  protocols_[id]->randomize_state(corrupt_rng_);
  if (trace_ != nullptr) {
    trace_buf_.push({beat_, static_cast<std::int32_t>(id),
                     TraceEvent::kCorrupt, 0, 0, 0, 0, 0});
  }
}

void Engine::set_trace(TraceSink* sink) {
  trace_ = sink;
  trace_buf_.bind(sink);
  clock_views_.assign(cfg_.n, nullptr);
  if (sink == nullptr) return;
  for (NodeId id : correct_ids_) {
    clock_views_[id] =
        dynamic_cast<const ClockProtocol*>(protocols_[id].get());
  }
}

void Engine::emit_beat_trace() {
  for (NodeId id : correct_ids_) {
    TraceEmitter em(&trace_buf_, beat_, static_cast<std::int32_t>(id));
    if (const ClockProtocol* cp = clock_views_[id]) {
      em.clock(cp->clock(), cp->modulus());
    }
    protocols_[id]->trace_state(em);
  }
  const BeatTraffic& t = metrics_.retained(metrics_.retained_count() - 1);
  trace_buf_.push({beat_, -1, TraceEvent::kBeat, 0, t.correct_messages,
                   t.correct_bytes, t.adversary_messages, t.adversary_bytes});
  if (t.dropped_messages != 0 || t.phantom_messages != 0) {
    trace_buf_.push({beat_, -1, TraceEvent::kNet, 0, t.dropped_messages,
                     t.phantom_messages, 0, 0});
  }
  if (t.eclipsed_messages != 0 || t.delayed_messages != 0 ||
      t.reordered_messages != 0) {
    trace_buf_.push({beat_, -1, TraceEvent::kProbe, 0, t.eclipsed_messages,
                     t.delayed_messages, t.reordered_messages, 0});
  }
  trace_buf_.flush();
  trace_->end_beat(beat_);
}

void Engine::reset_channel_bytes() {
  std::fill(channel_bytes_.begin(), channel_bytes_.end(), 0);
  channel_bytes_beats_ = 0;
}

void Engine::run_beat() {
  metrics_.begin_beat();
  for (BeatListener* l : listeners_) l->on_beat(beat_);

  // Scheduled transient faults fire before the send phase of their beat.
  if (auto it = cfg_.faults.corruptions.find(beat_);
      it != cfg_.faults.corruptions.end()) {
    for (NodeId id : it->second) {
      if (!is_faulty_[id]) {
        protocols_[id]->randomize_state(corrupt_rng_);
        if (trace_ != nullptr) {
          trace_buf_.push({beat_, static_cast<std::int32_t>(id),
                           TraceEvent::kCorrupt, 0, 0, 0, 0, 0});
        }
      }
    }
  }

  // 1. Send phases: pure functions of pre-beat state, in id order. The
  //    outbox writes straight into the persistent beat scratch; payload
  //    storage stays pooled.
  for (NodeId id : correct_ids_) {
    outbox_.reset(id);
    protocols_[id]->send_phase(outbox_);
    metrics_.count_correct_bulk(outbox_.sent_messages(), outbox_.sent_bytes());
  }
  if (cfg_.track_channel_bytes) {
    for (const Message& m : correct_msgs_) {
      if (m.channel < channel_bytes_.size()) {
        channel_bytes_[m.channel] += m.payload.size();
      }
    }
    ++channel_bytes_beats_;
  }

  // 2. Adversary turn (rushing): it sees exactly the beat-r messages
  //    addressed to faulty nodes, then commits the faulty nodes' sends.
  //    The observed view borrows the payload handles — no byte copies.
  if (adversary_ != nullptr && !cfg_.faulty.empty()) {
    for (const Message& m : correct_msgs_) {
      if (!is_faulty_[m.to]) continue;
      observed_.push_back(m);
    }
    AdversaryContext ctx(cfg_.n, cfg_.f, cfg_.faulty, beat_, observed_,
                         adv_rng_, channel_count_, &pool_, &adv_msgs_,
                         &is_faulty_);
    adversary_->act(ctx);
    std::uint64_t adv_bytes = 0;
    for (const Message& m : adv_msgs_) adv_bytes += m.payload.size();
    metrics_.count_adversary_bulk(adv_msgs_.size(), adv_bytes);
  }

  // 3. Delivery, run by the configured DeliveryPolicy (sim/delivery.h).
  //    Inboxes were cleared at the end of the previous beat. The per-beat
  //    drop decision is hoisted here — policies never re-derive it per
  //    message. Suppressed (dropped/eclipsed) messages keep their payload
  //    handle in the beat scratch until the end-of-beat reset below;
  //    deferring policies park handles in their own cross-beat buffers.
  const bool network_faulty = beat_ < cfg_.faults.network_faulty_until;
  DeliveryBeat db;
  db.beat = beat_;
  db.network_faulty = network_faulty;
  db.sample_drops = network_faulty && cfg_.faults.faulty_drop_prob > 0.0;
  db.drop_prob = cfg_.faults.faulty_drop_prob;
  db.n = cfg_.n;
  db.channel_count = channel_count_;
  db.faults = &cfg_.faults;
  db.is_faulty = &is_faulty_;
  db.correct_ids = &correct_ids_;
  db.correct_msgs = &correct_msgs_;
  db.adv_msgs = &adv_msgs_;
  db.inboxes = &inboxes_;
  db.net_rng = &net_rng_;
  db.metrics = &metrics_;
  db.phantom_pool = &phantom_pool_;
  db.addressed_scratch = &addressed_;
  delivery_->deliver_beat(db);

  // 4. Receive phases.
  for (NodeId id : correct_ids_) {
    protocols_[id]->receive_phase(inboxes_[id]);
  }

  // 5. Trace emission (sim/trace.h), observing post-receive state.
  if (trace_ != nullptr) emit_beat_trace();

  // Reset the beat scratch and the inboxes. Clearing drops every payload
  // handle of the beat — delivered, dropped and observed alike — in one
  // place, recycling last-referenced slots into the pool. Releasing
  // everything here (rather than at the drop sites) keeps the pool's
  // per-beat slot demand a deterministic function of the traffic shape,
  // independent of drop patterns: once the pool has grown to one beat's
  // worth of slots, no beat ever allocates again, lossy network or not.
  correct_msgs_.clear();
  adv_msgs_.clear();
  observed_.clear();
  for (Inbox& ib : inboxes_) ib.clear();

  ++beat_;
}

void Engine::run_beats(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) run_beat();
}

}  // namespace ssbft
