// Tests for the lock-step engine: delivery semantics, adversary contract,
// fault injection, metrics, and determinism.
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "adversary/adversaries.h"
#include "harness/convergence.h"
#include "sim/engine.h"
#include "support/check.h"

namespace ssbft {
namespace {

// Broadcasts its id each beat and records exactly what it receives.
class EchoProtocol final : public ClockProtocol {
 public:
  explicit EchoProtocol(const ProtocolEnv& env) : env_(env) {}

  void send_phase(Outbox& out) override {
    ByteWriter w;
    w.u32(env_.self);
    w.u64(state_);
    out.broadcast(0, w.data());
  }

  void receive_phase(const Inbox& in) override {
    last_senders_.clear();
    last_payload_count_ = 0;
    for (const Bytes* p : in.first_per_sender(0)) {
      if (p != nullptr) ++last_payload_count_;
    }
    for (const Message& m : in.on(0)) last_senders_.push_back(m.from);
    phantom_bytes_seen_ = 0;
    for (const Message& m : in.on(0)) {
      ByteReader r(m.payload);
      (void)r.u32();
      (void)r.u64();
      if (!r.at_end()) ++phantom_bytes_seen_;
    }
    ++state_;
  }

  void randomize_state(Rng& rng) override { state_ = rng.next_u64(); }
  ClockValue clock() const override { return state_ % 4; }
  ClockValue modulus() const override { return 4; }
  std::uint32_t channel_count() const override { return 2; }

  ProtocolEnv env_;
  std::uint64_t state_ = 0;
  std::vector<NodeId> last_senders_;
  std::uint32_t last_payload_count_ = 0;
  std::uint32_t phantom_bytes_seen_ = 0;
};

ProtocolFactory echo_factory() {
  return [](const ProtocolEnv& env, Rng) {
    return std::make_unique<EchoProtocol>(env);
  };
}

EngineConfig basic_config(std::uint32_t n, std::uint32_t f_actual) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f_actual;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f_actual);
  cfg.faults.randomize_genesis = false;
  return cfg;
}

TEST(Outbox, BroadcastReachesAllIncludingSelf) {
  Outbox out(2, 5);
  out.broadcast(1, {0xaa});
  ASSERT_EQ(out.messages().size(), 5u);
  for (NodeId to = 0; to < 5; ++to) {
    EXPECT_EQ(out.messages()[to].to, to);
    EXPECT_EQ(out.messages()[to].from, 2u);
    EXPECT_EQ(out.messages()[to].channel, 1);
  }
}

TEST(Outbox, SendTargetValidated) {
  Outbox out(0, 3);
  EXPECT_THROW(out.send(3, 0, {}), contract_error);
}

TEST(Inbox, RoutesByChannelAndDropsUnknown) {
  Inbox in(4, 2);
  in.deliver({0, 1, 0, {1}});
  in.deliver({0, 1, 1, {2}});
  in.deliver({0, 1, 7, {3}});  // out-of-range channel: dropped
  EXPECT_EQ(in.on(0).size(), 1u);
  EXPECT_EQ(in.on(1).size(), 1u);
  EXPECT_TRUE(in.on(7).empty());
}

TEST(Inbox, OrderedBySenderIdRegardlessOfArrival) {
  Inbox in(4, 1);
  in.deliver({2, 0, 0, {0x22}});
  in.deliver({3, 0, 0, {0x33}});
  in.deliver({0, 0, 0, {0x00}});  // low-id sender arriving last (e.g. faulty)
  in.deliver({2, 0, 0, {0x99}});  // duplicate: keeps arrival order within 2
  const auto msgs = in.on(0);
  ASSERT_EQ(msgs.size(), 4u);
  EXPECT_EQ(msgs[0].from, 0u);
  EXPECT_EQ(msgs[1].from, 2u);
  EXPECT_EQ(msgs[1].payload[0], 0x22);
  EXPECT_EQ(msgs[2].from, 2u);
  EXPECT_EQ(msgs[2].payload[0], 0x99);
  EXPECT_EQ(msgs[3].from, 3u);
}

TEST(Inbox, DeliverAfterReadReopensTheBeat) {
  Inbox in(3, 1);
  in.deliver({1, 0, 0, {0x11}});
  EXPECT_EQ(in.on(0).size(), 1u);  // forces the lazy seal
  in.deliver({0, 0, 0, {0x01}});
  const auto msgs = in.on(0);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].from, 0u);  // still canonical after the re-open
  EXPECT_EQ(msgs[1].from, 1u);
}

TEST(Inbox, ClearKeepsWorking) {
  Inbox in(2, 2);
  in.deliver({0, 1, 0, {0xaa}});
  EXPECT_EQ(in.on(0).size(), 1u);
  in.clear();
  EXPECT_TRUE(in.on(0).empty());
  EXPECT_EQ(in.first_per_sender(0)[0], nullptr);
  in.deliver({1, 1, 1, {0xbb}});
  EXPECT_TRUE(in.on(0).empty());
  ASSERT_EQ(in.on(1).size(), 1u);
  EXPECT_EQ(in.on(1)[0].payload[0], 0xbb);
}

TEST(Inbox, FirstPerSenderDeduplicates) {
  Inbox in(3, 1);
  in.deliver({1, 0, 0, {0xaa}});
  in.deliver({1, 0, 0, {0xbb}});  // duplicate flood from node 1
  in.deliver({2, 0, 0, {0xcc}});
  const auto per = in.first_per_sender(0);
  ASSERT_EQ(per.size(), 3u);
  EXPECT_EQ(per[0], nullptr);
  ASSERT_NE(per[1], nullptr);
  EXPECT_EQ((*per[1])[0], 0xaa);  // first wins, deterministically
  ASSERT_NE(per[2], nullptr);
  EXPECT_EQ((*per[2])[0], 0xcc);
}

TEST(Outbox, BroadcastSharesOnePayloadBuffer) {
  // Copy-once fabric: all n messages of a broadcast alias the same pooled
  // slot (one encode, one copy), while wire-byte accounting still counts
  // n x payload-size.
  Outbox out(1, 4);
  out.broadcast(0, {1, 2, 3});
  ASSERT_EQ(out.messages().size(), 4u);
  const Bytes* first = &out.messages()[0].payload.bytes();
  for (const Message& m : out.messages()) {
    EXPECT_TRUE(m.payload.shares_with(out.messages()[0].payload));
    EXPECT_EQ(&m.payload.bytes(), first);
    EXPECT_EQ(m.payload.size(), 3u);
  }
  EXPECT_EQ(out.sent_messages(), 4u);
  EXPECT_EQ(out.sent_bytes(), 12u);  // n x B, not B
  // Point-to-point sends get private buffers.
  out.send(2, 0, {9});
  EXPECT_FALSE(
      out.messages()[4].payload.shares_with(out.messages()[0].payload));
}

TEST(SharedBytes, MutationRequiresUniqueOwnership) {
  BytesPool pool;
  SharedBytes a = pool.acquire();
  a.mutable_bytes().assign({1, 2});
  SharedBytes b = a;  // aliased: readers may hold the buffer
  EXPECT_THROW(a.mutable_bytes(), contract_error);
  b.reset();
  EXPECT_EQ(a.mutable_bytes().size(), 2u);  // unique again
}

TEST(SharedBytes, LastHandleRecyclesIntoThePool) {
  BytesPool pool;
  {
    SharedBytes a = pool.acquire();
    a.mutable_bytes().assign(64, 0xab);
    SharedBytes b = a;
    a.reset();
    EXPECT_EQ(pool.free_count(), 0u);  // b still holds the slot
    EXPECT_EQ(b.size(), 64u);
  }
  EXPECT_EQ(pool.free_count(), 1u);
  // Reacquiring hands back an empty buffer reusing the slot.
  SharedBytes c = pool.acquire();
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_TRUE(c.empty());
}

TEST(Inbox, ViewsStayValidUntilClear) {
  // Payload views borrow from the shared slots; later deliver() calls
  // re-bucket the indices but never move payload bytes, so pointers taken
  // from one read remain valid until clear().
  Inbox in(4, 2);
  in.deliver({1, 0, 0, {0x11}});
  in.deliver({2, 0, 0, {0x22}});
  const auto per = in.first_per_sender(0);
  const Bytes* p1 = per[1];
  const Bytes* p2 = per[2];
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  in.deliver({0, 0, 1, {0x33}});  // invalidates the view's index structure
  (void)in.on(1);                 // force a re-seal
  EXPECT_EQ((*p1)[0], 0x11);      // ...but the borrowed bytes still stand
  EXPECT_EQ((*p2)[0], 0x22);
  // After clear() the old pointers are dead; fresh reads see fresh state.
  in.clear();
  EXPECT_EQ(in.first_per_sender(0)[1], nullptr);
  in.deliver({1, 0, 0, {0x44}});
  ASSERT_NE(in.first_per_sender(0)[1], nullptr);
  EXPECT_EQ((*in.first_per_sender(0)[1])[0], 0x44);
}

TEST(Engine, AllCorrectMessagesDelivered) {
  auto eng = Engine(basic_config(5, 0), echo_factory(), nullptr);
  eng.run_beat();
  for (NodeId id : eng.correct_ids()) {
    const auto& p = dynamic_cast<const EchoProtocol&>(eng.node(id));
    EXPECT_EQ(p.last_payload_count_, 5u);
  }
}

TEST(Engine, FaultyNodesHostNoProtocol) {
  auto eng = Engine(basic_config(4, 1), echo_factory(),
                    make_silent_adversary());
  EXPECT_EQ(eng.correct_ids().size(), 3u);
  EXPECT_TRUE(eng.is_faulty(3));
  EXPECT_THROW(eng.node(3), contract_error);
}

TEST(Engine, SilentAdversaryMeansFewerMessages) {
  auto eng = Engine(basic_config(4, 1), echo_factory(),
                    make_silent_adversary());
  eng.run_beat();
  for (NodeId id : eng.correct_ids()) {
    const auto& p = dynamic_cast<const EchoProtocol&>(eng.node(id));
    EXPECT_EQ(p.last_payload_count_, 3u);  // only the 3 correct senders
  }
}

// An adversary that tries to forge a correct sender's identity.
class ForgingAdversary final : public Adversary {
 public:
  void act(AdversaryContext& ctx) override {
    ctx.send(/*from=*/0, /*to=*/1, 0, {0x99});  // node 0 is correct
  }
};

TEST(Engine, SenderIdentityUnforgeable) {
  auto eng = Engine(basic_config(4, 1), echo_factory(),
                    std::make_unique<ForgingAdversary>());
  EXPECT_THROW(eng.run_beat(), contract_error);
}

// Records what the adversary observes; sends one message per faulty node.
class ObservingAdversary final : public Adversary {
 public:
  void act(AdversaryContext& ctx) override {
    observed_per_beat.push_back(ctx.observed().size());
    for (const Message& m : ctx.observed()) {
      // Rushing view contains only messages addressed to faulty nodes.
      bool to_faulty = false;
      for (NodeId fid : ctx.faulty()) to_faulty |= (m.to == fid);
      EXPECT_TRUE(to_faulty);
    }
    for (NodeId from : ctx.faulty()) ctx.broadcast(from, 0, {0x01});
  }
  std::vector<std::size_t> observed_per_beat;
};

TEST(Engine, AdversaryObservesExactlyTrafficToFaultyNodes) {
  auto adv = std::make_unique<ObservingAdversary>();
  auto* adv_raw = adv.get();
  auto eng = Engine(basic_config(5, 2), echo_factory(), std::move(adv));
  eng.run_beat();
  // 3 correct nodes broadcast to everyone -> 3 messages to each of the 2
  // faulty nodes.
  ASSERT_EQ(adv_raw->observed_per_beat.size(), 1u);
  EXPECT_EQ(adv_raw->observed_per_beat[0], 6u);
}

TEST(Engine, AdversaryMessagesAreDelivered) {
  auto eng = Engine(basic_config(4, 1), echo_factory(),
                    std::make_unique<ObservingAdversary>());
  eng.run_beat();
  const auto& p = dynamic_cast<const EchoProtocol&>(eng.node(0));
  EXPECT_EQ(p.last_payload_count_, 4u);  // 3 correct + 1 adversary
}

// Regression for the ordering-contract violation: adversary messages used
// to be appended after all correct messages, so a low-id faulty sender
// sorted after high-id correct senders in Inbox::on().
TEST(Engine, LowIdFaultySenderSortsFirst) {
  EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.faulty = {0};  // the *lowest* id is Byzantine
  cfg.faults.randomize_genesis = false;
  auto eng = Engine(cfg, echo_factory(),
                    std::make_unique<ObservingAdversary>());
  eng.run_beat();
  const auto& p = dynamic_cast<const EchoProtocol&>(eng.node(1));
  // Channel 0 carries the three correct broadcasts plus the adversary's
  // message from node 0, canonically ordered by sender id.
  EXPECT_EQ(p.last_senders_, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Engine, ScheduledCorruptionFires) {
  EngineConfig cfg = basic_config(4, 0);
  cfg.faults.corruptions[2] = {1};
  auto eng = Engine(cfg, echo_factory(), nullptr);
  eng.run_beats(2);
  const auto before = dynamic_cast<const EchoProtocol&>(eng.node(1)).state_;
  EXPECT_EQ(before, 2u);  // incremented once per beat from 0
  eng.run_beat();         // corruption fires at the start of beat 2
  const auto after = dynamic_cast<const EchoProtocol&>(eng.node(1)).state_;
  EXPECT_NE(after, 3u);  // overwhelmingly likely: random u64 + 1 != 3
}

TEST(Engine, GenesisRandomizationDesynchronizesState) {
  EngineConfig cfg = basic_config(4, 0);
  cfg.faults.randomize_genesis = true;
  auto eng = Engine(cfg, echo_factory(), nullptr);
  std::set<std::uint64_t> states;
  for (NodeId id : eng.correct_ids()) {
    states.insert(dynamic_cast<const EchoProtocol&>(eng.node(id)).state_);
  }
  EXPECT_GT(states.size(), 1u);
}

TEST(Engine, PhantomMessagesOnlyDuringFaultyPrefix) {
  EngineConfig cfg = basic_config(4, 0);
  cfg.faults.network_faulty_until = 3;
  cfg.faults.phantoms_per_beat = 5;
  auto eng = Engine(cfg, echo_factory(), nullptr);
  eng.run_beats(3);
  const auto during = eng.metrics().total().phantom_messages;
  EXPECT_EQ(during, 3u * 4u * 5u);
  eng.run_beats(3);
  EXPECT_EQ(eng.metrics().total().phantom_messages, during);  // no new ones
}

TEST(Engine, FaultyNetworkCanDropMessages) {
  EngineConfig cfg = basic_config(6, 0);
  cfg.faults.network_faulty_until = 1;
  cfg.faults.faulty_drop_prob = 1.0;  // drop everything in beat 0
  auto eng = Engine(cfg, echo_factory(), nullptr);
  eng.run_beat();
  for (NodeId id : eng.correct_ids()) {
    EXPECT_EQ(dynamic_cast<const EchoProtocol&>(eng.node(id)).last_payload_count_, 0u);
  }
  eng.run_beat();  // network healthy again
  for (NodeId id : eng.correct_ids()) {
    EXPECT_EQ(dynamic_cast<const EchoProtocol&>(eng.node(id)).last_payload_count_, 6u);
  }
}

TEST(Engine, PhantomMaxLenAtTypeMaxIsRejectedByPlanValidation) {
  EngineConfig cfg = basic_config(3, 0);
  cfg.faults.network_faulty_until = 2;
  cfg.faults.phantoms_per_beat = 1;
  // Would make the sampling bound `phantom_max_len + 1` wrap to zero if
  // the engine computed it in 32 bits; plan validation rejects it outright.
  cfg.faults.phantom_max_len = std::numeric_limits<std::uint32_t>::max();
  EXPECT_THROW(Engine(cfg, echo_factory(), nullptr), contract_error);
}

TEST(Engine, PhantomMaxLenAtSaneBoundRuns) {
  EngineConfig cfg = basic_config(3, 0);
  cfg.faults.network_faulty_until = 1;
  cfg.faults.phantoms_per_beat = 1;
  cfg.faults.phantom_max_len = FaultPlan::kMaxPhantomLen;
  auto eng = Engine(cfg, echo_factory(), nullptr);
  eng.run_beat();  // must not throw (bound is widened before the +1)
  EXPECT_EQ(eng.metrics().total().phantom_messages, 3u);
}

TEST(Engine, InvalidDropProbabilityIsRejected) {
  EngineConfig cfg = basic_config(3, 0);
  cfg.faults.faulty_drop_prob = 1.5;
  EXPECT_THROW(Engine(cfg, echo_factory(), nullptr), contract_error);
}

TEST(Convergence, RejectsZeroConfirmWindow) {
  // With confirm_window = 0, `streak >= confirm_window` holds after the
  // very first beat and convergence would be declared unconditionally.
  auto eng = Engine(basic_config(4, 0), echo_factory(), nullptr);
  ConvergenceConfig cfg;
  cfg.confirm_window = 0;
  EXPECT_THROW(measure_convergence(eng, cfg), contract_error);
}

TEST(Metrics, CountBeforeBeginBeatIsContractError) {
  Metrics m;
  EXPECT_THROW(m.count_correct(1), contract_error);
  EXPECT_THROW(m.count_adversary(1), contract_error);
  EXPECT_THROW(m.count_phantom(), contract_error);
  EXPECT_THROW(m.count_correct_bulk(2, 8), contract_error);
}

TEST(Metrics, BoundedRingKeepsRecentBeats) {
  Metrics m(2);
  m.begin_beat();
  m.count_correct(1);
  m.begin_beat();
  m.count_correct(2);
  m.begin_beat();
  m.count_correct(4);
  EXPECT_EQ(m.beats_recorded(), 3u);
  ASSERT_EQ(m.retained_count(), 2u);
  EXPECT_EQ(m.retained(0).correct_bytes, 2u);  // oldest retained = beat 1
  EXPECT_EQ(m.retained(1).correct_bytes, 4u);
  EXPECT_THROW(m.history(), contract_error);  // full history unavailable
  // Totals and means still cover the whole run.
  EXPECT_EQ(m.total().correct_bytes, 7u);
  EXPECT_DOUBLE_EQ(m.mean_correct_bytes_per_beat(), 7.0 / 3.0);
}

TEST(Engine, BoundedMetricsHistoryStopsGrowing) {
  EngineConfig cfg = basic_config(3, 0);
  cfg.metrics_history_limit = 4;
  auto eng = Engine(cfg, echo_factory(), nullptr);
  eng.run_beats(10);
  EXPECT_EQ(eng.metrics().retained_count(), 4u);
  EXPECT_EQ(eng.metrics().beats_recorded(), 10u);
  EXPECT_EQ(eng.metrics().total().correct_messages, 10u * 9u);
  // The retained window holds the most recent beats' traffic.
  EXPECT_EQ(eng.metrics().retained(3).correct_messages, 9u);
}

TEST(Metrics, EmptyHistoryMeansZero) {
  Metrics m;
  EXPECT_TRUE(m.history().empty());
  EXPECT_DOUBLE_EQ(m.mean_correct_messages_per_beat(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_correct_bytes_per_beat(), 0.0);
  EXPECT_EQ(m.total().correct_messages, 0u);
}

TEST(Metrics, CountsLandInTheCurrentBeat) {
  Metrics m;
  m.begin_beat();
  m.count_correct(10);
  m.count_correct(6);
  m.count_adversary(3);
  m.begin_beat();  // boundary: subsequent counts belong to beat 1
  m.count_correct(4);
  m.count_phantom();

  ASSERT_EQ(m.history().size(), 2u);
  EXPECT_EQ(m.history()[0].correct_messages, 2u);
  EXPECT_EQ(m.history()[0].correct_bytes, 16u);
  EXPECT_EQ(m.history()[0].adversary_messages, 1u);
  EXPECT_EQ(m.history()[0].adversary_bytes, 3u);
  EXPECT_EQ(m.history()[0].phantom_messages, 0u);
  EXPECT_EQ(m.history()[1].correct_messages, 1u);
  EXPECT_EQ(m.history()[1].correct_bytes, 4u);
  EXPECT_EQ(m.history()[1].phantom_messages, 1u);

  // Totals aggregate across the beat boundary.
  EXPECT_EQ(m.total().correct_messages, 3u);
  EXPECT_EQ(m.total().correct_bytes, 20u);
  EXPECT_EQ(m.total().adversary_messages, 1u);
  EXPECT_EQ(m.total().phantom_messages, 1u);
  EXPECT_DOUBLE_EQ(m.mean_correct_messages_per_beat(), 1.5);
  EXPECT_DOUBLE_EQ(m.mean_correct_bytes_per_beat(), 10.0);
}

TEST(Metrics, EmptyBeatStaysZeroInHistory) {
  Metrics m;
  m.begin_beat();
  m.count_correct(8);
  m.begin_beat();  // a beat in which nothing is sent
  m.begin_beat();
  m.count_correct(8);
  ASSERT_EQ(m.history().size(), 3u);
  EXPECT_EQ(m.history()[1].correct_messages, 0u);
  EXPECT_EQ(m.history()[1].correct_bytes, 0u);
  EXPECT_DOUBLE_EQ(m.mean_correct_messages_per_beat(), 2.0 / 3.0);
}

TEST(Engine, MetricsCountTraffic) {
  auto eng = Engine(basic_config(3, 0), echo_factory(), nullptr);
  eng.run_beats(4);
  // 3 nodes broadcast (3 msgs each of 12 bytes) per beat.
  EXPECT_EQ(eng.metrics().total().correct_messages, 4u * 9u);
  EXPECT_EQ(eng.metrics().total().correct_bytes, 4u * 9u * 12u);
  EXPECT_DOUBLE_EQ(eng.metrics().mean_correct_messages_per_beat(), 9.0);
  EXPECT_EQ(eng.metrics().history().size(), 4u);
}

TEST(Engine, DeterministicReplay) {
  EngineConfig cfg = basic_config(5, 1);
  cfg.seed = 77;
  cfg.faults.randomize_genesis = true;
  cfg.faults.network_faulty_until = 2;
  cfg.faults.phantoms_per_beat = 3;
  auto run = [&] {
    auto eng = Engine(cfg, echo_factory(),
                      make_random_noise_adversary(4, 16));
    eng.run_beats(10);
    std::vector<std::uint64_t> states;
    for (NodeId id : eng.correct_ids()) {
      states.push_back(dynamic_cast<const EchoProtocol&>(eng.node(id)).state_);
    }
    states.push_back(eng.metrics().total().adversary_messages);
    return states;
  };
  EXPECT_EQ(run(), run());
}

TEST(Engine, CorrectClocksExposed) {
  auto eng = Engine(basic_config(4, 1), echo_factory(),
                    make_silent_adversary());
  eng.run_beats(3);
  const auto clocks = eng.correct_clocks();
  ASSERT_EQ(clocks.size(), 3u);
  for (auto c : clocks) EXPECT_EQ(c, 3u % 4u);
}

TEST(EngineConfig, LastIdsFaultyShape) {
  const auto ids = EngineConfig::last_ids_faulty(7, 2);
  EXPECT_EQ(ids, (std::vector<NodeId>{5, 6}));
  EXPECT_TRUE(EngineConfig::last_ids_faulty(4, 0).empty());
}

}  // namespace
}  // namespace ssbft
