#include "field/primes.h"

#include "support/check.h"

namespace ssbft {

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % m);
}

std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t acc = 1 % m;
  a %= m;
  while (e != 0) {
    if (e & 1) acc = mulmod(acc, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return acc;
}

}  // namespace

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // n is odd and > 37 here.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // Sinclair's 7-witness set: exact for every 64-bit integer.
  for (std::uint64_t a : {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL,
                          9780504ULL, 1795265022ULL}) {
    std::uint64_t x = powmod(a % n, d, n);
    if (x == 0 || x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 1; i < r; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t smallest_prime_above(std::uint64_t n) {
  SSBFT_REQUIRE(n < ~std::uint64_t{0} - 512);  // never near overflow in practice
  std::uint64_t c = n + 1;
  if (c <= 2) return 2;
  if ((c & 1) == 0) ++c;
  while (!is_prime_u64(c)) c += 2;
  return c;
}

}  // namespace ssbft
