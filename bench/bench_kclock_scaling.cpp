// k-scaling experiment (Section 5): ss-Byz-Clock-Sync's constant overhead
// vs the cascade construction's growth with k.
//
// The paper: cascading 2-clocks solves 2^L-clock with log k concurrent
// sub-protocols (message overhead ~ log k) and convergence that degrades
// with k (upper levels step once per 2^i beats); ss-Byz-Clock-Sync pays a
// constant factor for ANY k. We sweep k = 4..256 and report measured
// convergence beats and correct-node messages per beat for both.
#include <iostream>

#include "bench_common.h"

using namespace ssbft;
using namespace ssbft::bench;

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  std::cout << "=== k-Clock scaling: Figure-4 algorithm vs Section-5 "
               "cascade (n = 4, f = 1, noise adversary) ===\n\n";
  AsciiTable t({"k", "algorithm", "mean beats", "p90", "converged",
                "msgs/beat"});
  for (std::uint32_t levels = 2; levels <= 8; levels += 2) {
    const ClockValue k = ClockValue{1} << levels;
    World w;
    w.n = 4;
    w.f = 1;
    w.actual = 1;
    w.k = k;
    w.attack = Attack::kNoise;

    RunnerConfig rc = runner_config(15, 60 + levels, 30000);
    rc.convergence.confirm_window = 2 * k + 8;

    auto sync_stats = run_trials(build_clock_sync(w), rc);
    t.add_row({std::to_string(k), "ss-Byz-Clock-Sync",
               fmt_double(sync_stats.mean, 1), fmt_double(sync_stats.p90, 0),
               converged_cell(sync_stats),
               fmt_double(sync_stats.mean_msgs_per_beat, 1)});

    auto casc_stats = run_trials(build_cascade(w, levels), rc);
    t.add_row({std::to_string(k), "cascade (Sec. 5)",
               casc_stats.converged ? fmt_double(casc_stats.mean, 1)
                                    : "none converged",
               fmt_double(casc_stats.p90, 0), converged_cell(casc_stats),
               fmt_double(casc_stats.mean_msgs_per_beat, 1)});
  }
  t.print(std::cout);
  std::cout << "\nexpected shape: ss-Byz-Clock-Sync roughly flat in k; "
               "cascade convergence grows with k (level i steps once per "
               "2^i beats) and its traffic grows ~ log k.\n";
  std::cout << "\nCSV follows:\n";
  t.print_csv(std::cout);
  return 0;
}
