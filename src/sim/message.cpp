#include "sim/message.h"

#include <algorithm>

#include "support/check.h"

namespace ssbft {

void Outbox::send(NodeId to, ChannelId channel, Bytes payload) {
  SSBFT_REQUIRE_MSG(to < n_, "send target out of range");
  msgs_.push_back(Message{self_, to, channel, std::move(payload)});
}

void Outbox::broadcast(ChannelId channel, const Bytes& payload) {
  for (NodeId to = 0; to < n_; ++to) {
    msgs_.push_back(Message{self_, to, channel, payload});
  }
}

Inbox::Inbox(std::uint32_t n, std::uint32_t max_channels)
    : n_(n), by_channel_(max_channels) {}

void Inbox::deliver(Message m) {
  if (m.channel >= by_channel_.size()) return;  // unknown stream: dropped
  by_channel_[m.channel].push_back(std::move(m));
}

void Inbox::clear() {
  for (auto& v : by_channel_) v.clear();
}

const std::vector<Message>& Inbox::on(ChannelId channel) const {
  if (channel >= by_channel_.size()) return overflow_discard_;
  return by_channel_[channel];
}

std::vector<const Bytes*> Inbox::first_per_sender(ChannelId channel) const {
  std::vector<const Bytes*> out(n_, nullptr);
  for (const Message& m : on(channel)) {
    if (m.from < n_ && out[m.from] == nullptr) out[m.from] = &m.payload;
  }
  return out;
}

}  // namespace ssbft
