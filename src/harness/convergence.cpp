#include "harness/convergence.h"

#include "support/check.h"

namespace ssbft {

bool clocks_agree(const Engine& engine) {
  const auto clocks = engine.correct_clocks();
  for (const ClockValue c : clocks) {
    if (c != clocks.front()) return false;
  }
  return !clocks.empty();
}

ConvergenceResult measure_convergence(Engine& engine,
                                      const ConvergenceConfig& cfg) {
  SSBFT_REQUIRE(!engine.correct_ids().empty());
  // A zero window would satisfy `streak >= confirm_window` after the very
  // first beat, declaring convergence regardless of agreement.
  SSBFT_REQUIRE_MSG(cfg.confirm_window >= 1,
                    "confirm_window must be at least 1 beat");
  const auto* first =
      dynamic_cast<const ClockProtocol*>(&engine.node(engine.correct_ids()[0]));
  SSBFT_REQUIRE_MSG(first != nullptr, "engine does not host ClockProtocols");
  const ClockValue k = first->modulus();

  ConvergenceResult res;
  std::optional<ClockValue> prev_common;
  Beat streak_start = 0;
  std::uint64_t streak = 0;

  for (std::uint64_t i = 0; i < cfg.max_beats; ++i) {
    engine.run_beat();
    ++res.beats_run;
    const Beat b = engine.beat() - 1;  // the beat just executed
    std::optional<ClockValue> common;
    if (clocks_agree(engine)) common = engine.correct_clocks().front();

    const bool continues = common.has_value() &&
                           (!prev_common.has_value() ||
                            (streak > 0 && *common == (*prev_common + 1) % k));
    if (common.has_value() && (streak == 0 || continues)) {
      if (streak == 0) streak_start = b;
      ++streak;
    } else if (common.has_value()) {
      // Synced but the increment chain broke: a fresh sync starts here.
      streak_start = b;
      streak = 1;
    } else {
      streak = 0;
    }
    prev_common = common;

    if (streak >= cfg.confirm_window) {
      res.converged = true;
      res.synced_at = streak_start;
      return res;
    }
  }
  return res;
}

}  // namespace ssbft
