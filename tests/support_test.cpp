// Unit tests for the support layer: deterministic RNG and the
// failure-tolerant byte codec (the first line of defense against
// Byzantine payloads).
#include <gtest/gtest.h>

#include <set>

#include "support/bitwords.h"
#include "support/bytes.h"
#include "support/check.h"
#include "support/rng.h"

namespace ssbft {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStability) {
  // Splits derive from the origin seed, not generator position: drawing
  // before splitting must not change the split stream.
  Rng a(7), b(7);
  (void)a.next_u64();
  (void)a.next_u64();
  Rng sa = a.split("stream");
  Rng sb = b.split("stream");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, SplitIndependenceAcrossLabels) {
  Rng root(7);
  Rng a = root.split("alpha");
  Rng b = root.split("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSplitsDiffer) {
  Rng root(9);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 50; ++i) {
    firsts.insert(root.split("node", i).next_u64());
  }
  EXPECT_EQ(firsts.size(), 50u);
}

TEST(Rng, IndexedSplitStreamsAreIndependent) {
  // Not just distinct first draws: the full streams of split(label, i) and
  // split(label, j) must not collide or shadow each other.
  Rng root(11);
  Rng a = root.split("trial", 3);
  Rng b = root.split("trial", 4);
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSplitDisjointFromLabelSplit) {
  // split("x") and split("x", i) are different streams for every i,
  // including the tempting i = 0 collision.
  Rng root(13);
  Rng plain = root.split("x");
  Rng indexed = root.split("x", 0);
  int same = 0;
  for (int i = 0; i < 128; ++i) {
    if (plain.next_u64() == indexed.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSplitStability) {
  // Indexed splits derive from the origin seed: consuming draws or making
  // other splits first must not perturb the (label, index) stream.
  Rng a(21), b(21);
  (void)a.next_u64();
  (void)a.split("other");
  (void)a.split("node", 5);
  Rng sa = a.split("node", 3);
  Rng sb = b.split("node", 3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, NextBelowIsInRangeAndCoversValues) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowOneIsZero) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroIsContractError) {
  Rng r(3);
  EXPECT_THROW(r.next_below(0), contract_error);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = r.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(r.next_bernoulli(0.0));
    EXPECT_TRUE(r.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (r.next_bernoulli(0.3)) ++hits;
  }
  const double p = static_cast<double>(hits) / trials;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Rng, BoolRoughlyFair) {
  Rng r(13);
  int ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (r.next_bool()) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.02);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.u64_vec({1, 2, 3});
  w.bytes({0x01, 0x02});
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.u64_vec(8), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.bytes(8), (Bytes{0x01, 0x02}));
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, TruncatedReadLatchesFailure) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u64(), 0u);  // past end
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.at_end());
  // Subsequent reads stay failed, never throw.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, HostileLengthPrefixRejected) {
  // A length prefix claiming 2^31 elements must not allocate.
  ByteWriter w;
  w.u32(0x80000000u);
  ByteReader r(w.data());
  const auto v = r.u64_vec(1024);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, LengthBeyondCapRejected) {
  ByteWriter w;
  w.u64_vec({1, 2, 3, 4});
  ByteReader r(w.data());
  const auto v = r.u64_vec(3);  // cap below actual length
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, LengthLongerThanBufferRejected) {
  ByteWriter w;
  w.u32(5);  // claims 5 u64s but provides none
  ByteReader r(w.data());
  const auto v = r.u64_vec(16);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, EmptyVectorRoundTrip) {
  ByteWriter w;
  w.u64_vec({});
  ByteReader r(w.data());
  EXPECT_TRUE(r.u64_vec(4).empty());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, AtEndRequiresFullConsumption) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.at_end());  // one byte left over: trailing garbage
}

TEST(Bytes, U64VecIntoMatchesAllocatingDecode) {
  ByteWriter w;
  w.u64_vec({5, 6, 7});
  std::uint64_t scratch[8] = {0};
  ByteReader r(w.data());
  EXPECT_EQ(r.u64_vec_into(scratch, 8), 3u);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(scratch[0], 5u);
  EXPECT_EQ(scratch[1], 6u);
  EXPECT_EQ(scratch[2], 7u);
}

TEST(Bytes, U64VecIntoRejectsSameInputsAsAllocatingDecode) {
  std::uint64_t scratch[4] = {0};
  {
    ByteWriter w;
    w.u32(0x80000000u);  // hostile length prefix
    ByteReader r(w.data());
    EXPECT_EQ(r.u64_vec_into(scratch, 4), 0u);
    EXPECT_FALSE(r.ok());
  }
  {
    ByteWriter w;
    w.u64_vec({1, 2, 3, 4});  // above cap
    ByteReader r(w.data());
    EXPECT_EQ(r.u64_vec_into(scratch, 3), 0u);
    EXPECT_FALSE(r.ok());
  }
  {
    ByteWriter w;
    w.u32(5);  // claims 5 u64s, provides none
    ByteReader r(w.data());
    EXPECT_EQ(r.u64_vec_into(scratch, 16), 0u);
    EXPECT_FALSE(r.ok());
  }
}

TEST(Bytes, U64VecFlatOverloadMatchesVectorOverload) {
  const std::vector<std::uint64_t> v{9, 8, 7, 6};
  ByteWriter a, b;
  a.u64_vec(v);
  b.u64_vec(v.data(), v.size());
  EXPECT_EQ(a.data(), b.data());
}

TEST(Bitwords, GetSetRoundTripAcrossWordBoundaries) {
  std::uint64_t words[3] = {0, 0, 0};
  ASSERT_EQ(bitword_count(130), 3u);
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                        std::size_t{64}, std::size_t{65}, std::size_t{127},
                        std::size_t{128}, std::size_t{129}}) {
    EXPECT_FALSE(bitword_get(words, i));
    bitword_set(words, i, true);
    EXPECT_TRUE(bitword_get(words, i)) << i;
  }
  bitword_set(words, 64, false);
  EXPECT_FALSE(bitword_get(words, 64));
  EXPECT_TRUE(bitword_get(words, 63));
  EXPECT_TRUE(bitword_get(words, 65));
  bitword_clear(words, 130);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bitword_get(words, i));
}

TEST(Bitwords, LayoutMatchesWireFormat) {
  // Bit i in word i/64 at position i%64 — the vote-mask wire layout.
  std::uint64_t words[2] = {0, 0};
  bitword_set(words, 0, true);
  bitword_set(words, 5, true);
  bitword_set(words, 64, true);
  EXPECT_EQ(words[0], (std::uint64_t{1} << 0) | (std::uint64_t{1} << 5));
  EXPECT_EQ(words[1], std::uint64_t{1});
}

TEST(Bytes, HexFormatting) {
  EXPECT_EQ(to_hex({0x00, 0xff, 0x1a}), "00ff1a");
  EXPECT_EQ(to_hex({}), "");
}

TEST(Check, MacrosThrowContractErrors) {
  EXPECT_THROW(SSBFT_CHECK(false), contract_error);
  EXPECT_THROW(SSBFT_REQUIRE(1 == 2), contract_error);
  EXPECT_NO_THROW(SSBFT_CHECK(true));
  try {
    SSBFT_REQUIRE_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace ssbft
