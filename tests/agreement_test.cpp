// Tests for the one-shot Byzantine agreement substrate: Phase-King
// (f < n/3), Phase-Queen (f < n/4) and the Turpin-Coan multivalued
// reduction — validity and agreement over the real engine with rushing
// adversaries.
#include <gtest/gtest.h>

#include <set>

#include "adversary/adversaries.h"
#include "agreement/phase_king.h"
#include "agreement/phase_queen.h"
#include "agreement/turpin_coan.h"
#include "helpers.h"
#include "sim/engine.h"

namespace ssbft {
namespace {

using testing::OneShotBaProtocol;

// Runs one BA instance to completion; returns the correct nodes' outputs.
std::vector<std::uint64_t> run_ba(
    const BaSpec& spec, std::uint32_t n, std::uint32_t f,
    const std::vector<std::uint64_t>& inputs, std::uint64_t seed,
    std::unique_ptr<Adversary> adversary) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  cfg.faults.randomize_genesis = false;  // one-shot BA is not the SS layer
  auto factory = [&](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<OneShotBaProtocol>(env, spec, inputs[env.self],
                                               rng);
  };
  Engine eng(cfg, factory, std::move(adversary));
  const int rounds = spec.rounds_for(f);
  eng.run_beats(static_cast<std::uint64_t>(rounds));
  std::vector<std::uint64_t> outs;
  for (NodeId id : eng.correct_ids()) {
    const auto& p = dynamic_cast<const OneShotBaProtocol&>(eng.node(id));
    EXPECT_TRUE(p.done());
    outs.push_back(p.output());
  }
  return outs;
}

struct BaCase {
  std::string name;
  std::uint32_t n;
  std::uint32_t f;
};

BaSpec spec_by_name(const std::string& name) {
  if (name == "king") return phase_king_spec();
  if (name == "queen") return phase_queen_spec();
  if (name == "tc_king") return turpin_coan_spec(phase_king_spec());
  return turpin_coan_spec(phase_queen_spec());
}

class BaValidityTest : public ::testing::TestWithParam<BaCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaValidityTest,
    ::testing::Values(BaCase{"king", 4, 1}, BaCase{"king", 7, 2},
                      BaCase{"king", 10, 3}, BaCase{"queen", 5, 1},
                      BaCase{"queen", 9, 2}, BaCase{"tc_king", 4, 1},
                      BaCase{"tc_king", 7, 2}, BaCase{"tc_queen", 5, 1},
                      BaCase{"tc_queen", 9, 2}),
    [](const auto& info) {
      return info.param.name + "_n" + std::to_string(info.param.n) + "_f" +
             std::to_string(info.param.f);
    });

TEST_P(BaValidityTest, UnanimousInputIsDecided) {
  const auto& p = GetParam();
  const BaSpec spec = spec_by_name(p.name);
  const bool multivalued = p.name.rfind("tc_", 0) == 0;
  for (std::uint64_t v : std::vector<std::uint64_t>{0, 1, multivalued ? 42u : 1u}) {
    std::vector<std::uint64_t> inputs(p.n, v);
    auto outs = run_ba(spec, p.n, p.f, inputs, 100 + v,
                       p.f > 0 ? make_random_noise_adversary(8, 32) : nullptr);
    for (auto o : outs) EXPECT_EQ(o, v);
  }
}

TEST_P(BaValidityTest, AgreementUnderMixedInputsAndNoise) {
  const auto& p = GetParam();
  const BaSpec spec = spec_by_name(p.name);
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::uint64_t> inputs(p.n);
    for (auto& v : inputs) {
      v = p.name.rfind("tc_", 0) == 0 ? rng.next_below(5) : rng.next_below(2);
    }
    auto outs = run_ba(spec, p.n, p.f, inputs,
                       1000 + static_cast<std::uint64_t>(trial),
                       p.f > 0 ? make_random_noise_adversary(8, 32) : nullptr);
    std::set<std::uint64_t> distinct(outs.begin(), outs.end());
    EXPECT_EQ(distinct.size(), 1u) << p.name << " trial " << trial;
  }
}

TEST(PhaseKing, AgreementUnderSplitAdversary) {
  // Equivocating 0/1 on the first universal-exchange channel.
  ByteWriter a, b;
  a.u8(0);
  b.u8(1);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    std::vector<std::uint64_t> inputs = {0, 1, 0, 1, 1, 0, 1};
    auto outs = run_ba(phase_king_spec(), 7, 2, inputs, 2000 + seed,
                       make_split_value_adversary(0, a.data(), b.data()));
    std::set<std::uint64_t> distinct(outs.begin(), outs.end());
    EXPECT_EQ(distinct.size(), 1u);
    EXPECT_LE(*distinct.begin(), 1u);
  }
}

TEST(PhaseQueen, AgreementAtExactResiliencyBound) {
  // n = 4f + 1 is the tightest legal configuration.
  std::vector<std::uint64_t> inputs = {1, 0, 1, 0, 1};
  auto outs = run_ba(phase_queen_spec(), 5, 1, inputs, 3000,
                     make_random_noise_adversary(8, 32));
  std::set<std::uint64_t> distinct(outs.begin(), outs.end());
  EXPECT_EQ(distinct.size(), 1u);
}

TEST(TurpinCoan, MultivaluedValidityWithLargeValues) {
  std::vector<std::uint64_t> inputs(7, 0xdeadbeefcafeULL);
  auto outs = run_ba(turpin_coan_spec(phase_king_spec()), 7, 2, inputs, 4000,
                     make_random_noise_adversary(8, 32));
  for (auto o : outs) EXPECT_EQ(o, 0xdeadbeefcafeULL);
}

TEST(TurpinCoan, NoQuorumFallsBackToDefault) {
  // All-distinct inputs: no value can win; every correct node must output
  // the same (default or adopted) value — agreement is what matters.
  std::vector<std::uint64_t> inputs = {10, 20, 30, 40, 50, 60, 70};
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto outs = run_ba(turpin_coan_spec(phase_king_spec()), 7, 2, inputs,
                       5000 + seed, make_random_noise_adversary(8, 32));
    std::set<std::uint64_t> distinct(outs.begin(), outs.end());
    EXPECT_EQ(distinct.size(), 1u);
  }
}

TEST(BaSpec, RoundBudgets) {
  EXPECT_EQ(phase_king_spec().rounds_for(2), 9);
  EXPECT_EQ(phase_queen_spec().rounds_for(2), 6);
  EXPECT_EQ(turpin_coan_spec(phase_king_spec()).rounds_for(2), 11);
  EXPECT_EQ(turpin_coan_spec(phase_queen_spec()).rounds_for(1), 6);
}

}  // namespace
}  // namespace ssbft
