// Coin-quality experiment (Figure 1 / Definitions 2.6-2.8 / Theorem 1):
// measures, for the ss-Byz-Coin-Flip pipeline over the FM-style GVSS coin,
//
//   * commonality: fraction of beats on which ALL correct nodes output the
//     same bit (>= p0 + p1 by Definition 2.7);
//   * the split into measured p0 (all-zero beats) and p1 (all-one beats);
//   * stabilization: beats until the first common bit after a cold
//     (corrupted-genesis) start — Lemma 1 predicts Delta_A = 4;
//
// per adversary, including the dedicated GVSS attacker that probes the
// simplified recovery rule's divergence gap (see fm_coin.h). The oracle
// coin is included as the calibrated reference.
#include <iostream>

#include "bench_common.h"
#include "coin/coin_interface.h"
#include "coin/fm_coin.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

// Host protocol recording the per-beat bit stream (bench-local copy of the
// test helper, kept here so bench/ is self-contained).
class CoinHost final : public Protocol {
 public:
  CoinHost(const ProtocolEnv& env, const CoinSpec& spec, Rng rng)
      : channels_(spec.channels == 0 ? 1 : spec.channels),
        coin_(spec.make(env, 0, rng)) {}
  void send_phase(Outbox& out) override { coin_->send_phase(out); }
  void receive_phase(const Inbox& in) override {
    bits_.push_back(coin_->receive_phase(in));
  }
  void randomize_state(Rng& rng) override { coin_->randomize_state(rng); }
  std::uint32_t channel_count() const override { return channels_; }
  const std::vector<bool>& bits() const { return bits_; }

 private:
  std::uint32_t channels_;
  std::unique_ptr<CoinComponent> coin_;
  std::vector<bool> bits_;
};

struct CoinStats {
  double common = 0, p0 = 0, p1 = 0;
  std::uint64_t first_common = 0;
};

CoinStats measure(std::uint32_t n, std::uint32_t f, bool oracle,
                  Attack attack, std::uint64_t beats, std::uint64_t seed) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  std::shared_ptr<OracleBeacon> beacon;
  CoinSpec spec;
  if (oracle) {
    beacon = std::make_shared<OracleBeacon>(n, OracleCoinParams{0.45, 0.45},
                                            Rng(seed).split("beacon"));
    spec = oracle_coin_spec(beacon);
  } else {
    spec = fm_coin_spec();
  }
  auto factory = [&spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<CoinHost>(env, spec, rng);
  };
  Engine eng(cfg, factory, f == 0 ? nullptr : make_attack(attack, 2, 0));
  if (beacon) eng.add_listener(beacon.get());
  eng.run_beats(beats);

  std::vector<const CoinHost*> hosts;
  for (NodeId id : eng.correct_ids()) {
    hosts.push_back(dynamic_cast<const CoinHost*>(&eng.node(id)));
  }
  CoinStats out;
  bool found_first = false;
  std::uint64_t common = 0, zeros = 0, ones = 0, counted = 0;
  const std::size_t warmup = FmCoinInstance::kRounds;
  for (std::size_t i = 0; i < beats; ++i) {
    bool all_same = true;
    for (const auto* h : hosts) {
      if (h->bits()[i] != hosts[0]->bits()[i]) all_same = false;
    }
    if (all_same && !found_first) {
      found_first = true;
      out.first_common = i;
    }
    if (i < warmup) continue;
    ++counted;
    if (all_same) {
      ++common;
      (hosts[0]->bits()[i] ? ones : zeros)++;
    }
  }
  out.common = static_cast<double>(common) / static_cast<double>(counted);
  out.p0 = static_cast<double>(zeros) / static_cast<double>(counted);
  out.p1 = static_cast<double>(ones) / static_cast<double>(counted);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  if (options().trials != 0 || options().jobs != 0) {
    std::cerr << "note: this bench measures fixed single-engine bit streams; "
                 "--trials/--jobs have no effect here (--seed applies)\n";
  }
  std::cout << "=== Coin quality: ss-Byz-Coin-Flip over the FM-style GVSS "
               "coin (Theorem 1) ===\n"
            << "columns: commonality = measured p0+p1 (+accidental), split "
               "p0/p1, first common bit (Lemma 1: <= Delta_A = 4 after "
               "corrupted genesis)\n\n";

  AsciiTable t({"coin", "n", "f", "adversary", "common", "p0", "p1",
                "first common beat"});
  struct Row {
    bool oracle;
    std::uint32_t n, f;
    Attack attack;
    const char* name;
  };
  const Row rows[] = {
      {false, 4, 0, Attack::kSilent, "(none)"},
      {false, 4, 1, Attack::kSilent, "silent"},
      {false, 4, 1, Attack::kNoise, "noise"},
      {false, 4, 1, Attack::kCoinAttack, "gvss-attacker"},
      {false, 7, 2, Attack::kSilent, "silent"},
      {false, 7, 2, Attack::kNoise, "noise"},
      {false, 7, 2, Attack::kCoinAttack, "gvss-attacker"},
      {false, 10, 3, Attack::kCoinAttack, "gvss-attacker"},
      {true, 7, 2, Attack::kSilent, "silent (oracle ref)"},
  };
  for (const auto& r : rows) {
    const std::uint64_t beats = r.n >= 10 ? 300 : 800;
    auto s =
        measure(r.n, r.f, r.oracle, r.attack, beats, shifted_seed(42) + r.n);
    t.add_row({r.oracle ? "oracle(0.45/0.45)" : "fm-gvss",
               std::to_string(r.n), std::to_string(r.f), r.name,
               fmt_double(s.common, 3), fmt_double(s.p0, 3),
               fmt_double(s.p1, 3), std::to_string(s.first_common)});
  }
  t.print(std::cout);
  std::cout << "\nCSV follows:\n";
  t.print_csv(std::cout);
  return 0;
}
