// Seed-driven fault-space search: the chaos campaign generator behind
// `ssbft_bench soak`.
//
// The registry (harness/scenario.h) samples five hand-picked points of
// the FaultPlan x DeliverySpec space; a campaign walks the rest of it.
// FaultPlanGenerator turns one (campaign_seed, unit_index) pair into an
// arbitrary-but-valid fault assignment — faulty-set placement, transient
// corruption schedule, drop/phantom network axes, and a composed delivery
// adversary (eclipse / partition / targeted delay / reorder with
// randomized victims, splits and heal beats) — inside a declared
// ChaosBudget envelope, so every sampled plan is `validate()`-clean,
// eventually quiescent (all faults scheduled within the horizon, so a
// censored-but-clean run is meaningful), and exactly reproducible: the
// sampler is a pure function of (campaign_seed, unit_index, scenario
// shape), built on split-stable named Rng streams (support/rng.h).
//
// encode_chaos_unit / chaos_unit_digest give each sampled unit a
// canonical text form and a SHA-256 digest — the identity a violation's
// one-line repro carries and the byte-identity tests pin.
// chaos_reductions enumerates the strictly-weaker candidate plans the
// `--minimize` delta-debugger re-runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_plan.h"
#include "support/rng.h"
#include "support/types.h"

namespace ssbft {

// Envelope the sampler stays inside. Every bound is inclusive.
struct ChaosBudget {
  // Latest beat any sampled fault may be scheduled at or heal by
  // (corruption beats, network_faulty_until, delivery heal_at). 0 =
  // derive half the unit's beat budget, leaving the other half for
  // re-convergence.
  std::uint64_t horizon = 0;
  // Corruption schedule: number of corruption beats, nodes per beat.
  std::uint32_t max_corruption_beats = 3;
  std::uint32_t max_corruption_nodes = 2;
  // Faulty-network axes (phantom injection, message loss).
  std::uint32_t max_phantoms_per_beat = 6;
  std::uint32_t max_phantom_len = 256;
  double max_drop_prob = 0.8;
  // Targeted-delay hold, in beats.
  std::uint32_t max_delay_beats = 6;

  void validate() const {
    SSBFT_REQUIRE_MSG(max_drop_prob >= 0.0 && max_drop_prob <= 1.0,
                      "chaos max_drop_prob must be a probability");
    SSBFT_REQUIRE_MSG(max_phantom_len >= 1 &&
                          max_phantom_len <= FaultPlan::kMaxPhantomLen,
                      "chaos max_phantom_len " << max_phantom_len
                                               << " out of [1, "
                                               << FaultPlan::kMaxPhantomLen
                                               << "]");
    SSBFT_REQUIRE_MSG(max_delay_beats >= 1 &&
                          max_delay_beats <= DeliverySpec::kMaxDelayBeats,
                      "chaos max_delay_beats " << max_delay_beats
                                               << " out of [1, "
                                               << DeliverySpec::kMaxDelayBeats
                                               << "]");
    SSBFT_REQUIRE_MSG(max_corruption_nodes >= 1,
                      "chaos max_corruption_nodes must be >= 1");
  }
};

// One sampled campaign unit: everything needed to rebuild its engine —
// the registry cell it perturbs, the engine seed, the faulty-set
// placement and the full FaultPlan. The (campaign_seed, index) pair is
// the unit's reproducible identity.
struct ChaosUnit {
  std::uint64_t campaign_seed = 0;
  std::uint64_t index = 0;
  std::string scenario;  // registry cell whose world the plan perturbs
  std::uint64_t engine_seed = 0;
  std::vector<NodeId> faulty;  // sorted placement, size = world's `actual`
  FaultPlan plan;
};

class FaultPlanGenerator {
 public:
  explicit FaultPlanGenerator(std::uint64_t campaign_seed,
                              ChaosBudget budget = {})
      : campaign_seed_(campaign_seed), budget_(budget) {
    budget_.validate();
  }

  // Samples unit `index` against a world of `n` nodes with `actual`
  // faulty ones and a `max_beats` run budget. Pure: the same arguments
  // always return the same unit, and the returned plan is
  // validate()-clean against n.
  ChaosUnit make_unit(std::uint64_t index, const std::string& scenario,
                      std::uint32_t n, std::uint32_t actual,
                      std::uint64_t max_beats) const;

  const ChaosBudget& budget() const { return budget_; }
  std::uint64_t campaign_seed() const { return campaign_seed_; }

 private:
  std::uint64_t campaign_seed_;
  ChaosBudget budget_;
};

// Canonical text form of a unit ("ssbft-chaos-v1", one axis per line).
// Doubles round-trip through hexfloat, so the encoding — and therefore
// the digest — is byte-identical across platforms and re-draws.
std::string encode_chaos_unit(const ChaosUnit& unit);

// SHA-256 (64 hex chars) of encode_chaos_unit — the plan identity in
// repro lines.
std::string chaos_unit_digest(const ChaosUnit& unit);

// Strictly-weaker candidate plans for delta-debugging a violating unit:
// whole axes dropped (delivery -> synchronous, network faults cleared,
// corruption schedule cleared), individual corruption beats removed,
// corruption node lists and victim sets halved, horizons halved, delay
// reduced. Ordered boldest-cut first; every candidate validates against
// any n the input validated against.
std::vector<FaultPlan> chaos_reductions(const FaultPlan& plan);

}  // namespace ssbft
