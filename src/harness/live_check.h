// Streaming invariant checking: the `ssbft_check` verdicts computed
// incrementally, one beat at a time, in bounded memory.
//
// InvariantCore is the single implementation of the four trace invariants
// (convergence, k-clock closure, re-convergence bound, coin agreement).
// The offline checker (harness/checker.cpp) feeds it a merged trace's
// records; StreamingChecker feeds it live from Engine::set_trace. Both
// paths produce byte-identical CheckResults — same verdicts, same
// violation strings — which tests/trace_test.cpp pins on a traced grid.
//
// The streaming formulation replaces the offline checker's unbounded
// coin-group list with four counters maintained relative to the current
// convergence candidate: whenever a new streak starts, the
// post-candidate counters reset, so at finish they hold exactly the
// groups the offline filter (`g.beat <= synced_at` skipped) would keep.
// Everything else is per-beat scratch whose capacity is retained across
// beats, so a green steady-state beat performs no allocation at all —
// tests/alloc_test.cpp pins a traced beat with a StreamingChecker
// attached heap-silent. Violations are the deliberately allocating
// boundary (message formatting), and at most 32 are ever retained.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "harness/checker.h"
#include "sim/trace.h"

namespace ssbft {

// The shared invariant engine. Feed records in emission order (grouped by
// beat, beats non-decreasing — the canonical order both the engine and
// the offline merge produce), then finish() once to fold the verdict.
class InvariantCore {
 public:
  // Arms the core for one run. header_confirm_window is the traced run's
  // own window (TraceMeta/TraceHeader::confirm_window); opts may override
  // it, and 12 is the fallback when both are zero.
  void reset(const CheckOptions& opts, std::uint64_t header_confirm_window);

  void feed(const TraceRecord& r);

  // Finalizes the open beat and the run-level checks. Call exactly once
  // per reset(); the returned reference stays valid until the next reset.
  const CheckResult& finish();

  const CheckResult& result() const { return res_; }

 private:
  void finalize_beat();
  void violation(std::string msg);

  CheckOptions opts_;
  std::uint64_t window_ = 12;
  CheckResult res_;

  // Mirror of measure_convergence's streak detector (harness/convergence.h)
  // plus a closure mode it never needs (it stops at confirmation).
  enum class Mode { kSearching, kConverged };
  Mode mode_ = Mode::kSearching;
  std::optional<ClockValue> prev_common_;
  std::uint64_t streak_ = 0;
  Beat streak_start_ = 0;
  ClockValue k_ = 0;

  // Coin-agreement counters. `total_*` cover every >=2-node coin group in
  // the run (the censored-trace report); `after_*` cover only groups past
  // the current candidate streak's start and reset whenever a new streak
  // begins, so on a converged finish they equal the offline checker's
  // post-synced_at fold.
  std::uint64_t total_groups_ = 0, total_equal_ = 0;
  std::uint64_t after_groups_ = 0, after_equal_ = 0;

  // Per-beat scratch: one (stream, count, first bit, still-all-equal)
  // accumulator per coin stream seen this beat. clear() keeps capacity.
  struct CoinAcc {
    std::uint32_t stream;
    std::uint32_t count;
    bool first_bit;
    bool equal;
  };
  std::vector<CoinAcc> coin_acc_;

  bool beat_open_ = false;
  Beat cur_beat_ = 0;
  bool corrupt_here_ = false;
  bool have_clocks_ = false;
  bool clocks_common_ = true;
  ClockValue common_value_ = 0;
  bool finished_ = false;
};

// TraceSink adapter: attach via Engine::set_trace and the run is checked
// as it executes — no trace file, no post-processing, bounded memory.
// begin_trace re-arms the core from the run's TraceMeta; call finish()
// (or result() after finish()) when the run's beats are done.
class StreamingChecker final : public TraceSink {
 public:
  explicit StreamingChecker(CheckOptions opts = {}) : opts_(opts) {
    core_.reset(opts_, 0);
  }

  void begin_trace(const TraceMeta& meta) override {
    core_.reset(opts_, meta.confirm_window);
    finished_ = false;
  }

  void write(const TraceRecord* records, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) core_.feed(records[i]);
  }

  // Idempotent: the first call folds the verdict, later calls return it.
  const CheckResult& finish() {
    if (!finished_) {
      core_.finish();
      finished_ = true;
    }
    return core_.result();
  }

 private:
  CheckOptions opts_;
  InvariantCore core_;
  bool finished_ = false;
};

}  // namespace ssbft
