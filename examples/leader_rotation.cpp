// A downstream application of the k-Clock: Byzantine-tolerant round-robin
// leader rotation (TDMA-style slot ownership).
//
// The paper's intro argues clock synchronization is the substrate most
// distributed tasks need. Here each of the n nodes owns the send slot
// `clock mod n`; once ss-Byz-Clock-Sync converges, all correct nodes agree
// on the slot owner at every beat — even with a Byzantine member and even
// after a transient fault wipes a node's memory. A wrong local clock shows
// up as slot collisions, which we count.
//
//   $ ./leader_rotation [seed]
#include <iostream>
#include <string>
#include <vector>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "core/clock_sync.h"
#include "harness/convergence.h"

using namespace ssbft;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 5;
  const std::uint32_t n = 4, f = 1;
  const ClockValue k = 4 * n;  // slot schedule wraps every 4 rotations

  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  CoinSpec coin = fm_coin_spec();
  auto factory = [coin, k](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, k, coin, rng);
  };
  Engine engine(cfg, factory, make_clock_skew_adversary(k, 0));

  auto owners = [&] {
    std::vector<NodeId> v;
    for (ClockValue c : engine.correct_clocks()) {
      v.push_back(static_cast<NodeId>(c % n));
    }
    return v;
  };

  std::cout << "leader rotation over ss-Byz-Clock-Sync: n=" << n
            << ", f=" << f << ", slot = clock mod n\n\n"
            << "pre-convergence (nodes disagree on the slot owner):\n";
  for (int i = 0; i < 4; ++i) {
    engine.run_beat();
    std::cout << "  beat " << i << " slot votes:";
    for (NodeId o : owners()) std::cout << " node" << o;
    std::cout << "\n";
  }

  ConvergenceConfig cc;
  cc.max_beats = 5000;
  const auto res = measure_convergence(engine, cc);
  if (!res.converged) {
    std::cout << "did not converge; try another seed\n";
    return 1;
  }

  std::cout << "\nconverged (beat " << res.synced_at
            << ") — rotation is now unanimous:\n";
  std::uint64_t collisions = 0, beats = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t s = 0; s < n; ++s) {
      engine.run_beat();
      ++beats;
      const auto v = owners();
      bool unanimous = true;
      for (NodeId o : v) unanimous &= (o == v[0]);
      if (!unanimous) ++collisions;
      std::cout << "  slot owner: node" << v[0]
                << (unanimous ? "" : "  <- COLLISION") << "\n";
    }
  }
  std::cout << "\ncollisions: " << collisions << "/" << beats
            << " slots — a Byzantine member cannot steal or stall the "
               "schedule, and the schedule itself needs no coordinator.\n";
  return 0;
}
