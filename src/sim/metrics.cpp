#include "sim/metrics.h"

namespace ssbft {

void Metrics::begin_beat() { history_.emplace_back(); }

void Metrics::count_correct(std::size_t payload_bytes) {
  ++history_.back().correct_messages;
  history_.back().correct_bytes += payload_bytes;
  ++total_.correct_messages;
  total_.correct_bytes += payload_bytes;
}

void Metrics::count_adversary(std::size_t payload_bytes) {
  ++history_.back().adversary_messages;
  history_.back().adversary_bytes += payload_bytes;
  ++total_.adversary_messages;
  total_.adversary_bytes += payload_bytes;
}

void Metrics::count_phantom() {
  ++history_.back().phantom_messages;
  ++total_.phantom_messages;
}

double Metrics::mean_correct_messages_per_beat() const {
  if (history_.empty()) return 0.0;
  return static_cast<double>(total_.correct_messages) /
         static_cast<double>(history_.size());
}

double Metrics::mean_correct_bytes_per_beat() const {
  if (history_.empty()) return 0.0;
  return static_cast<double>(total_.correct_bytes) /
         static_cast<double>(history_.size());
}

}  // namespace ssbft
