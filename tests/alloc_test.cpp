// Proof that the steady-state beat loop is allocation-free: global
// operator new/delete are replaced with counting versions, an engine is
// warmed up until every pooled buffer and scratch vector has reached its
// steady capacity, and then whole beats must run with a zero allocation
// delta — send phases, adversary turn, delivery, inbox bucketing, receive
// phases and metrics included.
//
// The protocol and adversary used here are deliberately allocation-free
// (reusable ByteWriters, span-based reads); protocols that decode
// variable-length vectors still allocate in their own receive logic, which
// is outside the engine-plumbing contract this test pins down.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "core/clock_sync.h"
#include "harness/live_check.h"
#include "sim/engine.h"
#include "support/bytes.h"

namespace {

// Single-threaded test: plain counters are fine.
std::size_t g_allocations = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ssbft {
namespace {

// Broadcasts fixed-size payloads on two channels; reads via spans only.
class SteadyProtocol final : public ClockProtocol {
 public:
  explicit SteadyProtocol(const ProtocolEnv& env) : env_(env) {}

  void send_phase(Outbox& out) override {
    ByteWriter& w = out.writer();
    w.u32(env_.self);
    w.u64(state_);
    out.broadcast(0, w.data());
    ByteWriter& w2 = out.writer();
    w2.u64(state_ ^ 0x9e3779b97f4a7c15ull);
    out.broadcast(1, w2.data());
  }

  void receive_phase(const Inbox& in) override {
    std::uint64_t acc = 0;
    for (ChannelId ch = 0; ch < 2; ++ch) {
      for (const Bytes* p : in.first_per_sender(ch)) {
        if (p == nullptr) continue;
        ByteReader r(*p);
        if (ch == 0) (void)r.u32();
        acc += r.u64();
      }
    }
    state_ += acc + 1;
  }

  void randomize_state(Rng& rng) override { state_ = rng.next_u64(); }
  ClockValue clock() const override { return state_ % 4; }
  ClockValue modulus() const override { return 4; }
  std::uint32_t channel_count() const override { return 2; }

 private:
  ProtocolEnv env_;
  std::uint64_t state_ = 0;
};

// Equivocates per recipient from every faulty node, via a reused writer.
class SteadyAdversary final : public Adversary {
 public:
  void act(AdversaryContext& ctx) override {
    for (NodeId from : ctx.faulty()) {
      for (NodeId to = 0; to < ctx.n(); ++to) {
        w_.clear();
        w_.u32(from);
        w_.u64(ctx.beat() * 2 + (to % 2));
        ctx.send(from, to, 0, w_.data());
      }
    }
  }

 private:
  ByteWriter w_;
};

ProtocolFactory steady_factory() {
  return [](const ProtocolEnv& env, Rng) {
    return std::make_unique<SteadyProtocol>(env);
  };
}

TEST(AllocationFreeBeat, AllCorrect) {
  EngineConfig cfg;
  cfg.n = 16;
  cfg.f = 0;
  cfg.seed = 3;
  cfg.metrics_history_limit = 8;  // unbounded history would grow per beat
  Engine eng(cfg, steady_factory(), nullptr);
  eng.run_beats(64);  // pool and scratch capacities settle
  const std::size_t before = g_allocations;
  eng.run_beats(32);
  EXPECT_EQ(g_allocations - before, 0u)
      << "steady-state run_beat() touched the heap";
}

// Equivocating sends plus a shared broadcast from every faulty node, via
// reused writers — exercises AdversaryContext::broadcast's copy-once path.
class BroadcastingAdversary final : public Adversary {
 public:
  void act(AdversaryContext& ctx) override {
    for (NodeId from : ctx.faulty()) {
      w_.clear();
      w_.u32(from);
      w_.u64(ctx.beat());
      ctx.broadcast(from, 0, w_.data());
      w_.clear();
      w_.u64(ctx.beat() * 3 + 1);
      ctx.send(from, from % ctx.n(), 1, w_.data());
    }
  }

 private:
  ByteWriter w_;
};

// The full fabric under stress: broadcasts fanning out as shared payloads,
// an adversary observing and re-broadcasting, a permanently faulty network
// dropping messages and injecting phantom payloads, and faulty recipients
// swallowing traffic — all must recycle slots through the pool with a zero
// steady-state allocation delta.
TEST(AllocationFreeBeat, BroadcastsDropsPhantomsAndFaultyRecipients) {
  EngineConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.faulty = EngineConfig::last_ids_faulty(16, 5);
  cfg.seed = 6;
  cfg.metrics_history_limit = 8;
  cfg.faults.network_faulty_until = ~std::uint64_t{0};
  cfg.faults.faulty_drop_prob = 0.2;
  cfg.faults.phantoms_per_beat = 3;
  cfg.faults.phantom_max_len = 48;
  Engine eng(cfg, steady_factory(), std::make_unique<BroadcastingAdversary>());
  eng.run_beats(64);  // slot pool, inbox buckets and phantom buffers settle
  const std::size_t before = g_allocations;
  eng.run_beats(32);
  EXPECT_EQ(g_allocations - before, 0u)
      << "steady-state beat with drops/phantoms/faulty targets touched the "
         "heap";
}

// A deferring delivery policy parks pooled payload handles across beats in
// its pending ring. Once the ring slots, the pools and the inbox buckets
// have settled, a warm beat — flush due traffic, sample drops, park the
// victims' messages, inject phantoms — must still not touch the heap.
TEST(AllocationFreeBeat, TargetedDelayDeliveryWithDropsAndPhantoms) {
  EngineConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.faulty = EngineConfig::last_ids_faulty(16, 5);
  cfg.seed = 8;
  cfg.metrics_history_limit = 8;
  cfg.faults.network_faulty_until = ~std::uint64_t{0};
  cfg.faults.faulty_drop_prob = 0.2;
  cfg.faults.phantoms_per_beat = 3;
  cfg.faults.phantom_max_len = 48;
  cfg.faults.delivery.kind = DeliveryKind::kTargetedDelay;
  cfg.faults.delivery.victims = {0, 1, 2};
  cfg.faults.delivery.delay_beats = 3;
  Engine eng(cfg, steady_factory(), std::make_unique<BroadcastingAdversary>());
  eng.run_beats(64);  // ring slots and pool demand settle
  const std::size_t before = g_allocations;
  eng.run_beats(32);
  EXPECT_EQ(g_allocations - before, 0u)
      << "steady-state beat under delayed delivery touched the heap";
}

// A trace sink that only counts: the engine-side emission path (record
// ring, per-node emitters, metrics summary) must keep whole traced beats
// heap-silent once the ring is bound; JsonlTraceSink is the deliberately
// allocating boundary, not this contract.
class CountingTraceSink final : public TraceSink {
 public:
  void write(const TraceRecord* records, std::size_t count) override {
    records_ += count;
    for (std::size_t i = 0; i < count; ++i) {
      checksum_ ^= records[i].a + records[i].beat;
    }
  }
  void end_beat(Beat) override { ++beats_; }

  std::size_t records() const { return records_; }
  std::size_t beats() const { return beats_; }
  std::uint64_t checksum() const { return checksum_; }

 private:
  std::size_t records_ = 0;
  std::size_t beats_ = 0;
  std::uint64_t checksum_ = 0;
};

TEST(AllocationFreeBeat, TracedBeatsWithNonAllocatingSink) {
  EngineConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.faulty = EngineConfig::last_ids_faulty(16, 5);
  cfg.seed = 7;
  cfg.metrics_history_limit = 8;
  Engine eng(cfg, steady_factory(), std::make_unique<SteadyAdversary>());
  CountingTraceSink sink;
  eng.set_trace(&sink);  // binds the record ring: capacity reserved here
  eng.run_beats(64);
  const std::size_t before = g_allocations;
  const std::size_t records_before = sink.records();
  eng.run_beats(32);
  EXPECT_EQ(g_allocations - before, 0u)
      << "traced steady-state run_beat() touched the heap";
  // The beats really were traced: one clock record per correct node per
  // beat plus the engine summary.
  EXPECT_GE(sink.records() - records_before, 32u * 12u);
  EXPECT_EQ(sink.beats(), 96u);
}

// Streaming invariant checking rides the same trace path: once the
// checker's per-beat scratch has settled, a whole checked beat — clock
// feeds, streak update, coin folding — must run with a zero allocation
// delta. Violation formatting is the deliberately allocating boundary; a
// green run never crosses it.
TEST(AllocationFreeBeat, TracedBeatsWithStreamingCheckerAttached) {
  EngineConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.faulty = EngineConfig::last_ids_faulty(16, 5);
  cfg.seed = 7;
  cfg.metrics_history_limit = 8;
  Engine eng(cfg, steady_factory(), std::make_unique<SteadyAdversary>());
  StreamingChecker checker;
  TraceMeta meta;
  meta.scenario = "alloc";
  meta.seed = 7;
  meta.n = 16;
  meta.f = 5;
  meta.faulty = cfg.faulty;
  meta.max_beats = 96;
  meta.confirm_window = 12;
  checker.begin_trace(meta);
  eng.set_trace(&checker);
  eng.run_beats(64);  // record ring and checker scratch settle
  const std::size_t before = g_allocations;
  eng.run_beats(32);
  EXPECT_EQ(g_allocations - before, 0u)
      << "steady-state run_beat() with a streaming checker touched the heap";
  const CheckResult& res = checker.finish();
  EXPECT_EQ(res.beats, 96u);
  EXPECT_TRUE(res.ok)
      << (res.violations.empty() ? "" : res.violations[0]);
}

TEST(AllocationFreeBeat, WithAdversary) {
  EngineConfig cfg;
  cfg.n = 16;
  cfg.f = 5;
  cfg.faulty = EngineConfig::last_ids_faulty(16, 5);
  cfg.seed = 4;
  cfg.metrics_history_limit = 8;
  Engine eng(cfg, steady_factory(), std::make_unique<SteadyAdversary>());
  eng.run_beats(64);
  const std::size_t before = g_allocations;
  eng.run_beats(32);
  EXPECT_EQ(g_allocations - before, 0u)
      << "steady-state run_beat() with an adversary touched the heap";
}

// The full protocol stack — ss-Byz-Clock-Sync over three FM-coin pipelines
// — must also run warm beats without touching the heap: coin instances are
// reinit-recycled by the pipeline, all round state lives in flat scratch,
// payload decode goes through u64_vec_into, and share recovery uses the
// precomputed Lagrange tables (the faulty nodes are silent and carry the
// highest ids, so every recovery sees the canonical prefix subset and the
// Berlekamp-Welch slow path — which may allocate — never triggers).
TEST(AllocationFreeBeat, FmCoinClockSyncStack) {
  EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.faulty = EngineConfig::last_ids_faulty(4, 1);
  cfg.seed = 5;
  cfg.metrics_history_limit = 8;
  CoinSpec spec = fm_coin_spec();
  auto factory = [&spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 64, spec, rng);
  };
  Engine eng(cfg, factory, make_silent_adversary());
  eng.run_beats(96);  // pools, scratch and pipeline slots all settle
  const std::size_t before = g_allocations;
  eng.run_beats(32);
  EXPECT_EQ(g_allocations - before, 0u)
      << "steady-state FM-coin stack beat touched the heap";
}

}  // namespace
}  // namespace ssbft
