// Graded verifiable secret sharing building blocks (Observation 2.1).
//
// The Feldman-Micali common coin rests on a GVSS with three logical phases:
// share, decide (grade), recover. This header provides the per-dealing
// machinery, decoupled from message transport so it is directly unit- and
// property-testable:
//
//   * dealing: symmetric bivariate sampling + row extraction;
//   * row validation of untrusted dealer payloads;
//   * cross-check counting and the happy predicate;
//   * grades from vote counts (>= n-f -> 2, >= n-2f -> 1, else 0);
//   * error-correcting recovery of the dealt secret (fast path: clean
//     interpolation; slow path: Berlekamp-Welch).
//
// Key facts used by the coin (proved in the VSS literature, exercised by
// tests/gvss_test.cpp):
//   - a correct dealer's dealing gets grade 2 at every correct node, and
//     its secret is recovered by everyone (n >= 3f+1 gives the RS decoder
//     budget, see reed_solomon.h);
//   - if any correct node grades a dealing 2, every correct node grades it
//     >= 1 (n-f votes minus f Byzantine still clears n-2f);
//   - f rows reveal nothing about the secret before the recover phase
//     (degree-f secrecy) — the unpredictability property.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "field/bivariate.h"
#include "field/fp.h"
#include "field/poly.h"
#include "field/reed_solomon.h"
#include "support/rng.h"
#include "support/types.h"

namespace ssbft {

// Field point assigned to node id (must be nonzero and distinct).
inline std::uint64_t node_point(NodeId id) { return std::uint64_t{id} + 1; }

// Grades per Definition/use in Observation 2.1.
enum class GvssGrade : std::uint8_t { kNone = 0, kLow = 1, kHigh = 2 };

// Validates an untrusted row polynomial payload: every coefficient
// canonical and degree <= f. Returns nullopt on any violation.
std::optional<Poly> validate_row(const PrimeField& F, std::uint32_t f,
                                 const std::vector<std::uint64_t>& coeffs);

// Happy predicate: the node holds a valid row and at least n-f nodes'
// cross values matched it (matches includes the node itself).
bool gvss_happy(std::uint32_t n, std::uint32_t f, bool row_valid,
                std::uint32_t cross_matches);

// Grade from the number of distinct nodes that voted happy.
GvssGrade gvss_grade(std::uint32_t n, std::uint32_t f, std::uint32_t votes);

// Recovers the dealt secret g(0) from shares g(node_point(j)) where
// g(x) = F(x, 0) has degree <= f and at most `f` of the points lie. Fast
// path: if the first f+1 points interpolate a polynomial consistent with
// every point, that is the unique codeword. Otherwise full Berlekamp-Welch.
// Returns nullopt when decoding is impossible (an inevitably faulty
// dealing); callers map that to the canonical secret 0 so all correct nodes
// that fail, fail identically.
std::optional<std::uint64_t> gvss_recover(const PrimeField& F, std::uint32_t f,
                                          const std::vector<RsPoint>& shares);

// One dealer's side of the share phase.
class GvssDealing {
 public:
  // Samples a dealing of a uniform secret (degree f in each variable).
  static GvssDealing sample(const PrimeField& F, std::uint32_t f, Rng& rng);

  // Row polynomial for node `to` (degree <= f, f+1 coefficients).
  std::vector<std::uint64_t> row_for(const PrimeField& F, NodeId to) const;

  std::uint64_t secret() const { return poly_.secret(); }
  const SymmetricBivariate& bivariate() const { return poly_; }

 private:
  explicit GvssDealing(SymmetricBivariate p) : poly_(std::move(p)) {}
  SymmetricBivariate poly_;
};

}  // namespace ssbft
