// Transient-fault and network-fault injection schedules.
//
// Models the paper's failure assumptions beyond Byzantine nodes: arbitrary
// memory corruption of non-faulty nodes, and a communication network that
// may deliver "phantom" messages / lose messages until it becomes non-faulty
// (Definition 2.2 and the surrounding discussion).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "support/check.h"
#include "support/types.h"

namespace ssbft {

struct FaultPlan {
  // Start every node from an arbitrary memory state. This is the default
  // initial condition of every convergence experiment ("starting from any
  // state", Definition 3.2).
  bool randomize_genesis = true;

  // Nodes whose entire state is randomized immediately before the send
  // phase of the given beat (mid-run transient faults).
  std::map<Beat, std::vector<NodeId>> corruptions;

  // The communication network is faulty for beats < network_faulty_until:
  // phantom messages (never sent by any current node) may be delivered and
  // real messages may be lost. From this beat on, Definition 2.2 holds.
  Beat network_faulty_until = 0;
  // Phantom messages injected into each correct node per faulty-network beat.
  std::uint32_t phantoms_per_beat = 0;
  std::uint32_t phantom_max_len = 64;
  // Probability that a real message is dropped during a faulty-network beat.
  double faulty_drop_prob = 0.0;

  // Largest phantom payload a plan may ask for (1 MiB). Far beyond any
  // protocol's real message size, yet small enough that the sampling bound
  // `phantom_max_len + 1` (computed in 64 bits — the engine widens before
  // the increment, so even the type's maximum cannot wrap the bound to
  // zero) never asks the simulator for a pathological allocation.
  static constexpr std::uint32_t kMaxPhantomLen = 1u << 20;

  // Engine-checked sanity of the plan.
  void validate() const {
    SSBFT_REQUIRE_MSG(faulty_drop_prob >= 0.0 && faulty_drop_prob <= 1.0,
                      "faulty_drop_prob must be a probability");
    SSBFT_REQUIRE_MSG(phantom_max_len <= kMaxPhantomLen,
                      "phantom_max_len " << phantom_max_len
                                         << " exceeds the sane bound "
                                         << kMaxPhantomLen);
  }
};

}  // namespace ssbft
