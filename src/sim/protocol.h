// Protocol interfaces for the lock-step global-beat-system model.
//
// Beat anatomy (the strongest reading of Section 2 — see DESIGN.md):
//   1. beat signal: every correct node runs send_phase(), a pure function of
//      its end-of-previous-beat state;
//   2. the adversary observes everything addressed to faulty nodes this beat
//      (rushing) and emits the faulty nodes' messages;
//   3. delivery: all beat-r messages arrive before beat r+1;
//   4. every correct node runs receive_phase() over its beat-r inbox.
//
// Self-stabilization contract: randomize_state() must be able to set every
// bit of protocol state to arbitrary values; a protocol is correct only if
// it converges from anything randomize_state() can produce. Constants of
// the code (n, f, self id, channel layout) are exempt per Remark 2.1.
#pragma once

#include <cstdint>

#include "sim/message.h"
#include "support/rng.h"
#include "support/types.h"

namespace ssbft {

class TraceEmitter;  // sim/trace.h

// Static facts a node knows about the system ("part of the code").
struct ProtocolEnv {
  NodeId self = 0;
  std::uint32_t n = 0;  // total nodes
  std::uint32_t f = 0;  // bound on Byzantine nodes assumed by the protocol
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  // Emit this beat's messages. Must not depend on anything received this
  // beat (the engine calls it before any delivery).
  virtual void send_phase(Outbox& out) = 0;

  // Process this beat's inbox and update state.
  virtual void receive_phase(const Inbox& in) = 0;

  // Transient fault: overwrite all mutable state with arbitrary values.
  virtual void randomize_state(Rng& rng) = 0;

  // Number of channels this protocol stack uses (channel ids are
  // [0, channel_count)). The engine sizes inboxes from this.
  virtual std::uint32_t channel_count() const = 0;

  // Observation hook (sim/trace.h): emit this beat's phase transitions and
  // coin outcomes. Called by the engine after the receive phase, only when
  // tracing is on; the default traces nothing. Implementations must emit
  // only state that was actually fresh this beat (gated sub-protocols
  // skip beats they did not step) and must not mutate protocol state.
  virtual void trace_state(TraceEmitter& /*em*/) const {}
};

// A protocol whose observable output is a digital clock (the k-Clock
// problem, Definition 3.2).
class ClockProtocol : public Protocol {
 public:
  // Current clock value in [0, modulus()).
  virtual ClockValue clock() const = 0;
  // The k of the k-Clock problem this protocol solves.
  virtual ClockValue modulus() const = 0;
};

}  // namespace ssbft
