// Unit tests for the support layer: deterministic RNG and the
// failure-tolerant byte codec (the first line of defense against
// Byzantine payloads).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "harness/table.h"
#include "support/bitwords.h"
#include "support/bytes.h"
#include "support/check.h"
#include "support/rng.h"

namespace ssbft {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStability) {
  // Splits derive from the origin seed, not generator position: drawing
  // before splitting must not change the split stream.
  Rng a(7), b(7);
  (void)a.next_u64();
  (void)a.next_u64();
  Rng sa = a.split("stream");
  Rng sb = b.split("stream");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, SplitIndependenceAcrossLabels) {
  Rng root(7);
  Rng a = root.split("alpha");
  Rng b = root.split("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSplitsDiffer) {
  Rng root(9);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 50; ++i) {
    firsts.insert(root.split("node", i).next_u64());
  }
  EXPECT_EQ(firsts.size(), 50u);
}

TEST(Rng, IndexedSplitStreamsAreIndependent) {
  // Not just distinct first draws: the full streams of split(label, i) and
  // split(label, j) must not collide or shadow each other.
  Rng root(11);
  Rng a = root.split("trial", 3);
  Rng b = root.split("trial", 4);
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSplitDisjointFromLabelSplit) {
  // split("x") and split("x", i) are different streams for every i,
  // including the tempting i = 0 collision.
  Rng root(13);
  Rng plain = root.split("x");
  Rng indexed = root.split("x", 0);
  int same = 0;
  for (int i = 0; i < 128; ++i) {
    if (plain.next_u64() == indexed.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, IndexedSplitStability) {
  // Indexed splits derive from the origin seed: consuming draws or making
  // other splits first must not perturb the (label, index) stream.
  Rng a(21), b(21);
  (void)a.next_u64();
  (void)a.split("other");
  (void)a.split("node", 5);
  Rng sa = a.split("node", 3);
  Rng sb = b.split("node", 3);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(sa.next_u64(), sb.next_u64());
}

TEST(Rng, NextBelowIsInRangeAndCoversValues) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowOneIsZero) {
  Rng r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowZeroIsContractError) {
  Rng r(3);
  EXPECT_THROW(r.next_below(0), contract_error);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = r.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(r.next_bernoulli(0.0));
    EXPECT_TRUE(r.next_bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (r.next_bernoulli(0.3)) ++hits;
  }
  const double p = static_cast<double>(hits) / trials;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Rng, BoolRoughlyFair) {
  Rng r(13);
  int ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (r.next_bool()) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.02);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.u64_vec({1, 2, 3});
  w.bytes({0x01, 0x02});
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.u64_vec(8), (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.bytes(8), (Bytes{0x01, 0x02}));
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, TruncatedReadLatchesFailure) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u64(), 0u);  // past end
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.at_end());
  // Subsequent reads stay failed, never throw.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, HostileLengthPrefixRejected) {
  // A length prefix claiming 2^31 elements must not allocate.
  ByteWriter w;
  w.u32(0x80000000u);
  ByteReader r(w.data());
  const auto v = r.u64_vec(1024);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, LengthBeyondCapRejected) {
  ByteWriter w;
  w.u64_vec({1, 2, 3, 4});
  ByteReader r(w.data());
  const auto v = r.u64_vec(3);  // cap below actual length
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, LengthLongerThanBufferRejected) {
  ByteWriter w;
  w.u32(5);  // claims 5 u64s but provides none
  ByteReader r(w.data());
  const auto v = r.u64_vec(16);
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, EmptyVectorRoundTrip) {
  ByteWriter w;
  w.u64_vec({});
  ByteReader r(w.data());
  EXPECT_TRUE(r.u64_vec(4).empty());
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, AtEndRequiresFullConsumption) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.at_end());  // one byte left over: trailing garbage
}

TEST(Bytes, U64VecIntoMatchesAllocatingDecode) {
  ByteWriter w;
  w.u64_vec({5, 6, 7});
  std::uint64_t scratch[8] = {0};
  ByteReader r(w.data());
  EXPECT_EQ(r.u64_vec_into(scratch, 8), 3u);
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(scratch[0], 5u);
  EXPECT_EQ(scratch[1], 6u);
  EXPECT_EQ(scratch[2], 7u);
}

TEST(Bytes, U64VecIntoRejectsSameInputsAsAllocatingDecode) {
  std::uint64_t scratch[4] = {0};
  {
    ByteWriter w;
    w.u32(0x80000000u);  // hostile length prefix
    ByteReader r(w.data());
    EXPECT_EQ(r.u64_vec_into(scratch, 4), 0u);
    EXPECT_FALSE(r.ok());
  }
  {
    ByteWriter w;
    w.u64_vec({1, 2, 3, 4});  // above cap
    ByteReader r(w.data());
    EXPECT_EQ(r.u64_vec_into(scratch, 3), 0u);
    EXPECT_FALSE(r.ok());
  }
  {
    ByteWriter w;
    w.u32(5);  // claims 5 u64s, provides none
    ByteReader r(w.data());
    EXPECT_EQ(r.u64_vec_into(scratch, 16), 0u);
    EXPECT_FALSE(r.ok());
  }
}

TEST(Bytes, U64VecFlatOverloadMatchesVectorOverload) {
  const std::vector<std::uint64_t> v{9, 8, 7, 6};
  ByteWriter a, b;
  a.u64_vec(v);
  b.u64_vec(v.data(), v.size());
  EXPECT_EQ(a.data(), b.data());
}

// --- Masked field-vector codec (ByteWriter::masked_u64_vec) ---------------

// Reference encode/decode through the plain u64_vec wire format, for the
// round-trip property tests: the masked codec must carry exactly the same
// logical vector (sentinels included), only in fewer bytes.
std::vector<std::uint64_t> masked_round_trip(
    const std::vector<std::uint64_t>& v, std::uint64_t absent,
    unsigned value_bits) {
  ByteWriter w;
  w.masked_u64_vec(v.data(), v.size(), absent, value_bits);
  ByteReader r(w.data());
  std::vector<std::uint64_t> out(v.size(), ~std::uint64_t{0});
  EXPECT_TRUE(r.masked_u64_vec_into(out.data(), out.size(), absent,
                                    value_bits));
  EXPECT_TRUE(r.at_end());
  return out;
}

TEST(MaskedCodec, RoundTripPropertyVsPlainReference) {
  Rng rng(71);
  const std::uint64_t absent = (std::uint64_t{1} << 61) - 1;  // 2^61 - 1
  for (unsigned value_bits : {61u, 64u, 13u, 1u}) {
    const std::uint64_t value_bound =
        value_bits >= 61 ? absent : (std::uint64_t{1} << value_bits);
    for (int iter = 0; iter < 50; ++iter) {
      const std::size_t len = rng.next_below(40);
      std::vector<std::uint64_t> v(len);
      for (auto& x : v) {
        x = rng.next_bernoulli(0.3) ? absent : rng.next_below(value_bound);
      }
      // The plain encoding round-trips by construction; the masked one
      // must yield the identical vector.
      ByteWriter plain;
      plain.u64_vec(v);
      ByteReader pr(plain.data());
      std::vector<std::uint64_t> ref(64);
      const std::size_t ref_n = pr.u64_vec_into(ref.data(), 64);
      ref.resize(ref_n);
      EXPECT_EQ(masked_round_trip(v, absent, value_bits), ref);
      // And in fewer bytes whenever values pack below 64 bits: absent
      // entries cost 1 bit instead of value_bits, and sub-64-bit values
      // pack tighter than the plain format even when all are present. (At
      // value_bits = 64 an all-present vector longer than 32 can spend
      // more on mask bytes than the dropped length prefix, so no strict
      // inequality holds there.)
      ByteWriter masked;
      masked.masked_u64_vec(v.data(), v.size(), absent, value_bits);
      if (len > 0 && value_bits < 64) {
        EXPECT_LT(masked.size(), plain.size());
      }
    }
  }
}

TEST(MaskedCodec, EmptyVectorIsZeroBytes) {
  ByteWriter w;
  w.masked_u64_vec(nullptr, 0, 7, 61);
  EXPECT_EQ(w.size(), 0u);
  ByteReader r(w.data());
  EXPECT_TRUE(r.masked_u64_vec_into(nullptr, 0, 7, 61));
  EXPECT_TRUE(r.at_end());
}

TEST(MaskedCodec, TruncatedMaskRejected) {
  ByteWriter w;
  w.u8(0xff);  // 13-entry vector needs 2 mask bytes; provide 1
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(13, 42);
  EXPECT_FALSE(r.masked_u64_vec_into(dst.data(), 13, 0, 61));
  EXPECT_FALSE(r.ok());
  for (auto x : dst) EXPECT_EQ(x, 42u);  // dst untouched on failure
}

TEST(MaskedCodec, TruncatedPackedTailRejected) {
  ByteWriter w;
  w.u8(0x07);  // 3 of 8 entries present -> needs ceil(3*61/8) = 23 bytes
  w.u64(1);    // only 8 provided
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(8, 42);
  EXPECT_FALSE(r.masked_u64_vec_into(dst.data(), 8, 0, 61));
  EXPECT_FALSE(r.ok());
  for (auto x : dst) EXPECT_EQ(x, 42u);
}

TEST(MaskedCodec, OverlongTailFailsAtEnd) {
  // Trailing bytes after the packed values are not consumed: the decode
  // itself succeeds but the caller's at_end() contract rejects the
  // payload, exactly like trailing garbage after a u64_vec.
  std::vector<std::uint64_t> v{5, 6};
  ByteWriter w;
  w.masked_u64_vec(v.data(), v.size(), 7, 61);
  w.u8(0xcc);
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(2);
  EXPECT_TRUE(r.masked_u64_vec_into(dst.data(), 2, 7, 61));
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.at_end());
}

TEST(MaskedCodec, MaskBitsBeyondLengthRejected) {
  ByteWriter w;
  w.u8(0xff);  // 5-entry vector: bits 5..7 must be zero
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(5, 42);
  EXPECT_FALSE(r.masked_u64_vec_into(dst.data(), 5, 0, 61));
  EXPECT_FALSE(r.ok());
  for (auto x : dst) EXPECT_EQ(x, 42u);
}

TEST(MaskedCodec, NonzeroPaddingBitsRejected) {
  // One present 61-bit value packs into 8 bytes with 3 padding bits; set
  // one of them.
  ByteWriter w;
  w.u8(0x01);
  w.u64((std::uint64_t{1} << 61) | 123);  // bit 61 is padding
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(1, 42);
  EXPECT_FALSE(r.masked_u64_vec_into(dst.data(), 1, 0, 61));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(dst[0], 42u);
}

TEST(MaskedCodec, SentinelSmugglingDecodesToTheSentinel) {
  // A Byzantine encoder can mark an entry present and pack the sentinel
  // value itself (it fits in 61 bits for the Mersenne prime). The decode
  // must yield exactly the sentinel — indistinguishable from a masked-out
  // entry to the caller's validity check — never some aliased value.
  const std::uint64_t sentinel = (std::uint64_t{1} << 61) - 1;
  ByteWriter w;
  w.u8(0x01);
  w.u64(sentinel);  // 61 value bits + 3 zero padding bits = 8 bytes
  ByteReader r(w.data());
  std::vector<std::uint64_t> dst(1, 0);
  EXPECT_TRUE(r.masked_u64_vec_into(dst.data(), 1, sentinel, 61));
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(dst[0], sentinel);
}

TEST(MaskedCodec, WriterRejectsValuesWiderThanValueBits) {
  const std::uint64_t v = std::uint64_t{1} << 13;
  ByteWriter w;
  EXPECT_THROW(w.masked_u64_vec(&v, 1, 0, 13), contract_error);
  EXPECT_THROW(w.masked_u64_vec(&v, 1, 0, 0), contract_error);
  EXPECT_THROW(w.masked_u64_vec(&v, 1, 0, 65), contract_error);
}

TEST(MaskedCodec, SixtyFourBitValuesSupported) {
  std::vector<std::uint64_t> v{~std::uint64_t{0} - 1, 3,
                               ~std::uint64_t{0} - 1};
  EXPECT_EQ(masked_round_trip(v, 3, 64),
            (std::vector<std::uint64_t>{~std::uint64_t{0} - 1, 3,
                                        ~std::uint64_t{0} - 1}));
}

// --- Raw bitmask codec (ByteWriter::bits) ---------------------------------

TEST(BitsCodec, RoundTripAcrossWordBoundary) {
  for (std::size_t nbits : {std::size_t{1}, std::size_t{8}, std::size_t{13},
                            std::size_t{64}, std::size_t{70}}) {
    std::vector<std::uint64_t> words(bitword_count(nbits), 0);
    Rng rng(5 + nbits);
    for (std::size_t i = 0; i < nbits; ++i) {
      bitword_set(words.data(), i, rng.next_bool());
    }
    ByteWriter w;
    w.bits(words.data(), nbits);
    EXPECT_EQ(w.size(), (nbits + 7) / 8);
    std::vector<std::uint64_t> out(words.size(), ~std::uint64_t{0});
    ByteReader r(w.data());
    EXPECT_TRUE(r.bits_into(out.data(), nbits));
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(out, words);
  }
}

TEST(BitsCodec, PaddingBitsRejected) {
  ByteWriter w;
  w.u8(0xff);
  w.u8(0xff);  // 13-bit mask: bits 13..15 must be zero
  ByteReader r(w.data());
  std::uint64_t out = 42;
  EXPECT_FALSE(r.bits_into(&out, 13));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(out, 42u);  // untouched on failure
}

TEST(BitsCodec, TruncatedRejected) {
  ByteWriter w;
  w.u8(0x11);
  ByteReader r(w.data());
  std::uint64_t out = 42;
  EXPECT_FALSE(r.bits_into(&out, 13));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(out, 42u);
}

TEST(Bitwords, GetSetRoundTripAcrossWordBoundaries) {
  std::uint64_t words[3] = {0, 0, 0};
  ASSERT_EQ(bitword_count(130), 3u);
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                        std::size_t{64}, std::size_t{65}, std::size_t{127},
                        std::size_t{128}, std::size_t{129}}) {
    EXPECT_FALSE(bitword_get(words, i));
    bitword_set(words, i, true);
    EXPECT_TRUE(bitword_get(words, i)) << i;
  }
  bitword_set(words, 64, false);
  EXPECT_FALSE(bitword_get(words, 64));
  EXPECT_TRUE(bitword_get(words, 63));
  EXPECT_TRUE(bitword_get(words, 65));
  bitword_clear(words, 130);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bitword_get(words, i));
}

TEST(Bitwords, LayoutMatchesWireFormat) {
  // Bit i in word i/64 at position i%64 — the vote-mask wire layout.
  std::uint64_t words[2] = {0, 0};
  bitword_set(words, 0, true);
  bitword_set(words, 5, true);
  bitword_set(words, 64, true);
  EXPECT_EQ(words[0], (std::uint64_t{1} << 0) | (std::uint64_t{1} << 5));
  EXPECT_EQ(words[1], std::uint64_t{1});
}

TEST(Bytes, HexFormatting) {
  EXPECT_EQ(to_hex({0x00, 0xff, 0x1a}), "00ff1a");
  EXPECT_EQ(to_hex({}), "");
}

TEST(Check, MacrosThrowContractErrors) {
  EXPECT_THROW(SSBFT_CHECK(false), contract_error);
  EXPECT_THROW(SSBFT_REQUIRE(1 == 2), contract_error);
  EXPECT_NO_THROW(SSBFT_CHECK(true));
  try {
    SSBFT_REQUIRE_MSG(false, "ctx " << 42);
    FAIL() << "should have thrown";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("3.5 (p90 8)"), "3.5 (p90 8)");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rcell"), "\"cr\rcell\"");
}

TEST(AsciiTable, CsvEscapesCommaQuoteAndNewline) {
  AsciiTable t({"configuration", "note, quoted"});
  t.add_row({"4-clock, two pipelines", "plain"});
  t.add_row({"he said \"go\"", "multi\nline"});
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(),
            "configuration,\"note, quoted\"\n"
            "\"4-clock, two pipelines\",plain\n"
            "\"he said \"\"go\"\"\",\"multi\nline\"\n");
}

}  // namespace
}  // namespace ssbft
