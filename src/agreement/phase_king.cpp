#include "agreement/phase_king.h"

#include "support/check.h"

namespace ssbft {

namespace {

// Reads a one-byte value <= max from each sender; returns per-sender
// values with 0xff = absent/malformed.
std::vector<std::uint8_t> read_u8_per_sender(const Inbox& in, ChannelId ch,
                                             std::uint32_t n,
                                             std::uint8_t max) {
  std::vector<std::uint8_t> vals(n, 0xff);
  const auto payloads = in.first_per_sender(ch);
  for (NodeId j = 0; j < n; ++j) {
    if (payloads[j] == nullptr) continue;
    ByteReader r(*payloads[j]);
    const std::uint8_t v = r.u8();
    if (!r.at_end() || v > max) continue;
    vals[j] = v;
  }
  return vals;
}

}  // namespace

PhaseKingInstance::PhaseKingInstance(const ProtocolEnv& env, bool input)
    : env_(env), v_(input) {}

void PhaseKingInstance::send_round(int round, Outbox& out, ChannelId base) {
  const int phase = (round - 1) / 3;
  const int sub = (round - 1) % 3;
  const auto ch = static_cast<ChannelId>(base + round - 1);
  ByteWriter& w = out.writer();
  switch (sub) {
    case 0:  // R1: universal exchange of v.
      w.u8(v_ ? 1 : 0);
      out.broadcast(ch, w.data());
      break;
    case 1:  // R2: exchange proposals ("?" = 2).
      w.u8(propose_);
      out.broadcast(ch, w.data());
      break;
    case 2:  // R3: only the phase's king speaks.
      if (env_.self == static_cast<NodeId>(phase) % env_.n) {
        w.u8(v_ ? 1 : 0);
        out.broadcast(ch, w.data());
      }
      break;
  }
}

void PhaseKingInstance::receive_round(int round, const Inbox& in,
                                      ChannelId base) {
  const int phase = (round - 1) / 3;
  const int sub = (round - 1) % 3;
  const auto ch = static_cast<ChannelId>(base + round - 1);
  const std::uint32_t n = env_.n;
  const std::uint32_t f = env_.f;
  switch (sub) {
    case 0: {
      const auto vals = read_u8_per_sender(in, ch, n, 1);
      std::uint32_t cnt[2] = {0, 0};
      for (auto v : vals) {
        if (v <= 1) ++cnt[v];
      }
      propose_ = 2;
      for (int w = 0; w < 2; ++w) {
        if (cnt[w] >= n - f) propose_ = static_cast<std::uint8_t>(w);
      }
      break;
    }
    case 1: {
      const auto vals = read_u8_per_sender(in, ch, n, 2);
      std::uint32_t cnt[2] = {0, 0};
      for (auto v : vals) {
        if (v <= 1) ++cnt[v];
      }
      const int d = cnt[1] > cnt[0] ? 1 : 0;
      if (cnt[d] >= n - f) {
        v_ = d != 0;
        lock_ = 2;
      } else if (cnt[d] >= f + 1) {
        v_ = d != 0;
        lock_ = 1;
      } else {
        lock_ = 0;
      }
      break;
    }
    case 2: {
      const auto vals = read_u8_per_sender(in, ch, n, 1);
      const NodeId king = static_cast<NodeId>(phase) % env_.n;
      if (lock_ < 2) {
        // Missing/garbled king value defaults to 0 — every correct node
        // applies the same default, preserving agreement in king phases.
        v_ = vals[king] == 1;
      }
      break;
    }
  }
}

void PhaseKingInstance::randomize_state(Rng& rng) {
  v_ = rng.next_bool();
  propose_ = static_cast<std::uint8_t>(rng.next_below(3));
  lock_ = static_cast<std::uint8_t>(rng.next_below(3));
}

BaSpec phase_king_spec() {
  BaSpec spec;
  spec.resilience_denominator = 3;
  spec.rounds_for = [](std::uint32_t f) { return 3 * (static_cast<int>(f) + 1); };
  spec.make = [](const ProtocolEnv& env, std::uint64_t input, Rng) {
    return std::make_unique<PhaseKingInstance>(env, (input & 1) != 0);
  };
  return spec;
}

}  // namespace ssbft
