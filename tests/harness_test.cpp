// Tests for the experiment harness layers: the scenario registry (lookup,
// glob matching, buildability of every cell), the cross-cell sweep
// scheduler (bit-identical to the serial path, no per-cell barrier), the
// FaultPlan axes actually reaching the engine, and the structured report
// renderers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>

#include "harness/convergence.h"
#include "harness/report.h"
#include "harness/scenario.h"
#include "harness/sweep.h"

namespace ssbft {
namespace {

// ---------------------------------------------------------------- registry

TEST(ScenarioRegistry, LookupKnownScenario) {
  const ScenarioSpec* s = find_scenario("table1/sync/n7");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name, "table1/sync/n7");
  EXPECT_EQ(s->family, Family::kClockSync);
  EXPECT_EQ(s->world.n, 7u);
  EXPECT_EQ(s->world.f, 2u);
  EXPECT_EQ(s->world.k, 64u);
  EXPECT_EQ(s->world.attack, Attack::kSkew);
  EXPECT_EQ(s->base_seed, 4007u);
  EXPECT_EQ(s->trials, 20u);
}

TEST(ScenarioRegistry, UnknownNameIsNull) {
  EXPECT_EQ(find_scenario("no/such/scenario"), nullptr);
  EXPECT_EQ(find_scenario(""), nullptr);
  // Globs are not names: lookup is exact.
  EXPECT_EQ(find_scenario("table1/*"), nullptr);
}

TEST(ScenarioRegistry, SortedUniqueAndSummarized) {
  const auto& reg = scenario_registry();
  ASSERT_GT(reg.size(), 50u);  // all bench rows + gallery + fault variants
  for (std::size_t i = 1; i < reg.size(); ++i) {
    EXPECT_LT(reg[i - 1].name, reg[i].name);
  }
  for (const ScenarioSpec& s : reg) {
    EXPECT_FALSE(s.summary.empty()) << s.name;
    EXPECT_GT(s.trials, 0u) << s.name;
    EXPECT_GT(s.max_beats, 0u) << s.name;
  }
}

TEST(ScenarioRegistry, EveryCellBuildsARunnableEngine) {
  // Construction exercises the full factory path (protocol stacks,
  // adversaries, beacons, FaultPlan validation); two beats exercise the
  // send/receive plumbing.
  for (const ScenarioSpec& s : scenario_registry()) {
    SCOPED_TRACE(s.name);
    EngineBundle b = build_scenario(s)(s.base_seed);
    ASSERT_NE(b.engine, nullptr);
    b.engine->run_beats(2);
    EXPECT_EQ(b.engine->beat(), 2u);
  }
}

TEST(ScenarioRegistry, GlobMatching) {
  EXPECT_TRUE(glob_match("*", "anything/at/all"));
  EXPECT_TRUE(glob_match("table1/dw/*", "table1/dw/n4"));
  EXPECT_FALSE(glob_match("table1/dw/*", "table1/sync/n4"));
  EXPECT_TRUE(glob_match("*/n7", "leverage/sync/n7"));
  EXPECT_TRUE(glob_match("gallery/?oise", "gallery/noise"));
  EXPECT_FALSE(glob_match("gallery/?oise", "gallery/nnoise"));
  EXPECT_TRUE(glob_match("net/lossy", "net/lossy"));
  EXPECT_FALSE(glob_match("net/lossy", "net/lossy-phantom"));

  EXPECT_EQ(match_scenarios("table1/dw/*").size(), 4u);
  EXPECT_EQ(match_scenarios("gallery/*").size(), 4u);
  EXPECT_TRUE(match_scenarios("zzz/*").empty());
  // Matches come back in registry (sorted) order. The net/* block covers
  // the loss/phantom axes plus the delivery adversaries and their
  // gallery compositions ('+' sorts before '-' in ASCII).
  const auto matched = match_scenarios("net/*");
  ASSERT_EQ(matched.size(), 12u);
  const char* want[] = {
      "net/baseline",
      "net/eclipse",
      "net/eclipse+noise",
      "net/lossy",
      "net/lossy-phantom",
      "net/partition-heal",
      "net/partition-heal+split",
      "net/phantom-storm",
      "net/reorder",
      "net/reorder+lossy",
      "net/targeted-delay",
      "net/targeted-delay+skew",
  };
  for (std::size_t i = 0; i < matched.size(); ++i) {
    EXPECT_EQ(matched[i]->name, want[i]) << "index " << i;
  }
}

// ------------------------------------------------------------------- sweep

void expect_identical(const TrialStats& a, const TrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean_msgs_per_beat, b.mean_msgs_per_beat);
}

std::vector<SweepCell> three_cell_grid(std::uint64_t trials) {
  // Three genuinely different cells (family, size, adversary) with
  // different trial counts, so unit->cell mapping and per-cell merges are
  // all exercised.
  const char* names[] = {"table1/dw/n4", "gallery/split", "net/lossy"};
  std::vector<SweepCell> cells;
  for (const char* name : names) {
    const ScenarioSpec* spec = find_scenario(name);
    EXPECT_NE(spec, nullptr);
    RunnerConfig rc = scenario_runner_config(*spec);
    rc.trials = trials + cells.size();  // unequal cell sizes
    rc.convergence.max_beats = 400;
    cells.push_back(SweepCell{spec->name, build_scenario(*spec), rc});
  }
  return cells;
}

TEST(Sweep, BitIdenticalAcrossJobsAndToRunTrials) {
  const auto cells = three_cell_grid(6);
  SweepOptions serial;
  serial.jobs = 1;
  const std::vector<TrialStats> base = run_sweep(cells, serial);
  ASSERT_EQ(base.size(), cells.size());

  // Cross-cell scheduling at any width must not perturb any cell's stats.
  for (std::uint64_t jobs : {2ULL, 3ULL, 8ULL, 0ULL}) {
    SweepOptions wide;
    wide.jobs = jobs;
    const std::vector<TrialStats> par = run_sweep(cells, wide);
    ASSERT_EQ(par.size(), base.size());
    for (std::size_t c = 0; c < base.size(); ++c) {
      SCOPED_TRACE(cells[c].name + " at jobs " + std::to_string(jobs));
      expect_identical(base[c], par[c]);
    }
  }

  // And each cell must equal a standalone run_trials of that cell alone —
  // the sweep is a scheduler, never a statistic.
  for (std::size_t c = 0; c < cells.size(); ++c) {
    SCOPED_TRACE(cells[c].name);
    expect_identical(base[c], run_trials(cells[c].builder, cells[c].cfg));
  }
}

TEST(Sweep, DeliveryPolicyGridBitIdenticalAcrossJobs) {
  // The delivery-policy cells carry cross-beat policy state (pending
  // rings, victim masks); trial isolation and merge order must keep the
  // sweep bit-identical across scheduler widths regardless.
  const char* names[] = {"net/eclipse", "net/partition-heal",
                         "net/targeted-delay"};
  std::vector<SweepCell> cells;
  for (const char* name : names) {
    const ScenarioSpec* spec = find_scenario(name);
    ASSERT_NE(spec, nullptr);
    RunnerConfig rc = scenario_runner_config(*spec);
    rc.trials = 4 + cells.size();  // unequal cell sizes
    rc.convergence.max_beats = 600;  // well past the heal beat at 40
    cells.push_back(SweepCell{spec->name, build_scenario(*spec), rc});
  }
  SweepOptions serial;
  serial.jobs = 1;
  const std::vector<TrialStats> base = run_sweep(cells, serial);
  ASSERT_EQ(base.size(), cells.size());
  for (std::uint64_t jobs : {2ULL, 0ULL}) {
    SweepOptions wide;
    wide.jobs = jobs;
    const std::vector<TrialStats> par = run_sweep(cells, wide);
    ASSERT_EQ(par.size(), base.size());
    for (std::size_t c = 0; c < base.size(); ++c) {
      SCOPED_TRACE(cells[c].name + " at jobs " + std::to_string(jobs));
      expect_identical(base[c], par[c]);
    }
  }
}

TEST(Sweep, EmptyAndZeroTrialCells) {
  EXPECT_TRUE(run_sweep({}, SweepOptions{}).empty());

  auto cells = three_cell_grid(2);
  cells[1].cfg.trials = 0;  // a zero-trial cell must not wedge the queue
  SweepOptions opts;
  opts.jobs = 4;
  const auto stats = run_sweep(cells, opts);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[1].trials, 0u);
  EXPECT_EQ(stats[1].converged, 0u);
  EXPECT_GT(stats[0].trials, 0u);
  EXPECT_GT(stats[2].trials, 0u);
}

// Distributed-sweep property: run every shard separately, ship each
// through the ssbft-shard-v1 text round trip, merge — and every cell's
// TrialStats must equal the unsharded serial run bit for bit (doubles
// compared with EXPECT_EQ, not near).
TEST(Sweep, ShardAndMergeBitIdenticalToUnsharded) {
  const auto cells = three_cell_grid(4);
  SweepOptions serial;
  serial.jobs = 1;
  const std::vector<TrialStats> base = run_sweep(cells, serial);
  ASSERT_EQ(base.size(), cells.size());

  for (const std::uint64_t k : {2ULL, 3ULL}) {
    std::vector<ShardFile> files;
    for (std::uint64_t i = 0; i < k; ++i) {
      SweepOptions so;
      so.jobs = 2;  // intra-shard parallelism must not matter either
      so.shard = ShardSpec{i, k};
      const SweepResult res = run_sweep_ex(cells, so);
      std::string text =
          encode_shard_header(shard_header_for(cells, so.shard, "grid"));
      for (const SweepUnitResult& u : res.units) {
        text += encode_shard_unit(ShardUnitRow{u.unit, u.cell, u.trial,
                                               u.outcome});
      }
      std::istringstream in(text);
      ShardParse parsed = parse_shard_file(in);
      ASSERT_TRUE(parsed.ok) << parsed.error;
      files.push_back(std::move(parsed.file));
    }
    ShardMerge m = merge_shard_files(std::move(files));
    ASSERT_TRUE(m.ok) << m.error;
    ASSERT_EQ(m.per_cell.size(), cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      SCOPED_TRACE(cells[c].name + " sharded " + std::to_string(k) + " ways");
      expect_identical(base[c], merge_outcomes(m.per_cell[c]));
    }
  }
}

// Merging the same shard twice, or an incomplete set, must refuse rather
// than emit silently wrong statistics.
TEST(Sweep, MergeRefusesOverlapAndIncompleteness) {
  const auto cells = three_cell_grid(2);
  const auto shard_file = [&](std::uint64_t i, std::uint64_t k) {
    SweepOptions so;
    so.jobs = 1;
    so.shard = ShardSpec{i, k};
    const SweepResult res = run_sweep_ex(cells, so);
    std::string text =
        encode_shard_header(shard_header_for(cells, so.shard, "grid"));
    for (const SweepUnitResult& u : res.units) {
      text +=
          encode_shard_unit(ShardUnitRow{u.unit, u.cell, u.trial, u.outcome});
    }
    std::istringstream in(text);
    ShardParse parsed = parse_shard_file(in);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.file;
  };
  {
    std::vector<ShardFile> twice;
    twice.push_back(shard_file(0, 2));
    twice.push_back(shard_file(0, 2));
    const ShardMerge m = merge_shard_files(std::move(twice));
    EXPECT_FALSE(m.ok);
    EXPECT_NE(m.error.find("more than once"), std::string::npos) << m.error;
  }
  {
    std::vector<ShardFile> half;
    half.push_back(shard_file(1, 2));
    const ShardMerge m = merge_shard_files(std::move(half));
    EXPECT_FALSE(m.ok);
    EXPECT_NE(m.error.find("incomplete"), std::string::npos) << m.error;
    EXPECT_NE(m.error.find("unit 0"), std::string::npos) << m.error;
  }
  {
    // Shards of different grids must never merge.
    auto other_cells = three_cell_grid(2);
    other_cells[0].cfg.base_seed += 1;
    SweepOptions so;
    so.jobs = 1;
    so.shard = ShardSpec{1, 2};
    const SweepResult res = run_sweep_ex(other_cells, so);
    std::string text = encode_shard_header(
        shard_header_for(other_cells, so.shard, "grid"));
    for (const SweepUnitResult& u : res.units) {
      text +=
          encode_shard_unit(ShardUnitRow{u.unit, u.cell, u.trial, u.outcome});
    }
    std::istringstream in(text);
    ShardParse parsed = parse_shard_file(in);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::vector<ShardFile> mixed;
    mixed.push_back(shard_file(0, 2));
    mixed.push_back(std::move(parsed.file));
    const ShardMerge m = merge_shard_files(std::move(mixed));
    EXPECT_FALSE(m.ok);
    EXPECT_NE(m.error.find("fingerprint"), std::string::npos) << m.error;
  }
}

// The tentpole scheduling property: units from different cells are in
// flight simultaneously — there is no per-cell (per-table-row) barrier.
// Four single-trial cells at jobs = 4: every builder blocks until all
// four have started. Under the old row-barrier execution model (finish
// cell c before starting cell c+1) the first builder would wait forever;
// with the global unit queue all four start and the latch opens. A timed
// wait keeps a regression a test failure instead of a hang.
TEST(Sweep, InterleavesUnitsAcrossCellsWithoutRowBarrier) {
  std::mutex mu;
  std::condition_variable cv;
  std::uint32_t started = 0;
  bool all_started = false;

  const ScenarioSpec* spec = find_scenario("table1/dw/n4");
  ASSERT_NE(spec, nullptr);
  std::vector<SweepCell> cells;
  for (int c = 0; c < 4; ++c) {
    RunnerConfig rc = scenario_runner_config(*spec);
    rc.trials = 1;
    rc.convergence.max_beats = 50;
    EngineBuilder inner = build_scenario(*spec);
    EngineBuilder gated = [&, inner](std::uint64_t seed) {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (++started == 4) {
          all_started = true;
          cv.notify_all();
        } else {
          cv.wait_for(lock, std::chrono::seconds(30),
                      [&] { return all_started; });
        }
      }
      return inner(seed);
    };
    cells.push_back(SweepCell{"cell" + std::to_string(c), gated, rc});
  }
  SweepOptions opts;
  opts.jobs = 4;
  const auto stats = run_sweep(cells, opts);
  EXPECT_TRUE(all_started)
      << "sweep barriered per cell: only " << started
      << " cells had started when the wait timed out";
  ASSERT_EQ(stats.size(), 4u);
  for (const TrialStats& s : stats) EXPECT_EQ(s.trials, 1u);
}

// ---------------------------------------------------------- FaultPlan axes

TEST(Scenario, LossyNetworkScenarioActuallyDrops) {
  const ScenarioSpec* s = find_scenario("net/lossy");
  ASSERT_NE(s, nullptr);
  ASSERT_GT(s->world.faults.faulty_drop_prob, 0.0);
  EngineBundle b = build_scenario(*s)(s->base_seed);
  b.engine->run_beats(s->world.faults.network_faulty_until);
  const std::uint64_t dropped_while_faulty =
      b.engine->metrics().total().dropped_messages;
  EXPECT_GT(dropped_while_faulty, 0u)
      << "drop probability " << s->world.faults.faulty_drop_prob
      << " never dropped a message";
  // From network_faulty_until on, Definition 2.2 holds: no further loss.
  b.engine->run_beats(50);
  EXPECT_EQ(b.engine->metrics().total().dropped_messages,
            dropped_while_faulty);
}

TEST(Scenario, DeliveryCellsCarryTheirSpecs) {
  const ScenarioSpec* e = find_scenario("net/eclipse");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->world.faults.delivery.kind, DeliveryKind::kEclipse);
  EXPECT_EQ(e->world.faults.delivery.heal_at, 40u);
  EXPECT_NE(e->summary.find("eclipse"), std::string::npos);

  const ScenarioSpec* p = find_scenario("net/partition-heal");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->world.faults.delivery.kind, DeliveryKind::kPartition);
  EXPECT_EQ(p->world.faults.delivery.partition_split, 3u);

  const ScenarioSpec* d = find_scenario("net/targeted-delay");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->world.faults.delivery.kind, DeliveryKind::kTargetedDelay);
  EXPECT_EQ(d->world.faults.delivery.delay_beats, 2u);

  const ScenarioSpec* r = find_scenario("net/reorder");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->world.faults.delivery.kind, DeliveryKind::kReorder);
  EXPECT_EQ(r->world.faults.delivery.heal_at, DeliverySpec::kNever);

  // The baseline control row stays on the synchronous default.
  const ScenarioSpec* base = find_scenario("net/baseline");
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->world.faults.delivery.kind, DeliveryKind::kSynchronous);
}

TEST(Scenario, EclipseScenarioActuallySuppresses) {
  const ScenarioSpec* s = find_scenario("net/eclipse");
  ASSERT_NE(s, nullptr);
  EngineBundle b = build_scenario(*s)(s->base_seed);
  b.engine->run_beats(10);  // inside the eclipse window
  EXPECT_GT(b.engine->metrics().total().eclipsed_messages, 0u);
  EXPECT_EQ(b.engine->metrics().total().delayed_messages, 0u);
}

TEST(Scenario, TargetedDelayScenarioActuallyHolds) {
  const ScenarioSpec* s = find_scenario("net/targeted-delay");
  ASSERT_NE(s, nullptr);
  EngineBundle b = build_scenario(*s)(s->base_seed);
  b.engine->run_beats(10);
  EXPECT_GT(b.engine->metrics().total().delayed_messages, 0u);
}

TEST(Scenario, PhantomStormScenarioActuallyInjects) {
  const ScenarioSpec* s = find_scenario("net/phantom-storm");
  ASSERT_NE(s, nullptr);
  ASSERT_GT(s->world.faults.phantoms_per_beat, 0u);
  EngineBundle b = build_scenario(*s)(s->base_seed);
  b.engine->run_beats(s->world.faults.network_faulty_until);
  const std::uint64_t phantoms =
      b.engine->metrics().total().phantom_messages;
  // phantoms_per_beat per correct node per faulty-network beat.
  EXPECT_EQ(phantoms, std::uint64_t{s->world.faults.phantoms_per_beat} *
                          (s->world.n - s->world.actual) *
                          s->world.faults.network_faulty_until);
  b.engine->run_beats(50);
  EXPECT_EQ(b.engine->metrics().total().phantom_messages, phantoms);
}

TEST(Scenario, MidRunCorruptionStillConverges) {
  const ScenarioSpec* s = find_scenario("fault/mid-run-corruption");
  ASSERT_NE(s, nullptr);
  ASSERT_FALSE(s->world.faults.corruptions.empty());
  const Beat last_corruption = s->world.faults.corruptions.rbegin()->first;
  EngineBundle b = build_scenario(*s)(s->base_seed);
  ConvergenceConfig cc;
  cc.max_beats = s->max_beats;
  const ConvergenceResult r = measure_convergence(*b.engine, cc);
  ASSERT_TRUE(r.converged);
  // The corruption schedule randomizes live nodes mid-run, so sustained
  // convergence can only be certified after the last scheduled fault.
  EXPECT_GT(r.synced_at, last_corruption);
}

TEST(Scenario, WorldFaultPlanReachesEngineConfig) {
  World w;
  w.n = 4;
  w.f = 1;
  w.actual = 1;
  w.faults.network_faulty_until = 7;
  w.faults.faulty_drop_prob = 0.5;
  w.faults.phantoms_per_beat = 3;
  const EngineConfig cfg = world_config(w, 99);
  EXPECT_EQ(cfg.faults.network_faulty_until, 7u);
  EXPECT_EQ(cfg.faults.faulty_drop_prob, 0.5);
  EXPECT_EQ(cfg.faults.phantoms_per_beat, 3u);
  EXPECT_EQ(cfg.seed, 99u);
}

// ------------------------------------------------------------------ report

AsciiTable sample_table() {
  AsciiTable t({"algorithm", "mean beats"});
  t.add_row({"4-clock, two pipelines", "3.5"});
  t.add_row({"plain", "7"});
  return t;
}

TEST(Report, AsciiPassesProseAndTables) {
  std::ostringstream os;
  Report r(RunMeta{"exp", 2, 0, 1}, ReportFormat::kAscii, os);
  r.text("hello\n");
  r.table("main", sample_table());
  r.csv_trailer(sample_table());
  const std::string out = os.str();
  EXPECT_NE(out.find("hello\n"), std::string::npos);
  EXPECT_NE(out.find("| algorithm"), std::string::npos);
  EXPECT_NE(out.find("\nCSV follows:\n"), std::string::npos);
  EXPECT_NE(out.find("\"4-clock, two pipelines\",3.5\n"), std::string::npos);
}

TEST(Report, CsvStampsMetaAndEscapes) {
  std::ostringstream os;
  Report r(RunMeta{"exp,1", 2, 7, 4}, ReportFormat::kCsv, os);
  r.text("prose is dropped in structured formats\n");
  r.table("main", sample_table());
  r.csv_trailer(sample_table());  // no-op outside ascii
  EXPECT_EQ(os.str(),
            "experiment,table,seed,trials,jobs,algorithm,mean beats\n"
            "\"exp,1\",main,7,2,4,\"4-clock, two pipelines\",3.5\n"
            "\"exp,1\",main,7,2,4,plain,7\n");
}

TEST(Report, JsonlOneObjectPerRow) {
  std::ostringstream os;
  Report r(RunMeta{"exp", 0, 0, 0}, ReportFormat::kJsonl, os);
  AsciiTable t({"name \"q\"", "v"});
  t.add_row({"a\nb", "1"});
  r.table("cells", t);
  EXPECT_EQ(os.str(),
            "{\"experiment\":\"exp\",\"table\":\"cells\",\"seed\":0,"
            "\"trials\":0,\"jobs\":0,\"columns\":{\"name \\\"q\\\"\":"
            "\"a\\nb\",\"v\":\"1\"}}\n");
}

TEST(Report, FormatParsing) {
  EXPECT_EQ(parse_report_format("ascii"), ReportFormat::kAscii);
  EXPECT_EQ(parse_report_format("csv"), ReportFormat::kCsv);
  EXPECT_EQ(parse_report_format("jsonl"), ReportFormat::kJsonl);
  EXPECT_FALSE(parse_report_format("json").has_value());
  EXPECT_FALSE(parse_report_format("").has_value());
  EXPECT_EQ(std::string(report_format_name(ReportFormat::kJsonl)), "jsonl");
}

}  // namespace
}  // namespace ssbft
