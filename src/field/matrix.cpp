#include "field/matrix.h"

#include "support/check.h"

namespace ssbft {

namespace {

// Forward elimination to row echelon form; returns pivot columns. Operates
// on the augmented system if b != nullptr.
std::vector<std::size_t> eliminate(const PrimeField& F, Matrix& A,
                                   std::vector<std::uint64_t>* b) {
  std::vector<std::size_t> pivot_cols;
  std::size_t row = 0;
  for (std::size_t col = 0; col < A.cols() && row < A.rows(); ++col) {
    // Find a pivot.
    std::size_t piv = row;
    while (piv < A.rows() && A.at(piv, col) == 0) ++piv;
    if (piv == A.rows()) continue;
    // Swap into place.
    if (piv != row) {
      for (std::size_t c = 0; c < A.cols(); ++c)
        std::swap(A.at(piv, c), A.at(row, c));
      if (b) std::swap((*b)[piv], (*b)[row]);
    }
    // Normalize pivot row.
    const std::uint64_t inv = F.inv(A.at(row, col));
    F.scale_vec(A.row(row) + col, inv, A.row(row) + col, A.cols() - col);
    if (b) (*b)[row] = F.mul((*b)[row], inv);
    // Clear the column below and above.
    for (std::size_t r = 0; r < A.rows(); ++r) {
      if (r == row || A.at(r, col) == 0) continue;
      const std::uint64_t factor = A.at(r, col);
      F.submul_vec(A.row(r) + col, A.row(row) + col, factor, A.cols() - col);
      if (b) (*b)[r] = F.sub((*b)[r], F.mul(factor, (*b)[row]));
    }
    pivot_cols.push_back(col);
    ++row;
  }
  return pivot_cols;
}

}  // namespace

std::optional<std::vector<std::uint64_t>> solve_linear(
    const PrimeField& F, Matrix A, std::vector<std::uint64_t> b) {
  SSBFT_REQUIRE(A.rows() == b.size());
  const auto pivot_cols = eliminate(F, A, &b);
  // Inconsistent iff some zero row has nonzero rhs.
  for (std::size_t r = pivot_cols.size(); r < A.rows(); ++r) {
    if (b[r] != 0) return std::nullopt;
  }
  std::vector<std::uint64_t> x(A.cols(), 0);
  for (std::size_t i = 0; i < pivot_cols.size(); ++i) x[pivot_cols[i]] = b[i];
  return x;
}

std::size_t matrix_rank(const PrimeField& F, Matrix A) {
  return eliminate(F, A, nullptr).size();
}

}  // namespace ssbft
