// Message-complexity experiment: correct-node traffic per beat vs n for
// every algorithm family (Table 1's families plus the cascade), measured
// after convergence so the steady state is compared.
//
// Expected shape: Dolev-Welch O(n^2) messages of O(1) words; pipelined BA
// clocks O(f * n^2) (R concurrent instances, R ~ f); ss-Byz-Clock-Sync
// with the FM coin O(n^2) messages but O(n) words each from the GVSS
// rounds (O(n^3) words per beat); with the oracle coin, O(n^2) total.
#include <iostream>

#include "bench_common.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

struct Traffic {
  double msgs = 0, bytes = 0;
};

Traffic steady_state(const EngineBuilder& builder, std::uint64_t beats) {
  auto bundle = builder(shifted_seed(123));
  bundle.engine->run_beats(beats);
  // Discard warmup: measure the second half only.
  const auto& hist = bundle.engine->metrics().history();
  Traffic t;
  std::uint64_t counted = 0;
  for (std::size_t i = hist.size() / 2; i < hist.size(); ++i) {
    t.msgs += static_cast<double>(hist[i].correct_messages);
    t.bytes += static_cast<double>(hist[i].correct_bytes);
    ++counted;
  }
  t.msgs /= static_cast<double>(counted);
  t.bytes /= static_cast<double>(counted);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  if (options().trials != 0 || options().jobs != 0) {
    std::cerr << "note: this bench measures one steady-state engine per row; "
                 "--trials/--jobs have no effect here (--seed applies)\n";
  }
  std::cout << "=== Steady-state traffic per beat (all correct nodes, "
               "k = 16, silent adversary) ===\n\n";
  AsciiTable t({"algorithm", "n", "f", "msgs/beat", "KiB/beat",
                "msgs/beat/node"});
  struct NF {
    std::uint32_t n, f;
  };
  for (const auto [n, f] : {NF{4, 1}, NF{7, 2}, NF{10, 3}, NF{13, 4}}) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 16;
    w.attack = Attack::kSilent;

    auto add = [&](const std::string& name, const EngineBuilder& b,
                   std::uint64_t beats) {
      const Traffic tr = steady_state(b, beats);
      t.add_row({name, std::to_string(n), std::to_string(f),
                 fmt_double(tr.msgs, 0), fmt_double(tr.bytes / 1024.0, 1),
                 fmt_double(tr.msgs / (n - f), 1)});
    };

    add("Dolev-Welch [10]", build_dolev_welch(w), 400);
    {
      World wq = w;
      wq.f = (n - 1) / 4;
      wq.actual = wq.f;
      add("pipelined queen [15]", build_pipelined(wq, false), 200);
    }
    add("pipelined king [7]", build_pipelined(w, true), 200);
    add("ss-Byz-Clock-Sync (oracle)", build_clock_sync(w), 300);
    {
      World wf = w;
      wf.coin = CoinKind::kFm;
      add("ss-Byz-Clock-Sync (FM coin)", build_clock_sync(wf),
          n >= 10 ? 60 : 150);
    }
  }
  t.print(std::cout);
  std::cout << "\nCSV follows:\n";
  t.print_csv(std::cout);
  return 0;
}
