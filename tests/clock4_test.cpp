// Tests for ss-Byz-4-Clock (Figure 3, Theorem 3) in both coin-pipeline
// modes (Remark 4.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "coin/oracle_coin.h"
#include "core/clock4.h"
#include "harness/convergence.h"
#include "harness/runner.h"

namespace ssbft {
namespace {

struct Clock4Param {
  std::uint32_t n;
  std::uint32_t f;
  CoinPipelineMode mode;
};

EngineBundle build_clock4(const Clock4Param& p, std::uint64_t seed) {
  auto beacon = std::make_shared<OracleBeacon>(
      p.n, OracleCoinParams{0.45, 0.45}, Rng(seed).split("beacon"));
  CoinSpec spec = oracle_coin_spec(beacon);
  EngineConfig cfg;
  cfg.n = p.n;
  cfg.f = p.f;
  cfg.faulty = EngineConfig::last_ids_faulty(p.n, p.f);
  cfg.seed = seed;
  std::unique_ptr<Adversary> adv;
  if (p.f > 0) {
    ByteWriter a, b;
    a.u8(0);
    b.u8(1);
    adv = make_split_value_adversary(0, std::move(a).take(),
                                     std::move(b).take());
  }
  auto factory = [spec, mode = p.mode](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByz4Clock>(env, spec, 0, rng, mode);
  };
  EngineBundle bundle;
  bundle.engine = std::make_unique<Engine>(cfg, factory, std::move(adv));
  bundle.engine->add_listener(beacon.get());
  bundle.keepalive = beacon;
  return bundle;
}

class Clock4Test : public ::testing::TestWithParam<Clock4Param> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, Clock4Test,
    ::testing::Values(
        Clock4Param{4, 1, CoinPipelineMode::kPerSubClock},
        Clock4Param{4, 1, CoinPipelineMode::kShared},
        Clock4Param{7, 2, CoinPipelineMode::kPerSubClock},
        Clock4Param{7, 2, CoinPipelineMode::kShared},
        Clock4Param{10, 3, CoinPipelineMode::kPerSubClock},
        Clock4Param{4, 0, CoinPipelineMode::kPerSubClock}));

TEST_P(Clock4Test, ConvergesAndCyclesThroughFourValues) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto bundle = build_clock4(GetParam(), seed * 211);
    ConvergenceConfig cc;
    cc.max_beats = 4000;
    cc.confirm_window = 16;
    const auto res = measure_convergence(*bundle.engine, cc);
    ASSERT_TRUE(res.converged) << "seed " << seed;
    // Theorem 3's pattern: the public clock walks 0,1,2,3,0,...
    auto prev = bundle.engine->correct_clocks().front();
    std::set<ClockValue> visited;
    for (int i = 0; i < 32; ++i) {
      bundle.engine->run_beat();
      ASSERT_TRUE(clocks_agree(*bundle.engine));
      const auto cur = bundle.engine->correct_clocks().front();
      EXPECT_EQ(cur, (prev + 1) % 4);
      visited.insert(cur);
      prev = cur;
    }
    EXPECT_EQ(visited.size(), 4u);
  }
}

TEST(Clock4, SubClockPatternMatchesTheorem3) {
  // Once synced, (clock(A1), clock(A2)) must cycle through the proof's
  // pattern: A1 alternates every beat, A2 every other beat.
  auto bundle = build_clock4({4, 1, CoinPipelineMode::kPerSubClock}, 5);
  ConvergenceConfig cc;
  cc.max_beats = 4000;
  ASSERT_TRUE(measure_convergence(*bundle.engine, cc).converged);
  const auto& proto =
      dynamic_cast<const SsByz4Clock&>(bundle.engine->node(0));
  auto a1_prev = proto.a1().clock();
  int a2_flips = 0;
  auto a2_prev = proto.a2().clock();
  for (int i = 0; i < 16; ++i) {
    bundle.engine->run_beat();
    EXPECT_NE(proto.a1().clock(), a1_prev);  // A1 alternates every beat
    a1_prev = proto.a1().clock();
    if (proto.a2().clock() != a2_prev) ++a2_flips;
    a2_prev = proto.a2().clock();
  }
  EXPECT_EQ(a2_flips, 8);  // A2 flips exactly every other beat
}

TEST(Clock4, SharedPipelineUsesFewerCoinChannels) {
  CoinSpec fm = fm_coin_spec();
  EXPECT_EQ(SsByz4Clock::channels_needed(fm, CoinPipelineMode::kPerSubClock),
            10u);
  EXPECT_EQ(SsByz4Clock::channels_needed(fm, CoinPipelineMode::kShared), 6u);
}

TEST(Clock4, SharedPipelineSendsLessCoinTraffic) {
  // Remark 4.1: one pipeline instead of two must cut messages per beat.
  auto traffic = [](CoinPipelineMode mode) {
    EngineConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.faulty = {3};
    cfg.seed = 7;
    CoinSpec spec = fm_coin_spec();
    auto factory = [spec, mode](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByz4Clock>(env, spec, 0, rng, mode);
    };
    Engine eng(cfg, factory, make_silent_adversary());
    eng.run_beats(40);
    return eng.metrics().mean_correct_messages_per_beat();
  };
  EXPECT_LT(traffic(CoinPipelineMode::kShared),
            traffic(CoinPipelineMode::kPerSubClock));
}

TEST(Clock4, ReconvergesAfterMidRunCorruption) {
  auto bundle = build_clock4({7, 2, CoinPipelineMode::kPerSubClock}, 11);
  ConvergenceConfig cc;
  cc.max_beats = 4000;
  ASSERT_TRUE(measure_convergence(*bundle.engine, cc).converged);
  bundle.engine->corrupt_node(0);
  bundle.engine->corrupt_node(2);
  EXPECT_TRUE(measure_convergence(*bundle.engine, cc).converged);
}

TEST(Clock4, FullStackWithFmCoin) {
  EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.faulty = {3};
  cfg.seed = 13;
  CoinSpec spec = fm_coin_spec();
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByz4Clock>(env, spec, 0, rng,
                                         CoinPipelineMode::kShared);
  };
  Engine eng(cfg, factory, make_random_noise_adversary(6, 48));
  ConvergenceConfig cc;
  cc.max_beats = 2500;
  EXPECT_TRUE(measure_convergence(eng, cc).converged);
}

}  // namespace
}  // namespace ssbft
