// Thin wrapper over the experiment registry: `bench_table1` is exactly
// `ssbft_bench run table1` (same CLI, same byte-identical default
// output). The experiment body lives in experiments.cpp; the scenario
// cells it runs are registered in src/harness/scenario.cpp.
#include "experiments.h"

int main(int argc, char** argv) {
  return ssbft::bench::bench_main("table1", argc, argv);
}
