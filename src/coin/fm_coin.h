// A Feldman-Micali-style probabilistic coin-flipping instance
// (Definition 2.6; Observation 2.1).
//
// Every node deals a uniform secret of Z_p through graded VSS; after the
// one-round recover phase each node outputs the parity of the sum of the
// recovered secrets of all dealers it graded >= 1 (kLow). Properties:
//
//   (termination)      exactly 4 send rounds (Delta_A = 4): deal, cross-
//                      check, happy votes, recover shares;
//   (binary output)    parity of a field-element sum;
//   (events E0/E1)     correct dealers are graded 2 by everyone and their
//                      secrets recovered identically by everyone; when the
//                      adversary's dealings do not split grades across
//                      correct nodes, all nodes sum the same set and the
//                      parity is a fair common coin (p0 ~ p1 ~ 1/2 up to
//                      the 2^-61 bias of parity over Z_(2^61-1));
//   (unpredictability) dealings are degree-f symmetric bivariate
//                      polynomials — f rows give zero information, so the
//                      sum is unknowable to the adversary until the
//                      recover round, by which time all its dealings are
//                      committed (graded).
//
// Full Feldman-Micali guarantees constant common-coin probability against
// *every* adversary via additional oblivious-coin machinery; this simpler
// graded-inclusion rule can diverge when an adversarial dealing lands on
// the grade-1/grade-0 boundary at different correct nodes. That gap is a
// documented substitution (DESIGN.md): bench_coin_quality measures the
// realized p0/p1 per adversary, including a dedicated grade-splitting
// attacker, and the clock layer above consumes only the measured
// constants.
//
// Wire format (compact, PR 4)
// ---------------------------
// Deal, cross and share vectors travel as masked field vectors
// (ByteWriter::masked_u64_vec): a validity bitmask (1 bit per entry, the
// sentinel "no value" entries masked out) followed by the present values
// bit-packed at field.value_bits() bits each (61 for the default Mersenne
// prime instead of 64, and no length prefix — the vector length is fixed
// by (n, f), which both sides know). Vote masks travel as raw
// ceil(n/8)-byte bitmasks (ByteWriter::bits). Decoding is strict: mask or
// padding garbage, truncation and trailing bytes are all rejected exactly
// like the old u64_vec `at_end()` contract, and a masked-out entry decodes
// to the sentinel, so the round logic is unchanged — only the bytes on the
// wire shrink (a missing row costs 1 bit, not 8 bytes).
//
// Hot-path layout
// ---------------
// All per-dealer state is flat uint64 storage: each received row is
// validated once and immediately evaluated at every node point (one
// eval_many pass per dealing feeds rounds 2-4, replacing repeated Horner
// walks), vote masks are bit-packed words (support/bitwords.h), and every
// round-transient buffer lives in an FmCoinScratch shared by the staggered
// instances of one pipeline — at any beat exactly one instance executes a
// given round, so round-local scratch never overlaps. Together with the
// pipeline's reinit-recycling, a warm FM-coin beat performs zero heap
// allocations (tests/alloc_test.cpp pins this for the full clock stack).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coin/coin_interface.h"
#include "coin/gvss.h"
#include "field/fp.h"

namespace ssbft {

struct FmCoinParams {
  // Field modulus. 0 selects the default 61-bit Mersenne prime. Any prime
  // > n works (Remark 2.3: derived canonically from the code's constants);
  // smaller primes skew the parity coin but remain constant-probability.
  std::uint64_t prime = 0;

  std::uint64_t resolve_prime() const {
    return prime == 0 ? PrimeField::kDefaultPrime : prime;
  }
};

// Round-transient buffers plus the (field, n, f) recovery tables, shared by
// all instances of one coin pipeline (and across beats). Instances built
// without one allocate a private copy, so standalone use needs no plumbing.
struct FmCoinScratch {
  // Idempotent per (modulus, n, f); rebuilds when the shape changes.
  void ensure(const PrimeField& F, std::uint32_t n, std::uint32_t f);

  std::uint64_t modulus = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;

  std::vector<std::uint64_t> points;   // node points 1..n, for eval_many
  std::vector<std::uint64_t> row_buf;  // f+1 row coefficients (deal codec)
  std::vector<std::uint64_t> vals;     // n-element payload codec buffer
  std::vector<std::uint64_t> shares;   // n x n received share matrix
  std::vector<std::uint8_t> shares_ok; // per sender: decoded cleanly
  std::vector<std::uint32_t> votes;    // per dealer: happy-vote tally
  std::vector<RsPoint> pts;            // recovery point set (capacity n)
  GvssRecoverTable table;              // steady-state recovery fast path
};

class FmCoinInstance final : public CoinInstance {
 public:
  FmCoinInstance(const ProtocolEnv& env, const FmCoinParams& params, Rng rng,
                 std::shared_ptr<FmCoinScratch> scratch = nullptr);

  int rounds() const override { return kRounds; }
  void send_round(int round, Outbox& out, ChannelId base) override;
  void receive_round(int round, const Inbox& in, ChannelId base) override;
  bool output() const override { return output_bit_; }
  void reinit(Rng rng) override;
  void randomize_state(Rng& rng) override;

  static constexpr int kRounds = 4;

  // Introspection for tests.
  GvssGrade grade_of(NodeId dealer) const { return grades_[dealer]; }
  std::uint64_t my_secret() const { return dealing_.secret(); }

 private:
  void send_deal(Outbox& out, ChannelId ch);
  void send_cross(Outbox& out, ChannelId ch);
  void send_votes(Outbox& out, ChannelId ch);
  void send_shares(Outbox& out, ChannelId ch);
  void recv_deal(const Inbox& in, ChannelId ch);
  void recv_cross(const Inbox& in, ChannelId ch);
  void recv_votes(const Inbox& in, ChannelId ch);
  void recv_shares(const Inbox& in, ChannelId ch);

  // row_evals_ accessors: dealer d's row evaluated at 0 / at node_point(j).
  std::uint64_t& eval_at_zero(NodeId d) {
    return row_evals_[std::size_t{d} * (env_.n + 1)];
  }
  std::uint64_t& eval_at_node(NodeId d, NodeId j) {
    return row_evals_[std::size_t{d} * (env_.n + 1) + 1 + j];
  }

  ProtocolEnv env_;
  PrimeField field_;
  Rng rng_;
  GvssDealing dealing_;  // my own secret's dealing
  std::shared_ptr<FmCoinScratch> scratch_;
  std::size_t words_;    // bitword_count(n)
  unsigned value_bits_;  // field_.value_bits(), for the masked wire codec

  // Per dealer d: whether my row of d's dealing is valid, and its
  // evaluations at 0 and every node point (n x (n+1) flat table) — the one
  // O(n*f) pass per dealing that rounds 2-4 read from.
  std::vector<std::uint8_t> row_valid_;
  std::vector<std::uint64_t> row_evals_;
  // Per dealer d: number of nodes whose cross value matched my row.
  std::vector<std::uint32_t> cross_matches_;
  // My happy votes, bit-packed (wire format of round 3).
  std::vector<std::uint64_t> happy_words_;
  // Round-3 bitmask received from node j (row j of a flat word matrix;
  // vote_valid_[j] distinguishes "nothing valid" from all-zero votes).
  std::vector<std::uint64_t> voted_words_;
  std::vector<std::uint8_t> vote_valid_;
  // Per dealer d: grade derived from the votes.
  std::vector<GvssGrade> grades_;

  bool output_bit_ = false;
};

// CoinSpec for the self-stabilizing pipeline over FM instances
// (ss-Byz-Coin-Flip with A = this coin; Theorem 1). Uses 4 channels.
CoinSpec fm_coin_spec(FmCoinParams params = {});

}  // namespace ssbft
