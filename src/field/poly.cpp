#include "field/poly.h"

#include <algorithm>

#include "support/check.h"

namespace ssbft {

Poly::Poly(std::vector<std::uint64_t> coeffs) : coeffs_(std::move(coeffs)) {
  normalize();
}

Poly Poly::random_with_constant(const PrimeField& F, int deg,
                                std::uint64_t constant, Rng& rng) {
  SSBFT_REQUIRE(deg >= 0 && F.valid(constant));
  std::vector<std::uint64_t> c(static_cast<std::size_t>(deg) + 1);
  c[0] = constant;
  for (int i = 1; i <= deg; ++i) c[static_cast<std::size_t>(i)] = F.uniform(rng);
  return Poly(std::move(c));
}

Poly Poly::random(const PrimeField& F, int deg, Rng& rng) {
  SSBFT_REQUIRE(deg >= 0);
  std::vector<std::uint64_t> c(static_cast<std::size_t>(deg) + 1);
  for (auto& x : c) x = F.uniform(rng);
  return Poly(std::move(c));
}

int Poly::degree() const { return static_cast<int>(coeffs_.size()) - 1; }

bool Poly::is_zero() const { return coeffs_.empty(); }

void Poly::normalize() {
  while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
}

std::uint64_t Poly::eval(const PrimeField& F, std::uint64_t x) const {
  // Horner's rule.
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = F.add(F.mul(acc, x), coeffs_[i]);
  }
  return acc;
}

Poly Poly::add(const PrimeField& F, const Poly& o) const {
  std::vector<std::uint64_t> c(std::max(coeffs_.size(), o.coeffs_.size()), 0);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = F.add(coeff(i), o.coeff(i));
  return Poly(std::move(c));
}

Poly Poly::sub(const PrimeField& F, const Poly& o) const {
  std::vector<std::uint64_t> c(std::max(coeffs_.size(), o.coeffs_.size()), 0);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = F.sub(coeff(i), o.coeff(i));
  return Poly(std::move(c));
}

Poly Poly::mul(const PrimeField& F, const Poly& o) const {
  if (is_zero() || o.is_zero()) return Poly();
  std::vector<std::uint64_t> c(coeffs_.size() + o.coeffs_.size() - 1, 0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0) continue;
    for (std::size_t j = 0; j < o.coeffs_.size(); ++j) {
      c[i + j] = F.add(c[i + j], F.mul(coeffs_[i], o.coeffs_[j]));
    }
  }
  return Poly(std::move(c));
}

Poly Poly::scale(const PrimeField& F, std::uint64_t c) const {
  std::vector<std::uint64_t> out(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) out[i] = F.mul(coeffs_[i], c);
  return Poly(std::move(out));
}

std::pair<Poly, Poly> Poly::divmod(const PrimeField& F, const Poly& divisor) const {
  SSBFT_REQUIRE_MSG(!divisor.is_zero(), "polynomial division by zero");
  std::vector<std::uint64_t> rem = coeffs_;
  const int dd = divisor.degree();
  const std::uint64_t lead_inv = F.inv(divisor.coeffs_.back());
  std::vector<std::uint64_t> quot;
  if (degree() >= dd) quot.assign(static_cast<std::size_t>(degree() - dd) + 1, 0);
  for (int i = degree(); i >= dd; --i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (rem.size() <= ui || rem[ui] == 0) continue;
    const std::uint64_t q = F.mul(rem[ui], lead_inv);
    quot[static_cast<std::size_t>(i - dd)] = q;
    for (int j = 0; j <= dd; ++j) {
      const std::size_t ri = static_cast<std::size_t>(i - dd + j);
      rem[ri] = F.sub(rem[ri], F.mul(q, divisor.coeff(static_cast<std::size_t>(j))));
    }
  }
  return {Poly(std::move(quot)), Poly(std::move(rem))};
}

Poly lagrange_interpolate(const PrimeField& F,
                          const std::vector<std::uint64_t>& xs,
                          const std::vector<std::uint64_t>& ys) {
  SSBFT_REQUIRE(xs.size() == ys.size() && !xs.empty());
  const std::size_t m = xs.size();
  // result = sum_i ys[i] * prod_{j != i} (x - xs[j]) / (xs[i] - xs[j])
  Poly result;
  for (std::size_t i = 0; i < m; ++i) {
    Poly basis(std::vector<std::uint64_t>{1});
    std::uint64_t denom = 1;
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      // basis *= (x - xs[j])
      basis = basis.mul(F, Poly(std::vector<std::uint64_t>{F.neg(xs[j]), 1}));
      const std::uint64_t d = F.sub(xs[i], xs[j]);
      SSBFT_REQUIRE_MSG(d != 0, "interpolation nodes must be distinct");
      denom = F.mul(denom, d);
    }
    result = result.add(F, basis.scale(F, F.mul(ys[i], F.inv(denom))));
  }
  return result;
}

}  // namespace ssbft
