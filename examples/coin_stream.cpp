// The self-stabilizing shared-coin stream as a standalone service
// (Section 6.1: "a self-stabilizing access to a stream of shared coins").
//
// Runs ss-Byz-Coin-Flip over the Feldman-Micali-style GVSS coin on n nodes
// with f Byzantine, prints every node's per-beat output bit, and marks the
// beats where all correct nodes agree. After the pipeline's Delta_A = 4
// warmup every beat should be marked.
//
//   $ ./coin_stream [n] [f] [beats] [seed]
#include <iostream>
#include <string>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "sim/engine.h"

using namespace ssbft;

namespace {

class CoinHost final : public Protocol {
 public:
  CoinHost(const ProtocolEnv& env, const CoinSpec& spec, Rng rng)
      : channels_(spec.channels), coin_(spec.make(env, 0, rng)) {}
  void send_phase(Outbox& out) override { coin_->send_phase(out); }
  void receive_phase(const Inbox& in) override {
    bits_.push_back(coin_->receive_phase(in));
  }
  void randomize_state(Rng& rng) override { coin_->randomize_state(rng); }
  std::uint32_t channel_count() const override { return channels_; }
  const std::vector<bool>& bits() const { return bits_; }

 private:
  std::uint32_t channels_;
  std::unique_ptr<CoinComponent> coin_;
  std::vector<bool> bits_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 4;
  const std::uint32_t f = argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 1;
  const std::uint64_t beats = argc > 3 ? std::stoull(argv[3]) : 24;
  const std::uint64_t seed = argc > 4 ? std::stoull(argv[4]) : 3;

  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  CoinSpec spec = fm_coin_spec();
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<CoinHost>(env, spec, rng);
  };
  Engine engine(cfg, factory,
                f > 0 ? make_fm_coin_attacker(PrimeField::kDefaultPrime, 0)
                      : nullptr);
  engine.run_beats(beats);

  std::cout << "self-stabilizing coin stream: n=" << n << " f=" << f
            << " (GVSS attacker active), field p = 2^61-1\n"
            << "pipeline warmup Delta_A = " << FmCoinInstance::kRounds
            << " beats (Lemma 1)\n\nbeat | bits per correct node | common?\n";
  std::uint64_t common_after_warmup = 0;
  for (std::uint64_t i = 0; i < beats; ++i) {
    std::cout << (i < 10 ? "   " : "  ") << i << " | ";
    bool all_same = true;
    bool first = false;
    bool first_set = false;
    for (NodeId id : engine.correct_ids()) {
      const bool bit =
          dynamic_cast<const CoinHost&>(engine.node(id)).bits()[i];
      if (!first_set) {
        first = bit;
        first_set = true;
      }
      all_same &= (bit == first);
      std::cout << (bit ? '1' : '0') << ' ';
    }
    std::cout << "| " << (all_same ? "yes" : "NO") << "\n";
    if (all_same && i >= FmCoinInstance::kRounds) ++common_after_warmup;
  }
  std::cout << "\ncommon beats after warmup: " << common_after_warmup << "/"
            << (beats - FmCoinInstance::kRounds)
            << "  (each is one shared random bit usable by any randomized "
               "self-stabilizing protocol)\n";
  return 0;
}
