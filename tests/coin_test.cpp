// Tests for the coin stack: oracle beacon, local coin, the ss-Byz-Coin-Flip
// pipeline (Figure 1 / Lemma 1), and the FM-style GVSS coin over the real
// engine (Theorem 1).
#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "coin/coin_pipeline.h"
#include "coin/fm_coin.h"
#include "coin/local_coin.h"
#include "coin/oracle_coin.h"
#include "harness/runner.h"
#include "helpers.h"
#include "sim/engine.h"
#include "support/check.h"

namespace ssbft {
namespace {

using testing::CoinHostProtocol;
using testing::common_bit_fraction;

EngineBundle coin_engine(std::uint32_t n, std::uint32_t f, const CoinSpec& spec,
                         std::uint64_t seed,
                         std::unique_ptr<Adversary> adversary,
                         std::shared_ptr<OracleBeacon> beacon = nullptr) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  cfg.faults.randomize_genesis = true;
  auto factory = [&spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<CoinHostProtocol>(env, spec, rng);
  };
  EngineBundle bundle;
  bundle.engine = std::make_unique<Engine>(cfg, factory, std::move(adversary));
  if (beacon) {
    bundle.engine->add_listener(beacon.get());
    bundle.keepalive = beacon;
  }
  return bundle;
}

// --- Oracle beacon ---------------------------------------------------------

TEST(OracleBeacon, CommonEventFrequenciesMatchParams) {
  OracleCoinParams params{0.3, 0.2};
  OracleBeacon beacon(5, params, Rng(1));
  int common0 = 0, common1 = 0;
  const int beats = 20000;
  for (int b = 0; b < beats; ++b) {
    beacon.on_beat(static_cast<Beat>(b));
    if (beacon.is_common()) {
      (beacon.common_value() ? common1 : common0)++;
      for (NodeId i = 0; i < 5; ++i) {
        EXPECT_EQ(beacon.bit_for(i), beacon.common_value());
      }
    }
  }
  EXPECT_NEAR(common0 / static_cast<double>(beats), 0.3, 0.02);
  EXPECT_NEAR(common1 / static_cast<double>(beats), 0.2, 0.02);
}

TEST(OracleBeacon, RejectsBadParams) {
  EXPECT_THROW(OracleBeacon(3, {0.7, 0.7}, Rng(1)), contract_error);
}

TEST(OracleCoin, CommonFractionMatchesP0PlusP1) {
  auto beacon = std::make_shared<OracleBeacon>(4, OracleCoinParams{0.4, 0.4},
                                               Rng(7));
  auto bundle = coin_engine(4, 0, oracle_coin_spec(beacon), 7, nullptr, beacon);
  bundle.engine->run_beats(4000);
  // Independent draws also coincide sometimes: expected commonality
  // = p0 + p1 + (1 - p0 - p1) * 2^-(n-1) = 0.8 + 0.2/8 = 0.825.
  EXPECT_NEAR(common_bit_fraction(*bundle.engine, 0), 0.825, 0.04);
}

TEST(LocalCoin, RarelyCommonForManyNodes) {
  auto bundle = coin_engine(8, 0, local_coin_spec(), 3, nullptr);
  bundle.engine->run_beats(2000);
  // All-8-equal happens w.p. 2 * 2^-8 = 1/128 per beat.
  EXPECT_LT(common_bit_fraction(*bundle.engine, 0), 0.05);
}

// --- Pipeline mechanics (Figure 1) ------------------------------------------

// A scripted instance that records which rounds each of its *lifetimes*
// executed (a lifetime starts at construction or reinit), proving the
// pipeline drives every logical instance through rounds 1..Delta exactly
// once and in order, and recycles objects rather than reallocating.
class ScriptedInstance final : public CoinInstance {
 public:
  explicit ScriptedInstance(std::vector<std::vector<int>>* logs)
      : logs_(logs) {
    start_lifetime();
  }
  int rounds() const override { return 3; }
  void send_round(int round, Outbox&, ChannelId) override {
    if (logs_) (*logs_)[lifetime_].push_back(round);
  }
  void receive_round(int round, const Inbox&, ChannelId) override {
    last_round_ = round;
  }
  bool output() const override {
    // Output is only read after the final round.
    EXPECT_EQ(last_round_, 3);
    return true;
  }
  void reinit(Rng) override {
    start_lifetime();
    last_round_ = 0;
  }
  void randomize_state(Rng&) override {}

 private:
  void start_lifetime() {
    if (logs_) {
      logs_->emplace_back();
      lifetime_ = logs_->size() - 1;
    }
  }

  std::vector<std::vector<int>>* logs_;
  std::size_t lifetime_ = 0;
  int last_round_ = 0;
};

TEST(CoinPipeline, DrivesEachInstanceThroughAllRoundsInOrder) {
  std::vector<std::vector<int>> logs;
  int created = 0;
  CoinInstanceFactory factory = [&](Rng) {
    ++created;
    return std::make_unique<ScriptedInstance>(&logs);
  };
  SsByzCoinFlip pipe(factory, 3, 0, Rng(1));
  EXPECT_EQ(created, 3);  // initial fill
  Inbox in(1, 8);
  for (int beat = 0; beat < 6; ++beat) {
    Outbox out(0, 1);
    pipe.send_phase(out);
    EXPECT_TRUE(pipe.receive_phase(in));
  }
  // Retired instances are reinit-recycled, never reallocated.
  EXPECT_EQ(created, 3);
  // 3 genesis lifetimes + one recycled lifetime per beat.
  ASSERT_EQ(logs.size(), 9u);
  // Every fully-fresh lifetime ran rounds 1, 2, 3 in order (genesis
  // lifetimes start mid-pipeline; recycled ones get the whole ladder).
  EXPECT_EQ(logs[3], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(logs[4], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(logs[5], (std::vector<int>{1, 2, 3}));
}

TEST(CoinPipeline, RejectsMismatchedDepth) {
  CoinInstanceFactory factory = [](Rng) {
    return std::make_unique<ScriptedInstance>(nullptr);
  };
  EXPECT_THROW(SsByzCoinFlip(factory, 5, 0, Rng(1)), contract_error);
}

// --- FM coin over the engine -------------------------------------------------

struct FmParam {
  std::uint32_t n;
  std::uint32_t f;
};

class FmCoinEngineTest : public ::testing::TestWithParam<FmParam> {};

INSTANTIATE_TEST_SUITE_P(Sweep, FmCoinEngineTest,
                         ::testing::Values(FmParam{4, 1}, FmParam{7, 2},
                                           FmParam{5, 1}));

TEST_P(FmCoinEngineTest, AllCorrectNodesShareEveryBitWithoutByzantine) {
  const auto [n, f] = GetParam();
  auto bundle = coin_engine(n, 0, fm_coin_spec(), 11 + n, nullptr);
  // Warmup = pipeline depth (Lemma 1: Delta_C = Delta_A = 4), then every
  // beat's bit must be common when nobody interferes.
  bundle.engine->run_beats(60);
  EXPECT_EQ(common_bit_fraction(*bundle.engine, FmCoinInstance::kRounds), 1.0);
}

TEST_P(FmCoinEngineTest, CommonAndFairUnderSilentByzantine) {
  const auto [n, f] = GetParam();
  auto bundle = coin_engine(n, f, fm_coin_spec(), 13 + n,
                            make_silent_adversary());
  bundle.engine->run_beats(400);
  EXPECT_EQ(common_bit_fraction(*bundle.engine, FmCoinInstance::kRounds), 1.0);
  // Fairness: the common stream should be roughly balanced.
  const auto& bits = dynamic_cast<const CoinHostProtocol&>(
                         bundle.engine->node(0))
                         .bits();
  int ones = 0;
  for (std::size_t i = FmCoinInstance::kRounds; i < bits.size(); ++i) {
    ones += bits[i] ? 1 : 0;
  }
  const double frac =
      ones / static_cast<double>(bits.size() - FmCoinInstance::kRounds);
  EXPECT_GT(frac, 0.30);
  EXPECT_LT(frac, 0.70);
}

TEST_P(FmCoinEngineTest, MostlyCommonUnderNoiseAdversary) {
  const auto [n, f] = GetParam();
  auto bundle = coin_engine(n, f, fm_coin_spec(), 17 + n,
                            make_random_noise_adversary(10, 64));
  bundle.engine->run_beats(200);
  // Random garbage cannot forge consistent dealings/votes; the stream
  // stays common.
  EXPECT_EQ(common_bit_fraction(*bundle.engine, FmCoinInstance::kRounds), 1.0);
}

TEST(FmCoin, RecoversCommonalityAfterTransientCorruption) {
  auto bundle = coin_engine(4, 1, fm_coin_spec(), 23, make_silent_adversary());
  bundle.engine->run_beats(30);
  bundle.engine->corrupt_node(0);
  bundle.engine->corrupt_node(1);
  // Within pipeline depth the corrupted slots are flushed (Lemma 1).
  bundle.engine->run_beats(FmCoinInstance::kRounds + 1);
  const std::size_t resume =
      dynamic_cast<const CoinHostProtocol&>(bundle.engine->node(0))
          .bits()
          .size();
  bundle.engine->run_beats(50);
  EXPECT_EQ(common_bit_fraction(*bundle.engine, resume), 1.0);
}

TEST(FmCoin, MeasuredCommonalityUnderFmAttacker) {
  // The dedicated GVSS attacker (grade games + share equivocation). The
  // simplified graded-inclusion rule documents a divergence gap; this test
  // pins the *measured* floor: commonality must remain a usable constant.
  auto bundle = coin_engine(7, 2, fm_coin_spec(), 29,
                            make_fm_coin_attacker(PrimeField::kDefaultPrime, 0));
  bundle.engine->run_beats(200);
  EXPECT_GT(common_bit_fraction(*bundle.engine, FmCoinInstance::kRounds), 0.5);
}

TEST(FmCoin, InstanceRejectsTinyField) {
  ProtocolEnv env{0, 10, 3};
  FmCoinParams params;
  params.prime = 7;  // prime but <= n: violates Remark 2.3
  EXPECT_THROW(FmCoinInstance(env, params, Rng(1)), contract_error);
}

TEST(FmCoin, SmallestPrimeFieldStillWorks) {
  // Remark 2.3's canonical "smallest prime > n" choice must function, just
  // with a more biased parity.
  FmCoinParams params;
  params.prime = 5;  // n = 4 -> smallest prime above is 5
  auto bundle = coin_engine(4, 1, fm_coin_spec(params), 31,
                            make_silent_adversary());
  bundle.engine->run_beats(100);
  EXPECT_EQ(common_bit_fraction(*bundle.engine, FmCoinInstance::kRounds), 1.0);
}

TEST(FmCoin, CorrectDealersGetHighGrades) {
  // Drive one instance directly over a 4-node engine with no faults and
  // inspect grades after the decide round.
  ProtocolEnv env{0, 4, 1};
  (void)env;  // grades are engine-tested via the host below
  auto bundle = coin_engine(4, 0, fm_coin_spec(), 37, nullptr);
  bundle.engine->run_beats(20);
  // All bits common already checked elsewhere; here: the stream exists and
  // is deterministic under replay.
  auto bundle2 = coin_engine(4, 0, fm_coin_spec(), 37, nullptr);
  bundle2.engine->run_beats(20);
  const auto& b1 =
      dynamic_cast<const CoinHostProtocol&>(bundle.engine->node(0)).bits();
  const auto& b2 =
      dynamic_cast<const CoinHostProtocol&>(bundle2.engine->node(0)).bits();
  EXPECT_EQ(b1, b2);
}

}  // namespace
}  // namespace ssbft
