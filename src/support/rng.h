// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component of the simulator draws from an Rng that is
// derived, via named splits, from a single experiment seed. This makes every
// run exactly reproducible from (seed, parameters) alone — a requirement for
// the benchmark harness and for debugging adversarial interleavings.
//
// The core generator is xoshiro256** seeded through splitmix64, the standard
// construction recommended by its authors. It is not cryptographic; the
// adversary model is information-theoretic and secrecy in the simulation is
// enforced structurally (the adversary object is simply never shown
// correct-node state), not computationally.
#pragma once

#include <cstdint>
#include <string_view>

namespace ssbft {

// splitmix64 step; used for seeding and for hashing split labels.
std::uint64_t splitmix64(std::uint64_t& state);

// Stateless 64-bit mix of a string label into a seed domain.
std::uint64_t hash_label(std::uint64_t seed, std::string_view label);

class Rng {
 public:
  // Seeds the four xoshiro words from splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0);

  // Uniform in [0, 2^64).
  std::uint64_t next_u64();

  // Uniform in [0, bound). bound must be nonzero. Uses rejection sampling,
  // so the result is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  // Fair coin.
  bool next_bool();

  // Bernoulli(p) with p in [0,1].
  bool next_bernoulli(double p);

  // Uniform double in [0,1).
  double next_double();

  // A generator for an independent named stream. Derived generators do not
  // advance this generator's state, so adding a new split never perturbs
  // existing streams ("split stability").
  Rng split(std::string_view label) const;

  // Split keyed by an index (e.g. per-node, per-trial streams).
  Rng split(std::string_view label, std::uint64_t index) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t origin_seed_;  // remembered so splits derive from the seed
};

}  // namespace ssbft
