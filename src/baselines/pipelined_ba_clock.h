// Deterministic self-stabilizing clock synchronization via pipelined
// one-shot Byzantine agreement — the [15]/[7] baseline family of Table 1.
//
// Two coupled mechanisms:
//
//   * quorum stepping: every beat each node broadcasts its clock; when some
//     value v reaches n-f support (unique by quorum intersection), the node
//     steps to v+1. Once all correct nodes are equal, this branch fires at
//     every correct node forever — deterministic closure.
//   * BA reconciliation: R staggered one-shot BA instances (R = the BA's
//     round count, a function of f) run concurrently, one completing per
//     beat; when the quorum branch fails, the node adopts the completing
//     instance's output. Agreement makes every BA-branch node adopt the
//     same value, so at most R+2 beats after coherence there is a beat
//     where all correct nodes are equal — from which the quorum branch
//     locks in. Convergence is deterministic Theta(f).
//
// The genuine [15]/[7] algorithms defeat an *adaptive* quorum-splitting
// adversary (which keeps exactly n-2f correct nodes on a boosted value)
// with substantially heavier machinery; this baseline preserves their
// Table-1 characteristics — deterministic, Theta(f) convergence, f < n/4
// (phase queen) vs f < n/3 (phase king) resiliency — under the adversary
// suite this repository fields (see DESIGN.md, substitution 3).
//
// Instantiate with:
//   * turpin_coan(phase_queen): deterministic, O(f), f < n/4 — [15]'s row;
//   * turpin_coan(phase_king):  deterministic, O(f), f < n/3 — [7]'s row.
#pragma once

#include <memory>
#include <vector>

#include "agreement/ba_interface.h"
#include "sim/protocol.h"

namespace ssbft {

class PipelinedBaClock final : public ClockProtocol {
 public:
  PipelinedBaClock(const ProtocolEnv& env, ClockValue k, const BaSpec& spec,
                   Rng rng, ChannelId base = 0);

  void send_phase(Outbox& out) override;
  void receive_phase(const Inbox& in) override;
  void randomize_state(Rng& rng) override;
  ClockValue clock() const override { return clock_ % k_; }
  ClockValue modulus() const override { return k_; }
  std::uint32_t channel_count() const override {
    return base_ + static_cast<std::uint32_t>(rounds_) + 1;
  }
  // Reports which branch stepped the clock this beat (1 = quorum, 0 = BA
  // reconciliation); the protocol is deterministic, so no coin stream.
  void trace_state(TraceEmitter& em) const override;

  int pipeline_depth() const { return rounds_; }

 private:
  std::unique_ptr<BaInstance> fresh_instance();

  ProtocolEnv env_;
  ClockValue k_;
  BaSpec spec_;
  ChannelId base_;
  ChannelId clock_channel_;  // base_ + rounds_
  Rng rng_;
  int rounds_;
  ClockValue clock_ = 0;
  bool quorum_step_ = false;  // latched by receive_phase for trace_state
  // slots_[j] executes round j+1 at the current beat.
  std::vector<std::unique_ptr<BaInstance>> slots_;
};

}  // namespace ssbft
