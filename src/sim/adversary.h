// The Byzantine adversary interface.
//
// Adversary model (Section 2): information-theoretic, private channels,
// rushing. Concretely, each beat the adversary is shown exactly the
// messages addressed to faulty nodes — including this beat's, before it has
// to commit its own sends (rushing) — and nothing that flows between
// correct nodes. It then emits arbitrary messages from the faulty nodes,
// with per-recipient equivocation. Sender identity is enforced by the
// engine (Definition 2.2.2). Strategies keep whatever memory they like.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/message.h"
#include "support/rng.h"
#include "support/types.h"

namespace ssbft {

class AdversaryContext {
 public:
  // `pool`, `sink` and `is_faulty` may be null for standalone use (tests);
  // the engine passes its per-beat scratch so adversary traffic recycles
  // payload storage like every other message (see message.h for the
  // ownership rules), and its persistent is-faulty bitmap so the per-send
  // sender check is O(1) instead of a linear scan over `faulty`. Without
  // one, the context builds its own bitmap from `faulty` (a one-time
  // allocation, acceptable standalone).
  AdversaryContext(std::uint32_t n, std::uint32_t f,
                   const std::vector<NodeId>& faulty, Beat beat,
                   const std::vector<Message>& observed, Rng& rng,
                   std::uint32_t channel_count, BytesPool* pool = nullptr,
                   std::vector<Message>* sink = nullptr,
                   const std::vector<bool>* is_faulty = nullptr)
      : n_(n), f_(f), faulty_(faulty), beat_(beat), observed_(observed),
        rng_(rng), channel_count_(channel_count), external_pool_(pool),
        sink_(sink != nullptr ? sink : &owned_sends_),
        is_faulty_(is_faulty) {
    if (is_faulty_ == nullptr) {
      owned_bitmap_.assign(n_, false);
      for (NodeId id : faulty_) {
        if (id < n_) owned_bitmap_[id] = true;
      }
      is_faulty_ = &owned_bitmap_;
    }
  }

  std::uint32_t n() const { return n_; }
  std::uint32_t f() const { return f_; }
  const std::vector<NodeId>& faulty() const { return faulty_; }
  // The global beat index. Handed to the adversary only (footnote 4: nodes
  // never see it; the adversary is part of the environment and may).
  Beat beat() const { return beat_; }
  // Every message sent by a correct node to a faulty node this beat, in
  // deterministic (sender, emission) order. This is the rushing view.
  const std::vector<Message>& observed() const { return observed_; }
  Rng& rng() { return rng_; }
  std::uint32_t channel_count() const { return channel_count_; }

  // Emit a message from a faulty node. `from` must be faulty. The payload
  // is copied into pooled storage; the caller keeps its buffer.
  void send(NodeId from, NodeId to, ChannelId channel, const Bytes& payload);
  // Same payload from `from` to every node. Encodes into pooled storage
  // once; all n messages alias the buffer (see message.h).
  void broadcast(NodeId from, ChannelId channel, const Bytes& payload);

  const std::vector<Message>& sends() const { return *sink_; }

 private:
  BytesPool& pool() { return external_pool_ ? *external_pool_ : owned_pool_; }
  void require_faulty_sender(NodeId from) const;

  std::uint32_t n_, f_;
  const std::vector<NodeId>& faulty_;
  Beat beat_;
  const std::vector<Message>& observed_;
  Rng& rng_;
  std::uint32_t channel_count_;
  BytesPool* external_pool_;
  BytesPool owned_pool_;
  std::vector<Message> owned_sends_;
  std::vector<Message>* sink_;
  const std::vector<bool>* is_faulty_;
  std::vector<bool> owned_bitmap_;
};

class Adversary {
 public:
  virtual ~Adversary() = default;
  // Called once per beat, after all correct nodes committed their sends.
  virtual void act(AdversaryContext& ctx) = 0;
};

}  // namespace ssbft
