// Arithmetic in the prime field Z_p with a runtime modulus.
//
// The Feldman-Micali-style coin (Remark 2.3) needs a prime p > n; we default
// to the Mersenne prime 2^61 - 1 so secrets have ~61 bits of entropy and the
// parity of a uniform element is a (1/2 ± 2^-61) coin. Values are plain
// uint64_t in [0, p); the field object carries the modulus. This keeps
// element storage flat (vectors of uint64_t) which matters for the O(n^2)
// share matrices the VSS moves around.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace ssbft {

class PrimeField {
 public:
  // Largest prime we use by default: 2^61 - 1.
  static constexpr std::uint64_t kDefaultPrime = 2305843009213693951ULL;

  // p must be prime (checked with Miller-Rabin) and >= 2.
  explicit PrimeField(std::uint64_t p = kDefaultPrime);

  std::uint64_t modulus() const { return p_; }

  // True iff v is a canonical representative (< p).
  bool valid(std::uint64_t v) const { return v < p_; }
  // Canonicalize an arbitrary 64-bit value (used on untrusted input).
  std::uint64_t reduce(std::uint64_t v) const { return v % p_; }

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t neg(std::uint64_t a) const;
  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const;
  std::uint64_t pow(std::uint64_t a, std::uint64_t e) const;
  // Multiplicative inverse; a must be nonzero.
  std::uint64_t inv(std::uint64_t a) const;

  // Uniformly random element of [0, p).
  std::uint64_t uniform(Rng& rng) const;
  // Uniformly random nonzero element.
  std::uint64_t uniform_nonzero(Rng& rng) const;

  bool operator==(const PrimeField& o) const { return p_ == o.p_; }

 private:
  std::uint64_t p_;
};

}  // namespace ssbft
