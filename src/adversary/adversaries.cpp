#include "adversary/adversaries.h"

#include <deque>
#include <map>
#include <optional>

#include "coin/gvss.h"
#include "field/bivariate.h"
#include "support/check.h"

namespace ssbft {

namespace {

class SilentAdversary final : public Adversary {
 public:
  void act(AdversaryContext&) override {}
};

class RandomNoiseAdversary final : public Adversary {
 public:
  RandomNoiseAdversary(std::uint32_t per_beat, std::uint32_t max_payload)
      : per_beat_(per_beat), max_payload_(max_payload) {}

  void act(AdversaryContext& ctx) override {
    for (NodeId from : ctx.faulty()) {
      for (std::uint32_t i = 0; i < per_beat_; ++i) {
        payload_.resize(ctx.rng().next_below(max_payload_ + 1));
        for (auto& b : payload_) {
          b = static_cast<std::uint8_t>(ctx.rng().next_below(256));
        }
        const auto to = static_cast<NodeId>(ctx.rng().next_below(ctx.n()));
        const auto ch = static_cast<ChannelId>(
            ctx.rng().next_below(std::max<std::uint32_t>(ctx.channel_count(), 1)));
        ctx.send(from, to, ch, payload_);
      }
    }
  }

 private:
  std::uint32_t per_beat_;
  std::uint32_t max_payload_;
  Bytes payload_;  // reused scratch; ctx.send copies it into pooled storage
};

class SplitValueAdversary final : public Adversary {
 public:
  SplitValueAdversary(ChannelId channel, Bytes a, Bytes b)
      : channel_(channel), a_(std::move(a)), b_(std::move(b)) {}

  void act(AdversaryContext& ctx) override {
    for (NodeId from : ctx.faulty()) {
      for (NodeId to = 0; to < ctx.n(); ++to) {
        ctx.send(from, to, channel_, to < ctx.n() / 2 ? a_ : b_);
      }
    }
  }

 private:
  ChannelId channel_;
  Bytes a_, b_;
};

class AntiCoinAdversary final : public Adversary {
 public:
  AntiCoinAdversary(std::shared_ptr<OracleBeacon> beacon, ChannelId channel)
      : beacon_(std::move(beacon)), channel_(channel) {}

  void act(AdversaryContext& ctx) override {
    // Rushing: the beacon has already drawn this beat's bits (a real coin's
    // recover shares would be on the wire by now).
    const bool rand = beacon_->is_common() ? beacon_->common_value()
                                           : beacon_->bit_for(0);
    ByteWriter with, against;
    with.u8(rand ? 1 : 0);
    against.u8(rand ? 0 : 1);
    for (NodeId from : ctx.faulty()) {
      for (NodeId to = 0; to < ctx.n(); ++to) {
        // Feed half the nodes the revealed coin and half its complement,
        // maximizing the spread of majority counts around the threshold.
        ctx.send(from, to, channel_,
                 to % 2 == 0 ? with.data() : against.data());
      }
    }
  }

 private:
  std::shared_ptr<OracleBeacon> beacon_;
  ChannelId channel_;
};

class ClockSkewAdversary final : public Adversary {
 public:
  ClockSkewAdversary(ClockValue k, ChannelId full_channel)
      : k_(k), full_(full_channel) {}

  void act(AdversaryContext& ctx) override {
    const auto prop = static_cast<ChannelId>(full_ + 1);
    const auto bit = static_cast<ChannelId>(full_ + 2);
    for (NodeId from : ctx.faulty()) {
      // Two fresh inconsistent clock stories per beat.
      const ClockValue va = ctx.rng().next_below(k_);
      const ClockValue vb = ctx.rng().next_below(k_);
      for (NodeId to = 0; to < ctx.n(); ++to) {
        const bool low = to < ctx.n() / 2;
        wf_.clear();
        wf_.u64(low ? va : vb);
        ctx.send(from, to, full_, wf_.data());
        wp_.clear();
        wp_.u8(1);
        wp_.u64(low ? va : vb);
        ctx.send(from, to, prop, wp_.data());
        wb_.clear();
        wb_.u8(low ? 1 : 0);
        ctx.send(from, to, bit, wb_.data());
      }
    }
  }

 private:
  ClockValue k_;
  ChannelId full_;
  ByteWriter wf_, wp_, wb_;  // reused across beats
};

class AdaptiveQuorumSplitter final : public Adversary {
 public:
  AdaptiveQuorumSplitter(ClockValue k, ChannelId channel)
      : k_(k), channel_(channel) {}

  void act(AdversaryContext& ctx) override {
    const std::uint32_t n = ctx.n();
    const std::uint32_t f = ctx.f();
    // Rushing view: one clock value per correct sender (they broadcast, so
    // the copy addressed to our first faulty node is the full picture).
    std::map<NodeId, ClockValue> sender_value;
    for (const Message& m : ctx.observed()) {
      if (m.channel != channel_) continue;
      if (sender_value.count(m.from)) continue;
      ByteReader r(m.payload);
      const std::uint64_t v = r.u64();
      if (!r.at_end() || v >= k_) continue;
      sender_value[m.from] = v;
    }
    std::map<ClockValue, std::uint32_t> support;
    for (const auto& [from, v] : sender_value) ++support[v];
    ClockValue u = 0;
    std::uint32_t c = 0;
    for (const auto& [v, cnt] : support) {
      if (cnt > c) {
        u = v;
        c = cnt;
      }
    }
    if (c + f < n - f || c >= n - f) {
      // Either no boostable value (even our votes cannot complete a
      // quorum) or the correct nodes already hold one on their own — the
      // split cannot be created; inject noise instead.
      for (NodeId from : ctx.faulty()) {
        ByteWriter w;
        w.u64(ctx.rng().next_below(k_));
        ctx.broadcast(from, channel_, w.data());
      }
      return;
    }
    // Complete u's quorum only at the nodes already holding u.
    for (NodeId from : ctx.faulty()) {
      for (NodeId to = 0; to < n; ++to) {
        ByteWriter w;
        const auto it = sender_value.find(to);
        const bool holder = it != sender_value.end() && it->second == u;
        w.u64(holder ? u : ctx.rng().next_below(k_));
        ctx.send(from, to, channel_, w.data());
      }
    }
  }

 private:
  ClockValue k_;
  ChannelId channel_;
};

// --- FM coin attacker -----------------------------------------------------

class FmCoinAttacker final : public Adversary {
 public:
  FmCoinAttacker(std::uint64_t prime, ChannelId base)
      : field_(prime), value_bits_(field_.value_bits()), base_(base) {}

  void act(AdversaryContext& ctx) override {
    const std::uint32_t n = ctx.n();
    const std::uint32_t f = std::max<std::uint32_t>(ctx.f(), 1);
    // 1. Record this beat's observations: the rows correct dealers sent to
    //    our nodes (round-1 channel), plus our own fresh dealings.
    BeatRecord now;
    for (NodeId from : ctx.faulty()) {
      now.rows[from].assign(n, std::nullopt);
    }
    coeffs_.resize(std::size_t{f} + 1);
    for (const Message& m : ctx.observed()) {
      if (m.channel != base_) continue;
      auto it = now.rows.find(m.to);
      if (it == now.rows.end()) continue;
      ByteReader r(m.payload);
      if (!r.masked_u64_vec_into(coeffs_.data(), coeffs_.size(),
                                 field_.modulus(), value_bits_) ||
          !r.at_end()) {
        continue;
      }
      it->second[m.from] = validate_row(field_, f, coeffs_);
    }
    for (NodeId self : ctx.faulty()) {
      now.dealings.emplace(
          self, SymmetricBivariate::sample(field_, static_cast<int>(f),
                                           field_.uniform(ctx.rng()),
                                           ctx.rng()));
    }
    // Our nodes "hold" rows of each other's dealings too.
    for (NodeId self : ctx.faulty()) {
      for (const auto& [dealer, biv] : now.dealings) {
        now.rows[self][dealer] = biv.row(field_, node_point(self));
      }
    }

    // 2. Emit this beat's attack traffic for every pipeline position.
    //    Subset dealing: rows only to the first n-2f ids, so exactly the
    //    minimum quorum can be happy — the dealing still reaches grade 2
    //    once we vote for it, but nodes outside the subset hold no share.
    const std::uint32_t subset = n - std::min(2 * f, n - 1);
    for (NodeId self : ctx.faulty()) {
      // Round 1: deal to the subset only.
      const auto& dealing = now.dealings.at(self);
      for (NodeId to = 0; to < subset; ++to) {
        ByteWriter w;
        Poly row = dealing.row(field_, node_point(to));
        auto coeffs = row.coeffs();
        coeffs.resize(std::size_t{f} + 1, 0);
        w.masked_u64_vec(coeffs.data(), coeffs.size(), field_.modulus(),
                         value_bits_);
        ctx.send(self, to, base_, w.data());
      }
      // Round 2: honest cross values (keeps every dealing's happy set
      // intact — the attack is downstream).
      if (hist_.size() >= 1) {
        const auto& rec = hist_[0];
        auto rows_it = rec.rows.find(self);
        if (rows_it != rec.rows.end()) {
          for (NodeId to = 0; to < n; ++to) {
            std::vector<std::uint64_t> vals(n, field_.modulus());
            for (NodeId d = 0; d < n; ++d) {
              if (rows_it->second[d]) {
                vals[d] = rows_it->second[d]->eval(field_, node_point(to));
              }
            }
            ByteWriter w;
            w.masked_u64_vec(vals.data(), vals.size(), field_.modulus(),
                             value_bits_);
            ctx.send(self, to, static_cast<ChannelId>(base_ + 1), w.data());
          }
        }
      }
      // Round 3: vote happy on everything, to everyone — maximizes the
      // number of dealings whose recovery we can pollute. Bits >= n must
      // stay clear: the strict bits codec rejects padding garbage.
      {
        std::vector<std::uint64_t> mask((n + 63) / 64, ~std::uint64_t{0});
        if (n % 64 != 0) mask.back() = (std::uint64_t{1} << (n % 64)) - 1;
        ByteWriter w;
        w.bits(mask.data(), n);
        ctx.broadcast(self, static_cast<ChannelId>(base_ + 2), w.data());
      }
      // Round 4: share equivocation — true shares to even ids, garbage to
      // odd ids. On the subset dealing, odd nodes then face more errors
      // than Berlekamp-Welch can absorb (m = n-f points, e = f needs
      // n >= 4f+1), probing the recovery-divergence gap.
      if (hist_.size() >= 3) {
        const auto& rec = hist_[2];
        auto rows_it = rec.rows.find(self);
        if (rows_it != rec.rows.end()) {
          std::vector<std::uint64_t> truth(n, field_.modulus());
          for (NodeId d = 0; d < n; ++d) {
            if (rows_it->second[d]) {
              truth[d] = rows_it->second[d]->eval(field_, 0);
            }
          }
          for (NodeId to = 0; to < n; ++to) {
            std::vector<std::uint64_t> vals = truth;
            if (to % 2 == 1) {
              for (auto& v : vals) v = field_.uniform(ctx.rng());
            }
            ByteWriter w;
            w.masked_u64_vec(vals.data(), vals.size(), field_.modulus(),
                             value_bits_);
            ctx.send(self, to, static_cast<ChannelId>(base_ + 3), w.data());
          }
        }
      }
    }

    hist_.push_front(std::move(now));
    while (hist_.size() > 4) hist_.pop_back();
  }

 private:
  struct BeatRecord {
    std::map<NodeId, SymmetricBivariate> dealings;
    std::map<NodeId, std::vector<std::optional<Poly>>> rows;
  };

  PrimeField field_;
  unsigned value_bits_;  // cached; the codec calls sit in per-message loops
  ChannelId base_;
  std::vector<std::uint64_t> coeffs_;  // deal-decode scratch, reused per act
  std::deque<BeatRecord> hist_;  // [0] = previous beat, [1] = two ago, ...
};

}  // namespace

std::unique_ptr<Adversary> make_silent_adversary() {
  return std::make_unique<SilentAdversary>();
}

std::unique_ptr<Adversary> make_random_noise_adversary(
    std::uint32_t messages_per_beat, std::uint32_t max_payload) {
  return std::make_unique<RandomNoiseAdversary>(messages_per_beat, max_payload);
}

std::unique_ptr<Adversary> make_split_value_adversary(ChannelId channel,
                                                      Bytes payload_a,
                                                      Bytes payload_b) {
  return std::make_unique<SplitValueAdversary>(channel, std::move(payload_a),
                                               std::move(payload_b));
}

std::unique_ptr<Adversary> make_anti_coin_adversary(
    std::shared_ptr<OracleBeacon> beacon, ChannelId clock_channel) {
  SSBFT_REQUIRE(beacon != nullptr);
  return std::make_unique<AntiCoinAdversary>(std::move(beacon), clock_channel);
}

std::unique_ptr<Adversary> make_clock_skew_adversary(ClockValue k,
                                                     ChannelId full_channel) {
  return std::make_unique<ClockSkewAdversary>(k, full_channel);
}

std::unique_ptr<Adversary> make_adaptive_quorum_splitter(
    ClockValue k, ChannelId clock_channel) {
  return std::make_unique<AdaptiveQuorumSplitter>(k, clock_channel);
}

std::unique_ptr<Adversary> make_fm_coin_attacker(std::uint64_t prime,
                                                 ChannelId coin_base) {
  return std::make_unique<FmCoinAttacker>(prime, coin_base);
}

}  // namespace ssbft
