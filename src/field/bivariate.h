// Symmetric bivariate polynomials over Z_p — the dealing object of the
// graded verifiable secret sharing scheme.
//
// A dealer hiding secret s samples F(x,y) = sum_{i,j<=f} c_ij x^i y^j with
// c_ij = c_ji uniform and F(0,0) = s, and gives node i the row polynomial
// f_i(y) = F(i, y). Symmetry gives the pairwise cross-check
// f_i(j) = F(i,j) = F(j,i) = f_j(i); any f rows reveal nothing about s
// (degree-f secrecy in each variable).
#pragma once

#include <cstdint>
#include <vector>

#include "field/fp.h"
#include "field/poly.h"
#include "support/rng.h"

namespace ssbft {

class SymmetricBivariate {
 public:
  // Empty (degree -1) until resample() fills it. Exists so long-lived
  // holders can re-deal in place without reallocating coefficients.
  SymmetricBivariate() = default;

  // Uniformly random symmetric F with degree <= deg in each variable and
  // F(0,0) = secret.
  static SymmetricBivariate sample(const PrimeField& F, int deg,
                                   std::uint64_t secret, Rng& rng);

  // Re-deals in place: same draws as sample(), but the coefficient storage
  // is reused, so re-dealing a warm object performs no allocation.
  void resample(const PrimeField& F, int deg, std::uint64_t secret, Rng& rng);

  int degree() const { return deg_; }

  // F(x, y).
  std::uint64_t eval(const PrimeField& F, std::uint64_t x,
                     std::uint64_t y) const;

  // Row polynomial f_x0(y) = F(x0, y), as a univariate in y.
  Poly row(const PrimeField& F, std::uint64_t x0) const;

  // Scratch variant: writes the row's deg+1 coefficients (little-endian in
  // y) into caller storage, allocating nothing.
  void row_into(const PrimeField& F, std::uint64_t x0,
                std::uint64_t* out) const;

  // The shared secret F(0,0).
  std::uint64_t secret() const { return at(0, 0); }

 private:
  std::uint64_t at(int i, int j) const {
    return c_[static_cast<std::size_t>(i) * static_cast<std::size_t>(deg_ + 1) +
              static_cast<std::size_t>(j)];
  }

  int deg_ = -1;
  std::vector<std::uint64_t> c_;  // (deg+1)^2 coefficients, c[i][j] = c[j][i]
};

}  // namespace ssbft
