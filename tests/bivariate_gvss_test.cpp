// Tests for symmetric bivariate dealings and the graded-VSS building
// blocks: the share/decide/recover facts Observation 2.1 relies on.
#include <gtest/gtest.h>

#include "coin/gvss.h"
#include "field/bivariate.h"

namespace ssbft {
namespace {

TEST(Bivariate, SymmetryHolds) {
  PrimeField F(2305843009213693951ULL);
  Rng rng(1);
  auto B = SymmetricBivariate::sample(F, 3, 12345, rng);
  for (std::uint64_t x = 0; x < 6; ++x) {
    for (std::uint64_t y = 0; y < 6; ++y) {
      EXPECT_EQ(B.eval(F, x, y), B.eval(F, y, x));
    }
  }
}

TEST(Bivariate, SecretIsConstantTerm) {
  PrimeField F(101);
  Rng rng(2);
  auto B = SymmetricBivariate::sample(F, 2, 77, rng);
  EXPECT_EQ(B.secret(), 77u);
  EXPECT_EQ(B.eval(F, 0, 0), 77u);
}

TEST(Bivariate, RowMatchesEvaluation) {
  PrimeField F(65537);
  Rng rng(3);
  auto B = SymmetricBivariate::sample(F, 4, 9, rng);
  for (std::uint64_t x = 1; x <= 5; ++x) {
    Poly row = B.row(F, x);
    EXPECT_LE(row.degree(), 4);
    for (std::uint64_t y = 0; y <= 6; ++y) {
      EXPECT_EQ(row.eval(F, y), B.eval(F, x, y));
    }
  }
}

TEST(Bivariate, CrossCheckConsistency) {
  // The round-2 identity: f_i(j) == f_j(i) for every pair.
  PrimeField F(2305843009213693951ULL);
  Rng rng(4);
  auto B = SymmetricBivariate::sample(F, 3, 0, rng);
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) {
      EXPECT_EQ(B.row(F, node_point(i)).eval(F, node_point(j)),
                B.row(F, node_point(j)).eval(F, node_point(i)));
    }
  }
}

TEST(Bivariate, SharesLieOnDegreeFPolynomial) {
  // Recover-phase structure: g(x) = F(x, 0) has degree <= f and
  // g(x_i) = row_i(0).
  PrimeField F(2305843009213693951ULL);
  Rng rng(5);
  const int f = 3;
  auto B = SymmetricBivariate::sample(F, f, 4242, rng);
  std::vector<std::uint64_t> xs, ys;
  for (NodeId i = 0; i < static_cast<NodeId>(f + 1); ++i) {
    xs.push_back(node_point(i));
    ys.push_back(B.row(F, node_point(i)).eval(F, 0));
  }
  Poly g = lagrange_interpolate(F, xs, ys);
  EXPECT_LE(g.degree(), f);
  EXPECT_EQ(g.eval(F, 0), 4242u);
}

TEST(Gvss, ValidateRowAcceptsDealerOutput) {
  PrimeField F(2305843009213693951ULL);
  Rng rng(6);
  const std::uint32_t f = 2;
  auto dealing = GvssDealing::sample(F, f, rng);
  for (NodeId i = 0; i < 7; ++i) {
    auto row = validate_row(F, f, dealing.row_for(F, i));
    ASSERT_TRUE(row.has_value());
    EXPECT_LE(row->degree(), static_cast<int>(f));
  }
}

TEST(Gvss, ValidateRowRejectsWrongWidth) {
  PrimeField F(101);
  EXPECT_FALSE(validate_row(F, 2, {1, 2}).has_value());        // too short
  EXPECT_FALSE(validate_row(F, 2, {1, 2, 3, 4}).has_value());  // too long
}

TEST(Gvss, ValidateRowRejectsNonCanonicalElements) {
  PrimeField F(101);
  EXPECT_FALSE(validate_row(F, 1, {5, 101}).has_value());
  EXPECT_FALSE(validate_row(F, 1, {5, ~std::uint64_t{0}}).has_value());
  EXPECT_TRUE(validate_row(F, 1, {5, 100}).has_value());
}

TEST(Gvss, HappyThreshold) {
  // n=7, f=2: happy needs a valid row and >= 5 matches.
  EXPECT_TRUE(gvss_happy(7, 2, true, 5));
  EXPECT_TRUE(gvss_happy(7, 2, true, 7));
  EXPECT_FALSE(gvss_happy(7, 2, true, 4));
  EXPECT_FALSE(gvss_happy(7, 2, false, 7));
}

TEST(Gvss, GradeThresholds) {
  // n=7, f=2: grade 2 at >= 5 votes, grade 1 at >= 3, else 0.
  EXPECT_EQ(gvss_grade(7, 2, 7), GvssGrade::kHigh);
  EXPECT_EQ(gvss_grade(7, 2, 5), GvssGrade::kHigh);
  EXPECT_EQ(gvss_grade(7, 2, 4), GvssGrade::kLow);
  EXPECT_EQ(gvss_grade(7, 2, 3), GvssGrade::kLow);
  EXPECT_EQ(gvss_grade(7, 2, 2), GvssGrade::kNone);
  EXPECT_EQ(gvss_grade(7, 2, 0), GvssGrade::kNone);
}

TEST(Gvss, GradePropagationInvariant) {
  // If any correct node sees grade 2 (>= n-f votes), every correct node —
  // seeing at least the same correct votes, i.e. at most f fewer — grades
  // >= 1. Check the arithmetic across the (n, f) sweep.
  for (std::uint32_t f = 1; f <= 8; ++f) {
    const std::uint32_t n = 3 * f + 1;
    for (std::uint32_t votes = n - f; votes <= n; ++votes) {
      EXPECT_EQ(gvss_grade(n, f, votes), GvssGrade::kHigh);
      EXPECT_NE(gvss_grade(n, f, votes - f), GvssGrade::kNone)
          << "n=" << n << " f=" << f << " votes=" << votes;
    }
  }
}

struct RecoverParam {
  std::uint32_t n;
  std::uint32_t f;
};

class GvssRecoverTest : public ::testing::TestWithParam<RecoverParam> {};

INSTANTIATE_TEST_SUITE_P(Sweep, GvssRecoverTest,
                         ::testing::Values(RecoverParam{4, 1},
                                           RecoverParam{7, 2},
                                           RecoverParam{10, 3},
                                           RecoverParam{13, 4}));

TEST_P(GvssRecoverTest, RecoversWithAllHonestShares) {
  const auto [n, f] = GetParam();
  PrimeField F(2305843009213693951ULL);
  Rng rng(n * 31 + f);
  for (int trial = 0; trial < 10; ++trial) {
    auto dealing = GvssDealing::sample(F, f, rng);
    std::vector<RsPoint> shares;
    for (NodeId i = 0; i < n; ++i) {
      Poly row(dealing.row_for(F, i));
      shares.push_back({node_point(i), row.eval(F, 0)});
    }
    auto s = gvss_recover(F, f, shares);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*s, dealing.secret());
  }
}

TEST_P(GvssRecoverTest, RecoversWithFByzantineLies) {
  const auto [n, f] = GetParam();
  PrimeField F(2305843009213693951ULL);
  Rng rng(n * 37 + f);
  for (int trial = 0; trial < 10; ++trial) {
    auto dealing = GvssDealing::sample(F, f, rng);
    std::vector<RsPoint> shares;
    for (NodeId i = 0; i < n; ++i) {
      Poly row(dealing.row_for(F, i));
      std::uint64_t y = row.eval(F, 0);
      if (i >= n - f) y = F.uniform(rng);  // the last f senders lie
      shares.push_back({node_point(i), y});
    }
    auto s = gvss_recover(F, f, shares);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*s, dealing.secret());
  }
}

TEST_P(GvssRecoverTest, RecoversWithSilentByzantine) {
  // f Byzantine senders say nothing: n-f honest shares still decode.
  const auto [n, f] = GetParam();
  PrimeField F(2305843009213693951ULL);
  Rng rng(n * 41 + f);
  auto dealing = GvssDealing::sample(F, f, rng);
  std::vector<RsPoint> shares;
  for (NodeId i = 0; i < n - f; ++i) {
    Poly row(dealing.row_for(F, i));
    shares.push_back({node_point(i), row.eval(F, 0)});
  }
  auto s = gvss_recover(F, f, shares);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, dealing.secret());
}

TEST_P(GvssRecoverTest, TableFastPathMatchesClassicInterpolation) {
  // The barycentric prefix table must be observationally equivalent to the
  // classic lagrange_interpolate fast path for every share pattern: clean,
  // with up to f injected Byzantine lies (inside and outside the prefix),
  // and with subsets where the table does not apply and recovery falls
  // back to the generic route.
  const auto [n, f] = GetParam();
  PrimeField F(2305843009213693951ULL);
  GvssRecoverTable table(F, n, f);
  Rng rng(n * 43 + f);
  for (int trial = 0; trial < 20; ++trial) {
    auto dealing = GvssDealing::sample(F, f, rng);
    std::vector<RsPoint> shares;
    for (NodeId i = 0; i < n; ++i) {
      Poly row(dealing.row_for(F, i));
      shares.push_back({node_point(i), row.eval(F, 0)});
    }
    // Inject 0..f lies at random positions (prefix positions included, so
    // the candidate itself can be poisoned).
    const auto lies = rng.next_below(f + 1);
    for (std::uint64_t l = 0; l < lies; ++l) {
      shares[rng.next_below(n)].y = F.uniform(rng);
    }
    const auto with_table = gvss_recover(F, f, shares, &table);
    const auto without = gvss_recover(F, f, shares);
    ASSERT_EQ(with_table.has_value(), without.has_value()) << "trial " << trial;
    if (with_table) EXPECT_EQ(*with_table, *without) << "trial " << trial;
    // Non-canonical subset (first sender missing): the table cannot apply;
    // both routes must still agree.
    std::vector<RsPoint> tail(shares.begin() + 1, shares.end());
    const auto tail_with = gvss_recover(F, f, tail, &table);
    const auto tail_without = gvss_recover(F, f, tail);
    ASSERT_EQ(tail_with.has_value(), tail_without.has_value());
    if (tail_with) EXPECT_EQ(*tail_with, *tail_without);
  }
}

TEST(Gvss, DealingResampleMatchesSample) {
  // resample() must make the same draws as sample() so pipeline recycling
  // is replay-identical to per-beat construction.
  PrimeField F(2305843009213693951ULL);
  Rng rng_a(123), rng_b(123);
  auto fresh = GvssDealing::sample(F, 3, rng_a);
  auto recycled = GvssDealing::sample(F, 3, rng_b);
  // Warm `recycled` with different state, then re-deal from a synced rng.
  Rng rng_c(456);
  recycled.resample(F, 3, rng_c);
  Rng rng_d(123);
  recycled.resample(F, 3, rng_d);
  EXPECT_EQ(recycled.secret(), fresh.secret());
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_EQ(recycled.row_for(F, i), fresh.row_for(F, i));
  }
}

TEST(Gvss, RecoverFailsWithTooFewShares) {
  PrimeField F(101);
  EXPECT_FALSE(gvss_recover(F, 2, {{1, 5}, {2, 9}}).has_value());
  EXPECT_FALSE(gvss_recover(F, 2, {}).has_value());
}

TEST(Gvss, DegreeFSecrecy) {
  // f rows determine nothing about the secret: for any f rows there exist
  // dealings with those rows and *any* secret. Verified constructively for
  // f=1, n=4: enumerate two dealings sharing node 0's row but with
  // different secrets.
  PrimeField F(101);
  Rng rng(77);
  auto B1 = SymmetricBivariate::sample(F, 1, 10, rng);
  Poly row0 = B1.row(F, node_point(0));
  // Build B2 with secret 55 and the same row for node 0:
  // F2(x,y) = c00 + c01(x+y) + c11 xy with F2(1,y) = row0(y).
  // row0(y) = (c00 + c01) + (c01 + c11) y  =>  c01 = row0[0] - 55,
  // c11 = row0[1] - c01.
  const std::uint64_t c00 = 55;
  const std::uint64_t c01 = F.sub(row0.coeff(0), c00);
  const std::uint64_t c11 = F.sub(row0.coeff(1), c01);
  // Check: the reconstructed row matches node 0's view exactly.
  const std::uint64_t r0 = F.add(c00, c01);
  const std::uint64_t r1 = F.add(c01, c11);
  EXPECT_EQ(r0, row0.coeff(0));
  EXPECT_EQ(r1, row0.coeff(1));
  EXPECT_NE(c00, B1.secret());  // same view, different secret: zero leakage
}

}  // namespace
}  // namespace ssbft
