// Crash-safe distributed sweeps: the persistence layer behind
// `ssbft_bench run --shard i/k`, `ssbft_bench merge` and
// `--checkpoint/--resume` (harness/sweep.h drives it).
//
// Two on-disk formats, both designed to be read back from hostile bytes
// (a kill -9 can truncate anything; a fleet merge must never silently
// corrupt statistics):
//
// ## Checkpoint (ssbft-ckpt-v1, line-oriented text)
//
//   ssbft-ckpt-v1 fp=<64hex> shard=<i>/<k> units=<total>
//   u=<unit> c=<0|1> s=<synced_at> m=<hexfloat> t=<64hex|-> crc=<8hex>
//   ...
//
// One record per completed (cell, trial) unit, CRC-32 over the record
// body so a torn tail (partial last line, garbage suffix) is detected and
// *discarded* — the sweep recomputes those units — while a record that
// passes its CRC but violates the grid's invariants (duplicate unit, unit
// outside the shard's slice) is a hard error: that is a wrong file, not a
// crash artifact. `fp` is the grid fingerprint (sweep_fingerprint), so a
// checkpoint can never be replayed against a different grid. msgs/beat
// round-trips through C99 hexfloat ("%a"), so resumed TrialStats are
// bit-identical to uninterrupted ones, doubles included. Writes go
// tmp-then-rename (write_checkpoint), so the published file is always a
// complete version — the torn-tail path is defense in depth for
// non-atomic filesystems and hand-copied files.
//
// ## Shard report (ssbft-shard-v1, flat JSONL)
//
//   {"type":"shard","schema":"ssbft-shard-v1","pattern":…,"shard":i,
//    "shards":k,"fingerprint":…,"total_units":N,"cells":C,
//    "seed":S,"trials":T}
//   {"type":"cell","index":0,"name":…,"trials":…,"base_seed":…}
//   {"type":"unit","unit":u,"cell":c,"trial":t,"converged":0|1,
//    "synced_at":…,"msgs":"<hexfloat>"[,"commitment":"<64hex>"]}
//
// The interchange a fleet's shards ship home. merge_shard_files is
// strict: schema/fingerprint/grid mismatches, overlapping units, missing
// units and truncated rows are structured errors — a merged TrialStats
// either equals the unsharded run bit for bit or the merge refuses.
// Decoding rides the same strict flat-JSON scanner as the trace checker
// (harness/jsonl.h).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ssbft {

// What one (cell, trial) unit contributes to its cell's TrialStats —
// captured per unit so workers never contend, checkpoints persist exactly
// this, and shard merges refold it in trial order.
struct TrialOutcome {
  bool converged = false;
  std::uint64_t synced_at = 0;
  double msgs_per_beat = 0.0;
  // SHA-256 trace commitment of the unit's execution trace (64 hex
  // chars) when the sweep collected commitments; empty otherwise.
  std::string trace_commitment;
  // Invariant violations found by the streaming checker when the sweep
  // ran with live checking (SweepOptions::live_check); 0 otherwise.
  // Persisted in checkpoints (optional `v=` field) and shard reports
  // (optional "violations" key) only when nonzero, so files from
  // non-checked sweeps are byte-identical to the PR 8 formats.
  std::uint64_t check_violations = 0;
};

// --shard i/k: run only units u with u % count == index.
struct ShardSpec {
  std::uint64_t index = 0;
  std::uint64_t count = 1;
  bool active() const { return count > 1; }
  bool operator==(const ShardSpec& o) const {
    return index == o.index && count == o.count;
  }
};

// "i/k" -> spec (k >= 1, i < k); nullopt on anything else.
std::optional<ShardSpec> parse_shard_spec(const std::string& s);

// Exact double <-> text round trip via C99 hexfloat ("%a" / strtod):
// decimal formatting would break the bit-identical-recovery guarantee.
// hex_to_double rejects non-finite values and loose formats (leading
// whitespace, '+', trailing bytes).
std::string double_to_hex(double v);
bool hex_to_double(const std::string& s, double* out);

// CRC-32 (IEEE 802.3, reflected) — the checkpoint's per-record integrity
// check.
std::uint32_t crc32(const void* data, std::size_t len);
std::uint32_t crc32(const std::string& s);

// ---------------------------------------------------------------------------
// Checkpoint file (ssbft-ckpt-v1).

struct CheckpointState {
  std::string fingerprint;        // sweep_fingerprint of the grid
  ShardSpec shard;                // slice this checkpoint belongs to
  std::uint64_t total_units = 0;  // whole grid, all shards
  // Completed units by global unit index (keys within the shard's slice).
  std::map<std::uint64_t, TrialOutcome> done;
};

std::string encode_checkpoint(const CheckpointState& state);

struct CheckpointLoad {
  bool ok = false;
  std::string error;  // set iff !ok (unreadable/garbled header, wrong file)
  // A torn/corrupt record tail was discarded; `state.done` holds the
  // valid prefix and the discarded units will simply be recomputed.
  bool torn = false;
  std::uint64_t discarded_records = 0;
  CheckpointState state;
};

CheckpointLoad decode_checkpoint(const std::string& text);
// Reads and decodes `path`; !ok with a structured error when the file
// cannot be opened.
CheckpointLoad load_checkpoint(const std::string& path);

// Atomic publish: write "<path>.tmp", flush, rename onto `path`. Returns
// false and sets *error on I/O failure (never throws).
bool write_checkpoint(const std::string& path, const CheckpointState& state,
                      std::string* error);

// ---------------------------------------------------------------------------
// Shard report interchange (ssbft-shard-v1 JSONL).

struct ShardCellInfo {
  std::string name;
  std::uint64_t trials = 0;
  std::uint64_t base_seed = 0;
  bool operator==(const ShardCellInfo& o) const {
    return name == o.name && trials == o.trials && base_seed == o.base_seed;
  }
};

struct ShardHeader {
  std::string pattern;      // the glob the sweep ran
  ShardSpec shard;
  std::string fingerprint;  // sweep_fingerprint of the grid
  std::uint64_t total_units = 0;
  // CLI-level overrides, carried so a merged report stamps the same
  // RunMeta the originating run would have.
  std::uint64_t cli_seed = 0;
  std::uint64_t cli_trials = 0;
  std::vector<ShardCellInfo> cells;  // grid cells, in sweep order
};

struct ShardUnitRow {
  std::uint64_t unit = 0;  // global unit index
  std::uint32_t cell = 0;  // index into ShardHeader::cells
  std::uint64_t trial = 0;
  TrialOutcome outcome;    // trace_commitment empty = untraced run
};

// Header + per-cell lines (the file's preamble), then one line per unit.
std::string encode_shard_header(const ShardHeader& header);
std::string encode_shard_unit(const ShardUnitRow& row);

struct ShardFile {
  ShardHeader header;
  std::vector<ShardUnitRow> units;
};

struct ShardParse {
  bool ok = false;
  std::string error;           // set iff !ok
  std::size_t error_line = 0;  // 1-based line of the first error
  ShardFile file;
};

// Strict decode of one ssbft-shard-v1 stream. Every unit row is validated
// against the header's grid (cell/trial ranges, canonical unit index,
// shard membership, duplicate units); truncation mid-preamble is an
// error. Never throws on bad input.
ShardParse parse_shard_file(std::istream& in);

struct ShardMerge {
  bool ok = false;
  std::string error;   // set iff !ok
  ShardHeader header;  // the (validated-equal) grid description
  // Outcomes per cell in trial order — feed straight into merge_outcomes
  // for TrialStats bit-identical to the unsharded run.
  std::vector<std::vector<TrialOutcome>> per_cell;
  // All units carried trace commitments (all-or-none is enforced).
  bool have_commitments = false;
  std::vector<std::string> commitments;  // per unit, global unit order
};

// Folds complete shard files back into one grid. Errors (never silent
// corruption): no inputs, header/grid/fingerprint mismatches, unit
// overlap across files, units outside their file's shard slice, missing
// units, mixed commitment coverage.
ShardMerge merge_shard_files(std::vector<ShardFile> files);

}  // namespace ssbft
