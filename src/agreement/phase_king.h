// Binary Phase-King Byzantine agreement (Berman-Garay-Perry style):
// f < n/3, f+1 phases of 3 rounds, polynomial messages — the agreement
// core of the deterministic-linear f < n/3 baseline ([7]'s row in Table 1).
//
// Phase p (king = node p), value v in {0,1}:
//   R1  broadcast v; propose := the value with >= n-f support (else ?);
//   R2  broadcast propose; d := most frequent non-? proposal;
//       support >= n-f -> v := d, lock := 2;
//       support >= f+1 -> v := d, lock := 1;  else lock := 0;
//   R3  king broadcasts v; nodes with lock < 2 adopt the king's value.
//
// Correct non-? proposals are single-valued (two n-f quorums intersect in
// a correct node for n > 3f), so any locked-2 node forces every correct
// node onto the same d; a correct king then unifies the rest, and the R1/R2
// thresholds persist unanimity through later phases.
#pragma once

#include "agreement/ba_interface.h"

namespace ssbft {

class PhaseKingInstance final : public BaInstance {
 public:
  PhaseKingInstance(const ProtocolEnv& env, bool input);

  int rounds() const override { return 3 * (static_cast<int>(env_.f) + 1); }
  void send_round(int round, Outbox& out, ChannelId base) override;
  void receive_round(int round, const Inbox& in, ChannelId base) override;
  std::uint64_t output() const override { return v_ ? 1 : 0; }
  void randomize_state(Rng& rng) override;

 private:
  ProtocolEnv env_;
  bool v_;
  // Per-phase scratch.
  std::uint8_t propose_ = 2;  // 0, 1, or 2 = "?"
  std::uint8_t lock_ = 0;
};

// Binary phase-king as a BaSpec (inputs taken mod 2).
BaSpec phase_king_spec();

}  // namespace ssbft
