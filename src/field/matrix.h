// Dense linear algebra over Z_p: Gaussian elimination for solving the
// Berlekamp-Welch key equation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "field/fp.h"

namespace ssbft {

// Row-major dense matrix of canonical field elements.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::uint64_t& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  std::uint64_t at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  // Raw row storage, for the field's batch kernels.
  std::uint64_t* row(std::size_t r) { return data_.data() + r * cols_; }
  const std::uint64_t* row(std::size_t r) const { return data_.data() + r * cols_; }

 private:
  std::size_t rows_, cols_;
  std::vector<std::uint64_t> data_;
};

// Solves A x = b over F. Returns one solution if the system is consistent
// (free variables are set to zero), std::nullopt if inconsistent.
std::optional<std::vector<std::uint64_t>> solve_linear(
    const PrimeField& F, Matrix A, std::vector<std::uint64_t> b);

// Rank of A over F (A is taken by value and reduced in place).
std::size_t matrix_rank(const PrimeField& F, Matrix A);

}  // namespace ssbft
