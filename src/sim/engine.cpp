#include "sim/engine.h"

#include <algorithm>

#include "support/check.h"

namespace ssbft {

void AdversaryContext::require_faulty_sender(NodeId from) const {
  SSBFT_REQUIRE_MSG(from < n_ && (*is_faulty_)[from],
                    "adversary may only send from faulty nodes (sender "
                    "identity is unforgeable, Definition 2.2.2)");
}

void AdversaryContext::send(NodeId from, NodeId to, ChannelId channel,
                            const Bytes& payload) {
  SSBFT_REQUIRE_MSG(to < n_, "adversary send target out of range");
  require_faulty_sender(from);
  SharedBytes b = pool().acquire();
  b.mutable_bytes().assign(payload.begin(), payload.end());
  sink_->push_back(Message{from, to, channel, std::move(b)});
}

void AdversaryContext::broadcast(NodeId from, ChannelId channel,
                                 const Bytes& payload) {
  require_faulty_sender(from);
  // Copy once; all n messages alias the slot (message.h ownership rules).
  SharedBytes b = pool().acquire();
  b.mutable_bytes().assign(payload.begin(), payload.end());
  for (NodeId to = 0; to < n_; ++to) {
    sink_->push_back(Message{from, to, channel, b});
  }
}

std::vector<NodeId> EngineConfig::last_ids_faulty(std::uint32_t n,
                                                  std::uint32_t count) {
  SSBFT_REQUIRE(count <= n);
  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::uint32_t i = n - count; i < n; ++i) ids.push_back(i);
  return ids;
}

Engine::Engine(EngineConfig cfg, const ProtocolFactory& factory,
               std::unique_ptr<Adversary> adversary)
    : cfg_(std::move(cfg)),
      adversary_(std::move(adversary)),
      adv_rng_(Rng(cfg_.seed).split("adversary")),
      corrupt_rng_(Rng(cfg_.seed).split("corrupt")),
      net_rng_(Rng(cfg_.seed).split("network")),
      metrics_(cfg_.metrics_history_limit),
      outbox_(0, cfg_.n, &pool_) {
  SSBFT_REQUIRE(cfg_.n >= 1);
  SSBFT_REQUIRE_MSG(adversary_ != nullptr || cfg_.faulty.empty(),
                    "faulty nodes present but no adversary supplied");
  cfg_.faults.validate();
  is_faulty_.assign(cfg_.n, false);
  for (NodeId id : cfg_.faulty) {
    SSBFT_REQUIRE(id < cfg_.n);
    is_faulty_[id] = true;
  }
  protocols_.resize(cfg_.n);
  const Rng seed_root(cfg_.seed);
  for (NodeId id = 0; id < cfg_.n; ++id) {
    if (is_faulty_[id]) continue;
    correct_ids_.push_back(id);
    ProtocolEnv env{id, cfg_.n, cfg_.f};
    protocols_[id] = factory(env, seed_root.split("node", id));
    SSBFT_CHECK(protocols_[id] != nullptr);
    channel_count_ =
        std::max(channel_count_, protocols_[id]->channel_count());
    if (cfg_.faults.randomize_genesis) {
      protocols_[id]->randomize_state(corrupt_rng_);
    }
  }
  inboxes_.reserve(cfg_.n);
  for (NodeId id = 0; id < cfg_.n; ++id) {
    inboxes_.emplace_back(cfg_.n, channel_count_);
  }
  if (cfg_.track_channel_bytes) {
    channel_bytes_.assign(channel_count_, 0);
  }
  // Send phases write straight into the beat scratch; no drain pass.
  outbox_.bind_sink(&correct_msgs_);
}

Engine::~Engine() = default;

Protocol& Engine::node(NodeId id) {
  SSBFT_REQUIRE_MSG(id < cfg_.n && !is_faulty_[id],
                    "node(" << id << ") is faulty or out of range");
  return *protocols_[id];
}

const Protocol& Engine::node(NodeId id) const {
  SSBFT_REQUIRE_MSG(id < cfg_.n && !is_faulty_[id],
                    "node(" << id << ") is faulty or out of range");
  return *protocols_[id];
}

std::vector<ClockValue> Engine::correct_clocks() const {
  std::vector<ClockValue> out;
  out.reserve(correct_ids_.size());
  for (NodeId id : correct_ids_) {
    const auto* cp = dynamic_cast<const ClockProtocol*>(protocols_[id].get());
    SSBFT_REQUIRE_MSG(cp != nullptr, "protocol is not a ClockProtocol");
    out.push_back(cp->clock());
  }
  return out;
}

void Engine::corrupt_node(NodeId id) {
  SSBFT_REQUIRE(id < cfg_.n && !is_faulty_[id]);
  protocols_[id]->randomize_state(corrupt_rng_);
}

void Engine::reset_channel_bytes() {
  std::fill(channel_bytes_.begin(), channel_bytes_.end(), 0);
  channel_bytes_beats_ = 0;
}

void Engine::run_beat() {
  metrics_.begin_beat();
  for (BeatListener* l : listeners_) l->on_beat(beat_);

  // Scheduled transient faults fire before the send phase of their beat.
  if (auto it = cfg_.faults.corruptions.find(beat_);
      it != cfg_.faults.corruptions.end()) {
    for (NodeId id : it->second) {
      if (!is_faulty_[id]) protocols_[id]->randomize_state(corrupt_rng_);
    }
  }

  // 1. Send phases: pure functions of pre-beat state, in id order. The
  //    outbox writes straight into the persistent beat scratch; payload
  //    storage stays pooled.
  for (NodeId id : correct_ids_) {
    outbox_.reset(id);
    protocols_[id]->send_phase(outbox_);
    metrics_.count_correct_bulk(outbox_.sent_messages(), outbox_.sent_bytes());
  }
  if (cfg_.track_channel_bytes) {
    for (const Message& m : correct_msgs_) {
      if (m.channel < channel_bytes_.size()) {
        channel_bytes_[m.channel] += m.payload.size();
      }
    }
    ++channel_bytes_beats_;
  }

  // 2. Adversary turn (rushing): it sees exactly the beat-r messages
  //    addressed to faulty nodes, then commits the faulty nodes' sends.
  //    The observed view borrows the payload handles — no byte copies.
  if (adversary_ != nullptr && !cfg_.faulty.empty()) {
    for (const Message& m : correct_msgs_) {
      if (!is_faulty_[m.to]) continue;
      observed_.push_back(m);
    }
    AdversaryContext ctx(cfg_.n, cfg_.f, cfg_.faulty, beat_, observed_,
                         adv_rng_, channel_count_, &pool_, &adv_msgs_,
                         &is_faulty_);
    adversary_->act(ctx);
    std::uint64_t adv_bytes = 0;
    for (const Message& m : adv_msgs_) adv_bytes += m.payload.size();
    metrics_.count_adversary_bulk(adv_msgs_.size(), adv_bytes);
  }

  // 3. Delivery (with network faults during the faulty prefix). Inboxes
  //    were cleared at the end of the previous beat. Under a lossy network
  //    the delivered count per inbox is random, so pre-reserve to the
  //    deterministic pre-drop addressed count — otherwise inbox capacity
  //    chases record peaks and the steady state would keep allocating.
  const bool network_faulty = beat_ < cfg_.faults.network_faulty_until;
  if (network_faulty && cfg_.faults.faulty_drop_prob > 0.0) {
    addressed_.assign(cfg_.n, 0);
    for (const Message& m : correct_msgs_) ++addressed_[m.to];
    for (const Message& m : adv_msgs_) ++addressed_[m.to];
    for (NodeId id : correct_ids_) {
      inboxes_[id].reserve(addressed_[id] + cfg_.faults.phantoms_per_beat);
    }
  }
  deliver(correct_msgs_, net_rng_, network_faulty);
  deliver(adv_msgs_, net_rng_, network_faulty);
  if (network_faulty) inject_phantoms(net_rng_);

  // 4. Receive phases.
  for (NodeId id : correct_ids_) {
    protocols_[id]->receive_phase(inboxes_[id]);
  }

  // Reset the beat scratch and the inboxes. Clearing drops every payload
  // handle of the beat — delivered, dropped and observed alike — in one
  // place, recycling last-referenced slots into the pool. Releasing
  // everything here (rather than at the drop sites) keeps the pool's
  // per-beat slot demand a deterministic function of the traffic shape,
  // independent of drop patterns: once the pool has grown to one beat's
  // worth of slots, no beat ever allocates again, lossy network or not.
  correct_msgs_.clear();
  adv_msgs_.clear();
  observed_.clear();
  for (Inbox& ib : inboxes_) ib.clear();

  ++beat_;
}

void Engine::run_beats(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) run_beat();
}

void Engine::deliver(std::vector<Message>& msgs, Rng& net_rng,
                     bool network_faulty) {
  // Dropped messages keep their handle in the beat scratch until the
  // end-of-beat reset (see run_beat): releasing mid-beat would make the
  // pool's slot demand depend on the random drop pattern, and the pool
  // would keep growing on every new record peak instead of settling.
  for (Message& m : msgs) {
    if (is_faulty_[m.to]) continue;  // faulty inboxes live in the adversary
    if (network_faulty && cfg_.faults.faulty_drop_prob > 0.0 &&
        net_rng.next_bernoulli(cfg_.faults.faulty_drop_prob)) {
      metrics_.count_dropped();
      continue;
    }
    inboxes_[m.to].deliver(std::move(m));
  }
}

void Engine::inject_phantoms(Rng& net_rng) {
  // Phantom messages: leftovers in network buffers from before the system
  // became coherent. They carry arbitrary (but unforged-looking) sender
  // ids, channels and payloads.
  for (NodeId id : correct_ids_) {
    for (std::uint32_t i = 0; i < cfg_.faults.phantoms_per_beat; ++i) {
      Message m;
      m.from = static_cast<NodeId>(net_rng.next_below(cfg_.n));
      m.to = id;
      m.channel = static_cast<ChannelId>(
          net_rng.next_below(std::max<std::uint32_t>(channel_count_, 1)));
      // Widened before the +1: a phantom_max_len at the type's maximum must
      // not wrap the bound to zero.
      const std::uint64_t len = net_rng.next_below(
          static_cast<std::uint64_t>(cfg_.faults.phantom_max_len) + 1);
      m.payload = phantom_pool_.acquire();
      Bytes& buf = m.payload.mutable_bytes();
      // Reserve the maximum once per slot: phantom lengths are random, and
      // growing to a fresh record length must not allocate in the steady
      // state.
      buf.reserve(cfg_.faults.phantom_max_len);
      buf.resize(static_cast<std::size_t>(len));
      // Bulk fill: one next_u64 draw per 8 payload bytes (little-endian,
      // a partial final draw spends its low bytes first). The draw
      // sequence is part of the replay contract: ceil(len/8) next_u64
      // draws per phantom, after the from/channel/len draws above.
      for (std::size_t off = 0; off < buf.size(); off += 8) {
        std::uint64_t word = net_rng.next_u64();
        const std::size_t chunk = std::min<std::size_t>(8, buf.size() - off);
        for (std::size_t b = 0; b < chunk; ++b) {
          buf[off + b] = static_cast<std::uint8_t>(word >> (8 * b));
        }
      }
      metrics_.count_phantom();
      inboxes_[id].deliver(std::move(m));
    }
  }
}

}  // namespace ssbft
