#include "harness/runner.h"

#include <algorithm>

#include "support/check.h"

namespace ssbft {

namespace {

double percentile(std::vector<std::uint64_t> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

}  // namespace

TrialStats run_trials(const EngineBuilder& builder, const RunnerConfig& cfg) {
  TrialStats stats;
  stats.trials = cfg.trials;
  double msgs_acc = 0.0;
  for (std::uint64_t t = 0; t < cfg.trials; ++t) {
    EngineBundle bundle = builder(cfg.base_seed + t);
    SSBFT_CHECK(bundle.engine != nullptr);
    const ConvergenceResult r =
        measure_convergence(*bundle.engine, cfg.convergence);
    if (r.converged) {
      ++stats.converged;
      stats.samples.push_back(r.synced_at);
    }
    msgs_acc += bundle.engine->metrics().mean_correct_messages_per_beat();
  }
  stats.mean_msgs_per_beat = msgs_acc / static_cast<double>(cfg.trials);
  if (!stats.samples.empty()) {
    std::vector<std::uint64_t> sorted = stats.samples;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (auto s : sorted) sum += static_cast<double>(s);
    stats.mean = sum / static_cast<double>(sorted.size());
    stats.median = percentile(sorted, 0.5);
    stats.p90 = percentile(sorted, 0.9);
    stats.max = sorted.back();
  }
  return stats;
}

}  // namespace ssbft
