// The experiment driver: one binary in front of the whole experiment
// subsystem. `list` names every registered experiment and scenario cell;
// `run` executes an experiment by name or any set of scenario cells by
// glob, scheduling all (cell, trial) units through one global sweep
// queue. The historical bench_* binaries are thin wrappers over the same
// registry (`bench_table1` == `ssbft_bench run table1`).
#include <fstream>
#include <iostream>
#include <string>

#include "experiments.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: ssbft_bench <command> [...]\n"
        "  list [glob]                list experiments and registered "
        "scenarios\n"
        "  run <name|glob> [options]  run an experiment, or every scenario "
        "cell matching a glob\n"
        "run options: [--trials N] [--jobs J] [--seed S]\n"
        "             [--format ascii|csv|jsonl] [--out FILE] [--trace DIR]\n"
        "             [--progress]\n"
        "  --trials N   override every cell's trial count (0 = per-cell "
        "defaults)\n"
        "  --jobs J     sweep worker threads (default/0: one per hardware "
        "thread; 1 = serial; results bit-identical either way)\n"
        "  --seed S     offset added to every cell's base seed\n"
        "  --format F   ascii (default), csv (RFC-4180) or jsonl\n"
        "  --out FILE   write the report to FILE instead of stdout\n"
        "  --trace DIR  write one JSONL execution trace per (cell, trial)\n"
        "               into DIR; verify them with `ssbft_check DIR`\n"
        "  --progress   stderr progress line (cells done / total)\n"
        "examples:\n"
        "  ssbft_bench list 'net/*'\n"
        "  ssbft_bench run table1 --trials 2 --jobs 2\n"
        "  ssbft_bench run 'gallery/*' --format jsonl\n"
        "  ssbft_bench run net/baseline --trace traces && ssbft_check "
        "traces\n";
  return code;
}

int list_command(const std::string& pattern) {
  std::size_t width = 0;
  for (const Experiment& e : experiments()) {
    if (glob_match(pattern, e.name)) width = std::max(width, std::string(e.name).size());
  }
  const auto matched = match_scenarios(pattern);
  for (const ScenarioSpec* s : matched) {
    width = std::max(width, s->name.size());
  }

  bool any = false;
  bool header = false;
  for (const Experiment& e : experiments()) {
    if (!glob_match(pattern, e.name)) continue;
    if (!header) {
      std::cout << "experiments (run with `ssbft_bench run <name>`):\n";
      header = true;
    }
    std::cout << "  " << e.name
              << std::string(width - std::string(e.name).size() + 2, ' ')
              << e.summary << "\n";
    any = true;
  }
  if (!matched.empty()) {
    if (header) std::cout << "\n";
    std::cout << "scenarios (" << matched.size()
              << ", run with `ssbft_bench run <name|glob>`):\n";
    for (const ScenarioSpec* s : matched) {
      std::cout << "  " << s->name
                << std::string(width - s->name.size() + 2, ' ') << s->summary
                << "\n"
                // Audit line: DeliverySpec, network fault axes, corruption
                // schedule and trial defaults, so a grid can be reviewed
                // before spending any compute on it.
                << "      " << scenario_detail(*s) << "\n";
    }
    any = true;
  }
  if (!any) {
    std::cerr << "ssbft_bench: nothing matches '" << pattern << "'\n";
    return 2;
  }
  return 0;
}

int run_command(const std::string& name, const BenchOptions& o) {
  // Resolve the run target before touching --out: a typo'd name must not
  // truncate an existing results file.
  const Experiment* e = find_experiment(name);
  const std::vector<const ScenarioSpec*> matched =
      e == nullptr ? match_scenarios(name)
                   : std::vector<const ScenarioSpec*>{};
  if (e == nullptr && matched.empty()) {
    std::cerr << "ssbft_bench: unknown experiment or scenario '" << name
              << "' (try `ssbft_bench list`)\n";
    return 2;
  }
  std::ofstream file;
  std::ostream* os = open_report_out(o, file, "ssbft_bench");
  if (os == nullptr) return 2;

  Report report(RunMeta{name, o.trials, o.seed, o.jobs}, o.format, *os);
  if (e != nullptr) {
    e->run(o, report);
  } else {
    run_scenario_cells(name, matched, o, report);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    return usage(std::cout, 0);
  }
  if (command == "list") {
    if (argc > 3) return usage(std::cerr, 2);
    return list_command(argc == 3 ? argv[2] : "*");
  }
  if (command == "run") {
    if (argc < 3) {
      std::cerr << "ssbft_bench: run needs an experiment name or scenario "
                   "glob (try `ssbft_bench list`)\n";
      return 2;
    }
    const BenchOptions o = parse_cli("ssbft_bench run", argc, argv, 3,
                                     /*wrapper_note=*/false);
    return run_command(argv[2], o);
  }
  std::cerr << "ssbft_bench: unknown command '" << command << "'\n";
  return usage(std::cerr, 2);
}
