// Structured experiment reporting: one row model behind every bench.
// An experiment emits prose and tables into a Report; the Report renders
// them as the classic ASCII tables (the default, byte-compatible with the
// historical bench output), RFC-4180 CSV, or JSONL — each row stamped with
// the run metadata (experiment name, seed offset, trial override, jobs).
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <ostream>
#include <string>

#include "harness/table.h"

namespace ssbft {

enum class ReportFormat { kAscii, kCsv, kJsonl };

// "ascii" | "csv" | "jsonl" -> format; nullopt on anything else.
std::optional<ReportFormat> parse_report_format(const std::string& s);
const char* report_format_name(ReportFormat f);

// Run metadata stamped onto every structured row. trials/seed/jobs carry
// the CLI-level values (0 = per-scenario defaults / hardware threads), so
// a row is traceable back to the exact invocation that produced it.
struct RunMeta {
  std::string experiment;
  std::uint64_t trials = 0;
  std::uint64_t seed = 0;
  std::uint64_t jobs = 0;
};

// JSON string-literal escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

// Crash-safe report/artifact output: writes "<path>.tmp" and renames it
// onto the target at commit(), so readers (and a merge picking up shard
// reports) never observe a half-written file. Non-regular targets — pipes,
// /dev/null, character devices — cannot be renamed onto, so those are
// written directly. An AtomicOutFile destroyed without commit() removes
// its temporary and leaves any previous version of the target untouched.
class AtomicOutFile {
 public:
  AtomicOutFile() = default;
  ~AtomicOutFile();
  AtomicOutFile(const AtomicOutFile&) = delete;
  AtomicOutFile& operator=(const AtomicOutFile&) = delete;

  // Opens the output; false on I/O failure. Calling open twice is a bug.
  bool open(const std::string& path);
  bool is_open() const { return out_.is_open(); }
  std::ostream& stream() { return out_; }

  // Flushes and publishes (renames tmp onto the target when staged).
  // False + *error on failure; the temporary is cleaned up either way.
  bool commit(std::string* error = nullptr);

 private:
  std::ofstream out_;
  std::string final_path_;
  std::string tmp_path_;  // empty = direct (non-atomic) write
};

class Report {
 public:
  Report(RunMeta meta, ReportFormat format, std::ostream& out);

  // Free-form prose (section headers, notes). ASCII rendering only; the
  // structured formats carry rows, not narrative.
  void text(const std::string& s);

  // A named table. ASCII: classic fitted-width rendering. CSV: one header
  // line `experiment,table,seed,trials,jobs,<headers...>` then the rows.
  // JSONL: one object per row with the metadata inline and the cells
  // keyed by header under "columns".
  void table(const std::string& id, const AsciiTable& t);

  // The historical trailing "CSV follows:" block of the bench mains.
  // ASCII mode only — the structured formats already carried the rows.
  void csv_trailer(const AsciiTable& t);

  const RunMeta& meta() const { return meta_; }
  ReportFormat format() const { return format_; }
  std::ostream& out() { return out_; }

 private:
  RunMeta meta_;
  ReportFormat format_;
  std::ostream& out_;
};

}  // namespace ssbft
