// Microbenchmarks (google-benchmark): the hot paths under every
// experiment — field arithmetic, polynomial evaluation, Lagrange
// interpolation, Berlekamp-Welch decoding (clean fast path vs adversarial
// slow path), GVSS dealing, and whole-engine beat throughput for the full
// ss-Byz-Clock-Sync stack.
#include <benchmark/benchmark.h>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "coin/gvss.h"
#include "core/clock_sync.h"
#include "field/reed_solomon.h"
#include "sim/engine.h"

namespace ssbft {
namespace {

void BM_FieldMul(benchmark::State& state) {
  PrimeField F;
  Rng rng(1);
  std::uint64_t a = F.uniform(rng), b = F.uniform(rng);
  for (auto _ : state) {
    a = F.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

void BM_FieldInv(benchmark::State& state) {
  PrimeField F;
  Rng rng(2);
  std::uint64_t a = F.uniform_nonzero(rng);
  for (auto _ : state) {
    a = F.inv(a);
    benchmark::DoNotOptimize(a);
    if (a == 0) a = 1;
  }
}
BENCHMARK(BM_FieldInv);

void BM_PolyEval(benchmark::State& state) {
  PrimeField F;
  Rng rng(3);
  Poly p = Poly::random(F, static_cast<int>(state.range(0)), rng);
  std::uint64_t x = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.eval(F, x));
  }
}
BENCHMARK(BM_PolyEval)->Arg(2)->Arg(4)->Arg(8);

void BM_LagrangeInterpolate(benchmark::State& state) {
  PrimeField F;
  Rng rng(4);
  const int deg = static_cast<int>(state.range(0));
  Poly p = Poly::random(F, deg, rng);
  std::vector<std::uint64_t> xs, ys;
  for (int i = 0; i <= deg; ++i) {
    xs.push_back(static_cast<std::uint64_t>(i + 1));
    ys.push_back(p.eval(F, static_cast<std::uint64_t>(i + 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lagrange_interpolate(F, xs, ys));
  }
}
BENCHMARK(BM_LagrangeInterpolate)->Arg(2)->Arg(4)->Arg(8);

// Clean shares: gvss_recover's interpolation fast path.
void BM_GvssRecoverClean(benchmark::State& state) {
  PrimeField F;
  Rng rng(5);
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  auto dealing = GvssDealing::sample(F, f, rng);
  std::vector<RsPoint> shares;
  for (NodeId i = 0; i < n; ++i) {
    shares.push_back({node_point(i), Poly(dealing.row_for(F, i)).eval(F, 0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gvss_recover(F, f, shares));
  }
}
BENCHMARK(BM_GvssRecoverClean)->Arg(1)->Arg(2)->Arg(4);

// f lying shares: the Berlekamp-Welch slow path.
void BM_GvssRecoverAdversarial(benchmark::State& state) {
  PrimeField F;
  Rng rng(6);
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  auto dealing = GvssDealing::sample(F, f, rng);
  std::vector<RsPoint> shares;
  for (NodeId i = 0; i < n; ++i) {
    std::uint64_t y = Poly(dealing.row_for(F, i)).eval(F, 0);
    if (i < f) y = F.uniform(rng);
    shares.push_back({node_point(i), y});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gvss_recover(F, f, shares));
  }
}
BENCHMARK(BM_GvssRecoverAdversarial)->Arg(1)->Arg(2)->Arg(4);

void BM_GvssDealing(benchmark::State& state) {
  PrimeField F;
  Rng rng(7);
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  for (auto _ : state) {
    auto d = GvssDealing::sample(F, f, rng);
    for (NodeId i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(d.row_for(F, i));
    }
  }
}
BENCHMARK(BM_GvssDealing)->Arg(1)->Arg(2)->Arg(4);

// Whole-stack beat throughput: ss-Byz-Clock-Sync + FM coin + skew attack.
void BM_FullStackBeat(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = 9;
  CoinSpec spec = fm_coin_spec();
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 64, spec, rng);
  };
  Engine eng(cfg, factory, make_clock_skew_adversary(64, 0));
  for (auto _ : state) {
    eng.run_beat();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullStackBeat)->Arg(1)->Arg(2);

// Oracle-coin stack: the protocol-logic cost with coin traffic removed.
void BM_OracleStackBeat(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = 10;
  auto beacon = std::make_shared<OracleBeacon>(n, OracleCoinParams{0.45, 0.45},
                                               Rng(11));
  CoinSpec spec = oracle_coin_spec(beacon);
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 64, spec, rng);
  };
  Engine eng(cfg, factory, make_clock_skew_adversary(64, 0));
  eng.add_listener(beacon.get());
  for (auto _ : state) {
    eng.run_beat();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OracleStackBeat)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace ssbft

BENCHMARK_MAIN();
