#include "harness/jsonl.h"

namespace ssbft::jsonl {

namespace {

class LineScanner {
 public:
  explicit LineScanner(const std::string& s) : s_(s) {}

  bool parse(LineValues& out, std::string& err) {
    if (!lit('{')) return fail(err, "expected '{'");
    ws();
    if (peek() == '}') {
      ++i_;
      return finish(err);
    }
    while (true) {
      std::string key;
      if (!parse_string(key, err)) return false;
      if (out.has(key)) return fail(err, "duplicate key '" + key + "'");
      if (!lit(':')) return fail(err, "expected ':' after key '" + key + "'");
      ws();
      const char c = peek();
      if (c == '"') {
        std::string v;
        if (!parse_string(v, err)) return false;
        out.strs.emplace_back(std::move(key), std::move(v));
      } else if (c == '[') {
        ++i_;
        std::vector<std::uint64_t> v;
        ws();
        if (peek() == ']') {
          ++i_;
        } else {
          while (true) {
            std::uint64_t u = 0;
            if (!parse_uint(u, err)) return false;
            v.push_back(u);
            if (lit(',')) continue;
            if (lit(']')) break;
            return fail(err, "expected ',' or ']' in array");
          }
        }
        out.arrs.emplace_back(std::move(key), std::move(v));
      } else if (c >= '0' && c <= '9') {
        std::uint64_t u = 0;
        if (!parse_uint(u, err)) return false;
        out.ints.emplace_back(std::move(key), u);
      } else {
        return fail(err, "unsupported value (only strings, unsigned "
                         "integers and integer arrays are legal)");
      }
      if (lit(',')) continue;
      if (lit('}')) break;
      return fail(err, "expected ',' or '}'");
    }
    return finish(err);
  }

 private:
  bool finish(std::string& err) {
    ws();
    if (i_ != s_.size()) return fail(err, "trailing characters after '}'");
    return true;
  }

  static bool fail(std::string& err, std::string msg) {
    err = std::move(msg);
    return false;
  }

  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
  }
  bool lit(char c) {
    ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out, std::string& err) {
    if (!lit('"')) return fail(err, "expected '\"'");
    out.clear();
    while (true) {
      if (i_ >= s_.size()) return fail(err, "unterminated string");
      const char c = s_[i_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail(err, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i_ >= s_.size()) return fail(err, "unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (i_ + 4 > s_.size()) return fail(err, "truncated \\u escape");
          std::uint32_t code = 0;
          for (int j = 0; j < 4; ++j) {
            const char h = s_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<std::uint32_t>(h - 'A' + 10);
            else return fail(err, "bad hex digit in \\u escape");
          }
          // The writers only escape control bytes; anything wider is noise.
          if (code > 0xFF) return fail(err, "\\u escape out of byte range");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return fail(err, "unsupported escape");
      }
    }
  }

  bool parse_uint(std::uint64_t& out, std::string& err) {
    ws();
    if (peek() == '-') return fail(err, "negative numbers are not legal");
    if (!(peek() >= '0' && peek() <= '9')) return fail(err, "expected digit");
    out = 0;
    while (peek() >= '0' && peek() <= '9') {
      const std::uint64_t d = static_cast<std::uint64_t>(s_[i_++] - '0');
      if (out > (UINT64_MAX - d) / 10) return fail(err, "integer overflow");
      out = out * 10 + d;
    }
    const char c = peek();
    if (c == '.' || c == 'e' || c == 'E') {
      return fail(err, "non-integer numbers are not legal");
    }
    return true;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

bool parse_line(const std::string& line, LineValues& out, std::string& err) {
  return LineScanner(line).parse(out, err);
}

const std::uint64_t* find_int(const LineValues& v, const char* key) {
  for (const auto& [k, val] : v.ints) {
    if (k == key) return &val;
  }
  return nullptr;
}

const std::string* find_str(const LineValues& v, const char* key) {
  for (const auto& [k, val] : v.strs) {
    if (k == key) return &val;
  }
  return nullptr;
}

}  // namespace ssbft::jsonl
