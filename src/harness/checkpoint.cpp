#include "harness/checkpoint.h"

#include <array>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <istream>
#include <set>
#include <sstream>

#include "harness/jsonl.h"
#include "harness/report.h"

namespace ssbft {

namespace {

// Strict digits-only uint64 (no sign, no whitespace, overflow-checked):
// the loose strtoull contract would let " -3" wrap to ~2^64.
bool parse_u64_strict(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const auto d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return false;
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

bool is_hex_lower(const std::string& s, std::size_t len) {
  if (s.size() != len) return false;
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

std::string hex8(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

// "prefix=value" -> value, or nullopt when the prefix does not match.
std::optional<std::string> strip_prefix(const std::string& s,
                                        const char* prefix) {
  const std::size_t n = std::string(prefix).size();
  if (s.compare(0, n, prefix) != 0) return std::nullopt;
  return s.substr(n);
}

constexpr char kCkptMagic[] = "ssbft-ckpt-v1";
constexpr char kShardSchema[] = "ssbft-shard-v1";

// One checkpoint record's body (everything before " crc="). The trailing
// v= field (streaming-checker violation count) is emitted only when
// nonzero, so checkpoints from non-live-checked sweeps stay byte-for-byte
// in the original five-field ssbft-ckpt-v1 shape.
std::string record_body(std::uint64_t unit, const TrialOutcome& o) {
  std::string body = "u=" + std::to_string(unit);
  body += o.converged ? " c=1" : " c=0";
  body += " s=" + std::to_string(o.synced_at);
  body += " m=" + double_to_hex(o.msgs_per_beat);
  body += " t=";
  body += o.trace_commitment.empty() ? "-" : o.trace_commitment;
  if (o.check_violations != 0) {
    body += " v=" + std::to_string(o.check_violations);
  }
  return body;
}

}  // namespace

std::optional<ShardSpec> parse_shard_spec(const std::string& s) {
  const std::size_t slash = s.find('/');
  if (slash == std::string::npos) return std::nullopt;
  ShardSpec spec;
  if (!parse_u64_strict(s.substr(0, slash), &spec.index)) return std::nullopt;
  if (!parse_u64_strict(s.substr(slash + 1), &spec.count)) return std::nullopt;
  if (spec.count == 0 || spec.index >= spec.count) return std::nullopt;
  return spec;
}

std::string double_to_hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool hex_to_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  // strtod skips leading whitespace and accepts '+'; the writer emits
  // neither, so reject both outright.
  const char first = s[0];
  if (!(first == '-' || (first >= '0' && first <= '9'))) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

std::uint32_t crc32(const void* data, std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const std::string& s) { return crc32(s.data(), s.size()); }

// ---------------------------------------------------------------------------
// Checkpoint codec.

std::string encode_checkpoint(const CheckpointState& state) {
  std::string out = std::string(kCkptMagic) + " fp=" + state.fingerprint +
                    " shard=" + std::to_string(state.shard.index) + "/" +
                    std::to_string(state.shard.count) +
                    " units=" + std::to_string(state.total_units) + "\n";
  for (const auto& [unit, outcome] : state.done) {
    const std::string body = record_body(unit, outcome);
    out += body + " crc=" + hex8(crc32(body)) + "\n";
  }
  return out;
}

CheckpointLoad decode_checkpoint(const std::string& text) {
  CheckpointLoad res;
  std::istringstream in(text);
  std::string line;

  // Header: "ssbft-ckpt-v1 fp=<64hex> shard=<i>/<k> units=<N>". A file
  // whose header does not decode is not a (version of a) checkpoint at
  // all — wrong file, wrong tool — so that is a hard error, unlike the
  // record tail, where damage means "a crash got here" and the safe
  // answer is to recompute.
  auto bad_header = [&](const std::string& why) {
    res.error = "not an ssbft-ckpt-v1 checkpoint: " + why;
    return res;
  };
  if (!std::getline(in, line)) return bad_header("empty file");
  // The header has no CRC, and a numeric tail is prefix-closed — a header
  // cut mid-digit would otherwise parse as a smaller grid. Requiring the
  // newline makes every header truncation detectable.
  if (text.find('\n') == std::string::npos) {
    return bad_header("truncated header line");
  }
  {
    const std::vector<std::string> tok = split(line, ' ');
    if (tok.size() != 4 || tok[0] != kCkptMagic) {
      return bad_header("bad header line");
    }
    const auto fp = strip_prefix(tok[1], "fp=");
    if (!fp || !is_hex_lower(*fp, 64)) return bad_header("bad fingerprint");
    const auto shard = strip_prefix(tok[2], "shard=");
    std::optional<ShardSpec> spec;
    if (shard) spec = parse_shard_spec(*shard);
    if (!spec) return bad_header("bad shard spec");
    const auto units = strip_prefix(tok[3], "units=");
    if (!units || !parse_u64_strict(*units, &res.state.total_units)) {
      return bad_header("bad unit count");
    }
    res.state.fingerprint = *fp;
    res.state.shard = *spec;
  }

  // Records. The first undecodable or CRC-failing line marks a torn tail:
  // everything from it on is discarded (and later recomputed). A record
  // whose CRC passes but whose content breaks the grid's invariants is a
  // hard error instead — intact bytes carrying wrong facts mean this is
  // the wrong file, and resuming from it would corrupt results silently.
  std::size_t lineno = 1;
  bool counting_torn = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (counting_torn) {
      ++res.discarded_records;
      continue;
    }
    const auto torn = [&] {
      res.torn = true;
      res.discarded_records = 1;
      counting_torn = true;
    };

    // " crc=XXXXXXXX" suffix, CRC over the body before it.
    constexpr std::size_t kCrcLen = 13;
    if (line.size() < kCrcLen ||
        line.compare(line.size() - kCrcLen, 5, " crc=") != 0) {
      torn();
      continue;
    }
    const std::string body = line.substr(0, line.size() - kCrcLen);
    const std::string crc_text = line.substr(line.size() - 8);
    if (!is_hex_lower(crc_text, 8) || hex8(crc32(body)) != crc_text) {
      torn();
      continue;
    }

    auto bad_record = [&](const std::string& why) {
      res.error = "record at line " + std::to_string(lineno) + ": " + why;
      res.ok = false;
      return true;
    };
    const std::vector<std::string> tok = split(body, ' ');
    std::uint64_t unit = 0;
    TrialOutcome outcome;
    bool hard_error = false;
    do {
      if (tok.size() != 5 && tok.size() != 6) {
        hard_error = bad_record("wrong field count");
        break;
      }
      const auto u = strip_prefix(tok[0], "u=");
      const auto c = strip_prefix(tok[1], "c=");
      const auto s = strip_prefix(tok[2], "s=");
      const auto m = strip_prefix(tok[3], "m=");
      const auto t = strip_prefix(tok[4], "t=");
      if (!u || !c || !s || !m || !t) {
        hard_error = bad_record("bad field tags");
        break;
      }
      if (tok.size() == 6) {
        // Optional live-check violation count; the writer never emits
        // v=0, so zero is a wrong file, not a crash artifact.
        const auto vcount = strip_prefix(tok[5], "v=");
        if (!vcount || !parse_u64_strict(*vcount, &outcome.check_violations) ||
            outcome.check_violations == 0) {
          hard_error = bad_record("bad violation count");
          break;
        }
      }
      if (!parse_u64_strict(*u, &unit)) {
        hard_error = bad_record("bad unit index");
        break;
      }
      if (*c != "0" && *c != "1") {
        hard_error = bad_record("bad converged flag");
        break;
      }
      outcome.converged = *c == "1";
      if (!parse_u64_strict(*s, &outcome.synced_at)) {
        hard_error = bad_record("bad synced_at");
        break;
      }
      if (!hex_to_double(*m, &outcome.msgs_per_beat)) {
        hard_error = bad_record("bad msgs/beat");
        break;
      }
      if (*t != "-") {
        if (!is_hex_lower(*t, 64)) {
          hard_error = bad_record("bad trace commitment");
          break;
        }
        outcome.trace_commitment = *t;
      }
      if (unit >= res.state.total_units) {
        hard_error = bad_record("unit " + std::to_string(unit) +
                                " outside the grid's " +
                                std::to_string(res.state.total_units) +
                                " units");
        break;
      }
      if (unit % res.state.shard.count != res.state.shard.index) {
        hard_error = bad_record("unit " + std::to_string(unit) +
                                " outside shard " +
                                std::to_string(res.state.shard.index) + "/" +
                                std::to_string(res.state.shard.count));
        break;
      }
      if (!res.state.done.emplace(unit, std::move(outcome)).second) {
        hard_error = bad_record("duplicate unit " + std::to_string(unit));
        break;
      }
    } while (false);
    if (hard_error) return res;
  }

  res.ok = true;
  return res;
}

CheckpointLoad load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    CheckpointLoad res;
    res.error = "cannot open checkpoint file '" + path + "'";
    return res;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_checkpoint(buf.str());
}

bool write_checkpoint(const std::string& path, const CheckpointState& state,
                      std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error) *error = "cannot open '" + tmp + "' for writing";
      return false;
    }
    out << encode_checkpoint(state);
    out.flush();
    if (!out) {
      if (error) *error = "write to '" + tmp + "' failed";
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error) {
      *error = "rename '" + tmp + "' -> '" + path + "': " + ec.message();
    }
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Shard report codec.

std::string encode_shard_header(const ShardHeader& h) {
  std::string out = "{\"type\":\"shard\",\"schema\":\"";
  out += kShardSchema;
  out += "\",\"pattern\":\"" + json_escape(h.pattern) + "\"";
  out += ",\"shard\":" + std::to_string(h.shard.index);
  out += ",\"shards\":" + std::to_string(h.shard.count);
  out += ",\"fingerprint\":\"" + h.fingerprint + "\"";
  out += ",\"total_units\":" + std::to_string(h.total_units);
  out += ",\"cells\":" + std::to_string(h.cells.size());
  out += ",\"seed\":" + std::to_string(h.cli_seed);
  out += ",\"trials\":" + std::to_string(h.cli_trials);
  out += "}\n";
  for (std::size_t i = 0; i < h.cells.size(); ++i) {
    const ShardCellInfo& c = h.cells[i];
    out += "{\"type\":\"cell\",\"index\":" + std::to_string(i);
    out += ",\"name\":\"" + json_escape(c.name) + "\"";
    out += ",\"trials\":" + std::to_string(c.trials);
    out += ",\"base_seed\":" + std::to_string(c.base_seed);
    out += "}\n";
  }
  return out;
}

std::string encode_shard_unit(const ShardUnitRow& row) {
  std::string out = "{\"type\":\"unit\",\"unit\":" + std::to_string(row.unit);
  out += ",\"cell\":" + std::to_string(row.cell);
  out += ",\"trial\":" + std::to_string(row.trial);
  out += ",\"converged\":";
  out += row.outcome.converged ? "1" : "0";
  out += ",\"synced_at\":" + std::to_string(row.outcome.synced_at);
  out += ",\"msgs\":\"" + double_to_hex(row.outcome.msgs_per_beat) + "\"";
  if (!row.outcome.trace_commitment.empty()) {
    out += ",\"commitment\":\"" + row.outcome.trace_commitment + "\"";
  }
  if (row.outcome.check_violations != 0) {
    out += ",\"violations\":" + std::to_string(row.outcome.check_violations);
  }
  out += "}\n";
  return out;
}

namespace {

// Requires the line's integer keys to be exactly `ints` plus any of
// `opt_ints`, and its string keys to be exactly `strs` plus any of
// `opt_strs`; arrays are never legal in shard files.
bool exact_shard_shape(const jsonl::LineValues& v,
                       std::initializer_list<const char*> ints,
                       std::initializer_list<const char*> strs,
                       std::initializer_list<const char*> opt_strs,
                       std::initializer_list<const char*> opt_ints,
                       std::string& err) {
  for (const auto& [k, val] : v.ints) {
    bool known = false;
    for (const char* want : ints) {
      if (k == want) {
        known = true;
        break;
      }
    }
    for (const char* want : opt_ints) {
      if (k == want) {
        known = true;
        break;
      }
    }
    if (!known) {
      err = "unknown key '" + k + "'";
      return false;
    }
  }
  for (const char* want : ints) {
    if (jsonl::find_int(v, want) == nullptr) {
      err = std::string("missing key '") + want + "'";
      return false;
    }
  }
  for (const auto& [k, val] : v.strs) {
    bool known = false;
    for (const char* want : strs) {
      if (k == want) {
        known = true;
        break;
      }
    }
    for (const char* want : opt_strs) {
      if (k == want) {
        known = true;
        break;
      }
    }
    if (!known) {
      err = "unknown key '" + k + "'";
      return false;
    }
  }
  for (const char* want : strs) {
    if (jsonl::find_str(v, want) == nullptr) {
      err = std::string("missing key '") + want + "'";
      return false;
    }
  }
  if (!v.arrs.empty()) {
    err = "unknown key '" + v.arrs.front().first + "'";
    return false;
  }
  return true;
}

}  // namespace

ShardParse parse_shard_file(std::istream& in) {
  ShardParse res;
  std::string line;
  std::size_t lineno = 0;
  bool have_header = false;
  std::uint64_t want_cells = 0;
  // Prefix sums over cell trial counts: unit u of cell c, trial t must
  // satisfy u == prefix[c] + t — the canonical flattening the sweep uses.
  std::vector<std::uint64_t> prefix;
  std::uint64_t running = 0;
  std::set<std::uint64_t> seen_units;

  auto fail = [&](std::string msg) {
    res.ok = false;
    res.error = std::move(msg);
    res.error_line = lineno;
    return res;
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) return fail("empty line");
    jsonl::LineValues v;
    std::string err;
    if (!jsonl::parse_line(line, v, err)) return fail(err);

    const std::string* type = jsonl::find_str(v, "type");
    if (type == nullptr) return fail("missing key 'type'");

    if (*type == "shard") {
      if (have_header) return fail("duplicate shard header");
      if (!exact_shard_shape(
              v, {"shard", "shards", "total_units", "cells", "seed", "trials"},
              {"type", "schema", "pattern", "fingerprint"}, {}, {}, err)) {
        return fail(err);
      }
      if (*jsonl::find_str(v, "schema") != kShardSchema) {
        return fail("unsupported schema '" + *jsonl::find_str(v, "schema") +
                    "' (want " + kShardSchema + ")");
      }
      ShardHeader& h = res.file.header;
      h.pattern = *jsonl::find_str(v, "pattern");
      h.fingerprint = *jsonl::find_str(v, "fingerprint");
      if (!is_hex_lower(h.fingerprint, 64)) return fail("bad fingerprint");
      h.shard.index = *jsonl::find_int(v, "shard");
      h.shard.count = *jsonl::find_int(v, "shards");
      if (h.shard.count == 0 || h.shard.index >= h.shard.count) {
        return fail("bad shard spec " + std::to_string(h.shard.index) + "/" +
                    std::to_string(h.shard.count));
      }
      h.total_units = *jsonl::find_int(v, "total_units");
      h.cli_seed = *jsonl::find_int(v, "seed");
      h.cli_trials = *jsonl::find_int(v, "trials");
      want_cells = *jsonl::find_int(v, "cells");
      have_header = true;
      continue;
    }

    if (!have_header) return fail("record before shard header");

    if (*type == "cell") {
      if (res.file.header.cells.size() >= want_cells) {
        return fail("more cell lines than the header's " +
                    std::to_string(want_cells));
      }
      if (!seen_units.empty() || !prefix.empty()) {
        return fail("cell line after unit lines");
      }
      if (!exact_shard_shape(v, {"index", "trials", "base_seed"},
                             {"type", "name"}, {}, {}, err)) {
        return fail(err);
      }
      if (*jsonl::find_int(v, "index") != res.file.header.cells.size()) {
        return fail("cell index " +
                    std::to_string(*jsonl::find_int(v, "index")) +
                    " out of order");
      }
      ShardCellInfo c;
      c.name = *jsonl::find_str(v, "name");
      c.trials = *jsonl::find_int(v, "trials");
      c.base_seed = *jsonl::find_int(v, "base_seed");
      if (running > UINT64_MAX - c.trials) return fail("trial count overflow");
      running += c.trials;
      res.file.header.cells.push_back(std::move(c));
      continue;
    }

    if (*type == "unit") {
      const ShardHeader& h = res.file.header;
      if (h.cells.size() != want_cells) {
        return fail("unit line before the preamble's " +
                    std::to_string(want_cells) + " cell lines completed");
      }
      if (prefix.empty() && want_cells > 0) {
        prefix.reserve(want_cells);
        std::uint64_t acc = 0;
        for (const ShardCellInfo& c : h.cells) {
          prefix.push_back(acc);
          acc += c.trials;
        }
      }
      if (running != h.total_units) {
        return fail("header total_units " + std::to_string(h.total_units) +
                    " != sum of cell trials " + std::to_string(running));
      }
      if (!exact_shard_shape(v,
                             {"unit", "cell", "trial", "converged",
                              "synced_at"},
                             {"type", "msgs"}, {"commitment"}, {"violations"},
                             err)) {
        return fail(err);
      }
      ShardUnitRow row;
      row.unit = *jsonl::find_int(v, "unit");
      const std::uint64_t cell = *jsonl::find_int(v, "cell");
      if (cell >= h.cells.size()) return fail("cell index out of range");
      row.cell = static_cast<std::uint32_t>(cell);
      row.trial = *jsonl::find_int(v, "trial");
      if (row.trial >= h.cells[cell].trials) {
        return fail("trial " + std::to_string(row.trial) +
                    " out of range for cell '" + h.cells[cell].name + "'");
      }
      if (row.unit != prefix[cell] + row.trial) {
        return fail("unit " + std::to_string(row.unit) +
                    " does not match (cell, trial) flattening (want " +
                    std::to_string(prefix[cell] + row.trial) + ")");
      }
      if (row.unit % h.shard.count != h.shard.index) {
        return fail("unit " + std::to_string(row.unit) + " outside shard " +
                    std::to_string(h.shard.index) + "/" +
                    std::to_string(h.shard.count));
      }
      if (!seen_units.insert(row.unit).second) {
        return fail("duplicate unit " + std::to_string(row.unit));
      }
      const std::uint64_t conv = *jsonl::find_int(v, "converged");
      if (conv > 1) return fail("bad converged flag");
      row.outcome.converged = conv == 1;
      row.outcome.synced_at = *jsonl::find_int(v, "synced_at");
      if (!hex_to_double(*jsonl::find_str(v, "msgs"),
                         &row.outcome.msgs_per_beat)) {
        return fail("bad msgs/beat value");
      }
      if (const std::string* c = jsonl::find_str(v, "commitment")) {
        if (!is_hex_lower(*c, 64)) return fail("bad trace commitment");
        row.outcome.trace_commitment = *c;
      }
      if (const std::uint64_t* vio = jsonl::find_int(v, "violations")) {
        // The writer omits the key when zero, so an explicit 0 is a
        // malformed file, not an empty result.
        if (*vio == 0) return fail("bad violation count");
        row.outcome.check_violations = *vio;
      }
      res.file.units.push_back(std::move(row));
      continue;
    }

    return fail("unknown type '" + *type + "'");
  }

  if (!have_header) return fail("missing shard header");
  if (res.file.header.cells.size() != want_cells) {
    return fail("truncated preamble: " +
                std::to_string(res.file.header.cells.size()) + " of " +
                std::to_string(want_cells) + " cell lines");
  }
  if (running != res.file.header.total_units) {
    return fail("header total_units " +
                std::to_string(res.file.header.total_units) +
                " != sum of cell trials " + std::to_string(running));
  }
  res.ok = true;
  return res;
}

ShardMerge merge_shard_files(std::vector<ShardFile> files) {
  ShardMerge res;
  if (files.empty()) {
    res.error = "no shard files to merge";
    return res;
  }
  const ShardHeader& h0 = files[0].header;
  for (std::size_t i = 1; i < files.size(); ++i) {
    const ShardHeader& h = files[i].header;
    const char* mismatch = nullptr;
    if (h.fingerprint != h0.fingerprint) mismatch = "grid fingerprint";
    else if (h.pattern != h0.pattern) mismatch = "pattern";
    else if (h.shard.count != h0.shard.count) mismatch = "shard count";
    else if (h.total_units != h0.total_units) mismatch = "total unit count";
    else if (h.cli_seed != h0.cli_seed) mismatch = "--seed override";
    else if (h.cli_trials != h0.cli_trials) mismatch = "--trials override";
    else if (!(h.cells == h0.cells)) mismatch = "cell list";
    if (mismatch != nullptr) {
      res.error = std::string("shard file ") + std::to_string(i + 1) + " " +
                  mismatch + " differs from file 1 (different grid or "
                  "invocation — refusing to merge)";
      return res;
    }
  }

  // Every unit exactly once across all files; duplicates mean overlapping
  // shards (or the same shard supplied twice).
  std::map<std::uint64_t, const ShardUnitRow*> by_unit;
  std::uint64_t with_commitment = 0, without_commitment = 0;
  for (const ShardFile& f : files) {
    for (const ShardUnitRow& row : f.units) {
      if (!by_unit.emplace(row.unit, &row).second) {
        res.error = "unit " + std::to_string(row.unit) +
                    " appears more than once (overlapping shard files)";
        return res;
      }
      if (row.outcome.trace_commitment.empty()) ++without_commitment;
      else ++with_commitment;
    }
  }
  if (by_unit.size() != h0.total_units) {
    // First missing unit, for a pointable error message.
    std::uint64_t missing = 0;
    for (const auto& [unit, row] : by_unit) {
      if (unit != missing) break;
      ++missing;
    }
    res.error = "incomplete merge: " + std::to_string(by_unit.size()) +
                " of " + std::to_string(h0.total_units) +
                " units present (first missing: unit " +
                std::to_string(missing) + " — supply all " +
                std::to_string(h0.shard.count) + " shards)";
    return res;
  }
  if (with_commitment != 0 && without_commitment != 0) {
    res.error = "mixed trace-commitment coverage (" +
                std::to_string(with_commitment) + " units with, " +
                std::to_string(without_commitment) +
                " without) — rerun the shards uniformly";
    return res;
  }

  res.header = h0;
  res.header.shard = ShardSpec{0, 1};  // the merge is the whole grid
  res.have_commitments = with_commitment != 0;
  res.per_cell.resize(h0.cells.size());
  for (std::size_t c = 0; c < h0.cells.size(); ++c) {
    res.per_cell[c].resize(h0.cells[c].trials);
  }
  if (res.have_commitments) res.commitments.reserve(h0.total_units);
  for (const auto& [unit, row] : by_unit) {
    res.per_cell[row->cell][row->trial] = row->outcome;
    if (res.have_commitments) {
      res.commitments.push_back(row->outcome.trace_commitment);
    }
  }
  res.ok = true;
  return res;
}

}  // namespace ssbft
