// Deterministic execution tracing: the opt-in observation path behind
// Engine::run_beat. When a TraceSink is attached (Engine::set_trace), the
// engine, the delivery layer (through Metrics) and every protocol family
// emit structured per-beat records; with no sink attached the beat loop
// pays exactly one pointer test.
//
// ## Record schema (one TraceRecord per event)
//
// Fields: beat, node (-1 = engine-level), event, stream, a..d. `stream`
// identifies the emitting sub-protocol by its channel base — the same
// number that keys its wire traffic — so a record is attributable even in
// deep compositions (e.g. the 4-clock's two embedded 2-clocks).
//
//   event    node  stream         a              b            c         d
//   kBeat     -1   0              correct msgs   correct B    adv msgs  adv B
//   kNet      -1   0              dropped msgs   phantoms     0         0
//   kProbe    -1   0              eclipsed       delayed      reordered 0
//   kClock    id   0              clock value    modulus k    0         0
//   kPhase    id   channel base   phase value    0            0         0
//   kCoin     id   pipeline base  coin bit       0            0         0
//   kCorrupt  id   0              0              0            0         0
//
// kNet / kProbe are emitted only on beats where a counter is nonzero.
// Per-beat record order is fixed: kCorrupt records (scheduled transient
// faults, in id order), then per correct node in id order one kClock plus
// the protocol's own trace_state() records, then the engine-level
// kBeat / kNet / kProbe summary. Gated sub-protocols (the 4-clock's A2,
// cascade levels) emit only on beats they actually step, so a stale coin
// bit or phase is never reported as fresh.
//
// ## Serialization and the commitment
//
// JsonlTraceSink writes one JSON object per line: a `header` line carrying
// the TraceMeta, then one line per record (`clock`, `phase`, `coin`,
// `beat`, `net`, `probe`, `corrupt`). The offline checker
// (harness/checker.h, the `ssbft_check` tool) parses these files, merges
// the records of one (scenario, trial, seed) into a canonical beat-ordered
// stream, verifies the paper's invariants, and hashes a canonical
// re-serialization into a SHA-256 *trace commitment*. The commitment is
// independent of file names, whitespace and line order within a beat's
// emission, and bit-identical across --jobs values — it replaces
// byte-identical stdout diffs as the replay-exactness oracle for perf PRs.
//
// ## Allocation contract
//
// Records flow through a TraceBuffer: a ring of kCapacity records reserved
// once at bind time and flushed to the sink at least once per beat. The
// engine-side path never allocates; a sink that also avoids allocation
// (e.g. a counting test sink) keeps whole traced beats heap-silent, which
// tests/alloc_test.cpp pins down. JsonlTraceSink is the deliberately
// allocating boundary (stream formatting).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "support/types.h"

namespace ssbft {

enum class TraceEvent : std::uint8_t {
  kBeat = 0,
  kNet = 1,
  kProbe = 2,
  kClock = 3,
  kPhase = 4,
  kCoin = 5,
  kCorrupt = 6,
};

struct TraceRecord {
  Beat beat = 0;
  std::int32_t node = -1;  // -1 = engine-level record
  TraceEvent event = TraceEvent::kBeat;
  std::uint32_t stream = 0;  // emitting sub-protocol's channel base
  std::uint64_t a = 0, b = 0, c = 0, d = 0;
};

// Identity of one traced run, written once as the trace's header line.
struct TraceMeta {
  std::string scenario;  // registry cell name ("" for ad-hoc runs)
  std::uint64_t trial = 0;
  std::uint64_t seed = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::vector<NodeId> faulty;
  std::uint64_t max_beats = 0;       // the run's beat budget
  std::uint64_t confirm_window = 0;  // convergence confirmation window
};

// Consumer of trace records. Not owned by the engine; must outlive the
// run. write() receives batches in emission order; end_beat() marks the
// point where beat `beat`'s records are complete (every record of the
// beat has been written).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void begin_trace(const TraceMeta& /*meta*/) {}
  virtual void write(const TraceRecord* records, std::size_t count) = 0;
  virtual void end_beat(Beat /*beat*/) {}
};

// Fixed-capacity record ring between the emitters and the sink. bind()
// reserves the full capacity once, so push() never allocates; the engine
// flushes at the end of every beat (and push() self-flushes if a single
// beat overflows the ring).
class TraceBuffer {
 public:
  void bind(TraceSink* sink);
  bool active() const { return sink_ != nullptr; }

  void push(const TraceRecord& r) {
    if (ring_.size() == kCapacity) flush();
    ring_.push_back(r);
  }
  void flush();

 private:
  static constexpr std::size_t kCapacity = 1024;
  TraceSink* sink_ = nullptr;
  std::vector<TraceRecord> ring_;
};

// Node-scoped emission handle the engine passes to Protocol::trace_state:
// the beat and node id are stamped once, protocols only name their stream
// and payload.
class TraceEmitter {
 public:
  TraceEmitter(TraceBuffer* buf, Beat beat, std::int32_t node)
      : buf_(buf), beat_(beat), node_(node) {}

  void clock(ClockValue value, ClockValue modulus) {
    buf_->push({beat_, node_, TraceEvent::kClock, 0, value, modulus, 0, 0});
  }
  void phase(std::uint32_t stream, std::uint64_t value) {
    buf_->push({beat_, node_, TraceEvent::kPhase, stream, value, 0, 0, 0});
  }
  void coin(std::uint32_t stream, bool bit) {
    buf_->push({beat_, node_, TraceEvent::kCoin, stream, bit ? 1u : 0u, 0, 0,
                0});
  }

 private:
  TraceBuffer* buf_;
  Beat beat_;
  std::int32_t node_;
};

// JSONL serialization of a trace (the schema above). Construct over an
// existing stream, or over a path (the file is created/truncated; check
// ok()). One sink serializes one run.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out);
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  // False when the path constructor failed to open the file.
  bool ok() const;

  void begin_trace(const TraceMeta& meta) override;
  void write(const TraceRecord* records, std::size_t count) override;

 private:
  std::unique_ptr<std::ofstream> file_;  // owned when path-constructed
  std::ostream* out_;
};

}  // namespace ssbft
