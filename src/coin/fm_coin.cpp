#include "coin/fm_coin.h"

#include <algorithm>

#include "coin/coin_pipeline.h"
#include "support/bitwords.h"
#include "support/check.h"

namespace ssbft {

namespace {

// Sentinel carried in cross/share vectors for "no value": the modulus
// itself, which can never be a canonical element.
std::uint64_t sentinel(const PrimeField& F) { return F.modulus(); }

}  // namespace

void FmCoinScratch::ensure(const PrimeField& F, std::uint32_t n_nodes,
                           std::uint32_t faults) {
  if (modulus == F.modulus() && n == n_nodes && f == faults) return;
  modulus = F.modulus();
  n = n_nodes;
  f = faults;
  points.resize(n);
  for (NodeId j = 0; j < n; ++j) points[j] = node_point(j);
  row_buf.assign(std::size_t{f} + 1, 0);
  vals.assign(n, 0);
  shares.assign(std::size_t{n} * n, 0);
  shares_ok.assign(n, 0);
  votes.assign(n, 0);
  pts.clear();
  pts.reserve(n);
  table.init(F, n, f);
}

FmCoinInstance::FmCoinInstance(const ProtocolEnv& env,
                               const FmCoinParams& params, Rng rng,
                               std::shared_ptr<FmCoinScratch> scratch)
    : env_(env),
      field_(params.resolve_prime()),
      rng_(rng),
      dealing_(GvssDealing::sample(field_, env.f, rng_)),
      scratch_(scratch != nullptr ? std::move(scratch)
                                  : std::make_shared<FmCoinScratch>()),
      words_(bitword_count(env.n)),
      value_bits_(field_.value_bits()),
      row_valid_(env.n, 0),
      row_evals_(std::size_t{env.n} * (env.n + 1), 0),
      cross_matches_(env.n, 0),
      happy_words_(words_, 0),
      voted_words_(std::size_t{env.n} * words_, 0),
      vote_valid_(env.n, 0),
      grades_(env.n, GvssGrade::kNone) {
  SSBFT_REQUIRE_MSG(field_.modulus() > env.n,
                    "coin field must have modulus > n (Remark 2.3)");
  scratch_->ensure(field_, env_.n, env_.f);
}

void FmCoinInstance::reinit(Rng rng) {
  // Mirrors construction (same rng draw order as the ctor's dealing
  // sample), but every buffer is reused in place.
  rng_ = rng;
  dealing_.resample(field_, env_.f, rng_);
  std::fill(row_valid_.begin(), row_valid_.end(), 0);
  std::fill(cross_matches_.begin(), cross_matches_.end(), 0);
  std::fill(happy_words_.begin(), happy_words_.end(), 0);
  std::fill(vote_valid_.begin(), vote_valid_.end(), 0);
  std::fill(grades_.begin(), grades_.end(), GvssGrade::kNone);
  output_bit_ = false;
}

void FmCoinInstance::send_round(int round, Outbox& out, ChannelId base) {
  const auto ch = static_cast<ChannelId>(base);
  switch (round) {
    case 1: send_deal(out, ch); break;
    case 2: send_cross(out, ch); break;
    case 3: send_votes(out, ch); break;
    case 4: send_shares(out, ch); break;
    default: SSBFT_CHECK_MSG(false, "bad round " << round);
  }
}

void FmCoinInstance::receive_round(int round, const Inbox& in,
                                   ChannelId base) {
  const auto ch = static_cast<ChannelId>(base);
  switch (round) {
    case 1: recv_deal(in, ch); break;
    case 2: recv_cross(in, ch); break;
    case 3: recv_votes(in, ch); break;
    case 4: recv_shares(in, ch); break;
    default: SSBFT_CHECK_MSG(false, "bad round " << round);
  }
}

// Round 1 — share phase: as dealer, send node j its row F(x_j, y). A
// correct dealer's row is all-present; the masked codec still pays off via
// the packed value width and the dropped length prefix.
void FmCoinInstance::send_deal(Outbox& out, ChannelId ch) {
  const std::size_t width = std::size_t{env_.f} + 1;
  for (NodeId j = 0; j < env_.n; ++j) {
    dealing_.row_into(field_, j, scratch_->row_buf.data());
    ByteWriter& w = out.writer();
    w.masked_u64_vec(scratch_->row_buf.data(), width, sentinel(field_),
                     value_bits_);
    out.send(j, ch, w.data());
  }
}

void FmCoinInstance::recv_deal(const Inbox& in, ChannelId ch) {
  const auto payloads = in.first_per_sender(ch);
  const std::size_t width = std::size_t{env_.f} + 1;
  for (NodeId d = 0; d < env_.n; ++d) {
    row_valid_[d] = 0;
    if (payloads[d] == nullptr) continue;
    ByteReader r(*payloads[d]);
    // Masked-out coefficients decode to the sentinel, which
    // validate_row_raw rejects as non-canonical — a Byzantine dealer gains
    // nothing by masking.
    if (!r.masked_u64_vec_into(scratch_->row_buf.data(), width,
                               sentinel(field_), value_bits_) ||
        !r.at_end()) {
      continue;
    }
    if (!validate_row_raw(field_, env_.f, scratch_->row_buf.data(), width)) {
      continue;
    }
    row_valid_[d] = 1;
    // The one evaluation pass per dealing: rounds 2-4 read these values
    // instead of re-walking the row polynomial.
    field_.eval_many(scratch_->row_buf.data(), width, scratch_->points.data(),
                     env_.n, &eval_at_node(d, 0));
    eval_at_zero(d) = scratch_->row_buf[0];
  }
}

// Round 2 — cross-check: send node j, for every dealer d, my row's value
// at j's point; j compares against its own row's value at my point
// (symmetry: F_d(x_me, x_j) = F_d(x_j, x_me)).
void FmCoinInstance::send_cross(Outbox& out, ChannelId ch) {
  for (NodeId j = 0; j < env_.n; ++j) {
    for (NodeId d = 0; d < env_.n; ++d) {
      scratch_->vals[d] = row_valid_[d] ? eval_at_node(d, j) : sentinel(field_);
    }
    ByteWriter& w = out.writer();
    w.masked_u64_vec(scratch_->vals.data(), env_.n, sentinel(field_),
                     value_bits_);
    out.send(j, ch, w.data());
  }
}

void FmCoinInstance::recv_cross(const Inbox& in, ChannelId ch) {
  const auto payloads = in.first_per_sender(ch);
  std::fill(cross_matches_.begin(), cross_matches_.end(), 0);
  for (NodeId j = 0; j < env_.n; ++j) {
    if (payloads[j] == nullptr) continue;
    ByteReader r(*payloads[j]);
    if (!r.masked_u64_vec_into(scratch_->vals.data(), env_.n,
                               sentinel(field_), value_bits_) ||
        !r.at_end()) {
      continue;
    }
    for (NodeId d = 0; d < env_.n; ++d) {
      if (!row_valid_[d] || !field_.valid(scratch_->vals[d])) continue;
      if (eval_at_node(d, j) == scratch_->vals[d]) ++cross_matches_[d];
    }
  }
  for (NodeId d = 0; d < env_.n; ++d) {
    bitword_set(happy_words_.data(), d,
                gvss_happy(env_.n, env_.f, row_valid_[d] != 0,
                           cross_matches_[d]));
  }
}

// Round 3 — decide phase: broadcast my happy votes as a raw ceil(n/8)-byte
// bitmask (bits >= n stay clear; bitword storage keeps them so).
void FmCoinInstance::send_votes(Outbox& out, ChannelId ch) {
  ByteWriter& w = out.writer();
  w.bits(happy_words_.data(), env_.n);
  out.broadcast(ch, w.data());
}

void FmCoinInstance::recv_votes(const Inbox& in, ChannelId ch) {
  const auto payloads = in.first_per_sender(ch);
  std::fill(scratch_->votes.begin(), scratch_->votes.end(), 0);
  for (NodeId j = 0; j < env_.n; ++j) {
    vote_valid_[j] = 0;
    if (payloads[j] == nullptr) continue;
    ByteReader r(*payloads[j]);
    std::uint64_t* row = voted_words_.data() + std::size_t{j} * words_;
    if (!r.bits_into(row, env_.n) || !r.at_end()) continue;
    vote_valid_[j] = 1;
    for (NodeId d = 0; d < env_.n; ++d) {
      if (bitword_get(row, d)) ++scratch_->votes[d];
    }
  }
  for (NodeId d = 0; d < env_.n; ++d) {
    grades_[d] = gvss_grade(env_.n, env_.f, scratch_->votes[d]);
  }
}

// Round 4 — recover phase: broadcast my share g_d(x_me) = F_d(x_me, 0) of
// every dealing I hold a row for. This is the single round before which
// the adversary cannot predict the coin (Observation 2.1).
void FmCoinInstance::send_shares(Outbox& out, ChannelId ch) {
  for (NodeId d = 0; d < env_.n; ++d) {
    scratch_->vals[d] = row_valid_[d] ? eval_at_zero(d) : sentinel(field_);
  }
  ByteWriter& w = out.writer();
  w.masked_u64_vec(scratch_->vals.data(), env_.n, sentinel(field_),
                   value_bits_);
  out.broadcast(ch, w.data());
}

void FmCoinInstance::recv_shares(const Inbox& in, ChannelId ch) {
  const auto payloads = in.first_per_sender(ch);
  // Decode every sender's share vector once, into the shared flat matrix.
  for (NodeId j = 0; j < env_.n; ++j) {
    scratch_->shares_ok[j] = 0;
    if (payloads[j] == nullptr) continue;
    ByteReader r(*payloads[j]);
    if (!r.masked_u64_vec_into(
            scratch_->shares.data() + std::size_t{j} * env_.n, env_.n,
            sentinel(field_), value_bits_) ||
        !r.at_end()) {
      continue;
    }
    scratch_->shares_ok[j] = 1;
  }
  std::uint64_t sum = 0;
  for (NodeId d = 0; d < env_.n; ++d) {
    if (grades_[d] == GvssGrade::kNone) continue;
    // Only shares from nodes that *voted happy* on d count: a correct happy
    // voter's row is consistent with the unique dealt polynomial, so lies
    // among these points come only from Byzantine senders (<= f), within
    // the Berlekamp-Welch budget.
    scratch_->pts.clear();
    for (NodeId j = 0; j < env_.n; ++j) {
      if (!scratch_->shares_ok[j] || !vote_valid_[j]) continue;
      if (!bitword_get(voted_words_.data() + std::size_t{j} * words_, d)) {
        continue;
      }
      const std::uint64_t y = scratch_->shares[std::size_t{j} * env_.n + d];
      if (!field_.valid(y)) continue;
      scratch_->pts.push_back(RsPoint{node_point(j), y});
    }
    // Unrecoverable dealings (necessarily from a faulty dealer) contribute
    // the canonical value 0, identically at every node that fails.
    const std::uint64_t s_d =
        gvss_recover(field_, env_.f, scratch_->pts, &scratch_->table)
            .value_or(0);
    sum = field_.add(sum, s_d);
  }
  output_bit_ = (sum & 1) != 0;
}

void FmCoinInstance::randomize_state(Rng& rng) {
  // Arbitrary memory corruption: every mutable field gets garbage that is
  // type-valid but semantically arbitrary. (Draw order is load-bearing for
  // replay determinism: dealing, then per dealer row/counters/votes, then
  // the output bit.)
  dealing_.resample(field_, env_.f, rng);
  const std::size_t width = std::size_t{env_.f} + 1;
  for (NodeId d = 0; d < env_.n; ++d) {
    if (rng.next_bool()) {
      // A random-but-consistent degree-f row, like a fresh Poly::random.
      for (std::size_t i = 0; i < width; ++i) {
        scratch_->row_buf[i] = field_.uniform(rng);
      }
      row_valid_[d] = 1;
      field_.eval_many(scratch_->row_buf.data(), width,
                       scratch_->points.data(), env_.n, &eval_at_node(d, 0));
      eval_at_zero(d) = scratch_->row_buf[0];
    } else {
      row_valid_[d] = 0;
    }
    cross_matches_[d] = static_cast<std::uint32_t>(rng.next_below(env_.n + 1));
    bitword_set(happy_words_.data(), d, rng.next_bool());
    grades_[d] = static_cast<GvssGrade>(rng.next_below(3));
    std::uint64_t* row = voted_words_.data() + std::size_t{d} * words_;
    bitword_clear(row, env_.n);
    for (NodeId j = 0; j < env_.n; ++j) bitword_set(row, j, rng.next_bool());
    vote_valid_[d] = 1;
  }
  output_bit_ = rng.next_bool();
}

CoinSpec fm_coin_spec(FmCoinParams params) {
  CoinSpec spec;
  spec.channels = FmCoinInstance::kRounds;
  spec.make = [params](const ProtocolEnv& env, ChannelId base, Rng rng) {
    // One scratch per pipeline: its staggered instances never execute the
    // same round in the same beat, so round-transient state is shareable.
    auto scratch = std::make_shared<FmCoinScratch>();
    CoinInstanceFactory factory = [env, params,
                                   scratch](Rng inst_rng) mutable {
      return std::make_unique<FmCoinInstance>(env, params, inst_rng, scratch);
    };
    return std::make_unique<SsByzCoinFlip>(std::move(factory),
                                           FmCoinInstance::kRounds, base, rng);
  };
  return spec;
}

}  // namespace ssbft
