// Cross-cell sweep scheduler: one global work queue of (cell, trial)
// units feeding a worker pool, so a multi-row table runs at the speed of
// its aggregate work instead of barriering on the slowest cell of each
// row. Determinism contract: trial t of cell c is always seeded
// cell.cfg.base_seed + t and outcomes are merged per cell in trial order,
// so every cell's TrialStats is bit-identical to running that cell alone
// with run_trials at jobs = 1 — for every jobs value and any interleaving.
#pragma once

#include <string>
#include <vector>

#include "harness/runner.h"

namespace ssbft {

// One cell of a sweep grid: a named engine-builder plus its trial config.
// cfg.jobs is ignored here — scheduling is sweep-global.
struct SweepCell {
  std::string name;
  EngineBuilder builder;
  RunnerConfig cfg;
};

struct SweepOptions {
  // Worker threads over the global unit queue. 1 = serial; 0 = one per
  // hardware thread; clamped to 4x the hardware thread count and to the
  // total unit count.
  std::uint64_t jobs = 1;
  // Opt-in stderr progress line ("sweep: c/N cells done") for long sweeps.
  bool progress = false;
  // When non-empty, every (cell, trial) unit writes a JSONL execution
  // trace (sim/trace.h) to "<trace_dir>/<cell>.t<trial>.jsonl" (cell names
  // sanitized for the filesystem). The directory is created. Tracing never
  // affects results: the same seeds, the same beats, the same TrialStats.
  std::string trace_dir;
};

// Runs every (cell, trial) unit and returns one TrialStats per cell, in
// cell order.
std::vector<TrialStats> run_sweep(const std::vector<SweepCell>& cells,
                                  const SweepOptions& opts);

}  // namespace ssbft
