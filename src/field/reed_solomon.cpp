#include "field/reed_solomon.h"

#include "field/matrix.h"
#include "support/check.h"

namespace ssbft {

namespace {

// Attempts decoding with exactly `e` as the error-locator degree. The key
// equation is Q(x_i) = y_i * E(x_i) for all i, with deg Q <= d + e and
// E monic of degree e. Unknowns: q_0..q_{d+e}, e_0..e_{e-1}.
std::optional<Poly> try_decode(const PrimeField& F,
                               const std::vector<RsPoint>& pts, int d, int e) {
  const std::size_t m = pts.size();
  const std::size_t nq = static_cast<std::size_t>(d + e) + 1;
  const std::size_t ne = static_cast<std::size_t>(e);
  Matrix A(m, nq + ne);
  std::vector<std::uint64_t> b(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t x = pts[i].x;
    const std::uint64_t y = pts[i].y;
    // Q coefficients: + x^j
    std::uint64_t xp = 1;
    for (std::size_t j = 0; j < nq; ++j) {
      A.at(i, j) = xp;
      xp = F.mul(xp, x);
    }
    // E coefficients: - y * x^j   (monic term y * x^e goes to the rhs)
    xp = 1;
    for (std::size_t j = 0; j < ne; ++j) {
      A.at(i, nq + j) = F.neg(F.mul(y, xp));
      xp = F.mul(xp, x);
    }
    b[i] = F.mul(y, xp);  // xp == x^e after the E loop
  }
  auto sol = solve_linear(F, std::move(A), std::move(b));
  if (!sol) return std::nullopt;
  std::vector<std::uint64_t> qc(sol->begin(), sol->begin() + static_cast<long>(nq));
  std::vector<std::uint64_t> ec(sol->begin() + static_cast<long>(nq), sol->end());
  ec.push_back(1);  // monic
  Poly Q(std::move(qc)), E(std::move(ec));
  auto [quot, rem] = Q.divmod(F, E);
  if (!rem.is_zero()) return std::nullopt;
  if (quot.degree() > d) return std::nullopt;
  return quot;
}

}  // namespace

std::optional<Poly> berlekamp_welch(const PrimeField& F,
                                    const std::vector<RsPoint>& points,
                                    int degree, int max_errors) {
  SSBFT_REQUIRE(degree >= 0 && max_errors >= 0);
  const int m = static_cast<int>(points.size());
  if (m < degree + 1) return std::nullopt;  // underdetermined
  // Need m >= degree + 2e + 1 to correct e errors; clamp the attempt range.
  int e_hi = std::min(max_errors, (m - degree - 1) / 2);
  // Try the largest admissible error count first: the solution space for
  // e' > actual errors still contains (E * spurious) solutions that divide
  // out, so the first success is the true codeword. Descend on failure
  // (e.g. degenerate systems) and accept the first verified decode.
  for (int e = e_hi; e >= 0; --e) {
    auto p = try_decode(F, points, degree, e);
    if (!p) continue;
    if (count_disagreements(F, *p, points) <= max_errors) return p;
  }
  return std::nullopt;
}

int count_disagreements(const PrimeField& F, const Poly& p,
                        const std::vector<RsPoint>& points) {
  int bad = 0;
  for (const auto& pt : points) {
    if (p.eval(F, pt.x) != pt.y) ++bad;
  }
  return bad;
}

}  // namespace ssbft
