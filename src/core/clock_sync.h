// ss-Byz-Clock-Sync (Figure 4): the k-Clock for any k, with constant
// overhead — the paper's headline algorithm (Theorem 4).
//
// An ss-Byz-4-Clock A provides four repeating phases; each phase is one
// beat and the full clock is agreed on via a Turpin-Coan/Rabin-style
// exchange spread over them (clock(A) is read at the start of the beat):
//
//   phase 0: broadcast full_clock;
//   phase 1: propose the value seen n-f times in the previous beat (else ?);
//   phase 2: save := majority non-? proposal; bit := [save had n-f support];
//            broadcast bit; save := 0 if ?;
//   phase 3: n-f "1" bits  -> full_clock := save + 3
//            n-f "0" bits  -> full_clock := 0
//            else coin: rand = 1 -> save + 3, rand = 0 -> 0.
//
// full_clock increments every beat (mod k); the phase-3 assignment lands
// exactly on the incremented value once synced (Lemma 6's timeline), so
// closure is deterministic. The phase-3 coin gamble gives a constant
// success probability per 4-beat cycle (Lemma 8), hence expected-constant
// convergence for ANY k — unlike the Section 5 cascade whose cost grows
// with log k.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "coin/coin_interface.h"
#include "core/clock4.h"
#include "sim/protocol.h"

namespace ssbft {

class SsByzClockSync final : public ClockProtocol {
 public:
  // `coin` is used for the embedded 4-clock's pipelines and for this
  // layer's own phase-3 coin.
  SsByzClockSync(const ProtocolEnv& env, ClockValue k, const CoinSpec& coin,
                 Rng rng, ChannelId base = 0,
                 CoinPipelineMode mode = CoinPipelineMode::kPerSubClock);

  void send_phase(Outbox& out) override;
  void receive_phase(const Inbox& in) override;
  void randomize_state(Rng& rng) override;
  ClockValue clock() const override { return full_clock_ % k_; }
  ClockValue modulus() const override { return k_; }
  std::uint32_t channel_count() const override { return channels_end_; }
  void trace_state(TraceEmitter& em) const override;

  static std::uint32_t channels_needed(const CoinSpec& coin,
                                       CoinPipelineMode mode) {
    return 3 + SsByz4Clock::channels_needed(coin, mode) + coin.channels;
  }

  // Introspection for tests.
  const SsByz4Clock& four_clock() const { return *a_; }

 private:
  void tally(ClockValue v);
  void recv_phase0(const Inbox& in);
  void recv_phase1(const Inbox& in);
  void recv_phase2(const Inbox& in);
  void recv_phase3(bool rand);

  ProtocolEnv env_;
  ClockValue k_;
  ChannelId ch_full_, ch_prop_, ch_bit_;
  ChannelId coin_base_ = 0;  // phase-3 coin's channel range (trace stream)
  std::uint32_t channels_end_;
  std::unique_ptr<SsByz4Clock> a_;
  std::unique_ptr<CoinComponent> coin_;
  // Per-beat value tally for phases 0 and 1. At most n distinct values
  // arrive per beat (one counted message per sender), so a small flat
  // pair list with linear lookup replaces the per-beat std::map and its
  // node churn; capacity n is reserved once. k itself can be huge
  // (tests go to 1e9+7), so a k-slot array is not an option.
  std::vector<std::pair<ClockValue, std::uint32_t>> value_counts_;

  ClockValue full_clock_ = 0;
  // Phase latched at send time so send/receive act on the same case block.
  ClockValue phase_ = 0;
  // State carried between phases (arbitrary after a transient fault;
  // harmless — it is rewritten every 4-beat cycle).
  std::optional<ClockValue> strong_value_;  // phase-0 value with n-f support
  ClockValue save_ = 0;
  std::uint8_t bit_ = 0;
  std::uint32_t ones_count_ = 0;
  std::uint32_t zeros_count_ = 0;
};

}  // namespace ssbft
