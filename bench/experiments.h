// The experiment registry behind every bench binary. Each of the eight
// historical bench mains is one registered experiment; the `ssbft_bench`
// driver runs any of them (or any registry scenario cell, by glob) and the
// per-experiment binaries are thin wrappers over bench_main().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/sweep.h"

namespace ssbft::bench {

// Shared CLI for the bench binaries and the driver's `run` subcommand.
// A value of 0 means "keep the experiment's per-cell default" (for
// --jobs, 0 means one worker per hardware thread, the default).
struct BenchOptions {
  std::uint64_t trials = 0;  // override every cell's trial count
  std::uint64_t seed = 0;    // offset added to every cell's base seed
  std::uint64_t jobs = 0;    // sweep worker threads
  ReportFormat format = ReportFormat::kAscii;
  std::string out;           // --out FILE (empty = stdout)
  bool progress = false;     // stderr cells-done progress line
  std::string trace;         // --trace DIR: per-(cell, trial) JSONL traces
};

// Parses argv[first..) into a BenchOptions value; prints usage and exits
// on --help or malformed input. No global state: the returned value flows
// into the experiment/scenario calls explicitly. wrapper_note appends the
// "this binary is a thin wrapper over ssbft_bench" pointer to --help —
// the driver passes false when parsing its own `run` options.
BenchOptions parse_cli(const char* prog, int argc, char** argv,
                       int first = 1, bool wrapper_note = true);

// --trials / --seed overrides layered on an experiment's defaults.
std::uint64_t trials_or(const BenchOptions& o, std::uint64_t def);
// --seed shifts, rather than replaces, each cell's base seed: the
// per-table offsets (e.g. 2000 + n) keep rows statistically independent
// while a nonzero S yields a fresh independent replication.
std::uint64_t shifted_seed(const BenchOptions& o, std::uint64_t def);

// RunnerConfig for a registry cell: the spec's defaults + the overrides.
RunnerConfig cell_config(const BenchOptions& o, const ScenarioSpec& spec);

// Fetches a registry cell as a SweepCell (REQUIREs the name to exist —
// experiment grids reference only registered scenarios).
SweepCell registry_cell(const BenchOptions& o, const std::string& name);

// Statistic cells shared by the table writers.
std::string stat_cell(const TrialStats& s);
std::string converged_cell(const TrialStats& s);

struct Experiment {
  const char* name;
  const char* summary;
  void (*run)(const BenchOptions&, Report&);
};

// All experiments, in registration (display) order.
const std::vector<Experiment>& experiments();
const Experiment* find_experiment(const std::string& name);

// Entry point for the thin per-experiment wrappers: parse CLI, open
// --out if given, run the experiment. Returns the process exit code.
int bench_main(const std::string& experiment, int argc, char** argv);

// Resolves --out into the stream the report writes to: stdout when empty,
// else `file` opened (and truncated) at o.out. Returns nullptr after
// printing an error when the file cannot be opened — callers must
// validate everything else (e.g. the run target) *before* calling, so a
// failed run never truncates an existing results file.
std::ostream* open_report_out(const BenchOptions& o, std::ofstream& file,
                              const char* prog);

// Driver helper: run an already-matched, non-empty set of registry
// scenarios (see match_scenarios) as one sweep and report a generic
// per-cell table. Taking the matched set lets the driver validate the
// pattern *before* opening/truncating --out.
void run_scenario_cells(const std::string& pattern,
                        const std::vector<const ScenarioSpec*>& matched,
                        const BenchOptions& o, Report& report);

}  // namespace ssbft::bench
