// Implements both the cross-cell sweep scheduler and the single-cell
// run_trials entry point on one shared (claim, run, merge) core, so the
// two paths cannot drift apart numerically. Sharding, checkpointing and
// resume all ride the same core: a shard is just a slice of the global
// unit sequence, and a resumed unit is one whose outcome arrives from the
// checkpoint instead of the engine.
#include "harness/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "harness/checker.h"
#include "harness/live_check.h"
#include "sim/trace.h"
#include "support/check.h"
#include "support/sha256.h"

namespace ssbft {

namespace {

double percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

std::uint64_t effective_jobs(std::uint64_t requested, std::uint64_t units) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::uint64_t hw = hw_raw == 0 ? 1 : hw_raw;
  std::uint64_t jobs = requested == 0 ? hw : requested;
  // Trials are CPU-bound, so threads beyond the core count only add
  // scheduling overhead — and an absurd jobs value must not exhaust OS
  // threads. Results are jobs-independent, so clamping is safe.
  jobs = std::min(jobs, 4 * hw);
  return std::min(jobs, units);
}

std::string sanitize_for_path(const std::string& name) {
  std::string out = name.empty() ? "cell" : name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

std::string trace_path_for(const SweepOptions& opts, const std::string& cell,
                           std::uint64_t trial) {
  return opts.trace_dir + "/" + sanitize_for_path(cell) + ".t" +
         std::to_string(trial) + ".jsonl";
}

// Parse -> merge -> commit on one unit's trace file: identical to what
// ssbft_check would compute, so the sweep's per-unit commitments are the
// replay-exactness oracle. Each unit's (scenario, trial, seed) is unique,
// so the merge is a one-file canonicalization.
// Environment failures (unreadable trace files, unresumable checkpoints,
// unwritable checkpoint paths) throw contract_error with a message that
// stands alone — the CLI prints it verbatim, so no macro expression noise.
[[noreturn]] void sweep_fail(const std::string& msg) {
  throw contract_error(msg);
}

std::string commitment_from_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    sweep_fail("cannot open trace file " + path +
               " to compute its commitment");
  }
  ParseResult parsed = parse_trace(in);
  if (!parsed.ok) {
    sweep_fail("trace file " + path + " line " +
               std::to_string(parsed.error_line) + ": " + parsed.error);
  }
  std::vector<ParsedTrace> parts;
  parts.push_back(std::move(parsed.trace));
  MergeResult merged = merge_traces(std::move(parts));
  if (!merged.ok || merged.traces.size() != 1) {
    sweep_fail("trace file " + path + ": " + merged.error);
  }
  return trace_commitment(merged.traces[0]);
}

// Fan-out sink for live-checked + traced units: every record batch goes
// to both the StreamingChecker and the JSONL file.
class TeeTraceSink final : public TraceSink {
 public:
  TeeTraceSink(TraceSink* a, TraceSink* b) : a_(a), b_(b) {}
  void begin_trace(const TraceMeta& meta) override {
    a_->begin_trace(meta);
    b_->begin_trace(meta);
  }
  void write(const TraceRecord* records, std::size_t count) override {
    a_->write(records, count);
    b_->write(records, count);
  }
  void end_beat(Beat beat) override {
    a_->end_beat(beat);
    b_->end_beat(beat);
  }

 private:
  TraceSink* a_;
  TraceSink* b_;
};

TrialOutcome run_unit(const SweepCell& cell, std::uint64_t t,
                      const SweepOptions& opts) {
  EngineBundle bundle = cell.builder(cell.cfg.base_seed + t);
  SSBFT_CHECK(bundle.engine != nullptr);
  // Destroyed before the bundle (declared later), which is safe: no beat
  // runs after the run returns and the engine's destructor never touches
  // its trace sink.
  std::unique_ptr<JsonlTraceSink> sink;
  std::unique_ptr<StreamingChecker> checker;
  std::unique_ptr<TeeTraceSink> tee;
  TraceSink* attach = nullptr;
  if (!opts.trace_dir.empty()) {
    const std::string path = trace_path_for(opts, cell.name, t);
    sink = std::make_unique<JsonlTraceSink>(path);
    if (!sink->ok()) sweep_fail("cannot open trace file " + path);
    attach = sink.get();
  }
  if (opts.live_check) {
    // The closure/convergence invariants only hold once the unit's own
    // declared network faults have quiesced; the checker treats earlier
    // beats like corruption beats.
    CheckOptions copts = opts.live_check_opts;
    copts.fault_horizon = bundle.engine->fault_plan().network_quiescence();
    checker = std::make_unique<StreamingChecker>(copts);
    attach = sink ? static_cast<TraceSink*>(
                        (tee = std::make_unique<TeeTraceSink>(checker.get(),
                                                              sink.get()))
                            .get())
                  : checker.get();
  }
  if (attach != nullptr) {
    TraceMeta meta;
    meta.scenario = cell.name;
    meta.trial = t;
    meta.seed = cell.cfg.base_seed + t;
    meta.n = bundle.engine->n();
    meta.f = bundle.engine->f();
    for (NodeId id = 0; id < bundle.engine->n(); ++id) {
      if (bundle.engine->is_faulty(id)) meta.faulty.push_back(id);
    }
    meta.max_beats = cell.cfg.convergence.max_beats;
    meta.confirm_window = cell.cfg.convergence.confirm_window;
    attach->begin_trace(meta);
    bundle.engine->set_trace(attach);
  }
  TrialOutcome out;
  if (opts.live_check) {
    // Live-checked units run the whole budget: stopping at confirmation
    // (measure_convergence) would hide post-convergence closure breaks
    // and skip corruptions scheduled after the sync point.
    bundle.engine->run_beats(cell.cfg.convergence.max_beats);
    const CheckResult& verdict = checker->finish();
    out.converged = verdict.converged;
    out.synced_at = verdict.synced_at;
    out.check_violations = verdict.violation_count;
  } else {
    const ConvergenceResult r =
        measure_convergence(*bundle.engine, cell.cfg.convergence);
    out.converged = r.converged;
    out.synced_at = r.synced_at;
  }
  out.msgs_per_beat = bundle.engine->metrics().mean_correct_messages_per_beat();
  return out;
}

}  // namespace

// Merge in trial order: sample order and floating-point accumulation
// order are fixed by the trial index, never by completion order.
TrialStats merge_outcomes(const std::vector<TrialOutcome>& outcomes) {
  TrialStats stats;
  stats.trials = outcomes.size();
  if (outcomes.empty()) return stats;
  stats.samples.reserve(outcomes.size());
  double msgs_acc = 0.0;
  for (const TrialOutcome& o : outcomes) {
    msgs_acc += o.msgs_per_beat;
    if (o.converged) {
      ++stats.converged;
      stats.samples.push_back(o.synced_at);
    }
  }
  stats.mean_msgs_per_beat = msgs_acc / static_cast<double>(outcomes.size());
  if (!stats.samples.empty()) {
    std::vector<std::uint64_t> sorted = stats.samples;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (auto s : sorted) sum += static_cast<double>(s);
    stats.mean = sum / static_cast<double>(sorted.size());
    stats.median = percentile(sorted, 0.5);
    stats.p90 = percentile(sorted, 0.9);
    stats.max = sorted.back();
  }
  return stats;
}

std::string sweep_fingerprint(const std::vector<SweepCell>& cells) {
  std::string acc = "ssbft-grid-v1\n";
  for (const SweepCell& c : cells) {
    acc += c.name;
    acc += '|';
    acc += std::to_string(c.cfg.trials);
    acc += '|';
    acc += std::to_string(c.cfg.base_seed);
    acc += '|';
    acc += std::to_string(c.cfg.convergence.max_beats);
    acc += '|';
    acc += std::to_string(c.cfg.convergence.confirm_window);
    acc += '\n';
  }
  return Sha256::hash_hex(acc);
}

ShardHeader shard_header_for(const std::vector<SweepCell>& cells,
                             const ShardSpec& shard,
                             const std::string& pattern) {
  ShardHeader h;
  h.pattern = pattern;
  h.shard = shard;
  h.fingerprint = sweep_fingerprint(cells);
  for (const SweepCell& c : cells) {
    h.total_units += c.cfg.trials;
    h.cells.push_back(ShardCellInfo{c.name, c.cfg.trials, c.cfg.base_seed});
  }
  return h;
}

SweepResult run_sweep_ex(const std::vector<SweepCell>& cells,
                         const SweepOptions& opts) {
  SSBFT_REQUIRE_MSG(opts.shard.count >= 1 && opts.shard.index < opts.shard.count,
                    "invalid shard spec " << opts.shard.index << "/"
                                          << opts.shard.count);
  SSBFT_REQUIRE_MSG(opts.checkpoint_every >= 1,
                    "checkpoint interval must be >= 1");
  SSBFT_REQUIRE_MSG(!opts.collect_commitments || !opts.trace_dir.empty(),
                    "trace commitments require a trace directory");
  SSBFT_REQUIRE_MSG(!opts.resume || !opts.checkpoint_path.empty(),
                    "resume requires a checkpoint path");

  // Flatten the grid into one unit list: unit u = (cell_of[u],
  // trial_of[u]), cells in order, trials in order within each cell — so a
  // serial walk is exactly "run_trials per cell". Sharding and
  // checkpointing both speak this global index.
  std::vector<std::uint32_t> cell_of;
  std::vector<std::uint64_t> trial_of;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::uint64_t t = 0; t < cells[c].cfg.trials; ++t) {
      cell_of.push_back(static_cast<std::uint32_t>(c));
      trial_of.push_back(t);
    }
  }
  const std::uint64_t total = cell_of.size();

  // This run's slice of the sequence, ascending: position j holds unit
  // index + j*count, so a restored unit maps back via (u - index) / count.
  std::vector<std::uint64_t> slice;
  for (std::uint64_t u = opts.shard.index; u < total; u += opts.shard.count) {
    slice.push_back(u);
  }

  if (!opts.trace_dir.empty()) {
    std::filesystem::create_directories(opts.trace_dir);
  }

  CheckpointState ckpt;
  ckpt.fingerprint = sweep_fingerprint(cells);
  ckpt.shard = opts.shard;
  ckpt.total_units = total;

  std::vector<TrialOutcome> outcome_of(slice.size());
  std::vector<char> have(slice.size(), 0);
  std::uint64_t resumed = 0;

  if (opts.resume) {
    CheckpointLoad load = load_checkpoint(opts.checkpoint_path);
    if (!load.ok) {
      sweep_fail("resume from " + opts.checkpoint_path + ": " + load.error);
    }
    if (load.state.fingerprint != ckpt.fingerprint) {
      sweep_fail("resume: checkpoint " + opts.checkpoint_path +
                 " was written for a different grid (fingerprint mismatch)");
    }
    if (!(load.state.shard == opts.shard)) {
      sweep_fail("resume: checkpoint covers shard " +
                 std::to_string(load.state.shard.index) + "/" +
                 std::to_string(load.state.shard.count) +
                 ", this run is shard " + std::to_string(opts.shard.index) +
                 "/" + std::to_string(opts.shard.count));
    }
    if (load.state.total_units != total) {
      sweep_fail("resume: checkpoint covers " +
                 std::to_string(load.state.total_units) +
                 " units, this grid has " + std::to_string(total));
    }
    if (load.torn) {
      std::fprintf(stderr,
                   "sweep: warning: checkpoint %s has a torn tail; "
                   "discarded %llu record(s), recomputing them\n",
                   opts.checkpoint_path.c_str(),
                   static_cast<unsigned long long>(load.discarded_records));
      std::fflush(stderr);
    }
    for (auto& [u, o] : load.state.done) {
      // decode_checkpoint already guaranteed u < total and slice
      // membership, so this mapping cannot go out of range.
      if (opts.collect_commitments && o.trace_commitment.empty()) {
        // The checkpoint predates --trace: rebuild the commitment from
        // the unit's trace file (it must exist and parse, or the
        // "bit-identical to uninterrupted" promise is unkeepable).
        o.trace_commitment = commitment_from_trace_file(
            trace_path_for(opts, cells[cell_of[u]].name, trial_of[u]));
      }
      const std::uint64_t j = (u - opts.shard.index) / opts.shard.count;
      outcome_of[j] = o;
      have[j] = 1;
      ++resumed;
    }
    ckpt.done = std::move(load.state.done);
    if (opts.progress) {
      std::fprintf(stderr, "sweep: resumed %llu/%zu units from %s\n",
                   static_cast<unsigned long long>(resumed), slice.size(),
                   opts.checkpoint_path.c_str());
      std::fflush(stderr);
    }
  }

  std::vector<std::uint64_t> pending;
  for (std::uint64_t j = 0; j < slice.size(); ++j) {
    if (!have[j]) pending.push_back(j);
  }

  // done-count, checkpoint map and the progress print all mutate under
  // one lock, so the reported sequence is monotone and the checkpoint
  // file is always a consistent prefix of completed units.
  std::mutex io_mu;
  std::uint64_t done_count = resumed;
  std::uint64_t since_ckpt = 0;
  const auto progress_line = [&] {  // io_mu held
    if (!opts.progress) return;
    if (opts.shard.active()) {
      std::fprintf(stderr, "sweep[shard %llu/%llu]: %llu/%zu units done\n",
                   static_cast<unsigned long long>(opts.shard.index),
                   static_cast<unsigned long long>(opts.shard.count),
                   static_cast<unsigned long long>(done_count), slice.size());
    } else {
      std::fprintf(stderr, "sweep: %llu/%zu units done\n",
                   static_cast<unsigned long long>(done_count), slice.size());
    }
    std::fflush(stderr);
  };
  const auto run_one = [&](std::uint64_t j) {
    const std::uint64_t u = slice[j];
    const std::uint32_t c = cell_of[u];
    const std::uint64_t t = trial_of[u];
    TrialOutcome out = run_unit(cells[c], t, opts);
    if (opts.collect_commitments) {
      out.trace_commitment =
          commitment_from_trace_file(trace_path_for(opts, cells[c].name, t));
    }
    outcome_of[j] = out;
    have[j] = 1;
    std::lock_guard<std::mutex> lock(io_mu);
    if (!opts.checkpoint_path.empty()) {
      ckpt.done[u] = std::move(out);
      if (++since_ckpt >= opts.checkpoint_every) {
        since_ckpt = 0;
        std::string werr;
        if (!write_checkpoint(opts.checkpoint_path, ckpt, &werr)) {
          sweep_fail("checkpoint: " + werr);
        }
      }
    }
    ++done_count;
    progress_line();
  };

  const std::uint64_t jobs = effective_jobs(opts.jobs, pending.size());
  if (jobs <= 1) {
    for (std::uint64_t p = 0; p < pending.size(); ++p) run_one(pending[p]);
  } else {
    std::atomic<std::uint64_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::uint64_t w = 0; w < jobs; ++w) {
      pool.emplace_back([&] {
        try {
          for (std::uint64_t p = next.fetch_add(1); p < pending.size();
               p = next.fetch_add(1)) {
            run_one(pending[p]);
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          // Exhaust the unit counter so the other workers wind down
          // instead of grinding through the remaining trials.
          next.store(pending.size());
        }
      });
    }
    for (auto& th : pool) th.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Final write so the published checkpoint always covers the whole
  // slice (and carries any commitments recomputed during resume).
  if (!opts.checkpoint_path.empty()) {
    std::string werr;
    if (!write_checkpoint(opts.checkpoint_path, ckpt, &werr)) {
      sweep_fail("checkpoint: " + werr);
    }
  }

  SweepResult res;
  res.total_units = total;
  res.resumed_units = resumed;
  res.units.reserve(slice.size());
  std::vector<std::vector<TrialOutcome>> per_cell(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    per_cell[c].reserve(cells[c].cfg.trials);
  }
  for (std::uint64_t j = 0; j < slice.size(); ++j) {
    const std::uint64_t u = slice[j];
    SweepUnitResult unit;
    unit.unit = u;
    unit.cell = cell_of[u];
    unit.trial = trial_of[u];
    unit.outcome = outcome_of[j];
    res.units.push_back(std::move(unit));
    per_cell[cell_of[u]].push_back(outcome_of[j]);
  }
  res.stats.reserve(cells.size());
  for (const auto& cell_outcomes : per_cell) {
    res.stats.push_back(merge_outcomes(cell_outcomes));
  }
  return res;
}

std::vector<TrialStats> run_sweep(const std::vector<SweepCell>& cells,
                                  const SweepOptions& opts) {
  return run_sweep_ex(cells, opts).stats;
}

TrialStats run_trials(const EngineBuilder& builder, const RunnerConfig& cfg) {
  SweepOptions opts;
  opts.jobs = cfg.jobs;
  std::vector<SweepCell> cells;
  cells.push_back(SweepCell{"", builder, cfg});
  return run_sweep(cells, opts)[0];
}

}  // namespace ssbft
