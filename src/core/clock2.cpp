#include "core/clock2.h"

#include "sim/trace.h"
#include "support/check.h"

namespace ssbft {

SsByz2Clock::SsByz2Clock(const ProtocolEnv& env, const CoinSpec& coin,
                         ChannelId base, Rng rng)
    : env_(env),
      clock_channel_(base),
      channels_end_(base + channels_needed(coin)),
      coin_(coin.make(env, static_cast<ChannelId>(base + 1),
                      rng.split("coin"))) {
  SSBFT_CHECK(coin_ != nullptr);
}

SsByz2Clock::SsByz2Clock(const ProtocolEnv& env, ChannelId base, Rng rng)
    : env_(env),
      clock_channel_(base),
      channels_end_(base + channels_needed_external_coin()) {
  (void)rng;
}

void SsByz2Clock::sub_send(Outbox& out) {
  // Line 1: broadcast clock (one byte: 0, 1 or ?).
  ByteWriter& w = out.writer();
  w.u8(static_cast<std::uint8_t>(clock_));
  out.broadcast(clock_channel_, w.data());
  // Line 2 (send half): the coin's messages for this beat.
  if (coin_) coin_->send_phase(out);
}

void SsByz2Clock::sub_receive(const Inbox& in) {
  SSBFT_REQUIRE_MSG(coin_ != nullptr,
                    "external-coin 2-clock needs sub_receive_with_rand");
  // Line 2 (receive half): rand becomes known only now, after every node —
  // Byzantine included — committed its beat-r messages (Remark 3.1).
  const bool rand = coin_->receive_phase(in);
  apply_majority_rule(in, rand);
}

void SsByz2Clock::sub_receive_with_rand(const Inbox& in, bool rand) {
  SSBFT_REQUIRE_MSG(coin_ == nullptr,
                    "embedded-coin 2-clock drives its own coin");
  apply_majority_rule(in, rand);
}

void SsByz2Clock::apply_majority_rule(const Inbox& in, bool rand) {
  // Lines 3-4: count values with "?" read as rand. Malformed or missing
  // payloads are ignored (a Byzantine sender gains nothing by gibberish).
  std::uint32_t count[2] = {0, 0};
  for (const Bytes* payload : in.first_per_sender(clock_channel_)) {
    if (payload == nullptr) continue;
    ByteReader r(*payload);
    const std::uint8_t v = r.u8();
    if (!r.at_end() || v > static_cast<std::uint8_t>(Tri::kBottom)) continue;
    if (v == static_cast<std::uint8_t>(Tri::kBottom)) {
      ++count[rand ? 1 : 0];
    } else {
      ++count[v];
    }
  }
  // maj = most frequent value. Ties cannot matter: #maj >= n-f > n/2 is
  // required below, and two values above n/2 cannot coexist; break toward 0.
  const int maj = count[1] > count[0] ? 1 : 0;
  const std::uint32_t maj_count = count[maj];
  // Lines 5-6.
  if (maj_count >= env_.n - env_.f) {
    clock_ = (1 - maj) == 0 ? Tri::kZero : Tri::kOne;
  } else {
    clock_ = Tri::kBottom;
  }
}

void SsByz2Clock::randomize_state(Rng& rng) {
  clock_ = static_cast<Tri>(rng.next_below(3));
  if (coin_) coin_->randomize_state(rng);
}

ClockValue SsByz2Clock::clock() const {
  return clock_ == Tri::kOne ? 1 : 0;
}

void SsByz2Clock::trace_state(TraceEmitter& em) const {
  // The raw tri-state (0, 1, 2 = ?) — clock() hides ? and the checker wants
  // to see convergence to the alternating closed orbit, not its projection.
  em.phase(clock_channel_, static_cast<std::uint64_t>(clock_));
  if (coin_) {
    em.coin(static_cast<std::uint32_t>(clock_channel_ + 1),
            coin_->last_output());
  }
}

}  // namespace ssbft
