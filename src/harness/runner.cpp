#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "support/check.h"

namespace ssbft {

namespace {

double percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

// What one trial contributes to the aggregate, captured per index so that
// workers never contend and the merge can run in trial order.
struct TrialOutcome {
  bool converged = false;
  std::uint64_t synced_at = 0;
  double msgs_per_beat = 0.0;
};

std::uint64_t effective_jobs(const RunnerConfig& cfg) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::uint64_t hw = hw_raw == 0 ? 1 : hw_raw;
  std::uint64_t jobs = cfg.jobs == 0 ? hw : cfg.jobs;
  // Trials are CPU-bound, so threads beyond the core count only add
  // scheduling overhead — and an absurd jobs value must not exhaust OS
  // threads. Results are jobs-independent, so clamping is safe.
  jobs = std::min(jobs, 4 * hw);
  return std::min(jobs, cfg.trials);
}

}  // namespace

TrialStats run_trials(const EngineBuilder& builder, const RunnerConfig& cfg) {
  TrialStats stats;
  stats.trials = cfg.trials;
  if (cfg.trials == 0) return stats;

  std::vector<TrialOutcome> outcomes(cfg.trials);
  const auto run_one = [&](std::uint64_t t) {
    EngineBundle bundle = builder(cfg.base_seed + t);
    SSBFT_CHECK(bundle.engine != nullptr);
    const ConvergenceResult r =
        measure_convergence(*bundle.engine, cfg.convergence);
    outcomes[t] = {r.converged, r.synced_at,
                   bundle.engine->metrics().mean_correct_messages_per_beat()};
  };

  const std::uint64_t jobs = effective_jobs(cfg);
  if (jobs <= 1) {
    for (std::uint64_t t = 0; t < cfg.trials; ++t) run_one(t);
  } else {
    std::atomic<std::uint64_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::uint64_t w = 0; w < jobs; ++w) {
      pool.emplace_back([&] {
        try {
          for (std::uint64_t t = next.fetch_add(1); t < cfg.trials;
               t = next.fetch_add(1)) {
            run_one(t);
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          // Exhaust the index counter so the other workers wind down
          // instead of grinding through the remaining trials.
          next.store(cfg.trials);
        }
      });
    }
    for (auto& th : pool) th.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Merge in trial order: sample order and floating-point accumulation
  // order match the serial path exactly.
  double msgs_acc = 0.0;
  for (const TrialOutcome& o : outcomes) {
    msgs_acc += o.msgs_per_beat;
    if (o.converged) {
      ++stats.converged;
      stats.samples.push_back(o.synced_at);
    }
  }
  stats.mean_msgs_per_beat = msgs_acc / static_cast<double>(cfg.trials);
  if (!stats.samples.empty()) {
    std::vector<std::uint64_t> sorted = stats.samples;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (auto s : sorted) sum += static_cast<double>(s);
    stats.mean = sum / static_cast<double>(sorted.size());
    stats.median = percentile(sorted, 0.5);
    stats.p90 = percentile(sorted, 0.9);
    stats.max = sorted.back();
  }
  return stats;
}

}  // namespace ssbft
