// Message model and per-beat inbox/outbox plumbing.
//
// Messages are (from, to, channel, payload-bytes). Channels identify logical
// sub-protocol streams inside a composed stack (e.g. "A1's coin, round 3");
// a parent protocol assigns its children disjoint channel ranges, which is
// the paper's "session number" device made static: only a fixed window of
// sub-protocol instances co-execute, so a fixed channel space suffices and
// is trivially recyclable (self-stabilization needs no unbounded counters).
//
// Bytes-pool ownership rules
// --------------------------
// Every payload buffer that flows through the beat loop is owned by exactly
// one of three parties at any time, and storage cycles between them through
// a BytesPool so the steady-state beat performs no heap allocation:
//
//   1. The pool itself. `acquire()` hands out an *empty* buffer (capacity
//      retained from earlier use); `release()` takes a buffer back, clears
//      its content, and keeps its capacity. Capacity-less buffers are
//      dropped on release — pooling them would grow the free list with
//      entries that save nothing.
//   2. A Message in flight. Outbox::send/broadcast and
//      AdversaryContext::send copy the caller's payload into a pooled
//      buffer, so the caller always keeps ownership of what it passed in
//      (a ByteWriter's scratch may be reused immediately). The engine moves
//      in-flight messages from the outbox into its per-beat scratch and
//      from there into inboxes; a message that is dropped (faulty target,
//      lossy network, unknown channel) releases its payload back to the
//      pool at the drop site.
//   3. An Inbox. Delivered payloads are owned by the inbox until its next
//      `clear()`, which releases them all back to the pool. Views returned
//      by `on()` / `first_per_sender()` borrow from the inbox and are
//      invalidated by `deliver()` and `clear()`.
//
// An Outbox/Inbox constructed without an external pool owns a private one,
// so standalone use (tests, harnesses) needs no extra plumbing. A shared
// pool must outlive every Outbox/Inbox bound to it; the Engine owns the
// pool and all of its users, in that order.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.h"
#include "support/types.h"

namespace ssbft {

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  ChannelId channel = 0;
  Bytes payload;
};

// Free list of payload buffers. Not thread-safe; one pool per engine.
class BytesPool {
 public:
  // An empty buffer, reusing pooled capacity when available.
  Bytes acquire();
  // Returns a buffer's storage to the pool. Content is discarded;
  // capacity-less buffers are dropped.
  void release(Bytes&& b);
  // Buffers currently sitting in the free list.
  std::size_t free_count() const { return free_.size(); }

 private:
  std::vector<Bytes> free_;
};

// Borrowed view of one channel bucket: a contiguous run of indices into
// the inbox's arrival-order message store. Iteration order is canonical
// (sender id, then arrival order); messages themselves are never moved.
class MessageView {
 public:
  class iterator {
   public:
    iterator(const Message* base, const std::uint32_t* idx)
        : base_(base), idx_(idx) {}
    const Message& operator*() const { return base_[*idx_]; }
    const Message* operator->() const { return &base_[*idx_]; }
    iterator& operator++() {
      ++idx_;
      return *this;
    }
    bool operator==(const iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const iterator& o) const { return idx_ != o.idx_; }

   private:
    const Message* base_;
    const std::uint32_t* idx_;
  };

  MessageView() = default;
  MessageView(const Message* base, const std::uint32_t* idx, std::size_t size)
      : base_(base), idx_(idx), size_(size) {}

  iterator begin() const { return iterator{base_, idx_}; }
  iterator end() const { return iterator{base_, idx_ + size_}; }
  const Message& operator[](std::size_t i) const { return base_[idx_[i]]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  const Message* base_ = nullptr;
  const std::uint32_t* idx_ = nullptr;
  std::size_t size_ = 0;
};

// Borrowed per-sender payload table: entry s is null if sender s sent
// nothing valid on the channel.
class PayloadView {
 public:
  PayloadView() = default;
  PayloadView(const Bytes* const* data, std::size_t size)
      : data_(data), size_(size) {}

  const Bytes* const* begin() const { return data_; }
  const Bytes* const* end() const { return data_ + size_; }
  const Bytes* operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  const Bytes* const* data_ = nullptr;
  std::size_t size_ = 0;
};

// Collects a node's sends during its send phase. The engine enforces the
// sender identity (Definition 2.2: sender ids cannot be forged). One Outbox
// is reused across all nodes and beats: `reset()` rebinds the sender. The
// engine binds the outbox to its own per-beat message vector (`bind_sink`),
// so sends land directly in the beat scratch with no drain pass; standalone
// outboxes collect into an internal vector.
class Outbox {
 public:
  Outbox(NodeId self, std::uint32_t n, BytesPool* pool = nullptr)
      : self_(self), n_(n), external_pool_(pool), sink_(&owned_msgs_) {}

  // Redirect sends into an external vector (the engine's beat scratch).
  // Pass null to return to the internal vector.
  void bind_sink(std::vector<Message>* sink) {
    sink_ = sink != nullptr ? sink : &owned_msgs_;
  }

  // Rebind to a new sender and restart this sender's traffic accounting.
  // Messages already in the sink are left in place (the engine owns them).
  void reset(NodeId self) {
    self_ = self;
    if (sink_ == &owned_msgs_) owned_msgs_.clear();
    sent_messages_ = 0;
    sent_bytes_ = 0;
  }

  // A cleared, reusable payload builder. Valid until the next writer()
  // call; send/broadcast copy the payload, so the writer may be reused
  // immediately afterwards.
  ByteWriter& writer() {
    writer_.clear();
    return writer_;
  }

  // Point-to-point send. The payload is copied into pooled storage.
  void send(NodeId to, ChannelId channel, const Bytes& payload);
  // "Broadcast" in the paper's sense: send the same payload to all n nodes,
  // including self (no broadcast channels are assumed).
  void broadcast(ChannelId channel, const Bytes& payload);

  // Messages and payload bytes emitted since the last reset().
  std::uint64_t sent_messages() const { return sent_messages_; }
  std::uint64_t sent_bytes() const { return sent_bytes_; }

  const std::vector<Message>& messages() const { return *sink_; }
  // Releases all payloads back to the pool and forgets the messages.
  void clear();

 private:
  BytesPool& pool() { return external_pool_ ? *external_pool_ : owned_pool_; }

  NodeId self_;
  std::uint32_t n_;
  BytesPool* external_pool_;
  BytesPool owned_pool_;
  ByteWriter writer_;
  std::vector<Message> owned_msgs_;
  std::vector<Message>* sink_;
  std::uint64_t sent_messages_ = 0;
  std::uint64_t sent_bytes_ = 0;
};

// A node's view of the messages delivered to it during one beat.
//
// Storage is a flat bucket layout: delivered messages live in one
// arrival-order array; on first read a flat index array is bucketed by
// channel and canonically ordered by sender id within each bucket (stable,
// so duplicates keep arrival order). Messages are moved in exactly once
// and never again. All per-beat state keeps its capacity across `clear()`,
// so a steady-state beat touches the allocator not at all.
class Inbox {
 public:
  Inbox(std::uint32_t n, std::uint32_t max_channels, BytesPool* pool = nullptr);

  // Takes ownership of the message (payload storage included). Messages on
  // unknown channels are dropped and their payloads recycled.
  void deliver(Message m);
  // Releases all payloads to the pool; keeps every buffer's capacity.
  void clear();

  // All messages on a channel, ordered by sender id (then arrival order for
  // duplicates). Channels out of range return an empty view. The view is
  // invalidated by deliver() and clear().
  MessageView on(ChannelId channel) const;

  // At most one payload per sender on a channel: the first message each
  // sender delivered. Index s is null if sender s sent nothing valid.
  // Byzantine duplicate floods therefore count once, deterministically.
  // The view is invalidated by deliver() and clear().
  PayloadView first_per_sender(ChannelId channel) const;

  std::uint32_t node_count() const { return n_; }

 private:
  BytesPool& pool() { return external_pool_ ? *external_pool_ : owned_pool_; }
  void seal() const;  // bucket + canonicalize the index array

  std::uint32_t n_;
  std::uint32_t max_channels_;
  BytesPool* external_pool_;
  BytesPool owned_pool_;

  std::vector<Message> staged_;  // arrival order; sole owner of payloads

  // Mutable: seal() runs lazily from the const read accessors.
  mutable bool sealed_ = false;
  mutable std::vector<std::uint32_t> order_;   // flat channel buckets (indices)
  mutable std::vector<std::uint32_t> count_;   // per channel
  mutable std::vector<std::uint32_t> offset_;  // per channel, into order_
  mutable std::vector<std::uint32_t> cursor_;  // scratch for bucketing
  mutable std::vector<ChannelId> touched_;     // channels with count > 0
  mutable std::vector<const Bytes*> first_;    // max_channels x n table
  std::vector<const Bytes*> null_row_;         // n nulls, for empty channels
};

}  // namespace ssbft
