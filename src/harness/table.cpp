#include "harness/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace ssbft {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SSBFT_REQUIRE(!headers_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  SSBFT_REQUIRE_MSG(cells.size() == headers_.size(),
                    "row width " << cells.size() << " != header width "
                                 << headers_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      // Pad by hand rather than with setw/left: those pick up whatever
      // fill character and adjustfield the caller's stream carries (report
      // code interleaves tables with setfill users), so wide cells — n=128
      // labels, 6+ digit ns/beat values — came out padded with the wrong
      // character, and the left flag leaked back to the caller.
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto rule = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void AsciiTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char ch : cell) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

}  // namespace ssbft
