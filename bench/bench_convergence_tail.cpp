// Convergence-tail experiment (Theorem 2's closing remark): the
// probability of NOT having converged by beat b decays geometrically —
// every beat carries a constant success chance, independent of history.
//
// Series printed: survival function P[synced_at > b] for ss-Byz-2-Clock
// and ss-Byz-Clock-Sync, across trials, plus the per-cycle empirical
// success rate implied by the decay.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "core/clock2.h"
#include "harness/convergence.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

EngineBuilder build_clock2_world(std::uint32_t n, std::uint32_t f) {
  return [n, f](std::uint64_t seed) {
    EngineBundle b;
    auto beacon = std::make_shared<OracleBeacon>(
        n, OracleCoinParams{0.45, 0.45}, Rng(seed).split("beacon"));
    CoinSpec spec = oracle_coin_spec(beacon);
    EngineConfig cfg;
    cfg.n = n;
    cfg.f = f;
    cfg.faulty = EngineConfig::last_ids_faulty(n, f);
    cfg.seed = seed;
    auto factory = [spec](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByz2Clock>(env, spec, 0, rng);
    };
    ByteWriter x, y;
    x.u8(0);
    y.u8(1);
    b.engine = std::make_unique<Engine>(
        cfg, factory,
        f > 0 ? make_split_value_adversary(0, std::move(x).take(),
                                           std::move(y).take())
              : nullptr);
    b.engine->add_listener(beacon.get());
    b.keepalive = beacon;
    return b;
  };
}

void tail_series(const std::string& name, const EngineBuilder& builder,
                 std::uint64_t trials, std::uint64_t max_beats) {
  auto stats = run_trials(builder, runner_config(trials, 10, max_beats));

  std::cout << "--- " << name << ": " << converged_cell(stats)
            << " converged, mean " << fmt_double(stats.mean, 2) << ", p90 "
            << fmt_double(stats.p90, 1) << ", max " << stats.max << " ---\n";
  std::sort(stats.samples.begin(), stats.samples.end());
  AsciiTable t({"beat b", "P[not converged by b]"});
  for (std::uint64_t b = 0; b <= stats.max + 2; b += std::max<std::uint64_t>(1, (stats.max + 2) / 12)) {
    const auto below = static_cast<std::uint64_t>(
        std::upper_bound(stats.samples.begin(), stats.samples.end(), b) -
        stats.samples.begin());
    const double surv =
        1.0 - static_cast<double>(below) / static_cast<double>(stats.trials);
    t.add_row({std::to_string(b), fmt_double(surv, 3)});
  }
  t.print(std::cout);
  // Geometric-decay readout: fit P[T > b] ~ exp(-b/tau) via the mean.
  if (stats.converged == stats.trials && stats.mean > 0) {
    std::cout << "implied per-beat success rate ~ "
              << fmt_double(1.0 / (stats.mean + 1), 3) << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  std::cout << "=== Convergence-tail experiment (Theorem 2 remark: "
               "geometric decay) ===\n\n";
  tail_series("ss-Byz-2-Clock n=4 f=1 (split attack)",
              build_clock2_world(4, 1), 400, 4000);
  tail_series("ss-Byz-2-Clock n=13 f=4 (split attack)",
              build_clock2_world(13, 4), 400, 4000);
  World w;
  w.n = 7;
  w.f = 2;
  w.actual = 2;
  w.k = 64;
  w.attack = Attack::kSkew;
  tail_series("ss-Byz-Clock-Sync n=7 f=2 k=64 (skew attack)",
              build_clock_sync(w), 200, 8000);
  return 0;
}
