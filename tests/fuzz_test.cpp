// Robustness fuzzing: every protocol stack is bombarded with structured
// and unstructured Byzantine garbage — random bytes, truncated encodings,
// hostile length prefixes, duplicate floods, non-canonical field elements —
// across every channel, plus phantom storms and repeated transient
// corruption. Invariants under test:
//
//   1. no crash / no contract violation anywhere in the stack (Byzantine
//      input is never trusted);
//   2. determinism is preserved (same seed, same trace) even under fuzz;
//   3. once the garbage stops (silent suffix), the system still converges.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "adversary/adversaries.h"
#include "harness/chaos.h"
#include "harness/checker.h"
#include "harness/checkpoint.h"
#include "agreement/phase_king.h"
#include "agreement/turpin_coan.h"
#include "baselines/dolev_welch.h"
#include "baselines/pipelined_ba_clock.h"
#include "coin/fm_coin.h"
#include "coin/oracle_coin.h"
#include "core/cascade.h"
#include "core/clock_sync.h"
#include "harness/convergence.h"
#include "harness/runner.h"

namespace ssbft {
namespace {

// An adversary emitting maximally malformed traffic: wrong widths, huge
// length prefixes, sentinel-adjacent field values, duplicate floods, and
// occasional valid-looking fragments, on every channel.
class FuzzAdversary final : public Adversary {
 public:
  explicit FuzzAdversary(std::uint32_t intensity) : intensity_(intensity) {}

  void act(AdversaryContext& ctx) override {
    for (NodeId from : ctx.faulty()) {
      for (std::uint32_t i = 0; i < intensity_; ++i) {
        const auto to = static_cast<NodeId>(ctx.rng().next_below(ctx.n()));
        const auto ch = static_cast<ChannelId>(
            ctx.rng().next_below(std::max<std::uint32_t>(ctx.channel_count(), 1)));
        ctx.send(from, to, ch, craft(ctx.rng()));
        if (ctx.rng().next_bernoulli(0.3)) {
          // Duplicate flood: same channel, same recipient, conflicting data.
          ctx.send(from, to, ch, craft(ctx.rng()));
          ctx.send(from, to, ch, craft(ctx.rng()));
        }
      }
    }
  }

 private:
  Bytes craft(Rng& rng) {
    ByteWriter w;
    switch (rng.next_below(10)) {
      case 0:  // empty payload
        break;
      case 1:  // single byte (valid-ish for tri-state channels)
        w.u8(static_cast<std::uint8_t>(rng.next_below(256)));
        break;
      case 2:  // hostile length prefix with no body
        w.u32(0xffffffffu);
        break;
      case 3: {  // an oversized u64 vector
        std::vector<std::uint64_t> v(rng.next_below(64));
        for (auto& x : v) x = rng.next_u64();
        w.u64_vec(v);
        break;
      }
      case 4:  // non-canonical field elements around the modulus
        w.u64_vec({PrimeField::kDefaultPrime,
                   PrimeField::kDefaultPrime + 1,
                   ~std::uint64_t{0}, 0});
        break;
      case 5: {  // random blob
        Bytes blob(rng.next_below(100));
        for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_below(256));
        w.bytes(blob);
        break;
      }
      case 6: {  // well-formed masked field vector, sentinels included
        std::vector<std::uint64_t> v(rng.next_below(20));
        for (auto& x : v) {
          x = rng.next_bernoulli(0.4) ? PrimeField::kDefaultPrime
                                      : rng.next_below(PrimeField::kDefaultPrime);
        }
        w.masked_u64_vec(v.data(), v.size(), PrimeField::kDefaultPrime, 61);
        break;
      }
      case 7: {  // masked-format garbage: random mask bytes, random tail
        const std::size_t mask_bytes = rng.next_below(4);
        for (std::size_t i = 0; i < mask_bytes; ++i) {
          w.u8(static_cast<std::uint8_t>(rng.next_below(256)));
        }
        const std::size_t tail = rng.next_below(24);
        for (std::size_t i = 0; i < tail; ++i) {
          w.u8(static_cast<std::uint8_t>(rng.next_below(256)));
        }
        break;
      }
      case 8: {  // bitmask with hostile padding bits
        const std::size_t nbytes = 1 + rng.next_below(3);
        for (std::size_t i = 0; i < nbytes; ++i) w.u8(0xff);
        break;
      }
      default:  // truncated multi-field encoding
        w.u8(1);
        w.u16(0xdead);
        break;
    }
    return std::move(w).take();
  }

  std::uint32_t intensity_;
};

enum class Stack { kClockSync, kCascade, kPipelinedKing, kDwShared };

EngineBundle build_stack(Stack which, std::uint32_t n, std::uint32_t f,
                         std::uint64_t seed, std::uint32_t fuzz_intensity) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  cfg.faults.network_faulty_until = 5;
  cfg.faults.phantoms_per_beat = 6;
  cfg.faults.corruptions[17] = {0};
  cfg.faults.corruptions[23] = {1};
  EngineBundle b;
  CoinSpec spec = fm_coin_spec();
  ProtocolFactory factory;
  switch (which) {
    case Stack::kClockSync:
      factory = [spec](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
        return std::make_unique<SsByzClockSync>(env, 12, spec, rng);
      };
      break;
    case Stack::kCascade:
      factory = [spec](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
        return std::make_unique<CascadeClock>(env, 2, spec, rng);
      };
      break;
    case Stack::kPipelinedKing:
      factory = [](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
        return std::make_unique<PipelinedBaClock>(
            env, 12, turpin_coan_spec(phase_king_spec()), rng);
      };
      break;
    case Stack::kDwShared:
      factory = [spec](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
        return std::make_unique<DolevWelchSharedCoin>(env, 12, spec, rng);
      };
      break;
  }
  b.engine = std::make_unique<Engine>(
      cfg, factory, std::make_unique<FuzzAdversary>(fuzz_intensity));
  return b;
}

struct FuzzParam {
  Stack stack;
  std::uint32_t n, f;
  const char* name;
};

class FuzzTest : public ::testing::TestWithParam<FuzzParam> {};

INSTANTIATE_TEST_SUITE_P(
    Stacks, FuzzTest,
    ::testing::Values(FuzzParam{Stack::kClockSync, 4, 1, "clocksync"},
                      FuzzParam{Stack::kClockSync, 7, 2, "clocksync7"},
                      FuzzParam{Stack::kCascade, 4, 1, "cascade"},
                      FuzzParam{Stack::kPipelinedKing, 4, 1, "king"},
                      FuzzParam{Stack::kPipelinedKing, 7, 2, "king7"},
                      FuzzParam{Stack::kDwShared, 4, 1, "dwshared"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(FuzzTest, NeverCrashesUnderGarbageStorm) {
  const auto& p = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto b = build_stack(p.stack, p.n, p.f, seed * 7919, /*intensity=*/12);
    // 120 beats of full-intensity garbage + phantoms + mid-run corruption.
    EXPECT_NO_THROW(b.engine->run_beats(120)) << "seed " << seed;
    // Clocks stay in range throughout.
    for (ClockValue c : b.engine->correct_clocks()) EXPECT_LT(c, 12u);
  }
}

TEST_P(FuzzTest, DeterministicUnderFuzz) {
  const auto& p = GetParam();
  auto trace = [&](std::uint64_t seed) {
    auto b = build_stack(p.stack, p.n, p.f, seed, 8);
    std::vector<ClockValue> t;
    for (int i = 0; i < 50; ++i) {
      b.engine->run_beat();
      for (auto c : b.engine->correct_clocks()) t.push_back(c);
    }
    return t;
  };
  EXPECT_EQ(trace(4242), trace(4242));
}

TEST_P(FuzzTest, ConvergesOnceGarbageMeetsItsBudget) {
  // The fuzzer IS a (dumb) Byzantine adversary within the f bound, so the
  // protocols must converge while it runs.
  const auto& p = GetParam();
  auto b = build_stack(p.stack, p.n, p.f, 31337, 8);
  b.engine->run_beats(30);  // ride out the scheduled corruption window
  ConvergenceConfig cc;
  cc.max_beats = 4000;
  EXPECT_TRUE(measure_convergence(*b.engine, cc).converged);
}

TEST(FuzzChecker, DecoderNeverCrashesOnMutatedTraces) {
  // Serialize a real traced run (corruptions, phantoms and fuzz traffic
  // included), then hammer the offline decoder with truncations, byte
  // flips, insertions and raw garbage. Every outcome must be a structured
  // accept-or-reject — never a crash, never UB.
  auto b = build_stack(Stack::kClockSync, 4, 1, 99, 4);
  std::ostringstream out;
  JsonlTraceSink sink(out);
  TraceMeta meta;
  meta.scenario = "fuzz";
  meta.seed = 99;
  meta.n = 4;
  meta.f = 1;
  meta.faulty = {3};
  meta.max_beats = 30;
  meta.confirm_window = 12;
  sink.begin_trace(meta);
  b.engine->set_trace(&sink);
  b.engine->run_beats(30);
  const std::string good = out.str();
  {
    std::istringstream in(good);
    EXPECT_TRUE(parse_trace(in).ok);
  }

  Rng rng(2024);
  for (int iter = 0; iter < 400; ++iter) {
    std::string s = good;
    switch (rng.next_below(4)) {
      case 0:  // truncate anywhere, mid-line included
        s.resize(rng.next_below(s.size() + 1));
        break;
      case 1:  // overwrite one byte
        if (!s.empty()) {
          s[rng.next_below(s.size())] =
              static_cast<char>(rng.next_below(256));
        }
        break;
      case 2:  // insert one byte
        s.insert(rng.next_below(s.size() + 1), 1,
                 static_cast<char>(rng.next_below(256)));
        break;
      default: {  // unstructured garbage
        s.clear();
        const std::size_t len = rng.next_below(2000);
        for (std::size_t i = 0; i < len; ++i) {
          s.push_back(static_cast<char>(rng.next_below(256)));
        }
        break;
      }
    }
    std::istringstream in(s);
    ParseResult r = parse_trace(in);
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty());
      continue;
    }
    // A mutation that still parses must also merge, check and hash
    // without incident (merge may legitimately reject it).
    std::vector<ParsedTrace> parts;
    parts.push_back(std::move(r.trace));
    MergeResult m = merge_traces(std::move(parts));
    if (!m.ok) {
      EXPECT_FALSE(m.error.empty());
      continue;
    }
    for (const ParsedTrace& t : m.traces) {
      (void)check_trace(t, CheckOptions{});
      EXPECT_EQ(trace_commitment(t).size(), 64u);
    }
  }
}

// Mutate a real checkpoint file through the resume loader: every outcome
// must be a structured accept (with the parsed prefix honoring the
// header's grid and shard invariants) or a structured reject — never a
// crash, never UB, never a silently wrong record (the CRC tears those
// off). Mirrors the kill -9 / bad-copy surface `--resume` reads.
TEST(FuzzCheckpoint, ResumeLoaderNeverCrashesOnMutatedCheckpoints) {
  CheckpointState st;
  st.fingerprint = std::string(64, 'a');
  st.shard = ShardSpec{1, 3};
  st.total_units = 40;
  for (std::uint64_t u = 1; u < 40; u += 3) {
    TrialOutcome o;
    o.converged = (u % 2) == 0;
    o.synced_at = u * 7;
    o.msgs_per_beat = 3.25 + static_cast<double>(u) * 0.1;
    if (u % 6 == 1) o.trace_commitment = std::string(64, 'b');
    st.done[u] = o;
  }
  const std::string good = encode_checkpoint(st);
  {
    const CheckpointLoad l = decode_checkpoint(good);
    ASSERT_TRUE(l.ok) << l.error;
    EXPECT_FALSE(l.torn);
    EXPECT_EQ(l.state.done.size(), st.done.size());
  }

  Rng rng(4096);
  for (int iter = 0; iter < 400; ++iter) {
    std::string s = good;
    switch (rng.next_below(4)) {
      case 0:  // truncate anywhere, mid-line included
        s.resize(rng.next_below(s.size() + 1));
        break;
      case 1:  // overwrite one byte
        if (!s.empty()) {
          s[rng.next_below(s.size())] =
              static_cast<char>(rng.next_below(256));
        }
        break;
      case 2:  // insert one byte
        s.insert(rng.next_below(s.size() + 1), 1,
                 static_cast<char>(rng.next_below(256)));
        break;
      default: {  // unstructured garbage
        s.clear();
        const std::size_t len = rng.next_below(2000);
        for (std::size_t i = 0; i < len; ++i) {
          s.push_back(static_cast<char>(rng.next_below(256)));
        }
        break;
      }
    }
    const CheckpointLoad l = decode_checkpoint(s);
    if (!l.ok) {
      EXPECT_FALSE(l.error.empty());
      continue;
    }
    if (l.torn) EXPECT_GT(l.discarded_records, 0u);
    // Whatever survived must still satisfy the header it came with.
    for (const auto& [u, o] : l.state.done) {
      EXPECT_LT(u, l.state.total_units);
      EXPECT_EQ(u % l.state.shard.count, l.state.shard.index);
      EXPECT_TRUE(o.trace_commitment.empty() ||
                  o.trace_commitment.size() == 64u);
    }
  }
}

// Same treatment for the ssbft-shard-v1 reader and the cross-file merge:
// one shard file is mutated, its intact sibling supplied alongside. The
// parser may reject; if it accepts, the merge must either refuse with a
// structured error or produce a result whose shape matches its header —
// silent corruption is the one forbidden outcome.
TEST(FuzzShard, ParserAndMergeNeverCrashOnMutatedReports) {
  ShardHeader h;
  h.pattern = "gallery/*";
  h.shard = ShardSpec{0, 2};
  h.fingerprint = std::string(64, 'c');
  h.total_units = 8;
  h.cli_seed = 7;
  h.cli_trials = 3;
  h.cells.push_back(ShardCellInfo{"cell-a", 3, 100});
  h.cells.push_back(ShardCellInfo{"cell-b", 5, 200});
  const auto shard_text = [&](std::uint64_t index) {
    ShardHeader mine = h;
    mine.shard.index = index;
    std::string text = encode_shard_header(mine);
    for (std::uint64_t u = index; u < h.total_units; u += 2) {
      ShardUnitRow row;
      row.unit = u;
      row.cell = u < 3 ? 0u : 1u;
      row.trial = u < 3 ? u : u - 3;
      row.outcome.converged = true;
      row.outcome.synced_at = 10 + u;
      row.outcome.msgs_per_beat = 0.5 + static_cast<double>(u) * 0.3;
      text += encode_shard_unit(row);
    }
    return text;
  };
  const std::string good = shard_text(0);
  const std::string sibling = shard_text(1);
  ShardFile sibling_file;
  {
    std::istringstream in(sibling);
    ShardParse p = parse_shard_file(in);
    ASSERT_TRUE(p.ok) << p.error;
    sibling_file = std::move(p.file);
  }

  Rng rng(8192);
  for (int iter = 0; iter < 400; ++iter) {
    std::string s = good;
    switch (rng.next_below(4)) {
      case 0:
        s.resize(rng.next_below(s.size() + 1));
        break;
      case 1:
        if (!s.empty()) {
          s[rng.next_below(s.size())] =
              static_cast<char>(rng.next_below(256));
        }
        break;
      case 2:
        s.insert(rng.next_below(s.size() + 1), 1,
                 static_cast<char>(rng.next_below(256)));
        break;
      default: {
        s.clear();
        const std::size_t len = rng.next_below(2000);
        for (std::size_t i = 0; i < len; ++i) {
          s.push_back(static_cast<char>(rng.next_below(256)));
        }
        break;
      }
    }
    std::istringstream in(s);
    ShardParse p = parse_shard_file(in);
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty());
      continue;
    }
    std::vector<ShardFile> files;
    files.push_back(std::move(p.file));
    files.push_back(sibling_file);
    const ShardMerge m = merge_shard_files(std::move(files));
    if (!m.ok) {
      EXPECT_FALSE(m.error.empty());
      continue;
    }
    ASSERT_EQ(m.per_cell.size(), m.header.cells.size());
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < m.per_cell.size(); ++c) {
      EXPECT_EQ(m.per_cell[c].size(), m.header.cells[c].trials);
      total += m.per_cell[c].size();
    }
    EXPECT_EQ(total, m.header.total_units);
    if (m.have_commitments) {
      EXPECT_EQ(m.commitments.size(), m.header.total_units);
    }
  }
}

// ---------------------------------------------------------------------------
// Chaos sampler fuzz: the campaign generator must hold its contract over
// random corners of its input space — every draw validate()-clean against
// its world, every re-draw byte-identical (same canonical encoding, same
// digest), and every delta-debugging candidate still valid.

TEST(FuzzChaos, FourHundredDrawsValidateCleanAndRedrawByteIdentical) {
  Rng rng(777);
  for (int iter = 0; iter < 400; ++iter) {
    const std::uint64_t campaign = rng.next_u64();
    const std::uint64_t index = rng.next_below(1u << 16);
    const auto n = static_cast<std::uint32_t>(4 + rng.next_below(13));
    const auto actual = static_cast<std::uint32_t>(
        1 + rng.next_below(std::max<std::uint32_t>((n - 1) / 3, 1)));
    const std::uint64_t max_beats = 100 + rng.next_below(10000);

    const FaultPlanGenerator gen(campaign);
    const ChaosUnit unit = gen.make_unit(index, "fuzz/unit", n, actual,
                                         max_beats);
    EXPECT_NO_THROW(unit.plan.validate(n)) << "iter " << iter;
    EXPECT_EQ(unit.faulty.size(), actual);
    for (NodeId id : unit.faulty) EXPECT_LT(id, n);
    EXPECT_EQ(unit.campaign_seed, campaign);
    EXPECT_EQ(unit.index, index);

    // A fresh generator re-drawing the same (seed, index) must reproduce
    // the unit byte for byte — the identity every repro line relies on.
    const ChaosUnit redraw = FaultPlanGenerator(campaign).make_unit(
        index, "fuzz/unit", n, actual, max_beats);
    EXPECT_EQ(encode_chaos_unit(redraw), encode_chaos_unit(unit));
    EXPECT_EQ(chaos_unit_digest(redraw), chaos_unit_digest(unit));
    EXPECT_EQ(chaos_unit_digest(unit).size(), 64u);
  }
}

TEST(FuzzChaos, EveryMinimizerCandidateStaysValid) {
  Rng rng(778);
  for (int iter = 0; iter < 50; ++iter) {
    const std::uint64_t campaign = rng.next_u64();
    const auto n = static_cast<std::uint32_t>(4 + rng.next_below(13));
    const auto actual = static_cast<std::uint32_t>(
        1 + rng.next_below(std::max<std::uint32_t>((n - 1) / 3, 1)));
    const ChaosUnit unit = FaultPlanGenerator(campaign).make_unit(
        rng.next_below(1u << 16), "fuzz/unit", n, actual,
        100 + rng.next_below(10000));
    for (const FaultPlan& cand : chaos_reductions(unit.plan)) {
      EXPECT_NO_THROW(cand.validate(n)) << "iter " << iter;
    }
  }
}

TEST(FuzzCodec, ProtocolsIgnoreSelfTargetedGarbageChannels) {
  // Garbage on channels the protocol does not use must be invisible:
  // run two engines, one whose adversary also sprays far-off channel ids
  // (dropped by the inbox), and compare correct-node traces.
  auto run = [](bool spray_unknown) {
    EngineConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.faulty = {3};
    cfg.seed = 5;
    CoinSpec spec = fm_coin_spec();
    auto factory = [spec](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByzClockSync>(env, 8, spec, rng);
    };
    class UnknownChannelAdversary final : public Adversary {
     public:
      explicit UnknownChannelAdversary(bool spray) : spray_(spray) {}
      void act(AdversaryContext& ctx) override {
        if (!spray_) return;
        for (NodeId from : ctx.faulty()) {
          // Channel ids beyond the stack's layout: must be dropped.
          ctx.broadcast(from, static_cast<ChannelId>(60000), {1, 2, 3});
        }
      }
      bool spray_;
    };
    Engine eng(cfg, factory,
               std::make_unique<UnknownChannelAdversary>(spray_unknown));
    std::vector<ClockValue> t;
    for (int i = 0; i < 40; ++i) {
      eng.run_beat();
      for (auto c : eng.correct_clocks()) t.push_back(c);
    }
    return t;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace ssbft
