#include "support/bytes.h"

#include <cstring>

#include "support/bitpack61.h"
#include "support/check.h"

namespace ssbft {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64_vec(const std::vector<std::uint64_t>& v) {
  u64_vec(v.data(), v.size());
}

void ByteWriter::u64_vec(const std::uint64_t* data, std::size_t len) {
  u32(static_cast<std::uint32_t>(len));
  for (std::size_t i = 0; i < len; ++i) u64(data[i]);
}

void ByteWriter::bytes(const Bytes& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void ByteWriter::masked_u64_vec(const std::uint64_t* data, std::size_t len,
                                std::uint64_t absent, unsigned value_bits) {
  SSBFT_REQUIRE_MSG(value_bits >= 1 && value_bits <= 64,
                    "masked_u64_vec: value_bits out of range");
  const std::uint64_t max_value =
      value_bits == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << value_bits) - 1;
  const std::size_t mask_bytes = (len + 7) / 8;
  std::size_t present = 0;
  for (std::size_t i = 0; i < len; ++i) present += data[i] != absent;
  const std::size_t packed_bytes = (present * value_bits + 7) / 8;
  // One zero-filling resize sizes mask and packed region exactly; the
  // write below fills in mask bits and whole packed bytes (padding bits in
  // the last byte stay zero, as the decoder requires).
  const std::size_t start = buf_.size();
  buf_.resize(start + mask_bytes + packed_bytes, 0);
  std::uint8_t* const mask = buf_.data() + start;
  std::uint8_t* out = mask + mask_bytes;
#if !defined(SSBFT_SIMD_DISABLED)
  // Bulk path for the default field width: 8 present values pack to
  // exactly 61 byte-aligned bytes, so full blocks bypass the bit window
  // entirely (bitpack61 emits the identical LSB-first layout) and only the
  // sub-block tail streams through it. -DSSBFT_SIMD=off keeps the window
  // below as the reference for the whole vector.
  if (value_bits == bitpack61::kValueBits &&
      present >= bitpack61::kBlockValues) {
    std::uint64_t stage[bitpack61::kBlockValues];
    std::size_t staged = 0;
    for (std::size_t i = 0; i < len; ++i) {
      if (data[i] == absent) continue;
      SSBFT_REQUIRE_MSG(data[i] <= max_value,
                        "masked_u64_vec: value wider than value_bits");
      mask[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
      stage[staged++] = data[i];
      if (staged == bitpack61::kBlockValues) {
        bitpack61::pack_block(stage, out);
        out += bitpack61::kBlockBytes;
        staged = 0;
      }
    }
    unsigned __int128 tail_acc = 0;
    unsigned tail_bits = 0;
    for (std::size_t j = 0; j < staged; ++j) {
      tail_acc |= static_cast<unsigned __int128>(stage[j]) << tail_bits;
      tail_bits += value_bits;
      if (tail_bits >= 64) {
        const std::uint64_t w = static_cast<std::uint64_t>(tail_acc);
        std::memcpy(out, &w, 8);
        out += 8;
        tail_acc >>= 64;
        tail_bits -= 64;
      }
    }
    while (tail_bits > 0) {
      *out++ = static_cast<std::uint8_t>(tail_acc);
      tail_acc >>= 8;
      tail_bits = tail_bits >= 8 ? tail_bits - 8 : 0;
    }
    return;
  }
#endif
  // Present values stream LSB-first through a 128-bit window, flushed in
  // 8-byte stores; the flush invariant (flushed*8 + acc_bits = bits
  // produced <= present*value_bits) keeps every store in bounds.
  unsigned __int128 acc = 0;
  unsigned acc_bits = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (data[i] == absent) continue;
    SSBFT_REQUIRE_MSG(data[i] <= max_value,
                      "masked_u64_vec: value wider than value_bits");
    mask[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
    acc |= static_cast<unsigned __int128>(data[i]) << acc_bits;
    acc_bits += value_bits;
    if (acc_bits >= 64) {
      const std::uint64_t w = static_cast<std::uint64_t>(acc);
      std::memcpy(out, &w, 8);
      out += 8;
      acc >>= 64;
      acc_bits -= 64;
    }
  }
  while (acc_bits > 0) {
    *out++ = static_cast<std::uint8_t>(acc);
    acc >>= 8;
    acc_bits = acc_bits >= 8 ? acc_bits - 8 : 0;
  }
}

void ByteWriter::bits(const std::uint64_t* words, std::size_t nbits) {
  for (std::size_t base = 0; base < nbits; base += 8) {
    buf_.push_back(
        static_cast<std::uint8_t>(words[base / 64] >> (base % 64)));
  }
}

bool ByteReader::take(std::size_t len, const std::uint8_t** out) {
  if (!ok_ || buf_->size() - pos_ < len) {
    ok_ = false;
    return false;
  }
  *out = buf_->data() + pos_;
  pos_ += len;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return 0;
  return p[0];
}

std::uint16_t ByteReader::u16() {
  const std::uint8_t* p = nullptr;
  if (!take(2, &p)) return 0;
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::vector<std::uint64_t> ByteReader::u64_vec(std::size_t max_elems) {
  std::uint32_t n = u32();
  if (!ok_ || n > max_elems || remaining() < std::size_t{n} * 8) {
    ok_ = false;
    return {};
  }
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = u64();
  return v;
}

std::size_t ByteReader::u64_vec_into(std::uint64_t* dst,
                                     std::size_t max_elems) {
  std::uint32_t n = u32();
  if (!ok_ || n > max_elems || remaining() < std::size_t{n} * 8) {
    ok_ = false;
    return 0;
  }
  for (std::uint32_t i = 0; i < n; ++i) dst[i] = u64();
  return n;
}

bool ByteReader::masked_u64_vec_into(std::uint64_t* dst, std::size_t len,
                                     std::uint64_t absent,
                                     unsigned value_bits) {
  if (value_bits < 1 || value_bits > 64) {
    ok_ = false;
    return false;
  }
  const std::size_t mask_bytes = (len + 7) / 8;
  const std::uint8_t* mask = nullptr;
  if (!take(mask_bytes, &mask)) return false;
  // Count the present entries; nonzero mask bits >= len are non-canonical.
  std::size_t present = 0;
  for (std::size_t i = 0; i < mask_bytes; ++i) {
    std::uint8_t m = mask[i];
    if (i + 1 == mask_bytes && len % 8 != 0) {
      if ((m >> (len % 8)) != 0) {
        ok_ = false;
        return false;
      }
    }
    for (; m != 0; m &= static_cast<std::uint8_t>(m - 1)) ++present;
  }
  const std::size_t packed_bits = present * value_bits;
  const std::size_t packed_bytes = (packed_bits + 7) / 8;
  const std::uint8_t* packed = nullptr;
  if (!take(packed_bytes, &packed)) return false;
  // Padding bits after the last value must be zero (canonical encoding;
  // also what makes encode(decode(x)) the identity on the wire).
  if (packed_bits % 8 != 0 &&
      (packed[packed_bytes - 1] >> (packed_bits % 8)) != 0) {
    ok_ = false;
    return false;
  }
  const std::uint64_t value_mask =
      value_bits == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << value_bits) - 1;
#if !defined(SSBFT_SIMD_DISABLED)
  // Bulk path mirroring the writer: every full run of 8 present values is
  // a byte-aligned 61-byte block (all failure checks above are shared, so
  // the accept/reject behavior is identical to the window path below).
  if (value_bits == bitpack61::kValueBits &&
      present >= bitpack61::kBlockValues) {
    std::uint64_t stage[bitpack61::kBlockValues];
    std::size_t avail = 0, next = 0, rem = present, pos = 0;
    for (std::size_t i = 0; i < len; ++i) {
      if ((mask[i / 8] >> (i % 8) & 1u) == 0) {
        dst[i] = absent;
        continue;
      }
      if (next == avail) {
        if (rem >= bitpack61::kBlockValues) {
          bitpack61::unpack_block(packed + pos, stage);
          pos += bitpack61::kBlockBytes;
          avail = bitpack61::kBlockValues;
        } else {
          // Sub-block tail: the stream is byte-aligned here; drain the
          // remaining rem values through the reference window.
          unsigned __int128 acc = 0;
          unsigned acc_bits = 0;
          for (std::size_t j = 0; j < rem; ++j) {
            while (acc_bits < value_bits) {
              if (acc_bits <= 64 && pos + 8 <= packed_bytes) {
                std::uint64_t w;
                std::memcpy(&w, packed + pos, 8);
                pos += 8;
                acc |= static_cast<unsigned __int128>(w) << acc_bits;
                acc_bits += 64;
              } else {
                acc |= static_cast<unsigned __int128>(packed[pos]) << acc_bits;
                ++pos;
                acc_bits += 8;
              }
            }
            stage[j] = static_cast<std::uint64_t>(acc) & value_mask;
            acc >>= value_bits;
            acc_bits -= value_bits;
          }
          avail = rem;
        }
        next = 0;
      }
      dst[i] = stage[next++];
      --rem;
    }
    return true;
  }
#endif
  // Values stream out of a 128-bit window refilled with 8-byte loads
  // (falling back to single bytes near the end of the packed region).
  unsigned __int128 acc = 0;
  unsigned acc_bits = 0;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if ((mask[i / 8] >> (i % 8) & 1u) == 0) {
      dst[i] = absent;
      continue;
    }
    while (acc_bits < value_bits) {
      if (acc_bits <= 64 && pos + 8 <= packed_bytes) {
        std::uint64_t w;
        std::memcpy(&w, packed + pos, 8);
        pos += 8;
        acc |= static_cast<unsigned __int128>(w) << acc_bits;
        acc_bits += 64;
      } else {
        acc |= static_cast<unsigned __int128>(packed[pos]) << acc_bits;
        ++pos;
        acc_bits += 8;
      }
    }
    dst[i] = static_cast<std::uint64_t>(acc) & value_mask;
    acc >>= value_bits;
    acc_bits -= value_bits;
  }
  return true;
}

bool ByteReader::bits_into(std::uint64_t* words, std::size_t nbits) {
  const std::size_t nbytes = (nbits + 7) / 8;
  const std::uint8_t* p = nullptr;
  if (!take(nbytes, &p)) return false;
  if (nbits % 8 != 0 && (p[nbytes - 1] >> (nbits % 8)) != 0) {
    ok_ = false;
    return false;
  }
  for (std::size_t w = 0; w * 64 < nbits; ++w) words[w] = 0;
  for (std::size_t base = 0; base < nbits; base += 8) {
    words[base / 64] |=
        static_cast<std::uint64_t>(p[base / 8]) << (base % 64);
  }
  return true;
}

Bytes ByteReader::bytes(std::size_t max_len) {
  std::uint32_t n = u32();
  if (!ok_ || n > max_len || remaining() < n) {
    ok_ = false;
    return {};
  }
  const std::uint8_t* p = nullptr;
  take(n, &p);
  return Bytes(p, p + n);
}

std::string to_hex(const Bytes& b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(b.size() * 2);
  for (std::uint8_t c : b) {
    s.push_back(digits[c >> 4]);
    s.push_back(digits[c & 0xf]);
  }
  return s;
}

}  // namespace ssbft
