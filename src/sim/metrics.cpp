#include "sim/metrics.h"

#include "support/check.h"

namespace ssbft {

Metrics::Metrics(std::size_t history_limit) : limit_(history_limit) {
  if (limit_ > 0) history_.reserve(limit_);
}

void Metrics::begin_beat() {
  ++beats_;
  if (limit_ == 0) {
    history_.emplace_back();
  } else if (history_.size() < limit_) {
    history_.emplace_back();
  } else {
    history_[static_cast<std::size_t>((beats_ - 1) % limit_)] = BeatTraffic{};
  }
}

BeatTraffic& Metrics::current() {
  SSBFT_REQUIRE_MSG(beats_ > 0, "Metrics::count_* before begin_beat()");
  if (limit_ == 0) return history_.back();
  return history_[static_cast<std::size_t>((beats_ - 1) % limit_)];
}

void Metrics::count_correct(std::size_t payload_bytes) {
  BeatTraffic& cur = current();
  ++cur.correct_messages;
  cur.correct_bytes += payload_bytes;
  ++total_.correct_messages;
  total_.correct_bytes += payload_bytes;
}

void Metrics::count_adversary(std::size_t payload_bytes) {
  BeatTraffic& cur = current();
  ++cur.adversary_messages;
  cur.adversary_bytes += payload_bytes;
  ++total_.adversary_messages;
  total_.adversary_bytes += payload_bytes;
}

void Metrics::count_phantom() {
  ++current().phantom_messages;
  ++total_.phantom_messages;
}

void Metrics::count_dropped() {
  ++current().dropped_messages;
  ++total_.dropped_messages;
}

void Metrics::count_eclipsed() {
  ++current().eclipsed_messages;
  ++total_.eclipsed_messages;
}

void Metrics::count_delayed() {
  ++current().delayed_messages;
  ++total_.delayed_messages;
}

void Metrics::count_reordered() {
  ++current().reordered_messages;
  ++total_.reordered_messages;
}

void Metrics::count_correct_bulk(std::uint64_t messages, std::uint64_t bytes) {
  BeatTraffic& cur = current();
  cur.correct_messages += messages;
  cur.correct_bytes += bytes;
  total_.correct_messages += messages;
  total_.correct_bytes += bytes;
}

void Metrics::count_adversary_bulk(std::uint64_t messages,
                                   std::uint64_t bytes) {
  BeatTraffic& cur = current();
  cur.adversary_messages += messages;
  cur.adversary_bytes += bytes;
  total_.adversary_messages += messages;
  total_.adversary_bytes += bytes;
}

const std::vector<BeatTraffic>& Metrics::history() const {
  SSBFT_REQUIRE_MSG(limit_ == 0,
                    "full history() is unavailable with a bounded ring; use "
                    "retained_count()/retained()");
  return history_;
}

std::size_t Metrics::retained_count() const { return history_.size(); }

const BeatTraffic& Metrics::retained(std::size_t i) const {
  SSBFT_REQUIRE(i < history_.size());
  if (limit_ == 0 || history_.size() < limit_) return history_[i];
  // Ring is full: index 0 is the oldest retained beat.
  return history_[static_cast<std::size_t>((beats_ + i) % limit_)];
}

double Metrics::mean_correct_messages_per_beat() const {
  if (beats_ == 0) return 0.0;
  return static_cast<double>(total_.correct_messages) /
         static_cast<double>(beats_);
}

double Metrics::mean_correct_bytes_per_beat() const {
  if (beats_ == 0) return 0.0;
  return static_cast<double>(total_.correct_bytes) /
         static_cast<double>(beats_);
}

}  // namespace ssbft
