#include "core/clock_sync.h"

#include <algorithm>

#include "sim/trace.h"
#include "support/check.h"

namespace ssbft {

namespace {

constexpr std::uint8_t kPropBottom = 0;
constexpr std::uint8_t kPropValue = 1;

}  // namespace

SsByzClockSync::SsByzClockSync(const ProtocolEnv& env, ClockValue k,
                               const CoinSpec& coin, Rng rng, ChannelId base,
                               CoinPipelineMode mode)
    : env_(env),
      k_(k),
      ch_full_(base),
      ch_prop_(static_cast<ChannelId>(base + 1)),
      ch_bit_(static_cast<ChannelId>(base + 2)),
      channels_end_(base + channels_needed(coin, mode)) {
  value_counts_.reserve(env.n);
  SSBFT_REQUIRE_MSG(k >= 1, "k-Clock needs k >= 1");
  const auto a_base = static_cast<ChannelId>(base + 3);
  a_ = std::make_unique<SsByz4Clock>(env, coin, a_base, rng.split("four"),
                                     mode);
  coin_base_ =
      static_cast<ChannelId>(a_base + SsByz4Clock::channels_needed(coin, mode));
  coin_ = coin.make(env, coin_base_, rng.split("phase3-coin"));
  SSBFT_CHECK(coin_ != nullptr);
}

void SsByzClockSync::trace_state(TraceEmitter& em) const {
  em.phase(ch_full_, phase_);
  // The phase-3 coin is consumed every beat (receive_phase draws it
  // unconditionally), so its latched bit is always fresh.
  em.coin(coin_base_, coin_->last_output());
  a_->trace_state(em);
}

void SsByzClockSync::send_phase(Outbox& out) {
  // Line 3's "clock(A) at the beginning of the beat".
  phase_ = a_->clock();
  // Line 1: a beat of A (send half), plus our own coin stream.
  a_->sub_send(out);
  coin_->send_phase(out);
  // Line 2: the every-beat increment.
  full_clock_ = (full_clock_ + 1) % k_;

  switch (phase_) {
    case 0: {  // Block (a): broadcast the full clock.
      ByteWriter& w = out.writer();
      w.u64(full_clock_);
      out.broadcast(ch_full_, w.data());
      break;
    }
    case 1: {  // Block (b): propose what had n-f support in the previous beat.
      ByteWriter& w = out.writer();
      if (strong_value_) {
        w.u8(kPropValue);
        w.u64(*strong_value_);
      } else {
        w.u8(kPropBottom);
        w.u64(0);
      }
      out.broadcast(ch_prop_, w.data());
      break;
    }
    case 2: {  // Block (c): broadcast whether save had n-f support.
      ByteWriter& w = out.writer();
      w.u8(bit_);
      out.broadcast(ch_bit_, w.data());
      break;
    }
    default:  // Block (d) sends nothing.
      break;
  }
}

void SsByzClockSync::receive_phase(const Inbox& in) {
  // The coin bit becomes known only now, after all beat-r messages are
  // committed (same commitment argument as Remark 3.1).
  const bool rand = coin_->receive_phase(in);
  a_->sub_receive(in);
  switch (phase_) {
    case 0: recv_phase0(in); break;
    case 1: recv_phase1(in); break;
    case 2: recv_phase2(in); break;
    default: recv_phase3(rand); break;
  }
}

void SsByzClockSync::tally(ClockValue v) {
  for (auto& [value, count] : value_counts_) {
    if (value == v) {
      ++count;
      return;
    }
  }
  value_counts_.emplace_back(v, 1);
}

// End of block (a)'s beat: remember the value (if any) that n-f nodes sent.
void SsByzClockSync::recv_phase0(const Inbox& in) {
  value_counts_.clear();
  for (const Bytes* payload : in.first_per_sender(ch_full_)) {
    if (payload == nullptr) continue;
    ByteReader r(*payload);
    const std::uint64_t v = r.u64();
    if (!r.at_end() || v >= k_) continue;  // out-of-range: Byzantine garbage
    tally(v);
  }
  strong_value_.reset();
  // Smallest qualifying value, matching the old ascending-map scan (at
  // most one value can qualify anyway: 2(n-f) > n for f < n/3).
  for (const auto& [v, c] : value_counts_) {
    if (c < env_.n - env_.f) continue;
    if (!strong_value_ || v < *strong_value_) strong_value_ = v;
  }
}

// End of block (b)'s beat: save := majority non-? proposal, bit := whether
// it had n-f support, save := 0 when everything was ?.
void SsByzClockSync::recv_phase1(const Inbox& in) {
  value_counts_.clear();
  for (const Bytes* payload : in.first_per_sender(ch_prop_)) {
    if (payload == nullptr) continue;
    ByteReader r(*payload);
    const std::uint8_t tag = r.u8();
    const std::uint64_t v = r.u64();
    if (!r.at_end() || tag > kPropValue) continue;
    if (tag == kPropBottom) continue;  // "?" proposals carry no value
    if (v >= k_) continue;
    tally(v);
  }
  // Highest count; ties break toward the smallest value, matching the old
  // ascending-map scan.
  ClockValue best = 0;
  std::uint32_t best_count = 0;
  for (const auto& [v, c] : value_counts_) {
    if (c > best_count || (c == best_count && best_count > 0 && v < best)) {
      best = v;
      best_count = c;
    }
  }
  bit_ = best_count >= env_.n - env_.f ? 1 : 0;
  save_ = best_count > 0 ? best : 0;  // "if save = ? set save := 0"
}

// End of block (c)'s beat: tally the support bits.
void SsByzClockSync::recv_phase2(const Inbox& in) {
  ones_count_ = 0;
  zeros_count_ = 0;
  for (const Bytes* payload : in.first_per_sender(ch_bit_)) {
    if (payload == nullptr) continue;
    ByteReader r(*payload);
    const std::uint8_t b = r.u8();
    if (!r.at_end() || b > 1) continue;
    if (b == 1) ++ones_count_; else ++zeros_count_;
  }
}

// Block (d): adopt save+3, or reset to 0, deterministically when n-f bits
// agree and by the common coin otherwise. `save` was fixed in the previous
// beat while rand is drawn this beat, so the two are independent — the
// Lemma 8 gamble.
void SsByzClockSync::recv_phase3(bool rand) {
  const ClockValue adopted = (save_ + 3) % k_;
  if (ones_count_ >= env_.n - env_.f) {
    full_clock_ = adopted;
  } else if (zeros_count_ >= env_.n - env_.f) {
    full_clock_ = 0;
  } else if (rand) {
    full_clock_ = adopted;
  } else {
    full_clock_ = 0;
  }
}

void SsByzClockSync::randomize_state(Rng& rng) {
  a_->randomize_state(rng);
  coin_->randomize_state(rng);
  full_clock_ = rng.next_below(k_);
  phase_ = rng.next_below(4);
  if (rng.next_bool()) {
    strong_value_ = rng.next_below(k_);
  } else {
    strong_value_.reset();
  }
  save_ = rng.next_below(k_);
  bit_ = static_cast<std::uint8_t>(rng.next_below(2));
  ones_count_ = static_cast<std::uint32_t>(rng.next_below(env_.n + 1));
  zeros_count_ = static_cast<std::uint32_t>(rng.next_below(env_.n + 1));
}

}  // namespace ssbft
