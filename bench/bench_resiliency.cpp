// Resiliency-boundary experiment (Table 1's resiliency column): the
// f < n/4 vs f < n/3 divide.
//
// For each family we hold n = 13 and sweep the *actual* number of
// Byzantine nodes across the theoretical boundaries, keeping each
// protocol's assumed bound at its legal maximum. Phase-queen machinery
// ([15] class) is certified only for f < n/4 = 3; phase-king and
// ss-Byz-Clock-Sync tolerate f < n/3 = 4; nothing survives f > n/3
// (quorum intersection fails: n - f <= 2f). We report the fraction of
// trials that converge AND hold closure.
#include <iostream>

#include "bench_common.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

double survival(const EngineBuilder& builder, std::uint64_t trials,
                std::uint64_t max_beats) {
  RunnerConfig rc = runner_config(trials, 77, max_beats);
  rc.convergence.confirm_window = 24;
  auto s = run_trials(builder, rc);
  return s.convergence_rate();
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  const std::uint32_t n = 13;
  std::cout << "=== Resiliency boundaries at n = " << n
            << " (skew adversary, " << trials_or(10) << " trials/cell) ===\n"
            << "floor((n-1)/4) = 3, floor((n-1)/3) = 4, n/3 ceil = 5\n\n";

  AsciiTable t({"actual faulty", "queen [15] (f<n/4)", "king [7] (f<n/3)",
                "ss-Byz-Clock-Sync (f<n/3)"});

  for (std::uint32_t actual : {0u, 2u, 3u, 4u, 5u}) {
    World wq;  // queen assumes its own legal max f = 3
    wq.n = n;
    wq.f = 3;
    wq.actual = actual;
    wq.k = 16;
    wq.attack = Attack::kSkew;

    World wk = wq;  // king and the paper assume f = 4
    wk.f = 4;

    const double q = survival(build_pipelined(wq, /*king=*/false), 10, 3000);
    const double k = survival(build_pipelined(wk, /*king=*/true), 10, 3000);
    const double s = survival(build_clock_sync(wk), 10, 8000);
    t.add_row({std::to_string(actual), fmt_double(q, 2), fmt_double(k, 2),
               fmt_double(s, 2)});
  }

  t.print(std::cout);
  std::cout << "\nexpected shape: all columns 1.00 up to their bound; the "
               "queen column may degrade beyond f = 3; every column "
               "collapses at f = 5 > n/3 (no protocol can survive — the "
               "f < n/3 bound is optimal, which is the paper's resiliency "
               "claim).\n";
  std::cout << "\nCSV follows:\n";
  t.print_csv(std::cout);
  return 0;
}
