#include "sim/trace.h"

#include <fstream>
#include <ostream>

#include "support/check.h"

namespace ssbft {

void TraceBuffer::bind(TraceSink* sink) {
  sink_ = sink;
  ring_.clear();
  if (sink_ != nullptr) ring_.reserve(kCapacity);
}

void TraceBuffer::flush() {
  if (ring_.empty()) return;
  SSBFT_CHECK(sink_ != nullptr);
  sink_->write(ring_.data(), ring_.size());
  ring_.clear();
}

namespace {

// Minimal JSON string escaping; scenario names are plain but the schema
// must stay well-formed for any metadata. Local copy: the sim layer must
// not depend on the harness report layer.
void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[(c >> 4) & 0xf]);
          out.push_back(kHex[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(std::make_unique<std::ofstream>(path)), out_(file_.get()) {}

JsonlTraceSink::~JsonlTraceSink() = default;

bool JsonlTraceSink::ok() const { return out_ != nullptr && out_->good(); }

void JsonlTraceSink::begin_trace(const TraceMeta& meta) {
  std::string line = "{\"type\":\"header\",\"version\":1,\"scenario\":";
  append_json_string(line, meta.scenario);
  line += ",\"trial\":" + std::to_string(meta.trial);
  line += ",\"seed\":" + std::to_string(meta.seed);
  line += ",\"n\":" + std::to_string(meta.n);
  line += ",\"f\":" + std::to_string(meta.f);
  line += ",\"faulty\":[";
  for (std::size_t i = 0; i < meta.faulty.size(); ++i) {
    if (i != 0) line.push_back(',');
    line += std::to_string(meta.faulty[i]);
  }
  line += "],\"max_beats\":" + std::to_string(meta.max_beats);
  line += ",\"confirm_window\":" + std::to_string(meta.confirm_window);
  line += "}\n";
  *out_ << line;
}

void JsonlTraceSink::write(const TraceRecord* records, std::size_t count) {
  std::string line;
  for (std::size_t i = 0; i < count; ++i) {
    const TraceRecord& r = records[i];
    line.clear();
    const std::string beat = std::to_string(r.beat);
    switch (r.event) {
      case TraceEvent::kBeat:
        line = "{\"type\":\"beat\",\"beat\":" + beat +
               ",\"cm\":" + std::to_string(r.a) +
               ",\"cb\":" + std::to_string(r.b) +
               ",\"am\":" + std::to_string(r.c) +
               ",\"ab\":" + std::to_string(r.d) + "}";
        break;
      case TraceEvent::kNet:
        line = "{\"type\":\"net\",\"beat\":" + beat +
               ",\"dropped\":" + std::to_string(r.a) +
               ",\"phantoms\":" + std::to_string(r.b) + "}";
        break;
      case TraceEvent::kProbe:
        line = "{\"type\":\"probe\",\"beat\":" + beat +
               ",\"eclipsed\":" + std::to_string(r.a) +
               ",\"delayed\":" + std::to_string(r.b) +
               ",\"reordered\":" + std::to_string(r.c) + "}";
        break;
      case TraceEvent::kClock:
        line = "{\"type\":\"clock\",\"beat\":" + beat +
               ",\"node\":" + std::to_string(r.node) +
               ",\"clock\":" + std::to_string(r.a) +
               ",\"k\":" + std::to_string(r.b) + "}";
        break;
      case TraceEvent::kPhase:
        line = "{\"type\":\"phase\",\"beat\":" + beat +
               ",\"node\":" + std::to_string(r.node) +
               ",\"stream\":" + std::to_string(r.stream) +
               ",\"value\":" + std::to_string(r.a) + "}";
        break;
      case TraceEvent::kCoin:
        line = "{\"type\":\"coin\",\"beat\":" + beat +
               ",\"node\":" + std::to_string(r.node) +
               ",\"stream\":" + std::to_string(r.stream) +
               ",\"bit\":" + std::to_string(r.a) + "}";
        break;
      case TraceEvent::kCorrupt:
        line = "{\"type\":\"corrupt\",\"beat\":" + beat +
               ",\"node\":" + std::to_string(r.node) + "}";
        break;
    }
    line.push_back('\n');
    *out_ << line;
  }
}

}  // namespace ssbft
