// End-to-end integration: the full ss-Byz-Clock-Sync stack on the
// message-level FM coin, under combined fault loads (Byzantine + transient
// + network), plus cross-cutting properties (determinism, harness
// behavior, Observation 3.1).
#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "core/clock_sync.h"
#include "harness/convergence.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "support/check.h"

#include <map>
#include <sstream>

namespace ssbft {
namespace {

EngineBundle full_stack(std::uint32_t n, std::uint32_t f, ClockValue k,
                        std::uint64_t seed, std::unique_ptr<Adversary> adv,
                        FaultPlan faults = {}) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  cfg.faults = std::move(faults);
  CoinSpec spec = fm_coin_spec();
  auto factory = [spec, k](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, k, spec, rng);
  };
  EngineBundle b;
  b.engine = std::make_unique<Engine>(cfg, factory, std::move(adv));
  return b;
}

TEST(Integration, FullStackUnderClockSkewAttack) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto b = full_stack(4, 1, 64, seed * 601, make_clock_skew_adversary(64, 0));
    ConvergenceConfig cc;
    cc.max_beats = 3000;
    EXPECT_TRUE(measure_convergence(*b.engine, cc).converged) << seed;
  }
}

TEST(Integration, FullStackSevenNodes) {
  auto b = full_stack(7, 2, 128, 3, make_clock_skew_adversary(128, 0));
  ConvergenceConfig cc;
  cc.max_beats = 3000;
  EXPECT_TRUE(measure_convergence(*b.engine, cc).converged);
}

TEST(Integration, EverythingAtOnce) {
  // Byzantine skew attack + phantom-laden lossy network prefix + scheduled
  // transient corruption of two correct nodes: the union of the paper's
  // fault model. Must still converge and stay closed.
  FaultPlan faults;
  faults.network_faulty_until = 12;
  faults.phantoms_per_beat = 8;
  faults.faulty_drop_prob = 0.2;
  faults.corruptions[50] = {0, 1};
  auto b = full_stack(4, 1, 32, 7, make_clock_skew_adversary(32, 0),
                      std::move(faults));
  b.engine->run_beats(60);  // ride through all scheduled chaos
  ConvergenceConfig cc;
  cc.max_beats = 3000;
  const auto res = measure_convergence(*b.engine, cc);
  ASSERT_TRUE(res.converged);
  auto prev = b.engine->correct_clocks().front();
  for (int i = 0; i < 40; ++i) {
    b.engine->run_beat();
    ASSERT_TRUE(clocks_agree(*b.engine));
    const auto cur = b.engine->correct_clocks().front();
    EXPECT_EQ(cur, (prev + 1) % 32);
    prev = cur;
  }
}

TEST(Integration, WholeWorldIsDeterministic) {
  auto trace = [] {
    auto b = full_stack(4, 1, 16, 99, make_clock_skew_adversary(16, 0));
    std::vector<ClockValue> clocks;
    for (int i = 0; i < 80; ++i) {
      b.engine->run_beat();
      for (auto c : b.engine->correct_clocks()) clocks.push_back(c);
    }
    clocks.push_back(
        static_cast<ClockValue>(b.engine->metrics().total().correct_messages));
    return clocks;
  };
  EXPECT_EQ(trace(), trace());
}

TEST(Integration, RunnerAggregatesHonestly) {
  RunnerConfig rc;
  rc.trials = 6;
  rc.base_seed = 42;
  rc.convergence.max_beats = 3000;
  auto stats = run_trials(
      [](std::uint64_t seed) {
        return full_stack(4, 1, 8, seed, make_silent_adversary());
      },
      rc);
  EXPECT_EQ(stats.trials, 6u);
  EXPECT_EQ(stats.converged, 6u);
  EXPECT_EQ(stats.samples.size(), 6u);
  EXPECT_GE(stats.p90, stats.median);
  EXPECT_GE(static_cast<double>(stats.max), stats.p90);
  EXPECT_GT(stats.mean_msgs_per_beat, 0.0);
  EXPECT_DOUBLE_EQ(stats.convergence_rate(), 1.0);
}

TEST(Integration, ConvergenceDetectorRejectsNeverSyncedRuns) {
  // A world split by construction: two isolated value camps cannot sync.
  // Use an impossible f (= n/2) with a split adversary to starve quorums:
  // n=4, f=2 leaves only 2 correct nodes and n-f=2... instead simply use
  // a tiny max_beats budget so a healthy system cannot confirm in time.
  auto b = full_stack(4, 1, 8, 1, make_silent_adversary());
  ConvergenceConfig cc;
  cc.max_beats = 2;
  cc.confirm_window = 16;
  EXPECT_FALSE(measure_convergence(*b.engine, cc).converged);
}

TEST(Observation31, QuorumIntersectionHolds) {
  // Observation 3.1 in executable form: two vectors differing in <= f
  // entries, each holding n-f copies of some value, name the same value.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t f = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    const std::uint32_t n = 3 * f + 1;
    std::vector<int> A(n), B(n);
    const int vA = 7;
    for (auto& x : A) x = vA;
    B = A;
    // Perturb at most f entries of B arbitrarily.
    for (std::uint32_t i = 0; i < f; ++i) {
      B[rng.next_below(n)] = static_cast<int>(rng.next_below(3));
    }
    // If B still has n-f copies of some vB, then vB == vA.
    std::map<int, std::uint32_t> counts;
    for (int x : B) ++counts[x];
    for (const auto& [v, c] : counts) {
      if (c >= n - f) {
        EXPECT_EQ(v, vA);
      }
    }
  }
}

TEST(AsciiTable, RendersAndCsv) {
  AsciiTable t({"algo", "beats"});
  t.add_row({"ss-byz", "3.5"});
  t.add_row({"dw", "120"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("ss-byz"), std::string::npos);
  EXPECT_NE(os.str().find("+"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "algo,beats\nss-byz,3.5\ndw,120\n");
  EXPECT_THROW(t.add_row({"only-one"}), contract_error);
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace ssbft
