// Tests for the Section 5 cascade (2^L-Clock tower of 2-Clocks).
#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "coin/oracle_coin.h"
#include "core/cascade.h"
#include "harness/convergence.h"
#include "harness/runner.h"

namespace ssbft {
namespace {

EngineBundle build_cascade(std::uint32_t n, std::uint32_t f,
                           std::uint32_t levels, std::uint64_t seed) {
  auto beacon = std::make_shared<OracleBeacon>(
      n, OracleCoinParams{0.45, 0.45}, Rng(seed).split("beacon"));
  CoinSpec spec = oracle_coin_spec(beacon);
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  std::unique_ptr<Adversary> adv;
  if (f > 0) adv = make_random_noise_adversary(6, 16);
  auto factory = [spec, levels](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<CascadeClock>(env, levels, spec, rng);
  };
  EngineBundle bundle;
  bundle.engine = std::make_unique<Engine>(cfg, factory, std::move(adv));
  bundle.engine->add_listener(beacon.get());
  bundle.keepalive = beacon;
  return bundle;
}

class CascadeTest : public ::testing::TestWithParam<std::uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Levels, CascadeTest, ::testing::Values(1u, 2u, 3u));

TEST_P(CascadeTest, SolvesPowerOfTwoClockProblem) {
  const std::uint32_t levels = GetParam();
  const ClockValue k = ClockValue{1} << levels;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto bundle = build_cascade(4, 1, levels, seed * 401);
    ConvergenceConfig cc;
    cc.max_beats = 8000;
    cc.confirm_window = static_cast<std::uint64_t>(2 * k + 8);
    const auto res = measure_convergence(*bundle.engine, cc);
    ASSERT_TRUE(res.converged) << "levels=" << levels << " seed=" << seed;
    auto prev = bundle.engine->correct_clocks().front();
    for (std::uint64_t i = 0; i < 4 * k; ++i) {
      bundle.engine->run_beat();
      ASSERT_TRUE(clocks_agree(*bundle.engine));
      const auto cur = bundle.engine->correct_clocks().front();
      EXPECT_EQ(cur, (prev + 1) % k);
      prev = cur;
    }
  }
}

TEST(Cascade, ModulusIsPowerOfTwo) {
  auto bundle = build_cascade(4, 0, 3, 5);
  const auto& proto = dynamic_cast<const CascadeClock&>(bundle.engine->node(0));
  EXPECT_EQ(proto.modulus(), 8u);
}

TEST(Cascade, MessageCostGrowsWithLevels) {
  // log k concurrent 2-clocks: more levels, more traffic per beat (upper
  // levels step rarely, but level 0's coin and value broadcasts dominate a
  // lower bound that still grows with the tower height once levels are
  // active). Compare totals over a window after convergence.
  auto traffic = [](std::uint32_t levels) {
    auto bundle = build_cascade(4, 0, levels, 9);
    bundle.engine->run_beats(200);
    return bundle.engine->metrics().total().correct_messages;
  };
  EXPECT_LT(traffic(1), traffic(3));
}

TEST(Cascade, ReconvergesAfterCorruption) {
  auto bundle = build_cascade(4, 1, 2, 13);
  ConvergenceConfig cc;
  cc.max_beats = 8000;
  cc.confirm_window = 16;
  ASSERT_TRUE(measure_convergence(*bundle.engine, cc).converged);
  bundle.engine->corrupt_node(0);
  EXPECT_TRUE(measure_convergence(*bundle.engine, cc).converged);
}

}  // namespace
}  // namespace ssbft
