// Lightweight runtime contract checks, enabled in all build types.
//
// The simulator is an experiment substrate: a silent invariant violation
// would poison every measured number downstream, so checks stay on even in
// release builds. They are cheap relative to protocol work.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ssbft {

// Thrown when a SSBFT_CHECK / SSBFT_REQUIRE contract fails.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace ssbft

// Internal invariant ("this cannot happen if the code is right").
#define SSBFT_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr))                                                           \
      ::ssbft::detail::check_failed("invariant", #expr, __FILE__,          \
                                    __LINE__, "");                         \
  } while (0)

#define SSBFT_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::ssbft::detail::check_failed("invariant", #expr, __FILE__,          \
                                    __LINE__, os_.str());                  \
    }                                                                      \
  } while (0)

// Precondition on a public API ("the caller got it wrong").
#define SSBFT_REQUIRE(expr)                                                \
  do {                                                                     \
    if (!(expr))                                                           \
      ::ssbft::detail::check_failed("precondition", #expr, __FILE__,       \
                                    __LINE__, "");                         \
  } while (0)

#define SSBFT_REQUIRE_MSG(expr, msg)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::ssbft::detail::check_failed("precondition", #expr, __FILE__,       \
                                    __LINE__, os_.str());                  \
    }                                                                      \
  } while (0)
