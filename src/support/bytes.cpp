#include "support/bytes.h"

namespace ssbft {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64_vec(const std::vector<std::uint64_t>& v) {
  u64_vec(v.data(), v.size());
}

void ByteWriter::u64_vec(const std::uint64_t* data, std::size_t len) {
  u32(static_cast<std::uint32_t>(len));
  for (std::size_t i = 0; i < len; ++i) u64(data[i]);
}

void ByteWriter::bytes(const Bytes& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

bool ByteReader::take(std::size_t len, const std::uint8_t** out) {
  if (!ok_ || buf_->size() - pos_ < len) {
    ok_ = false;
    return false;
  }
  *out = buf_->data() + pos_;
  pos_ += len;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return 0;
  return p[0];
}

std::uint16_t ByteReader::u16() {
  const std::uint8_t* p = nullptr;
  if (!take(2, &p)) return 0;
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::vector<std::uint64_t> ByteReader::u64_vec(std::size_t max_elems) {
  std::uint32_t n = u32();
  if (!ok_ || n > max_elems || remaining() < std::size_t{n} * 8) {
    ok_ = false;
    return {};
  }
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = u64();
  return v;
}

std::size_t ByteReader::u64_vec_into(std::uint64_t* dst,
                                     std::size_t max_elems) {
  std::uint32_t n = u32();
  if (!ok_ || n > max_elems || remaining() < std::size_t{n} * 8) {
    ok_ = false;
    return 0;
  }
  for (std::uint32_t i = 0; i < n; ++i) dst[i] = u64();
  return n;
}

Bytes ByteReader::bytes(std::size_t max_len) {
  std::uint32_t n = u32();
  if (!ok_ || n > max_len || remaining() < n) {
    ok_ = false;
    return {};
  }
  const std::uint8_t* p = nullptr;
  take(n, &p);
  return Bytes(p, p + n);
}

std::string to_hex(const Bytes& b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(b.size() * 2);
  for (std::uint8_t c : b) {
    s.push_back(digits[c >> 4]);
    s.push_back(digits[c & 0xf]);
  }
  return s;
}

}  // namespace ssbft
