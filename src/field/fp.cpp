#include "field/fp.h"

#include "field/primes.h"
#include "support/check.h"

namespace ssbft {

PrimeField::PrimeField(std::uint64_t p) : p_(p) {
  SSBFT_REQUIRE_MSG(p >= 2 && is_prime_u64(p), "field modulus must be prime, got " << p);
}

std::uint64_t PrimeField::add(std::uint64_t a, std::uint64_t b) const {
  SSBFT_CHECK(a < p_ && b < p_);
  std::uint64_t s = a + b;  // p < 2^63 for the default; handle general case:
  if (s < a || s >= p_) s -= p_;
  return s;
}

std::uint64_t PrimeField::sub(std::uint64_t a, std::uint64_t b) const {
  SSBFT_CHECK(a < p_ && b < p_);
  return a >= b ? a - b : a + (p_ - b);
}

std::uint64_t PrimeField::neg(std::uint64_t a) const {
  SSBFT_CHECK(a < p_);
  return a == 0 ? 0 : p_ - a;
}

std::uint64_t PrimeField::mul(std::uint64_t a, std::uint64_t b) const {
  SSBFT_CHECK(a < p_ && b < p_);
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * b % p_);
}

std::uint64_t PrimeField::pow(std::uint64_t a, std::uint64_t e) const {
  SSBFT_CHECK(a < p_);
  std::uint64_t base = a, acc = 1 % p_;
  while (e != 0) {
    if (e & 1) acc = mul(acc, base);
    base = mul(base, base);
    e >>= 1;
  }
  return acc;
}

std::uint64_t PrimeField::inv(std::uint64_t a) const {
  SSBFT_REQUIRE_MSG(a != 0 && a < p_, "inverse of zero / non-canonical value");
  // Fermat: a^(p-2). p is prime so this is total on nonzero a.
  return pow(a, p_ - 2);
}

std::uint64_t PrimeField::uniform(Rng& rng) const { return rng.next_below(p_); }

std::uint64_t PrimeField::uniform_nonzero(Rng& rng) const {
  return 1 + rng.next_below(p_ - 1);
}

}  // namespace ssbft
