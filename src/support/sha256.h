// Streaming SHA-256 (FIPS 180-4), dependency-free. Used by the trace
// checker to commit to a canonical serialization of an execution trace:
// the commitment replaces byte-identical stdout diffs as the replay-
// exactness oracle, so it must be stable across platforms — which a
// from-scratch integer-only implementation guarantees.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>

namespace ssbft {

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const void* data, std::size_t len);
  void update(const std::string& s) { update(s.data(), s.size()); }

  // Finalizes and returns the 32-byte digest. The hasher must be reset()
  // before further updates.
  std::array<std::uint8_t, 32> digest();

  // Lowercase hex of a digest.
  static std::string hex(const std::array<std::uint8_t, 32>& d);

  // One-shot convenience: hex digest of a whole string.
  static std::string hash_hex(const std::string& data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

}  // namespace ssbft
