#include "coin/local_coin.h"

namespace ssbft {

namespace {

class LocalCoinComponent final : public CoinComponent {
 public:
  explicit LocalCoinComponent(Rng rng) : rng_(rng) {}

  void send_phase(Outbox&) override {}
  bool do_receive_phase(const Inbox&) override { return rng_.next_bool(); }
  // Reseeding under corruption is immaterial: every draw is independent.
  void randomize_state(Rng& rng) override { rng_ = Rng(rng.next_u64()); }

 private:
  Rng rng_;
};

}  // namespace

CoinSpec local_coin_spec() {
  CoinSpec spec;
  spec.channels = 0;
  spec.make = [](const ProtocolEnv&, ChannelId, Rng rng) {
    return std::make_unique<LocalCoinComponent>(rng);
  };
  return spec;
}

}  // namespace ssbft
