#include "core/clock4.h"

#include "sim/trace.h"
#include "support/check.h"

namespace ssbft {

SsByz4Clock::SsByz4Clock(const ProtocolEnv& env, const CoinSpec& coin,
                         ChannelId base, Rng rng, CoinPipelineMode mode)
    : env_(env),
      mode_(mode),
      channels_end_(base + channels_needed(coin, mode)) {
  if (mode_ == CoinPipelineMode::kPerSubClock) {
    const auto a1_base = base;
    const auto a2_base =
        static_cast<ChannelId>(base + SsByz2Clock::channels_needed(coin));
    a1_ = std::make_unique<SsByz2Clock>(env, coin, a1_base, rng.split("a1"));
    a2_ = std::make_unique<SsByz2Clock>(env, coin, a2_base, rng.split("a2"));
  } else {
    a1_ = std::make_unique<SsByz2Clock>(env, base, rng.split("a1"));
    a2_ = std::make_unique<SsByz2Clock>(env, static_cast<ChannelId>(base + 1),
                                        rng.split("a2"));
    shared_coin_base_ = static_cast<ChannelId>(base + 2);
    shared_coin_ = coin.make(env, shared_coin_base_, rng.split("shared-coin"));
    SSBFT_CHECK(shared_coin_ != nullptr);
  }
}

void SsByz4Clock::sub_send(Outbox& out) {
  // Figure 3 line 2's gate, in start-of-beat form: A2 steps on the beats
  // where A1 is about to wrap 1 -> 0.
  a2_active_ = a1_->tri_state() == Tri::kOne;
  a1_->sub_send(out);
  if (a2_active_) a2_->sub_send(out);
  if (shared_coin_) shared_coin_->send_phase(out);
}

void SsByz4Clock::sub_receive(const Inbox& in) {
  if (mode_ == CoinPipelineMode::kPerSubClock) {
    a1_->sub_receive(in);
    if (a2_active_) a2_->sub_receive(in);
  } else {
    // One pipeline, one bit per beat, consumed by whichever sub-clocks step.
    const bool rand = shared_coin_->receive_phase(in);
    a1_->sub_receive_with_rand(in, rand);
    if (a2_active_) a2_->sub_receive_with_rand(in, rand);
  }
}

void SsByz4Clock::randomize_state(Rng& rng) {
  a1_->randomize_state(rng);
  a2_->randomize_state(rng);
  if (shared_coin_) shared_coin_->randomize_state(rng);
  a2_active_ = rng.next_bool();
}

ClockValue SsByz4Clock::clock() const {
  return 2 * a2_->clock() + a1_->clock();
}

void SsByz4Clock::trace_state(TraceEmitter& em) const {
  a1_->trace_state(em);
  // A2 only stepped this beat if the gate was open — otherwise its latched
  // coin bit and phase are stale and must not be reported as fresh.
  if (a2_active_) a2_->trace_state(em);
  if (shared_coin_) em.coin(shared_coin_base_, shared_coin_->last_output());
}

}  // namespace ssbft
