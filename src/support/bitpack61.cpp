#include "support/bitpack61.h"

#include <cstring>

#if defined(__GNUC__) && defined(__x86_64__) && !defined(SSBFT_SIMD_DISABLED)
#define SSBFT_BITPACK_HAVE_AVX2 1
#include <immintrin.h>
#else
#define SSBFT_BITPACK_HAVE_AVX2 0
#endif

namespace ssbft {
namespace bitpack61 {

namespace {

constexpr std::uint64_t kMask61 = (std::uint64_t{1} << 61) - 1;

// Word j of the packed block holds bits [64j, 64j+64); value k sits at bit
// offset 61k. That gives, for j = 0..6:
//   w_j = (v[j] >> 3j) | (v[j+1] << (61 - 3j))
// and the final 40 bits of v[7] land in a 5-byte tail.

#if SSBFT_BITPACK_HAVE_AVX2

__attribute__((target("avx2"))) void pack_block_avx2(const std::uint64_t* v,
                                                     std::uint8_t* out) {
  const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  const __m256i b =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + 1));
  // Lanes j = 0..3.
  const __m256i w03 =
      _mm256_or_si256(_mm256_srlv_epi64(a, _mm256_set_epi64x(9, 6, 3, 0)),
                      _mm256_sllv_epi64(b, _mm256_set_epi64x(52, 55, 58, 61)));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), w03);
  // Lanes j = 4..6 (lane 3 of the vector is garbage and not stored).
  const __m256i a2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + 4));
  const __m256i b2 = _mm256_permute4x64_epi64(a2, _MM_SHUFFLE(3, 3, 2, 1));
  const __m256i w46 = _mm256_or_si256(
      _mm256_srlv_epi64(a2, _mm256_set_epi64x(21, 18, 15, 12)),
      _mm256_sllv_epi64(b2, _mm256_set_epi64x(40, 43, 46, 49)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 32),
                   _mm256_castsi256_si128(w46));
  const std::uint64_t w6 =
      static_cast<std::uint64_t>(_mm256_extract_epi64(w46, 2));
  std::memcpy(out + 48, &w6, 8);
  const std::uint64_t tail = v[7] >> 21;  // remaining 40 bits
  std::memcpy(out + 56, &tail, 5);
}

__attribute__((target("avx2"))) void unpack_block_avx2(const std::uint8_t* in,
                                                       std::uint64_t* v) {
  const __m256i M = _mm256_set1_epi64x(static_cast<long long>(kMask61));
  // Words W0..W3 cover values 0..3; value k starts at bit 61k = 64q + s.
  const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
  const __m256i lo03 = _mm256_permute4x64_epi64(a, _MM_SHUFFLE(2, 1, 0, 0));
  const __m256i hi03 = _mm256_permute4x64_epi64(a, _MM_SHUFFLE(3, 2, 1, 1));
  const __m256i v03 = _mm256_and_si256(
      _mm256_or_si256(
          _mm256_srlv_epi64(lo03, _mm256_set_epi64x(55, 58, 61, 0)),
          _mm256_sllv_epi64(hi03, _mm256_set_epi64x(9, 6, 3, 64))),
      M);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(v), v03);
  // Words W3..W6 (bytes 24..55) cover values 4..6.
  const __m256i b =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 24));
  const __m256i hi46 = _mm256_permute4x64_epi64(b, _MM_SHUFFLE(3, 3, 2, 1));
  const __m256i v46 = _mm256_and_si256(
      _mm256_or_si256(
          _mm256_srlv_epi64(b, _mm256_set_epi64x(64, 46, 49, 52)),
          _mm256_sllv_epi64(hi46, _mm256_set_epi64x(64, 18, 15, 12))),
      M);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(v + 4),
                   _mm256_castsi256_si128(v46));
  v[6] = static_cast<std::uint64_t>(_mm256_extract_epi64(v46, 2));
  // Value 7 starts at bit 427 = 53*8 + 3; the 8-byte load at offset 53 is
  // the last fully in-bounds window of the 61-byte block.
  std::uint64_t w53;
  std::memcpy(&w53, in + 53, 8);
  v[7] = (w53 >> 3) & kMask61;
}

bool avx2_ok() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}

#endif  // SSBFT_BITPACK_HAVE_AVX2

}  // namespace

void pack_block_portable(const std::uint64_t* v, std::uint8_t* out) {
  std::uint64_t w;
  w = v[0] | (v[1] << 61);
  std::memcpy(out, &w, 8);
  w = (v[1] >> 3) | (v[2] << 58);
  std::memcpy(out + 8, &w, 8);
  w = (v[2] >> 6) | (v[3] << 55);
  std::memcpy(out + 16, &w, 8);
  w = (v[3] >> 9) | (v[4] << 52);
  std::memcpy(out + 24, &w, 8);
  w = (v[4] >> 12) | (v[5] << 49);
  std::memcpy(out + 32, &w, 8);
  w = (v[5] >> 15) | (v[6] << 46);
  std::memcpy(out + 40, &w, 8);
  w = (v[6] >> 18) | (v[7] << 43);
  std::memcpy(out + 48, &w, 8);
  w = v[7] >> 21;  // remaining 40 bits
  std::memcpy(out + 56, &w, 5);
}

void unpack_block_portable(const std::uint8_t* in, std::uint64_t* v) {
  std::uint64_t W[7];
  std::memcpy(W, in, 56);
  std::uint64_t w53;
  std::memcpy(&w53, in + 53, 8);
  v[0] = W[0] & kMask61;
  v[1] = ((W[0] >> 61) | (W[1] << 3)) & kMask61;
  v[2] = ((W[1] >> 58) | (W[2] << 6)) & kMask61;
  v[3] = ((W[2] >> 55) | (W[3] << 9)) & kMask61;
  v[4] = ((W[3] >> 52) | (W[4] << 12)) & kMask61;
  v[5] = ((W[4] >> 49) | (W[5] << 15)) & kMask61;
  v[6] = ((W[5] >> 46) | (W[6] << 18)) & kMask61;
  v[7] = (w53 >> 3) & kMask61;
}

bool simd_available() {
#if SSBFT_BITPACK_HAVE_AVX2
  return avx2_ok();
#else
  return false;
#endif
}

void pack_block(const std::uint64_t* v, std::uint8_t* out) {
#if SSBFT_BITPACK_HAVE_AVX2
  if (avx2_ok()) {
    pack_block_avx2(v, out);
    return;
  }
#endif
  pack_block_portable(v, out);
}

void unpack_block(const std::uint8_t* in, std::uint64_t* v) {
#if SSBFT_BITPACK_HAVE_AVX2
  if (avx2_ok()) {
    unpack_block_avx2(in, v);
    return;
  }
#endif
  unpack_block_portable(in, v);
}

}  // namespace bitpack61
}  // namespace ssbft
