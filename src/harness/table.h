// ASCII table and CSV emitters for the benchmark binaries, so every
// experiment prints a paper-style table plus machine-readable rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ssbft {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Renders with column widths fitted to content, pipe-separated.
  void print(std::ostream& os) const;
  // Comma-separated, one line per row, headers first.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting helper for table cells.
std::string fmt_double(double v, int precision = 1);

}  // namespace ssbft
