// Tests for the Table-1 baselines: Dolev-Welch-style randomized clock sync
// and the pipelined-BA deterministic clocks.
#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "coin/oracle_coin.h"
#include "agreement/phase_king.h"
#include "agreement/phase_queen.h"
#include "agreement/turpin_coan.h"
#include "baselines/dolev_welch.h"
#include "baselines/pipelined_ba_clock.h"
#include "harness/convergence.h"
#include "harness/runner.h"

namespace ssbft {
namespace {

EngineBundle build_dw(std::uint32_t n, std::uint32_t f, ClockValue k,
                      std::uint64_t seed) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  auto factory = [k](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<DolevWelchClock>(env, k, rng);
  };
  EngineBundle b;
  b.engine = std::make_unique<Engine>(
      cfg, factory, f > 0 ? make_random_noise_adversary(4, 16) : nullptr);
  return b;
}

EngineBundle build_pipelined(const BaSpec& spec, std::uint32_t n,
                             std::uint32_t f, ClockValue k,
                             std::uint64_t seed, bool skew) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  auto factory = [spec, k](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<PipelinedBaClock>(env, k, spec, rng);
  };
  EngineBundle b;
  std::unique_ptr<Adversary> adv;
  if (f > 0) {
    adv = skew ? make_clock_skew_adversary(k, 0)
               : make_random_noise_adversary(6, 32);
  }
  b.engine = std::make_unique<Engine>(cfg, factory, std::move(adv));
  return b;
}

TEST(DolevWelch, ConvergesForSmallSystems) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto b = build_dw(4, 1, 4, seed);
    ConvergenceConfig cc;
    cc.max_beats = 50000;
    const auto res = measure_convergence(*b.engine, cc);
    ASSERT_TRUE(res.converged) << seed;
  }
}

TEST(DolevWelch, ClosureIsDeterministicOnceSynced) {
  auto b = build_dw(4, 1, 6, 3);
  ConvergenceConfig cc;
  cc.max_beats = 50000;
  ASSERT_TRUE(measure_convergence(*b.engine, cc).converged);
  auto prev = b.engine->correct_clocks().front();
  for (int i = 0; i < 30; ++i) {
    b.engine->run_beat();
    ASSERT_TRUE(clocks_agree(*b.engine));
    const auto cur = b.engine->correct_clocks().front();
    EXPECT_EQ(cur, (prev + 1) % 6);
    prev = cur;
  }
}

TEST(DolevWelch, ConvergenceDegradesWithScale) {
  // The exponential wall: mean convergence for (n=4, f=1) vs (n=10, f=3)
  // with the same k. The gamble must align ~n-f independent coins.
  auto mean_for = [](std::uint32_t n, std::uint32_t f) {
    RunnerConfig rc;
    rc.trials = 12;
    rc.base_seed = 100;
    rc.convergence.max_beats = 300000;
    auto stats = run_trials(
        [&](std::uint64_t seed) { return build_dw(n, f, 4, seed); }, rc);
    EXPECT_GT(stats.converged, 0u);
    return stats.mean;
  };
  EXPECT_LT(mean_for(4, 1) * 2, mean_for(10, 3));
}

struct PipeCase {
  std::string name;
  std::uint32_t n;
  std::uint32_t f;
  bool skew;
};

class PipelinedClockTest : public ::testing::TestWithParam<PipeCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinedClockTest,
    ::testing::Values(PipeCase{"king", 4, 1, true}, PipeCase{"king", 7, 2, true},
                      PipeCase{"king", 7, 2, false},
                      PipeCase{"king", 10, 3, true},
                      PipeCase{"queen", 5, 1, true},
                      PipeCase{"queen", 9, 2, true},
                      PipeCase{"queen", 9, 2, false}),
    [](const auto& info) {
      return info.param.name + "_n" + std::to_string(info.param.n) + "_f" +
             std::to_string(info.param.f) + (info.param.skew ? "_skew" : "_noise");
    });

TEST_P(PipelinedClockTest, DeterministicConvergenceWithinPipelineDepth) {
  const auto& p = GetParam();
  const BaSpec spec = turpin_coan_spec(
      p.name == "king" ? phase_king_spec() : phase_queen_spec());
  const int depth = spec.rounds_for(p.f);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto b = build_pipelined(spec, p.n, p.f, 64, seed * 509, p.skew);
    ConvergenceConfig cc;
    cc.max_beats = static_cast<std::uint64_t>(depth) + 64;
    cc.confirm_window = 16;
    const auto res = measure_convergence(*b.engine, cc);
    ASSERT_TRUE(res.converged) << p.name << " seed " << seed;
    // Deterministic O(f): synced within pipeline depth + slack.
    EXPECT_LE(res.synced_at, static_cast<Beat>(depth) + 4);
  }
}

TEST_P(PipelinedClockTest, ClosureHolds) {
  const auto& p = GetParam();
  const BaSpec spec = turpin_coan_spec(
      p.name == "king" ? phase_king_spec() : phase_queen_spec());
  auto b = build_pipelined(spec, p.n, p.f, 16, 77, p.skew);
  ConvergenceConfig cc;
  cc.max_beats = 500;
  ASSERT_TRUE(measure_convergence(*b.engine, cc).converged);
  auto prev = b.engine->correct_clocks().front();
  for (int i = 0; i < 32; ++i) {
    b.engine->run_beat();
    ASSERT_TRUE(clocks_agree(*b.engine));
    const auto cur = b.engine->correct_clocks().front();
    EXPECT_EQ(cur, (prev + 1) % 16);
    prev = cur;
  }
}

TEST(PipelinedClock, ReconvergesAfterCorruption) {
  const BaSpec spec = turpin_coan_spec(phase_king_spec());
  auto b = build_pipelined(spec, 7, 2, 32, 13, true);
  ConvergenceConfig cc;
  cc.max_beats = 500;
  ASSERT_TRUE(measure_convergence(*b.engine, cc).converged);
  b.engine->corrupt_node(0);
  b.engine->corrupt_node(1);
  EXPECT_TRUE(measure_convergence(*b.engine, cc).converged);
}

// --- Section 6.1 retrofit: Dolev-Welch on the shared coin -------------------

EngineBundle build_dw_shared(std::uint32_t n, std::uint32_t f, ClockValue k,
                             std::uint64_t seed, bool fm_coin,
                             bool adaptive_splitter = false) {
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  EngineBundle b;
  std::shared_ptr<OracleBeacon> beacon;
  CoinSpec spec;
  if (fm_coin) {
    spec = fm_coin_spec();
  } else {
    beacon = std::make_shared<OracleBeacon>(n, OracleCoinParams{0.45, 0.45},
                                            Rng(seed).split("beacon"));
    spec = oracle_coin_spec(beacon);
  }
  auto factory = [spec, k](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<DolevWelchSharedCoin>(env, k, spec, rng);
  };
  std::unique_ptr<Adversary> adv;
  if (f > 0) {
    adv = adaptive_splitter ? make_adaptive_quorum_splitter(k, 0)
                            : make_random_noise_adversary(6, 32);
  }
  b.engine = std::make_unique<Engine>(cfg, factory, std::move(adv));
  if (beacon) {
    b.engine->add_listener(beacon.get());
    b.keepalive = beacon;
  }
  return b;
}

struct DwSharedParam {
  std::uint32_t n;
  std::uint32_t f;
  bool fm;
};

class DwSharedCoinTest : public ::testing::TestWithParam<DwSharedParam> {};

INSTANTIATE_TEST_SUITE_P(Sweep, DwSharedCoinTest,
                         ::testing::Values(DwSharedParam{4, 1, false},
                                           DwSharedParam{7, 2, false},
                                           DwSharedParam{10, 3, false},
                                           DwSharedParam{13, 4, false},
                                           DwSharedParam{4, 1, true},
                                           DwSharedParam{7, 2, true}));

TEST_P(DwSharedCoinTest, ConvergesFastAndStaysClosed) {
  const auto [n, f, fm] = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto b = build_dw_shared(n, f, 8, seed * 613, fm);
    ConvergenceConfig cc;
    cc.max_beats = 2000;
    const auto res = measure_convergence(*b.engine, cc);
    ASSERT_TRUE(res.converged) << "n=" << n << " fm=" << fm << " seed=" << seed;
    auto prev = b.engine->correct_clocks().front();
    for (int i = 0; i < 24; ++i) {
      b.engine->run_beat();
      ASSERT_TRUE(clocks_agree(*b.engine));
      const auto cur = b.engine->correct_clocks().front();
      EXPECT_EQ(cur, (prev + 1) % 8);
      prev = cur;
    }
  }
}

TEST(DwSharedCoin, ExponentialGapVersusLocalCoins) {
  // The Section 6.1 claim, as a test: at n = 10, f = 3, the shared-coin
  // retrofit converges orders of magnitude faster than the local-coin
  // original (measured, same seeds, same adversary class).
  RunnerConfig rc;
  rc.trials = 8;
  rc.base_seed = 300;
  rc.convergence.max_beats = 50000;
  auto local = run_trials(
      [](std::uint64_t seed) { return build_dw(10, 3, 8, seed); }, rc);
  rc.convergence.max_beats = 2000;
  auto shared = run_trials(
      [](std::uint64_t seed) {
        return build_dw_shared(10, 3, 8, seed, /*fm=*/false);
      },
      rc);
  ASSERT_EQ(shared.converged, shared.trials);
  // Compare against converged local trials only (censoring favors local).
  if (local.converged > 0) {
    EXPECT_GT(local.mean, 50.0 * std::max(shared.mean, 1.0));
  } else {
    SUCCEED() << "local-coin DW never converged within budget";
  }
}

TEST(DwSharedCoin, SurvivesAdaptiveQuorumSplitter) {
  // The strongest clock-channel attack cannot hold the retrofit apart:
  // from random genesis the boostable-support window never stabilizes
  // before a common rand = 0 beat collapses everyone onto clock 0.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto b = build_dw_shared(7, 2, 8, seed * 37, /*fm=*/false,
                             /*adaptive_splitter=*/true);
    ConvergenceConfig cc;
    cc.max_beats = 5000;
    EXPECT_TRUE(measure_convergence(*b.engine, cc).converged) << seed;
  }
}

TEST(DwSharedCoin, ReconvergesAfterCorruption) {
  auto b = build_dw_shared(7, 2, 12, 11, /*fm=*/true);
  ConvergenceConfig cc;
  cc.max_beats = 3000;
  ASSERT_TRUE(measure_convergence(*b.engine, cc).converged);
  b.engine->corrupt_node(0);
  b.engine->corrupt_node(1);
  EXPECT_TRUE(measure_convergence(*b.engine, cc).converged);
}

TEST(DwSharedCoin, ChannelAccounting) {
  EXPECT_EQ(DolevWelchSharedCoin::channels_needed(fm_coin_spec()), 5u);
}

TEST(AdaptiveSplitter, DoesNotStopPipelinedKing) {
  const BaSpec spec = turpin_coan_spec(phase_king_spec());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    EngineConfig cfg;
    cfg.n = 7;
    cfg.f = 2;
    cfg.faulty = EngineConfig::last_ids_faulty(7, 2);
    cfg.seed = seed * 41;
    auto factory = [spec](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<PipelinedBaClock>(env, 16, spec, rng);
    };
    // Aim the splitter at the quorum channel (after the R BA channels).
    const auto clock_ch = static_cast<ChannelId>(spec.rounds_for(2));
    Engine eng(cfg, factory, make_adaptive_quorum_splitter(16, clock_ch));
    ConvergenceConfig cc;
    cc.max_beats = 2000;
    EXPECT_TRUE(measure_convergence(eng, cc).converged) << seed;
  }
}

TEST(PipelinedClock, DepthScalesLinearlyWithF) {
  const BaSpec spec = turpin_coan_spec(phase_king_spec());
  ProtocolEnv e1{0, 4, 1}, e3{0, 10, 3};
  PipelinedBaClock c1(e1, 8, spec, Rng(1));
  PipelinedBaClock c3(e3, 8, spec, Rng(1));
  EXPECT_EQ(c1.pipeline_depth(), 2 + 3 * 2);
  EXPECT_EQ(c3.pipeline_depth(), 2 + 3 * 4);
  EXPECT_GT(c3.pipeline_depth(), c1.pipeline_depth());
}

}  // namespace
}  // namespace ssbft
