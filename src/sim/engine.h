// The lock-step simulation engine: global beat system, rushing Byzantine
// adversary, transient/network fault injection, deterministic replay.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/adversary.h"
#include "sim/fault_plan.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/protocol.h"
#include "support/rng.h"

namespace ssbft {

// Hook invoked at the start of every beat, before any send phase. Used by
// environment-level components such as the oracle coin beacon.
class BeatListener {
 public:
  virtual ~BeatListener() = default;
  virtual void on_beat(Beat beat) = 0;
};

struct EngineConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  // Identities of the Byzantine nodes (size <= f typically; the engine
  // permits any subset so resiliency-boundary experiments can overload f).
  std::vector<NodeId> faulty;
  std::uint64_t seed = 1;
  FaultPlan faults;
  // 0 = record every beat's traffic; k > 0 = keep only the most recent k
  // beats (bounded memory, allocation-free steady state).
  std::size_t metrics_history_limit = 0;

  // The highest-id nodes are faulty by default.
  static std::vector<NodeId> last_ids_faulty(std::uint32_t n, std::uint32_t count);
};

using ProtocolFactory =
    std::function<std::unique_ptr<Protocol>(const ProtocolEnv&, Rng)>;

class Engine {
 public:
  // Builds protocols for every non-faulty node. Per FaultPlan, genesis
  // state is randomized by default (the self-stabilization start).
  Engine(EngineConfig cfg, const ProtocolFactory& factory,
         std::unique_ptr<Adversary> adversary);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Executes one full beat (listener hooks, scheduled corruption, send
  // phases, adversary, delivery with network faults, receive phases).
  void run_beat();
  void run_beats(std::uint64_t count);

  Beat beat() const { return beat_; }
  std::uint32_t n() const { return cfg_.n; }
  std::uint32_t f() const { return cfg_.f; }

  bool is_faulty(NodeId id) const { return is_faulty_[id]; }
  const std::vector<NodeId>& correct_ids() const { return correct_ids_; }

  // The protocol instance of a correct node.
  Protocol& node(NodeId id);
  const Protocol& node(NodeId id) const;

  // Clock values of all correct nodes, in correct_ids() order. Requires the
  // protocols to be ClockProtocols.
  std::vector<ClockValue> correct_clocks() const;

  // Immediately randomizes the state of a correct node (manual transient
  // fault, in addition to any FaultPlan schedule).
  void corrupt_node(NodeId id);

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  // Listener is not owned; must outlive the engine's run.
  void add_listener(BeatListener* l) { listeners_.push_back(l); }

 private:
  // Moves each message's payload into the target inbox (or back to the
  // pool when the message is dropped).
  void deliver(std::vector<Message>& msgs, Rng& net_rng, bool network_faulty);
  void inject_phantoms(Rng& net_rng);
  void recycle(std::vector<Message>& msgs);

  EngineConfig cfg_;
  Beat beat_ = 0;
  std::vector<bool> is_faulty_;
  std::vector<NodeId> correct_ids_;
  std::vector<std::unique_ptr<Protocol>> protocols_;  // null for faulty ids
  BytesPool pool_;  // owns recycled payload storage; declared before users
  std::vector<Inbox> inboxes_;                        // per node id
  std::unique_ptr<Adversary> adversary_;
  std::uint32_t channel_count_ = 0;
  Rng adv_rng_;
  Rng corrupt_rng_;
  Rng net_rng_;
  Metrics metrics_;
  std::vector<BeatListener*> listeners_;
  // Persistent per-beat scratch: cleared every beat, capacity retained.
  Outbox outbox_{0, 0, &pool_};
  std::vector<Message> correct_msgs_;
  std::vector<Message> adv_msgs_;
  std::vector<Message> observed_;
};

}  // namespace ssbft
