// Shared test scaffolding: small top-level Protocol wrappers that host
// sub-components (coins, one-shot BA instances) on the engine, plus
// engine-building conveniences.
#pragma once

#include <memory>
#include <vector>

#include "agreement/ba_interface.h"
#include "coin/coin_interface.h"
#include "sim/engine.h"

namespace ssbft::testing {

// Hosts a CoinComponent as a top-level protocol and records its bit stream.
class CoinHostProtocol final : public Protocol {
 public:
  CoinHostProtocol(const ProtocolEnv& env, const CoinSpec& spec, Rng rng)
      : channels_(spec.channels == 0 ? 1 : spec.channels),
        coin_(spec.make(env, 0, rng)) {}

  void send_phase(Outbox& out) override { coin_->send_phase(out); }
  void receive_phase(const Inbox& in) override {
    bits_.push_back(coin_->receive_phase(in));
  }
  void randomize_state(Rng& rng) override { coin_->randomize_state(rng); }
  std::uint32_t channel_count() const override { return channels_; }

  const std::vector<bool>& bits() const { return bits_; }

 private:
  std::uint32_t channels_;
  std::unique_ptr<CoinComponent> coin_;
  std::vector<bool> bits_;
};

// Hosts one BA instance: runs its rounds once, then idles holding the
// output.
class OneShotBaProtocol final : public Protocol {
 public:
  OneShotBaProtocol(const ProtocolEnv& env, const BaSpec& spec,
                    std::uint64_t input, Rng rng)
      : rounds_(spec.rounds_for(env.f)),
        instance_(spec.make(env, input, rng)) {}

  void send_phase(Outbox& out) override {
    if (next_round_ <= rounds_) instance_->send_round(next_round_, out, 0);
  }
  void receive_phase(const Inbox& in) override {
    if (next_round_ <= rounds_) {
      instance_->receive_round(next_round_, in, 0);
      ++next_round_;
    }
  }
  void randomize_state(Rng& rng) override { instance_->randomize_state(rng); }
  std::uint32_t channel_count() const override {
    return static_cast<std::uint32_t>(rounds_);
  }

  bool done() const { return next_round_ > rounds_; }
  std::uint64_t output() const { return instance_->output(); }

 private:
  int rounds_;
  int next_round_ = 1;
  std::unique_ptr<BaInstance> instance_;
};

// Fraction of positions where all correct hosts reported the same bit.
inline double common_bit_fraction(const Engine& engine,
                                  std::size_t skip_warmup) {
  std::vector<const CoinHostProtocol*> hosts;
  for (NodeId id : engine.correct_ids()) {
    hosts.push_back(dynamic_cast<const CoinHostProtocol*>(&engine.node(id)));
  }
  if (hosts.empty() || hosts[0]->bits().size() <= skip_warmup) return 0.0;
  std::size_t common = 0, total = 0;
  for (std::size_t i = skip_warmup; i < hosts[0]->bits().size(); ++i) {
    bool all_same = true;
    for (const auto* h : hosts) {
      if (h->bits()[i] != hosts[0]->bits()[i]) all_same = false;
    }
    ++total;
    if (all_same) ++common;
  }
  return total == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(total);
}

}  // namespace ssbft::testing
