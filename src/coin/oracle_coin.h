// The oracle coin: an idealized pipelined probabilistic coin-flipping
// algorithm (Definition 2.7) realized as an environment beacon.
//
// Purpose: layer isolation. The clock-synchronization results (Theorems
// 2-4) are parameterized only by the coin's constants p0, p1; the oracle
// lets experiments sweep those constants directly and compare against the
// message-level FM coin. Semantics per beat:
//
//   with probability p0: every node draws 0        (event E0)
//   with probability p1: every node draws 1        (event E1)
//   otherwise:           each node draws an independent fair bit
//
// Unpredictability is modeled faithfully: the beat's outcome is drawn at
// the start of the beat and exposed to the adversary *in the same beat
// only* (rushing — matching what a real recover round would reveal), never
// earlier.
//
// The beacon is a BeatListener owned by the harness; node-side components
// are stateless, so the oracle converges instantly (Delta_C = 0) and a
// transiently corrupted node rejoins the common stream at the next beat.
#pragma once

#include <memory>
#include <vector>

#include "coin/coin_interface.h"
#include "sim/engine.h"
#include "support/rng.h"

namespace ssbft {

struct OracleCoinParams {
  double p0 = 0.45;
  double p1 = 0.45;
};

class OracleBeacon final : public BeatListener {
 public:
  OracleBeacon(std::uint32_t n, OracleCoinParams params, Rng rng);

  void on_beat(Beat beat) override;

  // This beat's bit at node `id`.
  bool bit_for(NodeId id) const { return bits_[id]; }
  // True iff this beat's draw was a common one (E0 or E1). Rushing
  // adversaries may consult this; honest protocol code must not.
  bool is_common() const { return common_; }
  bool common_value() const { return common_value_; }

  const OracleCoinParams& params() const { return params_; }

 private:
  std::uint32_t n_;
  OracleCoinParams params_;
  Rng rng_;
  std::vector<bool> bits_;
  bool common_ = false;
  bool common_value_ = false;
};

// Components reading from a shared beacon. `beacon` must outlive every
// component and be registered as a listener on the engine.
CoinSpec oracle_coin_spec(std::shared_ptr<OracleBeacon> beacon);

}  // namespace ssbft
