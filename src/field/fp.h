// Arithmetic in the prime field Z_p with a runtime modulus.
//
// The Feldman-Micali-style coin (Remark 2.3) needs a prime p > n; we default
// to the Mersenne prime 2^61 - 1 so secrets have ~61 bits of entropy and the
// parity of a uniform element is a (1/2 ± 2^-61) coin. Values are plain
// uint64_t in [0, p); the field object carries the modulus. This keeps
// element storage flat (vectors of uint64_t) which matters for the O(n^2)
// share matrices the VSS moves around.
//
// Two arithmetic backends sit behind one API, selected once at construction:
//
//   * Mersenne-61 fast path (the default prime): a 128-bit product reduces
//     with two shift/add folds and one conditional subtract — no hardware
//     division anywhere on the hot path.
//   * Generic fallback for arbitrary runtime primes: the product reduces
//     with `unsigned __int128 % p`. This is also the reference the fast
//     path is property-tested against (tests/field_test.cpp).
//
// Both backends compute the same canonical representative for every input,
// so switching between them is bit-exact.
//
// The scalar ops keep the contract checks from support/check.h; the batch
// kernels (mul_vec, eval_many, batch_inv, ...) hoist validation and the
// backend dispatch out of the element loop — callers must pass canonical
// elements (the kernels' inputs always come from already-validated flat
// storage in this codebase).
//
// SIMD dispatch design (field/fp_simd.h): on the Mersenne-61 fast path the
// batch kernels can additionally route to a runtime-selected vector
// backend (AVX2 today; the m61simd seam admits a NEON backend the same
// way). The decision is made ONCE, at PrimeField construction — the ctor
// probes m61simd::available() (a cached CPUID check) and latches `simd_`;
// the kernels branch on that bool per call, never per element. The scalar
// loops remain the bit-exact reference: every backend produces the unique
// canonical representative of the same field result, so replays, wire
// bytes and trace commitments are identical on every path. Building with
// -DSSBFT_SIMD=off compiles the vector backend out entirely, and tests can
// force the reference path per instance via SimdMode::kOff.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.h"
#include "support/rng.h"

namespace ssbft {

// Backend selection for the Mersenne-61 batch kernels. kAuto picks the
// vector backend iff one is compiled in and the CPU supports it; kOff
// pins the scalar reference path (the property tests compare the two).
enum class SimdMode { kAuto, kOff };

class PrimeField {
 public:
  // Largest prime we use by default: 2^61 - 1.
  static constexpr std::uint64_t kDefaultPrime = 2305843009213693951ULL;

  // p must be prime (checked with Miller-Rabin) and >= 2.
  explicit PrimeField(std::uint64_t p = kDefaultPrime,
                      SimdMode simd = SimdMode::kAuto);

  std::uint64_t modulus() const { return p_; }

  // True iff v is a canonical representative (< p).
  bool valid(std::uint64_t v) const { return v < p_; }

  // Bits needed for a canonical representative: bit width of p - 1 (never
  // 0; p >= 2). The compact wire codec packs field elements at this width.
  unsigned value_bits() const {
    unsigned bits = 0;
    for (std::uint64_t m = p_ - 1; m != 0; m >>= 1) ++bits;
    return bits == 0 ? 1 : bits;
  }

  // Canonicalize an arbitrary 64-bit value (used on untrusted input).
  std::uint64_t reduce(std::uint64_t v) const {
    if (mersenne61_) {
      const std::uint64_t s = (v & kDefaultPrime) + (v >> 61);
      return s >= kDefaultPrime ? s - kDefaultPrime : s;
    }
    return v % p_;
  }

  std::uint64_t add(std::uint64_t a, std::uint64_t b) const {
    SSBFT_CHECK(a < p_ && b < p_);
    std::uint64_t s = a + b;  // p may exceed 2^63: detect wraparound too
    if (s < a || s >= p_) s -= p_;
    return s;
  }

  std::uint64_t sub(std::uint64_t a, std::uint64_t b) const {
    SSBFT_CHECK(a < p_ && b < p_);
    return a >= b ? a - b : a + (p_ - b);
  }

  std::uint64_t neg(std::uint64_t a) const {
    SSBFT_CHECK(a < p_);
    return a == 0 ? 0 : p_ - a;
  }

  std::uint64_t mul(std::uint64_t a, std::uint64_t b) const {
    SSBFT_CHECK(a < p_ && b < p_);
    const unsigned __int128 t = static_cast<unsigned __int128>(a) * b;
    if (mersenne61_) return fold61(t);
    return static_cast<std::uint64_t>(t % p_);
  }

  std::uint64_t pow(std::uint64_t a, std::uint64_t e) const;

  // Multiplicative inverse via extended Euclid; a must be nonzero.
  std::uint64_t inv(std::uint64_t a) const;

  // --- batch kernels ------------------------------------------------------
  //
  // All array arguments must hold canonical elements; `out` may alias an
  // input only where noted. The backend dispatch happens once per call.

  // out[i] = a[i] * b[i]. out may alias a or b.
  void mul_vec(const std::uint64_t* a, const std::uint64_t* b,
               std::uint64_t* out, std::size_t len) const;

  // out[i] = a[i] * c. out may alias a.
  void scale_vec(const std::uint64_t* a, std::uint64_t c, std::uint64_t* out,
                 std::size_t len) const;

  // dst[i] -= c * src[i] (the Gaussian-elimination row update). dst must
  // not alias src.
  void submul_vec(std::uint64_t* dst, const std::uint64_t* src,
                  std::uint64_t c, std::size_t len) const;

  // dst[i] += c * src[i] (the bivariate row accumulation). dst must not
  // alias src.
  void addmul_vec(std::uint64_t* dst, const std::uint64_t* src,
                  std::uint64_t c, std::size_t len) const;

  // sum_i a[i] * b[i] — the Lagrange-row dot products of the GVSS recover
  // fast path. Modular addition is associative, so any internal
  // accumulation order yields the same canonical result.
  std::uint64_t dot(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t len) const;

  // Horner evaluation of sum_i coeffs[i] x^i (count coefficients,
  // little-endian). count == 0 yields 0.
  std::uint64_t horner(const std::uint64_t* coeffs, std::size_t count,
                       std::uint64_t x) const;

  // out[k] = Horner(coeffs, xs[k]) for k < m: one polynomial over a point
  // set, with the dispatch and bounds work hoisted out of the loop.
  void eval_many(const std::uint64_t* coeffs, std::size_t count,
                 const std::uint64_t* xs, std::size_t m,
                 std::uint64_t* out) const;

  // Montgomery batch inversion: replaces vals[i] with vals[i]^-1 using a
  // single inv() and 3(len-1) multiplications. All vals must be nonzero.
  // scratch must hold len elements and not alias vals.
  void batch_inv(std::uint64_t* vals, std::size_t len,
                 std::uint64_t* scratch) const;

  // Uniformly random element of [0, p).
  std::uint64_t uniform(Rng& rng) const;
  // Uniformly random nonzero element.
  std::uint64_t uniform_nonzero(Rng& rng) const;

  // True iff the batch kernels route to a vector backend (decided once at
  // construction; identical results either way).
  bool simd_active() const { return simd_; }

  bool operator==(const PrimeField& o) const { return p_ == o.p_; }

  // Reduces t < 2^122 modulo 2^61 - 1: two shift/add folds bring the value
  // under 2^61 + 1, then one conditional subtract canonicalizes. The one
  // definition of the Mersenne fold — the batch kernels call it too, so
  // scalar and vector paths cannot drift apart.
  static std::uint64_t fold61(unsigned __int128 t) {
    std::uint64_t s = (static_cast<std::uint64_t>(t) & kDefaultPrime) +
                      static_cast<std::uint64_t>(t >> 61);  // < 2^62
    s = (s & kDefaultPrime) + (s >> 61);                    // <= 2^61
    return s >= kDefaultPrime ? s - kDefaultPrime : s;
  }

 private:
  // Four-lane Montgomery batch inversion: the prefix/unwind passes run on
  // the vector backend over four chunks, joined by one scalar inv().
  void batch_inv_m61_lanes(std::uint64_t* vals, std::size_t len,
                           std::uint64_t* scratch) const;

  std::uint64_t p_;
  bool mersenne61_;
  bool simd_;
};

}  // namespace ssbft
