// Convergence measurement: the k-Clock problem's convergence + closure
// conditions (Definitions 3.1/3.2) turned into a detector.
//
// The system counts as converged at beat r when, at the end of every beat
// from r onward (up to the measurement horizon), all correct clocks are
// equal AND successive beats increment by exactly one mod k. Requiring a
// confirmation window rejects coincidental equality (e.g. an all-? 2-clock
// state) without ever mis-measuring: for every protocol in this library,
// closure after genuine convergence is deterministic.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/engine.h"

namespace ssbft {

struct ConvergenceConfig {
  // Give up after this many beats.
  std::uint64_t max_beats = 10'000;
  // Beats of sustained synced-and-incrementing behavior required before
  // declaring convergence. Must be >= 1 (0 would trivially "converge" on
  // the first beat).
  std::uint64_t confirm_window = 12;
};

struct ConvergenceResult {
  bool converged = false;
  // First beat index (0-based) at the end of which the system was synced
  // and stayed synced. Meaningful only when converged.
  Beat synced_at = 0;
  // Beats actually simulated.
  Beat beats_run = 0;
};

// Runs the engine beat by beat until convergence is confirmed or the
// budget runs out. The engine may have already run some beats.
ConvergenceResult measure_convergence(Engine& engine,
                                      const ConvergenceConfig& cfg = {});

// True iff all correct clocks are currently equal.
bool clocks_agree(const Engine& engine);

}  // namespace ssbft
