#include "support/rng.h"

#include "support/check.h"

namespace ssbft {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::uint64_t seed, std::string_view label) {
  // FNV-1a over the label, then one splitmix64 round folded with the seed.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t s = seed ^ h;
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) : origin_seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next_u64() {
  // xoshiro256** by Blackman & Vigna (public domain reference code).
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SSBFT_REQUIRE(bound != 0);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` that fits in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  SSBFT_REQUIRE(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return next_u64();
  return lo + next_below(span + 1);
}

bool Rng::next_bool() { return (next_u64() >> 63) != 0; }

bool Rng::next_bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_double() {
  // 53 high bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::split(std::string_view label) const {
  return Rng(hash_label(origin_seed_, label));
}

Rng Rng::split(std::string_view label, std::uint64_t index) const {
  std::uint64_t base = hash_label(origin_seed_, label);
  std::uint64_t s = base ^ (index * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  return Rng(splitmix64(s));
}

}  // namespace ssbft
