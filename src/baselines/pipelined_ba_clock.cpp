#include "baselines/pipelined_ba_clock.h"

#include <map>
#include <optional>

#include "sim/trace.h"
#include "support/check.h"

namespace ssbft {

PipelinedBaClock::PipelinedBaClock(const ProtocolEnv& env, ClockValue k,
                                   const BaSpec& spec, Rng rng, ChannelId base)
    : env_(env),
      k_(k),
      spec_(spec),
      base_(base),
      rng_(rng),
      rounds_(spec.rounds_for(env.f)) {
  SSBFT_REQUIRE(k >= 1 && rounds_ >= 1);
  clock_channel_ = static_cast<ChannelId>(base_ + rounds_);
  slots_.reserve(static_cast<std::size_t>(rounds_));
  for (int j = 0; j < rounds_; ++j) slots_.push_back(fresh_instance());
}

std::unique_ptr<BaInstance> PipelinedBaClock::fresh_instance() {
  // Input = the value the clock should hold when this instance completes,
  // R+1 beats from the state it samples (created at the end of beat t,
  // adopted at the end of beat t+R).
  const std::uint64_t predicted =
      (clock_ % k_ + static_cast<std::uint64_t>(rounds_) + 1) % k_;
  auto inst = spec_.make(env_, predicted, rng_.split("ba", rng_.next_u64()));
  SSBFT_CHECK(inst != nullptr);
  SSBFT_CHECK(inst->rounds() == rounds_);
  return inst;
}

void PipelinedBaClock::send_phase(Outbox& out) {
  for (int j = 0; j < rounds_; ++j) {
    slots_[static_cast<std::size_t>(j)]->send_round(j + 1, out, base_);
  }
  ByteWriter& w = out.writer();
  w.u64(clock_ % k_);
  out.broadcast(clock_channel_, w.data());
}

void PipelinedBaClock::receive_phase(const Inbox& in) {
  // Quorum scan over this beat's clock broadcasts.
  std::map<ClockValue, std::uint32_t> counts;
  for (const Bytes* p : in.first_per_sender(clock_channel_)) {
    if (p == nullptr) continue;
    ByteReader r(*p);
    const std::uint64_t v = r.u64();
    if (!r.at_end() || v >= k_) continue;
    ++counts[v];
  }
  std::optional<ClockValue> strong;
  for (const auto& [v, c] : counts) {
    if (c >= env_.n - env_.f) {
      strong = v;  // unique: two n-f quorums intersect in a correct node
      break;
    }
  }

  for (int j = 0; j < rounds_; ++j) {
    slots_[static_cast<std::size_t>(j)]->receive_round(j + 1, in, base_);
  }
  const std::uint64_t agreed = slots_.back()->output();

  quorum_step_ = strong.has_value();
  if (strong) {
    // Deterministic closure branch: all correct nodes equal => everyone
    // sees the quorum and steps identically, forever.
    clock_ = (*strong + 1) % k_;
  } else {
    // Reconciliation branch: agreement makes this value common across all
    // nodes that take it; one common beat later the quorum branch locks in.
    clock_ = agreed % k_;
  }

  for (std::size_t j = slots_.size() - 1; j > 0; --j) {
    slots_[j] = std::move(slots_[j - 1]);
  }
  slots_[0] = fresh_instance();
}

void PipelinedBaClock::randomize_state(Rng& rng) {
  clock_ = rng.next_u64() % (2 * k_);
  for (auto& s : slots_) s->randomize_state(rng);
}

void PipelinedBaClock::trace_state(TraceEmitter& em) const {
  em.phase(clock_channel_, quorum_step_ ? 1 : 0);
}

}  // namespace ssbft
