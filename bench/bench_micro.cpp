// Microbenchmarks (google-benchmark): the hot paths under every
// experiment — field arithmetic, polynomial evaluation, Lagrange
// interpolation, Berlekamp-Welch decoding (clean fast path vs adversarial
// slow path), GVSS dealing, and whole-engine beat throughput for the full
// ss-Byz-Clock-Sync stack.
#include <benchmark/benchmark.h>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "coin/gvss.h"
#include "core/clock_sync.h"
#include "field/reed_solomon.h"
#include "sim/engine.h"

namespace ssbft {
namespace {

void BM_FieldMul(benchmark::State& state) {
  PrimeField F;
  Rng rng(1);
  std::uint64_t a = F.uniform(rng), b = F.uniform(rng);
  for (auto _ : state) {
    a = F.mul(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldMul);

void BM_FieldInv(benchmark::State& state) {
  PrimeField F;
  Rng rng(2);
  std::uint64_t a = F.uniform_nonzero(rng);
  for (auto _ : state) {
    a = F.inv(a);
    benchmark::DoNotOptimize(a);
    if (a == 0) a = 1;
  }
}
BENCHMARK(BM_FieldInv);

// --- Field batch-kernel benchmarks ------------------------------------------
//
// The kernels behind the FM coin's share-matrix arithmetic. CI smokes these
// together with BM_FullStackBeat (filter BM_FieldKernels|BM_FullStackBeat)
// so the perf path cannot rot silently.

void BM_FieldKernels_MulVec(benchmark::State& state) {
  PrimeField F;
  Rng rng(21);
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> a(len), b(len), out(len);
  for (std::size_t i = 0; i < len; ++i) {
    a[i] = F.uniform(rng);
    b[i] = F.uniform(rng);
  }
  for (auto _ : state) {
    F.mul_vec(a.data(), b.data(), out.data(), len);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_FieldKernels_MulVec)->Arg(64)->Arg(1024);

void BM_FieldKernels_BatchInv(benchmark::State& state) {
  PrimeField F;
  Rng rng(22);
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> vals(len), scratch(len);
  for (auto& v : vals) v = F.uniform_nonzero(rng);
  for (auto _ : state) {
    // Involution: inverting twice restores the inputs, so the working set
    // stays nonzero across iterations.
    F.batch_inv(vals.data(), len, scratch.data());
    benchmark::DoNotOptimize(vals.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_FieldKernels_BatchInv)->Arg(16)->Arg(256);

void BM_FieldKernels_EvalMany(benchmark::State& state) {
  PrimeField F;
  Rng rng(23);
  const auto deg = static_cast<int>(state.range(0));
  const auto m = static_cast<std::size_t>(state.range(1));
  Poly p = Poly::random(F, deg, rng);
  std::vector<std::uint64_t> xs(m), out(m);
  for (auto& x : xs) x = F.uniform(rng);
  for (auto _ : state) {
    F.eval_many(p.coeffs().data(), p.coeffs().size(), xs.data(), m,
                out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m));
}
BENCHMARK(BM_FieldKernels_EvalMany)
    ->ArgNames({"deg", "pts"})
    ->Args({2, 16})->Args({4, 64})->Args({8, 64});

// --- Wide-shape kernel benchmarks ------------------------------------------
//
// The large-n scaling grid's shapes: length-n vectors and (f+1)-degree
// row evaluations at n points for n up to 128, the loops the runtime-
// dispatched SIMD backends target. Rerun against a -DSSBFT_SIMD=off build
// for the scalar reference on identical inputs.

void BM_FieldKernelsWide_MulVec(benchmark::State& state) {
  PrimeField F;
  Rng rng(31);
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> a(len), b(len), out(len);
  for (std::size_t i = 0; i < len; ++i) {
    a[i] = F.uniform(rng);
    b[i] = F.uniform(rng);
  }
  for (auto _ : state) {
    F.mul_vec(a.data(), b.data(), out.data(), len);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_FieldKernelsWide_MulVec)->ArgName("n")->Arg(32)->Arg(128);

void BM_FieldKernelsWide_EvalMany(benchmark::State& state) {
  // One dealing-row evaluation at every node point: degree f = (n-1)/3,
  // n points — recv_deal runs n of these per beat per node.
  PrimeField F;
  Rng rng(32);
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  Poly p = Poly::random(F, static_cast<int>(f), rng);
  std::vector<std::uint64_t> xs(n), out(n);
  for (auto& x : xs) x = F.uniform(rng);
  for (auto _ : state) {
    F.eval_many(p.coeffs().data(), p.coeffs().size(), xs.data(), n,
                out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FieldKernelsWide_EvalMany)->ArgName("n")->Arg(32)->Arg(64)
    ->Arg(128);

void BM_FieldKernelsWide_BatchInv(benchmark::State& state) {
  PrimeField F;
  Rng rng(33);
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> vals(len), scratch(len);
  for (auto& v : vals) v = F.uniform_nonzero(rng);
  for (auto _ : state) {
    F.batch_inv(vals.data(), len, scratch.data());
    benchmark::DoNotOptimize(vals.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_FieldKernelsWide_BatchInv)->ArgName("n")->Arg(32)->Arg(128);

void BM_FieldKernels_ScalarInv(benchmark::State& state) {
  // Extended-Euclid scalar inverse (the batch path amortizes this away;
  // kept visible so regressions in the scalar route are caught too).
  PrimeField F;
  Rng rng(24);
  std::uint64_t a = F.uniform_nonzero(rng);
  for (auto _ : state) {
    a = F.inv(a);
    benchmark::DoNotOptimize(a);
    if (a == 0) a = 1;
  }
}
BENCHMARK(BM_FieldKernels_ScalarInv);

void BM_PolyEval(benchmark::State& state) {
  PrimeField F;
  Rng rng(3);
  Poly p = Poly::random(F, static_cast<int>(state.range(0)), rng);
  std::uint64_t x = 12345;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.eval(F, x));
  }
}
BENCHMARK(BM_PolyEval)->Arg(2)->Arg(4)->Arg(8);

void BM_LagrangeInterpolate(benchmark::State& state) {
  PrimeField F;
  Rng rng(4);
  const int deg = static_cast<int>(state.range(0));
  Poly p = Poly::random(F, deg, rng);
  std::vector<std::uint64_t> xs, ys;
  for (int i = 0; i <= deg; ++i) {
    xs.push_back(static_cast<std::uint64_t>(i + 1));
    ys.push_back(p.eval(F, static_cast<std::uint64_t>(i + 1)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lagrange_interpolate(F, xs, ys));
  }
}
BENCHMARK(BM_LagrangeInterpolate)->Arg(2)->Arg(4)->Arg(8);

// Clean shares: gvss_recover's interpolation fast path.
void BM_GvssRecoverClean(benchmark::State& state) {
  PrimeField F;
  Rng rng(5);
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  auto dealing = GvssDealing::sample(F, f, rng);
  std::vector<RsPoint> shares;
  for (NodeId i = 0; i < n; ++i) {
    shares.push_back({node_point(i), Poly(dealing.row_for(F, i)).eval(F, 0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gvss_recover(F, f, shares));
  }
}
BENCHMARK(BM_GvssRecoverClean)->Arg(1)->Arg(2)->Arg(4);

// f lying shares: the Berlekamp-Welch slow path.
void BM_GvssRecoverAdversarial(benchmark::State& state) {
  PrimeField F;
  Rng rng(6);
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  auto dealing = GvssDealing::sample(F, f, rng);
  std::vector<RsPoint> shares;
  for (NodeId i = 0; i < n; ++i) {
    std::uint64_t y = Poly(dealing.row_for(F, i)).eval(F, 0);
    if (i < f) y = F.uniform(rng);
    shares.push_back({node_point(i), y});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gvss_recover(F, f, shares));
  }
}
BENCHMARK(BM_GvssRecoverAdversarial)->Arg(1)->Arg(2)->Arg(4);

void BM_GvssDealing(benchmark::State& state) {
  PrimeField F;
  Rng rng(7);
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  for (auto _ : state) {
    auto d = GvssDealing::sample(F, f, rng);
    for (NodeId i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(d.row_for(F, i));
    }
  }
}
BENCHMARK(BM_GvssDealing)->Arg(1)->Arg(2)->Arg(4);

// --- Beat-loop plumbing benchmarks ----------------------------------------
//
// Measures the engine's per-beat message plumbing (outbox fill, adversary
// observation, delivery, inbox bucketing) with deliberately cheap protocol
// logic, so the numbers isolate the send/deliver/receive path rather than
// field arithmetic. Modes: 0 = all-correct, 1 = with a flooding adversary,
// 2 = adversary + a permanently faulty network injecting phantoms.

// Broadcasts a fixed-size payload on two channels and tallies what arrives.
class BeatLoopProtocol final : public ClockProtocol {
 public:
  explicit BeatLoopProtocol(const ProtocolEnv& env) : env_(env) {}

  void send_phase(Outbox& out) override {
    w_.clear();
    w_.u32(env_.self);
    w_.u64(state_);
    out.broadcast(0, w_.data());
    w_.clear();
    w_.u64(state_ ^ 0x9e3779b97f4a7c15ull);
    out.broadcast(1, w_.data());
  }

  void receive_phase(const Inbox& in) override {
    std::uint64_t acc = 0;
    for (ChannelId ch = 0; ch < 2; ++ch) {
      const auto payloads = in.first_per_sender(ch);
      for (const Bytes* p : payloads) {
        if (p == nullptr) continue;
        ByteReader r(*p);
        if (ch == 0) (void)r.u32();
        acc += r.u64();
        if (!r.at_end()) ++garbage_;
      }
    }
    state_ += acc + 1;
  }

  void randomize_state(Rng& rng) override { state_ = rng.next_u64(); }
  ClockValue clock() const override { return state_ % 4; }
  ClockValue modulus() const override { return 4; }
  std::uint32_t channel_count() const override { return 2; }

 private:
  ProtocolEnv env_;
  ByteWriter w_;
  std::uint64_t state_ = 0;
  std::uint64_t garbage_ = 0;
};

// Each faulty node floods both channels with equivocating per-recipient
// payloads, exercising the adversary-observation and delivery paths.
class BeatLoopAdversary final : public Adversary {
 public:
  void act(AdversaryContext& ctx) override {
    for (NodeId from : ctx.faulty()) {
      for (NodeId to = 0; to < ctx.n(); ++to) {
        w_.clear();
        w_.u32(from);
        w_.u64(ctx.beat() * 2 + (to % 2));
        ctx.send(from, to, 0, w_.data());
      }
    }
  }

 private:
  ByteWriter w_;
};

void BM_BeatLoop(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto mode = static_cast<int>(state.range(1));
  const std::uint32_t f = mode == 0 ? 0 : (n - 1) / 3;
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = 21;
  cfg.metrics_history_limit = 8;  // measure the allocation-free configuration
  if (mode == 2) {
    // Permanently faulty network: phantom traffic on every beat.
    cfg.faults.network_faulty_until = ~std::uint64_t{0};
    cfg.faults.phantoms_per_beat = 2;
    cfg.faults.phantom_max_len = 24;
  }
  auto factory = [](const ProtocolEnv& env, Rng) {
    return std::make_unique<BeatLoopProtocol>(env);
  };
  Engine eng(cfg, factory,
             f > 0 ? std::unique_ptr<Adversary>(new BeatLoopAdversary)
                   : nullptr);
  eng.run_beats(8);  // settle buffers before timing
  for (auto _ : state) {
    eng.run_beat();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["msgs_per_beat"] =
      eng.metrics().mean_correct_messages_per_beat();
}
BENCHMARK(BM_BeatLoop)
    ->ArgNames({"n", "mode"})
    ->Args({4, 0})->Args({4, 1})->Args({4, 2})
    ->Args({16, 0})->Args({16, 1})->Args({16, 2})
    ->Args({64, 0})->Args({64, 1})->Args({64, 2});

// Broadcast-heavy variant: every node broadcasts an n-word vector on each
// of four channels per beat — the FM coin's GVSS traffic shape. This is
// the path the copy-once payload fabric targets: with shared payloads the
// per-beat memcpy volume is O(n * B) (one encode per broadcast) instead of
// O(n^2 * B) (one copy per recipient).
class BroadcastHeavyProtocol final : public ClockProtocol {
 public:
  explicit BroadcastHeavyProtocol(const ProtocolEnv& env)
      : env_(env), vec_(env.n) {}

  void send_phase(Outbox& out) override {
    for (ChannelId ch = 0; ch < 4; ++ch) {
      for (std::uint32_t i = 0; i < env_.n; ++i) {
        vec_[i] = state_ + ch * 1000 + i;
      }
      ByteWriter& w = out.writer();
      w.u64_vec(vec_.data(), vec_.size());
      out.broadcast(ch, w.data());
    }
  }

  void receive_phase(const Inbox& in) override {
    std::uint64_t acc = 0;
    for (ChannelId ch = 0; ch < 4; ++ch) {
      for (const Bytes* p : in.first_per_sender(ch)) {
        if (p == nullptr) continue;
        ByteReader r(*p);
        acc += r.u64_vec_into(vec_.data(), vec_.size());
      }
    }
    state_ += acc + 1;
  }

  void randomize_state(Rng& rng) override { state_ = rng.next_u64(); }
  ClockValue clock() const override { return state_ % 4; }
  ClockValue modulus() const override { return 4; }
  std::uint32_t channel_count() const override { return 4; }

 private:
  ProtocolEnv env_;
  std::vector<std::uint64_t> vec_;
  std::uint64_t state_ = 0;
};

void BM_BeatLoopBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t f = (n - 1) / 3;
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = 23;
  cfg.metrics_history_limit = 8;
  auto factory = [](const ProtocolEnv& env, Rng) {
    return std::make_unique<BroadcastHeavyProtocol>(env);
  };
  Engine eng(cfg, factory,
             f > 0 ? std::unique_ptr<Adversary>(new BeatLoopAdversary)
                   : nullptr);
  eng.run_beats(8);  // settle buffers before timing
  for (auto _ : state) {
    eng.run_beat();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["bytes_per_beat"] =
      eng.metrics().mean_correct_bytes_per_beat();
}
BENCHMARK(BM_BeatLoopBroadcast)->ArgName("n")->Arg(4)->Arg(16)->Arg(64);

// Whole-stack beat throughput: ss-Byz-Clock-Sync + FM coin + skew attack.
void BM_FullStackBeat(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = 9;
  CoinSpec spec = fm_coin_spec();
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 64, spec, rng);
  };
  Engine eng(cfg, factory, make_clock_skew_adversary(64, 0));
  for (auto _ : state) {
    eng.run_beat();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullStackBeat)->Arg(1)->Arg(2);

// Large-n full stack: the scaling-grid configurations (f = (n-1)/3), the
// workloads the SIMD kernels target end to end.
void BM_FullStackBeatLarge(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t f = (n - 1) / 3;
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = 12;
  cfg.metrics_history_limit = 8;
  CoinSpec spec = fm_coin_spec();
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 64, spec, rng);
  };
  Engine eng(cfg, factory, make_clock_skew_adversary(64, 0));
  eng.run_beats(2);  // settle buffers before timing
  for (auto _ : state) {
    eng.run_beat();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullStackBeatLarge)
    ->ArgName("n")
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Oracle-coin stack: the protocol-logic cost with coin traffic removed.
void BM_OracleStackBeat(benchmark::State& state) {
  const auto f = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t n = 3 * f + 1;
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = 10;
  auto beacon = std::make_shared<OracleBeacon>(n, OracleCoinParams{0.45, 0.45},
                                               Rng(11));
  CoinSpec spec = oracle_coin_spec(beacon);
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 64, spec, rng);
  };
  Engine eng(cfg, factory, make_clock_skew_adversary(64, 0));
  eng.add_listener(beacon.get());
  for (auto _ : state) {
    eng.run_beat();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OracleStackBeat)->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace ssbft

BENCHMARK_MAIN();
