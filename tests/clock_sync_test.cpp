// Tests for ss-Byz-Clock-Sync (Figure 4, Theorem 4): the k-Clock for any
// k, including the Lemma 6 closure timeline and full-stack adversarial
// runs.
#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "coin/oracle_coin.h"
#include "core/clock_sync.h"
#include "harness/convergence.h"
#include "harness/runner.h"
#include "support/check.h"

namespace ssbft {
namespace {

struct KParam {
  std::uint32_t n;
  std::uint32_t f;
  ClockValue k;
  bool skew_attack;
};

EngineBundle build_clock_sync(const KParam& p, std::uint64_t seed) {
  auto beacon = std::make_shared<OracleBeacon>(
      p.n, OracleCoinParams{0.45, 0.45}, Rng(seed).split("beacon"));
  CoinSpec spec = oracle_coin_spec(beacon);
  EngineConfig cfg;
  cfg.n = p.n;
  cfg.f = p.f;
  cfg.faulty = EngineConfig::last_ids_faulty(p.n, p.f);
  cfg.seed = seed;
  std::unique_ptr<Adversary> adv;
  if (p.f > 0) {
    adv = p.skew_attack ? make_clock_skew_adversary(p.k, 0)
                        : make_random_noise_adversary(6, 32);
  }
  auto factory = [spec, k = p.k](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, k, spec, rng);
  };
  EngineBundle bundle;
  bundle.engine = std::make_unique<Engine>(cfg, factory, std::move(adv));
  bundle.engine->add_listener(beacon.get());
  bundle.keepalive = beacon;
  return bundle;
}

class ClockSyncTest : public ::testing::TestWithParam<KParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClockSyncTest,
    ::testing::Values(KParam{4, 1, 1, true}, KParam{4, 1, 2, true},
                      KParam{4, 1, 3, false}, KParam{4, 1, 4, true},
                      KParam{4, 1, 5, true}, KParam{4, 1, 8, false},
                      KParam{4, 1, 16, true}, KParam{7, 2, 10, true},
                      KParam{7, 2, 60, false}, KParam{7, 2, 1024, true},
                      KParam{10, 3, 100, true}, KParam{4, 0, 12, false},
                      KParam{4, 1, 1000000007ULL, true}));

TEST_P(ClockSyncTest, SolvesKClockFromArbitraryState) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto bundle = build_clock_sync(GetParam(), seed * 307);
    ConvergenceConfig cc;
    cc.max_beats = 6000;
    cc.confirm_window = 16;
    const auto res = measure_convergence(*bundle.engine, cc);
    ASSERT_TRUE(res.converged)
        << "k=" << GetParam().k << " seed=" << seed;
    // Closure (Lemma 6): +1 mod k every beat, forever.
    const ClockValue k = GetParam().k;
    auto prev = bundle.engine->correct_clocks().front();
    for (int i = 0; i < 24; ++i) {
      bundle.engine->run_beat();
      ASSERT_TRUE(clocks_agree(*bundle.engine));
      const auto cur = bundle.engine->correct_clocks().front();
      EXPECT_EQ(cur, (prev + 1) % k);
      prev = cur;
    }
  }
}

TEST(ClockSync, WrapAroundIsExact) {
  // Watch the clock cross k-1 -> 0 several times.
  auto bundle = build_clock_sync({4, 1, 6, false}, 17);
  ConvergenceConfig cc;
  cc.max_beats = 4000;
  ASSERT_TRUE(measure_convergence(*bundle.engine, cc).converged);
  int wraps = 0;
  auto prev = bundle.engine->correct_clocks().front();
  for (int i = 0; i < 40; ++i) {
    bundle.engine->run_beat();
    const auto cur = bundle.engine->correct_clocks().front();
    if (prev == 5) {
      EXPECT_EQ(cur, 0u);
      ++wraps;
    }
    prev = cur;
  }
  EXPECT_GE(wraps, 5);
}

TEST(ClockSync, ReconvergesAfterTransientFaultsAndPhantoms) {
  auto beacon = std::make_shared<OracleBeacon>(
      7, OracleCoinParams{0.45, 0.45}, Rng(23).split("beacon"));
  CoinSpec spec = oracle_coin_spec(beacon);
  EngineConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  cfg.faulty = {5, 6};
  cfg.seed = 23;
  cfg.faults.network_faulty_until = 8;
  cfg.faults.phantoms_per_beat = 10;
  cfg.faults.faulty_drop_prob = 0.25;
  cfg.faults.corruptions[40] = {0, 1};
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 24, spec, rng);
  };
  Engine eng(cfg, factory, make_clock_skew_adversary(24, 0));
  eng.add_listener(beacon.get());
  ConvergenceConfig cc;
  cc.max_beats = 6000;
  // One measurement across the corruption at beat 40: the detector demands
  // a *final* stable streak, so passing means it reconverged after it.
  eng.run_beats(60);
  EXPECT_TRUE(measure_convergence(eng, cc).converged);
}

TEST(ClockSync, SharedCoinModeWorks) {
  auto beacon = std::make_shared<OracleBeacon>(
      4, OracleCoinParams{0.45, 0.45}, Rng(29).split("beacon"));
  CoinSpec spec = oracle_coin_spec(beacon);
  EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.faulty = {3};
  cfg.seed = 29;
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 30, spec, rng, 0,
                                            CoinPipelineMode::kShared);
  };
  Engine eng(cfg, factory, make_clock_skew_adversary(30, 0));
  eng.add_listener(beacon.get());
  ConvergenceConfig cc;
  cc.max_beats = 6000;
  EXPECT_TRUE(measure_convergence(eng, cc).converged);
}

TEST(ClockSync, FullStackWithFmCoinAndAttacker) {
  // Everything at once: GVSS coin pipelines inside the 4-clock and the
  // phase-3 gamble, plus the dedicated FM attacker aimed at the outermost
  // coin's channels.
  CoinSpec spec = fm_coin_spec();
  EngineConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.faulty = {3};
  cfg.seed = 31;
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, 16, spec, rng);
  };
  // The outer coin pipeline sits after FULL/PROP/BIT (3) + the 4-clock.
  const auto coin_base = static_cast<ChannelId>(
      3 + SsByz4Clock::channels_needed(spec, CoinPipelineMode::kPerSubClock));
  Engine eng(cfg, factory,
             make_fm_coin_attacker(PrimeField::kDefaultPrime, coin_base));
  ConvergenceConfig cc;
  cc.max_beats = 3000;
  EXPECT_TRUE(measure_convergence(eng, cc).converged);
}

TEST(ClockSync, ChannelAccounting) {
  CoinSpec fm = fm_coin_spec();
  // 3 own + 10 (4-clock, two pipelines) + 4 (own pipeline) = 17.
  EXPECT_EQ(SsByzClockSync::channels_needed(fm, CoinPipelineMode::kPerSubClock),
            17u);
  // 3 own + 6 (4-clock shared) + 4 = 13.
  EXPECT_EQ(SsByzClockSync::channels_needed(fm, CoinPipelineMode::kShared),
            13u);
}

TEST(ClockSync, RejectsZeroK) {
  auto beacon = std::make_shared<OracleBeacon>(
      4, OracleCoinParams{0.45, 0.45}, Rng(1));
  CoinSpec spec = oracle_coin_spec(beacon);
  ProtocolEnv env{0, 4, 1};
  EXPECT_THROW(SsByzClockSync(env, 0, spec, Rng(1)), contract_error);
}

}  // namespace
}  // namespace ssbft
