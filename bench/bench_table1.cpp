// Table 1 reproduction — the paper's evaluation artifact.
//
// Paper's claim (synchronous-model rows):
//   [10]  probabilistic  O(2^(2(n-f)))  f < n/3
//   [15]  deterministic  O(f)           f < n/4
//   [7]   deterministic  O(f)           f < n/3
//   this  probabilistic  O(1)           f < n/3
//
// We measure expected convergence beats empirically across an (n, f) sweep
// for all four families (k = 64, skew/split adversaries, genesis-random
// state) and print the measured growth next to the theoretical class. The
// semi-synchronous rows of Table 1 are a different model and out of scope
// (DESIGN.md substitution 2).
#include <iostream>

#include "bench_common.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

TrialStats run(const EngineBuilder& builder, std::uint64_t trials,
               std::uint64_t max_beats, std::uint64_t seed0) {
  return run_trials(builder, runner_config(trials, seed0, max_beats));
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  std::cout << "=== Table 1 (PODC'08): measured convergence, synchronous "
               "model, k = 64 ===\n\n";

  // "det. bound" = the deterministic worst-case convergence guarantee
  // (pipeline depth + 2 for the BA clocks — grows linearly in f, the O(f)
  // column of Table 1; "-" for the randomized algorithms). Measured means
  // sit far below it because random garbage tends to collapse onto the
  // protocols' default values; the bound is what an adversarial initial
  // state can force.
  AsciiTable table({"algorithm", "paper bound", "resiliency", "n", "f",
                    "mean beats", "p90", "det. bound", "converged"});

  struct NF {
    std::uint32_t n, f;
  };
  const NF grid[] = {{4, 1}, {7, 2}, {10, 3}, {13, 4}};

  for (const auto [n, f] : grid) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 64;

    // [10] Dolev-Welch-style randomized: exponential. Budget-capped; the
    // larger sizes are expected to blow through the cap — that *is* the
    // result. (Split attack on its single clock channel.)
    {
      w.attack = Attack::kSplit;
      const std::uint64_t cap = 60000;
      auto s = run(build_dolev_welch(w), 10, cap, 1000 + n);
      table.add_row({"Dolev-Welch [10]", "O(2^(2(n-f)))", "f < n/3",
                     std::to_string(n), std::to_string(f),
                     s.converged ? fmt_double(s.mean, 0) : ">" + std::to_string(cap),
                     s.converged ? fmt_double(s.p90, 0) : "-", "-",
                     converged_cell(s)});
    }
    // [15] pipelined phase-queen: deterministic O(f), needs f < n/4 — run
    // at its own legal configuration (same n, f' = floor((n-1)/4)).
    {
      World wq = w;
      wq.f = (n - 1) / 4;
      wq.actual = wq.f;
      wq.attack = Attack::kSkew;
      auto s = run(build_pipelined(wq, /*king=*/false), 20, 4000, 2000 + n);
      const int bound = 2 + 2 * (static_cast<int>(wq.f) + 1) + 2 + 2;
      table.add_row({"pipelined queen [15]", "O(f)", "f < n/4",
                     std::to_string(n), std::to_string(wq.f), stat_cell(s),
                     fmt_double(s.p90, 0), std::to_string(bound),
                     converged_cell(s)});
    }
    // [7] pipelined TC+phase-king: deterministic O(f), f < n/3.
    {
      w.attack = Attack::kSkew;
      auto s = run(build_pipelined(w, /*king=*/true), 20, 4000, 3000 + n);
      const int bound = 2 + 3 * (static_cast<int>(f) + 1) + 2 + 2;
      table.add_row({"pipelined king [7]", "O(f)", "f < n/3",
                     std::to_string(n), std::to_string(f), stat_cell(s),
                     fmt_double(s.p90, 0), std::to_string(bound),
                     converged_cell(s)});
    }
    // This paper: ss-Byz-Clock-Sync, expected O(1).
    {
      w.attack = Attack::kSkew;
      w.coin = CoinKind::kOracle;
      auto s = run(build_clock_sync(w), 20, 8000, 4000 + n);
      table.add_row({"ss-Byz-Clock-Sync", "O(1) expected", "f < n/3",
                     std::to_string(n), std::to_string(f), stat_cell(s),
                     fmt_double(s.p90, 0), "-", converged_cell(s)});
    }
  }

  table.print(std::cout);
  std::cout << "\nsemi-synchronous rows of Table 1 ([10] row 2, [5,6]): "
               "not applicable (bounded-delay model; see DESIGN.md)\n";

  // Full-stack spot check: the paper's algorithm on the message-level FM
  // coin (n = 4 and 7), to show the O(1) shape is not an oracle artifact.
  std::cout << "\n--- ss-Byz-Clock-Sync on the full GVSS coin ---\n";
  AsciiTable fm_table({"n", "f", "adversary", "mean beats", "p90", "converged"});
  for (const auto [n, f] : {NF{4, 1}, NF{7, 2}}) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 64;
    w.coin = CoinKind::kFm;
    w.attack = Attack::kSkew;
    auto s = run(build_clock_sync(w), 10, 8000, 5000 + n);
    fm_table.add_row({std::to_string(n), std::to_string(f), "skew",
                      fmt_double(s.mean, 1), fmt_double(s.p90, 0),
                      converged_cell(s)});
  }
  fm_table.print(std::cout);

  std::cout << "\nCSV follows:\n";
  table.print_csv(std::cout);
  return 0;
}
