// Primality testing and prime selection.
//
// Remark 2.3: the coin protocol needs a prime p > n, computable in a single
// canonical way from n so that "the constants are part of the code" and a
// node recovering from a transient fault re-derives the same field.
#pragma once

#include <cstdint>

namespace ssbft {

// Deterministic Miller-Rabin, exact for all 64-bit integers (fixed witness
// set proven sufficient for < 3.3 * 10^24).
bool is_prime_u64(std::uint64_t n);

// The smallest prime strictly greater than n.
std::uint64_t smallest_prime_above(std::uint64_t n);

}  // namespace ssbft
