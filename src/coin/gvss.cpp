#include "coin/gvss.h"

#include "support/check.h"

namespace ssbft {

std::optional<Poly> validate_row(const PrimeField& F, std::uint32_t f,
                                 const std::vector<std::uint64_t>& coeffs) {
  if (coeffs.size() != std::size_t{f} + 1) return std::nullopt;
  for (std::uint64_t c : coeffs) {
    if (!F.valid(c)) return std::nullopt;
  }
  return Poly(coeffs);
}

bool gvss_happy(std::uint32_t n, std::uint32_t f, bool row_valid,
                std::uint32_t cross_matches) {
  return row_valid && cross_matches >= n - f;
}

GvssGrade gvss_grade(std::uint32_t n, std::uint32_t f, std::uint32_t votes) {
  if (votes >= n - f) return GvssGrade::kHigh;
  if (votes >= n - 2 * f) return GvssGrade::kLow;
  return GvssGrade::kNone;
}

std::optional<std::uint64_t> gvss_recover(const PrimeField& F, std::uint32_t f,
                                          const std::vector<RsPoint>& shares) {
  const int deg = static_cast<int>(f);
  if (shares.size() < std::size_t{f} + 1) return std::nullopt;
  // Fast path: the first f+1 shares define a candidate; if *every* share
  // agrees it is the unique degree-f codeword (zero errors).
  {
    std::vector<std::uint64_t> xs, ys;
    xs.reserve(f + 1);
    ys.reserve(f + 1);
    for (std::size_t i = 0; i <= f; ++i) {
      xs.push_back(shares[i].x);
      ys.push_back(shares[i].y);
    }
    const Poly cand = lagrange_interpolate(F, xs, ys);
    if (cand.degree() <= deg && count_disagreements(F, cand, shares) == 0) {
      return cand.eval(F, 0);
    }
  }
  auto decoded = berlekamp_welch(F, shares, deg, static_cast<int>(f));
  if (!decoded) return std::nullopt;
  return decoded->eval(F, 0);
}

GvssDealing GvssDealing::sample(const PrimeField& F, std::uint32_t f,
                                Rng& rng) {
  const std::uint64_t secret = F.uniform(rng);
  return GvssDealing(
      SymmetricBivariate::sample(F, static_cast<int>(f), secret, rng));
}

std::vector<std::uint64_t> GvssDealing::row_for(const PrimeField& F,
                                                NodeId to) const {
  Poly row = poly_.row(F, node_point(to));
  std::vector<std::uint64_t> coeffs = row.coeffs();
  // Pad to exactly f+1 coefficients (normalization may have dropped
  // trailing zeros; receivers expect a fixed width).
  coeffs.resize(static_cast<std::size_t>(poly_.degree()) + 1, 0);
  return coeffs;
}

}  // namespace ssbft
