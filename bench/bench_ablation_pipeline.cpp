// Remark 4.1 ablation: ss-Byz-4-Clock (and the full k-clock stack) with one
// coin-flipping pipeline per 2-clock vs a single shared pipeline.
// Measures correct-node traffic (the remark's "message complexity"
// improvement) and convergence (the remark predicts a constant-factor
// change at most).
#include <iostream>

#include "bench_common.h"
#include "harness/convergence.h"

using namespace ssbft;
using namespace ssbft::bench;

namespace {

EngineBuilder build_clock_sync_mode(World w, CoinPipelineMode mode) {
  return [w, mode](std::uint64_t seed) {
    EngineBundle b;
    CoinSpec spec = fm_coin_spec();
    auto adv = make_attack(w.attack, w.k, 0);
    auto factory = [spec, k = w.k, mode](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByzClockSync>(env, k, spec, rng, 0, mode);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    return b;
  };
}

EngineBuilder build_clock4_mode(World w, CoinPipelineMode mode) {
  return [w, mode](std::uint64_t seed) {
    EngineBundle b;
    CoinSpec spec = fm_coin_spec();
    auto adv = make_attack(w.attack, 4, 0);
    auto factory = [spec, mode](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByz4Clock>(env, spec, 0, rng, mode);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    return b;
  };
}

void report(const std::string& name, const EngineBuilder& builder,
            AsciiTable& t) {
  auto s = run_trials(builder, runner_config(12, 70, 6000));
  t.add_row({name, fmt_double(s.mean, 1), fmt_double(s.p90, 0),
             converged_cell(s), fmt_double(s.mean_msgs_per_beat, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  parse_cli(argc, argv);
  std::cout << "=== Remark 4.1 ablation: per-sub-clock vs shared coin "
               "pipeline (full FM coin, n = 4, f = 1, noise) ===\n\n";
  AsciiTable t({"configuration", "mean beats", "p90", "converged",
                "msgs/beat"});
  World w;
  w.n = 4;
  w.f = 1;
  w.actual = 1;
  w.k = 32;
  w.attack = Attack::kNoise;

  report("4-clock, two pipelines (Fig. 3)",
         build_clock4_mode(w, CoinPipelineMode::kPerSubClock), t);
  report("4-clock, shared pipeline (Rem. 4.1)",
         build_clock4_mode(w, CoinPipelineMode::kShared), t);
  report("k-clock k=32, two pipelines",
         build_clock_sync_mode(w, CoinPipelineMode::kPerSubClock), t);
  report("k-clock k=32, shared pipeline",
         build_clock_sync_mode(w, CoinPipelineMode::kShared), t);

  t.print(std::cout);
  std::cout << "\nexpected shape: shared pipeline cuts messages/beat by a "
               "constant factor with comparable expected convergence.\n";
  std::cout << "\nCSV follows:\n";
  t.print_csv(std::cout);
  return 0;
}
