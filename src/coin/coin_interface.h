// Coin-flipping interfaces mirroring Definitions 2.6-2.8.
//
// Two layers:
//
//  * CoinInstance — one invocation of a probabilistic coin-flipping
//    algorithm A (Definition 2.6): a fixed number of synchronous rounds,
//    after the last of which it emits one bit. Instances are the unit the
//    ss-Byz-Coin-Flip pipeline (Figure 1) stacks.
//
//  * CoinComponent — a self-stabilizing coin-flipping algorithm C
//    (Definition 2.8) embeddable in a host protocol: every host beat it
//    sends messages (send_phase) and yields one bit (receive_phase). After
//    its convergence time it behaves as a pipelined probabilistic
//    coin-flipping algorithm (Definition 2.7): one common-with-constant-
//    probability bit per beat.
//
// Hosts allocate each embedded component a contiguous channel range
// starting at `base`; the component must use only
// [base, base + CoinSpec::channels).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/message.h"
#include "sim/protocol.h"
#include "support/rng.h"

namespace ssbft {

class CoinInstance {
 public:
  virtual ~CoinInstance() = default;

  // Number of send rounds (the paper's Delta_A).
  virtual int rounds() const = 0;

  // Emit round `round`'s messages (1-based) on channel base + round - 1.
  virtual void send_round(int round, Outbox& out, ChannelId base) = 0;

  // Process round `round`'s inbox. After receive_round(rounds()) the output
  // bit is available.
  virtual void receive_round(int round, const Inbox& in, ChannelId base) = 0;

  // The coin (valid only after the final receive_round).
  virtual bool output() const = 0;

  // Re-initializes to the state a freshly constructed instance would have,
  // reusing existing storage. The pipeline retires its oldest instance
  // every beat by reinit-ing it in place instead of reallocating, so the
  // steady-state beat never touches the heap. `rng` plays the role of the
  // constructor's rng argument.
  virtual void reinit(Rng rng) = 0;

  // Transient fault injection.
  virtual void randomize_state(Rng& rng) = 0;
};

class CoinComponent {
 public:
  virtual ~CoinComponent() = default;
  virtual void send_phase(Outbox& out) = 0;
  // Returns this beat's random bit and latches it for last_output().
  bool receive_phase(const Inbox& in) {
    return last_output_ = do_receive_phase(in);
  }
  // The bit the most recent receive_phase returned — what the trace layer
  // records without re-running (and re-randomizing) the coin.
  bool last_output() const { return last_output_; }
  virtual void randomize_state(Rng& rng) = 0;

 protected:
  // Implementation hook behind the latching receive_phase.
  virtual bool do_receive_phase(const Inbox& in) = 0;

 private:
  bool last_output_ = false;
};

// A recipe for creating coin components inside host protocols. `channels`
// is a constant of the code (Remark 2.1): the host's channel layout depends
// on it and must be identical at every node.
struct CoinSpec {
  std::function<std::unique_ptr<CoinComponent>(const ProtocolEnv&,
                                               ChannelId base, Rng rng)>
      make;
  std::uint32_t channels = 0;
};

}  // namespace ssbft
