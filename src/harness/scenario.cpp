#include "harness/scenario.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "adversary/adversaries.h"
#include "agreement/phase_king.h"
#include "agreement/phase_queen.h"
#include "agreement/turpin_coan.h"
#include "baselines/dolev_welch.h"
#include "baselines/pipelined_ba_clock.h"
#include "coin/coin_pipeline.h"
#include "coin/fm_coin.h"
#include "coin/oracle_coin.h"
#include "core/cascade.h"
#include "core/clock2.h"
#include "core/clock4.h"
#include "core/clock_sync.h"
#include "sim/delivery.h"
#include "support/check.h"

namespace ssbft {

const char* family_name(Family f) {
  switch (f) {
    case Family::kClockSync: return "ss-Byz-Clock-Sync";
    case Family::kClock4: return "ss-Byz-4-Clock";
    case Family::kClock2: return "ss-Byz-2-Clock";
    case Family::kCascade: return "cascade (Sec. 5)";
    case Family::kDolevWelch: return "Dolev-Welch [10]";
    case Family::kDolevWelchShared: return "DW + shared coin";
    case Family::kPipelinedQueen: return "pipelined queen [15]";
    case Family::kPipelinedKing: return "pipelined king [7]";
  }
  return "?";
}

const char* attack_name(Attack a) {
  switch (a) {
    case Attack::kSilent: return "silent";
    case Attack::kNoise: return "noise";
    case Attack::kSplit: return "split";
    case Attack::kSkew: return "skew";
    case Attack::kCoinAttack: return "gvss-attacker";
    case Attack::kAntiCoin: return "anti-coin";
    case Attack::kAdaptive: return "adaptive-splitter";
  }
  return "?";
}

std::unique_ptr<Adversary> make_attack(Attack a, ClockValue k,
                                       ChannelId coin_base,
                                       std::uint32_t noise_msgs) {
  switch (a) {
    case Attack::kSilent:
      return make_silent_adversary();
    case Attack::kNoise:
      return make_random_noise_adversary(noise_msgs, 48);
    case Attack::kSplit: {
      ByteWriter x, y;
      x.u8(0);
      y.u8(1);
      return make_split_value_adversary(0, std::move(x).take(),
                                        std::move(y).take());
    }
    case Attack::kSkew:
      return make_clock_skew_adversary(k, 0);
    case Attack::kCoinAttack:
      return make_fm_coin_attacker(PrimeField::kDefaultPrime, coin_base);
    case Attack::kAdaptive:
      return make_adaptive_quorum_splitter(k, 0);
    case Attack::kAntiCoin:
      SSBFT_REQUIRE_MSG(false,
                        "anti-coin adversary needs the world's oracle beacon "
                        "(only beacon-backed families can build it)");
  }
  return make_silent_adversary();
}

namespace {

CoinPipelineMode pipeline_mode(const World& w) {
  return w.shared_pipeline ? CoinPipelineMode::kShared
                           : CoinPipelineMode::kPerSubClock;
}

// Adversary for a world: honors the world's noise tuning, and (for
// beacon-backed families) kAntiCoin rushing the beacon on
// `clock_channel`; everything else goes through make_attack.
std::unique_ptr<Adversary> make_world_attack(
    const World& w, ClockValue attack_k, ChannelId coin_base,
    const std::shared_ptr<OracleBeacon>& beacon, ChannelId clock_channel) {
  if (w.attack == Attack::kAntiCoin) {
    SSBFT_REQUIRE_MSG(beacon != nullptr,
                      "anti-coin adversary requires an oracle-coin world");
    return make_anti_coin_adversary(beacon, clock_channel);
  }
  return make_attack(w.attack, attack_k, coin_base, w.noise_msgs_per_beat);
}

}  // namespace

EngineConfig world_config(const World& w, std::uint64_t seed) {
  EngineConfig cfg;
  cfg.n = w.n;
  cfg.f = w.f;
  if (w.faulty_override.empty()) {
    cfg.faulty = EngineConfig::last_ids_faulty(w.n, w.actual);
  } else {
    SSBFT_REQUIRE_MSG(w.faulty_override.size() == w.actual,
                      "faulty_override names "
                          << w.faulty_override.size() << " node(s), world has "
                          << w.actual << " actually-faulty");
    for (NodeId id : w.faulty_override) {
      SSBFT_REQUIRE_MSG(id < w.n, "faulty_override id "
                                      << id << " out of range for n = "
                                      << w.n);
    }
    cfg.faulty = w.faulty_override;
  }
  cfg.seed = seed;
  cfg.faults = w.faults;
  cfg.track_channel_bytes = w.track_channel_bytes;
  return cfg;
}

// ss-Byz-Clock-Sync (the paper).
EngineBuilder build_clock_sync(World w) {
  return [w](std::uint64_t seed) {
    EngineBundle b;
    CoinSpec spec;
    std::shared_ptr<OracleBeacon> beacon;
    if (w.coin == CoinKind::kOracle) {
      beacon = std::make_shared<OracleBeacon>(w.n, OracleCoinParams{0.45, 0.45},
                                              Rng(seed).split("beacon"));
      spec = oracle_coin_spec(beacon);
    } else {
      spec = fm_coin_spec();
    }
    const CoinPipelineMode mode = pipeline_mode(w);
    const auto coin_base = static_cast<ChannelId>(
        3 + SsByz4Clock::channels_needed(spec, mode));
    std::unique_ptr<Adversary> adv;
    if (w.actual != 0) {
      adv = make_world_attack(w, w.k, coin_base, beacon, 0);
    }
    auto factory = [spec, k = w.k, mode](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByzClockSync>(env, k, spec, rng, 0, mode);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    if (beacon) {
      b.engine->add_listener(beacon.get());
      b.keepalive = beacon;
    }
    return b;
  };
}

// ss-Byz-4-Clock building block (Remark 4.1 ablation).
EngineBuilder build_clock4(World w) {
  return [w](std::uint64_t seed) {
    EngineBundle b;
    CoinSpec spec;
    std::shared_ptr<OracleBeacon> beacon;
    if (w.coin == CoinKind::kOracle) {
      beacon = std::make_shared<OracleBeacon>(w.n, OracleCoinParams{0.45, 0.45},
                                              Rng(seed).split("beacon"));
      spec = oracle_coin_spec(beacon);
    } else {
      spec = fm_coin_spec();
    }
    const CoinPipelineMode mode = pipeline_mode(w);
    std::unique_ptr<Adversary> adv;
    if (w.actual != 0) {
      // The 4-clock's modulus is fixed; attacks that take a k see 4.
      adv = make_world_attack(w, 4, 0, beacon, 0);
    }
    auto factory = [spec, mode](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByz4Clock>(env, spec, 0, rng, mode);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    if (beacon) {
      b.engine->add_listener(beacon.get());
      b.keepalive = beacon;
    }
    return b;
  };
}

// ss-Byz-2-Clock on the oracle coin (gallery / convergence-tail worlds).
EngineBuilder build_clock2(World w) {
  return [w](std::uint64_t seed) {
    EngineBundle b;
    auto beacon = std::make_shared<OracleBeacon>(
        w.n, OracleCoinParams{0.45, 0.45}, Rng(seed).split("beacon"));
    CoinSpec spec = oracle_coin_spec(beacon);
    std::unique_ptr<Adversary> adv;
    if (w.actual != 0) {
      adv = make_world_attack(w, 2, 0, beacon, 0);
    }
    auto factory = [spec](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<SsByz2Clock>(env, spec, 0, rng);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    b.engine->add_listener(beacon.get());
    b.keepalive = beacon;
    return b;
  };
}

// Section 5 cascade (2^levels-clock).
EngineBuilder build_cascade(World w, std::uint32_t levels) {
  return [w, levels](std::uint64_t seed) {
    EngineBundle b;
    auto beacon = std::make_shared<OracleBeacon>(
        w.n, OracleCoinParams{0.45, 0.45}, Rng(seed).split("beacon"));
    CoinSpec spec = oracle_coin_spec(beacon);
    std::unique_ptr<Adversary> adv;
    if (w.actual != 0) {
      adv = make_world_attack(w, w.k, 0, beacon, 0);
    }
    auto factory = [spec, levels](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<CascadeClock>(env, levels, spec, rng);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    b.engine->add_listener(beacon.get());
    b.keepalive = beacon;
    return b;
  };
}

// Dolev-Welch randomized baseline ([10] sync row).
EngineBuilder build_dolev_welch(World w) {
  return [w](std::uint64_t seed) {
    EngineBundle b;
    auto adv = w.actual == 0 ? nullptr
                   : make_world_attack(w, w.k, 0, nullptr, 0);
    auto factory = [k = w.k](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<DolevWelchClock>(env, k, rng);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    return b;
  };
}

// Section 6.1 retrofit: the DW gamble over a shared (oracle or FM) coin.
EngineBuilder build_dolev_welch_shared(World w) {
  return [w](std::uint64_t seed) {
    EngineBundle b;
    CoinSpec spec;
    std::shared_ptr<OracleBeacon> beacon;
    if (w.coin == CoinKind::kOracle) {
      beacon = std::make_shared<OracleBeacon>(w.n, OracleCoinParams{0.45, 0.45},
                                              Rng(seed).split("beacon"));
      spec = oracle_coin_spec(beacon);
    } else {
      spec = fm_coin_spec();
    }
    std::unique_ptr<Adversary> adv;
    if (w.actual != 0) {
      adv = make_world_attack(w, w.k, 0, beacon, 0);
    }
    auto factory = [spec, k = w.k](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<DolevWelchSharedCoin>(env, k, spec, rng);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    if (beacon) {
      b.engine->add_listener(beacon.get());
      b.keepalive = beacon;
    }
    return b;
  };
}

// Pipelined-BA deterministic baselines ([15] = queen, [7] = king).
EngineBuilder build_pipelined(World w, bool king) {
  return [w, king](std::uint64_t seed) {
    EngineBundle b;
    const BaSpec spec =
        turpin_coan_spec(king ? phase_king_spec() : phase_queen_spec());
    auto adv = w.actual == 0 ? nullptr
                   : make_world_attack(w, w.k, 0, nullptr, 0);
    auto factory = [spec, k = w.k](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<PipelinedBaClock>(env, k, spec, rng);
    };
    b.engine = std::make_unique<Engine>(world_config(w, seed), factory,
                                        std::move(adv));
    return b;
  };
}

EngineBuilder build_world(Family family, const World& w) {
  switch (family) {
    case Family::kClockSync: return build_clock_sync(w);
    case Family::kClock4: return build_clock4(w);
    case Family::kClock2: return build_clock2(w);
    case Family::kCascade: return build_cascade(w, w.levels);
    case Family::kDolevWelch: return build_dolev_welch(w);
    case Family::kDolevWelchShared: return build_dolev_welch_shared(w);
    case Family::kPipelinedQueen: return build_pipelined(w, /*king=*/false);
    case Family::kPipelinedKing: return build_pipelined(w, /*king=*/true);
  }
  SSBFT_CHECK(false);
  return build_clock_sync(w);
}

EngineBuilder build_scenario(const ScenarioSpec& spec) {
  return build_world(spec.family, spec.world);
}

RunnerConfig scenario_runner_config(const ScenarioSpec& spec) {
  RunnerConfig rc;
  rc.trials = spec.trials;
  rc.base_seed = spec.base_seed;
  rc.convergence.max_beats = spec.max_beats;
  if (spec.confirm_window != 0) rc.convergence.confirm_window = spec.confirm_window;
  return rc;
}

// ---------------------------------------------------------------------------
// Registry. Covers every convergence cell of the bench tables (the
// steady-state single-engine measurements of bench_coin_quality /
// bench_message_complexity are experiment-internal — they are bit-stream
// and traffic probes, not trial cells) plus the network/transient-fault
// variants that have no bench of their own.

namespace {

std::string world_blurb(Family fam, const World& w) {
  std::ostringstream os;
  os << family_name(fam) << " n=" << w.n << " f=" << w.f;
  if (w.actual != w.f) os << " actual=" << w.actual;
  if (fam == Family::kCascade) {
    os << " k=" << (ClockValue{1} << w.levels);
  } else if (fam != Family::kClock2 && fam != Family::kClock4) {
    os << " k=" << w.k;
  }
  if (w.actual != 0) os << ", " << attack_name(w.attack);
  if (w.coin == CoinKind::kFm &&
      (fam == Family::kClockSync || fam == Family::kClock4 ||
       fam == Family::kDolevWelchShared)) {
    os << ", FM coin";
  }
  if (w.shared_pipeline != 0) os << ", shared pipeline";
  if (w.faults.faulty_drop_prob > 0.0) {
    os << ", drop " << w.faults.faulty_drop_prob << " until beat "
       << w.faults.network_faulty_until;
  }
  if (w.faults.phantoms_per_beat > 0) {
    os << ", " << w.faults.phantoms_per_beat << " phantoms/beat until beat "
       << w.faults.network_faulty_until;
  }
  if (!w.faults.corruptions.empty()) {
    os << ", corruptions at";
    for (const auto& [beat, ids] : w.faults.corruptions) {
      os << " b" << beat << "(" << ids.size() << ")";
    }
  }
  if (w.faults.delivery.kind != DeliveryKind::kSynchronous) {
    const DeliverySpec& d = w.faults.delivery;
    os << ", " << delivery_kind_name(d.kind) << " delivery";
    if (!d.victims.empty()) os << " victims=" << d.victims.size();
    if (d.kind == DeliveryKind::kPartition) {
      os << " split=" << d.partition_split;
    }
    if (d.kind == DeliveryKind::kTargetedDelay) {
      os << " d=" << d.delay_beats;
    }
    if (d.heal_at != DeliverySpec::kNever) os << " heal@" << d.heal_at;
  }
  return os.str();
}

std::vector<ScenarioSpec> make_registry() {
  std::vector<ScenarioSpec> specs;
  auto add = [&](std::string name, Family fam, const World& w,
                 std::uint64_t trials, std::uint64_t seed,
                 std::uint64_t max_beats, std::uint64_t confirm = 0,
                 std::string extra = "") {
    ScenarioSpec s;
    s.name = std::move(name);
    s.summary = world_blurb(fam, w) + extra;
    s.family = fam;
    s.world = w;
    s.trials = trials;
    s.base_seed = seed;
    s.max_beats = max_beats;
    s.confirm_window = confirm;
    specs.push_back(std::move(s));
  };

  // --- Table 1 (bench_table1): four families x (n, f), k = 64. ---------
  struct NF {
    std::uint32_t n, f;
  };
  const NF grid[] = {{4, 1}, {7, 2}, {10, 3}, {13, 4}};
  for (const auto [n, f] : grid) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 64;

    World wd = w;
    wd.attack = Attack::kSplit;
    add("table1/dw/n" + std::to_string(n), Family::kDolevWelch, wd, 10,
        1000 + n, 60000);

    World wq = w;
    wq.f = (n - 1) / 4;  // phase-queen's own legal bound f < n/4
    wq.actual = wq.f;
    wq.attack = Attack::kSkew;
    add("table1/queen/n" + std::to_string(n), Family::kPipelinedQueen, wq, 20,
        2000 + n, 4000);

    World wk = w;
    wk.attack = Attack::kSkew;
    add("table1/king/n" + std::to_string(n), Family::kPipelinedKing, wk, 20,
        3000 + n, 4000);

    World ws = w;
    ws.attack = Attack::kSkew;
    ws.coin = CoinKind::kOracle;
    add("table1/sync/n" + std::to_string(n), Family::kClockSync, ws, 20,
        4000 + n, 8000);
  }
  // Full-stack spot check: the paper's algorithm on the message-level coin.
  for (const auto [n, f] : {NF{4, 1}, NF{7, 2}}) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 64;
    w.coin = CoinKind::kFm;
    w.attack = Attack::kSkew;
    add("table1/sync-fm/n" + std::to_string(n), Family::kClockSync, w, 10,
        5000 + n, 8000);
  }

  // --- Large-n scaling grid (bench_table1's table1-large experiment):
  // first cells past n=13, sized to exercise the SIMD field and codec
  // kernels at wide n. f = floor((n-1)/3) is the paper's maximal
  // resilience; trials stay small because a single n=128 FM-coin beat
  // carries n^2 messages with length-n field vectors.
  for (const std::uint32_t n : {32u, 64u, 128u}) {
    World w;
    w.n = n;
    w.f = (n - 1) / 3;
    w.actual = w.f;
    w.k = 64;
    w.attack = Attack::kSkew;

    World wo = w;
    wo.coin = CoinKind::kOracle;
    add("scaling-large/sync/n" + std::to_string(n), Family::kClockSync, wo, 3,
        9000 + n, 8000);

    World wf = w;
    wf.coin = CoinKind::kFm;
    add("scaling-large/sync-fm/n" + std::to_string(n), Family::kClockSync, wf,
        3, 9100 + n, 8000);

    // Gallery adversary at scale: the adaptive quorum splitter, the
    // strongest attacker in examples/byzantine_gallery, on the full
    // FM-coin stack.
    World wa = wf;
    wa.attack = Attack::kAdaptive;
    add("scaling-large/sync-fm/n" + std::to_string(n) + "-adaptive",
        Family::kClockSync, wa, 3, 9200 + n, 8000);
  }

  // --- Resiliency boundaries (bench_resiliency): n = 13, sweep actual. --
  for (std::uint32_t actual : {0u, 2u, 3u, 4u, 5u}) {
    World wq;
    wq.n = 13;
    wq.f = 3;  // queen assumes its own legal max
    wq.actual = actual;
    wq.k = 16;
    wq.attack = Attack::kSkew;
    add("resiliency/queen/a" + std::to_string(actual), Family::kPipelinedQueen,
        wq, 10, 77, 3000, 24);

    World wk = wq;  // king and the paper assume f = 4
    wk.f = 4;
    add("resiliency/king/a" + std::to_string(actual), Family::kPipelinedKing,
        wk, 10, 77, 3000, 24);
    add("resiliency/sync/a" + std::to_string(actual), Family::kClockSync, wk,
        10, 77, 8000, 24);
  }

  // --- k-scaling (bench_kclock_scaling): n = 4, f = 1, noise. ----------
  for (std::uint32_t levels = 2; levels <= 8; levels += 2) {
    const ClockValue k = ClockValue{1} << levels;
    World w;
    w.n = 4;
    w.f = 1;
    w.actual = 1;
    w.k = k;
    w.levels = levels;
    w.attack = Attack::kNoise;
    add("kclock/sync/k" + std::to_string(k), Family::kClockSync, w, 15,
        60 + levels, 30000, 2 * k + 8);
    add("kclock/cascade/k" + std::to_string(k), Family::kCascade, w, 15,
        60 + levels, 30000, 2 * k + 8);
  }

  // --- Coin leverage (bench_coin_leverage): k = 8. ---------------------
  for (const auto [n, f] : {NF{4, 1}, NF{7, 2}, NF{10, 3}}) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 8;
    w.attack = Attack::kSplit;

    add("leverage/dw-local/n" + std::to_string(n), Family::kDolevWelch, w, 10,
        90 + n, 60000);
    add("leverage/dw-shared/n" + std::to_string(n), Family::kDolevWelchShared,
        w, 20, 90 + n, 4000);
    World wf = w;
    wf.coin = CoinKind::kFm;
    add("leverage/dw-shared-fm/n" + std::to_string(n),
        Family::kDolevWelchShared, wf, 10, 90 + n, 4000);
    World ws = w;
    ws.attack = Attack::kSkew;
    add("leverage/sync/n" + std::to_string(n), Family::kClockSync, ws, 20,
        90 + n, 8000);
  }
  for (const auto [n, f] : {NF{4, 1}, NF{7, 2}}) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = 8;
    w.attack = Attack::kAdaptive;
    add("leverage/adaptive/dw-shared/n" + std::to_string(n),
        Family::kDolevWelchShared, w, 20, 95 + n, 20000);
    add("leverage/adaptive/sync/n" + std::to_string(n), Family::kClockSync, w,
        20, 95 + n, 20000);
  }

  // --- Remark 4.1 ablation (bench_ablation_pipeline): FM coin, noise. --
  {
    World w;
    w.n = 4;
    w.f = 1;
    w.actual = 1;
    w.k = 32;
    w.attack = Attack::kNoise;
    w.coin = CoinKind::kFm;
    for (bool shared : {false, true}) {
      World wm = w;
      wm.shared_pipeline = shared ? 1 : 0;
      const char* suffix = shared ? "shared" : "per-subclock";
      add(std::string("ablation/clock4/") + suffix, Family::kClock4, wm, 12,
          70, 6000);
      add(std::string("ablation/kclock/") + suffix, Family::kClockSync, wm, 12,
          70, 6000);
    }
  }

  // --- Convergence tail (bench_convergence_tail). ----------------------
  {
    World w;
    w.n = 4;
    w.f = 1;
    w.actual = 1;
    w.k = 2;
    w.attack = Attack::kSplit;
    add("tail/clock2/n4", Family::kClock2, w, 400, 10, 4000);
    World w13 = w;
    w13.n = 13;
    w13.f = 4;
    w13.actual = 4;
    add("tail/clock2/n13", Family::kClock2, w13, 400, 10, 4000);
    World ws;
    ws.n = 7;
    ws.f = 2;
    ws.actual = 2;
    ws.k = 64;
    ws.attack = Attack::kSkew;
    add("tail/sync/n7", Family::kClockSync, ws, 200, 10, 8000);
  }

  // --- Adversary gallery (examples/byzantine_gallery): 2-clock, n = 7. -
  {
    World w;
    w.n = 7;
    w.f = 2;
    w.actual = 2;
    w.k = 2;
    for (Attack a : {Attack::kSilent, Attack::kNoise, Attack::kSplit,
                     Attack::kAntiCoin}) {
      World wa = w;
      wa.attack = a;
      // The gallery's historical noise world sprays 10 messages/beat
      // (the bench-wide default is 8).
      if (a == Attack::kNoise) wa.noise_msgs_per_beat = 10;
      add(std::string("gallery/") + attack_name(a), Family::kClock2, wa, 40,
          11, 5000);
    }
  }

  // --- Network/transient fault axes (FaultPlan), previously unreachable
  // from any bench: a lossy network, a phantom storm, both at once, and a
  // mid-run corruption schedule (Definition 2.2 / transient faults).
  {
    World w;
    w.n = 7;
    w.f = 2;
    w.actual = 2;
    w.k = 8;
    w.attack = Attack::kSilent;

    World lossy = w;
    lossy.faults.network_faulty_until = 60;
    lossy.faults.faulty_drop_prob = 0.3;
    add("net/lossy", Family::kClockSync, lossy, 20, 1300, 8000);

    World storm = w;
    storm.faults.network_faulty_until = 60;
    storm.faults.phantoms_per_beat = 8;
    storm.faults.phantom_max_len = 64;
    add("net/phantom-storm", Family::kClockSync, storm, 20, 1400, 8000);

    World both = w;
    both.faults.network_faulty_until = 60;
    both.faults.faulty_drop_prob = 0.25;
    both.faults.phantoms_per_beat = 4;
    both.faults.phantom_max_len = 64;
    add("net/lossy-phantom", Family::kClockSync, both, 20, 1500, 8000);

    // Corruptions land inside the convergence window (the k = 8 stack
    // settles in ~10 beats), so the detector's measurement actually spans
    // the re-stabilization — a schedule after confirmed convergence would
    // never run (measure_convergence stops once convergence is certified).
    World corrupt = w;
    corrupt.faults.corruptions[5] = {0, 1};
    corrupt.faults.corruptions[10] = {2};
    add("fault/mid-run-corruption", Family::kClockSync, corrupt, 20, 1600,
        8000);

    // --- Delivery adversaries (sim/delivery.h): adversarial *scheduling*
    // power on top of the loss/phantom axes. Topology attacks heal at
    // beat 40 (self-stabilization measures the post-heal convergence; a
    // permanent eclipse of a correct node would never converge), except
    // reorder, which the inbox's canonical ordering must absorb forever.
    // net/baseline is the same world on the synchronous default — the
    // control row of the delivery experiment.
    add("net/baseline", Family::kClockSync, w, 20, 1690, 8000);

    World eclipse = w;
    eclipse.faults.delivery.kind = DeliveryKind::kEclipse;
    eclipse.faults.delivery.victims = {0};
    eclipse.faults.delivery.allowed_senders = {1, 2};
    eclipse.faults.delivery.heal_at = 40;
    add("net/eclipse", Family::kClockSync, eclipse, 20, 1700, 8000);

    World eclipse_noise = eclipse;
    eclipse_noise.attack = Attack::kNoise;
    add("net/eclipse+noise", Family::kClockSync, eclipse_noise, 20, 1710,
        8000);

    World part = w;
    part.faults.delivery.kind = DeliveryKind::kPartition;
    part.faults.delivery.partition_split = 3;
    part.faults.delivery.heal_at = 40;
    add("net/partition-heal", Family::kClockSync, part, 20, 1720, 8000);

    World part_split = part;
    part_split.attack = Attack::kSplit;
    add("net/partition-heal+split", Family::kClockSync, part_split, 20, 1730,
        8000);

    World delay = w;
    delay.faults.delivery.kind = DeliveryKind::kTargetedDelay;
    delay.faults.delivery.victims = {0, 1};
    delay.faults.delivery.delay_beats = 2;
    delay.faults.delivery.heal_at = 40;
    add("net/targeted-delay", Family::kClockSync, delay, 20, 1740, 8000);

    World delay_skew = delay;
    delay_skew.attack = Attack::kSkew;
    add("net/targeted-delay+skew", Family::kClockSync, delay_skew, 20, 1750,
        8000);

    World reorder = w;
    reorder.faults.delivery.kind = DeliveryKind::kReorder;
    add("net/reorder", Family::kClockSync, reorder, 20, 1760, 8000);

    World reorder_lossy = reorder;
    reorder_lossy.faults.network_faulty_until = 30;
    reorder_lossy.faults.faulty_drop_prob = 0.25;
    add("net/reorder+lossy", Family::kClockSync, reorder_lossy, 20, 1770,
        8000);
  }

  std::sort(specs.begin(), specs.end(),
            [](const ScenarioSpec& a, const ScenarioSpec& b) {
              return a.name < b.name;
            });
  for (std::size_t i = 1; i < specs.size(); ++i) {
    SSBFT_CHECK_MSG(specs[i - 1].name != specs[i].name,
                    "duplicate scenario name " << specs[i].name);
  }
  return specs;
}

void append_id_list(std::ostringstream& os, const std::vector<NodeId>& ids) {
  os << '[';
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) os << ',';
    os << ids[i];
  }
  os << ']';
}

}  // namespace

std::string scenario_detail(const ScenarioSpec& spec) {
  const FaultPlan& fp = spec.world.faults;
  const DeliverySpec& d = fp.delivery;
  std::ostringstream os;
  os << "delivery " << delivery_kind_name(d.kind);
  if (!d.victims.empty()) {
    os << " victims=";
    append_id_list(os, d.victims);
  }
  if (d.kind == DeliveryKind::kEclipse) {
    os << " allowed=";
    append_id_list(os, d.allowed_senders);
  }
  if (d.kind == DeliveryKind::kPartition) os << " split=" << d.partition_split;
  if (d.kind == DeliveryKind::kTargetedDelay) os << " delay=" << d.delay_beats;
  if (d.heal_at != DeliverySpec::kNever) os << " heal@" << d.heal_at;
  os << " | net ";
  if (fp.faulty_drop_prob == 0.0 && fp.phantoms_per_beat == 0) {
    os << "clean";
  } else {
    if (fp.faulty_drop_prob > 0.0) os << "drop=" << fp.faulty_drop_prob;
    if (fp.phantoms_per_beat > 0) {
      if (fp.faulty_drop_prob > 0.0) os << ' ';
      os << "phantoms=" << fp.phantoms_per_beat << "/beat";
    }
    os << " until beat " << fp.network_faulty_until;
  }
  if (!fp.corruptions.empty()) {
    os << " | corrupt";
    for (const auto& [beat, ids] : fp.corruptions) {
      os << " b" << beat << "=";
      append_id_list(os, ids);
    }
  }
  os << " | trials=" << spec.trials << " seed=" << spec.base_seed
     << " max_beats=" << spec.max_beats;
  return os.str();
}

const std::vector<ScenarioSpec>& scenario_registry() {
  static const std::vector<ScenarioSpec> registry = make_registry();
  return registry;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  const auto& reg = scenario_registry();
  const auto it = std::lower_bound(
      reg.begin(), reg.end(), name,
      [](const ScenarioSpec& s, const std::string& n) { return s.name < n; });
  if (it == reg.end() || it->name != name) return nullptr;
  return &*it;
}

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative fnmatch-style matcher with single-star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<const ScenarioSpec*> match_scenarios(const std::string& pattern) {
  std::vector<const ScenarioSpec*> out;
  for (const ScenarioSpec& s : scenario_registry()) {
    if (glob_match(pattern, s.name)) out.push_back(&s);
  }
  return out;
}

}  // namespace ssbft
