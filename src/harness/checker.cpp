#include "harness/checker.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <map>
#include <optional>
#include <tuple>

#include "harness/jsonl.h"
#include "harness/live_check.h"
#include "support/sha256.h"

namespace ssbft {

namespace {

// Strict flat-JSON line decoding lives in harness/jsonl.h (shared with the
// shard/checkpoint codec): values are strings, unsigned integers or arrays
// of unsigned integers; anything else is rejected.
using jsonl::LineValues;
using jsonl::find_int;

// Requires the line's integer keys to be exactly `keys`, its only string
// key to be "type", and (unless allow_arrays) no arrays at all.
bool exact_shape(const LineValues& v, std::initializer_list<const char*> keys,
                 bool header_shape, std::string& err) {
  for (const auto& [k, val] : v.ints) {
    bool known = false;
    for (const char* want : keys) {
      if (k == want) {
        known = true;
        break;
      }
    }
    if (!known) {
      err = "unknown key '" + k + "'";
      return false;
    }
  }
  for (const char* want : keys) {
    if (find_int(v, want) == nullptr) {
      err = std::string("missing key '") + want + "'";
      return false;
    }
  }
  for (const auto& [k, val] : v.strs) {
    if (k == "type") continue;
    if (header_shape && k == "scenario") continue;
    err = "unknown key '" + k + "'";
    return false;
  }
  for (const auto& [k, val] : v.arrs) {
    if (header_shape && k == "faulty") continue;
    err = "unknown key '" + k + "'";
    return false;
  }
  if (header_shape && !v.has("faulty")) {
    err = "missing key 'faulty'";
    return false;
  }
  if (header_shape && !v.has("scenario")) {
    err = "missing key 'scenario'";
    return false;
  }
  return true;
}

struct MergeKey {
  std::string scenario;
  std::uint64_t trial;
  std::uint64_t seed;
  bool operator<(const MergeKey& o) const {
    return std::tie(scenario, trial, seed) <
           std::tie(o.scenario, o.trial, o.seed);
  }
};

bool headers_equal(const TraceHeader& a, const TraceHeader& b) {
  return a.scenario == b.scenario && a.trial == b.trial && a.seed == b.seed &&
         a.n == b.n && a.f == b.f && a.faulty == b.faulty &&
         a.max_beats == b.max_beats && a.confirm_window == b.confirm_window;
}

// Post-merge structural validation: one clock record per correct node on
// every beat that carries any, plus a single modulus across the trace.
bool validate_merged(const ParsedTrace& t, std::string& err) {
  std::vector<bool> is_faulty(t.header.n, false);
  for (NodeId id : t.header.faulty) is_faulty[id] = true;
  std::size_t correct = 0;
  for (NodeId id = 0; id < t.header.n; ++id) {
    if (!is_faulty[id]) ++correct;
  }
  ClockValue modulus = 0;
  std::vector<std::uint8_t> seen(t.header.n, 0);
  std::size_t i = 0;
  while (i < t.records.size()) {
    const Beat beat = t.records[i].beat;
    std::fill(seen.begin(), seen.end(), 0);
    std::size_t clocks = 0;
    for (; i < t.records.size() && t.records[i].beat == beat; ++i) {
      const TraceRecord& r = t.records[i];
      if (r.event != TraceEvent::kClock) continue;
      const auto node = static_cast<NodeId>(r.node);
      if (seen[node]++) {
        err = "beat " + std::to_string(beat) + ": duplicate clock record for node " +
              std::to_string(node);
        return false;
      }
      ++clocks;
      if (modulus == 0) modulus = r.b;
      if (r.b != modulus) {
        err = "beat " + std::to_string(beat) + ": modulus mismatch (" +
              std::to_string(r.b) + " vs " + std::to_string(modulus) + ")";
        return false;
      }
    }
    if (clocks != 0 && clocks != correct) {
      err = "beat " + std::to_string(beat) + ": clock records for " +
            std::to_string(clocks) + " nodes, expected " +
            std::to_string(correct) + " (missing nodes)";
      return false;
    }
  }
  return true;
}

const char* event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kBeat: return "beat";
    case TraceEvent::kNet: return "net";
    case TraceEvent::kProbe: return "probe";
    case TraceEvent::kClock: return "clock";
    case TraceEvent::kPhase: return "phase";
    case TraceEvent::kCoin: return "coin";
    case TraceEvent::kCorrupt: return "corrupt";
  }
  return "?";
}

}  // namespace

ParseResult parse_trace(std::istream& in) {
  ParseResult res;
  std::string line;
  std::size_t lineno = 0;
  bool have_header = false;
  bool have_beat = false;
  Beat last_beat = 0;
  ClockValue modulus = 0;
  std::vector<bool> is_faulty;

  auto fail = [&](std::string msg) {
    res.ok = false;
    res.error = std::move(msg);
    res.error_line = lineno;
    return res;
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) return fail("empty line");
    LineValues v;
    std::string err;
    if (!jsonl::parse_line(line, v, err)) return fail(err);

    std::string type;
    for (const auto& [k, s] : v.strs) {
      if (k == "type") type = s;
    }
    if (type.empty()) return fail("missing key 'type'");

    if (type == "header") {
      if (have_header) return fail("duplicate header");
      if (!exact_shape(v,
                       {"version", "trial", "seed", "n", "f", "max_beats",
                        "confirm_window"},
                       /*header_shape=*/true, err)) {
        return fail(err);
      }
      if (*find_int(v, "version") != 1) return fail("unsupported version");
      TraceHeader& h = res.trace.header;
      for (const auto& [k, s] : v.strs) {
        if (k == "scenario") h.scenario = s;
      }
      h.trial = *find_int(v, "trial");
      h.seed = *find_int(v, "seed");
      const std::uint64_t n = *find_int(v, "n");
      const std::uint64_t f = *find_int(v, "f");
      if (n == 0 || n > (1u << 20)) return fail("n out of range");
      if (f > n) return fail("f out of range");
      h.n = static_cast<std::uint32_t>(n);
      h.f = static_cast<std::uint32_t>(f);
      h.max_beats = *find_int(v, "max_beats");
      h.confirm_window = *find_int(v, "confirm_window");
      is_faulty.assign(h.n, false);
      for (const auto& [k, arr] : v.arrs) {
        if (k != "faulty") continue;
        for (std::uint64_t id : arr) {
          if (id >= h.n) return fail("faulty id out of range");
          if (is_faulty[id]) return fail("duplicate faulty id");
          is_faulty[id] = true;
          h.faulty.push_back(static_cast<NodeId>(id));
        }
      }
      have_header = true;
      continue;
    }

    if (!have_header) return fail("record before header");

    TraceRecord r;
    if (type == "beat") {
      if (!exact_shape(v, {"beat", "cm", "cb", "am", "ab"}, false, err)) {
        return fail(err);
      }
      r.event = TraceEvent::kBeat;
      r.a = *find_int(v, "cm");
      r.b = *find_int(v, "cb");
      r.c = *find_int(v, "am");
      r.d = *find_int(v, "ab");
    } else if (type == "net") {
      if (!exact_shape(v, {"beat", "dropped", "phantoms"}, false, err)) {
        return fail(err);
      }
      r.event = TraceEvent::kNet;
      r.a = *find_int(v, "dropped");
      r.b = *find_int(v, "phantoms");
    } else if (type == "probe") {
      if (!exact_shape(v, {"beat", "eclipsed", "delayed", "reordered"}, false,
                       err)) {
        return fail(err);
      }
      r.event = TraceEvent::kProbe;
      r.a = *find_int(v, "eclipsed");
      r.b = *find_int(v, "delayed");
      r.c = *find_int(v, "reordered");
    } else if (type == "clock") {
      if (!exact_shape(v, {"beat", "node", "clock", "k"}, false, err)) {
        return fail(err);
      }
      r.event = TraceEvent::kClock;
      r.a = *find_int(v, "clock");
      r.b = *find_int(v, "k");
      if (r.b == 0) return fail("zero modulus");
      if (modulus == 0) modulus = r.b;
      if (r.b != modulus) return fail("modulus mismatch within file");
    } else if (type == "phase") {
      if (!exact_shape(v, {"beat", "node", "stream", "value"}, false, err)) {
        return fail(err);
      }
      r.event = TraceEvent::kPhase;
      r.a = *find_int(v, "value");
    } else if (type == "coin") {
      if (!exact_shape(v, {"beat", "node", "stream", "bit"}, false, err)) {
        return fail(err);
      }
      r.event = TraceEvent::kCoin;
      r.a = *find_int(v, "bit");
      if (r.a > 1) return fail("coin bit out of range");
    } else if (type == "corrupt") {
      if (!exact_shape(v, {"beat", "node"}, false, err)) return fail(err);
      r.event = TraceEvent::kCorrupt;
    } else {
      return fail("unknown type '" + type + "'");
    }

    r.beat = *find_int(v, "beat");
    if (have_beat && r.beat < last_beat) return fail("beats out of order");
    last_beat = r.beat;
    have_beat = true;

    if (const std::uint64_t* node = find_int(v, "node")) {
      if (*node >= res.trace.header.n) return fail("node out of range");
      // clock/phase/coin/corrupt records describe *correct* nodes; one
      // naming a faulty node is a forgery, not data.
      if (is_faulty[*node]) {
        return fail(std::string("forged ") + event_name(r.event) +
                    " record from faulty node " + std::to_string(*node));
      }
      r.node = static_cast<std::int32_t>(*node);
    }
    if (const std::uint64_t* stream = find_int(v, "stream")) {
      if (*stream > 0xFFFFFFFFull) return fail("stream out of range");
      r.stream = static_cast<std::uint32_t>(*stream);
    }
    res.trace.records.push_back(r);
  }

  if (!have_header) return fail("missing header");
  res.ok = true;
  return res;
}

MergeResult merge_traces(std::vector<ParsedTrace> parts) {
  MergeResult res;
  std::map<MergeKey, ParsedTrace> groups;
  for (ParsedTrace& p : parts) {
    const MergeKey key{p.header.scenario, p.header.trial, p.header.seed};
    auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(key, std::move(p));
      continue;
    }
    if (!headers_equal(it->second.header, p.header)) {
      res.error = "conflicting headers for scenario '" + key.scenario +
                  "' trial " + std::to_string(key.trial) + " seed " +
                  std::to_string(key.seed);
      return res;
    }
    it->second.records.insert(it->second.records.end(),
                              p.records.begin(), p.records.end());
  }
  for (auto& [key, trace] : groups) {
    // Total order (beat, node, event, stream, payload): the canonical
    // stream — and so the commitment — is independent of how records were
    // split across files and of the order the files were supplied in. The
    // checker only interprets records per whole beat, never by intra-beat
    // position, so reordering within a beat is semantically free.
    const auto rec_key = [](const TraceRecord& r) {
      return std::make_tuple(r.beat, r.node,
                             static_cast<std::uint8_t>(r.event), r.stream,
                             r.a, r.b, r.c, r.d);
    };
    std::sort(trace.records.begin(), trace.records.end(),
              [&rec_key](const TraceRecord& a, const TraceRecord& b) {
                return rec_key(a) < rec_key(b);
              });
    std::string err;
    if (!validate_merged(trace, err)) {
      res.error = "scenario '" + key.scenario + "' trial " +
                  std::to_string(key.trial) + ": " + err;
      return res;
    }
    res.traces.push_back(std::move(trace));
  }
  res.ok = true;
  return res;
}

CheckResult check_trace(const ParsedTrace& trace, const CheckOptions& opts) {
  // The invariants themselves live in InvariantCore (harness/live_check.h),
  // shared record-for-record with the StreamingChecker sink so offline and
  // live verdicts can never drift apart.
  InvariantCore core;
  core.reset(opts, trace.header.confirm_window);
  for (const TraceRecord& r : trace.records) core.feed(r);
  return core.finish();
}

std::string trace_commitment(const ParsedTrace& trace) {
  Sha256 sha;
  sha.update(std::string("ssbft-trace-v1\n"));
  const TraceHeader& h = trace.header;
  std::string line = "h|" + h.scenario + "|" + std::to_string(h.trial) + "|" +
                     std::to_string(h.seed) + "|" + std::to_string(h.n) + "|" +
                     std::to_string(h.f) + "|";
  for (std::size_t i = 0; i < h.faulty.size(); ++i) {
    if (i != 0) line.push_back(',');
    line += std::to_string(h.faulty[i]);
  }
  line += "|" + std::to_string(h.max_beats) + "|" +
          std::to_string(h.confirm_window) + "\n";
  sha.update(line);
  for (const TraceRecord& r : trace.records) {
    line = "r|" + std::to_string(r.beat) + "|" + std::to_string(r.node) + "|" +
           std::to_string(static_cast<unsigned>(r.event)) + "|" +
           std::to_string(r.stream) + "|" + std::to_string(r.a) + "|" +
           std::to_string(r.b) + "|" + std::to_string(r.c) + "|" +
           std::to_string(r.d) + "\n";
    sha.update(line);
  }
  return Sha256::hex(sha.digest());
}

std::string aggregate_commitment(std::vector<std::string> commitments) {
  std::sort(commitments.begin(), commitments.end());
  Sha256 sha;
  for (const std::string& c : commitments) {
    sha.update(c);
    sha.update("\n", 1);
  }
  return Sha256::hex(sha.digest());
}

}  // namespace ssbft
