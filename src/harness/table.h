// ASCII table and CSV emitters for the benchmark binaries, so every
// experiment prints a paper-style table plus machine-readable rows.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ssbft {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Renders with column widths fitted to content, pipe-separated.
  void print(std::ostream& os) const;
  // RFC-4180 CSV: one line per row, headers first, cells quoted when they
  // contain a comma, quote or line break.
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting helper for table cells.
std::string fmt_double(double v, int precision = 1);

// RFC-4180 cell escaping: returns the cell unchanged unless it contains a
// comma, double quote, CR or LF, in which case it is quoted and embedded
// quotes are doubled.
std::string csv_escape(const std::string& cell);

}  // namespace ssbft
