// The Section 5 cascade: a 2^L-Clock built as a tower of 2-Clocks.
//
// Level 0 steps every beat; level i steps exactly when all lower levels
// are about to wrap (start-of-beat value all-ones below i) — the repeated
// application of the Figure 3 construction. The combined clock
// sum_i 2^i * clock(level_i) increments by one per beat once converged.
//
// This is the construction the paper contrasts with ss-Byz-Clock-Sync: it
// needs log k concurrent 2-clocks (log k message overhead) and level i only
// advances once per 2^i beats, so upper levels converge slowly; the k-Clock
// of Figure 4 replaces it with a constant-overhead agreement cascade.
// bench_kclock_scaling measures exactly this comparison.
#pragma once

#include <memory>
#include <vector>

#include "coin/coin_interface.h"
#include "core/clock2.h"
#include "sim/protocol.h"

namespace ssbft {

class CascadeClock final : public ClockProtocol {
 public:
  // Solves the 2^levels-Clock problem. levels >= 1.
  CascadeClock(const ProtocolEnv& env, std::uint32_t levels,
               const CoinSpec& coin, Rng rng, ChannelId base = 0);

  void send_phase(Outbox& out) override;
  void receive_phase(const Inbox& in) override;
  void randomize_state(Rng& rng) override;
  ClockValue clock() const override;
  ClockValue modulus() const override { return ClockValue{1} << levels_; }
  std::uint32_t channel_count() const override { return channels_end_; }
  void trace_state(TraceEmitter& em) const override;

  static std::uint32_t channels_needed(std::uint32_t levels,
                                       const CoinSpec& coin) {
    return levels * SsByz2Clock::channels_needed(coin);
  }

 private:
  ProtocolEnv env_;
  std::uint32_t levels_;
  std::uint32_t channels_end_;
  std::vector<std::unique_ptr<SsByz2Clock>> level_;
  std::vector<bool> active_;  // latched per beat during send_phase
};

}  // namespace ssbft
