#include "harness/chaos.h"

#include <algorithm>
#include <numeric>

#include "harness/checkpoint.h"  // double_to_hex: byte-exact drop-prob text
#include "sim/delivery.h"        // delivery_kind_name
#include "support/sha256.h"

namespace ssbft {

namespace {

// `count` distinct ids from [0, n), sorted — a partial Fisher-Yates, so
// the draw sequence is a fixed function of the rng stream.
std::vector<NodeId> sample_distinct(Rng& r, std::uint32_t n,
                                    std::uint32_t count) {
  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), NodeId{0});
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t j = i + r.next_below(n - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void append_ids(std::string& out, const std::vector<NodeId>& ids) {
  out.push_back('[');
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(ids[i]);
  }
  out.push_back(']');
}

}  // namespace

ChaosUnit FaultPlanGenerator::make_unit(std::uint64_t index,
                                        const std::string& scenario,
                                        std::uint32_t n, std::uint32_t actual,
                                        std::uint64_t max_beats) const {
  SSBFT_REQUIRE_MSG(n >= 2, "chaos campaigns need a world of n >= 2 nodes");
  SSBFT_REQUIRE_MSG(actual <= n,
                    "faulty count " << actual << " exceeds n = " << n);
  const std::uint64_t horizon =
      budget_.horizon != 0
          ? budget_.horizon
          : std::max<std::uint64_t>(std::uint64_t{1}, max_beats / 2);

  // Every axis draws from its own named split of the unit stream, so
  // adding an axis later never perturbs the existing ones.
  const Rng unit_rng = Rng(campaign_seed_).split("chaos-unit", index);

  ChaosUnit u;
  u.campaign_seed = campaign_seed_;
  u.index = index;
  u.scenario = scenario;
  u.engine_seed = unit_rng.split("engine-seed").next_u64();

  {
    Rng fr = unit_rng.split("faulty");
    u.faulty = sample_distinct(fr, n, actual);
  }

  FaultPlan& p = u.plan;
  p.randomize_genesis = true;

  {
    Rng nr = unit_rng.split("network");
    if (nr.next_bool()) {
      p.network_faulty_until = nr.next_in(1, horizon);
      p.phantoms_per_beat = static_cast<std::uint32_t>(
          nr.next_below(std::uint64_t{budget_.max_phantoms_per_beat} + 1));
      p.phantom_max_len = static_cast<std::uint32_t>(
          nr.next_in(1, budget_.max_phantom_len));
      p.faulty_drop_prob = nr.next_double() * budget_.max_drop_prob;
    }
  }

  {
    Rng cr = unit_rng.split("corruptions");
    const auto beats = static_cast<std::uint32_t>(
        cr.next_below(std::uint64_t{budget_.max_corruption_beats} + 1));
    const std::uint32_t node_cap = std::min(budget_.max_corruption_nodes, n);
    for (std::uint32_t i = 0; i < beats; ++i) {
      const Beat beat = cr.next_in(1, horizon);
      const auto count =
          static_cast<std::uint32_t>(cr.next_in(1, node_cap));
      p.corruptions[beat] = sample_distinct(cr, n, count);
    }
  }

  {
    Rng dr = unit_rng.split("delivery");
    DeliverySpec& d = p.delivery;
    // Eclipse / partition / delay adversaries always heal inside the
    // horizon so the plan is eventually quiescent; reorder delivers
    // everything within its beat, so it may legally run forever.
    switch (dr.next_below(5)) {
      case 0:
        d.kind = DeliveryKind::kSynchronous;
        break;
      case 1: {
        d.kind = DeliveryKind::kEclipse;
        const auto vmax = std::max<std::uint32_t>(1, n / 2);
        d.victims = sample_distinct(
            dr, n, static_cast<std::uint32_t>(dr.next_in(1, vmax)));
        const auto smax = static_cast<std::uint32_t>(dr.next_below(n + 1));
        d.allowed_senders = sample_distinct(dr, n, smax);
        d.heal_at = dr.next_in(1, horizon);
        break;
      }
      case 2:
        d.kind = DeliveryKind::kPartition;
        d.partition_split = static_cast<std::uint32_t>(dr.next_in(1, n - 1));
        d.heal_at = dr.next_in(1, horizon);
        break;
      case 3: {
        d.kind = DeliveryKind::kTargetedDelay;
        const auto vmax = std::max<std::uint32_t>(1, n / 2);
        d.victims = sample_distinct(
            dr, n, static_cast<std::uint32_t>(dr.next_in(1, vmax)));
        d.delay_beats =
            static_cast<std::uint32_t>(dr.next_in(1, budget_.max_delay_beats));
        d.heal_at = dr.next_in(1, horizon);
        break;
      }
      case 4:
        d.kind = DeliveryKind::kReorder;
        if (dr.next_bool()) d.heal_at = dr.next_in(1, horizon);
        break;
    }
  }

  p.validate(n);
  return u;
}

std::string encode_chaos_unit(const ChaosUnit& unit) {
  std::string out = "ssbft-chaos-v1\n";
  out += "campaign=" + std::to_string(unit.campaign_seed) +
         " unit=" + std::to_string(unit.index) + "\n";
  out += "scenario=" + unit.scenario + "\n";
  out += "engine_seed=" + std::to_string(unit.engine_seed) + "\n";
  out += "faulty=";
  append_ids(out, unit.faulty);
  out.push_back('\n');

  const FaultPlan& p = unit.plan;
  out += "genesis=" + std::string(p.randomize_genesis ? "1" : "0") + "\n";
  out += "net until=" + std::to_string(p.network_faulty_until) +
         " phantoms=" + std::to_string(p.phantoms_per_beat) +
         " plen=" + std::to_string(p.phantom_max_len) +
         " drop=" + double_to_hex(p.faulty_drop_prob) + "\n";
  for (const auto& [beat, ids] : p.corruptions) {
    out += "corrupt b" + std::to_string(beat) + "=";
    append_ids(out, ids);
    out.push_back('\n');
  }
  const DeliverySpec& d = p.delivery;
  out += "delivery kind=" + std::string(delivery_kind_name(d.kind)) +
         " victims=";
  append_ids(out, d.victims);
  out += " allowed=";
  append_ids(out, d.allowed_senders);
  out += " split=" + std::to_string(d.partition_split) + " heal=" +
         (d.heal_at == DeliverySpec::kNever ? std::string("never")
                                            : std::to_string(d.heal_at)) +
         " delay=" + std::to_string(d.delay_beats) + "\n";
  return out;
}

std::string chaos_unit_digest(const ChaosUnit& unit) {
  return Sha256::hash_hex(encode_chaos_unit(unit));
}

std::vector<FaultPlan> chaos_reductions(const FaultPlan& plan) {
  std::vector<FaultPlan> out;
  const auto push = [&out](FaultPlan q) { out.push_back(std::move(q)); };
  const auto first_half = [](const std::vector<NodeId>& ids) {
    return std::vector<NodeId>(ids.begin(), ids.begin() + ids.size() / 2);
  };
  const auto second_half = [](const std::vector<NodeId>& ids) {
    return std::vector<NodeId>(ids.begin() + ids.size() / 2, ids.end());
  };

  // Boldest cuts first: a whole axis gone is the biggest simplification,
  // so the greedy loop converges in few re-runs when an axis is inert.
  if (plan.delivery.kind != DeliveryKind::kSynchronous) {
    FaultPlan q = plan;
    q.delivery = DeliverySpec{};
    push(std::move(q));
  }
  if (plan.network_faulty_until != 0) {
    FaultPlan q = plan;
    q.network_faulty_until = 0;
    q.phantoms_per_beat = 0;
    q.faulty_drop_prob = 0.0;
    push(std::move(q));
  }
  if (plan.corruptions.size() > 1) {
    FaultPlan q = plan;
    q.corruptions.clear();
    push(std::move(q));
  }
  for (const auto& [beat, ids] : plan.corruptions) {
    FaultPlan q = plan;
    q.corruptions.erase(beat);
    push(std::move(q));
    if (ids.size() > 1) {
      q = plan;
      q.corruptions[beat] = first_half(ids);
      push(std::move(q));
      q = plan;
      q.corruptions[beat] = second_half(ids);
      push(std::move(q));
    }
  }
  if (plan.network_faulty_until != 0) {
    if (plan.phantoms_per_beat > 0) {
      FaultPlan q = plan;
      q.phantoms_per_beat = 0;
      push(std::move(q));
    }
    if (plan.faulty_drop_prob > 0.0) {
      FaultPlan q = plan;
      q.faulty_drop_prob = 0.0;
      push(std::move(q));
    }
    if (plan.network_faulty_until > 1) {
      FaultPlan q = plan;
      q.network_faulty_until = plan.network_faulty_until / 2;
      push(std::move(q));
    }
  }
  if (plan.delivery.victims.size() > 1) {
    FaultPlan q = plan;
    q.delivery.victims = first_half(plan.delivery.victims);
    push(std::move(q));
    q = plan;
    q.delivery.victims = second_half(plan.delivery.victims);
    push(std::move(q));
  }
  if (plan.delivery.kind == DeliveryKind::kTargetedDelay &&
      plan.delivery.delay_beats > 1) {
    FaultPlan q = plan;
    q.delivery.delay_beats = 1;
    push(std::move(q));
  }
  if (plan.delivery.kind != DeliveryKind::kSynchronous &&
      plan.delivery.heal_at != DeliverySpec::kNever &&
      plan.delivery.heal_at > 1) {
    FaultPlan q = plan;
    q.delivery.heal_at = plan.delivery.heal_at / 2;
    push(std::move(q));
  }
  return out;
}

}  // namespace ssbft
