#include "field/fp_simd.h"

#include "field/fp.h"

// The AVX2 backend compiles whenever the compiler targets x86-64 with GNU
// attribute support and the build did not opt out (-DSSBFT_SIMD=off sets
// SSBFT_SIMD_DISABLED). It is selected at runtime only on CPUs that
// actually have AVX2, so the base build needs no -mavx2.
#if defined(__GNUC__) && defined(__x86_64__) && !defined(SSBFT_SIMD_DISABLED)
#define SSBFT_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define SSBFT_HAVE_AVX2_KERNELS 0
#endif

namespace ssbft {
namespace m61simd {

namespace {

constexpr std::uint64_t kM61 = PrimeField::kDefaultPrime;

inline std::uint64_t mul_m61(std::uint64_t a, std::uint64_t b) {
  return PrimeField::fold61(static_cast<unsigned __int128>(a) * b);
}

inline std::uint64_t add_m61(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;  // both < 2^61: no wraparound
  return s >= kM61 ? s - kM61 : s;
}

inline std::uint64_t sub_m61(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + (kM61 - b);
}

// ---- scalar fallbacks (also the non-AVX2 total definitions) -------------

void mul_vec_scalar(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* out, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) out[i] = mul_m61(a[i], b[i]);
}

void scale_vec_scalar(const std::uint64_t* a, std::uint64_t c,
                      std::uint64_t* out, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) out[i] = mul_m61(a[i], c);
}

void submul_vec_scalar(std::uint64_t* dst, const std::uint64_t* src,
                       std::uint64_t c, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] = sub_m61(dst[i], mul_m61(src[i], c));
  }
}

void addmul_vec_scalar(std::uint64_t* dst, const std::uint64_t* src,
                       std::uint64_t c, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    dst[i] = add_m61(dst[i], mul_m61(src[i], c));
  }
}

std::uint64_t dot_scalar(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t len) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < len; ++i) acc = add_m61(acc, mul_m61(a[i], b[i]));
  return acc;
}

void eval_many_scalar(const std::uint64_t* coeffs, std::size_t count,
                      const std::uint64_t* xs, std::size_t m,
                      std::uint64_t* out) {
  for (std::size_t k = 0; k < m; ++k) {
    const std::uint64_t x = xs[k];
    std::uint64_t acc = 0;
    for (std::size_t i = count; i-- > 0;) {
      acc = add_m61(mul_m61(acc, x), coeffs[i]);
    }
    out[k] = acc;
  }
}

void chunk_prefix_scalar(const std::uint64_t* vals, std::uint64_t* scratch,
                         std::size_t K) {
  for (std::size_t c = 0; c < 4; ++c) {
    const std::uint64_t* v = vals + c * K;
    std::uint64_t* s = scratch + c * K;
    std::uint64_t run = v[0];
    s[0] = run;
    for (std::size_t i = 1; i < K; ++i) s[i] = run = mul_m61(run, v[i]);
  }
}

void chunk_unwind_scalar(std::uint64_t* vals, const std::uint64_t* scratch,
                         const std::uint64_t inv_totals[4], std::size_t K) {
  for (std::size_t c = 0; c < 4; ++c) {
    std::uint64_t* v = vals + c * K;
    const std::uint64_t* s = scratch + c * K;
    std::uint64_t run = inv_totals[c];
    for (std::size_t i = K; i-- > 1;) {
      const std::uint64_t x = v[i];
      v[i] = mul_m61(run, s[i - 1]);
      run = mul_m61(run, x);
    }
    v[0] = run;
  }
}

#if SSBFT_HAVE_AVX2_KERNELS

// ---- AVX2 backend -------------------------------------------------------
//
// AVX2 has no 64x64->128 multiply, so a*b splits into 32-bit halves
// (a_hi, b_hi < 2^29 for canonical inputs) and the 128-bit product
// t = lo + mid*2^32 + hi*2^64 reduces with 2^61 = 1 (mod p):
//   lo        = lo_hi*2^61 + lo_lo           = lo_hi + lo_lo
//   mid*2^32  = mid_hi*2^61 + mid_lo*2^32    = mid_hi + mid_lo*2^32
//   hi*2^64   = (8*hi)*2^61                  = 8*hi
// The partial sum S < 2^63 folds once and one conditional subtract
// canonicalizes — the same representative PrimeField::fold61 produces.

__attribute__((target("avx2"))) inline __m256i m61_mulmod(__m256i a,
                                                          __m256i b) {
  const __m256i M = _mm256_set1_epi64x(static_cast<long long>(kM61));
  const __m256i m29 = _mm256_set1_epi64x((1LL << 29) - 1);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);      // a_lo * b_lo
  const __m256i m1 = _mm256_mul_epu32(a_hi, b);   // a_hi * b_lo
  const __m256i m2 = _mm256_mul_epu32(a, b_hi);   // a_lo * b_hi
  const __m256i hi = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i mid = _mm256_add_epi64(m1, m2);   // < 2^62
  const __m256i S = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_and_si256(lo, M), _mm256_srli_epi64(lo, 61)),
      _mm256_add_epi64(
          _mm256_add_epi64(
              _mm256_srli_epi64(mid, 29),
              _mm256_slli_epi64(_mm256_and_si256(mid, m29), 32)),
          _mm256_slli_epi64(hi, 3)));
  const __m256i s =
      _mm256_add_epi64(_mm256_and_si256(S, M), _mm256_srli_epi64(S, 61));
  // s < 2^61 + 4, so the signed 64-bit compare is exact.
  const __m256i ge = _mm256_cmpgt_epi64(
      s, _mm256_set1_epi64x(static_cast<long long>(kM61 - 1)));
  return _mm256_sub_epi64(s, _mm256_and_si256(ge, M));
}

__attribute__((target("avx2"))) inline __m256i m61_addmod(__m256i a,
                                                          __m256i b) {
  const __m256i M = _mm256_set1_epi64x(static_cast<long long>(kM61));
  const __m256i s = _mm256_add_epi64(a, b);  // both < 2^61: no wraparound
  const __m256i ge = _mm256_cmpgt_epi64(
      s, _mm256_set1_epi64x(static_cast<long long>(kM61 - 1)));
  return _mm256_sub_epi64(s, _mm256_and_si256(ge, M));
}

__attribute__((target("avx2"))) inline __m256i m61_submod(__m256i a,
                                                          __m256i b) {
  const __m256i M = _mm256_set1_epi64x(static_cast<long long>(kM61));
  const __m256i borrow = _mm256_cmpgt_epi64(b, a);  // both < 2^61: signed ok
  return _mm256_add_epi64(_mm256_sub_epi64(a, b),
                          _mm256_and_si256(borrow, M));
}

__attribute__((target("avx2"))) void mul_vec_avx2(const std::uint64_t* a,
                                                  const std::uint64_t* b,
                                                  std::uint64_t* out,
                                                  std::size_t len) {
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        m61_mulmod(va, vb));
  }
  for (; i < len; ++i) out[i] = mul_m61(a[i], b[i]);
}

__attribute__((target("avx2"))) void scale_vec_avx2(const std::uint64_t* a,
                                                    std::uint64_t c,
                                                    std::uint64_t* out,
                                                    std::size_t len) {
  const __m256i vc = _mm256_set1_epi64x(static_cast<long long>(c));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        m61_mulmod(va, vc));
  }
  for (; i < len; ++i) out[i] = mul_m61(a[i], c);
}

__attribute__((target("avx2"))) void submul_vec_avx2(std::uint64_t* dst,
                                                     const std::uint64_t* src,
                                                     std::uint64_t c,
                                                     std::size_t len) {
  const __m256i vc = _mm256_set1_epi64x(static_cast<long long>(c));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        m61_submod(vd, m61_mulmod(vs, vc)));
  }
  for (; i < len; ++i) dst[i] = sub_m61(dst[i], mul_m61(src[i], c));
}

__attribute__((target("avx2"))) void addmul_vec_avx2(std::uint64_t* dst,
                                                     const std::uint64_t* src,
                                                     std::uint64_t c,
                                                     std::size_t len) {
  const __m256i vc = _mm256_set1_epi64x(static_cast<long long>(c));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        m61_addmod(vd, m61_mulmod(vs, vc)));
  }
  for (; i < len; ++i) dst[i] = add_m61(dst[i], mul_m61(src[i], c));
}

__attribute__((target("avx2"))) std::uint64_t dot_avx2(const std::uint64_t* a,
                                                       const std::uint64_t* b,
                                                       std::size_t len) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = m61_addmod(acc, m61_mulmod(va, vb));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t r = add_m61(add_m61(lanes[0], lanes[1]),
                            add_m61(lanes[2], lanes[3]));
  for (; i < len; ++i) r = add_m61(r, mul_m61(a[i], b[i]));
  return r;
}

__attribute__((target("avx2"))) void eval_many_avx2(
    const std::uint64_t* coeffs, std::size_t count, const std::uint64_t* xs,
    std::size_t m, std::uint64_t* out) {
  std::size_t k = 0;
  // Two independent 4-lane Horner chains per tile hide the multiply
  // latency; the coefficient broadcast is shared by all 8 points.
  for (; k + 8 <= m; k += 8) {
    const __m256i x0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + k));
    const __m256i x1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + k + 4));
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (std::size_t i = count; i-- > 0;) {
      const __m256i c =
          _mm256_set1_epi64x(static_cast<long long>(coeffs[i]));
      acc0 = m61_addmod(m61_mulmod(acc0, x0), c);
      acc1 = m61_addmod(m61_mulmod(acc1, x1), c);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k + 4), acc1);
  }
  for (; k < m; ++k) {
    const std::uint64_t x = xs[k];
    std::uint64_t acc = 0;
    for (std::size_t i = count; i-- > 0;) {
      acc = add_m61(mul_m61(acc, x), coeffs[i]);
    }
    out[k] = acc;
  }
}

__attribute__((target("avx2"))) inline __m256i gather4(
    const std::uint64_t* base, std::size_t i, std::size_t K) {
  return _mm256_set_epi64x(static_cast<long long>(base[3 * K + i]),
                           static_cast<long long>(base[2 * K + i]),
                           static_cast<long long>(base[K + i]),
                           static_cast<long long>(base[i]));
}

__attribute__((target("avx2"))) inline void scatter4(std::uint64_t* base,
                                                     std::size_t i,
                                                     std::size_t K,
                                                     __m256i v) {
  base[i] = static_cast<std::uint64_t>(_mm256_extract_epi64(v, 0));
  base[K + i] = static_cast<std::uint64_t>(_mm256_extract_epi64(v, 1));
  base[2 * K + i] = static_cast<std::uint64_t>(_mm256_extract_epi64(v, 2));
  base[3 * K + i] = static_cast<std::uint64_t>(_mm256_extract_epi64(v, 3));
}

__attribute__((target("avx2"))) void chunk_prefix_avx2(
    const std::uint64_t* vals, std::uint64_t* scratch, std::size_t K) {
  __m256i run = gather4(vals, 0, K);
  scatter4(scratch, 0, K, run);
  for (std::size_t i = 1; i < K; ++i) {
    run = m61_mulmod(run, gather4(vals, i, K));
    scatter4(scratch, i, K, run);
  }
}

__attribute__((target("avx2"))) void chunk_unwind_avx2(
    std::uint64_t* vals, const std::uint64_t* scratch,
    const std::uint64_t inv_totals[4], std::size_t K) {
  __m256i run =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(inv_totals));
  for (std::size_t i = K; i-- > 1;) {
    const __m256i v = gather4(vals, i, K);
    scatter4(vals, i, K, m61_mulmod(run, gather4(scratch, i - 1, K)));
    run = m61_mulmod(run, v);
  }
  scatter4(vals, 0, K, run);
}

#endif  // SSBFT_HAVE_AVX2_KERNELS

}  // namespace

bool available() {
#if SSBFT_HAVE_AVX2_KERNELS
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

const char* backend_name() { return available() ? "avx2" : "scalar"; }

void mul_vec(const std::uint64_t* a, const std::uint64_t* b,
             std::uint64_t* out, std::size_t len) {
#if SSBFT_HAVE_AVX2_KERNELS
  if (available()) {
    mul_vec_avx2(a, b, out, len);
    return;
  }
#endif
  mul_vec_scalar(a, b, out, len);
}

void scale_vec(const std::uint64_t* a, std::uint64_t c, std::uint64_t* out,
               std::size_t len) {
#if SSBFT_HAVE_AVX2_KERNELS
  if (available()) {
    scale_vec_avx2(a, c, out, len);
    return;
  }
#endif
  scale_vec_scalar(a, c, out, len);
}

void submul_vec(std::uint64_t* dst, const std::uint64_t* src, std::uint64_t c,
                std::size_t len) {
#if SSBFT_HAVE_AVX2_KERNELS
  if (available()) {
    submul_vec_avx2(dst, src, c, len);
    return;
  }
#endif
  submul_vec_scalar(dst, src, c, len);
}

void addmul_vec(std::uint64_t* dst, const std::uint64_t* src, std::uint64_t c,
                std::size_t len) {
#if SSBFT_HAVE_AVX2_KERNELS
  if (available()) {
    addmul_vec_avx2(dst, src, c, len);
    return;
  }
#endif
  addmul_vec_scalar(dst, src, c, len);
}

std::uint64_t dot(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t len) {
#if SSBFT_HAVE_AVX2_KERNELS
  if (available()) return dot_avx2(a, b, len);
#endif
  return dot_scalar(a, b, len);
}

void eval_many(const std::uint64_t* coeffs, std::size_t count,
               const std::uint64_t* xs, std::size_t m, std::uint64_t* out) {
#if SSBFT_HAVE_AVX2_KERNELS
  if (available()) {
    eval_many_avx2(coeffs, count, xs, m, out);
    return;
  }
#endif
  eval_many_scalar(coeffs, count, xs, m, out);
}

void chunk_prefix(const std::uint64_t* vals, std::uint64_t* scratch,
                  std::size_t K) {
#if SSBFT_HAVE_AVX2_KERNELS
  if (available()) {
    chunk_prefix_avx2(vals, scratch, K);
    return;
  }
#endif
  chunk_prefix_scalar(vals, scratch, K);
}

void chunk_unwind(std::uint64_t* vals, const std::uint64_t* scratch,
                  const std::uint64_t inv_totals[4], std::size_t K) {
#if SSBFT_HAVE_AVX2_KERNELS
  if (available()) {
    chunk_unwind_avx2(vals, scratch, inv_totals, K);
    return;
  }
#endif
  chunk_unwind_scalar(vals, scratch, inv_totals, K);
}

}  // namespace m61simd
}  // namespace ssbft
