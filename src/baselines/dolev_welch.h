// The Dolev-Welch-style randomized digital clock synchronization baseline
// (the paper's reference [9,10], synchronous-model row of Table 1).
//
// Rule per beat: broadcast clock; if >= n-f received values agree on v,
// adopt v+1 mod k; otherwise gamble on a uniformly random clock value —
// with *local*, uncoordinated randomness. Convergence requires the
// gambling correct nodes to collide on the same value (and survive the
// Byzantine votes), which happens with probability exponentially small in
// the number of disagreeing nodes: expected convergence O(k^(n-f)) flavor,
// the paper cites O(2^(2(n-f))) for the original. Closure is deterministic
// once synced. This baseline is what the common coin replaces.
#pragma once

#include <memory>

#include "coin/coin_interface.h"
#include "sim/protocol.h"
#include "support/rng.h"

namespace ssbft {

class DolevWelchClock final : public ClockProtocol {
 public:
  DolevWelchClock(const ProtocolEnv& env, ClockValue k, Rng rng,
                  ChannelId base = 0);

  void send_phase(Outbox& out) override;
  void receive_phase(const Inbox& in) override;
  void randomize_state(Rng& rng) override;
  ClockValue clock() const override { return clock_ % k_; }
  ClockValue modulus() const override { return k_; }
  std::uint32_t channel_count() const override { return base_ + 1; }
  // Reports only whether this beat gambled; the local coin draw is private
  // randomness, not a shared stream, so it is not traced as a coin.
  void trace_state(TraceEmitter& em) const override;

 private:
  ProtocolEnv env_;
  ClockValue k_;
  ChannelId base_;
  Rng rng_;
  ClockValue clock_ = 0;
  bool gambled_ = false;  // latched by receive_phase for trace_state
};

// The Section 6.1 adaptation: the same gamble-on-disagreement structure,
// but gambling with the *shared* coin stream of ss-Byz-Coin-Flip instead
// of local randomness. On a no-quorum beat every node bets on the same
// side — rand = 0 resets to the canonical clock 0, rand = 1 bets on the
// locally most frequent value + 1 — so a single common "0" beat where no
// correct node holds a quorum synchronizes everyone at once: expected
// O(1/p0) convergence instead of the exponential all-local-coins-align
// event. This is the paper's point that the coin, not the clock rule, is
// where the exponential/constant divide lives.
class DolevWelchSharedCoin final : public ClockProtocol {
 public:
  DolevWelchSharedCoin(const ProtocolEnv& env, ClockValue k,
                       const CoinSpec& coin, Rng rng, ChannelId base = 0);

  void send_phase(Outbox& out) override;
  void receive_phase(const Inbox& in) override;
  void randomize_state(Rng& rng) override;
  ClockValue clock() const override { return clock_ % k_; }
  ClockValue modulus() const override { return k_; }
  std::uint32_t channel_count() const override { return channels_end_; }
  void trace_state(TraceEmitter& em) const override;

  static std::uint32_t channels_needed(const CoinSpec& coin) {
    return 1 + coin.channels;
  }

 private:
  ProtocolEnv env_;
  ClockValue k_;
  ChannelId base_;
  std::uint32_t channels_end_;
  std::unique_ptr<CoinComponent> coin_;
  ClockValue clock_ = 0;
  bool gambled_ = false;  // latched by receive_phase for trace_state
};

}  // namespace ssbft
