// Reed-Solomon decoding via the Berlekamp-Welch algorithm.
//
// This is the error-correcting share recovery at the heart of the coin's
// recover phase: with n >= 3f+1 points of which at most f are Byzantine
// lies, the unique degree-<=f dealing polynomial is recovered exactly
// (m points correct e errors for a degree-d polynomial when
//  m >= d + 2e + 1; here m >= n - f >= 2f + 1 + (b lying senders) and
//  e <= b, satisfying the bound — see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "field/fp.h"
#include "field/poly.h"

namespace ssbft {

struct RsPoint {
  std::uint64_t x;
  std::uint64_t y;
};

// Decodes the unique polynomial of degree <= degree agreeing with all but at
// most max_errors of the given points (distinct x's). Returns std::nullopt
// if no such polynomial exists. Complexity: O((degree + max_errors)^3) per
// attempted error count, via Gaussian elimination.
std::optional<Poly> berlekamp_welch(const PrimeField& F,
                                    const std::vector<RsPoint>& points,
                                    int degree, int max_errors);

// Convenience: counts how many points disagree with p.
int count_disagreements(const PrimeField& F, const Poly& p,
                        const std::vector<RsPoint>& points);

}  // namespace ssbft
