// The experiment registry behind every bench binary. Each of the eight
// historical bench mains is one registered experiment; the `ssbft_bench`
// driver runs any of them (or any registry scenario cell, by glob) and the
// per-experiment binaries are thin wrappers over bench_main().
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/sweep.h"

namespace ssbft::bench {

// Shared CLI for the bench binaries and the driver's `run` subcommand.
// A value of 0 means "keep the experiment's per-cell default" (for
// --jobs, 0 means one worker per hardware thread, the default).
struct BenchOptions {
  std::uint64_t trials = 0;  // override every cell's trial count
  std::uint64_t seed = 0;    // offset added to every cell's base seed
  std::uint64_t jobs = 0;    // sweep worker threads
  ReportFormat format = ReportFormat::kAscii;
  bool format_set = false;   // --format was given explicitly
  std::string out;           // --out FILE (empty = stdout)
  bool progress = false;     // stderr units-done progress line
  std::string trace;         // --trace DIR: per-(cell, trial) JSONL traces
  // --shard i/k: run only the slice u % k == i of the sweep's global
  // (cell, trial) unit sequence and emit an ssbft-shard-v1 report
  // (scenario globs only; merge the k reports with `ssbft_bench merge`).
  ShardSpec shard;
  // --checkpoint FILE [--checkpoint-every N] [--resume]: crash-safe
  // sweeps (scenario globs only; see harness/checkpoint.h).
  std::string checkpoint;
  std::uint64_t checkpoint_every = 16;
  bool resume = false;
};

// Parses argv[first..) into a BenchOptions value; prints usage and exits
// on --help or malformed input. No global state: the returned value flows
// into the experiment/scenario calls explicitly. wrapper_note appends the
// "this binary is a thin wrapper over ssbft_bench" pointer to --help —
// the driver passes false when parsing its own `run` options.
BenchOptions parse_cli(const char* prog, int argc, char** argv,
                       int first = 1, bool wrapper_note = true);

// --trials / --seed overrides layered on an experiment's defaults.
std::uint64_t trials_or(const BenchOptions& o, std::uint64_t def);
// --seed shifts, rather than replaces, each cell's base seed: the
// per-table offsets (e.g. 2000 + n) keep rows statistically independent
// while a nonzero S yields a fresh independent replication.
std::uint64_t shifted_seed(const BenchOptions& o, std::uint64_t def);

// RunnerConfig for a registry cell: the spec's defaults + the overrides.
RunnerConfig cell_config(const BenchOptions& o, const ScenarioSpec& spec);

// Fetches a registry cell as a SweepCell (REQUIREs the name to exist —
// experiment grids reference only registered scenarios).
SweepCell registry_cell(const BenchOptions& o, const std::string& name);

// Statistic cells shared by the table writers.
std::string stat_cell(const TrialStats& s);
std::string converged_cell(const TrialStats& s);

struct Experiment {
  const char* name;
  const char* summary;
  void (*run)(const BenchOptions&, Report&);
};

// All experiments, in registration (display) order.
const std::vector<Experiment>& experiments();
const Experiment* find_experiment(const std::string& name);

// Entry point for the thin per-experiment wrappers: parse CLI, open
// --out if given, run the experiment. Returns the process exit code.
int bench_main(const std::string& experiment, int argc, char** argv);

// Resolves --out into the stream the report writes to: stdout when empty,
// else `file` opened at o.out (staged to o.out + ".tmp" and published by
// commit_report_out, so a crashed run never leaves a half-written
// report). Returns nullptr after printing an error when the file cannot
// be opened — callers must validate everything else (e.g. the run
// target) *before* calling, so a failed run never clobbers an existing
// results file.
std::ostream* open_report_out(const BenchOptions& o, AtomicOutFile& file,
                              const char* prog);

// Publishes a report opened by open_report_out (no-op for stdout).
// False after printing an error on I/O failure.
bool commit_report_out(AtomicOutFile& file, const char* prog);

// Driver helper: run an already-matched, non-empty set of registry
// scenarios (see match_scenarios) as one sweep and report a generic
// per-cell table. Taking the matched set lets the driver validate the
// pattern *before* opening/truncating --out. Honors --checkpoint /
// --resume (but not --shard — that is run_shard_cells).
void run_scenario_cells(const std::string& pattern,
                        const std::vector<const ScenarioSpec*>& matched,
                        const BenchOptions& o, Report& report);

// The per-cell scenario table shared by run_scenario_cells and
// merge_shard_reports, so a merged report is byte-identical to the
// unsharded run's. specs and stats are parallel, in cell order.
void render_scenario_table(const std::string& pattern,
                           const std::vector<const ScenarioSpec*>& specs,
                           const std::vector<TrialStats>& stats,
                           Report& report);

// Driver helper: run one shard of a scenario sweep and write the
// ssbft-shard-v1 JSONL report (with per-unit trace commitments when
// --trace is on) to `out`.
void run_shard_cells(const std::string& pattern,
                     const std::vector<const ScenarioSpec*>& matched,
                     const BenchOptions& o, std::ostream& out);

// `ssbft_bench merge`: parse + validate + fold shard reports, then render
// the standard scenario table (or, with commitment_only, print just the
// aggregate trace commitment — `ssbft_check --commitment-only`'s shape).
// Returns the process exit code; every rejection is one structured
// stderr line.
int merge_shard_reports(const std::vector<std::string>& paths,
                        const BenchOptions& o, bool commitment_only);

// `ssbft_bench soak` knobs (harness/chaos.h drives the sampling).
struct SoakOptions {
  std::uint64_t campaign_seed = 1;
  std::uint64_t units = 64;  // chaos units sampled across the matched cells
  std::uint64_t bound = 0;   // re-convergence bound to enforce (0 = off)
  bool minimize = false;     // delta-debug each violating plan
};

// Driver helper: run a chaos campaign over the matched registry cells —
// unit i perturbs matched[i % matched.size()] with the FaultPlan sampled
// from (campaign_seed, i) — through the sweep scheduler with streaming
// invariant checking, then print one structured repro line per violating
// unit (deterministic across --jobs/--shard/--resume). With
// SoakOptions::minimize, each violating plan is delta-debugged to a
// minimal registrable spec. Returns 0 (green), 1 (violations) or 2
// (environment error).
int run_soak_campaign(const std::string& pattern,
                      const std::vector<const ScenarioSpec*>& matched,
                      const BenchOptions& o, const SoakOptions& soak);

}  // namespace ssbft::bench
