// Cross-cell sweep scheduler: one global work queue of (cell, trial)
// units feeding a worker pool, so a multi-row table runs at the speed of
// its aggregate work instead of barriering on the slowest cell of each
// row. Determinism contract: trial t of cell c is always seeded
// cell.cfg.base_seed + t and outcomes are merged per cell in trial order,
// so every cell's TrialStats is bit-identical to running that cell alone
// with run_trials at jobs = 1 — for every jobs value and any interleaving.
//
// The same contract extends across processes: `shard` restricts a run to
// the units u with u % count == index, so k shard runs (on k machines)
// merged back together are bit-identical to one serial run; and
// `checkpoint_path`/`resume` persist completed units so a killed sweep
// continues where it stopped, with TrialStats and trace commitments
// bit-identical to an uninterrupted run (harness/checkpoint.h holds the
// on-disk formats).
#pragma once

#include <string>
#include <vector>

#include "harness/checker.h"
#include "harness/checkpoint.h"
#include "harness/runner.h"

namespace ssbft {

// One cell of a sweep grid: a named engine-builder plus its trial config.
// cfg.jobs is ignored here — scheduling is sweep-global.
struct SweepCell {
  std::string name;
  EngineBuilder builder;
  RunnerConfig cfg;
};

struct SweepOptions {
  // Worker threads over the global unit queue. 1 = serial; 0 = one per
  // hardware thread; clamped to 4x the hardware thread count and to the
  // total unit count.
  std::uint64_t jobs = 1;
  // Opt-in stderr progress line ("sweep: u/N units done" — under an
  // active shard, the slice's units) for long sweeps.
  bool progress = false;
  // When non-empty, every (cell, trial) unit writes a JSONL execution
  // trace (sim/trace.h) to "<trace_dir>/<cell>.t<trial>.jsonl" (cell names
  // sanitized for the filesystem). The directory is created. Tracing never
  // affects results: the same seeds, the same beats, the same TrialStats.
  std::string trace_dir;
  // Run only this slice of the global unit sequence (u % count == index).
  // Seeding stays per-cell (base_seed + trial), so any sharding merges
  // bit-identical to the serial run.
  ShardSpec shard;
  // Compute each unit's SHA-256 trace commitment (requires trace_dir) and
  // return it in SweepUnitResult — the replay-exactness oracle shard
  // reports and checkpoints carry.
  bool collect_commitments = false;
  // When non-empty, atomically rewrite this checkpoint file after every
  // `checkpoint_every` completed units (and once at the end), so a killed
  // sweep can continue with --resume.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 16;
  // Replay `checkpoint_path` before running: completed units are restored
  // (not re-run), a torn tail is discarded with a warning, and a
  // checkpoint from a different grid or shard is a contract_error.
  bool resume = false;
  // Streaming invariant checking (harness/live_check.h): attach a
  // StreamingChecker to every unit and run the *full* beat budget (not
  // stopping at confirmed convergence, so post-convergence closure and
  // late scheduled corruptions stay under scrutiny). converged/synced_at
  // come from the checker's verdict and TrialOutcome::check_violations
  // carries its violation count. Composes with trace_dir (the records tee
  // to both sinks).
  bool live_check = false;
  CheckOptions live_check_opts;
};

// One completed unit, in global unit order within the shard's slice.
struct SweepUnitResult {
  std::uint64_t unit = 0;  // global unit index
  std::uint32_t cell = 0;  // index into the cells vector
  std::uint64_t trial = 0;
  TrialOutcome outcome;
};

struct SweepResult {
  // One TrialStats per cell, in cell order, folded from this run's units
  // in trial order. With an inactive shard this covers every trial; with
  // an active shard, only the slice's (useful for smoke checks — the real
  // cross-shard fold is merge_shard_files).
  std::vector<TrialStats> stats;
  std::vector<SweepUnitResult> units;  // the slice, in unit order
  std::uint64_t total_units = 0;       // whole grid, all shards
  std::uint64_t resumed_units = 0;     // restored from the checkpoint
};

// Runs every (cell, trial) unit of the shard's slice and returns stats
// plus per-unit outcomes. Throws contract_error on unusable options or a
// checkpoint that cannot be resumed safely.
SweepResult run_sweep_ex(const std::vector<SweepCell>& cells,
                         const SweepOptions& opts);

// Runs every (cell, trial) unit and returns one TrialStats per cell, in
// cell order (run_sweep_ex's stats).
std::vector<TrialStats> run_sweep(const std::vector<SweepCell>& cells,
                                  const SweepOptions& opts);

// SHA-256 fingerprint of the grid's identity (cell names, trial counts,
// seeds, convergence budgets — everything that determines unit results).
// Checkpoints and shard reports embed it so they can never be replayed
// against, or merged into, a different grid. Deliberately excludes the
// shard spec: all k shards of one grid share one fingerprint.
std::string sweep_fingerprint(const std::vector<SweepCell>& cells);

// The ssbft-shard-v1 preamble describing this grid and slice (cli_seed /
// cli_trials are left 0 for the caller to stamp).
ShardHeader shard_header_for(const std::vector<SweepCell>& cells,
                             const ShardSpec& shard,
                             const std::string& pattern);

// Folds one cell's outcomes (trial order) into TrialStats — the exact
// fold run_sweep uses, exported so shard merges cannot drift from it.
TrialStats merge_outcomes(const std::vector<TrialOutcome>& outcomes);

}  // namespace ssbft
