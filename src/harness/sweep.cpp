// Implements both the cross-cell sweep scheduler and the single-cell
// run_trials entry point on one shared (claim, run, merge) core, so the
// two paths cannot drift apart numerically.
#include "harness/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <mutex>
#include <thread>

#include "sim/trace.h"
#include "support/check.h"

namespace ssbft {

namespace {

double percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

// What one trial contributes to the aggregate, captured per index so that
// workers never contend and the merge can run in trial order.
struct TrialOutcome {
  bool converged = false;
  std::uint64_t synced_at = 0;
  double msgs_per_beat = 0.0;
};

std::uint64_t effective_jobs(std::uint64_t requested, std::uint64_t units) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::uint64_t hw = hw_raw == 0 ? 1 : hw_raw;
  std::uint64_t jobs = requested == 0 ? hw : requested;
  // Trials are CPU-bound, so threads beyond the core count only add
  // scheduling overhead — and an absurd jobs value must not exhaust OS
  // threads. Results are jobs-independent, so clamping is safe.
  jobs = std::min(jobs, 4 * hw);
  return std::min(jobs, units);
}

std::string sanitize_for_path(const std::string& name) {
  std::string out = name.empty() ? "cell" : name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

TrialOutcome run_unit(const SweepCell& cell, std::uint64_t t,
                      const SweepOptions& opts) {
  EngineBundle bundle = cell.builder(cell.cfg.base_seed + t);
  SSBFT_CHECK(bundle.engine != nullptr);
  // Destroyed before the bundle (declared later), which is safe: no beat
  // runs after measure_convergence returns and the engine's destructor
  // never touches its trace sink.
  std::unique_ptr<JsonlTraceSink> sink;
  if (!opts.trace_dir.empty()) {
    const std::string path = opts.trace_dir + "/" +
                             sanitize_for_path(cell.name) + ".t" +
                             std::to_string(t) + ".jsonl";
    sink = std::make_unique<JsonlTraceSink>(path);
    SSBFT_REQUIRE_MSG(sink->ok(), "cannot open trace file " << path);
    TraceMeta meta;
    meta.scenario = cell.name;
    meta.trial = t;
    meta.seed = cell.cfg.base_seed + t;
    meta.n = bundle.engine->n();
    meta.f = bundle.engine->f();
    for (NodeId id = 0; id < bundle.engine->n(); ++id) {
      if (bundle.engine->is_faulty(id)) meta.faulty.push_back(id);
    }
    meta.max_beats = cell.cfg.convergence.max_beats;
    meta.confirm_window = cell.cfg.convergence.confirm_window;
    sink->begin_trace(meta);
    bundle.engine->set_trace(sink.get());
  }
  const ConvergenceResult r =
      measure_convergence(*bundle.engine, cell.cfg.convergence);
  return {r.converged, r.synced_at,
          bundle.engine->metrics().mean_correct_messages_per_beat()};
}

// Merge in trial order: sample order and floating-point accumulation
// order are fixed by the trial index, never by completion order.
TrialStats merge_outcomes(const std::vector<TrialOutcome>& outcomes) {
  TrialStats stats;
  stats.trials = outcomes.size();
  if (outcomes.empty()) return stats;
  stats.samples.reserve(outcomes.size());
  double msgs_acc = 0.0;
  for (const TrialOutcome& o : outcomes) {
    msgs_acc += o.msgs_per_beat;
    if (o.converged) {
      ++stats.converged;
      stats.samples.push_back(o.synced_at);
    }
  }
  stats.mean_msgs_per_beat = msgs_acc / static_cast<double>(outcomes.size());
  if (!stats.samples.empty()) {
    std::vector<std::uint64_t> sorted = stats.samples;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (auto s : sorted) sum += static_cast<double>(s);
    stats.mean = sum / static_cast<double>(sorted.size());
    stats.median = percentile(sorted, 0.5);
    stats.p90 = percentile(sorted, 0.9);
    stats.max = sorted.back();
  }
  return stats;
}

}  // namespace

std::vector<TrialStats> run_sweep(const std::vector<SweepCell>& cells,
                                  const SweepOptions& opts) {
  // Flatten the grid into one unit list: unit u = (cell_of[u],
  // trial_of[u]), cells in order, trials in order within each cell — so a
  // serial walk is exactly "run_trials per cell".
  std::vector<std::uint32_t> cell_of;
  std::vector<std::uint64_t> trial_of;
  std::vector<std::vector<TrialOutcome>> outcomes(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    outcomes[c].resize(cells[c].cfg.trials);
    for (std::uint64_t t = 0; t < cells[c].cfg.trials; ++t) {
      cell_of.push_back(static_cast<std::uint32_t>(c));
      trial_of.push_back(t);
    }
  }
  const std::uint64_t units = cell_of.size();

  if (!opts.trace_dir.empty()) {
    std::filesystem::create_directories(opts.trace_dir);
  }

  // Per-cell countdown for the progress line; fires when a cell's last
  // unit retires, from whichever worker ran it. The done-count increments
  // under the same lock as the print so the reported sequence is
  // monotone even when two cells finish concurrently.
  std::vector<std::atomic<std::uint64_t>> remaining(cells.size());
  std::uint64_t cells_done = 0;  // guarded by io_mu once workers start
  std::mutex io_mu;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    remaining[c].store(cells[c].cfg.trials);
    if (cells[c].cfg.trials == 0) ++cells_done;
  }
  const auto finish_unit = [&](std::uint32_t c) {
    if (remaining[c].fetch_sub(1) != 1) return;
    if (!opts.progress) return;
    std::lock_guard<std::mutex> lock(io_mu);
    std::fprintf(stderr, "sweep: %llu/%zu cells done\n",
                 static_cast<unsigned long long>(++cells_done), cells.size());
    std::fflush(stderr);
  };
  const auto run_one = [&](std::uint64_t u) {
    const std::uint32_t c = cell_of[u];
    outcomes[c][trial_of[u]] = run_unit(cells[c], trial_of[u], opts);
    finish_unit(c);
  };

  const std::uint64_t jobs = effective_jobs(opts.jobs, units);
  if (jobs <= 1) {
    for (std::uint64_t u = 0; u < units; ++u) run_one(u);
  } else {
    std::atomic<std::uint64_t> next{0};
    std::mutex error_mu;
    std::exception_ptr first_error;
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::uint64_t w = 0; w < jobs; ++w) {
      pool.emplace_back([&] {
        try {
          for (std::uint64_t u = next.fetch_add(1); u < units;
               u = next.fetch_add(1)) {
            run_one(u);
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
          // Exhaust the unit counter so the other workers wind down
          // instead of grinding through the remaining trials.
          next.store(units);
        }
      });
    }
    for (auto& th : pool) th.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  std::vector<TrialStats> stats;
  stats.reserve(cells.size());
  for (const auto& cell_outcomes : outcomes) {
    stats.push_back(merge_outcomes(cell_outcomes));
  }
  return stats;
}

TrialStats run_trials(const EngineBuilder& builder, const RunnerConfig& cfg) {
  SweepOptions opts;
  opts.jobs = cfg.jobs;
  std::vector<SweepCell> cells;
  cells.push_back(SweepCell{"", builder, cfg});
  return run_sweep(cells, opts)[0];
}

}  // namespace ssbft
