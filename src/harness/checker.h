// Offline trace verification (the `ssbft_check` tool's engine).
//
// Input: JSONL execution traces written by JsonlTraceSink (sim/trace.h).
// The pipeline is parse -> merge -> check/commit:
//
//   * parse_trace: strict line-by-line decoding of one file. Anything the
//     sink would not emit — malformed JSON, unknown types or keys, missing
//     keys, out-of-range nodes, records from faulty nodes (clock/phase/
//     coin/corrupt are statements about *correct* nodes; a faulty-node
//     record is a forgery), coin bits > 1, non-monotone beats, records
//     before the header — is a decode error, never UB.
//
//   * merge_traces: groups parsed files by (scenario, trial, seed),
//     requires their headers to agree, and folds each group into one
//     canonical stream under a total record order (beat, node, event,
//     stream, payload) — independent of how the run was split across
//     files. Post-merge, any beat carrying clock
//     records must carry exactly one per correct node, and every clock
//     record must agree on the modulus.
//
//   * check_trace verifies the paper's invariants on one merged trace:
//       1. convergence: the same streak detector as measure_convergence
//          (harness/convergence.h) run over the recorded clocks;
//       2. closure: after a confirmed convergence, every beat's common
//          clock must be previous + 1 (mod k); a recorded transient
//          corruption withdraws the converged claim at its own beat (the
//          randomized internal state may surface as a clock break only
//          beats later), so any break without a preceding corruption is a
//          violation;
//       3. re-convergence bound: with CheckOptions::bound set, the final
//          convergence must start within `bound` beats of the last
//          corruption (of genesis when none);
//       4. coin agreement: post-convergence, per-(beat, stream) groups of
//          coin records from >= 2 correct nodes must be all-equal at a
//          rate >= CheckOptions::coin_agreement (the common coin's
//          p0 + p1 guarantee, Definition 2.7).
//     A trace that never converges within its budget is *censored*, not
//     failing (Table 1's exponential baselines legitimately time out);
//     CheckOptions::require_convergence upgrades censoring to a violation.
//
//   * trace_commitment / aggregate_commitment: SHA-256 over a canonical
//     re-serialization of the merged stream ("ssbft-trace-v1"). Identical
//     executions yield identical commitments regardless of file naming,
//     formatting, or --jobs scheduling — the replay-exactness oracle.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/trace.h"
#include "support/types.h"

namespace ssbft {

// Decoded trace header (the TraceMeta round-tripped through JSONL).
struct TraceHeader {
  std::string scenario;
  std::uint64_t trial = 0;
  std::uint64_t seed = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  std::vector<NodeId> faulty;
  std::uint64_t max_beats = 0;
  std::uint64_t confirm_window = 0;
};

struct ParsedTrace {
  TraceHeader header;
  std::vector<TraceRecord> records;
};

struct ParseResult {
  bool ok = false;
  std::string error;           // empty iff ok
  std::size_t error_line = 0;  // 1-based line of the first error
  ParsedTrace trace;
};

// Decodes one JSONL trace stream. Never throws on bad input; every
// rejection is a structured (error, line) pair.
ParseResult parse_trace(std::istream& in);

struct MergeResult {
  bool ok = false;
  std::string error;  // empty iff ok
  // One canonical trace per (scenario, trial, seed), sorted by that key.
  std::vector<ParsedTrace> traces;
};

MergeResult merge_traces(std::vector<ParsedTrace> parts);

struct CheckOptions {
  // Required re-convergence bound in beats after the last corruption
  // (0 = don't enforce). Implies the trace must end converged.
  std::uint64_t bound = 0;
  // Treat a censored (never-converged) trace as a violation.
  bool require_convergence = false;
  // Minimum post-convergence all-equal rate for coin groups.
  double coin_agreement = 0.5;
  // Override the header's confirmation window (0 = use the header's,
  // falling back to 12 when the header carries 0).
  std::uint64_t confirm_window = 0;
  // Declared network-fault horizon: beats before this are treated like
  // corruption beats (converged claims withdrawn, no convergence-streak
  // accrual, no closure enforcement) because the run's declared
  // lossy/phantom window or delivery adversary was still active — the
  // synchronous-network assumption the invariants rest on does not hold
  // there. 0 = clean network. FaultPlan::network_quiescence derives the
  // value; live-checked sweeps (harness/sweep.h) set it per unit from the
  // engine's own plan. The re-convergence bound measures from
  // max(last corruption, this horizon).
  std::uint64_t fault_horizon = 0;
};

struct CheckResult {
  bool ok = true;  // no violations
  bool converged = false;  // the trace *ends* in a confirmed converged run
  bool censored = false;   // never converged within the recorded beats
  Beat synced_at = 0;      // start of the final convergence streak
  std::uint64_t beats = 0;  // beats covered by the trace
  Beat last_corruption = 0;
  bool had_corruption = false;
  double coin_agreement_rate = 1.0;  // over post-convergence groups
  std::uint64_t coin_groups = 0;
  // Total violations found; `violations` retains at most the first 32
  // messages, so the count can exceed the list's size.
  std::uint64_t violation_count = 0;
  std::vector<std::string> violations;
};

CheckResult check_trace(const ParsedTrace& trace, const CheckOptions& opts);

// Canonical SHA-256 commitment (64 hex chars) of one merged trace.
std::string trace_commitment(const ParsedTrace& trace);

// Order-independent roll-up: SHA-256 over the sorted per-trace commitments.
std::string aggregate_commitment(std::vector<std::string> commitments);

}  // namespace ssbft
