// A Feldman-Micali-style probabilistic coin-flipping instance
// (Definition 2.6; Observation 2.1).
//
// Every node deals a uniform secret of Z_p through graded VSS; after the
// one-round recover phase each node outputs the parity of the sum of the
// recovered secrets of all dealers it graded >= 1 (kLow). Properties:
//
//   (termination)      exactly 4 send rounds (Delta_A = 4): deal, cross-
//                      check, happy votes, recover shares;
//   (binary output)    parity of a field-element sum;
//   (events E0/E1)     correct dealers are graded 2 by everyone and their
//                      secrets recovered identically by everyone; when the
//                      adversary's dealings do not split grades across
//                      correct nodes, all nodes sum the same set and the
//                      parity is a fair common coin (p0 ~ p1 ~ 1/2 up to
//                      the 2^-61 bias of parity over Z_(2^61-1));
//   (unpredictability) dealings are degree-f symmetric bivariate
//                      polynomials — f rows give zero information, so the
//                      sum is unknowable to the adversary until the
//                      recover round, by which time all its dealings are
//                      committed (graded).
//
// Full Feldman-Micali guarantees constant common-coin probability against
// *every* adversary via additional oblivious-coin machinery; this simpler
// graded-inclusion rule can diverge when an adversarial dealing lands on
// the grade-1/grade-0 boundary at different correct nodes. That gap is a
// documented substitution (DESIGN.md): bench_coin_quality measures the
// realized p0/p1 per adversary, including a dedicated grade-splitting
// attacker, and the clock layer above consumes only the measured
// constants.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coin/coin_interface.h"
#include "coin/gvss.h"
#include "field/fp.h"

namespace ssbft {

struct FmCoinParams {
  // Field modulus. 0 selects the default 61-bit Mersenne prime. Any prime
  // > n works (Remark 2.3: derived canonically from the code's constants);
  // smaller primes skew the parity coin but remain constant-probability.
  std::uint64_t prime = 0;

  std::uint64_t resolve_prime() const {
    return prime == 0 ? PrimeField::kDefaultPrime : prime;
  }
};

class FmCoinInstance final : public CoinInstance {
 public:
  FmCoinInstance(const ProtocolEnv& env, const FmCoinParams& params, Rng rng);

  int rounds() const override { return kRounds; }
  void send_round(int round, Outbox& out, ChannelId base) override;
  void receive_round(int round, const Inbox& in, ChannelId base) override;
  bool output() const override { return output_bit_; }
  void randomize_state(Rng& rng) override;

  static constexpr int kRounds = 4;

  // Introspection for tests.
  GvssGrade grade_of(NodeId dealer) const { return grades_[dealer]; }
  std::uint64_t my_secret() const { return dealing_.secret(); }

 private:
  void send_deal(Outbox& out, ChannelId ch);
  void send_cross(Outbox& out, ChannelId ch);
  void send_votes(Outbox& out, ChannelId ch);
  void send_shares(Outbox& out, ChannelId ch);
  void recv_deal(const Inbox& in, ChannelId ch);
  void recv_cross(const Inbox& in, ChannelId ch);
  void recv_votes(const Inbox& in, ChannelId ch);
  void recv_shares(const Inbox& in, ChannelId ch);

  ProtocolEnv env_;
  PrimeField field_;
  Rng rng_;
  GvssDealing dealing_;  // my own secret's dealing

  // Per dealer d: my row of d's dealing (nullopt if missing/malformed).
  std::vector<std::optional<Poly>> rows_;
  // Per dealer d: number of nodes whose cross value matched my row.
  std::vector<std::uint32_t> cross_matches_;
  // Per dealer d: my happy vote.
  std::vector<bool> happy_;
  // voted_happy_[j] = round-3 bitmask received from node j (empty if none).
  std::vector<std::vector<bool>> voted_happy_;
  // Per dealer d: grade derived from the votes.
  std::vector<GvssGrade> grades_;

  bool output_bit_ = false;
};

// CoinSpec for the self-stabilizing pipeline over FM instances
// (ss-Byz-Coin-Flip with A = this coin; Theorem 1). Uses 4 channels.
CoinSpec fm_coin_spec(FmCoinParams params = {});

}  // namespace ssbft
