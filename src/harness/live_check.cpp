#include "harness/live_check.h"

#include <algorithm>
#include <string>

namespace ssbft {

void InvariantCore::reset(const CheckOptions& opts,
                          std::uint64_t header_confirm_window) {
  opts_ = opts;
  window_ = opts.confirm_window != 0
                ? opts.confirm_window
                : (header_confirm_window != 0 ? header_confirm_window : 12);
  res_ = CheckResult{};
  mode_ = Mode::kSearching;
  prev_common_.reset();
  streak_ = 0;
  streak_start_ = 0;
  k_ = 0;
  total_groups_ = total_equal_ = 0;
  after_groups_ = after_equal_ = 0;
  coin_acc_.clear();
  beat_open_ = false;
  cur_beat_ = 0;
  corrupt_here_ = false;
  have_clocks_ = false;
  clocks_common_ = true;
  common_value_ = 0;
  finished_ = false;
}

void InvariantCore::violation(std::string msg) {
  res_.ok = false;
  ++res_.violation_count;
  if (res_.violations.size() < 32) res_.violations.push_back(std::move(msg));
}

void InvariantCore::feed(const TraceRecord& r) {
  if (!beat_open_ || r.beat != cur_beat_) {
    if (beat_open_) finalize_beat();
    beat_open_ = true;
    cur_beat_ = r.beat;
    ++res_.beats;
    corrupt_here_ = false;
    have_clocks_ = false;
    clocks_common_ = true;
    common_value_ = 0;
    coin_acc_.clear();
  }
  switch (r.event) {
    case TraceEvent::kCorrupt:
      corrupt_here_ = true;
      res_.had_corruption = true;
      res_.last_corruption = cur_beat_;
      break;
    case TraceEvent::kClock: {
      if (k_ == 0) k_ = r.b;
      if (r.a >= k_) {
        violation("beat " + std::to_string(cur_beat_) + " node " +
                  std::to_string(r.node) + ": clock value " +
                  std::to_string(r.a) + " >= modulus " + std::to_string(k_));
      }
      if (!have_clocks_) {
        have_clocks_ = true;
        common_value_ = r.a;
      } else if (r.a != common_value_) {
        clocks_common_ = false;
      }
      break;
    }
    case TraceEvent::kCoin: {
      const bool bit = r.a != 0;
      bool found = false;
      for (CoinAcc& acc : coin_acc_) {
        if (acc.stream != r.stream) continue;
        found = true;
        ++acc.count;
        if (acc.first_bit != bit) acc.equal = false;
        break;
      }
      if (!found) coin_acc_.push_back({r.stream, 1, bit, true});
      break;
    }
    default:
      break;
  }
}

void InvariantCore::finalize_beat() {
  const Beat beat = cur_beat_;
  const std::optional<ClockValue> common =
      (have_clocks_ && clocks_common_)
          ? std::optional<ClockValue>(common_value_)
          : std::nullopt;

  // A recorded corruption invalidates the known-good state at this beat
  // even when the visible clocks still step legally: the engine corrupts
  // before the send phase, so randomized *internal* state can surface as
  // a clock break only after the next exchange (or later). Withdraw the
  // converged claim / candidate streak here — re-convergence is measured
  // from the corruption — instead of excusing only a break that becomes
  // visible on exactly this beat. Beats inside the declared network-fault
  // horizon (lossy window, unhealed delivery adversary) are faulted for
  // the same reason: message suppression legally breaks lockstep there.
  const bool faulted = corrupt_here_ || beat < opts_.fault_horizon;
  if (faulted) {
    mode_ = Mode::kSearching;
    streak_ = 0;
  }

  if (have_clocks_) {
    if (mode_ == Mode::kConverged) {
      const bool legal_step = common.has_value() && prev_common_.has_value() &&
                              *common == (*prev_common_ + 1) % k_;
      if (!legal_step) {
        violation("beat " + std::to_string(beat) +
                  ": closure broke without a recorded corruption");
        mode_ = Mode::kSearching;
        streak_ = 0;
      }
    }
    // A faulted beat never accrues streak: its common clock (if any)
    // predates the damage just injected, or sits inside the declared
    // network-fault window.
    if (mode_ == Mode::kSearching && !faulted) {
      const bool continues =
          common.has_value() &&
          (!prev_common_.has_value() ||
           (streak_ > 0 && *common == (*prev_common_ + 1) % k_));
      if (common.has_value() && (streak_ == 0 || continues)) {
        if (streak_ == 0) {
          streak_start_ = beat;
          after_groups_ = after_equal_ = 0;
        }
        ++streak_;
      } else if (common.has_value()) {
        streak_start_ = beat;
        after_groups_ = after_equal_ = 0;
        streak_ = 1;
      } else {
        streak_ = 0;
      }
      if (streak_ >= window_) {
        mode_ = Mode::kConverged;
        res_.synced_at = streak_start_;
      }
    }
    prev_common_ = common;
  }

  // Fold the beat's coin groups after the streak update, so a group on a
  // streak's first beat lands on the excluded (`beat <= synced_at`) side
  // of the offline filter if that streak confirms.
  for (const CoinAcc& acc : coin_acc_) {
    if (acc.count < 2) continue;
    ++total_groups_;
    if (acc.equal) ++total_equal_;
    const bool candidate = mode_ == Mode::kConverged || streak_ > 0;
    if (candidate && beat > streak_start_) {
      ++after_groups_;
      if (acc.equal) ++after_equal_;
    }
  }
  beat_open_ = false;
}

const CheckResult& InvariantCore::finish() {
  if (finished_) return res_;
  finished_ = true;
  if (beat_open_) finalize_beat();

  res_.converged = mode_ == Mode::kConverged;
  res_.censored = !res_.converged;

  // Coin agreement over confirmed-converged beats (gates derive from the
  // common clocks there, so groups are aligned across nodes). A censored
  // trace reports its rate over every group but enforces nothing.
  const std::uint64_t groups = res_.converged ? after_groups_ : total_groups_;
  const std::uint64_t equal = res_.converged ? after_equal_ : total_equal_;
  res_.coin_groups = groups;
  res_.coin_agreement_rate =
      groups == 0 ? 1.0
                  : static_cast<double>(equal) / static_cast<double>(groups);
  if (res_.converged && groups > 0 &&
      res_.coin_agreement_rate < opts_.coin_agreement) {
    violation("coin agreement rate " + std::to_string(res_.coin_agreement_rate) +
              " below required " + std::to_string(opts_.coin_agreement));
  }

  if (opts_.require_convergence && res_.censored) {
    violation("never converged within " + std::to_string(res_.beats) +
              " recorded beats");
  }
  if (opts_.bound != 0) {
    if (!res_.converged) {
      violation("re-convergence bound set but the trace never (re)converged");
    } else {
      const Beat origin =
          std::max<Beat>(res_.had_corruption ? res_.last_corruption : 0,
                         opts_.fault_horizon);
      if (res_.synced_at >= origin && res_.synced_at - origin > opts_.bound) {
        violation("re-converged " + std::to_string(res_.synced_at - origin) +
                  " beats after the last corruption, bound is " +
                  std::to_string(opts_.bound));
      }
    }
  }
  return res_;
}

}  // namespace ssbft
