// Tests for the crash-safe distributed-sweep persistence layer
// (harness/checkpoint.h): the codec primitives (shard specs, hexfloat
// round trips, CRC-32), the checkpoint format's torn-tail-vs-hard-error
// split, the ssbft-shard-v1 parser's strictness, atomic publication, and
// the headline recovery guarantees — a sweep resumed after truncation or
// a real SIGKILL produces TrialStats and trace commitments bit-identical
// to an uninterrupted run.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "harness/checkpoint.h"
#include "harness/scenario.h"
#include "harness/sweep.h"
#include "support/check.h"

namespace ssbft {
namespace {

namespace fs = std::filesystem;

std::string crc_suffix(const std::string& body) {
  char buf[16];
  std::snprintf(buf, sizeof buf, " crc=%08x", crc32(body));
  return buf;
}

// ------------------------------------------------------------- primitives

TEST(ShardSpecParse, AcceptsStrictIOverK) {
  const auto s = parse_shard_spec("0/1");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->index, 0u);
  EXPECT_EQ(s->count, 1u);
  EXPECT_FALSE(s->active());
  const auto t = parse_shard_spec("2/7");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->index, 2u);
  EXPECT_EQ(t->count, 7u);
  EXPECT_TRUE(t->active());
}

TEST(ShardSpecParse, RejectsEverythingElse) {
  for (const char* bad : {"", "/", "1", "1/", "/2", "2/2", "3/2", "0/0",
                          "-1/2", "1/+2", "a/b", "1/2/3", " 1/2", "1/2 ",
                          "0x1/2", "1.0/2"}) {
    EXPECT_FALSE(parse_shard_spec(bad).has_value()) << "'" << bad << "'";
  }
}

TEST(HexFloat, RoundTripsBitExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           3.141592653589793,
                           1.0 / 3.0,
                           123456.789,
                           -2.5e-10,
                           5e-324,                    // min denormal
                           1.7976931348623157e308};   // max finite
  for (const double v : values) {
    double back = 99.0;
    ASSERT_TRUE(hex_to_double(double_to_hex(v), &back)) << double_to_hex(v);
    // Bit-exact, including the sign of zero.
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << double_to_hex(v);
  }
}

TEST(HexFloat, RejectsLooseFormats) {
  double out = 0.0;
  for (const char* bad : {"", " 0x1p0", "+0x1p0", "0x1p0 ", "0x1p0junk",
                          "inf", "-inf", "nan", "abc"}) {
    EXPECT_FALSE(hex_to_double(bad, &out)) << "'" << bad << "'";
  }
  // Plain decimal is acceptable input (strtod parses it); only loose
  // surroundings are rejected.
  EXPECT_TRUE(hex_to_double("1.5", &out));
  EXPECT_EQ(out, 1.5);
}

TEST(Crc32, MatchesTheStandardCheckValue) {
  // The canonical CRC-32 (IEEE 802.3) check vector.
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0x00000000u);
  EXPECT_NE(crc32(std::string("a")), crc32(std::string("b")));
}

// ------------------------------------------------------- checkpoint codec

CheckpointState sample_state() {
  CheckpointState st;
  st.fingerprint = std::string(64, 'a');
  st.shard = ShardSpec{1, 3};
  st.total_units = 40;
  for (std::uint64_t u = 1; u < 40; u += 3) {
    TrialOutcome o;
    o.converged = (u % 2) == 0;
    o.synced_at = u * 7;
    o.msgs_per_beat = 3.25 + static_cast<double>(u) * 0.1;  // inexact bits
    if (u % 6 == 1) o.trace_commitment = std::string(64, 'b');
    st.done[u] = o;
  }
  return st;
}

void expect_same_state(const CheckpointState& a, const CheckpointState& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_TRUE(a.shard == b.shard);
  EXPECT_EQ(a.total_units, b.total_units);
  ASSERT_EQ(a.done.size(), b.done.size());
  for (const auto& [u, o] : a.done) {
    const auto it = b.done.find(u);
    ASSERT_NE(it, b.done.end()) << "unit " << u;
    EXPECT_EQ(o.converged, it->second.converged) << "unit " << u;
    EXPECT_EQ(o.synced_at, it->second.synced_at) << "unit " << u;
    EXPECT_EQ(o.msgs_per_beat, it->second.msgs_per_beat) << "unit " << u;
    EXPECT_EQ(o.trace_commitment, it->second.trace_commitment) << "unit " << u;
  }
}

TEST(CheckpointCodec, RoundTrips) {
  const CheckpointState st = sample_state();
  const CheckpointLoad l = decode_checkpoint(encode_checkpoint(st));
  ASSERT_TRUE(l.ok) << l.error;
  EXPECT_FALSE(l.torn);
  EXPECT_EQ(l.discarded_records, 0u);
  expect_same_state(st, l.state);
}

// Cut the encoded checkpoint at EVERY byte boundary: inside the header
// the result is a hard error (that is not a checkpoint), from the first
// record on it decodes with torn set iff the cut is mid-record, and the
// surviving records are exactly the complete-line prefix.
TEST(CheckpointCodec, TruncationAtEveryByteDegradesGracefully) {
  const CheckpointState st = sample_state();
  const std::string full = encode_checkpoint(st);
  const std::size_t header_end = full.find('\n') + 1;
  // Units in encode (map) order, to know which prefix each cut keeps.
  std::vector<std::uint64_t> units;
  for (const auto& [u, o] : st.done) units.push_back(u);

  for (std::size_t len = 0; len <= full.size(); ++len) {
    const CheckpointLoad l = decode_checkpoint(full.substr(0, len));
    if (len < header_end) {
      EXPECT_FALSE(l.ok) << "cut at " << len;
      EXPECT_FALSE(l.error.empty()) << "cut at " << len;
      continue;
    }
    ASSERT_TRUE(l.ok) << "cut at " << len << ": " << l.error;
    std::size_t complete = 0;
    for (std::size_t i = header_end; i < len; ++i) {
      if (full[i] == '\n') ++complete;
    }
    const bool has_fragment = len > header_end && full[len - 1] != '\n';
    // A fragment that is an entire record minus its newline still carries a
    // valid CRC, so the decoder rightly keeps it; any shorter cut is torn.
    const bool fragment_is_whole_record =
        has_fragment && len < full.size() && full[len] == '\n';
    if (fragment_is_whole_record) ++complete;
    EXPECT_EQ(l.torn, has_fragment && !fragment_is_whole_record)
        << "cut at " << len;
    ASSERT_EQ(l.state.done.size(), complete) << "cut at " << len;
    for (std::size_t i = 0; i < complete; ++i) {
      EXPECT_TRUE(l.state.done.count(units[i])) << "cut at " << len;
    }
  }
}

TEST(CheckpointCodec, ByteFlipInARecordDiscardsTheTail) {
  const CheckpointState st = sample_state();
  const std::string full = encode_checkpoint(st);
  const std::size_t header_end = full.find('\n') + 1;
  // Flip one byte in the middle of the third record.
  std::size_t seen = 0, target = std::string::npos;
  for (std::size_t i = header_end; i < full.size(); ++i) {
    if (full[i] == '\n') {
      ++seen;
      if (seen == 2) target = i + 4;  // inside record 3
    }
  }
  ASSERT_NE(target, std::string::npos);
  std::string flipped = full;
  flipped[target] = static_cast<char>(flipped[target] ^ 0x20);
  const CheckpointLoad l = decode_checkpoint(flipped);
  ASSERT_TRUE(l.ok) << l.error;
  EXPECT_TRUE(l.torn);
  EXPECT_EQ(l.state.done.size(), 2u);  // the two records before the flip
  EXPECT_EQ(l.discarded_records, st.done.size() - 2);
}

TEST(CheckpointCodec, CrcValidButWrongFactsAreHardErrors) {
  const CheckpointState st = sample_state();
  const std::string header = encode_checkpoint(st).substr(
      0, encode_checkpoint(st).find('\n') + 1);
  const auto record = [](std::uint64_t unit) {
    const std::string body = "u=" + std::to_string(unit) +
                             " c=1 s=9 m=" + double_to_hex(1.5) + " t=-";
    return body + crc_suffix(body) + "\n";
  };
  {
    // Duplicate unit, both records CRC-clean.
    const CheckpointLoad l = decode_checkpoint(header + record(1) + record(1));
    EXPECT_FALSE(l.ok);
    EXPECT_NE(l.error.find("duplicate"), std::string::npos) << l.error;
  }
  {
    // Unit outside the grid.
    const CheckpointLoad l = decode_checkpoint(header + record(40));
    EXPECT_FALSE(l.ok);
    EXPECT_NE(l.error.find("outside the grid"), std::string::npos) << l.error;
  }
  {
    // Unit outside this shard's slice (shard is 1/3).
    const CheckpointLoad l = decode_checkpoint(header + record(3));
    EXPECT_FALSE(l.ok);
    EXPECT_NE(l.error.find("outside shard"), std::string::npos) << l.error;
  }
}

TEST(CheckpointCodec, GarbledHeaderIsAHardError) {
  for (const char* bad :
       {"", "\n", "not a checkpoint\n",
        "ssbft-ckpt-v2 fp=0000 shard=0/1 units=1\n",
        "ssbft-ckpt-v1 fp=zz shard=0/1 units=1\n",
        "ssbft-ckpt-v1 fp=", "ssbft-ckpt-v1\n"}) {
    const CheckpointLoad l = decode_checkpoint(bad);
    EXPECT_FALSE(l.ok) << "'" << bad << "'";
    EXPECT_NE(l.error.find("ssbft-ckpt-v1"), std::string::npos) << l.error;
  }
  // A fully valid header with zero records is a valid (empty) checkpoint.
  const CheckpointLoad l = decode_checkpoint(
      "ssbft-ckpt-v1 fp=" + std::string(64, 'a') + " shard=0/1 units=5\n");
  EXPECT_TRUE(l.ok) << l.error;
  EXPECT_TRUE(l.state.done.empty());
}

TEST(CheckpointCodec, WriteIsAtomicAndLoadsBack) {
  const fs::path dir =
      fs::temp_directory_path() / ("ssbft_ckpt_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = (dir / "state.ckpt").string();

  const CheckpointState st = sample_state();
  std::string err;
  ASSERT_TRUE(write_checkpoint(path, st, &err)) << err;
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // staged file was renamed away
  const CheckpointLoad l = load_checkpoint(path);
  ASSERT_TRUE(l.ok) << l.error;
  expect_same_state(st, l.state);

  const CheckpointLoad missing = load_checkpoint((dir / "nope.ckpt").string());
  EXPECT_FALSE(missing.ok);
  EXPECT_NE(missing.error.find("cannot open"), std::string::npos);
  fs::remove_all(dir);
}

// ------------------------------------------------------ shard file parser

ShardHeader sample_header() {
  ShardHeader h;
  h.pattern = "gallery/*";
  h.shard = ShardSpec{0, 2};
  h.fingerprint = std::string(64, 'c');
  h.total_units = 8;
  h.cli_seed = 7;
  h.cli_trials = 3;
  h.cells.push_back(ShardCellInfo{"cell \"a\"", 3, 100});
  h.cells.push_back(ShardCellInfo{"cell/b", 5, 200});
  return h;
}

std::string sample_shard_text() {
  std::string text = encode_shard_header(sample_header());
  for (std::uint64_t u = 0; u < 8; u += 2) {
    ShardUnitRow row;
    row.unit = u;
    row.cell = u < 3 ? 0u : 1u;
    row.trial = u < 3 ? u : u - 3;
    row.outcome.converged = true;
    row.outcome.synced_at = 10 + u;
    row.outcome.msgs_per_beat = 0.5 + static_cast<double>(u) * 0.3;
    if (u != 4) row.outcome.trace_commitment = std::string(64, 'd');
    text += encode_shard_unit(row);
  }
  return text;
}

TEST(ShardCodec, RoundTripsThroughTheParser) {
  std::istringstream in(sample_shard_text());
  const ShardParse p = parse_shard_file(in);
  ASSERT_TRUE(p.ok) << p.error_line << ": " << p.error;
  EXPECT_TRUE(p.file.header.cells == sample_header().cells);
  EXPECT_EQ(p.file.header.pattern, "gallery/*");
  EXPECT_EQ(p.file.header.cli_seed, 7u);
  EXPECT_EQ(p.file.header.cli_trials, 3u);
  ASSERT_EQ(p.file.units.size(), 4u);
  EXPECT_EQ(p.file.units[0].unit, 0u);
  EXPECT_EQ(p.file.units[3].unit, 6u);
  EXPECT_EQ(p.file.units[3].cell, 1u);
  EXPECT_EQ(p.file.units[3].trial, 3u);
  EXPECT_FALSE(p.file.units[1].outcome.trace_commitment.empty());
  EXPECT_TRUE(p.file.units[2].outcome.trace_commitment.empty());  // u=4
}

TEST(ShardCodec, RejectsBrokenFiles) {
  const std::string good = sample_shard_text();
  const auto expect_reject = [](const std::string& text,
                                const std::string& needle) {
    std::istringstream in(text);
    const ShardParse p = parse_shard_file(in);
    EXPECT_FALSE(p.ok) << "wanted rejection with '" << needle << "'";
    EXPECT_NE(p.error.find(needle), std::string::npos)
        << p.error << " (wanted '" << needle << "')";
  };
  expect_reject("", "missing shard header");
  expect_reject("{\"type\":\"unit\"}\n", "before shard header");
  // Truncate mid-preamble: header line only.
  expect_reject(good.substr(0, good.find('\n') + 1), "truncated preamble");
  // Cut the final line in half (a torn shard file is an error — shard
  // reports are published atomically, so a torn one was copied badly).
  expect_reject(good.substr(0, good.size() - 10), "");
  {
    // A duplicated unit line.
    const std::size_t first_unit = good.find("{\"type\":\"unit\"");
    const std::size_t next = good.find('\n', first_unit) + 1;
    expect_reject(good + good.substr(first_unit, next - first_unit),
                  "duplicate unit");
  }
  {
    // Unit index that disagrees with the (cell, trial) flattening.
    std::string bad = good;
    const std::size_t pos = bad.find("\"unit\":6");
    bad.replace(pos, 8, "\"unit\":7");
    expect_reject(bad, "");
  }
}

// ------------------------------------------------- sweep-level recovery

void expect_identical(const TrialStats& a, const TrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean_msgs_per_beat, b.mean_msgs_per_beat);
}

std::vector<SweepCell> small_grid() {
  const char* names[] = {"gallery/split", "net/lossy"};
  std::vector<SweepCell> cells;
  for (const char* name : names) {
    const ScenarioSpec* spec = find_scenario(name);
    EXPECT_NE(spec, nullptr);
    RunnerConfig rc = scenario_runner_config(*spec);
    rc.trials = 6 - cells.size();  // 6 and 5: unequal cell sizes
    rc.convergence.max_beats = 400;
    cells.push_back(SweepCell{spec->name, build_scenario(*spec), rc});
  }
  return cells;
}

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           (tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void expect_same_run(const SweepResult& ref, const SweepResult& res) {
  ASSERT_EQ(ref.stats.size(), res.stats.size());
  for (std::size_t c = 0; c < ref.stats.size(); ++c) {
    SCOPED_TRACE("cell " + std::to_string(c));
    expect_identical(ref.stats[c], res.stats[c]);
  }
  ASSERT_EQ(ref.units.size(), res.units.size());
  for (std::size_t j = 0; j < ref.units.size(); ++j) {
    SCOPED_TRACE("unit " + std::to_string(ref.units[j].unit));
    EXPECT_EQ(ref.units[j].unit, res.units[j].unit);
    EXPECT_EQ(ref.units[j].outcome.converged, res.units[j].outcome.converged);
    EXPECT_EQ(ref.units[j].outcome.synced_at, res.units[j].outcome.synced_at);
    EXPECT_EQ(ref.units[j].outcome.msgs_per_beat,
              res.units[j].outcome.msgs_per_beat);
    EXPECT_EQ(ref.units[j].outcome.trace_commitment,
              res.units[j].outcome.trace_commitment);
  }
}

TEST(CheckpointRecovery, TornCheckpointRecomputesTheTailBitIdentically) {
  TempDir dir("ssbft_torn");
  const std::string ckpt = (dir.path / "sweep.ckpt").string();

  // Uninterrupted reference (traced, with commitments).
  SweepOptions ref_opts;
  ref_opts.jobs = 1;
  ref_opts.trace_dir = (dir.path / "traces_ref").string();
  ref_opts.collect_commitments = true;
  const SweepResult ref = run_sweep_ex(small_grid(), ref_opts);

  // A completed checkpointed run, then mutilate the checkpoint: keep the
  // header and the first records, cut the last one mid-line (what a
  // non-atomic filesystem or a bad copy could leave behind).
  SweepOptions run_opts = ref_opts;
  run_opts.trace_dir = (dir.path / "traces_res").string();
  run_opts.checkpoint_path = ckpt;
  run_opts.checkpoint_every = 1;
  run_sweep_ex(small_grid(), run_opts);
  std::string text;
  {
    std::ifstream in(ckpt, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  text.resize(text.size() * 2 / 3);  // mid-record with high probability
  {
    std::ofstream out(ckpt, std::ios::binary | std::ios::trunc);
    out << text;
  }

  SweepOptions resume_opts = run_opts;
  resume_opts.resume = true;
  const SweepResult res = run_sweep_ex(small_grid(), resume_opts);
  EXPECT_GT(res.resumed_units, 0u);
  EXPECT_LT(res.resumed_units, res.units.size());
  expect_same_run(ref, res);
}

TEST(CheckpointRecovery, ResumeRefusesForeignCheckpoints) {
  TempDir dir("ssbft_foreign");
  const std::string ckpt = (dir.path / "sweep.ckpt").string();
  SweepOptions run_opts;
  run_opts.jobs = 1;
  run_opts.checkpoint_path = ckpt;
  run_sweep_ex(small_grid(), run_opts);

  // A different grid (one extra trial) must refuse the checkpoint.
  auto other = small_grid();
  other[0].cfg.trials += 1;
  SweepOptions resume_opts = run_opts;
  resume_opts.resume = true;
  EXPECT_THROW(run_sweep_ex(other, resume_opts), contract_error);

  // Same grid, different shard: also a refusal.
  SweepOptions shard_opts = resume_opts;
  shard_opts.shard = ShardSpec{0, 2};
  EXPECT_THROW(run_sweep_ex(small_grid(), shard_opts), contract_error);

  // Missing checkpoint file: structured refusal, not a silent cold start.
  SweepOptions missing_opts = resume_opts;
  missing_opts.checkpoint_path = (dir.path / "absent.ckpt").string();
  EXPECT_THROW(run_sweep_ex(small_grid(), missing_opts), contract_error);
}

// The headline robustness claim, end to end: fork a child sweeping with
// per-unit checkpoints, SIGKILL it mid-flight (no destructors, no
// flushes — a real crash), then resume in the parent and require stats
// AND per-unit SHA-256 trace commitments bit-identical to a run that was
// never interrupted.
TEST(CheckpointRecovery, SigkillMidSweepThenResumeBitIdentical) {
  TempDir dir("ssbft_kill");
  const std::string ckpt = (dir.path / "sweep.ckpt").string();

  SweepOptions ref_opts;
  ref_opts.jobs = 1;
  ref_opts.trace_dir = (dir.path / "traces_ref").string();
  ref_opts.collect_commitments = true;
  const SweepResult ref = run_sweep_ex(small_grid(), ref_opts);

  SweepOptions child_opts;
  child_opts.jobs = 1;
  child_opts.trace_dir = (dir.path / "traces_res").string();
  child_opts.collect_commitments = true;
  child_opts.checkpoint_path = ckpt;
  child_opts.checkpoint_every = 1;

  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    // Child: plain serial sweep; _exit keeps gtest/atexit machinery out.
    try {
      run_sweep_ex(small_grid(), child_opts);
    } catch (...) {
      _exit(3);
    }
    _exit(0);
  }

  // Parent: wait until at least 3 units are durably checkpointed, then
  // kill -9. write_checkpoint publishes via rename, so every observed
  // file is a complete version — polling it is race-free.
  bool child_exited = false;
  for (int i = 0; i < 30000; ++i) {
    const CheckpointLoad l = load_checkpoint(ckpt);
    if (l.ok && l.state.done.size() >= 3) break;
    int status = 0;
    if (waitpid(pid, &status, WNOHANG) == pid) {
      child_exited = true;  // finished before we could kill it: still fine
      EXPECT_EQ(status, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!child_exited) {
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
  }

  SweepOptions resume_opts = child_opts;
  resume_opts.resume = true;
  const SweepResult res = run_sweep_ex(small_grid(), resume_opts);
  EXPECT_GE(res.resumed_units, 3u);
  expect_same_run(ref, res);

  // And the recovered checkpoint now covers the whole slice.
  const CheckpointLoad final_ckpt = load_checkpoint(ckpt);
  ASSERT_TRUE(final_ckpt.ok) << final_ckpt.error;
  EXPECT_EQ(final_ckpt.state.done.size(), res.units.size());
}

}  // namespace
}  // namespace ssbft
