// Self-stabilization demo: a running, synchronized system is hit by
// transient faults — two correct nodes' memories are overwritten with
// garbage mid-run, while the network goes through a phantom-message storm —
// and the protocol re-synchronizes on its own. This is the property that
// distinguishes the paper from classic (non-stabilizing) BFT clock sync.
//
//   $ ./transient_recovery [seed]
#include <iostream>
#include <string>

#include "adversary/adversaries.h"
#include "coin/fm_coin.h"
#include "core/clock_sync.h"
#include "harness/convergence.h"

using namespace ssbft;

namespace {

void show(Engine& engine, int from, int count, ClockValue /*k*/) {
  for (int i = 0; i < count; ++i) {
    engine.run_beat();
    std::cout << "  beat " << (from + i) << " |";
    for (ClockValue c : engine.correct_clocks()) std::cout << " " << c;
    std::cout << (clocks_agree(engine) ? "" : "   <- diverged") << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 7;
  const ClockValue k = 12;

  EngineConfig cfg;
  cfg.n = 7;
  cfg.f = 2;
  cfg.faulty = EngineConfig::last_ids_faulty(7, 2);
  cfg.seed = seed;
  // The network itself misbehaves for the first 6 beats: phantom messages
  // (stale buffer content) and losses.
  cfg.faults.network_faulty_until = 6;
  cfg.faults.phantoms_per_beat = 8;
  cfg.faults.faulty_drop_prob = 0.3;

  CoinSpec coin = fm_coin_spec();
  auto factory = [coin, k](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByzClockSync>(env, k, coin, rng);
  };
  Engine engine(cfg, factory, make_clock_skew_adversary(k, 0));

  std::cout << "n=7, f=2 Byzantine (skew equivocation), k=" << k
            << ", phantom-laden lossy network for 6 beats, randomized "
               "genesis\n\nphase 1 — initial convergence:\n";
  ConvergenceConfig cc;
  cc.max_beats = 4000;
  auto res = measure_convergence(engine, cc);
  if (!res.converged) {
    std::cout << "no convergence (unlucky seed)\n";
    return 1;
  }
  std::cout << "  synced from beat " << res.synced_at << "\n";
  show(engine, 0, 5, k);

  std::cout << "\nphase 2 — transient fault: nodes 0 and 1 get their entire "
               "memory randomized (clock, agreement state, coin pipelines):\n";
  engine.corrupt_node(0);
  engine.corrupt_node(1);
  show(engine, 0, 4, k);

  std::cout << "\nphase 3 — self-stabilization:\n";
  res = measure_convergence(engine, cc);
  if (!res.converged) {
    std::cout << "no re-convergence (unlucky seed)\n";
    return 1;
  }
  std::cout << "  re-synced (expected-constant recovery; Theorem 4 applies "
               "from *any* state)\n";
  show(engine, 0, 5, k);
  std::cout << "\nrecovered without any external reset — that is "
               "self-stabilization.\n";
  return 0;
}
