// Transient-fault and network-fault injection schedules.
//
// Models the paper's failure assumptions beyond Byzantine nodes: arbitrary
// memory corruption of non-faulty nodes, and a communication network that
// may deliver "phantom" messages / lose messages until it becomes non-faulty
// (Definition 2.2 and the surrounding discussion). The DeliverySpec extends
// the network axis with adversarial *scheduling* power — who receives which
// message, when — the dimension Lewko (arXiv:1106.5170, arXiv:1301.3223)
// identifies as what actually separates BA protocols.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "support/check.h"
#include "support/types.h"

namespace ssbft {

// Which delivery engine runs the network between the send and receive
// phases of a beat (policies live in sim/delivery.h; this enum is the
// sweepable spec field).
enum class DeliveryKind : std::uint8_t {
  kSynchronous,    // every surviving message arrives in its send beat
  kEclipse,        // victims hear only an allowlist of senders until heal_at
  kPartition,      // no cross-group delivery until heal_at
  kTargetedDelay,  // messages to victims arrive delay_beats beats late
  kReorder,        // rng-permuted arrival order within each beat
};

// Fully-specified delivery adversary, a value type so scenario worlds can
// sweep it like every other fault axis. Interpreted by
// make_delivery_policy (sim/delivery.h).
struct DeliverySpec {
  // heal_at value meaning "the topology adversary never stops".
  static constexpr Beat kNever = ~Beat{0};
  // Largest supported targeted delay. The pending buffer holds
  // delay_beats x one beat's victim traffic in pooled handles, so the
  // bound keeps the policy's steady-state memory a sane multiple of the
  // per-beat traffic shape.
  static constexpr std::uint32_t kMaxDelayBeats = 1u << 12;

  DeliveryKind kind = DeliveryKind::kSynchronous;
  // kEclipse / kTargetedDelay: the targeted (victim) node ids.
  std::vector<NodeId> victims;
  // kEclipse: senders a victim still hears while eclipsed. A victim
  // always hears itself (loopback is local, not network traffic).
  std::vector<NodeId> allowed_senders;
  // kPartition: nodes with id < partition_split form group 0, the rest
  // group 1. Must cut the system into two non-empty groups.
  std::uint32_t partition_split = 0;
  // First beat at which the topology adversary stops: the eclipse lifts,
  // the partition heals, the delay stops holding *new* messages (already
  // held ones still arrive late). kNever = active for the whole run.
  Beat heal_at = kNever;
  // kTargetedDelay: beats a victim-addressed message is held (>= 1).
  std::uint32_t delay_beats = 1;

  void validate(std::uint32_t n) const {
    for (NodeId v : victims) {
      SSBFT_REQUIRE_MSG(v < n, "delivery victim id " << v
                                   << " out of range for n = " << n);
    }
    for (NodeId s : allowed_senders) {
      SSBFT_REQUIRE_MSG(s < n, "delivery allowed-sender id "
                                   << s << " out of range for n = " << n);
    }
    // Duplicate ids would double-count victims in the policies' set
    // handling and make plan digests non-canonical; require each list to
    // name every id at most once.
    const auto has_duplicate = [](std::vector<NodeId> ids) {
      std::sort(ids.begin(), ids.end());
      return std::adjacent_find(ids.begin(), ids.end()) != ids.end();
    };
    SSBFT_REQUIRE_MSG(!has_duplicate(victims),
                      "delivery victims list names a node id twice");
    SSBFT_REQUIRE_MSG(!has_duplicate(allowed_senders),
                      "delivery allowed-senders list names a node id twice");
    switch (kind) {
      case DeliveryKind::kSynchronous:
      case DeliveryKind::kReorder:
        break;
      case DeliveryKind::kEclipse:
        SSBFT_REQUIRE_MSG(!victims.empty(),
                          "eclipse delivery needs at least one victim");
        break;
      case DeliveryKind::kPartition:
        SSBFT_REQUIRE_MSG(partition_split >= 1 && partition_split < n,
                          "partition_split " << partition_split
                                             << " must cut n = " << n
                                             << " into two non-empty groups");
        break;
      case DeliveryKind::kTargetedDelay:
        SSBFT_REQUIRE_MSG(!victims.empty(),
                          "targeted-delay delivery needs at least one victim");
        SSBFT_REQUIRE_MSG(delay_beats >= 1 && delay_beats <= kMaxDelayBeats,
                          "delay_beats " << delay_beats
                                         << " out of [1, " << kMaxDelayBeats
                                         << "]");
        break;
    }
  }
};

struct FaultPlan {
  // Start every node from an arbitrary memory state. This is the default
  // initial condition of every convergence experiment ("starting from any
  // state", Definition 3.2).
  bool randomize_genesis = true;

  // Nodes whose entire state is randomized immediately before the send
  // phase of the given beat (mid-run transient faults).
  std::map<Beat, std::vector<NodeId>> corruptions;

  // The communication network is faulty for beats < network_faulty_until:
  // phantom messages (never sent by any current node) may be delivered and
  // real messages may be lost. From this beat on, Definition 2.2 holds.
  Beat network_faulty_until = 0;
  // Phantom messages injected into each correct node per faulty-network beat.
  std::uint32_t phantoms_per_beat = 0;
  std::uint32_t phantom_max_len = 64;
  // Probability that a real message is dropped during a faulty-network beat.
  double faulty_drop_prob = 0.0;

  // The delivery adversary (default: synchronous, the paper's network).
  // Orthogonal to the loss/phantom axes above: drops and phantoms apply
  // under every delivery policy.
  DeliverySpec delivery;

  // Largest phantom payload a plan may ask for (1 MiB). Far beyond any
  // protocol's real message size, yet small enough that the sampling bound
  // `phantom_max_len + 1` (computed in 64 bits — the engine widens before
  // the increment, so even the type's maximum cannot wrap the bound to
  // zero) never asks the simulator for a pathological allocation.
  static constexpr std::uint32_t kMaxPhantomLen = 1u << 20;

  // First beat from which the declared network and delivery axes are
  // provably quiet: the lossy/phantom window ends at network_faulty_until
  // and a suppressing delivery adversary at heal_at (kTargetedDelay keeps
  // flushing parked messages for delay_beats more beats). kReorder never
  // heals but still delivers every message within its send beat, so it
  // never defers quiescence. Returns DeliverySpec::kNever when a
  // suppressing adversary runs forever. Trace checkers treat beats before
  // this horizon like corruption beats: the synchronous-network
  // assumption the closure invariant rests on does not hold there.
  // (Scheduled corruptions are excluded — they are visible in the trace.)
  Beat network_quiescence() const {
    Beat q = network_faulty_until;
    switch (delivery.kind) {
      case DeliveryKind::kSynchronous:
      case DeliveryKind::kReorder:
        break;
      case DeliveryKind::kEclipse:
      case DeliveryKind::kPartition:
        if (delivery.heal_at == DeliverySpec::kNever) {
          return DeliverySpec::kNever;
        }
        q = std::max(q, delivery.heal_at);
        break;
      case DeliveryKind::kTargetedDelay:
        if (delivery.heal_at == DeliverySpec::kNever) {
          return DeliverySpec::kNever;
        }
        q = std::max(q, delivery.heal_at + delivery.delay_beats);
        break;
    }
    return q;
  }

  // Engine-checked sanity of the plan against the world size n: value
  // ranges, scheduled-corruption ids (an id >= n would index the engine's
  // fault mask out of bounds) and the delivery spec.
  void validate(std::uint32_t n) const {
    SSBFT_REQUIRE_MSG(faulty_drop_prob >= 0.0 && faulty_drop_prob <= 1.0,
                      "faulty_drop_prob must be a probability");
    SSBFT_REQUIRE_MSG(phantom_max_len <= kMaxPhantomLen,
                      "phantom_max_len " << phantom_max_len
                                         << " exceeds the sane bound "
                                         << kMaxPhantomLen);
    for (const auto& [beat, ids] : corruptions) {
      for (NodeId id : ids) {
        SSBFT_REQUIRE_MSG(id < n, "corruption schedule at beat "
                                      << beat << " names node " << id
                                      << ", out of range for n = " << n);
      }
    }
    delivery.validate(n);
  }
};

}  // namespace ssbft
