#include "sim/engine.h"

#include <algorithm>

#include "support/check.h"

namespace ssbft {

void AdversaryContext::send(NodeId from, NodeId to, ChannelId channel,
                            const Bytes& payload) {
  SSBFT_REQUIRE_MSG(to < n_, "adversary send target out of range");
  const bool from_is_faulty =
      std::find(faulty_.begin(), faulty_.end(), from) != faulty_.end();
  SSBFT_REQUIRE_MSG(from_is_faulty,
                    "adversary may only send from faulty nodes (sender "
                    "identity is unforgeable, Definition 2.2.2)");
  Bytes b = pool().acquire();
  b.assign(payload.begin(), payload.end());
  sink_->push_back(Message{from, to, channel, std::move(b)});
}

void AdversaryContext::broadcast(NodeId from, ChannelId channel,
                                 const Bytes& payload) {
  for (NodeId to = 0; to < n_; ++to) send(from, to, channel, payload);
}

std::vector<NodeId> EngineConfig::last_ids_faulty(std::uint32_t n,
                                                  std::uint32_t count) {
  SSBFT_REQUIRE(count <= n);
  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::uint32_t i = n - count; i < n; ++i) ids.push_back(i);
  return ids;
}

Engine::Engine(EngineConfig cfg, const ProtocolFactory& factory,
               std::unique_ptr<Adversary> adversary)
    : cfg_(std::move(cfg)),
      adversary_(std::move(adversary)),
      adv_rng_(Rng(cfg_.seed).split("adversary")),
      corrupt_rng_(Rng(cfg_.seed).split("corrupt")),
      net_rng_(Rng(cfg_.seed).split("network")),
      metrics_(cfg_.metrics_history_limit),
      outbox_(0, cfg_.n, &pool_) {
  SSBFT_REQUIRE(cfg_.n >= 1);
  SSBFT_REQUIRE_MSG(adversary_ != nullptr || cfg_.faulty.empty(),
                    "faulty nodes present but no adversary supplied");
  cfg_.faults.validate();
  is_faulty_.assign(cfg_.n, false);
  for (NodeId id : cfg_.faulty) {
    SSBFT_REQUIRE(id < cfg_.n);
    is_faulty_[id] = true;
  }
  protocols_.resize(cfg_.n);
  const Rng seed_root(cfg_.seed);
  for (NodeId id = 0; id < cfg_.n; ++id) {
    if (is_faulty_[id]) continue;
    correct_ids_.push_back(id);
    ProtocolEnv env{id, cfg_.n, cfg_.f};
    protocols_[id] = factory(env, seed_root.split("node", id));
    SSBFT_CHECK(protocols_[id] != nullptr);
    channel_count_ =
        std::max(channel_count_, protocols_[id]->channel_count());
    if (cfg_.faults.randomize_genesis) {
      protocols_[id]->randomize_state(corrupt_rng_);
    }
  }
  inboxes_.reserve(cfg_.n);
  for (NodeId id = 0; id < cfg_.n; ++id) {
    inboxes_.emplace_back(cfg_.n, channel_count_, &pool_);
  }
  // Send phases write straight into the beat scratch; no drain pass.
  outbox_.bind_sink(&correct_msgs_);
}

Engine::~Engine() = default;

Protocol& Engine::node(NodeId id) {
  SSBFT_REQUIRE_MSG(id < cfg_.n && !is_faulty_[id],
                    "node(" << id << ") is faulty or out of range");
  return *protocols_[id];
}

const Protocol& Engine::node(NodeId id) const {
  SSBFT_REQUIRE_MSG(id < cfg_.n && !is_faulty_[id],
                    "node(" << id << ") is faulty or out of range");
  return *protocols_[id];
}

std::vector<ClockValue> Engine::correct_clocks() const {
  std::vector<ClockValue> out;
  out.reserve(correct_ids_.size());
  for (NodeId id : correct_ids_) {
    const auto* cp = dynamic_cast<const ClockProtocol*>(protocols_[id].get());
    SSBFT_REQUIRE_MSG(cp != nullptr, "protocol is not a ClockProtocol");
    out.push_back(cp->clock());
  }
  return out;
}

void Engine::corrupt_node(NodeId id) {
  SSBFT_REQUIRE(id < cfg_.n && !is_faulty_[id]);
  protocols_[id]->randomize_state(corrupt_rng_);
}

void Engine::recycle(std::vector<Message>& msgs) {
  for (Message& m : msgs) pool_.release(std::move(m.payload));
  msgs.clear();
}

void Engine::run_beat() {
  metrics_.begin_beat();
  for (BeatListener* l : listeners_) l->on_beat(beat_);

  // Scheduled transient faults fire before the send phase of their beat.
  if (auto it = cfg_.faults.corruptions.find(beat_);
      it != cfg_.faults.corruptions.end()) {
    for (NodeId id : it->second) {
      if (!is_faulty_[id]) protocols_[id]->randomize_state(corrupt_rng_);
    }
  }

  // 1. Send phases: pure functions of pre-beat state, in id order. The
  //    outbox writes straight into the persistent beat scratch; payload
  //    storage stays pooled.
  for (NodeId id : correct_ids_) {
    outbox_.reset(id);
    protocols_[id]->send_phase(outbox_);
    metrics_.count_correct_bulk(outbox_.sent_messages(), outbox_.sent_bytes());
  }

  // 2. Adversary turn (rushing): it sees exactly the beat-r messages
  //    addressed to faulty nodes, then commits the faulty nodes' sends.
  if (adversary_ != nullptr && !cfg_.faulty.empty()) {
    for (const Message& m : correct_msgs_) {
      if (!is_faulty_[m.to]) continue;
      Bytes b = pool_.acquire();
      b.assign(m.payload.begin(), m.payload.end());
      observed_.push_back(Message{m.from, m.to, m.channel, std::move(b)});
    }
    AdversaryContext ctx(cfg_.n, cfg_.f, cfg_.faulty, beat_, observed_,
                         adv_rng_, channel_count_, &pool_, &adv_msgs_);
    adversary_->act(ctx);
    std::uint64_t adv_bytes = 0;
    for (const Message& m : adv_msgs_) adv_bytes += m.payload.size();
    metrics_.count_adversary_bulk(adv_msgs_.size(), adv_bytes);
  }

  // 3. Delivery (with network faults during the faulty prefix).
  const bool network_faulty = beat_ < cfg_.faults.network_faulty_until;
  for (Inbox& ib : inboxes_) ib.clear();
  deliver(correct_msgs_, net_rng_, network_faulty);
  deliver(adv_msgs_, net_rng_, network_faulty);
  if (network_faulty) inject_phantoms(net_rng_);

  // 4. Receive phases.
  for (NodeId id : correct_ids_) {
    protocols_[id]->receive_phase(inboxes_[id]);
  }

  // Reset the beat scratch. Delivery moved every payload into an inbox or
  // back to the pool; observed_ still owns its copies.
  correct_msgs_.clear();
  adv_msgs_.clear();
  recycle(observed_);

  ++beat_;
}

void Engine::run_beats(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) run_beat();
}

void Engine::deliver(std::vector<Message>& msgs, Rng& net_rng,
                     bool network_faulty) {
  for (Message& m : msgs) {
    if (is_faulty_[m.to]) {  // faulty inboxes live in the adversary
      pool_.release(std::move(m.payload));
      continue;
    }
    if (network_faulty && cfg_.faults.faulty_drop_prob > 0.0 &&
        net_rng.next_bernoulli(cfg_.faults.faulty_drop_prob)) {
      pool_.release(std::move(m.payload));
      continue;
    }
    inboxes_[m.to].deliver(std::move(m));
  }
}

void Engine::inject_phantoms(Rng& net_rng) {
  // Phantom messages: leftovers in network buffers from before the system
  // became coherent. They carry arbitrary (but unforged-looking) sender
  // ids, channels and payloads.
  for (NodeId id : correct_ids_) {
    for (std::uint32_t i = 0; i < cfg_.faults.phantoms_per_beat; ++i) {
      Message m;
      m.from = static_cast<NodeId>(net_rng.next_below(cfg_.n));
      m.to = id;
      m.channel = static_cast<ChannelId>(
          net_rng.next_below(std::max<std::uint32_t>(channel_count_, 1)));
      // Widened before the +1: a phantom_max_len at the type's maximum must
      // not wrap the bound to zero.
      const std::uint64_t len = net_rng.next_below(
          static_cast<std::uint64_t>(cfg_.faults.phantom_max_len) + 1);
      m.payload = pool_.acquire();
      m.payload.resize(static_cast<std::size_t>(len));
      for (auto& b : m.payload) b = static_cast<std::uint8_t>(net_rng.next_below(256));
      metrics_.count_phantom();
      inboxes_[id].deliver(std::move(m));
    }
  }
}

}  // namespace ssbft
