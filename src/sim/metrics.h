// Per-beat traffic accounting, used by the message-complexity benchmarks.
//
// Two history modes: unbounded (the default — one BeatTraffic entry per
// beat, suitable for the per-beat experiment plots) and bounded (a ring of
// the most recent `history_limit` beats, so million-beat runs stop growing
// memory and the steady-state beat loop stays allocation-free). Totals and
// per-beat means cover the whole run in both modes.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.h"

namespace ssbft {

struct BeatTraffic {
  std::uint64_t correct_messages = 0;
  std::uint64_t correct_bytes = 0;
  std::uint64_t adversary_messages = 0;
  std::uint64_t adversary_bytes = 0;
  std::uint64_t phantom_messages = 0;
  // Messages lost to the faulty network (FaultPlan::faulty_drop_prob),
  // correct-node and adversary traffic alike.
  std::uint64_t dropped_messages = 0;
  // Messages suppressed by a topology policy — an eclipse allowlist or a
  // partition cut (sim/delivery.h) — before the drop lottery.
  std::uint64_t eclipsed_messages = 0;
  // Messages held back by a targeted-delay policy, counted at hold time
  // (they are delivered, late, in a later beat's traffic).
  std::uint64_t delayed_messages = 0;
  // Messages a reorder policy displaced from their arrival position.
  std::uint64_t reordered_messages = 0;
};

class Metrics {
 public:
  // history_limit = 0: keep every beat. history_limit = k > 0: keep only
  // the most recent k beats in a fixed-size ring.
  explicit Metrics(std::size_t history_limit = 0);

  void begin_beat();
  // Counting before the first begin_beat() is a contract error: there is
  // no current beat to attribute the traffic to.
  void count_correct(std::size_t payload_bytes);
  void count_adversary(std::size_t payload_bytes);
  void count_phantom();
  void count_dropped();
  void count_eclipsed();
  void count_delayed();
  void count_reordered();
  // Bulk variants: one call per (node, beat) instead of one per message.
  void count_correct_bulk(std::uint64_t messages, std::uint64_t bytes);
  void count_adversary_bulk(std::uint64_t messages, std::uint64_t bytes);

  // Totals across all beats so far.
  const BeatTraffic& total() const { return total_; }
  // Beats started so far (independent of how many are retained).
  std::uint64_t beats_recorded() const { return beats_; }

  // Full per-beat history (entry b = beat b). Only valid in unbounded
  // mode; bounded mode uses retained_*.
  const std::vector<BeatTraffic>& history() const;

  // Mode-agnostic access to the retained window, oldest first. In
  // unbounded mode this is the whole history.
  std::size_t retained_count() const;
  const BeatTraffic& retained(std::size_t i) const;

  std::size_t history_limit() const { return limit_; }

  // Mean correct messages / bytes per beat over the whole run.
  double mean_correct_messages_per_beat() const;
  double mean_correct_bytes_per_beat() const;

 private:
  BeatTraffic& current();

  std::size_t limit_ = 0;
  std::uint64_t beats_ = 0;
  BeatTraffic total_;
  std::vector<BeatTraffic> history_;  // ring when limit_ > 0
};

}  // namespace ssbft
