// Vector backends for the Mersenne-61 batch kernels.
//
// Everything here operates on canonical elements of Z_(2^61-1) (the
// PrimeField::kDefaultPrime fast path only — the generic-modulus path has
// no vector backend). The functions are total on every build: when no
// vector unit is compiled in or the CPU lacks it, they fall through to
// straight-line scalar code that shares PrimeField::fold61, so tests can
// call them unconditionally and compare against the scalar reference.
//
// Dispatch contract (see the design note in field/fp.h): `available()`
// probes the CPU once (cached static) and PrimeField consults it a single
// time at construction. The per-call branch inside each kernel reads the
// same cached flag — there is no per-element dispatch anywhere.
//
// Bit-exactness: every kernel returns the canonical representative of the
// exact field result, which is unique, so vector and scalar paths cannot
// diverge (tests/field_test.cpp pins this over adversarial inputs).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ssbft {
namespace m61simd {

// True iff a vector backend is compiled in (x86-64 AVX2, unless the build
// set -DSSBFT_SIMD=off) and this CPU supports it. Evaluated once.
bool available();

// "avx2" when available(), else "scalar" (diagnostics / bench context).
const char* backend_name();

// out[i] = a[i] * b[i] mod 2^61-1. out may alias a or b.
void mul_vec(const std::uint64_t* a, const std::uint64_t* b,
             std::uint64_t* out, std::size_t len);

// out[i] = a[i] * c mod 2^61-1. out may alias a.
void scale_vec(const std::uint64_t* a, std::uint64_t c, std::uint64_t* out,
               std::size_t len);

// dst[i] = dst[i] - c * src[i] mod 2^61-1. dst must not alias src.
void submul_vec(std::uint64_t* dst, const std::uint64_t* src, std::uint64_t c,
                std::size_t len);

// dst[i] = dst[i] + c * src[i] mod 2^61-1. dst must not alias src.
// (The bivariate row evaluation: out += row_i * x^i, column-wise.)
void addmul_vec(std::uint64_t* dst, const std::uint64_t* src, std::uint64_t c,
                std::size_t len);

// sum_i a[i] * b[i] mod 2^61-1 (the GVSS recover fast path's Lagrange-row
// dot products). Canonical result; lane accumulation reassociates the sum,
// which is exact under modular addition.
std::uint64_t dot(const std::uint64_t* a, const std::uint64_t* b,
                  std::size_t len);

// out[k] = Horner(coeffs, xs[k]) for k < m. Points are processed in
// register-resident tiles of 8 with the coefficient stream broadcast
// across lanes, so one coefficient load amortizes over the whole tile and
// the per-row tables of the (dealings x node-points) loop stay cache-hot.
void eval_many(const std::uint64_t* coeffs, std::size_t count,
               const std::uint64_t* xs, std::size_t m, std::uint64_t* out);

// Lane passes of Montgomery batch inversion over four contiguous chunks of
// length K (chunk c = [c*K, (c+1)*K)):
//   chunk_prefix: scratch[c*K+i] = prod_{j<=i} vals[c*K+j]
void chunk_prefix(const std::uint64_t* vals, std::uint64_t* scratch,
                  std::size_t K);
//   chunk_unwind: given inv_totals[c] = (chunk c's total product)^-1,
//   replaces vals[c*K+i] with vals[c*K+i]^-1 using the prefixes above.
void chunk_unwind(std::uint64_t* vals, const std::uint64_t* scratch,
                  const std::uint64_t inv_totals[4], std::size_t K);

}  // namespace m61simd
}  // namespace ssbft
