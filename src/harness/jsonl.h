// Strict flat-JSON line decoding, shared by the offline trace checker
// (harness/checker.cpp) and the shard/checkpoint interchange codec
// (harness/checkpoint.cpp). One small flat object per line whose values
// are strings, unsigned integers or arrays of unsigned integers; anything
// else — nested containers, floats, negative numbers, duplicate keys,
// loose escapes — is rejected with a structured error, never UB. Both
// consumers decode hostile bytes (fuzzed traces, kill-9-torn files), so
// the scanner is deliberately minimal: no recursion, no allocation
// surprises, overflow-checked integer parsing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ssbft::jsonl {

struct LineValues {
  std::vector<std::pair<std::string, std::uint64_t>> ints;
  std::vector<std::pair<std::string, std::string>> strs;
  std::vector<std::pair<std::string, std::vector<std::uint64_t>>> arrs;

  bool has(const std::string& key) const {
    for (const auto& [k, v] : ints) {
      if (k == key) return true;
    }
    for (const auto& [k, v] : strs) {
      if (k == key) return true;
    }
    for (const auto& [k, v] : arrs) {
      if (k == key) return true;
    }
    return false;
  }
};

// Decodes one line into key/value lists. Returns false and sets `err` on
// any deviation from the strict flat schema.
bool parse_line(const std::string& line, LineValues& out, std::string& err);

// Lookup helpers; nullptr when the key is absent (or of another kind).
const std::uint64_t* find_int(const LineValues& v, const char* key);
const std::string* find_str(const LineValues& v, const char* key);

}  // namespace ssbft::jsonl
