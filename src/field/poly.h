// Univariate polynomials over Z_p.
//
// Coefficient vectors are little-endian (coeffs[i] multiplies x^i). The zero
// polynomial is the empty vector; degree() of zero is -1 by convention.
#pragma once

#include <cstdint>
#include <vector>

#include "field/fp.h"
#include "support/rng.h"

namespace ssbft {

class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<std::uint64_t> coeffs);

  // A uniformly random polynomial of degree <= deg with the given constant
  // term (the standard Shamir dealing shape).
  static Poly random_with_constant(const PrimeField& F, int deg,
                                   std::uint64_t constant, Rng& rng);
  // A uniformly random polynomial of degree <= deg.
  static Poly random(const PrimeField& F, int deg, Rng& rng);

  // -1 for the zero polynomial.
  int degree() const;
  const std::vector<std::uint64_t>& coeffs() const { return coeffs_; }
  std::uint64_t coeff(std::size_t i) const {
    return i < coeffs_.size() ? coeffs_[i] : 0;
  }
  bool is_zero() const;

  std::uint64_t eval(const PrimeField& F, std::uint64_t x) const;

  Poly add(const PrimeField& F, const Poly& o) const;
  Poly sub(const PrimeField& F, const Poly& o) const;
  Poly mul(const PrimeField& F, const Poly& o) const;
  Poly scale(const PrimeField& F, std::uint64_t c) const;

  // Polynomial division: *this = q * divisor + r. divisor must be nonzero.
  // Returns {q, r}.
  std::pair<Poly, Poly> divmod(const PrimeField& F, const Poly& divisor) const;

  // Drops trailing zero coefficients (canonical form).
  void normalize();

  bool operator==(const Poly& o) const { return coeffs_ == o.coeffs_; }

 private:
  std::vector<std::uint64_t> coeffs_;
};

// Unique polynomial of degree < points.size() through the given points.
// The xs must be distinct canonical field elements.
Poly lagrange_interpolate(const PrimeField& F,
                          const std::vector<std::uint64_t>& xs,
                          const std::vector<std::uint64_t>& ys);

}  // namespace ssbft
