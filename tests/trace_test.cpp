// The trace pipeline end to end: every protocol family runs traced and
// the offline checker (harness/checker.h) verifies the paper's invariants
// on the produced stream; trace commitments are bit-identical across
// sweep scheduler widths; tracing never perturbs results; and the decoder
// rejects malformed or forged input with structured errors, never UB.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/checker.h"
#include "harness/live_check.h"
#include "harness/scenario.h"
#include "harness/sweep.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace ssbft {
namespace {

namespace fs = std::filesystem;

// Runs one freshly built world for `beats` beats with a JSONL sink
// attached and returns the serialized trace.
std::string run_traced(Family fam, const World& w, std::uint64_t seed,
                       std::uint64_t beats) {
  EngineBundle b = build_world(fam, w)(seed);
  std::ostringstream out;
  JsonlTraceSink sink(out);
  TraceMeta meta;
  meta.scenario = family_name(fam);
  meta.seed = seed;
  meta.n = b.engine->n();
  meta.f = b.engine->f();
  for (NodeId id = 0; id < b.engine->n(); ++id) {
    if (b.engine->is_faulty(id)) meta.faulty.push_back(id);
  }
  meta.max_beats = beats;
  meta.confirm_window = 12;
  sink.begin_trace(meta);
  b.engine->set_trace(&sink);
  b.engine->run_beats(beats);
  return out.str();
}

ParseResult parse_str(const std::string& s) {
  std::istringstream in(s);
  return parse_trace(in);
}

// parse -> merge -> check of a single serialized trace.
CheckResult check_str(const std::string& s, const CheckOptions& opts) {
  ParseResult p = parse_str(s);
  EXPECT_TRUE(p.ok) << p.error << " at line " << p.error_line;
  std::vector<ParsedTrace> parts;
  parts.push_back(std::move(p.trace));
  MergeResult m = merge_traces(std::move(parts));
  EXPECT_TRUE(m.ok) << m.error;
  EXPECT_EQ(m.traces.size(), 1u);
  return check_trace(m.traces[0], opts);
}

// ---------------------------------------------------------------------------
// Every protocol family, traced over 10^4 beats, passes all four offline
// invariants: agreement after the convergence beat, legal k-clock
// increments, (with a corruption schedule) re-convergence within a bound,
// and coin-value agreement among correct nodes.

struct FamilyCase {
  const char* name;
  Family fam;
  World w;
};

std::vector<FamilyCase> family_cases() {
  std::vector<FamilyCase> cases;
  auto add = [&](const char* name, Family fam, std::uint32_t n,
                 std::uint32_t f, ClockValue k, Attack attack) {
    World w;
    w.n = n;
    w.f = f;
    w.actual = f;
    w.k = k;
    w.attack = attack;
    cases.push_back({name, fam, w});
  };
  add("clock_sync", Family::kClockSync, 4, 1, 8, Attack::kSkew);
  add("clock4", Family::kClock4, 4, 1, 4, Attack::kSilent);
  add("clock2", Family::kClock2, 4, 1, 2, Attack::kSilent);
  add("cascade", Family::kCascade, 4, 1, 4, Attack::kSilent);
  add("dw", Family::kDolevWelch, 4, 1, 4, Attack::kSilent);
  add("dw_shared", Family::kDolevWelchShared, 4, 1, 8, Attack::kSilent);
  add("queen", Family::kPipelinedQueen, 5, 1, 8, Attack::kSilent);
  add("king", Family::kPipelinedKing, 4, 1, 8, Attack::kSilent);
  return cases;
}

TEST(TraceCheck, EveryFamilyPassesAllInvariantsOver10kBeats) {
  for (const FamilyCase& fc : family_cases()) {
    SCOPED_TRACE(fc.name);
    const std::string trace = run_traced(fc.fam, fc.w, 97, 10000);
    CheckOptions opts;
    opts.require_convergence = true;
    const CheckResult res = check_str(trace, opts);
    EXPECT_TRUE(res.ok) << (res.violations.empty() ? "" : res.violations[0]);
    EXPECT_TRUE(res.converged);
    EXPECT_FALSE(res.censored);
    EXPECT_EQ(res.beats, 10000u);
    // Families tracing a shared coin must show post-convergence agreement;
    // the local-coin baselines legitimately trace no coin stream at all.
    if (res.coin_groups > 0) EXPECT_GE(res.coin_agreement_rate, 0.5);
  }
}

TEST(TraceCheck, ScheduledCorruptionIsLegalAndReconvergesWithinBound) {
  World w;
  w.n = 4;
  w.f = 1;
  w.actual = 1;
  w.k = 8;
  w.attack = Attack::kSkew;
  w.faults.corruptions[3000] = {0, 1};
  const std::string trace = run_traced(Family::kClockSync, w, 11, 10000);

  CheckOptions opts;
  opts.require_convergence = true;
  opts.bound = 6000;
  const CheckResult res = check_str(trace, opts);
  EXPECT_TRUE(res.ok) << (res.violations.empty() ? "" : res.violations[0]);
  EXPECT_TRUE(res.had_corruption);
  EXPECT_EQ(res.last_corruption, 3000u);
  EXPECT_TRUE(res.converged);
}

// ---------------------------------------------------------------------------
// Determinism: the commitments of a traced sweep are bit-identical for
// every --jobs value, and tracing never changes TrialStats.

std::vector<SweepCell> three_cell_grid() {
  const char* names[] = {"table1/dw/n4", "gallery/split", "net/lossy"};
  std::vector<SweepCell> cells;
  for (const char* name : names) {
    const ScenarioSpec* spec = find_scenario(name);
    EXPECT_NE(spec, nullptr);
    RunnerConfig rc = scenario_runner_config(*spec);
    rc.trials = 3 + cells.size();  // unequal cell sizes
    rc.convergence.max_beats = 400;
    cells.push_back(SweepCell{spec->name, build_scenario(*spec), rc});
  }
  return cells;
}

// Parses and merges every .jsonl file in dir; returns the per-trace
// commitments in canonical (merge-key) order.
std::vector<std::string> dir_commitments(const std::string& dir) {
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".jsonl") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<ParsedTrace> parsed;
  for (const std::string& path : paths) {
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    ParseResult r = parse_trace(f);
    EXPECT_TRUE(r.ok) << path << ":" << r.error_line << ": " << r.error;
    parsed.push_back(std::move(r.trace));
  }
  MergeResult merged = merge_traces(std::move(parsed));
  EXPECT_TRUE(merged.ok) << merged.error;
  std::vector<std::string> commits;
  for (const ParsedTrace& t : merged.traces) {
    commits.push_back(trace_commitment(t));
  }
  return commits;
}

TEST(TraceCheck, CommitmentBitIdenticalAcrossJobs) {
  const auto cells = three_cell_grid();
  std::uint64_t total_trials = 0;
  for (const auto& c : cells) total_trials += c.cfg.trials;

  std::vector<std::string> baseline;
  for (std::uint64_t jobs : {1ULL, 2ULL, 0ULL}) {
    const std::string dir =
        ::testing::TempDir() + "ssbft_trace_jobs" + std::to_string(jobs);
    fs::remove_all(dir);
    SweepOptions opts;
    opts.jobs = jobs;
    opts.trace_dir = dir;
    run_sweep(cells, opts);

    const std::vector<std::string> commits = dir_commitments(dir);
    EXPECT_EQ(commits.size(), total_trials);
    if (jobs == 1) {
      baseline = commits;
    } else {
      EXPECT_EQ(commits, baseline) << "jobs=" << jobs;
      EXPECT_EQ(aggregate_commitment(commits),
                aggregate_commitment(baseline));
    }
    fs::remove_all(dir);
  }
}

TEST(TraceCheck, TracingNeverPerturbsTrialStats) {
  const auto cells = three_cell_grid();
  SweepOptions plain;
  plain.jobs = 1;
  const std::vector<TrialStats> base = run_sweep(cells, plain);

  const std::string dir = ::testing::TempDir() + "ssbft_trace_stats";
  fs::remove_all(dir);
  SweepOptions traced = plain;
  traced.trace_dir = dir;
  const std::vector<TrialStats> with_trace = run_sweep(cells, traced);
  fs::remove_all(dir);

  ASSERT_EQ(with_trace.size(), base.size());
  for (std::size_t c = 0; c < base.size(); ++c) {
    SCOPED_TRACE(cells[c].name);
    EXPECT_EQ(with_trace[c].trials, base[c].trials);
    EXPECT_EQ(with_trace[c].converged, base[c].converged);
    EXPECT_EQ(with_trace[c].samples, base[c].samples);
    EXPECT_EQ(with_trace[c].mean_msgs_per_beat, base[c].mean_msgs_per_beat);
  }
}

// ---------------------------------------------------------------------------
// Checker invariants on hand-crafted streams (positive control is above:
// real runs pass; here each invariant must actually fire).

const char kHeader[] =
    "{\"type\":\"header\",\"version\":1,\"scenario\":\"t\",\"trial\":0,"
    "\"seed\":1,\"n\":4,\"f\":1,\"faulty\":[3],\"max_beats\":100,"
    "\"confirm_window\":3}\n";

std::string clock_line(std::uint64_t beat, std::uint32_t node,
                       std::uint64_t clock, std::uint64_t k = 4) {
  return "{\"type\":\"clock\",\"beat\":" + std::to_string(beat) +
         ",\"node\":" + std::to_string(node) +
         ",\"clock\":" + std::to_string(clock) +
         ",\"k\":" + std::to_string(k) + "}\n";
}

// Ten beats of all three correct nodes in lockstep: converged at beat 0.
std::string converged_prefix() {
  std::string s = kHeader;
  for (std::uint64_t b = 0; b < 10; ++b) {
    for (std::uint32_t node = 0; node < 3; ++node) {
      s += clock_line(b, node, b % 4);
    }
  }
  return s;
}

TEST(TraceCheck, ClosureBreakWithoutCorruptionIsAViolation) {
  std::string s = converged_prefix();
  s += clock_line(10, 0, 2);
  s += clock_line(10, 1, 2);
  s += clock_line(10, 2, 3);  // disagrees, and no corruption recorded
  const CheckResult res = check_str(s, CheckOptions{});
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations[0].find("closure broke"), std::string::npos);
}

TEST(TraceCheck, ClosureBreakOnACorruptionBeatIsLegal) {
  std::string s = converged_prefix();
  s += "{\"type\":\"corrupt\",\"beat\":10,\"node\":1}\n";
  s += clock_line(10, 0, 2);
  s += clock_line(10, 1, 0);  // the corrupted node diverges
  s += clock_line(10, 2, 2);
  const CheckResult res = check_str(s, CheckOptions{});
  EXPECT_TRUE(res.ok) << (res.violations.empty() ? "" : res.violations[0]);
  EXPECT_TRUE(res.had_corruption);
  EXPECT_EQ(res.last_corruption, 10u);
}

TEST(TraceCheck, ClockValueAtOrAboveModulusIsAViolation) {
  std::string s = kHeader;
  s += clock_line(0, 0, 7);  // k = 4
  s += clock_line(0, 1, 1);
  s += clock_line(0, 2, 1);
  const CheckResult res = check_str(s, CheckOptions{});
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations[0].find(">= modulus"), std::string::npos);
}

TEST(TraceCheck, PostConvergenceCoinDisagreementIsAViolation) {
  // Same (beat, stream) group, opposite bits, every beat: all-equal rate 0.
  std::string ordered = kHeader;
  for (std::uint64_t b = 0; b < 10; ++b) {
    for (std::uint32_t node = 0; node < 3; ++node) {
      ordered += clock_line(b, node, b % 4);
    }
    ordered += "{\"type\":\"coin\",\"beat\":" + std::to_string(b) +
               ",\"node\":0,\"stream\":5,\"bit\":0}\n";
    ordered += "{\"type\":\"coin\",\"beat\":" + std::to_string(b) +
               ",\"node\":1,\"stream\":5,\"bit\":1}\n";
  }
  const CheckResult res = check_str(ordered, CheckOptions{});
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.coin_agreement_rate, 0.0);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations.back().find("coin agreement"), std::string::npos);
}

TEST(TraceCheck, RequireConvergenceUpgradesCensoredToFailure) {
  std::string s = kHeader;
  s += clock_line(0, 0, 0);
  s += clock_line(0, 1, 1);  // never in agreement
  s += clock_line(0, 2, 2);
  const CheckResult censored = check_str(s, CheckOptions{});
  EXPECT_TRUE(censored.ok);
  EXPECT_TRUE(censored.censored);
  CheckOptions strict;
  strict.require_convergence = true;
  const CheckResult res = check_str(s, strict);
  EXPECT_FALSE(res.ok);
}

TEST(TraceCheck, FaultHorizonExcusesBreaksInsideTheDeclaredWindow) {
  // Converged at beat 0, lockstep broken at beat 10 with no corruption
  // record (a dropped message inside a declared lossy window), back in
  // lockstep from beat 11 on.
  std::string s = converged_prefix();
  s += clock_line(10, 0, 2);
  s += clock_line(10, 1, 2);
  s += clock_line(10, 2, 3);
  for (std::uint64_t b = 11; b < 30; ++b) {
    for (std::uint32_t node = 0; node < 3; ++node) {
      s += clock_line(b, node, b % 4);
    }
  }
  // On a clean network that break is a closure violation...
  EXPECT_FALSE(check_str(s, CheckOptions{}).ok);
  // ...but under a declared fault horizon covering it, beats before the
  // quiescence point are treated like corruption beats: no violation, and
  // convergence is measured from the horizon.
  CheckOptions lossy;
  lossy.fault_horizon = 11;
  const CheckResult res = check_str(s, lossy);
  EXPECT_TRUE(res.ok) << (res.violations.empty() ? "" : res.violations[0]);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.synced_at, 11u);
}

// ---------------------------------------------------------------------------
// Streaming/offline equivalence: InvariantCore is the single invariant
// implementation, so a StreamingChecker attached to the live engine must
// produce exactly the verdict ssbft_check computes from the same run's
// serialized trace — same flags, same beats, same violation strings.

CheckResult run_streamed(Family fam, const World& w, std::uint64_t seed,
                         std::uint64_t beats, const CheckOptions& opts) {
  EngineBundle b = build_world(fam, w)(seed);
  StreamingChecker checker(opts);
  TraceMeta meta;
  meta.scenario = family_name(fam);
  meta.seed = seed;
  meta.n = b.engine->n();
  meta.f = b.engine->f();
  for (NodeId id = 0; id < b.engine->n(); ++id) {
    if (b.engine->is_faulty(id)) meta.faulty.push_back(id);
  }
  meta.max_beats = beats;
  meta.confirm_window = 12;
  checker.begin_trace(meta);
  b.engine->set_trace(&checker);
  b.engine->run_beats(beats);
  return checker.finish();
}

void expect_same_verdict(const CheckResult& offline, const CheckResult& live) {
  EXPECT_EQ(live.ok, offline.ok);
  EXPECT_EQ(live.converged, offline.converged);
  EXPECT_EQ(live.censored, offline.censored);
  EXPECT_EQ(live.synced_at, offline.synced_at);
  EXPECT_EQ(live.beats, offline.beats);
  EXPECT_EQ(live.had_corruption, offline.had_corruption);
  EXPECT_EQ(live.last_corruption, offline.last_corruption);
  EXPECT_EQ(live.coin_groups, offline.coin_groups);
  EXPECT_EQ(live.coin_agreement_rate, offline.coin_agreement_rate);
  EXPECT_EQ(live.violation_count, offline.violation_count);
  EXPECT_EQ(live.violations, offline.violations);
}

TEST(StreamingCheck, VerdictMatchesOfflineOnEveryFamily) {
  for (const FamilyCase& fc : family_cases()) {
    SCOPED_TRACE(fc.name);
    CheckOptions opts;
    opts.require_convergence = true;
    const CheckResult offline =
        check_str(run_traced(fc.fam, fc.w, 97, 10000), opts);
    const CheckResult live = run_streamed(fc.fam, fc.w, 97, 10000, opts);
    expect_same_verdict(offline, live);
    EXPECT_TRUE(live.ok)
        << (live.violations.empty() ? "" : live.violations[0]);
  }
}

TEST(StreamingCheck, VerdictMatchesOfflineUnderCorruptionAndBound) {
  World w;
  w.n = 4;
  w.f = 1;
  w.actual = 1;
  w.k = 8;
  w.attack = Attack::kSkew;
  w.faults.corruptions[3000] = {0, 1};
  CheckOptions opts;
  opts.require_convergence = true;
  opts.bound = 6000;
  const CheckResult offline =
      check_str(run_traced(Family::kClockSync, w, 11, 10000), opts);
  const CheckResult live = run_streamed(Family::kClockSync, w, 11, 10000, opts);
  expect_same_verdict(offline, live);
  EXPECT_TRUE(live.ok) << (live.violations.empty() ? "" : live.violations[0]);
  EXPECT_TRUE(live.had_corruption);
  EXPECT_EQ(live.last_corruption, 3000u);
}

// Feeds a hand-crafted serialized stream through the streaming path (the
// decoder supplies the records, a TraceMeta supplies the window).
CheckResult stream_str(const std::string& s, const CheckOptions& opts) {
  ParseResult p = parse_str(s);
  EXPECT_TRUE(p.ok) << p.error << " at line " << p.error_line;
  StreamingChecker checker(opts);
  TraceMeta meta;
  meta.confirm_window = p.trace.header.confirm_window;
  checker.begin_trace(meta);
  checker.write(p.trace.records.data(), p.trace.records.size());
  return checker.finish();
}

TEST(StreamingCheck, UnexplainedClosureBreakFiresInTheStream) {
  std::string s = converged_prefix();
  s += clock_line(10, 0, 2);
  s += clock_line(10, 1, 2);
  s += clock_line(10, 2, 3);  // disagrees, and no corruption recorded
  const CheckResult res = stream_str(s, CheckOptions{});
  EXPECT_FALSE(res.ok);
  ASSERT_FALSE(res.violations.empty());
  EXPECT_NE(res.violations[0].find("closure broke"), std::string::npos);
  expect_same_verdict(check_str(s, CheckOptions{}), res);
}

TEST(StreamingCheck, HandCraftedStreamsMatchOfflineVerdicts) {
  struct Case {
    const char* name;
    std::string stream;
    CheckOptions opts;
  };
  std::vector<Case> cases;
  cases.push_back({"converged", converged_prefix(), CheckOptions{}});
  {
    std::string s = converged_prefix();
    s += "{\"type\":\"corrupt\",\"beat\":10,\"node\":1}\n";
    s += clock_line(10, 0, 2);
    s += clock_line(10, 1, 0);
    s += clock_line(10, 2, 2);
    cases.push_back({"corrupt-break", s, CheckOptions{}});
  }
  {
    std::string s = kHeader;
    s += clock_line(0, 0, 7);
    s += clock_line(0, 1, 1);
    s += clock_line(0, 2, 1);
    cases.push_back({"overflow", s, CheckOptions{}});
  }
  {
    CheckOptions strict;
    strict.require_convergence = true;
    std::string s = kHeader;
    s += clock_line(0, 0, 0);
    s += clock_line(0, 1, 1);
    s += clock_line(0, 2, 2);
    cases.push_back({"censored-strict", s, strict});
  }
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    expect_same_verdict(check_str(c.stream, c.opts),
                        stream_str(c.stream, c.opts));
  }
}

// ---------------------------------------------------------------------------
// Decoder negative paths: structured rejection with a line number.

void expect_parse_error(const std::string& input, const char* needle,
                        std::size_t line = 0) {
  const ParseResult r = parse_str(input);
  EXPECT_FALSE(r.ok) << "expected rejection containing '" << needle << "'";
  EXPECT_NE(r.error.find(needle), std::string::npos) << r.error;
  if (line != 0) EXPECT_EQ(r.error_line, line);
}

TEST(TraceDecode, RejectsTruncatedLine) {
  expect_parse_error(std::string(kHeader) +
                         "{\"type\":\"clock\",\"beat\":0,\"node\":0,\"cl",
                     "unterminated", 2);
}

TEST(TraceDecode, RejectsOutOfOrderBeats) {
  expect_parse_error(
      std::string(kHeader) + clock_line(5, 0, 1) + clock_line(3, 1, 1),
      "beats out of order", 3);
}

TEST(TraceDecode, RejectsForgedRecordsFromFaultyNodes) {
  // Node 3 is declared faulty in the header; a coin record in its name is
  // a forgery, as is a clock or corrupt record.
  expect_parse_error(std::string(kHeader) +
                         "{\"type\":\"coin\",\"beat\":0,\"node\":3,"
                         "\"stream\":1,\"bit\":0}",
                     "forged coin record from faulty node 3", 2);
  expect_parse_error(std::string(kHeader) + clock_line(0, 3, 1),
                     "forged clock record", 2);
  expect_parse_error(
      std::string(kHeader) + "{\"type\":\"corrupt\",\"beat\":0,\"node\":3}",
      "forged corrupt record", 2);
}

TEST(TraceDecode, RejectsStructuralGarbage) {
  expect_parse_error("", "missing header");
  expect_parse_error("\n", "empty line", 1);
  expect_parse_error(clock_line(0, 0, 1), "record before header", 1);
  expect_parse_error(std::string(kHeader) + kHeader, "duplicate header", 2);
  expect_parse_error(std::string(kHeader) + "{\"type\":\"warp\",\"beat\":0}",
                     "unknown type", 2);
  expect_parse_error(std::string(kHeader) +
                         "{\"type\":\"clock\",\"beat\":0,\"node\":0,"
                         "\"clock\":1,\"k\":4,\"x\":1}",
                     "unknown key 'x'", 2);
  expect_parse_error(std::string(kHeader) +
                         "{\"type\":\"clock\",\"beat\":0,\"beat\":1,"
                         "\"node\":0,\"clock\":1,\"k\":4}",
                     "duplicate key", 2);
  expect_parse_error(std::string(kHeader) +
                         "{\"type\":\"coin\",\"beat\":0,\"node\":0,"
                         "\"stream\":1,\"bit\":2}",
                     "coin bit out of range", 2);
  expect_parse_error(std::string(kHeader) + clock_line(0, 9, 1),
                     "node out of range", 2);
  expect_parse_error(std::string(kHeader) + clock_line(0, 0, 1, 0),
                     "zero modulus", 2);
  expect_parse_error(std::string(kHeader) +
                         "{\"type\":\"clock\",\"beat\":0,\"node\":-1,"
                         "\"clock\":1,\"k\":4}",
                     "unsupported value", 2);
  expect_parse_error(std::string(kHeader) + clock_line(1, 0, 1) +
                         clock_line(2, 0, 1, 8),
                     "modulus mismatch", 3);
}

TEST(TraceDecode, MergeRejectsMissingNodesAndDuplicateClocks) {
  // A beat carrying clock records must carry exactly one per correct node.
  {
    ParseResult p = parse_str(std::string(kHeader) + clock_line(0, 0, 1) +
                              clock_line(0, 1, 1));
    ASSERT_TRUE(p.ok);
    std::vector<ParsedTrace> parts;
    parts.push_back(std::move(p.trace));
    const MergeResult m = merge_traces(std::move(parts));
    EXPECT_FALSE(m.ok);
    EXPECT_NE(m.error.find("missing nodes"), std::string::npos) << m.error;
  }
  {
    ParseResult p = parse_str(std::string(kHeader) + clock_line(0, 0, 1) +
                              clock_line(0, 0, 1) + clock_line(0, 1, 1) +
                              clock_line(0, 2, 1));
    ASSERT_TRUE(p.ok);
    std::vector<ParsedTrace> parts;
    parts.push_back(std::move(p.trace));
    const MergeResult m = merge_traces(std::move(parts));
    EXPECT_FALSE(m.ok);
    EXPECT_NE(m.error.find("duplicate clock"), std::string::npos) << m.error;
  }
}

TEST(TraceDecode, MergeRejectsConflictingHeaders) {
  ParseResult a = parse_str(std::string(kHeader) + clock_line(0, 0, 1) +
                            clock_line(0, 1, 1) + clock_line(0, 2, 1));
  ASSERT_TRUE(a.ok);
  ParseResult b = parse_str(kHeader);
  ASSERT_TRUE(b.ok);
  b.trace.header.max_beats = 999;  // same (scenario, trial, seed), new body
  std::vector<ParsedTrace> parts;
  parts.push_back(std::move(a.trace));
  parts.push_back(std::move(b.trace));
  const MergeResult m = merge_traces(std::move(parts));
  EXPECT_FALSE(m.ok);
  EXPECT_NE(m.error.find("conflicting headers"), std::string::npos) << m.error;
}

TEST(TraceDecode, MergeFoldsSplitFilesIntoOneCanonicalStream) {
  // The same run split across two files (clocks here, coins there) must
  // merge into the identical stream — and thus the identical commitment —
  // as the single-file serialization.
  std::string whole = kHeader;
  std::string clocks = kHeader;
  std::string coins = kHeader;
  for (std::uint64_t b = 0; b < 6; ++b) {
    for (std::uint32_t node = 0; node < 3; ++node) {
      whole += clock_line(b, node, b % 4);
      clocks += clock_line(b, node, b % 4);
    }
    const std::string coin = "{\"type\":\"coin\",\"beat\":" +
                             std::to_string(b) +
                             ",\"node\":0,\"stream\":2,\"bit\":1}\n";
    whole += coin;
    coins += coin;
  }
  auto merged_commit = [](std::vector<std::string> files) {
    std::vector<ParsedTrace> parts;
    for (const std::string& f : files) {
      ParseResult p = parse_str(f);
      EXPECT_TRUE(p.ok) << p.error;
      parts.push_back(std::move(p.trace));
    }
    MergeResult m = merge_traces(std::move(parts));
    EXPECT_TRUE(m.ok) << m.error;
    EXPECT_EQ(m.traces.size(), 1u);
    return trace_commitment(m.traces[0]);
  };
  EXPECT_EQ(merged_commit({whole}), merged_commit({clocks, coins}));
  EXPECT_EQ(merged_commit({whole}), merged_commit({coins, clocks}));
}

TEST(TraceCommitment, SensitiveToContentNotOrderOfAggregation) {
  ParseResult a = parse_str(std::string(kHeader) + clock_line(0, 0, 1) +
                            clock_line(0, 1, 1) + clock_line(0, 2, 1));
  ParseResult b = parse_str(std::string(kHeader) + clock_line(0, 0, 2) +
                            clock_line(0, 1, 2) + clock_line(0, 2, 2));
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  const std::string ca = trace_commitment(a.trace);
  const std::string cb = trace_commitment(b.trace);
  EXPECT_EQ(ca.size(), 64u);
  EXPECT_NE(ca, cb);
  EXPECT_EQ(aggregate_commitment({ca, cb}), aggregate_commitment({cb, ca}));
  EXPECT_NE(aggregate_commitment({ca, cb}), aggregate_commitment({ca, ca}));
}

}  // namespace
}  // namespace ssbft
