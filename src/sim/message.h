// Message model and per-beat inbox/outbox plumbing.
//
// Messages are (from, to, channel, payload-bytes). Channels identify logical
// sub-protocol streams inside a composed stack (e.g. "A1's coin, round 3");
// a parent protocol assigns its children disjoint channel ranges, which is
// the paper's "session number" device made static: only a fixed window of
// sub-protocol instances co-execute, so a fixed channel space suffices and
// is trivially recyclable (self-stabilization needs no unbounded counters).
//
// Bytes-pool ownership rules (shared-payload model, PR 4)
// --------------------------------------------------------
// Payload storage is refcounted: a `SharedBytes` is a handle to a pooled
// buffer slot, and every `Message` carries one. A broadcast encodes and
// copies its payload into pooled storage exactly ONCE — all n Messages
// alias the same slot — and delivery, the adversary's rushing view, and
// the inboxes only move or copy handles (refcount bumps), never bytes.
// Per-beat payload memcpy is therefore O(traffic encoded), not O(messages
// delivered). Wire-byte accounting is unchanged: a broadcast still counts
// n x payload-size sent bytes, and every aliased Message reports the full
// payload size.
//
// Lifecycle of a slot:
//
//   1. The pool owns free slots. `acquire()` hands out a handle to an
//      *empty* buffer (capacity retained from earlier use) with refcount 1.
//   2. Handles share the slot. Copying a SharedBytes (outbox fan-out,
//      the adversary's observed view, inbox delivery) bumps the refcount;
//      destroying or reassigning one drops it. Nobody may mutate a slot's
//      bytes after more than one handle exists (`mutable_bytes()` enforces
//      uniqueness), so aliased readers are always safe.
//   3. The last handle recycles the slot. When the refcount reaches zero
//      the slot returns to its pool's free list — content cleared,
//      capacity kept — so the steady-state beat performs no heap
//      allocation. Slots created without a pool (standalone SharedBytes
//      built from a Bytes literal, e.g. in tests) are heap-owned and
//      deleted on last release instead.
//
// Views returned by `on()` / `first_per_sender()` borrow payload bytes
// from the slots referenced by the inbox and stay valid until the inbox's
// next `clear()` (or destruction); `deliver()` invalidates the *index*
// structure of a view but never moves payload bytes.
//
// An Outbox/Inbox constructed without an external pool owns a private one,
// so standalone use (tests, harnesses) needs no extra plumbing. A shared
// pool must outlive every Outbox/Inbox bound to it AND every SharedBytes
// handle drawn from it; the Engine owns the pool and all of its users, in
// that order.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "support/bytes.h"
#include "support/check.h"
#include "support/types.h"

namespace ssbft {

class BytesPool;

namespace detail {
// Control block + storage for one shared payload buffer. Not thread-safe;
// one pool (and all of its slots) per engine.
struct PayloadSlot {
  Bytes buf;
  std::uint32_t refs = 0;
  BytesPool* pool = nullptr;  // null: heap slot, deleted on last release
};
}  // namespace detail

// Refcounted handle to a payload buffer. Copying shares the buffer; the
// last handle recycles it into its pool (or deletes a pool-less slot).
class SharedBytes {
 public:
  SharedBytes() = default;
  // Standalone handles over a heap slot (tests, literals). Implicit so
  // Message{from, to, ch, {0xaa}} keeps working.
  SharedBytes(Bytes b)
      : slot_(new detail::PayloadSlot{std::move(b), 1, nullptr}) {}
  SharedBytes(std::initializer_list<std::uint8_t> il)
      : SharedBytes(Bytes(il)) {}

  SharedBytes(const SharedBytes& o) : slot_(o.slot_) {
    if (slot_ != nullptr) ++slot_->refs;
  }
  SharedBytes(SharedBytes&& o) noexcept : slot_(o.slot_) {
    o.slot_ = nullptr;
  }
  SharedBytes& operator=(const SharedBytes& o) {
    if (slot_ != o.slot_) {
      reset();
      slot_ = o.slot_;
      if (slot_ != nullptr) ++slot_->refs;
    }
    return *this;
  }
  SharedBytes& operator=(SharedBytes&& o) noexcept {
    if (this != &o) {
      reset();
      slot_ = o.slot_;
      o.slot_ = nullptr;
    }
    return *this;
  }
  ~SharedBytes() { reset(); }

  // Drops this handle (recycling the slot if it was the last one).
  void reset();

  // Read view. A null handle reads as an empty buffer.
  const Bytes& bytes() const {
    static const Bytes kEmpty;
    return slot_ != nullptr ? slot_->buf : kEmpty;
  }
  operator const Bytes&() const { return bytes(); }
  std::size_t size() const { return bytes().size(); }
  bool empty() const { return bytes().empty(); }
  std::uint8_t operator[](std::size_t i) const { return bytes()[i]; }

  // Mutable access, only while this is the sole handle: aliased payloads
  // (a broadcast already fanned out) must never change under a reader.
  Bytes& mutable_bytes() {
    SSBFT_REQUIRE_MSG(slot_ != nullptr && slot_->refs == 1,
                      "mutable_bytes() on a shared or null payload");
    return slot_->buf;
  }

  // Handles aliasing the same slot (diagnostics/tests).
  bool shares_with(const SharedBytes& o) const {
    return slot_ != nullptr && slot_ == o.slot_;
  }

 private:
  friend class BytesPool;
  explicit SharedBytes(detail::PayloadSlot* slot) : slot_(slot) {}

  detail::PayloadSlot* slot_ = nullptr;
};

struct Message {
  NodeId from = 0;
  NodeId to = 0;
  ChannelId channel = 0;
  SharedBytes payload;
};

// Free list of payload slots. Not thread-safe; one pool per engine.
class BytesPool {
 public:
  BytesPool() = default;
  BytesPool(const BytesPool&) = delete;
  BytesPool& operator=(const BytesPool&) = delete;
  ~BytesPool();

  // A handle (refcount 1) to an empty buffer, reusing pooled capacity when
  // available.
  SharedBytes acquire();
  // Slots currently sitting in the free list.
  std::size_t free_count() const { return free_.size(); }

 private:
  friend class SharedBytes;
  // Takes a slot back (refcount already zero). Content is discarded, the
  // buffer's capacity and the slot node itself are kept for reuse.
  void recycle(detail::PayloadSlot* slot);

  std::vector<detail::PayloadSlot*> free_;
};

inline void SharedBytes::reset() {
  if (slot_ == nullptr) return;
  detail::PayloadSlot* s = slot_;
  slot_ = nullptr;
  if (--s->refs != 0) return;
  if (s->pool != nullptr) {
    s->pool->recycle(s);
  } else {
    delete s;
  }
}

// Borrowed view of one channel bucket: a contiguous run of indices into
// the inbox's arrival-order message store. Iteration order is canonical
// (sender id, then arrival order); messages themselves are never moved.
class MessageView {
 public:
  class iterator {
   public:
    iterator(const Message* base, const std::uint32_t* idx)
        : base_(base), idx_(idx) {}
    const Message& operator*() const { return base_[*idx_]; }
    const Message* operator->() const { return &base_[*idx_]; }
    iterator& operator++() {
      ++idx_;
      return *this;
    }
    bool operator==(const iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const iterator& o) const { return idx_ != o.idx_; }

   private:
    const Message* base_;
    const std::uint32_t* idx_;
  };

  MessageView() = default;
  MessageView(const Message* base, const std::uint32_t* idx, std::size_t size)
      : base_(base), idx_(idx), size_(size) {}

  iterator begin() const { return iterator{base_, idx_}; }
  iterator end() const { return iterator{base_, idx_ + size_}; }
  const Message& operator[](std::size_t i) const { return base_[idx_[i]]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  const Message* base_ = nullptr;
  const std::uint32_t* idx_ = nullptr;
  std::size_t size_ = 0;
};

// Borrowed per-sender payload table: entry s is null if sender s sent
// nothing valid on the channel.
class PayloadView {
 public:
  PayloadView() = default;
  PayloadView(const Bytes* const* data, std::size_t size)
      : data_(data), size_(size) {}

  const Bytes* const* begin() const { return data_; }
  const Bytes* const* end() const { return data_ + size_; }
  const Bytes* operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  const Bytes* const* data_ = nullptr;
  std::size_t size_ = 0;
};

// Collects a node's sends during its send phase. The engine enforces the
// sender identity (Definition 2.2: sender ids cannot be forged). One Outbox
// is reused across all nodes and beats: `reset()` rebinds the sender. The
// engine binds the outbox to its own per-beat message vector (`bind_sink`),
// so sends land directly in the beat scratch with no drain pass; standalone
// outboxes collect into an internal vector.
class Outbox {
 public:
  Outbox(NodeId self, std::uint32_t n, BytesPool* pool = nullptr)
      : self_(self), n_(n), external_pool_(pool), sink_(&owned_msgs_) {}

  // Redirect sends into an external vector (the engine's beat scratch).
  // Pass null to return to the internal vector.
  void bind_sink(std::vector<Message>* sink) {
    sink_ = sink != nullptr ? sink : &owned_msgs_;
  }

  // Rebind to a new sender and restart this sender's traffic accounting.
  // Messages already in the sink are left in place (the engine owns them).
  void reset(NodeId self) {
    self_ = self;
    if (sink_ == &owned_msgs_) owned_msgs_.clear();
    sent_messages_ = 0;
    sent_bytes_ = 0;
  }

  // A cleared, reusable payload builder. Valid until the next writer()
  // call; send/broadcast copy the payload, so the writer may be reused
  // immediately afterwards.
  ByteWriter& writer() {
    writer_.clear();
    return writer_;
  }

  // Point-to-point send. The payload is copied into pooled storage.
  void send(NodeId to, ChannelId channel, const Bytes& payload);
  // "Broadcast" in the paper's sense: send the same payload to all n nodes,
  // including self (no broadcast channels are assumed). The payload is
  // encoded into pooled storage ONCE; all n messages alias that buffer.
  // Sent-byte accounting still counts n x payload-size wire bytes.
  void broadcast(ChannelId channel, const Bytes& payload);

  // Messages and payload bytes emitted since the last reset().
  std::uint64_t sent_messages() const { return sent_messages_; }
  std::uint64_t sent_bytes() const { return sent_bytes_; }

  const std::vector<Message>& messages() const { return *sink_; }
  // Drops all payload handles (recycling last-referenced slots) and
  // forgets the messages.
  void clear();

 private:
  BytesPool& pool() { return external_pool_ ? *external_pool_ : owned_pool_; }

  NodeId self_;
  std::uint32_t n_;
  BytesPool* external_pool_;
  BytesPool owned_pool_;
  ByteWriter writer_;
  std::vector<Message> owned_msgs_;
  std::vector<Message>* sink_;
  std::uint64_t sent_messages_ = 0;
  std::uint64_t sent_bytes_ = 0;
};

// A node's view of the messages delivered to it during one beat.
//
// Storage is a flat bucket layout: delivered messages live in one
// arrival-order array; on first read a flat index array is bucketed by
// channel and canonically ordered by sender id within each bucket (stable,
// so duplicates keep arrival order). Messages are moved in exactly once
// and never again. All per-beat state keeps its capacity across `clear()`,
// so a steady-state beat touches the allocator not at all.
class Inbox {
 public:
  // Payload storage is managed by the handles themselves, so the inbox
  // needs no pool of its own.
  Inbox(std::uint32_t n, std::uint32_t max_channels);

  // Takes the message's payload handle (sharing the slot with any other
  // aliases of a broadcast). Messages on unknown channels are dropped;
  // their handles are parked until the next clear() so slots release at
  // the beat boundary like all other dropped traffic.
  void deliver(Message m);
  // Pre-reserves storage for `messages` deliveries this beat. The engine
  // calls this with the pre-drop addressed count when the network is
  // lossy, so inbox capacity converges to the deterministic traffic shape
  // instead of chasing random record peaks of the delivered count.
  void reserve(std::size_t messages) {
    staged_.reserve(messages);
    order_.reserve(messages);
  }
  // Drops all payload handles (last-referenced slots recycle into the
  // pool, keeping capacity); forgets the messages.
  void clear();

  // All messages on a channel, ordered by sender id (then arrival order for
  // duplicates). Channels out of range return an empty view. The view is
  // invalidated by deliver() and clear().
  MessageView on(ChannelId channel) const;

  // At most one payload per sender on a channel: the first message each
  // sender delivered. Index s is null if sender s sent nothing valid.
  // Byzantine duplicate floods therefore count once, deterministically.
  // The view is invalidated by deliver() and clear().
  PayloadView first_per_sender(ChannelId channel) const;

  std::uint32_t node_count() const { return n_; }

 private:
  void seal() const;  // bucket + canonicalize the index array

  std::uint32_t n_;
  std::uint32_t max_channels_;

  std::vector<Message> staged_;   // arrival order; holds the payload handles
  std::vector<Message> dropped_;  // unknown-channel parking, until clear()

  // Mutable: seal() runs lazily from the const read accessors.
  mutable bool sealed_ = false;
  mutable std::vector<std::uint32_t> order_;   // flat channel buckets (indices)
  mutable std::vector<std::uint32_t> count_;   // per channel
  mutable std::vector<std::uint32_t> offset_;  // per channel, into order_
  mutable std::vector<std::uint32_t> cursor_;  // scratch for bucketing
  mutable std::vector<ChannelId> touched_;     // channels with count > 0
  mutable std::vector<const Bytes*> first_;    // max_channels x n table
  std::vector<const Bytes*> null_row_;         // n nulls, for empty channels
};

}  // namespace ssbft
