// Tests for the multi-trial experiment runner: the parallel executor must
// be bit-identical to the serial path for every jobs value, censored
// trials must be accounted for, and degenerate configs must not divide by
// zero.
#include <gtest/gtest.h>

#include "adversary/adversaries.h"
#include "baselines/dolev_welch.h"
#include "harness/runner.h"

namespace ssbft {
namespace {

// A real randomized clock whose convergence beat varies with the seed:
// Dolev-Welch at n = 4 is cheap per beat and converges in a few dozen
// beats, giving a nontrivial sample distribution.
EngineBuilder dw_builder(std::uint32_t n, std::uint32_t f, ClockValue k) {
  return [n, f, k](std::uint64_t seed) {
    EngineBundle b;
    EngineConfig cfg;
    cfg.n = n;
    cfg.f = f;
    cfg.faulty = EngineConfig::last_ids_faulty(n, f);
    cfg.seed = seed;
    auto factory = [k](const ProtocolEnv& env, Rng rng) {
      return std::make_unique<DolevWelchClock>(env, k, rng);
    };
    b.engine =
        std::make_unique<Engine>(cfg, factory, make_silent_adversary());
    return b;
  };
}

RunnerConfig base_config(std::uint64_t trials, std::uint64_t jobs) {
  RunnerConfig rc;
  rc.trials = trials;
  rc.base_seed = 7;
  rc.jobs = jobs;
  rc.convergence.max_beats = 400;
  return rc;
}

void expect_identical(const TrialStats& a, const TrialStats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.samples, b.samples);  // same values in the same (trial) order
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean_msgs_per_beat, b.mean_msgs_per_beat);
}

TEST(Runner, ParallelBitIdenticalToSerial) {
  const auto builder = dw_builder(4, 1, 8);
  const TrialStats serial = run_trials(builder, base_config(24, 1));
  ASSERT_GT(serial.converged, 0u);
  for (std::uint64_t jobs : {2ULL, 3ULL, 8ULL, 0ULL}) {
    const TrialStats parallel = run_trials(builder, base_config(24, jobs));
    expect_identical(serial, parallel);
  }
}

TEST(Runner, JobsExceedingTrials) {
  const auto builder = dw_builder(4, 1, 8);
  const TrialStats serial = run_trials(builder, base_config(3, 1));
  const TrialStats wide = run_trials(builder, base_config(3, 64));
  expect_identical(serial, wide);
}

TEST(Runner, CensoredTrialsAreAccounted) {
  const auto builder = dw_builder(4, 1, 8);
  // A budget below the confirmation window censors every trial: the
  // detector can never confirm convergence in fewer beats than the window.
  RunnerConfig rc = base_config(6, 4);
  rc.convergence.max_beats = 4;
  rc.convergence.confirm_window = 12;
  const TrialStats s = run_trials(builder, rc);
  EXPECT_EQ(s.trials, 6u);
  EXPECT_EQ(s.converged, 0u);
  EXPECT_TRUE(s.samples.empty());
  EXPECT_EQ(s.convergence_rate(), 0.0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.median, 0.0);
  EXPECT_EQ(s.p90, 0.0);
  EXPECT_EQ(s.max, 0u);
  // Traffic is still measured on censored trials (the beats did run).
  EXPECT_GT(s.mean_msgs_per_beat, 0.0);
}

TEST(Runner, PartialConvergenceSumsToTrials) {
  const auto builder = dw_builder(4, 1, 8);
  RunnerConfig rc = base_config(24, 3);
  const TrialStats s = run_trials(builder, rc);
  EXPECT_EQ(s.trials, 24u);
  EXPECT_EQ(s.samples.size(), s.converged);
  EXPECT_LE(s.converged, s.trials);
  const std::uint64_t censored = s.trials - s.converged;
  EXPECT_DOUBLE_EQ(
      s.convergence_rate(),
      static_cast<double>(s.trials - censored) / static_cast<double>(s.trials));
}

TEST(Runner, ZeroTrialsYieldsZeroedStats) {
  const auto builder = dw_builder(4, 1, 8);
  RunnerConfig rc = base_config(0, 1);
  const TrialStats s = run_trials(builder, rc);
  EXPECT_EQ(s.trials, 0u);
  EXPECT_EQ(s.converged, 0u);
  EXPECT_TRUE(s.samples.empty());
  EXPECT_EQ(s.mean_msgs_per_beat, 0.0);  // no NaN
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.convergence_rate(), 0.0);
  // Same for the parallel path.
  rc.jobs = 8;
  const TrialStats p = run_trials(builder, rc);
  EXPECT_EQ(p.mean_msgs_per_beat, 0.0);
}

TEST(Runner, SamplesReservedToTrialCount) {
  // The merge reserves samples to the trial count before accumulating, so
  // the loop never reallocates — observable as capacity >= trials even
  // when only a subset converges.
  const auto builder = dw_builder(4, 1, 8);
  RunnerConfig rc = base_config(24, 2);
  const TrialStats s = run_trials(builder, rc);
  EXPECT_GE(s.samples.capacity(), s.trials);
}

TEST(Runner, BuilderExceptionPropagatesFromWorkers) {
  const EngineBuilder throwing = [](std::uint64_t seed) -> EngineBundle {
    if (seed >= 10) throw std::runtime_error("builder blew up");
    return dw_builder(4, 1, 8)(seed);
  };
  RunnerConfig rc = base_config(32, 4);
  rc.base_seed = 0;
  EXPECT_THROW(run_trials(throwing, rc), std::runtime_error);
}

}  // namespace
}  // namespace ssbft
