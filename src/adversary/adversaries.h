// The adversary gallery: Byzantine strategies used across tests and
// benchmarks. All obey the model (Section 2): they see only traffic
// addressed to faulty nodes (plus the current beat's, by rushing), send
// arbitrary per-recipient messages from the faulty identities, and keep
// arbitrary memory.
#pragma once

#include <memory>

#include "coin/oracle_coin.h"
#include "sim/adversary.h"

namespace ssbft {

// Crash-style: the faulty nodes say nothing, forever. The baseline
// "weakest" adversary — protocols must converge without their votes.
std::unique_ptr<Adversary> make_silent_adversary();

// Spray: each faulty node sends `messages_per_beat` random payloads on
// random channels to random nodes. Exercises every decoder's tolerance of
// garbage.
std::unique_ptr<Adversary> make_random_noise_adversary(
    std::uint32_t messages_per_beat = 8, std::uint32_t max_payload = 40);

// Split-world equivocation: every beat, every faulty node sends payload_a
// on `channel` to the lower half of the ids and payload_b to the upper
// half. The classic attack on majority-style rules.
std::unique_ptr<Adversary> make_split_value_adversary(ChannelId channel,
                                                      Bytes payload_a,
                                                      Bytes payload_b);

// Oracle-aware anti-coin rusher: reads the beacon's *current-beat* outcome
// (exactly what the recover round of a real coin reveals to a rushing
// adversary) and sends clock values chosen against it on the 2-clock value
// channel: rand to one half, 1-rand to the other, maximizing disagreement
// among nodes applying the ?->rand substitution.
std::unique_ptr<Adversary> make_anti_coin_adversary(
    std::shared_ptr<OracleBeacon> beacon, ChannelId clock_channel);

// Full-stack attack on ss-Byz-Clock-Sync's channels: equivocating clock
// values on the full-clock channel, conflicting proposals, and split
// support bits, re-randomized every beat.
std::unique_ptr<Adversary> make_clock_skew_adversary(ClockValue k,
                                                     ChannelId full_channel);

// Adaptive quorum splitter: the strongest clock-channel attack the model
// allows. Each beat it reads (by rushing) the correct nodes' clock
// broadcasts addressed to faulty nodes, finds the value u with the largest
// correct support c, and — when n-2f <= c < n-f — completes u's quorum
// *only at the nodes already holding u*, feeding everyone else noise. The
// u-holders step to u+1 while the rest fall to their fallback rule,
// sustaining the partition. Quorum-priority protocols admit this split as
// a fixed point when the magic support window ever arises; the paper's
// coin-based algorithms do not (the common gamble re-merges the groups).
std::unique_ptr<Adversary> make_adaptive_quorum_splitter(ClockValue k,
                                                         ChannelId clock_channel);

// FM-coin attacker: participates in the GVSS just enough to be graded,
// then splits the correct nodes — happy-vote equivocation (grade 2 vs 1)
// and recover-share equivocation (real shares to one half, garbage to the
// other), probing the recovery-divergence gap documented in fm_coin.h.
// `coin_base` is the pipeline's first channel; `prime` the coin's field.
std::unique_ptr<Adversary> make_fm_coin_attacker(std::uint64_t prime,
                                                 ChannelId coin_base);

}  // namespace ssbft
