// The local coin: each node flips independently.
//
// A *negative control*: it satisfies termination and binary output but has
// no common-coin events (p0 = p1 = 2^-(n-f) at best, vanishing with n). The
// Dolev-Welch-style baseline effectively runs on this, which is exactly why
// its convergence is expected-exponential; plugging it into ss-Byz-2-Clock
// demonstrates empirically how the paper's constant-time result depends on
// the coin's common events.
#pragma once

#include "coin/coin_interface.h"

namespace ssbft {

CoinSpec local_coin_spec();

}  // namespace ssbft
