#include "coin/fm_coin.h"

#include "coin/coin_pipeline.h"
#include "support/check.h"

namespace ssbft {

namespace {

// Sentinel carried in cross/share vectors for "no value": the modulus
// itself, which can never be a canonical element.
std::uint64_t sentinel(const PrimeField& F) { return F.modulus(); }

std::vector<std::uint64_t> pack_bits(const std::vector<bool>& bits) {
  std::vector<std::uint64_t> words((bits.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) words[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  return words;
}

std::vector<bool> unpack_bits(const std::vector<std::uint64_t>& words,
                              std::size_t count) {
  std::vector<bool> bits(count, false);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t w = i / 64;
    if (w < words.size()) bits[i] = (words[w] >> (i % 64)) & 1;
  }
  return bits;
}

}  // namespace

FmCoinInstance::FmCoinInstance(const ProtocolEnv& env,
                               const FmCoinParams& params, Rng rng)
    : env_(env),
      field_(params.resolve_prime()),
      rng_(rng),
      dealing_(GvssDealing::sample(field_, env.f, rng_)),
      rows_(env.n),
      cross_matches_(env.n, 0),
      happy_(env.n, false),
      voted_happy_(env.n),
      grades_(env.n, GvssGrade::kNone) {
  SSBFT_REQUIRE_MSG(field_.modulus() > env.n,
                    "coin field must have modulus > n (Remark 2.3)");
}

void FmCoinInstance::send_round(int round, Outbox& out, ChannelId base) {
  const auto ch = static_cast<ChannelId>(base);
  switch (round) {
    case 1: send_deal(out, ch); break;
    case 2: send_cross(out, ch); break;
    case 3: send_votes(out, ch); break;
    case 4: send_shares(out, ch); break;
    default: SSBFT_CHECK_MSG(false, "bad round " << round);
  }
}

void FmCoinInstance::receive_round(int round, const Inbox& in,
                                   ChannelId base) {
  const auto ch = static_cast<ChannelId>(base);
  switch (round) {
    case 1: recv_deal(in, ch); break;
    case 2: recv_cross(in, ch); break;
    case 3: recv_votes(in, ch); break;
    case 4: recv_shares(in, ch); break;
    default: SSBFT_CHECK_MSG(false, "bad round " << round);
  }
}

// Round 1 — share phase: as dealer, send node j its row F(x_j, y).
void FmCoinInstance::send_deal(Outbox& out, ChannelId ch) {
  for (NodeId j = 0; j < env_.n; ++j) {
    ByteWriter& w = out.writer();
    w.u64_vec(dealing_.row_for(field_, j));
    out.send(j, ch, w.data());
  }
}

void FmCoinInstance::recv_deal(const Inbox& in, ChannelId ch) {
  const auto payloads = in.first_per_sender(ch);
  for (NodeId d = 0; d < env_.n; ++d) {
    rows_[d].reset();
    if (payloads[d] == nullptr) continue;
    ByteReader r(*payloads[d]);
    const auto coeffs = r.u64_vec(std::size_t{env_.f} + 1);
    if (!r.at_end()) continue;
    rows_[d] = validate_row(field_, env_.f, coeffs);
  }
}

// Round 2 — cross-check: send node j, for every dealer d, my row's value
// at j's point; j compares against its own row's value at my point
// (symmetry: F_d(x_me, x_j) = F_d(x_j, x_me)).
void FmCoinInstance::send_cross(Outbox& out, ChannelId ch) {
  for (NodeId j = 0; j < env_.n; ++j) {
    std::vector<std::uint64_t> vals(env_.n, sentinel(field_));
    for (NodeId d = 0; d < env_.n; ++d) {
      if (rows_[d]) vals[d] = rows_[d]->eval(field_, node_point(j));
    }
    ByteWriter& w = out.writer();
    w.u64_vec(vals);
    out.send(j, ch, w.data());
  }
}

void FmCoinInstance::recv_cross(const Inbox& in, ChannelId ch) {
  const auto payloads = in.first_per_sender(ch);
  std::fill(cross_matches_.begin(), cross_matches_.end(), 0);
  for (NodeId j = 0; j < env_.n; ++j) {
    if (payloads[j] == nullptr) continue;
    ByteReader r(*payloads[j]);
    const auto vals = r.u64_vec(env_.n);
    if (!r.at_end() || vals.size() != env_.n) continue;
    for (NodeId d = 0; d < env_.n; ++d) {
      if (!rows_[d] || !field_.valid(vals[d])) continue;
      if (rows_[d]->eval(field_, node_point(j)) == vals[d]) {
        ++cross_matches_[d];
      }
    }
  }
  for (NodeId d = 0; d < env_.n; ++d) {
    happy_[d] =
        gvss_happy(env_.n, env_.f, rows_[d].has_value(), cross_matches_[d]);
  }
}

// Round 3 — decide phase: broadcast my happy votes.
void FmCoinInstance::send_votes(Outbox& out, ChannelId ch) {
  ByteWriter& w = out.writer();
  w.u64_vec(pack_bits(happy_));
  out.broadcast(ch, w.data());
}

void FmCoinInstance::recv_votes(const Inbox& in, ChannelId ch) {
  const auto payloads = in.first_per_sender(ch);
  const std::size_t words = (std::size_t{env_.n} + 63) / 64;
  std::vector<std::uint32_t> votes(env_.n, 0);
  for (NodeId j = 0; j < env_.n; ++j) {
    voted_happy_[j].clear();
    if (payloads[j] == nullptr) continue;
    ByteReader r(*payloads[j]);
    const auto mask = r.u64_vec(words);
    if (!r.at_end() || mask.size() != words) continue;
    voted_happy_[j] = unpack_bits(mask, env_.n);
    for (NodeId d = 0; d < env_.n; ++d) {
      if (voted_happy_[j][d]) ++votes[d];
    }
  }
  for (NodeId d = 0; d < env_.n; ++d) {
    grades_[d] = gvss_grade(env_.n, env_.f, votes[d]);
  }
}

// Round 4 — recover phase: broadcast my share g_d(x_me) = F_d(x_me, 0) of
// every dealing I hold a row for. This is the single round before which
// the adversary cannot predict the coin (Observation 2.1).
void FmCoinInstance::send_shares(Outbox& out, ChannelId ch) {
  std::vector<std::uint64_t> shares(env_.n, sentinel(field_));
  for (NodeId d = 0; d < env_.n; ++d) {
    if (rows_[d]) shares[d] = rows_[d]->eval(field_, 0);
  }
  ByteWriter& w = out.writer();
  w.u64_vec(shares);
  out.broadcast(ch, w.data());
}

void FmCoinInstance::recv_shares(const Inbox& in, ChannelId ch) {
  const auto payloads = in.first_per_sender(ch);
  // Decode every sender's share vector once.
  std::vector<std::vector<std::uint64_t>> share_vecs(env_.n);
  for (NodeId j = 0; j < env_.n; ++j) {
    if (payloads[j] == nullptr) continue;
    ByteReader r(*payloads[j]);
    auto vals = r.u64_vec(env_.n);
    if (!r.at_end() || vals.size() != env_.n) continue;
    share_vecs[j] = std::move(vals);
  }
  std::uint64_t sum = 0;
  for (NodeId d = 0; d < env_.n; ++d) {
    if (grades_[d] == GvssGrade::kNone) continue;
    // Only shares from nodes that *voted happy* on d count: a correct happy
    // voter's row is consistent with the unique dealt polynomial, so lies
    // among these points come only from Byzantine senders (<= f), within
    // the Berlekamp-Welch budget.
    std::vector<RsPoint> pts;
    pts.reserve(env_.n);
    for (NodeId j = 0; j < env_.n; ++j) {
      if (share_vecs[j].empty()) continue;
      if (voted_happy_[j].empty() || !voted_happy_[j][d]) continue;
      const std::uint64_t y = share_vecs[j][d];
      if (!field_.valid(y)) continue;
      pts.push_back(RsPoint{node_point(j), y});
    }
    // Unrecoverable dealings (necessarily from a faulty dealer) contribute
    // the canonical value 0, identically at every node that fails.
    const std::uint64_t s_d = gvss_recover(field_, env_.f, pts).value_or(0);
    sum = field_.add(sum, s_d);
  }
  output_bit_ = (sum & 1) != 0;
}

void FmCoinInstance::randomize_state(Rng& rng) {
  // Arbitrary memory corruption: every mutable field gets garbage that is
  // type-valid but semantically arbitrary.
  dealing_ = GvssDealing::sample(field_, env_.f, rng);
  for (NodeId d = 0; d < env_.n; ++d) {
    if (rng.next_bool()) {
      rows_[d] = Poly::random(field_, static_cast<int>(env_.f), rng);
    } else {
      rows_[d].reset();
    }
    cross_matches_[d] = static_cast<std::uint32_t>(rng.next_below(env_.n + 1));
    happy_[d] = rng.next_bool();
    grades_[d] = static_cast<GvssGrade>(rng.next_below(3));
    voted_happy_[d].assign(env_.n, false);
    for (NodeId j = 0; j < env_.n; ++j) voted_happy_[d][j] = rng.next_bool();
  }
  output_bit_ = rng.next_bool();
}

CoinSpec fm_coin_spec(FmCoinParams params) {
  CoinSpec spec;
  spec.channels = FmCoinInstance::kRounds;
  spec.make = [params](const ProtocolEnv& env, ChannelId base, Rng rng) {
    CoinInstanceFactory factory = [env, params](Rng inst_rng) {
      return std::make_unique<FmCoinInstance>(env, params, inst_rng);
    };
    return std::make_unique<SsByzCoinFlip>(std::move(factory),
                                           FmCoinInstance::kRounds, base, rng);
  };
  return spec;
}

}  // namespace ssbft
