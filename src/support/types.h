// Fundamental identifier types shared across the library.
#pragma once

#include <cstdint>

namespace ssbft {

// Index of a node in [0, n). The paper's nodes are anonymous peers; we use
// dense indices so vectors can be keyed by node.
using NodeId = std::uint32_t;

// Global beat counter maintained by the *simulator* only. Per Definition 2.5
// footnote 4, beat indices are never available to the protocols themselves —
// no protocol code may read a Beat.
using Beat = std::uint64_t;

// A digital clock value in [0, k).
using ClockValue = std::uint64_t;

// Identifies a logical sub-protocol message stream within a composed
// protocol stack (e.g. "2-clock value broadcast" vs "coin round 2").
using ChannelId = std::uint16_t;

}  // namespace ssbft
