#include "core/cascade.h"

#include "sim/trace.h"
#include "support/check.h"

namespace ssbft {

CascadeClock::CascadeClock(const ProtocolEnv& env, std::uint32_t levels,
                           const CoinSpec& coin, Rng rng, ChannelId base)
    : env_(env),
      levels_(levels),
      channels_end_(base + channels_needed(levels, coin)),
      active_(levels, false) {
  SSBFT_REQUIRE(levels >= 1 && levels < 63);
  const std::uint32_t per_level = SsByz2Clock::channels_needed(coin);
  for (std::uint32_t i = 0; i < levels; ++i) {
    level_.push_back(std::make_unique<SsByz2Clock>(
        env, coin, static_cast<ChannelId>(base + i * per_level),
        rng.split("level", i)));
  }
}

void CascadeClock::send_phase(Outbox& out) {
  // Level i steps iff every lower level is at 1 at the start of the beat
  // (the carry chain of a binary counter).
  bool carry = true;
  for (std::uint32_t i = 0; i < levels_; ++i) {
    active_[i] = carry;
    carry = carry && level_[i]->tri_state() == Tri::kOne;
    if (active_[i]) level_[i]->sub_send(out);
  }
}

void CascadeClock::receive_phase(const Inbox& in) {
  for (std::uint32_t i = 0; i < levels_; ++i) {
    if (active_[i]) level_[i]->sub_receive(in);
  }
}

void CascadeClock::randomize_state(Rng& rng) {
  for (auto& l : level_) l->randomize_state(rng);
  for (std::uint32_t i = 0; i < levels_; ++i) active_[i] = rng.next_bool();
}

ClockValue CascadeClock::clock() const {
  ClockValue v = 0;
  for (std::uint32_t i = 0; i < levels_; ++i) {
    v |= level_[i]->clock() << i;
  }
  return v;
}

void CascadeClock::trace_state(TraceEmitter& em) const {
  // Only the levels the carry chain stepped this beat have fresh state.
  for (std::uint32_t i = 0; i < levels_; ++i) {
    if (active_[i]) level_[i]->trace_state(em);
  }
}

}  // namespace ssbft
