#include "baselines/dolev_welch.h"

#include <map>

#include "sim/trace.h"
#include "support/check.h"

namespace ssbft {

DolevWelchClock::DolevWelchClock(const ProtocolEnv& env, ClockValue k, Rng rng,
                                 ChannelId base)
    : env_(env), k_(k), base_(base), rng_(rng) {
  SSBFT_REQUIRE(k >= 1);
}

void DolevWelchClock::send_phase(Outbox& out) {
  ByteWriter& w = out.writer();
  w.u64(clock_ % k_);
  out.broadcast(base_, w.data());
}

void DolevWelchClock::receive_phase(const Inbox& in) {
  std::map<ClockValue, std::uint32_t> counts;
  for (const Bytes* p : in.first_per_sender(base_)) {
    if (p == nullptr) continue;
    ByteReader r(*p);
    const std::uint64_t v = r.u64();
    if (!r.at_end() || v >= k_) continue;
    ++counts[v];
  }
  for (const auto& [v, c] : counts) {
    if (c >= env_.n - env_.f) {
      clock_ = (v + 1) % k_;
      gambled_ = false;
      return;
    }
  }
  // No quorum: gamble with local randomness. This is the exponential
  // bottleneck the common coin removes.
  gambled_ = true;
  clock_ = rng_.next_below(k_);
}

void DolevWelchClock::trace_state(TraceEmitter& em) const {
  em.phase(base_, gambled_ ? 1 : 0);
}

void DolevWelchClock::randomize_state(Rng& rng) {
  clock_ = rng.next_u64() % (2 * k_);  // possibly out of range; self-heals
  rng_ = Rng(rng.next_u64());
}

DolevWelchSharedCoin::DolevWelchSharedCoin(const ProtocolEnv& env,
                                           ClockValue k, const CoinSpec& coin,
                                           Rng rng, ChannelId base)
    : env_(env),
      k_(k),
      base_(base),
      channels_end_(base + channels_needed(coin)),
      coin_(coin.make(env, static_cast<ChannelId>(base + 1),
                      rng.split("coin"))) {
  SSBFT_REQUIRE(k >= 1);
  SSBFT_CHECK(coin_ != nullptr);
}

void DolevWelchSharedCoin::send_phase(Outbox& out) {
  ByteWriter& w = out.writer();
  w.u64(clock_ % k_);
  out.broadcast(base_, w.data());
  coin_->send_phase(out);
}

void DolevWelchSharedCoin::receive_phase(const Inbox& in) {
  // The coin bit is revealed only after all beat-r messages are committed
  // (the same commitment ordering as Remark 3.1).
  const bool rand = coin_->receive_phase(in);
  std::map<ClockValue, std::uint32_t> counts;
  for (const Bytes* p : in.first_per_sender(base_)) {
    if (p == nullptr) continue;
    ByteReader r(*p);
    const std::uint64_t v = r.u64();
    if (!r.at_end() || v >= k_) continue;
    ++counts[v];
  }
  ClockValue best = 0;
  std::uint32_t best_count = 0;
  for (const auto& [v, c] : counts) {
    if (c >= env_.n - env_.f) {
      clock_ = (v + 1) % k_;
      gambled_ = false;
      return;
    }
    if (c > best_count) {
      best = v;
      best_count = c;
    }
  }
  // No quorum: the common gamble. rand = 0 lands every gambling node on
  // the canonical value 0 simultaneously.
  gambled_ = true;
  clock_ = rand ? (best + 1) % k_ : 0;
}

void DolevWelchSharedCoin::trace_state(TraceEmitter& em) const {
  em.phase(base_, gambled_ ? 1 : 0);
  // The shared coin is consumed every beat (drawn before the quorum scan),
  // so its latched bit is always fresh.
  em.coin(static_cast<std::uint32_t>(base_ + 1), coin_->last_output());
}

void DolevWelchSharedCoin::randomize_state(Rng& rng) {
  clock_ = rng.next_u64() % (2 * k_);
  coin_->randomize_state(rng);
}

}  // namespace ssbft
