// ss-Byz-4-Clock (Figure 3): a 4-Clock from two ss-Byz-2-Clock instances.
//
// A1 steps every beat. A2 steps exactly when A1 wraps: Figure 3 gates A2 on
// "clock(A1) = 0" evaluated after A1's beat, which equals (post-
// convergence) clock(A1) = 1 at the *start* of the beat — the form we use,
// since send decisions cannot depend on this beat's receives. The combined
// clock 2*clock(A2) + clock(A1) then steps through 0,1,2,3 (Theorem 3's
// pattern) and increments by one per beat.
//
// Remark 4.1: the two sub-clocks can share a single coin-flipping pipeline,
// halving coin traffic. Both modes are provided; the ablation benchmark
// compares them.
#pragma once

#include <memory>

#include "coin/coin_interface.h"
#include "core/clock2.h"
#include "sim/protocol.h"

namespace ssbft {

enum class CoinPipelineMode {
  kPerSubClock,  // the paper's Figure 3: one coin pipeline per 2-clock
  kShared,       // Remark 4.1: a single pipeline feeds both
};

class SsByz4Clock final : public ClockProtocol {
 public:
  SsByz4Clock(const ProtocolEnv& env, const CoinSpec& coin, ChannelId base,
              Rng rng, CoinPipelineMode mode = CoinPipelineMode::kPerSubClock);

  // --- embeddable sub-protocol interface (used by ss-Byz-Clock-Sync) ---
  void sub_send(Outbox& out);
  void sub_receive(const Inbox& in);

  // --- ClockProtocol ---
  void send_phase(Outbox& out) override { sub_send(out); }
  void receive_phase(const Inbox& in) override { sub_receive(in); }
  void randomize_state(Rng& rng) override;
  ClockValue clock() const override;
  ClockValue modulus() const override { return 4; }
  std::uint32_t channel_count() const override { return channels_end_; }
  void trace_state(TraceEmitter& em) const override;

  static std::uint32_t channels_needed(const CoinSpec& coin,
                                       CoinPipelineMode mode) {
    if (mode == CoinPipelineMode::kPerSubClock) {
      return 2 * (1 + coin.channels);
    }
    return 2 + coin.channels;
  }

  // Introspection for tests.
  const SsByz2Clock& a1() const { return *a1_; }
  const SsByz2Clock& a2() const { return *a2_; }

 private:
  ProtocolEnv env_;
  CoinPipelineMode mode_;
  std::uint32_t channels_end_;
  std::unique_ptr<SsByz2Clock> a1_;
  std::unique_ptr<SsByz2Clock> a2_;
  std::unique_ptr<CoinComponent> shared_coin_;  // kShared mode only
  ChannelId shared_coin_base_ = 0;  // the shared pipeline's trace stream
  // Latched during send_phase so send and receive agree on whether A2
  // steps this beat.
  bool a2_active_ = false;
};

}  // namespace ssbft
