// Turpin-Coan multivalued Byzantine agreement from a binary protocol
// (reference [18] of the paper — also the intellectual ancestor of
// Figure 4's four-phase structure).
//
// Two pre-rounds reduce arbitrary u64 inputs to a binary question:
//   R1  broadcast input; z := the value with >= n-f support (else ?);
//   R2  broadcast z; x := most frequent non-? value, b := [x had n-f
//       support]; then run binary BA on b.
// Output: x if the binary BA decides 1, else the default 0. If any correct
// node computed b = 1, then >= n-2f correct nodes sent z = x, so every
// correct node's most frequent non-? value is the same x (correct non-?
// z's are single-valued by quorum intersection, Observation 3.1) — the
// adopted x is common. Needs n > 3f and the binary protocol's resilience.
#pragma once

#include "agreement/ba_interface.h"

namespace ssbft {

class TurpinCoanInstance final : public BaInstance {
 public:
  TurpinCoanInstance(const ProtocolEnv& env, std::uint64_t input,
                     const BaSpec& binary, Rng rng);

  int rounds() const override;
  void send_round(int round, Outbox& out, ChannelId base) override;
  void receive_round(int round, const Inbox& in, ChannelId base) override;
  std::uint64_t output() const override;
  void randomize_state(Rng& rng) override;

 private:
  void ensure_inner(bool input);

  ProtocolEnv env_;
  std::uint64_t input_;
  BaSpec binary_;
  Rng rng_;

  bool have_z_ = false;
  std::uint64_t z_ = 0;
  std::uint64_t x_ = 0;  // the common candidate
  std::unique_ptr<BaInstance> inner_;
};

// Multivalued BA over u64 from a binary BaSpec. Rounds: 2 + binary's.
BaSpec turpin_coan_spec(BaSpec binary);

}  // namespace ssbft
